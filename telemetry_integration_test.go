package webcluster

import (
	"bufio"
	"net"
	"testing"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/core"
	"webcluster/internal/httpx"
	"webcluster/internal/mgmt"
	"webcluster/internal/telemetry"
)

// launchTelemetryCluster starts a 3-node cluster with a console endpoint
// and one static object placed on each node (round-robin), so traffic can
// be steered to every back end deterministically.
func launchTelemetryCluster(t *testing.T) (*core.Cluster, []string) {
	t.Helper()
	cluster, err := core.Launch(core.Options{
		Spec:        core.DefaultSpec(),
		ConsoleAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cluster.Close() })

	nodes := cluster.Controller.Nodes()
	paths := make([]string, 0, len(nodes))
	for i, node := range nodes {
		path := "/docs/t" + string(rune('a'+i)) + ".html"
		obj := content.Object{Path: path, Size: 256, Class: content.Classify(path)}
		if err := cluster.Controller.Insert(obj, nil, node); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	return cluster, paths
}

// TestTracedRequestSpansMatch issues one request carrying a client trace
// ID and checks the single-system-image invariants: the distributor's
// ring holds a span with that trace ID, the span names the back end that
// served the request, and that back end's own ring holds the service span
// whose ID the distributor recorded (joined via X-Dist-Trace/X-Dist-Span).
func TestTracedRequestSpansMatch(t *testing.T) {
	cluster, paths := launchTelemetryCluster(t)

	const clientTrace = uint64(0xfeedc0dedeadbeef)
	conn, err := net.DialTimeout("tcp", cluster.FrontAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if err := conn.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	req := &httpx.Request{
		Method: "GET", Target: paths[0], Path: paths[0], Proto: httpx.Proto11,
		Header:  httpx.NewHeader("Host", "cluster", "Connection", "close"),
		TraceID: clientTrace,
	}
	if err := httpx.WriteRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	// The reply carries the trace ID back and the distributor's span ID.
	if resp.TraceID != clientTrace {
		t.Fatalf("response trace ID = %x, want %x", resp.TraceID, clientTrace)
	}

	var distSpan *telemetry.Span
	for _, sp := range cluster.Telemetry.Spans(0) {
		if sp.TraceID == clientTrace {
			cp := sp
			distSpan = &cp
			break
		}
	}
	if distSpan == nil {
		t.Fatalf("no span with trace %x in distributor ring", clientTrace)
	}
	if distSpan.Status != 200 || distSpan.Path != paths[0] || distSpan.Outcome != "relayed" {
		t.Fatalf("distributor span wrong: %+v", distSpan)
	}
	if distSpan.Backend == "" || distSpan.BackendSpan == 0 {
		t.Fatalf("distributor span lacks backend linkage: %+v", distSpan)
	}

	// The named back end must hold the service span the distributor
	// recorded, under the same trace.
	nh := cluster.Nodes[config.NodeID(distSpan.Backend)]
	if nh == nil {
		t.Fatalf("unknown backend node %q", distSpan.Backend)
	}
	var backendSpan *telemetry.Span
	for _, sp := range nh.Server.Telemetry().Spans(0) {
		if sp.SpanID == distSpan.BackendSpan {
			cp := sp
			backendSpan = &cp
			break
		}
	}
	if backendSpan == nil {
		t.Fatalf("backend %s has no span with ID %x", distSpan.Backend, distSpan.BackendSpan)
	}
	if backendSpan.TraceID != clientTrace {
		t.Fatalf("backend span trace = %x, want %x", backendSpan.TraceID, clientTrace)
	}
	if backendSpan.Path != paths[0] || backendSpan.Status != 200 {
		t.Fatalf("backend span wrong: %+v", backendSpan)
	}
}

// TestConsoleClusterStats drives traffic through every node of a 3-node
// cluster and checks the console's stats and traces verbs return the
// merged single-system-image view with every node as a source.
func TestConsoleClusterStats(t *testing.T) {
	cluster, paths := launchTelemetryCluster(t)

	// Each path lives on exactly one node, so this touches all three.
	for _, path := range paths {
		for i := 0; i < 3; i++ {
			resp, err := cluster.Get(path)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != 200 {
				t.Fatalf("GET %s = %d", path, resp.StatusCode)
			}
		}
	}

	console, err := mgmt.DialConsole(cluster.ConsoleAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = console.Close() }()

	resp, err := console.Do(mgmt.ConsoleRequest{Op: "stats"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats == nil {
		t.Fatal("stats verb returned no Stats")
	}
	st := resp.Stats
	wantSources := map[string]bool{"distributor": false, "fast-1": false, "mid-1": false, "slow-1": false}
	for _, s := range st.Sources {
		if _, ok := wantSources[s]; ok {
			wantSources[s] = true
		}
	}
	for name, seen := range wantSources {
		if !seen {
			t.Errorf("source %q missing from cluster stats (got %v)", name, st.Sources)
		}
	}
	var html *telemetry.ClassSummary
	for i := range st.Classes {
		if st.Classes[i].Class == "html" {
			html = &st.Classes[i]
		}
	}
	if html == nil {
		t.Fatalf("no html class in cluster stats: %+v", st.Classes)
	}
	// 9 front-end requests + 9 backend services, all class html.
	if html.Requests != 18 {
		t.Fatalf("merged html requests = %d, want 18", html.Requests)
	}
	// Quantiles report bucket upper bounds, so P99 may exceed the exact
	// max by up to one bucket width — but ordering among quantiles holds.
	if html.P50Ns <= 0 || html.P90Ns < html.P50Ns || html.P99Ns < html.P90Ns || html.MaxNs <= 0 {
		t.Fatalf("merged quantiles inconsistent: %+v", html)
	}
	if len(st.Merged.Classes) == 0 {
		t.Fatal("merged snapshot has no classes")
	}
	if got := st.Merged.Classes["html"].Latency.Count; got != 18 {
		t.Fatalf("merged html latency count = %d, want 18", got)
	}

	tr, err := console.Do(mgmt.ConsoleRequest{Op: "traces", Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Traces) == 0 || len(tr.Traces) > 5 {
		t.Fatalf("traces verb returned %d spans", len(tr.Traces))
	}
	for i := 1; i < len(tr.Traces); i++ {
		if tr.Traces[i-1].TotalNs < tr.Traces[i].TotalNs {
			t.Fatalf("traces not slowest-first: %v", tr.Traces)
		}
	}
	// Spans from both tiers (distributor and back ends) should appear in
	// the union the controller scraped; at minimum every span carries a
	// node attribution.
	for _, sp := range tr.Traces {
		if sp.Node == "" || sp.TraceID == 0 {
			t.Fatalf("unattributed span in cluster traces: %+v", sp)
		}
	}
}
