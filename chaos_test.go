package webcluster

// Chaos suite: seeded fault schedules applied to a live in-process
// cluster while Workload-A traffic runs. Every scenario is reproducible
// from the seed the harness logs at start (rerun with CHAOS_SEED=<seed>).
// Invariants asserted throughout:
//   - no request is silently lost: every client request either succeeds
//     or is a counted error, and where a healthy replica exists the
//     failover path absorbs the fault (zero errors);
//   - takeover completes under replication-stream truncation/corruption;
//   - the mapping table drains to CLOSED after traffic stops;
//   - no goroutine outlives its test (testutil.NoLeaks).

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"webcluster/internal/backend"
	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/core"
	"webcluster/internal/distributor"
	"webcluster/internal/faults"
	"webcluster/internal/httpx"
	"webcluster/internal/journal"
	"webcluster/internal/loadbal"
	"webcluster/internal/respcache"
	"webcluster/internal/testutil"
	"webcluster/internal/urltable"
	"webcluster/internal/workload"
)

// chaosCluster is a backends-plus-distributor fixture with the chaos
// injector threaded through every layer.
type chaosCluster struct {
	spec     config.ClusterSpec
	table    *urltable.Table
	dist     *distributor.Distributor
	front    string
	backends map[config.NodeID]*backend.Server
	stores   map[config.NodeID]backend.Store
}

// startChaosCluster boots n backend nodes and a distributor with tight
// exchange deadlines, all wired to in. mods adjust the distributor
// options (e.g. to enable the response cache) before New.
func startChaosCluster(t *testing.T, in *faults.Injector, n int, mods ...func(*distributor.Options)) *chaosCluster {
	t.Helper()
	testutil.NoLeaks(t)
	cc := &chaosCluster{
		spec:     config.ClusterSpec{DistributorCPUMHz: 350},
		backends: make(map[config.NodeID]*backend.Server, n),
		stores:   make(map[config.NodeID]backend.Store, n),
	}
	for i := 0; i < n; i++ {
		id := config.NodeID(fmt.Sprintf("n%d", i+1))
		store := &backend.MemStore{}
		srv, err := backend.NewServer(backend.ServerOptions{
			Spec: config.NodeSpec{
				ID: id, CPUMHz: 350, MemoryMB: 64,
				Disk: config.DiskSCSI, Platform: config.LinuxApache,
			},
			Store:  store,
			Faults: in,
		})
		if err != nil {
			t.Fatal(err)
		}
		registerChaosDynamic(srv, id)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cc.spec.Nodes = append(cc.spec.Nodes, config.NodeSpec{
			ID: id, CPUMHz: 350, MemoryMB: 64,
			Disk: config.DiskSCSI, Platform: config.LinuxApache, Addr: addr,
		})
		cc.backends[id] = srv
		cc.stores[id] = store
		t.Cleanup(func() { _ = srv.Close() })
	}
	cc.table = urltable.New(urltable.Options{CacheEntries: 256})
	opts := distributor.Options{
		Table:           cc.table,
		Cluster:         cc.spec,
		PreforkPerNode:  2,
		ExchangeTimeout: 250 * time.Millisecond,
		RetryBackoff:    time.Millisecond,
		Faults:          in,
	}
	for _, mod := range mods {
		mod(&opts)
	}
	dist, err := distributor.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	front, err := dist.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cc.dist = dist
	cc.front = front
	t.Cleanup(func() { _ = dist.Close() })
	return cc
}

// registerChaosDynamic mirrors the default dynamic handlers the cluster
// façade installs, so Workload-A's CGI/ASP paths are servable.
func registerChaosDynamic(srv *backend.Server, id config.NodeID) {
	h := func(req *httpx.Request) ([]byte, float64, error) {
		return []byte("<html>dyn " + string(id) + " " + req.Path + "</html>\n"), 1.0, nil
	}
	srv.HandlePrefix("/cgi-bin/", h)
	srv.HandlePrefix("/asp/", h)
}

// chaosSite builds a small Workload-A site and replicates every object on
// every node, so a single faulty node always leaves a healthy replica.
func chaosSite(t *testing.T, cc *chaosCluster, objects int, seed int64) *content.Site {
	t.Helper()
	site, err := workload.BuildSite(workload.KindA, objects, seed)
	if err != nil {
		t.Fatal(err)
	}
	ids := cc.spec.NodeIDs()
	for _, obj := range site.Objects() {
		if !obj.Class.Dynamic() {
			body := backend.SynthesizeBody(obj.Path, obj.Size)
			for _, id := range ids {
				if err := cc.stores[id].Put(obj.Path, body); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := cc.table.Insert(obj, ids...); err != nil {
			t.Fatal(err)
		}
	}
	return site
}

// driveWorkloadA runs closed-loop Workload-A clients against the front
// end for the given duration.
func driveWorkloadA(t *testing.T, front string, site *content.Site, d time.Duration, seed int64) workload.Report {
	t.Helper()
	report, err := workload.RunClientPool(workload.ClientPoolOptions{
		Addr:      front,
		Clients:   4,
		Duration:  d,
		Site:      site,
		Seed:      seed,
		KeepAlive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 {
		t.Fatal("workload issued no requests")
	}
	return report
}

// assertMappingDrains: after traffic ends, every tracked client
// connection must walk to CLOSED and be deleted.
func assertMappingDrains(t *testing.T, d *distributor.Distributor) {
	t.Helper()
	testutil.Eventually(t, 3*time.Second, func() bool {
		return d.Mapping().Len() == 0
	}, "mapping table did not drain to CLOSED: %d entries live", d.Mapping().Len())
}

// TestChaosSlowReplicaFailover: mid-run, every distributor connection to
// n1 becomes a slow-loris (reads stall past the exchange deadline). With
// all content replicated on n2, the exchange-deadline + failover path
// must absorb the fault: zero request errors. Reverting the deadline in
// attemptExchange leaves relay goroutines stuck and this test fails on
// errors/timeouts.
func TestChaosSlowReplicaFailover(t *testing.T) {
	h := faults.NewHarness(faults.Seed(101), t.Logf)
	cc := startChaosCluster(t, h.In, 2)
	site := chaosSite(t, cc, 60, 101)

	stall := &faults.Rule{ReadStall: time.Minute}
	join, stop := h.Go(faults.Scenario{
		Name: "slow-replica",
		Steps: []faults.Step{
			{At: 150 * time.Millisecond, Point: "pool.conn/n1", Rule: stall,
				Note: "n1 relay connections become slow-loris"},
			{At: 500 * time.Millisecond, Point: "pool.conn/n1",
				Note: "n1 recovers"},
		},
	})
	defer stop()

	report := driveWorkloadA(t, cc.front, site, 800*time.Millisecond, 1)
	if err := join(); err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("lost %d of %d requests under slow-replica fault (seed %d)",
			report.Errors, report.Requests, h.In.Seed())
	}
	if h.In.Fired("pool.conn/n1") == 0 {
		t.Fatal("schedule never hit the fault point — scenario exercised nothing")
	}
	assertMappingDrains(t, cc.dist)
}

// TestChaosReplicationStreamTakeover: the backup must still take over
// when the replication stream is truncated or corrupted mid-run, using
// the last good snapshot.
func TestChaosReplicationStreamTakeover(t *testing.T) {
	cases := []struct {
		name string
		rule faults.Rule
	}{
		{"truncation", faults.Rule{DropAfterBytes: 200}},
		{"corruption", faults.Rule{CorruptEveryN: 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := faults.NewHarness(faults.Seed(202), t.Logf)
			cc := startChaosCluster(t, h.In, 2)
			site := chaosSite(t, cc, 20, 202)

			repl := distributor.NewReplicationServer(cc.dist, 25*time.Millisecond)
			repl.SetFaults(h.In)
			replAddr, err := repl.Start("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			serviceAddr := cc.front
			promote := func(table *urltable.Table, spec config.ClusterSpec) (*distributor.Distributor, error) {
				d, err := distributor.New(distributor.Options{Table: table, Cluster: spec})
				if err != nil {
					return nil, err
				}
				// The failed primary's port may linger briefly.
				for i := 0; i < 100; i++ {
					if _, err = d.Start(serviceAddr); err == nil {
						return d, nil
					}
					time.Sleep(10 * time.Millisecond)
				}
				return nil, err
			}
			b := distributor.NewBackup(replAddr, 150*time.Millisecond, promote)
			if err := b.Start(); err != nil {
				t.Fatal(err)
			}

			// Schedule: once a full snapshot has replicated, break the
			// stream and crash the primary.
			rule := tc.rule
			join, stop := h.Go(faults.Scenario{
				Name: "repl-" + tc.name,
				Steps: []faults.Step{
					{At: 0, Action: func() {
						if !testutil.EventuallyTrue(3*time.Second, b.StateReceived) {
							t.Error("no snapshot replicated before fault")
						}
					}, Note: "wait for first full snapshot"},
					{At: 0, Point: "repl.feed", Rule: &rule,
						Note: "break the replication stream (" + tc.name + ")"},
					{At: 200 * time.Millisecond, Action: func() {
						_ = repl.Close()
						_ = cc.dist.Close()
					}, Note: "crash the primary"},
				},
			})
			defer stop()
			if err := join(); err != nil {
				t.Fatal(err)
			}

			successor, err := b.Promoted(5 * time.Second)
			if err != nil {
				t.Fatalf("takeover under %s failed (seed %d): %v", tc.name, h.In.Seed(), err)
			}
			if successor == nil {
				t.Fatalf("no takeover under %s (seed %d)", tc.name, h.In.Seed())
			}
			defer func() { _ = successor.Close() }()
			if got, want := successor.Table().Len(), cc.table.Len(); got != want {
				t.Fatalf("replicated table has %d entries, want %d", got, want)
			}
			// The cluster serves again on the original service address.
			obj := site.ByRank(0)
			testutil.Eventually(t, 3*time.Second, func() bool {
				resp, err := getOnce(serviceAddr, obj.Path)
				return err == nil && resp.StatusCode == 200
			}, "post-takeover fetch of %s never succeeded", obj.Path)
			if h.In.Fired("repl.feed") == 0 {
				t.Fatal("stream fault never fired")
			}
		})
	}
}

// TestChaosBackendCrashRestartUnderLoad: one node crashes mid-run and
// later restarts on the same address while Workload-A traffic flows.
// Every request must be absorbed by the surviving replica (zero errors),
// and the mapping table must drain afterwards.
func TestChaosBackendCrashRestartUnderLoad(t *testing.T) {
	h := faults.NewHarness(faults.Seed(303), t.Logf)
	cc := startChaosCluster(t, h.In, 2)
	site := chaosSite(t, cc, 60, 303)

	n1Addr := ""
	for _, n := range cc.spec.Nodes {
		if n.ID == "n1" {
			n1Addr = n.Addr
		}
	}
	join, stop := h.Go(faults.Scenario{
		Name: "crash-restart",
		Steps: []faults.Step{
			{At: 150 * time.Millisecond, Action: func() {
				_ = cc.backends["n1"].Close()
			}, Note: "crash n1"},
			{At: 450 * time.Millisecond, Action: func() {
				srv, err := backend.NewServer(backend.ServerOptions{
					Spec: config.NodeSpec{
						ID: "n1", CPUMHz: 350, MemoryMB: 64,
						Disk: config.DiskSCSI, Platform: config.LinuxApache,
					},
					Store:  cc.stores["n1"],
					Faults: h.In,
				})
				if err != nil {
					t.Errorf("rebuilding n1: %v", err)
					return
				}
				registerChaosDynamic(srv, "n1")
				if _, err := srv.Start(n1Addr); err != nil {
					t.Errorf("restarting n1 on %s: %v", n1Addr, err)
					return
				}
				t.Cleanup(func() { _ = srv.Close() })
			}, Note: "restart n1 on the same address"},
		},
	})
	defer stop()

	report := driveWorkloadA(t, cc.front, site, 800*time.Millisecond, 2)
	if err := join(); err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 {
		t.Fatalf("lost %d of %d requests across crash/restart (seed %d)",
			report.Errors, report.Requests, h.In.Seed())
	}
	assertMappingDrains(t, cc.dist)
}

// TestChaosProberBlackhole: black-holing one node's health probes in a
// full cluster must take it out of routing (traffic continues on the
// replica) and restore it when the blackhole lifts.
func TestChaosProberBlackhole(t *testing.T) {
	testutil.NoLeaks(t)
	h := faults.NewHarness(faults.Seed(404), t.Logf)
	cluster, err := core.Launch(core.Options{
		MonitorInterval: 20 * time.Millisecond,
		Faults:          h.In,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	obj := content.Object{Path: "/ha.html", Size: 1, Class: content.ClassHTML}
	if err := cluster.Controller.Insert(obj, []byte("x"), "fast-1", "mid-1"); err != nil {
		t.Fatal(err)
	}

	h.In.Set("probe/mid-1", faults.Rule{Refuse: true})
	testutil.Eventually(t, 3*time.Second, func() bool {
		return !cluster.Distributor.Available("mid-1")
	}, "black-holed node never left routing")
	for i := 0; i < 5; i++ {
		resp, err := cluster.Get("/ha.html")
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("fetch with mid-1 black-holed: %v %v", resp, err)
		}
		if got := resp.Header.Get("X-Served-By"); got != "fast-1" {
			t.Fatalf("served by %s while mid-1 is unroutable", got)
		}
	}

	h.In.Clear("probe/mid-1")
	testutil.Eventually(t, 3*time.Second, func() bool {
		return cluster.Distributor.Available("mid-1")
	}, "node never rejoined routing after blackhole lifted")
	if h.In.Fired("probe/mid-1") == 0 {
		t.Fatal("blackhole rule never fired")
	}
}

// TestChaosStaleOnError: with the response cache enabled, black-holing
// every replica of a hot path after its freshness lapses must degrade to
// stale-on-error service (the expired copy, marked STALE) instead of a
// 502 — and once the replicas recover, the next fetch revalidates and
// the path returns to fresh HIT service.
func TestChaosStaleOnError(t *testing.T) {
	h := faults.NewHarness(faults.Seed(505), t.Logf)
	rc := respcache.New(respcache.Options{
		FreshTTL: 100 * time.Millisecond,
		StaleTTL: time.Hour,
	})
	cc := startChaosCluster(t, h.In, 2, func(o *distributor.Options) { o.Cache = rc })
	body := []byte("<html>hot object v1</html>")
	for _, id := range []config.NodeID{"n1", "n2"} {
		if err := cc.stores[id].Put("/hot.html", body); err != nil {
			t.Fatal(err)
		}
	}
	obj := content.Object{Path: "/hot.html", Size: int64(len(body)), Class: content.ClassHTML}
	if err := cc.table.Insert(obj, "n1", "n2"); err != nil {
		t.Fatal(err)
	}

	// warm the cache, then let freshness lapse
	resp, err := getOnce(cc.front, "/hot.html")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("warming fetch: %v %v", resp, err)
	}
	if got := resp.Header.Get("X-Dist-Cache"); got != "MISS" {
		t.Fatalf("warming verdict = %q", got)
	}
	time.Sleep(150 * time.Millisecond)

	// every replica becomes a slow-loris: each exchange stalls past the
	// 250ms deadline, so no back end can answer or revalidate
	h.In.Set("pool.conn/n1", faults.Rule{ReadStall: time.Minute})
	h.In.Set("pool.conn/n2", faults.Rule{ReadStall: time.Minute})
	resp, err = getOnce(cc.front, "/hot.html")
	if err != nil {
		t.Fatalf("fetch with all replicas down: %v", err)
	}
	if resp.StatusCode != 200 || !bytes.Equal(resp.Body, body) {
		t.Fatalf("stale-on-error: status=%d body=%q", resp.StatusCode, resp.Body)
	}
	if got := resp.Header.Get("X-Dist-Cache"); got != "STALE" {
		t.Fatalf("blackholed verdict = %q, want STALE (seed %d)", got, h.In.Seed())
	}
	if h.In.Fired("pool.conn/n1")+h.In.Fired("pool.conn/n2") == 0 {
		t.Fatal("blackhole rules never fired")
	}

	// recovery: the stalls lift, the stale entry revalidates (the body
	// never changed, so the back end answers 304), and service is fresh
	h.In.Clear("pool.conn/n1")
	h.In.Clear("pool.conn/n2")
	resp, err = getOnce(cc.front, "/hot.html")
	if err != nil {
		t.Fatalf("post-recovery fetch: %v", err)
	}
	if got := resp.Header.Get("X-Dist-Cache"); got != "REVALIDATED" && got != "MISS" {
		t.Fatalf("post-recovery verdict = %q (seed %d)", got, h.In.Seed())
	}
	if resp.StatusCode != 200 || !bytes.Equal(resp.Body, body) {
		t.Fatalf("post-recovery: status=%d body=%q", resp.StatusCode, resp.Body)
	}
	resp, err = getOnce(cc.front, "/hot.html")
	if err != nil || resp.Header.Get("X-Dist-Cache") != "HIT" {
		t.Fatalf("fresh service not restored: %v %v", resp, err)
	}
	if st := rc.Stats(); st.StaleServed == 0 || st.Revalidated == 0 {
		t.Fatalf("cache stats after scenario: %+v", st)
	}
	assertMappingDrains(t, cc.dist)
}

// TestChaosFlightRecorderCausalChain: killing a replica mid-traffic must
// leave a self-explaining flight bundle. The chain the bundle has to
// carry, linked by one incident trace ID: the injected fault on the
// node's connection pool, the distributor's failover decision away from
// it, the monitor taking it out of service, and the purge issued when
// the planner's repair round replicated critical content under the open
// incident. Reproducible from the harness seed (CHAOS_SEED).
func TestChaosFlightRecorderCausalChain(t *testing.T) {
	testutil.NoLeaks(t)
	h := faults.NewHarness(faults.Seed(606), t.Logf)
	dir := t.TempDir()
	balOpts := loadbal.DefaultPlannerOptions()
	balOpts.PriorityMinCopies = 2
	cluster, err := core.Launch(core.Options{
		MonitorInterval: 20 * time.Millisecond,
		Faults:          h.In,
		FlightDir:       dir,
		CacheBytes:      1 << 20,
		BalanceOptions:  balOpts,
		// Round-robin so the killed replica keeps being picked first (the
		// weighted default would park all idle traffic on fast-1 and never
		// exercise the failover).
		Picker: &loadbal.RoundRobin{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()

	// /ha.html is replicated so traffic survives the kill; /critical.html
	// sits below its availability floor on the node that stays up, so the
	// post-incident planning round must replicate (and purge) it.
	ha := content.Object{Path: "/ha.html", Size: 1, Class: content.ClassHTML}
	if err := cluster.Controller.Insert(ha, []byte("x"), "fast-1", "mid-1"); err != nil {
		t.Fatal(err)
	}
	crit := content.Object{Path: "/critical.html", Size: 1, Class: content.ClassHTML}
	if err := cluster.Controller.Insert(crit, []byte("c"), "fast-1"); err != nil {
		t.Fatal(err)
	}
	if err := cluster.Controller.SetPriority("/critical.html", 1); err != nil {
		t.Fatal(err)
	}
	if resp, err := cluster.Get("/ha.html"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("warming fetch: %v %v", resp, err)
	}

	// Kill mid-1's data plane: every pool connection is refused. Traffic
	// keeps flowing — each request that picks mid-1 fails over — and the
	// injector + distributor journal the fault and the failover under one
	// incident trace.
	h.In.Set("pool.conn/mid-1", faults.Rule{Refuse: true})
	hasEvent := func(kind journal.Kind) bool {
		for _, ev := range cluster.Journal.Snapshot(0) {
			if ev.Kind == kind {
				return true
			}
		}
		return false
	}
	testutil.Eventually(t, 5*time.Second, func() bool {
		if hasEvent(journal.KindFailover) {
			return true
		}
		// The query string bypasses the response cache so every fetch
		// exercises the relay (and, round-robin, the killed replica).
		resp, err := getOnce(cluster.FrontAddr, "/ha.html?nocache")
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("fetch with mid-1 killed: %v %v (seed %d)", resp, err, h.In.Seed())
		}
		return false
	}, "no failover journaled while mid-1's pool was refused (seed %d)", h.In.Seed())

	// The health plane notices next: black-hole mid-1's probes and wait
	// for the monitor's down transition on the same incident.
	h.In.Set("probe/mid-1", faults.Rule{Refuse: true})
	testutil.Eventually(t, 5*time.Second, func() bool {
		return hasEvent(journal.KindNodeDown)
	}, "monitor never journaled mid-1 going down (seed %d)", h.In.Seed())

	// Repair round while the incident is open: the availability floor
	// replicates /critical.html, purging it from the response cache with
	// the incident trace attached.
	if _ = cluster.Balancer.RunOnce(); !hasEvent(journal.KindPurge) {
		t.Fatalf("planning round journaled no purge (seed %d)", h.In.Seed())
	}

	bundlePath, err := cluster.Recorder.Dump("chaos causal chain")
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := journal.ReadBundle(bundlePath)
	if err != nil {
		t.Fatal(err)
	}

	// The whole chain must be in the bundle, linked by one trace ID.
	find := func(kind journal.Kind) *journal.Event {
		for i := range bundle.Events {
			if bundle.Events[i].Kind == kind {
				return &bundle.Events[i]
			}
		}
		return nil
	}
	fault := find(journal.KindFault)
	failover := find(journal.KindFailover)
	down := find(journal.KindNodeDown)
	// Insert-time purges carry no trace; the chain's purge is the one the
	// repair replication issued.
	var purge *journal.Event
	for i := range bundle.Events {
		if bundle.Events[i].Kind == journal.KindPurge && bundle.Events[i].Detail == "replicate" {
			purge = &bundle.Events[i]
		}
	}
	for name, ev := range map[string]*journal.Event{
		"fault": fault, "failover": failover, "node-down": down, "purge": purge,
	} {
		if ev == nil {
			t.Fatalf("bundle is missing the %s event (seed %d)", name, h.In.Seed())
		}
	}
	if fault.Trace == 0 {
		t.Fatalf("fault event carries no incident trace (seed %d)", h.In.Seed())
	}
	for name, ev := range map[string]*journal.Event{
		"failover": failover, "node-down": down, "purge": purge,
	} {
		if ev.Trace != fault.Trace {
			t.Fatalf("%s trace %016x != fault trace %016x: causal chain broken (seed %d)",
				name, ev.Trace, fault.Trace, h.In.Seed())
		}
	}
	if fault.Node != "mid-1" || failover.Node != "mid-1" || down.Node != "mid-1" {
		t.Fatalf("chain not anchored on mid-1: fault=%q failover=%q down=%q",
			fault.Node, failover.Node, down.Node)
	}
	if purge.Path != "/critical.html" {
		t.Fatalf("purge path = %q, want /critical.html", purge.Path)
	}
	if len(bundle.Sources) == 0 {
		t.Fatal("bundle carries no telemetry/placement sources")
	}
}

// getOnce issues one HTTP/1.1 request with Connection: close.
func getOnce(addr, path string) (*httpx.Response, error) {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return nil, err
	}
	defer func() { _ = conn.Close() }()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	req := &httpx.Request{
		Method: "GET",
		Target: path,
		Path:   path,
		Proto:  httpx.Proto11,
		Header: httpx.NewHeader("Host", "chaos", "Connection", "close"),
	}
	if err := httpx.WriteRequest(conn, req); err != nil {
		return nil, err
	}
	return httpx.ReadResponse(bufio.NewReader(conn))
}
