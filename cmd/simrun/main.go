// Command simrun replays a declarative workload scenario against the
// simulated cluster and writes the per-interval timeline as CSV — the
// day-long evaluation harness behind the scenario test suite.
//
// Usage:
//
//	simrun -scenario day -out timeline.csv
//	simrun -spec examples/scenarios/flashcrowd.json -time-scale 20 -out -
//
// Built-in scenarios: day (24 h diurnal curve with a flash crowd and a
// maintenance window over Workload B), flash-crowd (sustained hot-shift
// surge the auto-replication planner must absorb), surge (three SLO
// classes under a ×10 flash crowd — pair with -admit to watch the
// shedding ladder engage). A JSON spec file (-spec) overrides
// -scenario; see DESIGN.md §12 for the schema.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"webcluster/internal/sim"
	"webcluster/internal/workload"
)

func main() {
	scenario := flag.String("scenario", "day", "built-in scenario name (day|flash-crowd|surge)")
	specFile := flag.String("spec", "", "JSON workload-spec file (overrides -scenario)")
	out := flag.String("out", "timeline.csv", "timeline CSV path (- for stdout)")
	journalCSV := flag.String("journal-csv", "", "also write the planner decision journal as CSV (- for stdout)")
	seed := flag.Int64("seed", 0, "override the spec's seed (0 = keep)")
	timeScale := flag.Float64("time-scale", 0, "override the spec's time compression (0 = keep)")
	interval := flag.Duration("interval", 0, "override the timeline aggregation interval (0 = keep)")
	scheme := flag.String("scheme", "partition", "placement scheme (partition|full-replication|nfs)")
	autobalance := flag.Bool("autobalance", true, "run the auto-replication planner each interval")
	admit := flag.Bool("admit", false, "enable SLO-class admission control at the front end")
	admitMax := flag.Int("admit-max", 10, "admission concurrency budget (with -admit)")
	admitHeadroom := flag.Float64("admit-headroom", 4, "critical-class borrow factor over its share (with -admit)")
	quiet := flag.Bool("q", false, "suppress the summary on stderr")
	flag.Parse()

	var adm *sim.AdmissionParams
	if *admit {
		adm = &sim.AdmissionParams{MaxConcurrent: *admitMax, CriticalHeadroom: *admitHeadroom}
	}
	if err := run(*scenario, *specFile, *out, *journalCSV, *seed, *timeScale, *interval, *scheme, *autobalance, adm, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "simrun:", err)
		os.Exit(1)
	}
}

func run(scenario, specFile, out, journalCSV string, seed int64, timeScale float64, interval time.Duration, scheme string, autobalance bool, adm *sim.AdmissionParams, quiet bool) error {
	var spec *workload.Spec
	var err error
	if specFile != "" {
		spec, err = workload.LoadSpec(specFile)
	} else {
		spec, err = workload.BuiltinScenario(scenario)
	}
	if err != nil {
		return err
	}
	if seed != 0 {
		spec.Seed = seed
	}
	if timeScale > 0 {
		spec.TimeScale = timeScale
	}
	if interval > 0 {
		spec.Interval = workload.Duration(interval)
	}

	opts := sim.DefaultScenarioOptions()
	opts.AutoBalance = autobalance
	opts.Admission = adm
	switch scheme {
	case "partition":
		opts.Scheme = sim.SchemePartition
	case "full-replication":
		opts.Scheme = sim.SchemeFullReplication
	case "nfs":
		opts.Scheme = sim.SchemeNFS
	default:
		return fmt.Errorf("unknown scheme %q (want partition|full-replication|nfs)", scheme)
	}

	wallStart := time.Now()
	timeline, err := sim.RunScenario(spec, opts)
	if err != nil {
		return err
	}
	wall := time.Since(wallStart)

	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	if err := timeline.WriteCSV(w); err != nil {
		return err
	}
	if journalCSV != "" {
		jw := os.Stdout
		if journalCSV != "-" {
			f, err := os.Create(journalCSV)
			if err != nil {
				return err
			}
			defer func() { _ = f.Close() }()
			jw = f
		}
		if err := timeline.WriteDecisionsCSV(jw); err != nil {
			return err
		}
	}
	if !quiet {
		fmt.Fprint(os.Stderr, timeline.Summary())
		factor := float64(timeline.VirtualDuration) / float64(wall)
		fmt.Fprintf(os.Stderr, "  wall %v (%.0fx time compression)\n", wall.Round(time.Millisecond), factor)
		if out != "-" {
			fmt.Fprintf(os.Stderr, "  timeline written to %s\n", out)
		}
		if journalCSV != "" && journalCSV != "-" {
			fmt.Fprintf(os.Stderr, "  %d planner decisions written to %s\n", len(timeline.Decisions), journalCSV)
		}
	}
	return nil
}
