// Command distlint runs the repo's analyzer suite (see internal/lint)
// over the module: pooledescape, cowdiscipline, deadlinecheck,
// faulthook, lockscope, queuewait, and shardaffinity — the checks that
// machine-enforce the concurrency and data-path invariants of the hot
// paths.
//
// Usage:
//
//	distlint [-v] [packages...]
//
// With no arguments every package in the module is checked (testdata
// and the lint framework itself excluded). Package arguments are import
// paths relative to the module root, e.g. internal/distributor.
// Exits non-zero when any finding is reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"webcluster/internal/lint/distlint"
	"webcluster/internal/lint/load"
)

func main() {
	verbose := flag.Bool("v", false, "print every package as it is checked")
	list := flag.Bool("list", false, "list the analyzers and their docs, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: distlint [-v] [packages...]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := distlint.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modPath, err := load.FindModule(wd)
	if err != nil {
		fatal(err)
	}
	loader := load.NewLoader(root, modPath)

	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs, err = modulePackages(root)
		if err != nil {
			fatal(err)
		}
	}

	total := 0
	for _, rel := range pkgs {
		rel = strings.TrimPrefix(rel, "./")
		importPath := modPath + "/" + filepath.ToSlash(rel)
		if *verbose {
			fmt.Fprintf(os.Stderr, "distlint: checking %s\n", importPath)
		}
		pkg, err := loader.LoadDir(filepath.Join(root, rel), importPath)
		if err != nil {
			fatal(err)
		}
		findings, err := distlint.Run(pkg, suite)
		if err != nil {
			fatal(err)
		}
		for _, f := range findings {
			rf := f
			if r, err := filepath.Rel(root, f.Pos.Filename); err == nil {
				rf.Pos.Filename = r
			}
			fmt.Println(rf)
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "distlint: %d finding(s)\n", total)
		os.Exit(1)
	}
}

// modulePackages walks the module for directories containing Go files,
// skipping testdata, hidden directories, and the lint framework's own
// fixtures (internal/lint is excluded by scope anyway, but skipping it
// here avoids type-checking fixture packages that deliberately break
// invariants).
func modulePackages(root string) ([]string, error) {
	var pkgs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if strings.HasPrefix(filepath.ToSlash(rel), "internal/lint/") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				pkgs = append(pkgs, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	sort.Strings(pkgs)
	return pkgs, err
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "distlint: %v\n", err)
	os.Exit(1)
}
