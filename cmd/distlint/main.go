// Command distlint runs the repo's analyzer suite (see internal/lint)
// over the module: pooledescape, cowdiscipline, deadlinecheck,
// faulthook, leakcheck, lockscope, queuewait, and shardaffinity — the
// checks that machine-enforce the concurrency and data-path invariants
// of the hot paths.
//
// Usage:
//
//	distlint [-v] [-json] [packages...]
//
// With no arguments every package in the module is checked (testdata
// and the lint framework itself excluded). Package arguments are import
// paths relative to the module root, e.g. internal/distributor.
// Exits non-zero when any finding is reported.
//
// All packages of one invocation share a single analysis module, so
// the interprocedural analyzers see the whole call graph, analyzer
// facts flow between packages, and every //distlint:ignore directive
// is audited: one that names an unknown analyzer or no longer
// suppresses anything is itself a finding.
//
// -json emits the findings as a JSON array on stdout (one object per
// finding: analyzer, file, line, col, message) for tooling; the
// default text format file:line:col: analyzer: message is what the CI
// problem matcher (.github/problem-matcher-distlint.json) parses to
// annotate PR diffs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"webcluster/internal/lint/distlint"
	"webcluster/internal/lint/load"
)

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	verbose := flag.Bool("v", false, "print every package as it is checked")
	list := flag.Bool("list", false, "list the analyzers and their docs, then exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: distlint [-v] [-json] [packages...]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := distlint.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, modPath, err := load.FindModule(wd)
	if err != nil {
		fatal(err)
	}
	loader := load.NewLoader(root, modPath)

	rels := flag.Args()
	if len(rels) == 0 {
		rels, err = modulePackages(root)
		if err != nil {
			fatal(err)
		}
	}

	var pkgs []*load.Package
	for _, rel := range rels {
		rel = strings.TrimPrefix(rel, "./")
		importPath := modPath + "/" + filepath.ToSlash(rel)
		if *verbose {
			fmt.Fprintf(os.Stderr, "distlint: loading %s\n", importPath)
		}
		pkg, err := loader.LoadDir(filepath.Join(root, rel), importPath)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}

	runner := distlint.NewRunner(loader, suite)
	runner.Audit = true
	findings, err := runner.Run(pkgs...)
	if err != nil {
		fatal(err)
	}
	// Report paths relative to the module root so output is stable
	// across checkouts (and matchable by the CI problem matcher).
	for i := range findings {
		if r, err := filepath.Rel(root, findings[i].Pos.Filename); err == nil {
			findings[i].Pos.Filename = r
		}
	}

	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     filepath.ToSlash(f.Pos.Filename),
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "distlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// modulePackages walks the module for directories containing Go files,
// skipping testdata, hidden directories, and the lint framework's own
// fixtures (internal/lint is excluded by scope anyway, but skipping it
// here avoids type-checking fixture packages that deliberately break
// invariants).
func modulePackages(root string) ([]string, error) {
	var pkgs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if strings.HasPrefix(filepath.ToSlash(rel), "internal/lint/") {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				pkgs = append(pkgs, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	sort.Strings(pkgs)
	return pkgs, err
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "distlint: %v\n", err)
	os.Exit(1)
}
