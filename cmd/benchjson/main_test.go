package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: webcluster
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkURLTableLookup         	 8094747	       157.3 ns/op	      1880 table-KB	       0 B/op	       0 allocs/op
BenchmarkDistributorRelayLarge/64KiB-4            	   21820	     50768 ns/op	1290.89 MB/s	    1251 B/op	      19 allocs/op
BenchmarkFigure2Partition	       1	1234567 ns/op	       456.7 req/s
PASS
ok  	webcluster	16.895s
`

func TestParse(t *testing.T) {
	results, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkURLTableLookup" || r.Iterations != 8094747 {
		t.Fatalf("first result = %+v", r)
	}
	if r.NsPerOp != 157.3 || r.BytesPerOp == nil || *r.BytesPerOp != 0 || r.AllocsPerOp == nil || *r.AllocsPerOp != 0 {
		t.Fatalf("first result stats = %+v", r)
	}
	if r.Metrics["table-KB"] != 1880 {
		t.Fatalf("custom metric = %+v", r.Metrics)
	}
	large := results[1]
	if large.Name != "BenchmarkDistributorRelayLarge/64KiB" {
		t.Fatalf("proc suffix not trimmed: %q", large.Name)
	}
	if large.MBPerSec != 1290.89 || large.AllocsPerOp == nil || *large.AllocsPerOp != 19 {
		t.Fatalf("large result = %+v", large)
	}
	fig := results[2]
	if fig.Metrics["req/s"] != 456.7 {
		t.Fatalf("fig result = %+v", fig)
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	in := "BenchmarkFoo\nBenchmarkBar-8 notanumber ns/op\n"
	results, err := parse(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from non-result lines", len(results))
	}
}
