// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array on stdout, so benchmark runs can be archived and diffed across
// commits (the `make bench` target pipes through it to produce
// BENCH_relay.json).
//
// Usage:
//
//	go test -bench 'Relay' -benchmem . | benchjson > BENCH_relay.json
//
// Only benchmark result lines are converted; the goos/pkg preamble and
// PASS/ok trailer are skipped. Custom b.ReportMetric units (req/s,
// cache-hit-%, …) are collected into the "metrics" map.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. BytesPerOp and AllocsPerOp are
// pointers so a measured zero (a -benchmem run on an allocation-free
// path, the thing benchguard gates) archives as an explicit 0 instead
// of vanishing behind omitempty.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerSec    float64            `json:"mb_per_sec,omitempty"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse collects every benchmark result line from sc.
func parse(sc *bufio.Scanner) ([]Result, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	results := []Result{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		if ok {
			results = append(results, r)
		}
	}
	return results, sc.Err()
}

// parseLine parses one "BenchmarkName-8  1000  123 ns/op  4 B/op ..." line.
// Returns ok=false for Benchmark-prefixed lines that are not results (e.g.
// a benchmark name printed alone before a sub-benchmark runs).
func parseLine(line string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, nil
	}
	r := Result{Name: trimProcSuffix(fields[0]), Iterations: iters}
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("%q: bad value %q", line, fields[i])
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "MB/s":
			r.MBPerSec = val
		case "B/op":
			b := int64(val)
			r.BytesPerOp = &b
		case "allocs/op":
			a := int64(val)
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = val
		}
	}
	return r, true, nil
}

// trimProcSuffix drops the trailing -<GOMAXPROCS> go test appends to
// benchmark names, keeping sub-benchmark paths intact.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
