// Command backend runs one back-end node: a web server plus its
// management broker, the pair that lives on every machine of the cluster.
//
// Usage:
//
//	backend -id n1 -cpu 350 -mem 128 -disk scsi [-listen :8081] [-broker :9081] [-nfs addr]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"webcluster/internal/backend"
	"webcluster/internal/config"
	"webcluster/internal/httpx"
	"webcluster/internal/journal"
	"webcluster/internal/mgmt"
	"webcluster/internal/nfs"
	"webcluster/internal/telemetry"
)

func main() {
	id := flag.String("id", "node1", "node identity")
	cpu := flag.Int("cpu", 350, "CPU MHz (capacity weighting)")
	mem := flag.Int("mem", 128, "memory MB (page-cache sizing)")
	diskGB := flag.Int("diskgb", 8, "disk size GB")
	disk := flag.String("disk", "scsi", "disk kind: ide|scsi")
	platform := flag.String("platform", "linux", "platform: linux|nt")
	listen := flag.String("listen", "127.0.0.1:0", "web server listen address")
	brokerAddr := flag.String("broker", "127.0.0.1:0", "broker listen address")
	nfsAddr := flag.String("nfs", "", "shared file server address (configuration 2)")
	docroot := flag.String("docroot", "", "serve content from this directory instead of memory")
	adminAddr := flag.String("admin", "", "serve /metrics, /debug/traces, /debug/vars, /healthz on this address; empty = off")
	journalSize := flag.Int("journal-size", 0, "node decision-journal capacity in events (0 = default 4096)")
	flag.Parse()
	if err := run(*id, *cpu, *mem, *diskGB, *disk, *platform, *listen, *brokerAddr, *nfsAddr, *docroot, *adminAddr, *journalSize); err != nil {
		fmt.Fprintln(os.Stderr, "backend:", err)
		os.Exit(1)
	}
}

func run(id string, cpu, mem, diskGB int, disk, platform, listen, brokerAddr, nfsAddr, docroot, adminAddr string, journalSize int) error {
	spec := config.NodeSpec{
		ID:       config.NodeID(id),
		CPUMHz:   cpu,
		MemoryMB: mem,
		DiskGB:   diskGB,
		Disk:     config.DiskSCSI,
		Platform: config.LinuxApache,
	}
	if strings.EqualFold(disk, "ide") {
		spec.Disk = config.DiskIDE
	}
	if strings.EqualFold(platform, "nt") {
		spec.Platform = config.WindowsNTIIS
	}

	var store backend.Store = &backend.MemStore{}
	var nfsClient *nfs.Client
	switch {
	case nfsAddr != "":
		nfsClient = nfs.Dial(nfsAddr)
		store = nfs.NewRemoteStore(nfsClient)
		defer func() { _ = nfsClient.Close() }()
	case docroot != "":
		ds, err := backend.NewDirStore(docroot)
		if err != nil {
			return err
		}
		store = ds
	}

	srv, err := backend.NewServer(backend.ServerOptions{Spec: spec, Store: store})
	if err != nil {
		return err
	}
	// Synthetic dynamic handlers matching the generated sites' layout.
	dyn := func(kind string) backend.DynamicHandler {
		return func(req *httpx.Request) ([]byte, float64, error) {
			body := fmt.Sprintf("<html>%s from %s: %s?%s</html>\n", kind, id, req.Path, req.Query)
			return []byte(body), 1.0, nil
		}
	}
	srv.HandlePrefix("/cgi-bin/", dyn("cgi"))
	srv.HandlePrefix("/asp/", dyn("asp"))

	webAddr, err := srv.Start(listen)
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()

	jnl := journal.New(journal.Options{Node: id, Size: journalSize})
	broker := mgmt.NewBroker(mgmt.Env{Node: spec.ID, Store: store, Server: srv, Journal: jnl})
	bAddr, err := broker.Start(brokerAddr)
	if err != nil {
		return err
	}
	defer func() { _ = broker.Close() }()

	if adminAddr != "" {
		admin := telemetry.NewAdmin(srv.Telemetry())
		admin.SetJournal(jnl)
		aAddr, aerr := admin.Start(adminAddr)
		if aerr != nil {
			return aerr
		}
		defer func() { _ = admin.Close() }()
		fmt.Printf("admin at http://%s/metrics\n", aAddr)
	}

	fmt.Printf("node %s up: web %s broker %s (%d MHz, %d MB, %s, %s)\n",
		id, webAddr, bAddr, cpu, mem, spec.Disk, spec.Platform)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return nil
}
