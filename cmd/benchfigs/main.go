// Command benchfigs regenerates every figure and table of the paper's
// evaluation (§5) from the cluster simulator and prints the same
// rows/series the paper reports.
//
// Usage:
//
//	benchfigs -exp all|fig2|fig3|fig4|overhead|balance|sensitivity|ablate-pick|ablate-weights [-objects N] [-seed N] [-fast] [-csv dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/loadbal"
	"webcluster/internal/sim"
	"webcluster/internal/urltable"
	"webcluster/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|fig2|fig3|fig4|overhead|balance|sensitivity|ablate-pick|ablate-weights")
	objects := flag.Int("objects", 0, "site object count (0 = default)")
	seed := flag.Int64("seed", 1, "random seed")
	fast := flag.Bool("fast", false, "shorter windows and fewer client counts")
	csvDir := flag.String("csv", "", "also write <dir>/figN.csv for plotting")
	flag.Parse()
	if err := run(*exp, *objects, *seed, *fast, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "benchfigs:", err)
		os.Exit(1)
	}
}

// writeCSV emits one comma-separated table.
func writeCSV(dir, name string, header []string, rows [][]string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("creating csv dir: %w", err)
	}
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for _, row := range rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Printf("(wrote %s)\n", path)
	return nil
}

// figureCSV converts a figure's series into CSV rows.
func figureCSV(dir, name string, fig sim.FigureData) error {
	header := []string{"clients"}
	for _, s := range fig.Series {
		header = append(header, s.Name)
	}
	var rows [][]string
	if len(fig.Series) > 0 {
		for i := range fig.Series[0].Points {
			row := []string{fmt.Sprint(fig.Series[0].Points[i].Clients)}
			for _, s := range fig.Series {
				row = append(row, fmt.Sprintf("%.1f", s.Points[i].Throughput))
			}
			rows = append(rows, row)
		}
	}
	return writeCSV(dir, name, header, rows)
}

func run(exp string, objects int, seed int64, fast bool, csvDir string) error {
	p := sim.DefaultExperimentParams()
	p.Seed = seed
	if objects > 0 {
		p.Objects = objects
	}
	if fast {
		p.ClientCounts = []int{8, 32, 64, 120}
		p.Warmup = 4 * time.Second
		p.Measure = 10 * time.Second
	}
	switch exp {
	case "all":
		for _, e := range []string{"overhead", "fig2", "fig3", "fig4", "balance", "sensitivity", "ablate-pick", "ablate-weights"} {
			if err := run(e, objects, seed, fast, csvDir); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	case "fig2":
		fig, err := sim.Figure2(p)
		if err != nil {
			return err
		}
		fmt.Print(fig.Render())
		detail(fig)
		if err := figureCSV(csvDir, "fig2.csv", fig); err != nil {
			return err
		}
	case "fig3":
		fig, err := sim.Figure3(p)
		if err != nil {
			return err
		}
		fmt.Print(fig.Render())
		detail(fig)
		if err := figureCSV(csvDir, "fig3.csv", fig); err != nil {
			return err
		}
	case "fig4":
		fig, err := sim.Figure4(p)
		if err != nil {
			return err
		}
		fmt.Print(fig.Render())
		var rows [][]string
		for _, r := range fig.Rows {
			rows = append(rows, []string{
				r.Class,
				fmt.Sprintf("%.1f", r.Baseline),
				fmt.Sprintf("%.1f", r.Segregated),
				fmt.Sprintf("%.1f", r.GainPercent),
			})
		}
		if err := writeCSV(csvDir, "fig4.csv",
			[]string{"class", "baseline", "segregated", "gain_pct"}, rows); err != nil {
			return err
		}
	case "overhead":
		return overhead(seed)
	case "balance":
		bp := sim.DefaultBalanceParams()
		bp.Seed = seed
		if objects > 0 {
			bp.Objects = objects
		}
		if fast {
			bp.Rounds = 4
			bp.Interval = 2 * time.Second
		}
		series, err := sim.AutoBalanceExperiment(bp)
		if err != nil {
			return err
		}
		fmt.Print(series.Render())
		var rows [][]string
		for _, pt := range series.Points {
			rows = append(rows, []string{
				fmt.Sprintf("%.0f", pt.At.Seconds()),
				fmt.Sprintf("%.1f", pt.Throughput),
				fmt.Sprintf("%.3f", pt.LoadCV),
				fmt.Sprint(pt.Actions),
				fmt.Sprint(pt.Replicas),
			})
		}
		if err := writeCSV(csvDir, "balance.csv",
			[]string{"t_sec", "req_per_sec", "load_cv", "actions", "copies"}, rows); err != nil {
			return err
		}
	case "sensitivity":
		sp := p
		if fast {
			sp.Warmup = 3 * time.Second
			sp.Measure = 8 * time.Second
		}
		thrash, err := sim.SensitivityThrash(sp, []float64{1, 4, 8, 16, 32})
		if err != nil {
			return err
		}
		fmt.Print(thrash.Render())
		fmt.Println()
		scale, err := sim.SensitivityScale(sp, []int{4000, 8000, 16000, 32000})
		if err != nil {
			return err
		}
		fmt.Print(scale.Render())
	case "ablate-pick":
		return ablatePick(p)
	case "ablate-weights":
		return ablateWeights()
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// detail prints cache-hit-rate and latency context under a figure (the
// mechanisms the paper credits for configuration 3's win).
func detail(fig sim.FigureData) {
	for _, s := range fig.Series {
		for _, pt := range s.Points {
			var lat time.Duration
			var n int64
			for _, cr := range pt.Result.PerClass {
				lat += cr.TotalLatency
				n += cr.Requests
			}
			if n > 0 {
				lat /= time.Duration(n)
			}
			fmt.Printf("  %s @ %d clients: cache hit %.1f%%, mean RT %v, errors %d",
				s.Name, pt.Clients, 100*pt.Result.CacheHitRate,
				lat.Round(10*time.Microsecond), pt.Result.Errors)
			if pt.Result.NFSOps > 0 {
				fmt.Printf(", NFS ops %d", pt.Result.NFSOps)
			}
			fmt.Println()
		}
	}
}

// overhead reproduces the §5.2 URL-table measurement: memory footprint and
// lookup latency at the paper's live-site scale (~8700 objects).
func overhead(seed int64) error {
	gen := content.DefaultGenParams()
	gen.Seed = seed
	site, err := content.GenerateSite(gen)
	if err != nil {
		return err
	}
	table := urltable.New(urltable.Options{CacheEntries: 1024})
	for _, obj := range site.Objects() {
		if err := table.Insert(obj, "n1"); err != nil {
			return err
		}
	}
	// Zipf-distributed lookups, as at peak load.
	g, err := workload.NewGenerator(site, workload.DefaultZipfS, seed)
	if err != nil {
		return err
	}
	const lookups = 200000
	paths := make([]string, lookups)
	for i := range paths {
		paths[i] = g.Next().Path
	}
	runtime.GC()
	start := time.Now()
	for _, p := range paths {
		if _, err := table.Route(p); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	st := table.Stats()
	fmt.Println("§5.2 URL-table overhead (paper: ~8700 objects, ~260 KB, 4.32 µs avg lookup)")
	fmt.Printf("objects: %d\n", st.Entries)
	fmt.Printf("table memory: %.0f KB\n", float64(st.MemBytes)/1024)
	fmt.Printf("avg lookup: %.2f µs over %d Zipf lookups (entry-cache hit %.1f%%)\n",
		float64(elapsed.Microseconds())/float64(lookups), lookups,
		100*float64(st.CacheHits)/float64(st.Lookups))
	return nil
}

// ablatePick compares replica-selection policies inside the content-aware
// distributor at the Figure 4 operating point.
func ablatePick(p ExperimentOverride) error {
	fmt.Println("Ablation: replica-selection policy (partition, Workload B, 120 clients)")
	fmt.Printf("%-10s%12s\n", "policy", "req/s")
	for _, name := range []string{"wlc", "lc", "rr", "random", "leastload"} {
		picker, err := loadbal.ByName(name, p.Seed)
		if err != nil {
			return err
		}
		res, err := runPartitionWithPicker(p, picker)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s%12.1f\n", name, res.Throughput())
	}
	return nil
}

// ExperimentOverride aliases sim.ExperimentParams for the ablations.
type ExperimentOverride = sim.ExperimentParams

// runPartitionWithPicker runs the partition scheme with a custom picker.
func runPartitionWithPicker(p sim.ExperimentParams, picker loadbal.Picker) (sim.Result, error) {
	site, err := workload.BuildSite(workload.KindB, p.Objects, p.Seed)
	if err != nil {
		return sim.Result{}, err
	}
	eng := &sim.Engine{}
	table, err := sim.PartitionSite(site, p.Spec, p.Placement)
	if err != nil {
		return sim.Result{}, err
	}
	cluster, err := sim.BuildCustom(eng, p.Hardware, p.Spec, table, picker)
	if err != nil {
		return sim.Result{}, err
	}
	rp := sim.DefaultRunParams(p.SaturationClients)
	rp.Seed = p.Seed
	rp.Warmup = p.Warmup
	rp.Measure = p.Measure
	return sim.Run(cluster, site, sim.SchemePartition, rp)
}

// ablateWeights compares the paper's §3.3 load-metric constants against
// uniform weights in the auto-replication planner: with a hot spot on one
// node, does the planner's classification match ground truth?
func ablateWeights() error {
	fmt.Println("Ablation: §3.3 load-metric constants (paper (1,9)/(10,5) vs uniform)")
	for _, cfg := range []struct {
		name    string
		weights loadbal.CostWeights
	}{
		{"paper", loadbal.PaperWeights()},
		{"uniform", loadbal.UniformWeights()},
	} {
		tr := loadbal.NewTracker(cfg.weights)
		// One node serving dynamic content at high processing time, one
		// serving static quickly, one idle.
		specs := []config.NodeSpec{
			{ID: "dyn", CPUMHz: 350, MemoryMB: 128},
			{ID: "static", CPUMHz: 350, MemoryMB: 128},
			{ID: "idle", CPUMHz: 350, MemoryMB: 128},
		}
		for i := 0; i < 100; i++ {
			tr.Record(specs[0].ID, content.ClassCGI, 30*time.Millisecond)
			tr.Record(specs[1].ID, content.ClassHTML, 2*time.Millisecond)
		}
		loads := tr.IntervalLoads(specs)
		levels := loadbal.Classify(loads, 0.25)
		fmt.Printf("%-8s L(dyn-node)=%.2f L(static-node)=%.2f L(idle)=%.2f → %v/%v/%v\n",
			cfg.name, loads[specs[0].ID], loads[specs[1].ID], loads[specs[2].ID],
			levels[specs[0].ID], levels[specs[1].ID], levels[specs[2].ID])
	}
	return nil
}
