// Command benchguard compares `go test -bench -benchmem` text output on
// stdin against an archived snapshot (BENCH_relay.json) and exits
// non-zero when a benchmark's allocs/op regresses past the tolerance.
// Allocation counts are deterministic even at -benchtime=100x, so CI can
// run a fast smoke pass and still catch fast-path regressions:
//
//	go test -run '^$' -bench 'BenchmarkDistributorRelay$' \
//	    -benchtime=100x -benchmem . | benchguard -snapshot BENCH_relay.json
//
// Only benchmarks present in both the input and the snapshot with a
// recorded allocs/op are compared; timings are ignored (they are noisy at
// smoke benchtimes).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// snapshotEntry mirrors the fields benchguard needs from the JSON that
// cmd/benchjson archives.
type snapshotEntry struct {
	Name        string `json:"name"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

func main() {
	snapshot := flag.String("snapshot", "BENCH_relay.json", "archived benchmark JSON to compare against")
	tolerance := flag.Int64("tolerance", 2, "allowed allocs/op increase over the snapshot")
	flag.Parse()

	baseline, err := readSnapshot(*snapshot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	current, err := parseBench(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	compared, failures := 0, 0
	for name, allocs := range current {
		base, ok := baseline[name]
		if !ok {
			continue
		}
		compared++
		if allocs > base+*tolerance {
			failures++
			fmt.Fprintf(os.Stderr, "benchguard: %s: %d allocs/op, snapshot %d (tolerance +%d)\n",
				name, allocs, base, *tolerance)
			continue
		}
		fmt.Printf("benchguard: %s: %d allocs/op (snapshot %d) ok\n", name, allocs, base)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmarks in common with the snapshot")
		os.Exit(2)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// readSnapshot loads the archived results, keeping entries that recorded
// an allocation count.
func readSnapshot(path string) (map[string]int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []snapshotEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := make(map[string]int64, len(entries))
	for _, e := range entries {
		if e.AllocsPerOp > 0 {
			out[e.Name] = e.AllocsPerOp
		}
	}
	return out, nil
}

// parseBench extracts name → allocs/op from benchmark result lines,
// skipping lines with no allocs/op column.
func parseBench(sc *bufio.Scanner) (map[string]int64, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	out := make(map[string]int64)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "allocs/op" {
				continue
			}
			allocs, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%q: bad allocs/op %q", line, fields[i])
			}
			out[trimProcSuffix(fields[0])] = allocs
		}
	}
	return out, sc.Err()
}

// trimProcSuffix drops the trailing -<GOMAXPROCS> go test appends to
// benchmark names, keeping sub-benchmark paths intact.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
