// Command benchguard compares `go test -bench -benchmem` text output on
// stdin against an archived snapshot (BENCH_relay.json) and exits
// non-zero when a benchmark regresses past tolerance. Two gates run per
// benchmark name present in both the input and the snapshot:
//
//   - allocs/op may not increase past -tolerance over the snapshot.
//     Allocation counts are deterministic even at -benchtime=100x, so CI
//     can run a fast smoke pass and still catch fast-path regressions.
//   - MB/s (for benchmarks that call b.SetBytes) may not drop more than
//     -mbps-tolerance (a fraction; 0.10 = 10%) below the snapshot.
//     Throughput is only meaningful at real benchtimes, so the MB/s gate
//     is skipped automatically when the input carries no MB/s column.
//
// Example:
//
//	go test -run '^$' -bench 'BenchmarkDistributorRelay$' \
//	    -benchtime=100x -benchmem . | benchguard -snapshot BENCH_relay.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// snapshotEntry mirrors the fields benchguard needs from the JSON that
// cmd/benchjson archives. AllocsPerOp is a pointer: an explicit 0 in
// the snapshot (an allocation-free fast path) arms the gate just like
// any other count, while an absent field leaves it off.
type snapshotEntry struct {
	Name        string  `json:"name"`
	AllocsPerOp *int64  `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
}

// measurement is one parsed benchmark result line from stdin. hasAllocs
// distinguishes a genuine 0 allocs/op from a missing -benchmem column.
type measurement struct {
	allocs    int64
	hasAllocs bool
	mbPerSec  float64
}

func main() {
	snapshot := flag.String("snapshot", "BENCH_relay.json", "archived benchmark JSON to compare against")
	tolerance := flag.Int64("tolerance", 2, "allowed allocs/op increase over the snapshot")
	mbpsTol := flag.Float64("mbps-tolerance", 0.10, "allowed fractional MB/s drop below the snapshot")
	flag.Parse()

	baseline, err := readSnapshot(*snapshot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}
	current, err := parseBench(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(2)
	}

	compared, failures := 0, 0
	for name, m := range current {
		base, ok := baseline[name]
		if !ok {
			continue
		}
		if m.hasAllocs && base.AllocsPerOp != nil {
			compared++
			if m.allocs > *base.AllocsPerOp+*tolerance {
				failures++
				fmt.Fprintf(os.Stderr, "benchguard: %s: %d allocs/op, snapshot %d (tolerance +%d)\n",
					name, m.allocs, *base.AllocsPerOp, *tolerance)
			} else {
				fmt.Printf("benchguard: %s: %d allocs/op (snapshot %d) ok\n", name, m.allocs, *base.AllocsPerOp)
			}
		}
		if m.mbPerSec > 0 && base.MBPerSec > 0 {
			compared++
			floor := base.MBPerSec * (1 - *mbpsTol)
			if m.mbPerSec < floor {
				failures++
				fmt.Fprintf(os.Stderr, "benchguard: %s: %.2f MB/s, snapshot %.2f (floor %.2f at -%.0f%%)\n",
					name, m.mbPerSec, base.MBPerSec, floor, *mbpsTol*100)
			} else {
				fmt.Printf("benchguard: %s: %.2f MB/s (snapshot %.2f) ok\n", name, m.mbPerSec, base.MBPerSec)
			}
		}
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmarks in common with the snapshot")
		os.Exit(2)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// readSnapshot loads the archived results, keeping entries that recorded
// an allocation count (including an explicit 0) or a throughput figure.
func readSnapshot(path string) (map[string]snapshotEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []snapshotEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	out := make(map[string]snapshotEntry, len(entries))
	for _, e := range entries {
		if e.AllocsPerOp != nil || e.MBPerSec > 0 {
			out[e.Name] = e
		}
	}
	return out, nil
}

// parseBench extracts name → {allocs/op, MB/s} from benchmark result
// lines, skipping columns a line does not carry.
func parseBench(sc *bufio.Scanner) (map[string]measurement, error) {
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	out := make(map[string]measurement)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			continue
		}
		var m measurement
		for i := 2; i+1 < len(fields); i += 2 {
			switch fields[i+1] {
			case "allocs/op":
				allocs, err := strconv.ParseInt(fields[i], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("%q: bad allocs/op %q", line, fields[i])
				}
				m.allocs, m.hasAllocs = allocs, true
			case "MB/s":
				mbps, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("%q: bad MB/s %q", line, fields[i])
				}
				m.mbPerSec = mbps
			}
		}
		if m.hasAllocs || m.mbPerSec > 0 {
			out[trimProcSuffix(fields[0])] = m
		}
	}
	return out, sc.Err()
}

// trimProcSuffix drops the trailing -<GOMAXPROCS> go test appends to
// benchmark names, keeping sub-benchmark paths intact.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
