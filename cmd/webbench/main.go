// Command webbench is the load generator (§5.1): closed-loop clients
// hammering a front end with a Zipf-skewed, heavy-tailed workload, then
// reporting throughput and per-class latency — the WebBench stand-in.
//
// The site description must match what was placed on the cluster (same
// workload kind, object count and seed — e.g. via `console loadsite`).
//
// Usage:
//
//	webbench -addr host:8080 -clients 32 -duration 10s -workload B -objects 500 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"webcluster/internal/trace"
	"webcluster/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "front-end address")
	clients := flag.Int("clients", 16, "concurrent closed-loop clients")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	wl := flag.String("workload", "A", "workload A|B")
	objects := flag.Int("objects", 500, "site object count (must match placement)")
	seed := flag.Int64("seed", 1, "site seed (must match placement)")
	zipf := flag.Float64("zipf", workload.DefaultZipfS, "popularity skew")
	think := flag.Duration("think", 0, "per-request think time")
	keepalive := flag.Bool("keepalive", true, "use HTTP/1.1 keep-alive")
	sessions := flag.Bool("sessions", false, "SURGE-style session model (pages + embedded objects + think time) instead of per-request closed loop")
	replayFile := flag.String("replay", "", "replay this Common Log Format access log instead of generating load")
	speedup := flag.Float64("speedup", 0, "replay: divide recorded inter-arrival gaps (0 = as fast as possible)")
	flag.Parse()
	if *replayFile != "" {
		if err := runReplay(*addr, *replayFile, *speedup, *clients); err != nil {
			fmt.Fprintln(os.Stderr, "webbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*addr, *clients, *duration, *wl, *objects, *seed, *zipf, *think, *keepalive, *sessions); err != nil {
		fmt.Fprintln(os.Stderr, "webbench:", err)
		os.Exit(1)
	}
}

// runReplay drives the front end from a recorded access log.
func runReplay(addr, file string, speedup float64, concurrency int) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	entries, err := trace.Read(f)
	if err != nil {
		return err
	}
	fmt.Printf("replaying %d entries from %s against %s (speedup %.1f)\n",
		len(entries), file, addr, speedup)
	report, err := trace.Replay(entries, trace.ReplayOptions{
		Addr: addr, Speedup: speedup, Concurrency: concurrency,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d requests in %v, %d errors, %d status mismatches\n",
		report.Requests, report.Elapsed.Round(time.Millisecond),
		report.Errors, report.StatusMismatches)
	return nil
}

func run(addr string, clients int, duration time.Duration, wl string, objects int,
	seed int64, zipf float64, think time.Duration, keepalive, sessions bool) error {
	kind := workload.KindA
	if wl == "B" || wl == "b" {
		kind = workload.KindB
	}
	site, err := workload.BuildSite(kind, objects, seed+1)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s: %d objects (%d MB), %d clients for %v against %s\n",
		kind, site.Len(), site.TotalBytes()>>20, clients, duration, addr)

	if sessions {
		report, err := workload.RunSessionPool(workload.SessionPoolOptions{
			Addr:      addr,
			Users:     clients,
			Duration:  duration,
			Site:      site,
			ZipfS:     zipf,
			MeanThink: think,
			Seed:      seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("\n%s\n", report)
		return nil
	}

	report, err := workload.RunClientPool(workload.ClientPoolOptions{
		Addr:      addr,
		Clients:   clients,
		Duration:  duration,
		Site:      site,
		ZipfS:     zipf,
		Seed:      seed,
		ThinkTime: think,
		KeepAlive: keepalive,
	})
	if err != nil {
		return err
	}

	fmt.Printf("\n%s\n", report)
	classes := make([]string, 0, len(report.PerClass))
	for class := range report.PerClass {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	fmt.Printf("%-8s%10s%10s%12s%12s%12s%12s\n",
		"class", "reqs", "errors", "mean", "p50", "p95", "p99")
	for _, class := range classes {
		cr := report.PerClass[class]
		r := func(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }
		fmt.Printf("%-8s%10d%10d%12v%12v%12v%12v\n",
			class, cr.Requests, cr.Errors, r(cr.MeanLat), r(cr.P50), r(cr.P95), r(cr.P99))
	}
	return nil
}
