// Command nfsserver runs the shared file server of configuration 2
// (§1.1/§5.3): one central store every web node fetches from. Point
// cmd/backend processes at it with -nfs.
//
// Usage:
//
//	nfsserver -listen :2049 [-docroot dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"webcluster/internal/backend"
	"webcluster/internal/nfs"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:2049", "listen address")
	docroot := flag.String("docroot", "", "serve files from this directory (default: in-memory)")
	flag.Parse()
	if err := run(*listen, *docroot); err != nil {
		fmt.Fprintln(os.Stderr, "nfsserver:", err)
		os.Exit(1)
	}
}

func run(listen, docroot string) error {
	var store backend.Store = &backend.MemStore{}
	if docroot != "" {
		ds, err := backend.NewDirStore(docroot)
		if err != nil {
			return err
		}
		store = ds
		fmt.Printf("serving from %s\n", ds.Root())
	}
	srv := nfs.NewServer(store)
	addr, err := srv.Start(listen)
	if err != nil {
		return err
	}
	defer func() { _ = srv.Close() }()
	fmt.Printf("shared file server at %s\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("served %d operations (%d bytes out), shutting down\n",
		srv.Requests.Value(), srv.BytesOut.Value())
	return nil
}
