// Command console is the remote console (§3.2): it connects to the
// controller's console endpoint and performs management operations against
// the single-system-image document tree.
//
// Usage:
//
//	console -addr host:7070 tree
//	console -addr host:7070 insert /docs/a.html -size 4096 -nodes n1,n2
//	console -addr host:7070 replicate /docs/a.html -target n3
//	console -addr host:7070 offload /docs/a.html -node n1
//	console -addr host:7070 rename /docs/a.html /docs/b.html
//	console -addr host:7070 delete /docs/b.html
//	console -addr host:7070 priority /docs/b.html -p 2
//	console -addr host:7070 status n1
//	console -addr host:7070 loadsite -objects 500 -workload B -policy type
//	console -addr host:7070 balance
//	console -addr host:7070 purge /docs/b.html    # or: purge '*'
//	console -addr host:7070 cache-stats
//	console -addr host:7070 stats                 # cluster-wide per-class latency/throughput
//	console -addr host:7070 traces -limit 10      # slowest recent requests across all nodes
//	console -addr host:7070 audit
//	console -addr host:7070 journal -limit 50     # merged cluster decision journal
//	console -addr host:7070 journal -follow       # tail it live
//	console -addr host:7070 journal -node n1      # one node's journal only
//	console -addr host:7070 explain /docs/a.html  # where is it, which decision placed it
//	console -addr host:7070 dump "why is n2 slow" # snapshot a flight-recorder bundle
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/journal"
	"webcluster/internal/mgmt"
	"webcluster/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "console endpoint of the controller")
	flag.Parse()
	if err := run(*addr, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "console:", err)
		os.Exit(1)
	}
}

func run(addr string, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("no command; see -h for usage")
	}
	// Sub-command flags come after the command word and its positional
	// arguments, so each command parses its own FlagSet.
	sub := flag.NewFlagSet(args[0], flag.ContinueOnError)
	size := sub.Int64("size", 0, "object size for insert")
	prio := sub.Int("p", 0, "priority value")
	nodesCSV := sub.String("nodes", "", "comma-separated node list")
	source := sub.String("source", "", "replication source node")
	target := sub.String("target", "", "replication target node")
	node := sub.String("node", "", "node for offload")
	objects := sub.Int("objects", 500, "loadsite: object count")
	seed := sub.Int64("seed", 1, "loadsite: seed")
	wl := sub.String("workload", "A", "loadsite: workload A|B")
	policy := sub.String("policy", "type", "loadsite: placement policy type|all|rr")
	limit := sub.Int("limit", 0, "traces/journal/explain: max entries to show (0 = server default)")
	follow := sub.Bool("follow", false, "journal: poll and print new events until interrupted")

	// Split positionals (up to the first -flag) from the flag tail.
	rest := args[1:]
	var pos []string
	for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		pos = append(pos, rest[0])
		rest = rest[1:]
	}
	if err := sub.Parse(rest); err != nil {
		return err
	}
	console, err := mgmt.DialConsole(addr)
	if err != nil {
		return err
	}
	defer func() { _ = console.Close() }()

	var nodeIDs []config.NodeID
	if *nodesCSV != "" {
		for _, s := range strings.Split(*nodesCSV, ",") {
			nodeIDs = append(nodeIDs, config.NodeID(strings.TrimSpace(s)))
		}
	}

	req := mgmt.ConsoleRequest{Op: args[0]}
	switch args[0] {
	case "tree", "nodes", "audit", "balance", "cache-stats", "stats":
	case "traces":
		req.Limit = *limit
	case "journal":
		req.Limit = *limit
		req.Node = config.NodeID(*node)
	case "dump":
		// Optional positional: the reason recorded in the bundle.
		if len(pos) > 0 {
			req.Path = strings.Join(pos, " ")
		}
	case "explain":
		if len(pos) < 1 {
			return fmt.Errorf("explain needs a path")
		}
		req.Path, req.Limit = pos[0], *limit
	case "purge":
		if len(pos) < 1 {
			return fmt.Errorf("purge needs a path (or *)")
		}
		req.Path = pos[0]
	case "insert":
		if len(pos) < 1 {
			return fmt.Errorf("insert needs a path")
		}
		req.Path, req.Size, req.Priority, req.Nodes = pos[0], *size, *prio, nodeIDs
		body := strings.Repeat(pos[0]+"\n", int(*size/int64(len(pos[0])+1))+1)
		req.Data = []byte(body)[:*size]
	case "delete":
		if len(pos) < 1 {
			return fmt.Errorf("delete needs a path")
		}
		req.Path = pos[0]
	case "rename":
		if len(pos) < 2 {
			return fmt.Errorf("rename needs old and new paths")
		}
		req.Path, req.NewPath = pos[0], pos[1]
	case "replicate":
		if len(pos) < 1 {
			return fmt.Errorf("replicate needs a path")
		}
		req.Path, req.Source, req.Target = pos[0], config.NodeID(*source), config.NodeID(*target)
	case "offload":
		if len(pos) < 1 {
			return fmt.Errorf("offload needs a path")
		}
		req.Path, req.Node = pos[0], config.NodeID(*node)
	case "assign":
		if len(pos) < 1 {
			return fmt.Errorf("assign needs a path")
		}
		req.Path, req.Nodes = pos[0], nodeIDs
	case "priority":
		if len(pos) < 1 {
			return fmt.Errorf("priority needs a path")
		}
		req.Path, req.Priority = pos[0], *prio
	case "pin", "unpin", "verify":
		if len(pos) < 1 {
			return fmt.Errorf("%s needs a path", args[0])
		}
		req.Path = pos[0]
	case "update":
		if len(pos) < 1 {
			return fmt.Errorf("update needs a path")
		}
		req.Path = pos[0]
		body := strings.Repeat(pos[0]+"\n", int(*size/int64(len(pos[0])+1))+1)
		req.Data = []byte(body)[:*size]
	case "status":
		if len(pos) < 1 {
			return fmt.Errorf("status needs a node")
		}
		req.Node = config.NodeID(pos[0])
	case "loadsite":
		req.Objects, req.Seed, req.Workload, req.Policy = *objects, *seed, *wl, *policy
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}

	if args[0] == "journal" && *follow {
		return followJournal(console, req)
	}

	resp, err := console.Do(req)
	if err != nil {
		return err
	}
	printed := false
	if resp.Message != "" {
		fmt.Println(resp.Message)
		printed = true
	}
	switch {
	case resp.Stats != nil:
		printStats(resp.Stats)
	case resp.Explain != nil:
		printExplain(resp.Explain)
	case resp.Journal != nil:
		printJournal(resp.Journal)
	case resp.Traces != nil:
		printTraces(resp.Traces)
	case resp.Cache != nil:
		cs := resp.Cache
		fmt.Printf("entries=%d bytes=%d/%d\n", cs.Entries, cs.Bytes, cs.MaxBytes)
		fmt.Printf("hits=%d misses=%d revalidated=%d notModified=%d\n",
			cs.Hits, cs.Misses, cs.Revalidated, cs.NotModified)
		fmt.Printf("coalesced=%d fills=%d rejected=%d evictions=%d\n",
			cs.Coalesced, cs.Fills, cs.Rejected, cs.Evictions)
		fmt.Printf("staleServed=%d invalidations=%d\n", cs.StaleServed, cs.Invalidations)
	case resp.Tree != "":
		fmt.Print(resp.Tree)
	case resp.Status != nil:
		st := resp.Status
		fmt.Printf("node %s: active=%d served=%d store=%d objs / %d bytes cacheHit=%.1f%%\n",
			st.Node, st.ActiveRequests, st.RequestsServed,
			st.StoreObjects, st.StoreBytes, 100*st.CacheHitRate)
		if st.LatencyP50Ns > 0 || st.LatencyP99Ns > 0 {
			fmt.Printf("latency p50=%s p99=%s\n", fmtNs(st.LatencyP50Ns), fmtNs(st.LatencyP99Ns))
		}
	case len(resp.Audit) > 0:
		for _, line := range resp.Audit {
			fmt.Println(line)
		}
	case len(resp.Actions) > 0:
		for _, a := range resp.Actions {
			fmt.Println(a)
		}
	case len(resp.Nodes) > 0:
		for _, n := range resp.Nodes {
			fmt.Println(n)
		}
	default:
		if !printed {
			fmt.Println("ok")
		}
	}
	return nil
}

// followJournal tails the cluster journal: poll, print events newer than
// the last seen sequence per source, repeat until interrupted.
func followJournal(console *mgmt.Console, req mgmt.ConsoleRequest) error {
	seen := make(map[string]uint64)
	first := true
	for {
		resp, err := console.Do(req)
		if err != nil {
			return err
		}
		for _, ev := range resp.Journal {
			if ev.Seq <= seen[ev.Src] {
				continue
			}
			seen[ev.Src] = ev.Seq
			printEvent(ev)
		}
		if first && len(resp.Journal) == 0 {
			fmt.Fprintln(os.Stderr, "journal empty; waiting for events...")
		}
		first = false
		time.Sleep(time.Second)
	}
}

// printJournal renders merged journal events, oldest first.
func printJournal(evs []journal.Event) {
	if len(evs) == 0 {
		fmt.Println("no journal events")
		return
	}
	for _, ev := range evs {
		printEvent(ev)
	}
}

// printEvent renders one journal event on one line.
func printEvent(ev journal.Event) {
	fmt.Printf("%s %-11s %-6s %-17s",
		time.Unix(0, ev.Time).Format("15:04:05.000"), ev.Src+"/"+fmt.Sprint(ev.Seq), ev.Actor, ev.Kind)
	if ev.Trace != 0 {
		fmt.Printf(" trace=%016x", ev.Trace)
	}
	if ev.Node != "" {
		fmt.Printf(" node=%s", ev.Node)
	}
	if ev.Path != "" {
		fmt.Printf(" path=%s", ev.Path)
	}
	if ev.Detail != "" {
		fmt.Printf(" %s", ev.Detail)
	}
	if ev.A != 0 {
		fmt.Printf(" a=%d", ev.A)
	}
	if ev.F != 0 {
		fmt.Printf(" cv=%.3f", ev.F)
	}
	fmt.Println()
}

// printExplain renders a placement explanation: current location state,
// the decision that produced it, and the document's event history.
func printExplain(ex *mgmt.ExplainReport) {
	locs := make([]string, len(ex.Locations))
	for i, id := range ex.Locations {
		locs[i] = string(id)
	}
	fmt.Printf("%s\n", ex.Path)
	fmt.Printf("  locations: %s\n", strings.Join(locs, ", "))
	fmt.Printf("  hits=%d size=%d priority=%d pinned=%v\n", ex.Hits, ex.Size, ex.Priority, ex.Pinned)
	if ex.Decision != nil {
		d := ex.Decision
		fmt.Printf("  placed by %s decision at %s on %s (demand %d hits, load CV %.3f)\n",
			d.Kind, time.Unix(0, d.Time).Format("15:04:05.000"), d.Node, d.A, d.F)
		if d.Detail != "" {
			fmt.Printf("    %s\n", d.Detail)
		}
	} else {
		fmt.Println("  no planner decision recorded (initial placement or journal rotated)")
	}
	if len(ex.History) > 0 {
		fmt.Println("  history:")
		for _, ev := range ex.History {
			fmt.Print("    ")
			printEvent(ev)
		}
	}
}

// fmtNs renders a nanosecond figure as a human duration.
func fmtNs(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}

// printStats renders the cluster-wide single-system-image view: per-class
// request and latency figures merged across every node's histograms.
func printStats(st *telemetry.ClusterStats) {
	fmt.Printf("sources: %s\n", strings.Join(st.Sources, ", "))
	if len(st.Classes) == 0 {
		fmt.Println("no traffic recorded")
		return
	}
	fmt.Printf("%-10s %9s %6s %9s %9s %9s %9s %9s %9s\n",
		"CLASS", "REQS", "ERR", "RATE/S", "MEAN", "P50", "P90", "P99", "MAX")
	for _, c := range st.Classes {
		fmt.Printf("%-10s %9d %6d %9.1f %9s %9s %9s %9s %9s\n",
			c.Class, c.Requests, c.Errors, c.RatePerSec,
			fmtNs(c.MeanNs), fmtNs(c.P50Ns), fmtNs(c.P90Ns), fmtNs(c.P99Ns), fmtNs(c.MaxNs))
	}
	printAdmission(st.Merged.Counters)
}

// printAdmission renders the overload-control ledger when the
// distributor runs with admission enabled: per SLO class, how many
// requests were offered, admitted, degraded to stale cache answers, or
// shed outright. Silent when no admission counters exist (admission
// off).
func printAdmission(counters map[string]int64) {
	classes := []string{"critical", "interactive", "batch"}
	any := false
	for _, cl := range classes {
		if counters["admission_"+cl+"_offered"] > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	fmt.Printf("\nadmission (overload control):\n")
	fmt.Printf("%-12s %9s %9s %9s %9s %9s\n",
		"CLASS", "OFFERED", "ADMITTED", "STALE", "SHED", "TIMEOUTS")
	for _, cl := range classes {
		fmt.Printf("%-12s %9d %9d %9d %9d %9d\n", cl,
			counters["admission_"+cl+"_offered"],
			counters["admission_"+cl+"_admitted"],
			counters["admission_"+cl+"_stale"],
			counters["admission_"+cl+"_shed"],
			counters["admission_"+cl+"_wait_timeouts"])
	}
}

// printTraces renders the slowest recent spans across all nodes.
func printTraces(spans []telemetry.Span) {
	if len(spans) == 0 {
		fmt.Println("no traces recorded")
		return
	}
	for _, sp := range spans {
		fmt.Printf("%9s  trace=%016x node=%-12s %-4s %-32s status=%d",
			fmtNs(sp.TotalNs), sp.TraceID, sp.Node, sp.Method, sp.Path, sp.Status)
		if sp.Cache != "" {
			fmt.Printf(" cache=%s", sp.Cache)
		}
		if sp.Backend != "" {
			fmt.Printf(" backend=%s", sp.Backend)
		}
		if sp.Outcome != "" {
			fmt.Printf(" outcome=%s", sp.Outcome)
		}
		fmt.Printf("\n           phases: parse=%s route=%s cache=%s backend=%s reply=%s\n",
			fmtNs(sp.ParseNs), fmtNs(sp.RouteNs), fmtNs(sp.CacheNs),
			fmtNs(sp.BackendNs), fmtNs(sp.ReplyNs))
	}
}
