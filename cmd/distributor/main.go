// Command distributor runs the cluster front end: the content-aware
// distributor, the management controller with its console endpoint, the
// §3.3 auto-balancer, and optionally a replication server for a backup
// distributor (or backup mode itself).
//
// The cluster is described by a JSON file (config.ClusterSpec) whose nodes
// carry addr and brokerAddr of running cmd/backend processes:
//
//	distributor -cluster cluster.json -listen :8080 -console :7070 -repl :6060
//	distributor -backup-of host:6060 -listen :8080   # standby mode
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on the -pprof server's mux only
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sort"
	"strconv"
	"strings"

	"webcluster/internal/admission"
	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/core"
	"webcluster/internal/distributor"
	"webcluster/internal/journal"
	"webcluster/internal/loadbal"
	"webcluster/internal/mgmt"
	"webcluster/internal/respcache"
	"webcluster/internal/telemetry"
	"webcluster/internal/urltable"
	"webcluster/internal/workload"
)

func main() {
	clusterFile := flag.String("cluster", "", "cluster spec JSON (required unless -backup-of)")
	listen := flag.String("listen", "127.0.0.1:8080", "client-facing listen address")
	consoleAddr := flag.String("console", "", "management console listen address")
	replAddr := flag.String("repl", "", "state-replication listen address (for backups)")
	backupOf := flag.String("backup-of", "", "run as backup of the primary replicating at this address")
	prefork := flag.Int("prefork", 4, "pre-forked connections per node")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "accept/relay shards (per-core data-plane partitions; 1 = unsharded)")
	balanceEvery := flag.Duration("balance", 0, "auto-balance interval (0 = off)")
	cacheMB := flag.Int64("cache-mb", 0, "front-end response cache budget in MiB (0 = off)")
	cacheFresh := flag.Duration("cache-fresh", 5*time.Second, "response-cache freshness TTL")
	cacheStale := flag.Duration("cache-stale", 30*time.Second, "response-cache stale-on-error window")
	tableFile := flag.String("table", "", "URL-table checkpoint: loaded at start if present, saved on shutdown")
	accessLog := flag.String("accesslog", "", "append Common Log Format access log to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6061); empty = off")
	adminAddr := flag.String("admin", "", "serve /metrics, /debug/traces, /debug/vars, /healthz on this address; empty = off")
	slowMs := flag.Duration("slow", 0, "log requests slower than this to stderr (0 = off)")
	admit := flag.Bool("admit", false, "enable SLO-class admission control (overload shedding + deadline propagation)")
	admitMax := flag.Int("admit-max", 0, "admission concurrency budget across classes (0 = default 256)")
	admitTarget := flag.Duration("admit-target", 0, "admission queue-delay target before shedding engages (0 = default 5ms)")
	journalSize := flag.Int("journal-size", 0, "decision-journal capacity in events (0 = default 4096)")
	flightDir := flag.String("flight-dir", "", "write flight-recorder bundles to this directory; empty = recorder off")
	flightWindow := flag.Duration("flight-window", 0, "journal window a flight bundle reaches back (0 = default 30s)")
	flightBudgets := flag.String("flight-budgets", "", "SLO burn-rate triggers as class:errRate:p99 (p99 a duration, either limit may be empty), comma-separated, e.g. html:0.05:250ms")
	flag.Parse()
	if *pprofAddr != "" {
		//distlint:ignore leakcheck pprof listener is process-lifetime by design; it dies with main
		go func() {
			// DefaultServeMux carries the pprof handlers from the blank
			// import; nothing else registers on it in this process.
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "distributor: pprof:", err)
			}
		}()
		fmt.Printf("pprof at http://%s/debug/pprof/\n", *pprofAddr)
	}
	budgets, err := parseBudgets(*flightBudgets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "distributor:", err)
		os.Exit(1)
	}
	cacheOpts := cacheConfig{mb: *cacheMB, fresh: *cacheFresh, stale: *cacheStale}
	telCfg := telConfig{
		admin: *adminAddr, slow: *slowMs,
		journalSize: *journalSize,
		flightDir:   *flightDir, flightWindow: *flightWindow, flightBudgets: budgets,
	}
	var admCfg *admission.Options
	if *admit {
		admCfg = &admission.Options{MaxConcurrent: *admitMax, QueueTarget: *admitTarget}
	}
	if err := run(*clusterFile, *listen, *consoleAddr, *replAddr, *backupOf, *tableFile, *accessLog, *prefork, *shards, *balanceEvery, cacheOpts, telCfg, admCfg); err != nil {
		fmt.Fprintln(os.Stderr, "distributor:", err)
		os.Exit(1)
	}
}

// cacheConfig carries the -cache-* flags.
type cacheConfig struct {
	mb           int64
	fresh, stale time.Duration
}

// telConfig carries the observability flags.
type telConfig struct {
	admin         string
	slow          time.Duration
	journalSize   int
	flightDir     string
	flightWindow  time.Duration
	flightBudgets []journal.Budget
}

// parseBudgets decodes the -flight-budgets flag: comma-separated
// class:errRate:p99 triples where either limit may be left empty.
func parseBudgets(s string) ([]journal.Budget, error) {
	if s == "" {
		return nil, nil
	}
	var out []journal.Budget
	for _, item := range strings.Split(s, ",") {
		parts := strings.SplitN(item, ":", 3)
		if len(parts) != 3 || parts[0] == "" {
			return nil, fmt.Errorf("bad -flight-budgets entry %q (want class:errRate:p99)", item)
		}
		b := journal.Budget{Class: parts[0]}
		if parts[1] != "" {
			rate, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad error rate in -flight-budgets entry %q: %w", item, err)
			}
			b.MaxErrorRate = rate
		}
		if parts[2] != "" {
			p99, err := time.ParseDuration(parts[2])
			if err != nil {
				return nil, fmt.Errorf("bad p99 in -flight-budgets entry %q: %w", item, err)
			}
			b.MaxP99Ns = int64(p99)
		}
		out = append(out, b)
	}
	return out, nil
}

func run(clusterFile, listen, consoleAddr, replAddr, backupOf, tableFile, accessLog string, prefork, shards int, balanceEvery time.Duration, cacheCfg cacheConfig, telCfg telConfig, admCfg *admission.Options) error {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if backupOf != "" {
		return runBackup(backupOf, listen, sig)
	}
	if clusterFile == "" {
		return fmt.Errorf("-cluster is required (or use -backup-of)")
	}
	spec, err := config.Load(clusterFile)
	if err != nil {
		return err
	}

	table := urltable.New(urltable.Options{CacheEntries: 4096})
	if tableFile != "" {
		if _, statErr := os.Stat(tableFile); statErr == nil {
			restored, lerr := urltable.LoadFile(tableFile, urltable.Options{CacheEntries: 4096})
			if lerr != nil {
				return lerr
			}
			table = restored
			fmt.Printf("restored URL table from %s (%d entries)\n", tableFile, table.Len())
		}
	}
	var logWriter *os.File
	if accessLog != "" {
		f, ferr := os.OpenFile(accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if ferr != nil {
			return fmt.Errorf("opening access log: %w", ferr)
		}
		logWriter = f
		defer func() { _ = f.Close() }()
		fmt.Printf("access log → %s\n", accessLog)
	}
	telOpts := telemetry.Options{Node: "distributor"}
	if telCfg.slow > 0 {
		telOpts.SlowThreshold = telCfg.slow
		telOpts.SlowLog = os.Stderr
	}
	tel := telemetry.New(telOpts)
	jnl := journal.New(journal.Options{Node: "front", Size: telCfg.journalSize})
	distOpts := distributor.Options{
		Table:          table,
		Cluster:        spec,
		PreforkPerNode: prefork,
		Shards:         shards,
		Telemetry:      tel,
		Journal:        jnl,
	}
	if logWriter != nil {
		distOpts.AccessLog = logWriter
	}
	var respCache *respcache.Cache
	if cacheCfg.mb > 0 {
		respCache = respcache.New(respcache.Options{
			MaxBytes: cacheCfg.mb << 20,
			FreshTTL: cacheCfg.fresh,
			StaleTTL: cacheCfg.stale,
		})
		distOpts.Cache = respCache
		fmt.Printf("response cache: %d MiB, fresh %v, stale window %v\n",
			cacheCfg.mb, cacheCfg.fresh, cacheCfg.stale)
	}
	if admCfg != nil {
		distOpts.Admission = admCfg
		fmt.Println("admission control: SLO-class shedding enabled")
	}
	dist, err := distributor.New(distOpts)
	if err != nil {
		return err
	}
	front, err := dist.Start(listen)
	if err != nil {
		return err
	}
	defer func() { _ = dist.Close() }()
	fmt.Printf("distributor serving at %s over %d nodes\n", front, len(spec.Nodes))

	controller := mgmt.NewController(table)
	controller.SetTelemetry(tel)
	controller.SetJournal(jnl)
	if telCfg.flightDir != "" {
		rec, rerr := journal.NewRecorder(journal.RecorderOptions{
			Journal: jnl,
			Dir:     telCfg.flightDir,
			Window:  telCfg.flightWindow,
			Budgets: telCfg.flightBudgets,
			Stats:   func() []journal.ClassStats { return classStats(tel) },
		})
		if rerr != nil {
			return rerr
		}
		rec.AddSource("telemetry", func() any { return tel.Report(32) })
		rec.AddSource("placement", func() any { return placementState(table) })
		controller.SetDumper(rec.Dump)
		rec.Start()
		defer rec.Close()
		// Turn a crash of this goroutine into a flight bundle before the
		// panic surfaces.
		defer rec.RecoverAndDump()
		fmt.Printf("flight recorder → %s\n", telCfg.flightDir)
	}
	if respCache != nil {
		// management mutations purge the front-end cache synchronously
		controller.SetCache(respCache)
	}
	for _, n := range spec.Nodes {
		if n.BrokerAddr == "" {
			return fmt.Errorf("node %s has no brokerAddr", n.ID)
		}
		if err := controller.AddNode(n.ID, n.BrokerAddr); err != nil {
			return err
		}
	}

	balancer := mgmt.NewAutoBalancer(controller, dist.Tracker(), spec.Nodes,
		loadbal.DefaultPlannerOptions(), balanceEvery)
	if balanceEvery > 0 {
		balancer.Start()
		defer balancer.Close()
		fmt.Printf("auto-balancer running every %v\n", balanceEvery)
	}

	if consoleAddr != "" {
		console := mgmt.NewConsoleServer(controller, balancer)
		console.SetSiteLoader(siteLoader(controller, spec))
		caddr, err := console.Start(consoleAddr)
		if err != nil {
			return err
		}
		defer func() { _ = console.Close() }()
		fmt.Printf("console at %s\n", caddr)
	}

	if telCfg.admin != "" {
		admin := telemetry.NewAdmin(tel)
		admin.SetJournal(jnl)
		aaddr, aerr := admin.Start(telCfg.admin)
		if aerr != nil {
			return aerr
		}
		defer func() { _ = admin.Close() }()
		fmt.Printf("admin at http://%s/metrics\n", aaddr)
	}

	if replAddr != "" {
		repl := distributor.NewReplicationServer(dist, 200*time.Millisecond)
		raddr, err := repl.Start(replAddr)
		if err != nil {
			return err
		}
		defer func() { _ = repl.Close() }()
		fmt.Printf("replicating state at %s\n", raddr)
	}

	<-sig
	if tableFile != "" {
		if err := table.SaveFile(tableFile); err != nil {
			fmt.Fprintln(os.Stderr, "saving table:", err)
		} else {
			fmt.Printf("checkpointed URL table to %s (%d entries)\n", tableFile, table.Len())
		}
	}
	fmt.Println("shutting down")
	return nil
}

// runBackup monitors a primary and takes over its service address.
func runBackup(primaryRepl, listen string, sig chan os.Signal) error {
	fmt.Printf("backup mode: monitoring %s, will bind %s on takeover\n", primaryRepl, listen)
	promote := func(table *urltable.Table, spec config.ClusterSpec) (*distributor.Distributor, error) {
		d, err := distributor.New(distributor.Options{Table: table, Cluster: spec})
		if err != nil {
			return nil, err
		}
		var addr string
		for i := 0; i < 100; i++ {
			addr, err = d.Start(listen)
			if err == nil {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if err != nil {
			return nil, err
		}
		fmt.Printf("TOOK OVER: serving at %s\n", addr)
		return d, nil
	}
	backup := distributor.NewBackup(primaryRepl, time.Second, promote)
	if err := backup.Start(); err != nil {
		return err
	}
	defer backup.Stop()

	for {
		select {
		case <-sig:
			fmt.Println("shutting down")
			return nil
		default:
		}
		successor, err := backup.Promoted(500 * time.Millisecond)
		if err != nil {
			return err
		}
		if successor != nil {
			defer func() { _ = successor.Close() }()
			<-sig
			fmt.Println("shutting down")
			return nil
		}
	}
}

// siteLoader backs the console's loadsite command: generate a workload
// site and place it by policy through the controller.
func siteLoader(controller *mgmt.Controller, spec config.ClusterSpec) mgmt.SiteLoader {
	return func(req mgmt.ConsoleRequest) (string, error) {
		objects := req.Objects
		if objects <= 0 {
			objects = 500
		}
		kind := workload.KindA
		if req.Workload == "B" || req.Workload == "b" {
			kind = workload.KindB
		}
		site, err := workload.BuildSite(kind, objects, req.Seed+1)
		if err != nil {
			return "", err
		}
		var place core.PlacementFunc
		switch req.Policy {
		case "", "type":
			place = core.PlaceByType()
		case "all":
			place = core.PlaceAll
		case "rr":
			place = core.NewPlaceRoundRobin().Place
		default:
			return "", fmt.Errorf("unknown policy %q", req.Policy)
		}
		for _, obj := range site.Objects() {
			nodes := place(obj, spec)
			var data []byte
			if obj.Class.Dynamic() {
				data = []byte("#!script " + obj.Path + "\n")
			} else {
				data = synthesize(obj)
			}
			if err := controller.Insert(obj, data, nodes...); err != nil {
				return "", fmt.Errorf("placing %s: %w", obj.Path, err)
			}
		}
		return fmt.Sprintf("placed %d objects (workload %s, policy %s)",
			site.Len(), kind, req.Policy), nil
	}
}

// classStats adapts the telemetry registry's per-class counters to the
// flight recorder's burn-rate watcher.
func classStats(tel *telemetry.Telemetry) []journal.ClassStats {
	snap := tel.Registry().Snapshot()
	names := make([]string, 0, len(snap.Classes))
	for name := range snap.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]journal.ClassStats, 0, len(names))
	for _, name := range names {
		cs := snap.Classes[name]
		out = append(out, journal.ClassStats{
			Class:    name,
			Requests: cs.Requests,
			Errors:   cs.Errors,
			P99Ns:    int64(cs.Latency.Quantile(0.99)),
		})
	}
	return out
}

// placementState captures the URL table for flight bundles.
func placementState(table *urltable.Table) any {
	type placement struct {
		Path      string   `json:"path"`
		Locations []string `json:"locations"`
		Hits      int64    `json:"hits"`
		Pinned    bool     `json:"pinned,omitempty"`
		Priority  int      `json:"priority,omitempty"`
	}
	var out []placement
	table.Walk(func(r urltable.Record) {
		locs := make([]string, len(r.Locations))
		for i, id := range r.Locations {
			locs[i] = string(id)
		}
		out = append(out, placement{
			Path:      r.Path,
			Locations: locs,
			Hits:      r.Hits,
			Pinned:    r.Pinned,
			Priority:  r.Priority,
		})
	})
	return out
}

// synthesize produces deterministic object bytes.
func synthesize(obj content.Object) []byte {
	body := make([]byte, obj.Size)
	pattern := []byte(obj.Path + "\n")
	for off := 0; off < len(body); off += len(pattern) {
		copy(body[off:], pattern)
	}
	return body
}
