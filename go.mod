module webcluster

go 1.22
