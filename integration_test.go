package webcluster

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"webcluster/internal/config"
)

// TestProcessLevelDeployment exercises the full multi-process topology the
// README documents: three backend processes, a distributor process with a
// console endpoint, the console CLI loading a site, and webbench driving
// load — all through the real binaries.
func TestProcessLevelDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level integration")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin, "./cmd/...")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building binaries: %v", err)
	}

	ports := freePorts(t, 8)
	webAddrs := []string{
		fmt.Sprintf("127.0.0.1:%d", ports[0]),
		fmt.Sprintf("127.0.0.1:%d", ports[1]),
		fmt.Sprintf("127.0.0.1:%d", ports[2]),
	}
	brokerAddrs := []string{
		fmt.Sprintf("127.0.0.1:%d", ports[3]),
		fmt.Sprintf("127.0.0.1:%d", ports[4]),
		fmt.Sprintf("127.0.0.1:%d", ports[5]),
	}
	frontAddr := fmt.Sprintf("127.0.0.1:%d", ports[6])
	consoleAddr := fmt.Sprintf("127.0.0.1:%d", ports[7])

	// Backends.
	specs := []struct {
		id   string
		cpu  int
		mem  int
		disk string
	}{
		{"n1", 350, 128, "scsi"},
		{"n2", 200, 128, "scsi"},
		{"n3", 150, 64, "ide"},
	}
	for i, s := range specs {
		cmd := exec.Command(filepath.Join(bin, "backend"),
			"-id", s.id,
			"-cpu", fmt.Sprint(s.cpu),
			"-mem", fmt.Sprint(s.mem),
			"-disk", s.disk,
			"-listen", webAddrs[i],
			"-broker", brokerAddrs[i],
		)
		startProcess(t, cmd)
	}
	for _, addr := range append(append([]string{}, webAddrs...), brokerAddrs...) {
		waitListening(t, addr)
	}

	// Cluster spec file.
	spec := config.ClusterSpec{DistributorCPUMHz: 350}
	for i, s := range specs {
		disk := config.DiskSCSI
		if s.disk == "ide" {
			disk = config.DiskIDE
		}
		spec.Nodes = append(spec.Nodes, config.NodeSpec{
			ID: config.NodeID(s.id), CPUMHz: s.cpu, MemoryMB: s.mem,
			DiskGB: 4, Disk: disk, Platform: config.LinuxApache,
			Addr: webAddrs[i], BrokerAddr: brokerAddrs[i],
		})
	}
	clusterFile := filepath.Join(bin, "cluster.json")
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(clusterFile, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Distributor + console.
	startProcess(t, exec.Command(filepath.Join(bin, "distributor"),
		"-cluster", clusterFile,
		"-listen", frontAddr,
		"-console", consoleAddr,
	))
	waitListening(t, frontAddr)
	waitListening(t, consoleAddr)

	// Load a site through the console CLI.
	out := runCLI(t, filepath.Join(bin, "console"),
		"-addr", consoleAddr, "loadsite",
		"-objects", "200", "-workload", "B", "-policy", "type", "-seed", "7")
	if !strings.Contains(out, "placed 200 objects") {
		t.Fatalf("loadsite output = %q", out)
	}

	// Tree shows content.
	out = runCLI(t, filepath.Join(bin, "console"), "-addr", consoleAddr, "tree")
	if !strings.Contains(out, ".html") {
		t.Fatalf("tree output = %q", out)
	}

	// Drive load with webbench; assert zero errors.
	out = runCLI(t, filepath.Join(bin, "webbench"),
		"-addr", frontAddr, "-clients", "4", "-duration", "2s",
		"-workload", "B", "-objects", "200", "-seed", "7")
	if !strings.Contains(out, " 0 errors") {
		t.Fatalf("webbench reported errors:\n%s", out)
	}

	// Node status via console.
	out = runCLI(t, filepath.Join(bin, "console"), "-addr", consoleAddr, "status", "n1")
	if !strings.Contains(out, "node n1:") {
		t.Fatalf("status output = %q", out)
	}
}

// startProcess launches cmd and guarantees cleanup.
func startProcess(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %v: %v", cmd.Args, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
}

// runCLI runs a one-shot command and returns its combined output.
func runCLI(t *testing.T, name string, args ...string) string {
	t.Helper()
	out, err := exec.Command(name, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(name), args, err, out)
	}
	return string(out)
}

// waitListening polls until addr accepts connections.
func waitListening(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			_ = conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never came up", addr)
}

// freePorts reserves n distinct ephemeral ports and releases them for the
// children to bind.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	listeners := make([]net.Listener, 0, n)
	ports := make([]int, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, l)
		addr, ok := l.Addr().(*net.TCPAddr)
		if !ok {
			t.Fatal("not a TCP address")
		}
		ports = append(ports, addr.Port)
	}
	for _, l := range listeners {
		_ = l.Close()
	}
	return ports
}
