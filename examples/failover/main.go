// Failover: the §2.3 primary/backup mechanism. A primary distributor
// serves traffic while replicating its state (URL table, mapping table,
// cluster spec) to a backup. When the primary dies, the backup detects the
// silence, rebuilds the distributor from replicated state, binds the same
// service address, and keeps serving — then recruits its own backup.
package main

import (
	"fmt"
	"log"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/core"
	"webcluster/internal/distributor"
	"webcluster/internal/urltable"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Back-end pool via core.Launch; we will manage the front end by
	// hand to demonstrate takeover.
	cluster, err := core.Launch(core.Options{})
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()

	// Place some content.
	for i := 0; i < 6; i++ {
		path := fmt.Sprintf("/site/page%d.html", i)
		obj := content.Object{Path: path, Size: 18, Class: content.ClassHTML}
		if err := cluster.Controller.Insert(
			obj, []byte("<html>page</html>"),
			cluster.Spec.Nodes[i%len(cluster.Spec.Nodes)].ID); err != nil {
			return err
		}
	}

	// The primary in core.Launch is cluster.Distributor. Attach a
	// replication server to it.
	repl := distributor.NewReplicationServer(cluster.Distributor, 50*time.Millisecond)
	replAddr, err := repl.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("primary serving at %s, replicating state at %s\n",
		cluster.FrontAddr, replAddr)

	// The backup monitors the primary. On takeover it binds the
	// primary's old service address (the "virtual IP" migrating).
	serviceAddr := cluster.FrontAddr
	promote := func(table *urltable.Table, spec config.ClusterSpec) (*distributor.Distributor, error) {
		d, err := distributor.New(distributor.Options{Table: table, Cluster: spec})
		if err != nil {
			return nil, err
		}
		// The address may need a beat to free after the primary dies.
		var addr string
		for i := 0; i < 50; i++ {
			addr, err = d.Start(serviceAddr)
			if err == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			return nil, err
		}
		fmt.Printf("backup promoted: serving at %s\n", addr)
		return d, nil
	}
	backup := distributor.NewBackup(replAddr, 300*time.Millisecond, promote)
	if err := backup.Start(); err != nil {
		return err
	}

	// Traffic flows through the primary.
	resp, err := cluster.Get("/site/page0.html")
	if err != nil {
		return err
	}
	fmt.Printf("via primary: GET /site/page0.html → %d (served-by %s)\n",
		resp.StatusCode, resp.Header.Get("X-Served-By"))

	// Let a snapshot replicate, then kill the primary.
	time.Sleep(300 * time.Millisecond)
	fmt.Println("killing primary distributor...")
	_ = repl.Close()
	_ = cluster.Distributor.Close()

	successor, err := backup.Promoted(5 * time.Second)
	if err != nil {
		return fmt.Errorf("takeover failed: %w", err)
	}
	if successor == nil {
		return fmt.Errorf("backup did not take over in time")
	}
	defer func() { _ = successor.Close() }()

	// The same service address answers again, from replicated state.
	resp2, err := cluster.Get("/site/page0.html")
	if err != nil {
		return fmt.Errorf("after takeover: %w", err)
	}
	fmt.Printf("via successor: GET /site/page0.html → %d (served-by %s)\n",
		resp2.StatusCode, resp2.Header.Get("X-Served-By"))
	fmt.Printf("successor URL table: %d entries (replicated)\n", successor.Table().Len())

	// The promoted distributor creates its own backup (§2.3: "the
	// backup takes over the job of the primary and creates its own
	// backup").
	repl2 := distributor.NewReplicationServer(successor, 50*time.Millisecond)
	repl2Addr, err := repl2.Start("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() { _ = repl2.Close() }()
	backup2 := distributor.NewBackup(repl2Addr, 300*time.Millisecond, promote)
	if err := backup2.Start(); err != nil {
		return err
	}
	defer backup2.Stop()
	fmt.Printf("successor now replicating to its own backup at %s\n", repl2Addr)
	return nil
}
