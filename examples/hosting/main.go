// Hosting: the §4 scenario — a web-hosting provider serving multiple
// third-party customers with differentiated service levels. Premium
// content is replicated across the whole static group and marked high
// priority; budget content gets one copy on the slowest node; a customer's
// mutable catalogue is pinned to a single dedicated node so consistency
// can be managed centrally (no replicas to keep in sync).
package main

import (
	"fmt"
	"log"

	"webcluster/internal/backend"
	"webcluster/internal/content"
	"webcluster/internal/core"
	"webcluster/internal/doctree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster, err := core.Launch(core.Options{ConsoleAddr: "127.0.0.1:0"})
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()
	ctl := cluster.Controller

	// Premium customer: pages replicated on every node, priority 2.
	for i := 0; i < 4; i++ {
		path := fmt.Sprintf("/customers/premium/page%d.html", i)
		obj := content.Object{Path: path, Size: 2048, Class: content.ClassHTML, Priority: 2}
		if err := ctl.Insert(obj, backend.SynthesizeBody(path, obj.Size),
			"fast-1", "mid-1", "slow-1"); err != nil {
			return err
		}
	}
	// Budget customer: single copy on the cheapest node.
	for i := 0; i < 4; i++ {
		path := fmt.Sprintf("/customers/budget/page%d.html", i)
		obj := content.Object{Path: path, Size: 2048, Class: content.ClassHTML}
		if err := ctl.Insert(obj, backend.SynthesizeBody(path, obj.Size), "slow-1"); err != nil {
			return err
		}
	}
	// Mutable catalogue: dedicated to mid-1 so updates need no
	// cross-node consistency protocol (§4).
	catalogue := "/customers/shop/catalogue.html"
	if err := ctl.Insert(
		content.Object{Path: catalogue, Size: 4096, Class: content.ClassHTML, Priority: 1},
		backend.SynthesizeBody(catalogue, 4096), "mid-1"); err != nil {
		return err
	}

	fmt.Println("single-system-image view of the hosted tree:")
	fmt.Print(renderTree(cluster))

	// The premium pages are served by whichever replica is least
	// loaded; the catalogue always by its dedicated node.
	fmt.Println("serving:")
	for _, path := range []string{
		"/customers/premium/page0.html",
		"/customers/budget/page0.html",
		catalogue,
	} {
		resp, err := cluster.Get(path)
		if err != nil {
			return err
		}
		fmt.Printf("GET %-36s → %d served-by=%s\n",
			path, resp.StatusCode, resp.Header.Get("X-Served-By"))
	}

	// Pin the mutable catalogue: the auto-replicator will never copy it
	// off its dedicated node, so the provider's consistency model stays
	// centralized (§4).
	if err := ctl.Pin(catalogue, true); err != nil {
		return err
	}

	// The provider updates the mutable catalogue in place: one
	// controller-driven update propagates to its (single) location and
	// invalidates the node's page cache.
	if err := ctl.Update(catalogue, backend.SynthesizeBody(catalogue, 5000)); err != nil {
		return err
	}
	resp, err := cluster.Get(catalogue)
	if err != nil {
		return err
	}
	fmt.Printf("\nafter catalogue update: GET %s → %d, %d bytes (was 4096)\n",
		catalogue, resp.StatusCode, len(resp.Body))

	// Replica-consistency audit on the premium pages: all copies must
	// hash identically.
	consistent, sums, err := ctl.Verify("/customers/premium/page0.html")
	if err != nil {
		return err
	}
	fmt.Printf("premium page0 replica audit: consistent=%v over %d copies\n",
		consistent, len(sums))

	// Demote the budget customer's busiest page onto more nodes when
	// they upgrade their plan: a single console-style replicate call.
	if err := ctl.Replicate("/customers/budget/page0.html", "", "mid-1"); err != nil {
		return err
	}
	rec, err := cluster.Table.Lookup("/customers/budget/page0.html")
	if err != nil {
		return err
	}
	fmt.Printf("budget page0 upgraded: now on %v\n", rec.Locations)

	fmt.Println("\naudit log:")
	for _, line := range ctl.AuditLog() {
		fmt.Println(" ", line)
	}
	return nil
}

// renderTree prints the controller's merged single-system-image view.
func renderTree(cluster *core.Cluster) string {
	return doctree.Render(cluster.Controller.View())
}
