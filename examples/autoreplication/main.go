// Autoreplication: the §3.3 load-balancing facility. All popular content
// starts on one node (a hot spot); the distributor's load tracker
// accumulates l_i = (loadCPU+loadDisk)×processing_time per node; the
// balancer classifies nodes against the cluster average and the controller
// replicates hot objects to the underutilized nodes — after which the
// distributor's replica picker spreads the traffic.
package main

import (
	"fmt"
	"log"
	"time"

	"webcluster/internal/backend"
	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/core"
	"webcluster/internal/loadbal"
	"webcluster/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Slow the slow node down artificially so load differences are
	// visible in wall-clock processing times.
	delayFor := func(spec config.NodeSpec) backend.DelayFunc {
		scale := 350.0 / float64(spec.CPUMHz)
		return func(r backend.ServedRequest) time.Duration {
			base := 3 * time.Millisecond
			if r.CacheHit {
				base = 1500 * time.Microsecond
			}
			return time.Duration(float64(base) * scale)
		}
	}
	cluster, err := core.Launch(core.Options{
		DelayFor: delayFor,
		BalanceOptions: loadbal.PlannerOptions{
			Threshold:         0.25,
			MaxActionsPerNode: 4,
			MinHits:           5,
		},
	})
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()

	// Hot spot: every page on slow-1 only.
	site, err := content.GenerateSite(content.GenParams{
		Objects:         60,
		Seed:            7,
		MeanStaticBytes: 2048,
	})
	if err != nil {
		return err
	}
	for _, obj := range site.Objects() {
		if err := cluster.Controller.Insert(obj,
			backend.SynthesizeBody(obj.Path, obj.Size), "slow-1"); err != nil {
			return err
		}
	}
	fmt.Println("initial placement: all 60 objects on slow-1 only")

	// Drive Zipf traffic through the front end.
	report, err := workload.RunClientPool(workload.ClientPoolOptions{
		Addr:      cluster.FrontAddr,
		Clients:   8,
		Duration:  800 * time.Millisecond,
		Site:      site,
		Seed:      1,
		KeepAlive: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("phase 1 (hot spot): %s\n", report)

	// Close the load interval and apply the planner's actions.
	actions := cluster.Balancer.RunOnce()
	fmt.Printf("balancer planned %d actions:\n", len(actions))
	for _, a := range actions {
		fmt.Println("  ", a)
	}

	// Show the new placement of the hottest objects.
	fmt.Println("hot objects after rebalancing:")
	for rank := 0; rank < 4; rank++ {
		rec, err := cluster.Table.Lookup(site.ByRank(rank).Path)
		if err != nil {
			return err
		}
		fmt.Printf("  %-34s @ %v\n", rec.Path, rec.Locations)
	}

	// Run the same traffic again: replicas now absorb it.
	report2, err := workload.RunClientPool(workload.ClientPoolOptions{
		Addr:      cluster.FrontAddr,
		Clients:   8,
		Duration:  800 * time.Millisecond,
		Site:      site,
		Seed:      2,
		KeepAlive: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("phase 2 (rebalanced): %s\n", report2)
	fmt.Printf("throughput change: %.1f → %.1f req/s\n",
		report.Throughput(), report2.Throughput())

	// Per-node serve counts show the spread.
	for _, id := range cluster.Controller.Nodes() {
		st, err := cluster.Controller.Status(id)
		if err != nil {
			return err
		}
		fmt.Printf("node %-8s served %5d requests (cache hit %.1f%%)\n",
			id, st.RequestsServed, 100*st.CacheHitRate)
	}
	return nil
}
