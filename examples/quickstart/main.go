// Quickstart: launch a 3-node heterogeneous cluster in one process,
// partition a small site by content type, and fetch pages through the
// content-aware distributor.
package main

import (
	"fmt"
	"log"

	"webcluster/internal/content"
	"webcluster/internal/core"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Launch the cluster: three back ends (350/200/150 MHz), each
	// with a web server and a management broker, fronted by the
	// content-aware distributor.
	cluster, err := core.Launch(core.Options{})
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()

	// 2. Generate a small synthetic site and place it by type: CGI/ASP
	// on the fast node, video on the big-disk node, statics spread over
	// the slower nodes, critical pages replicated.
	site, err := content.GenerateSite(content.GenParams{
		Objects:          200,
		Seed:             42,
		DynamicFraction:  0.1,
		VideoFraction:    0.01,
		MeanStaticBytes:  4 * 1024,
		CriticalFraction: 0.02,
	})
	if err != nil {
		return err
	}
	if err := cluster.PlaceSite(site, core.PlaceByType()); err != nil {
		return err
	}
	fmt.Println("cluster up —")
	fmt.Print(cluster.Summary())

	// 3. Fetch a few objects through the distributor and show which
	// node actually served each one (the X-Served-By header).
	fmt.Println("\nfetching through the content-aware distributor:")
	shown := 0
	for rank := 0; rank < site.Len() && shown < 8; rank++ {
		obj := site.ByRank(rank)
		resp, err := cluster.Get(obj.Path)
		if err != nil {
			return fmt.Errorf("GET %s: %w", obj.Path, err)
		}
		fmt.Printf("GET %-38s → %d  %6dB  class=%-5s served-by=%s\n",
			obj.Path, resp.StatusCode, len(resp.Body), obj.Class,
			resp.Header.Get("X-Served-By"))
		shown++
	}

	// 4. A request for a missing object is rejected at the front end —
	// the URL table is authoritative.
	resp, err := cluster.Get("/no/such/page.html")
	if err != nil {
		return err
	}
	fmt.Printf("GET /no/such/page.html → %d (no URL-table entry)\n", resp.StatusCode)

	fmt.Printf("\ndistributor routed %d requests (%d unroutable), mean routing overhead %v\n",
		cluster.Distributor.Routed(), cluster.Distributor.NoRoute(),
		cluster.Distributor.MeanRouteOverhead())
	return nil
}
