GO ?= go

# Benchmarks covered by `make bench` — the relay/routing fast path.
BENCH_HOT = BenchmarkDistributorRelay$$|BenchmarkDistributorRelayLarge|BenchmarkDistributorRelayParallel|BenchmarkURLTableLookup|BenchmarkHTTPParse|BenchmarkConnPool|BenchmarkMappingTable

# Response-cache benchmarks, archived separately (BENCH_cache.json): hit,
# cold miss, and coalesced miss through the live distributor.
BENCH_CACHE = BenchmarkDistributorCacheHit|BenchmarkDistributorCacheColdMiss|BenchmarkDistributorCacheCoalescedMiss

# Telemetry benchmarks (BENCH_telemetry.json): the lock-free metrics core
# and the fully-traced relay, which must add 0 allocs/op over the
# untraced relay.
BENCH_TELEMETRY = BenchmarkTelemetryObserve|BenchmarkDistributorRelayTraced|BenchmarkJournalRecord

# Admission benchmarks (BENCH_admission.json): the per-request overload
# decision, which must stay at 0 allocs/op.
BENCH_ADMISSION = BenchmarkAdmissionDecision

.PHONY: all vet lint build test race chaos sim bench allocguard ci

all: ci

vet:
	$(GO) vet ./...

# Static analysis: the repo's own distlint suite always runs; staticcheck
# and govulncheck run when installed (CI pins their versions; locally
# they are optional so a bare toolchain can still lint).
lint:
	$(GO) run ./cmd/distlint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Local race lane: -short keeps the slow simulation tests out of the
# edit-compile loop. CI's dedicated race job runs the full suite
# (`go test -race ./...`) without -short.
race:
	$(GO) test -race -short ./...

# Just the chaos suite. Override the scenario seeds with
# CHAOS_SEED=<n> make chaos to replay a failing schedule.
chaos:
	$(GO) test -race -run 'TestChaos' -v .

# Scenario smoke: the compressed flash-crowd recovery check plus the
# byte-determinism replay, both under the race detector. The day-long
# acceptance run stays in plain `make test` (it needs no -race).
sim:
	$(GO) test -race -run 'TestScenarioDeterministicReplay|TestScenarioFlashCrowdRecovery|TestExampleScenarioFilesMatchBuiltins' -v .

# Hot-path benchmarks with allocation counts, archived as JSON so runs can
# be diffed across commits (BENCH_relay.json and BENCH_cache.json are the
# current snapshots).
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_HOT)' -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_relay.json
	@cat BENCH_relay.json
	$(GO) test -run '^$$' -bench '$(BENCH_CACHE)' -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_cache.json
	@cat BENCH_cache.json
	$(GO) test -run '^$$' -bench '$(BENCH_TELEMETRY)' -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_telemetry.json
	@cat BENCH_telemetry.json
	$(GO) test -run '^$$' -bench '$(BENCH_ADMISSION)' -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_admission.json
	@cat BENCH_admission.json

# Regression gates. A fast -benchtime=100x pass is enough for the
# allocs/op gate because allocation counts are deterministic; the
# throughput (MB/s) gate on the large-body relay runs at the default
# benchtime so the number is meaningful, and fails when mb_per_sec drops
# more than 10% below the archived snapshot.
allocguard:
	$(GO) test -run '^$$' -bench 'BenchmarkDistributorRelay$$' -benchtime=100x -benchmem . \
		| $(GO) run ./cmd/benchguard -snapshot BENCH_relay.json
	$(GO) test -run '^$$' -bench 'BenchmarkDistributorRelayTraced$$' -benchtime=100x -benchmem . \
		| $(GO) run ./cmd/benchguard -snapshot BENCH_telemetry.json
	$(GO) test -run '^$$' -bench 'BenchmarkDistributorRelayLarge' -benchmem . \
		| $(GO) run ./cmd/benchguard -snapshot BENCH_relay.json
	$(GO) test -run '^$$' -bench 'BenchmarkAdmissionDecision$$' -benchtime=100x -benchmem . \
		| $(GO) run ./cmd/benchguard -snapshot BENCH_admission.json -tolerance 0
	$(GO) test -run '^$$' -bench 'BenchmarkJournalRecord$$' -benchtime=100x -benchmem . \
		| $(GO) run ./cmd/benchguard -snapshot BENCH_telemetry.json -tolerance 0

ci: vet lint build test race allocguard
