GO ?= go

.PHONY: all vet build test race chaos ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector; -short keeps the slow simulation
# benchmarks out of the hot path (matches the CI gate).
race:
	$(GO) test -race -short ./...

# Just the chaos suite. Override the scenario seeds with
# CHAOS_SEED=<n> make chaos to replay a failing schedule.
chaos:
	$(GO) test -race -run 'TestChaos' -v .

ci: vet build test race
