GO ?= go

# Benchmarks covered by `make bench` — the relay/routing fast path.
BENCH_HOT = BenchmarkDistributorRelay$$|BenchmarkDistributorRelayLarge|BenchmarkURLTableLookup|BenchmarkHTTPParse|BenchmarkConnPool|BenchmarkMappingTable

# Response-cache benchmarks, archived separately (BENCH_cache.json): hit,
# cold miss, and coalesced miss through the live distributor.
BENCH_CACHE = BenchmarkDistributorCacheHit|BenchmarkDistributorCacheColdMiss|BenchmarkDistributorCacheCoalescedMiss

.PHONY: all vet build test race chaos bench ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full suite under the race detector; -short keeps the slow simulation
# benchmarks out of the hot path (matches the CI gate).
race:
	$(GO) test -race -short ./...

# Just the chaos suite. Override the scenario seeds with
# CHAOS_SEED=<n> make chaos to replay a failing schedule.
chaos:
	$(GO) test -race -run 'TestChaos' -v .

# Hot-path benchmarks with allocation counts, archived as JSON so runs can
# be diffed across commits (BENCH_relay.json and BENCH_cache.json are the
# current snapshots).
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_HOT)' -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_relay.json
	@cat BENCH_relay.json
	$(GO) test -run '^$$' -bench '$(BENCH_CACHE)' -benchmem . \
		| $(GO) run ./cmd/benchjson > BENCH_cache.json
	@cat BENCH_cache.json

ci: vet build test race
