// Package webcluster's root benchmark suite regenerates every measurement
// of the paper's evaluation (§5) as testing.B benchmarks:
//
//	§5.2 URL-table overhead  → BenchmarkURLTable*
//	Figure 2 (Workload A)    → BenchmarkFigure2*
//	Figure 3 (Workload B)    → BenchmarkFigure3*
//	Figure 4 (segregation)   → BenchmarkFigure4
//	distributor relay cost   → BenchmarkDistributorRelay, BenchmarkL4RouterRelay
//	ablations                → BenchmarkReplicaSelection*, BenchmarkConnPool
//
// The simulation benchmarks report the figure's metric (requests/second)
// via b.ReportMetric, so `go test -bench .` prints the paper's series; the
// full parameter sweeps are produced by cmd/benchfigs.
package webcluster

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"webcluster/internal/admission"
	"webcluster/internal/backend"
	"webcluster/internal/config"
	"webcluster/internal/conntrack"
	"webcluster/internal/content"
	"webcluster/internal/distributor"
	"webcluster/internal/httpx"
	"webcluster/internal/journal"
	"webcluster/internal/l4router"
	"webcluster/internal/loadbal"
	"webcluster/internal/respcache"
	"webcluster/internal/sim"
	"webcluster/internal/telemetry"
	"webcluster/internal/urltable"
	"webcluster/internal/workload"
)

// buildTable loads the §5.2-scale site (≈8700 objects) into a URL table.
func buildTable(b *testing.B, cacheEntries int) (*urltable.Table, []string) {
	b.Helper()
	gen := content.DefaultGenParams()
	site, err := content.GenerateSite(gen)
	if err != nil {
		b.Fatal(err)
	}
	table := urltable.New(urltable.Options{CacheEntries: cacheEntries})
	for _, obj := range site.Objects() {
		if err := table.Insert(obj, "n1"); err != nil {
			b.Fatal(err)
		}
	}
	g, err := workload.NewGenerator(site, workload.DefaultZipfS, 1)
	if err != nil {
		b.Fatal(err)
	}
	paths := make([]string, 1<<16)
	for i := range paths {
		paths[i] = g.Next().Path
	}
	return table, paths
}

// BenchmarkURLTableLookup measures the §5.2 routing decision — multi-level
// hash walk with the entry cache disabled (paper reports 4.32 µs on a
// 350 MHz distributor for ~8700 objects).
func BenchmarkURLTableLookup(b *testing.B) {
	table, paths := buildTable(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := table.Route(paths[i&0xffff]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(table.MemoryBytes())/1024, "table-KB")
}

// BenchmarkURLTableLookupCached is the same with the recently-accessed
// entry cache enabled (the Mogul demultiplexing-speedup ablation).
func BenchmarkURLTableLookupCached(b *testing.B) {
	table, paths := buildTable(b, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := table.Route(paths[i&0xffff]); err != nil {
			b.Fatal(err)
		}
	}
	st := table.Stats()
	b.ReportMetric(100*float64(st.CacheHits)/float64(st.Lookups), "cache-hit-%")
}

// BenchmarkURLTableLookupParallel drives the routing decision from every
// CPU at once — the distributor's real shape, where each client connection
// goroutine calls Route concurrently. With the copy-on-write read path
// this must scale with GOMAXPROCS instead of serialising on a table lock.
func BenchmarkURLTableLookupParallel(b *testing.B) {
	for _, bc := range []struct {
		name    string
		entries int
	}{{"nocache", 0}, {"cached", 1024}} {
		b.Run(bc.name, func(b *testing.B) {
			table, paths := buildTable(b, bc.entries)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := table.Route(paths[i&0xffff]); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkURLTableInsert measures table construction cost.
func BenchmarkURLTableInsert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table := urltable.New(urltable.Options{})
		for j := 0; j < 1000; j++ {
			obj := content.Object{
				Path:  fmt.Sprintf("/d%d/f%d.html", j%16, j),
				Size:  1024,
				Class: content.ClassHTML,
			}
			if err := table.Insert(obj, "n1"); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMappingTable measures the distributor's per-connection state
// machine: install, handshake, bind, request, teardown.
func BenchmarkMappingTable(b *testing.B) {
	mt := conntrack.NewMappingTable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := conntrack.ClientKey{IP: "10.0.0.1", Port: i & 0xffff}
		if _, err := mt.Install(key, uint32(i), 0); err != nil {
			b.Fatal(err)
		}
		_, _ = mt.Advance(key, conntrack.EventHandshakeDone)
		_ = mt.Bind(key, "n1")
		_, _ = mt.Advance(key, conntrack.EventRequestBound)
		_, _ = mt.Advance(key, conntrack.EventRequestDone)
		_, _ = mt.Advance(key, conntrack.EventClientFin)
		_, _ = mt.Advance(key, conntrack.EventFinAcked)
		_, _ = mt.Advance(key, conntrack.EventLastAck)
	}
}

// BenchmarkConnPool measures pre-forked connection checkout/return.
func BenchmarkConnPool(b *testing.B) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = bufio.NewReader(c).ReadByte() }()
		}
	}()
	pool := conntrack.NewPool(func(config.NodeID) (net.Conn, error) {
		return net.Dial("tcp", l.Addr().String())
	}, 4, 8)
	defer func() { _ = pool.Close() }()
	if err := pool.Prefork([]config.NodeID{"n1"}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc, err := pool.Acquire("n1")
		if err != nil {
			b.Fatal(err)
		}
		pool.Release(pc)
	}
}

// BenchmarkHTTPParse measures request parsing on the distributor's path,
// shaped like the real keep-alive loop: one pooled reader and one reused
// Request per connection, many requests parsed through them.
func BenchmarkHTTPParse(b *testing.B) {
	raw := []byte("GET /docs/d01/page00123.html HTTP/1.1\r\nHost: cluster\r\nUser-Agent: webbench\r\n\r\n")
	src := newRepeatReader(raw)
	br := httpx.AcquireReader(src)
	defer httpx.ReleaseReader(br)
	req := httpx.AcquireRequest()
	defer httpx.ReleaseRequest(req)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := httpx.ReadRequestInto(br, req); err != nil {
			b.Fatal(err)
		}
	}
}

// repeatReader yields the same bytes forever without allocation.
type repeatReader struct {
	data []byte
	off  int
}

func newRepeatReader(data []byte) *repeatReader { return &repeatReader{data: data} }

func (r *repeatReader) Read(p []byte) (int, error) {
	n := copy(p, r.data[r.off:])
	r.off = (r.off + n) % len(r.data)
	return n, nil
}

// benchObjects is the content the live-cluster benchmarks fetch: the small
// page for the per-request overhead number and two large bodies for the
// streaming-relay throughput numbers.
var benchObjects = map[string]int{
	"/bench.html": 4096,
	"/bench64k":   64 << 10,
	"/bench1m":    1 << 20,
}

// liveCluster builds a distributor over two real loopback backends. mods
// adjust the distributor options (e.g. to enable the response cache).
func liveCluster(b *testing.B, mods ...func(*distributor.Options)) (front string, cleanup func()) {
	b.Helper()
	spec := config.ClusterSpec{DistributorCPUMHz: 350}
	var closers []func()
	for i := 0; i < 2; i++ {
		id := config.NodeID(fmt.Sprintf("n%d", i+1))
		store := &backend.MemStore{}
		for path, size := range benchObjects {
			_ = store.Put(path, backend.SynthesizeBody(path, int64(size)))
		}
		srv, err := backend.NewServer(backend.ServerOptions{
			Spec: config.NodeSpec{
				ID: id, CPUMHz: 350, MemoryMB: 64,
				Disk: config.DiskSCSI, Platform: config.LinuxApache,
			},
			Store: store,
		})
		if err != nil {
			b.Fatal(err)
		}
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		spec.Nodes = append(spec.Nodes, config.NodeSpec{
			ID: id, CPUMHz: 350, MemoryMB: 64,
			Disk: config.DiskSCSI, Platform: config.LinuxApache, Addr: addr,
		})
		closers = append(closers, func() { _ = srv.Close() })
	}
	table := urltable.New(urltable.Options{CacheEntries: 64})
	for path, size := range benchObjects {
		obj := content.Object{Path: path, Size: int64(size), Class: content.ClassHTML}
		if err := table.Insert(obj, "n1", "n2"); err != nil {
			b.Fatal(err)
		}
	}
	opts := distributor.Options{Table: table, Cluster: spec, PreforkPerNode: 4}
	for _, mod := range mods {
		mod(&opts)
	}
	dist, err := distributor.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	front, err = dist.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	closers = append(closers, func() { _ = dist.Close() })
	return front, func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
}

// BenchmarkDistributorRelay measures one keep-alive request relayed
// through the content-aware distributor over loopback (§2.3: the relay
// overhead the paper reports as insignificant).
func BenchmarkDistributorRelay(b *testing.B) {
	front, cleanup := liveCluster(b)
	defer cleanup()
	conn, err := net.Dial("tcp", front)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)
	req := &httpx.Request{
		Method: "GET", Target: "/bench.html", Path: "/bench.html",
		Proto: httpx.Proto11, Header: httpx.NewHeader("Host", "c"),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := httpx.WriteRequest(conn, req); err != nil {
			b.Fatal(err)
		}
		resp, err := httpx.ReadResponse(br)
		if err != nil || resp.StatusCode != 200 {
			b.Fatalf("resp %v %v", resp, err)
		}
	}
}

// BenchmarkDistributorRelayTraced is BenchmarkDistributorRelay with the
// full telemetry plane active: a pooled span per request across both
// tiers (distributor phase timings + backend service span, joined over
// the X-Dist-Trace/X-Dist-Span wire fields), atomic histogram and counter
// updates, and the span ring capture. The decision journal is attached
// too: the happy relay path records no events, so journaling must not
// show up here either. Acceptance: tracing + journaling adds 0
// allocs/op over the untraced relay (benchguard-gated).
func BenchmarkDistributorRelayTraced(b *testing.B) {
	front, cleanup := liveCluster(b, func(o *distributor.Options) {
		o.Telemetry = telemetry.New(telemetry.Options{Node: "bench-front"})
		o.Journal = journal.New(journal.Options{Node: "bench-front"})
	})
	defer cleanup()
	conn, err := net.Dial("tcp", front)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)
	req := &httpx.Request{
		Method: "GET", Target: "/bench.html", Path: "/bench.html",
		Proto: httpx.Proto11, Header: httpx.NewHeader("Host", "c"),
		TraceID: 0xb19b00553a9e77ed,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := httpx.WriteRequest(conn, req); err != nil {
			b.Fatal(err)
		}
		resp, err := httpx.ReadResponse(br)
		if err != nil || resp.StatusCode != 200 {
			b.Fatalf("resp %v %v", resp, err)
		}
		if resp.TraceID != req.TraceID {
			b.Fatalf("trace not propagated: %x", resp.TraceID)
		}
	}
}

// BenchmarkTelemetryObserve measures one lock-free histogram observation
// plus the class counters — the per-request metrics cost on the relay
// path. Must stay allocation-free and contention-tolerant.
func BenchmarkTelemetryObserve(b *testing.B) {
	reg := telemetry.NewRegistry("bench")
	cs := reg.Class("html")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var ns int64
		for pb.Next() {
			ns += 1000
			cs.Requests.Inc()
			cs.Bytes.Add(4096)
			cs.Latency.ObserveNs(ns & 0xfffff)
		}
	})
}

// BenchmarkJournalRecord measures one structured event append on the
// decision journal's lock-striped ring — the cost every control-plane
// actor pays per recorded decision, and the overhead bound for journal
// calls that do land on a data path (failover, retry exhaustion).
// Must stay at 0 allocs/op (gated by `make allocguard` against
// BENCH_telemetry.json with zero tolerance).
func BenchmarkJournalRecord(b *testing.B) {
	j := journal.New(journal.Options{Node: "bench"})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var i int64
		for pb.Next() {
			i++
			j.Record(journal.Event{
				Actor:  journal.ActorDistributor,
				Kind:   journal.KindFailover,
				Trace:  uint64(i),
				Node:   "n1",
				Path:   "/bench.html",
				Detail: "n2",
				A:      i,
			})
		}
	})
}

// BenchmarkAdmissionDecision measures the full per-request admission
// cost on the uncontended fast path: classify against the rule table,
// admit into the class's concurrency share, release on completion.
// This runs in front of every relayed request when overload control is
// on, so it must stay at 0 allocs/op (gated by `make allocguard`
// against BENCH_admission.json).
func BenchmarkAdmissionDecision(b *testing.B) {
	c := admission.New(admission.Options{
		MaxConcurrent: 256,
		Rules: []admission.Rule{
			{Prefix: "/checkout/", Class: admission.Critical},
			{Prefix: "/reports/", Class: admission.Batch},
		},
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		class := c.Classify("", "/products/42.html")
		if v := c.Admit(class); v != admission.Admitted {
			b.Fatalf("admission verdict %v on an idle controller", v)
		}
		c.Release(class)
	}
}

// BenchmarkDistributorRelayLarge measures the streaming fast path on large
// bodies (64 KiB and 1 MiB). The client reads the header and then drains
// the body through the same pooled-buffer copy the distributor uses, so the
// allocs/op reported here are dominated by the relay itself — they must not
// grow with the body size (acceptance: no per-request allocation
// proportional to the body).
func BenchmarkDistributorRelayLarge(b *testing.B) {
	for _, bc := range []struct {
		path string
		size int
	}{{"/bench64k", 64 << 10}, {"/bench1m", 1 << 20}} {
		b.Run(fmt.Sprintf("%dKiB", bc.size>>10), func(b *testing.B) {
			front, cleanup := liveCluster(b)
			defer cleanup()
			conn, err := net.Dial("tcp", front)
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = conn.Close() }()
			br := httpx.AcquireReader(conn)
			defer httpx.ReleaseReader(br)
			req := &httpx.Request{
				Method: "GET", Target: bc.path, Path: bc.path,
				Proto: httpx.Proto11, Header: httpx.NewHeader("Host", "c"),
			}
			b.SetBytes(int64(bc.size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := httpx.WriteRequest(conn, req); err != nil {
					b.Fatal(err)
				}
				resp, err := httpx.ReadResponseHeader(br)
				if err != nil || resp.StatusCode != 200 {
					b.Fatalf("resp %v %v", resp, err)
				}
				if resp.ContentLength != int64(bc.size) {
					b.Fatalf("content-length = %d, want %d", resp.ContentLength, bc.size)
				}
				if _, err := httpx.CopyBody(io.Discard, br, resp.ContentLength); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistributorRelayParallel drives at least GOMAXPROCS (and at
// least 4) concurrent keep-alive clients through the front end at once —
// the shape where per-core sharding pays. Bodies are small (4 KiB) so
// per-request overhead (accept locality, mapping-table stripes, pool
// checkout, buffer pools) dominates over raw byte-moving; MB/s is the
// aggregate across all clients. The sharded/unsharded pair quantifies
// the win: sharded runs one shard per core (REUSEPORT accept, private
// pools and idle stripes, at least 4 so the sharded layout is exercised
// even on small machines), unsharded is the single-shard layout. The
// speedup scales with cores — on a single-core host the two layouts
// bound each other (the benchmark then only proves sharding costs
// nothing), so judge the ratio together with GOMAXPROCS.
func BenchmarkDistributorRelayParallel(b *testing.B) {
	procs := runtime.GOMAXPROCS(0)
	shards := procs
	if shards < 4 {
		shards = 4
	}
	for _, bc := range []struct {
		name   string
		shards int
	}{
		{"sharded", shards},
		{"unsharded", 1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			front, cleanup := liveCluster(b, func(o *distributor.Options) {
				o.Shards = bc.shards
				o.MaxConnsPerNode = 4 * shards
			})
			defer cleanup()
			if procs < 4 {
				// ≥4 concurrent clients even on small machines.
				b.SetParallelism((4 + procs - 1) / procs)
			}
			b.SetBytes(4096)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				conn, err := net.Dial("tcp", front)
				if err != nil {
					b.Error(err)
					return
				}
				defer func() { _ = conn.Close() }()
				br := httpx.AcquireReader(conn)
				defer httpx.ReleaseReader(br)
				req := &httpx.Request{
					Method: "GET", Target: "/bench.html", Path: "/bench.html",
					Proto: httpx.Proto11, Header: httpx.NewHeader("Host", "c"),
				}
				for pb.Next() {
					if err := httpx.WriteRequest(conn, req); err != nil {
						b.Error(err)
						return
					}
					resp, err := httpx.ReadResponseHeader(br)
					if err != nil || resp.StatusCode != 200 {
						b.Errorf("resp %v %v", resp, err)
						return
					}
					if _, err := httpx.CopyBody(io.Discard, br, resp.ContentLength); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkDistributorCacheHit measures one keep-alive request answered
// from the distributor's response cache — zero backend round trips, the
// paper's relay cost removed entirely. Acceptance: strictly fewer
// allocs/op than BenchmarkDistributorRelay (the same request served
// through a back end).
func BenchmarkDistributorCacheHit(b *testing.B) {
	rc := respcache.New(respcache.Options{FreshTTL: time.Hour})
	front, cleanup := liveCluster(b, func(o *distributor.Options) { o.Cache = rc })
	defer cleanup()
	conn, err := net.Dial("tcp", front)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)
	req := &httpx.Request{
		Method: "GET", Target: "/bench.html", Path: "/bench.html",
		Proto: httpx.Proto11, Header: httpx.NewHeader("Host", "c"),
	}
	fetchOnce := func() {
		if err := httpx.WriteRequest(conn, req); err != nil {
			b.Fatal(err)
		}
		resp, err := httpx.ReadResponse(br)
		if err != nil || resp.StatusCode != 200 {
			b.Fatalf("resp %v %v", resp, err)
		}
	}
	fetchOnce() // warm: the first request fills the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fetchOnce()
	}
	b.StopTimer()
	if st := rc.Stats(); st.Hits < int64(b.N) {
		b.Fatalf("cache hits = %d, want ≥ %d (not measuring the hit path)", st.Hits, b.N)
	}
}

// BenchmarkDistributorCacheColdMiss measures the miss path: every
// iteration purges the entry first, so each request leads a singleflight
// fetch, buffers the body, and stores it.
func BenchmarkDistributorCacheColdMiss(b *testing.B) {
	rc := respcache.New(respcache.Options{FreshTTL: time.Hour})
	front, cleanup := liveCluster(b, func(o *distributor.Options) { o.Cache = rc })
	defer cleanup()
	conn, err := net.Dial("tcp", front)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)
	req := &httpx.Request{
		Method: "GET", Target: "/bench.html", Path: "/bench.html",
		Proto: httpx.Proto11, Header: httpx.NewHeader("Host", "c"),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.Invalidate("/bench.html")
		if err := httpx.WriteRequest(conn, req); err != nil {
			b.Fatal(err)
		}
		resp, err := httpx.ReadResponse(br)
		if err != nil || resp.StatusCode != 200 {
			b.Fatalf("resp %v %v", resp, err)
		}
	}
}

// BenchmarkDistributorCacheCoalescedMiss measures a miss under fan-in:
// four clients request the purged path at once, the singleflight leader
// fetches it, and everyone shares the result. The reported time is the
// whole four-way round, so per-request cost is a quarter of it.
func BenchmarkDistributorCacheCoalescedMiss(b *testing.B) {
	rc := respcache.New(respcache.Options{FreshTTL: time.Hour})
	front, cleanup := liveCluster(b, func(o *distributor.Options) { o.Cache = rc })
	defer cleanup()
	const clients = 4
	conns := make([]net.Conn, clients)
	readers := make([]*bufio.Reader, clients)
	for i := range conns {
		conn, err := net.Dial("tcp", front)
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = conn.Close() }()
		conns[i] = conn
		readers[i] = bufio.NewReader(conn)
	}
	req := &httpx.Request{
		Method: "GET", Target: "/bench.html", Path: "/bench.html",
		Proto: httpx.Proto11, Header: httpx.NewHeader("Host", "c"),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.Invalidate("/bench.html")
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				if err := httpx.WriteRequest(conns[c], req); err != nil {
					b.Error(err)
					return
				}
				resp, err := httpx.ReadResponse(readers[c])
				if err != nil || resp.StatusCode != 200 {
					b.Errorf("resp %v %v", resp, err)
				}
			}(c)
		}
		wg.Wait()
	}
	b.StopTimer()
	st := rc.Stats()
	b.ReportMetric(float64(st.Coalesced)/float64(b.N), "coalesced/op")
}

// BenchmarkL4RouterRelay is the baseline: one request through the
// content-blind layer-4 router (fresh connection per request, as L4
// semantics require for correct WLC counting).
func BenchmarkL4RouterRelay(b *testing.B) {
	store := &backend.MemStore{}
	_ = store.Put("/bench.html", backend.SynthesizeBody("/bench.html", 4096))
	srv, err := backend.NewServer(backend.ServerOptions{
		Spec: config.NodeSpec{
			ID: "n1", CPUMHz: 350, MemoryMB: 64,
			Disk: config.DiskSCSI, Platform: config.LinuxApache,
		},
		Store: store,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	router, err := l4router.New(loadbal.WeightedLeastConn{}, []l4router.Backend{
		{ID: "n1", Weight: 1, Addr: addr},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = router.Close() }()
	front, err := router.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	req := &httpx.Request{
		Method: "GET", Target: "/bench.html", Path: "/bench.html",
		Proto: httpx.Proto11, Header: httpx.NewHeader("Connection", "close"),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := net.Dial("tcp", front)
		if err != nil {
			b.Fatal(err)
		}
		if err := httpx.WriteRequest(conn, req); err != nil {
			b.Fatal(err)
		}
		resp, err := httpx.ReadResponse(bufio.NewReader(conn))
		if err != nil || resp.StatusCode != 200 {
			b.Fatalf("resp %v %v", resp, err)
		}
		_ = conn.Close()
	}
}

// benchParams shrinks the figure experiments so each benchmark iteration
// simulates one measurement cell in a few hundred milliseconds.
func benchParams() sim.ExperimentParams {
	p := sim.DefaultExperimentParams()
	p.Objects = 4000
	p.Warmup = 3 * time.Second
	p.Measure = 8 * time.Second
	return p
}

// runScheme simulates one figure cell and returns its throughput.
func runScheme(b *testing.B, kind workload.Kind, scheme sim.Scheme, clients int) sim.Result {
	b.Helper()
	p := benchParams()
	site, err := workload.BuildSite(kind, p.Objects, p.Seed)
	if err != nil {
		b.Fatal(err)
	}
	eng := &sim.Engine{}
	cluster, err := sim.BuildDeployment(eng, p.Hardware, p.Spec, site, scheme, p.Placement)
	if err != nil {
		b.Fatal(err)
	}
	rp := sim.DefaultRunParams(clients)
	rp.Warmup, rp.Measure, rp.Seed = p.Warmup, p.Measure, p.Seed
	res, err := sim.Run(cluster, site, scheme, rp)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// figureBench runs one scheme at the saturation point and reports the
// figure's y-axis value.
func figureBench(b *testing.B, kind workload.Kind, scheme sim.Scheme) {
	var last sim.Result
	for i := 0; i < b.N; i++ {
		last = runScheme(b, kind, scheme, 64)
	}
	b.ReportMetric(last.Throughput(), "req/s")
	b.ReportMetric(100*last.CacheHitRate, "cache-hit-%")
}

// Figure 2 (Workload A, static): the three §5.3 configurations.
func BenchmarkFigure2Replication(b *testing.B) {
	figureBench(b, workload.KindA, sim.SchemeFullReplication)
}

func BenchmarkFigure2NFS(b *testing.B) {
	figureBench(b, workload.KindA, sim.SchemeNFS)
}

func BenchmarkFigure2Partition(b *testing.B) {
	figureBench(b, workload.KindA, sim.SchemePartition)
}

// Figure 3 (Workload B, dynamic mix): full replication vs partition.
func BenchmarkFigure3Replication(b *testing.B) {
	figureBench(b, workload.KindB, sim.SchemeFullReplication)
}

func BenchmarkFigure3Partition(b *testing.B) {
	figureBench(b, workload.KindB, sim.SchemePartition)
}

// BenchmarkFigure4 regenerates the per-class segregation gains at
// saturation (paper: +45% CGI, +42% ASP, +58% static).
func BenchmarkFigure4(b *testing.B) {
	var base, seg sim.Result
	for i := 0; i < b.N; i++ {
		base = runScheme(b, workload.KindB, sim.SchemeFullReplication, 120)
		seg = runScheme(b, workload.KindB, sim.SchemePartition, 120)
	}
	gain := func(bv, sv float64) float64 {
		if bv == 0 {
			return 0
		}
		return (sv - bv) / bv * 100
	}
	b.ReportMetric(gain(base.ClassThroughput(content.ClassCGI), seg.ClassThroughput(content.ClassCGI)), "cgi-gain-%")
	b.ReportMetric(gain(base.ClassThroughput(content.ClassASP), seg.ClassThroughput(content.ClassASP)), "asp-gain-%")
	b.ReportMetric(gain(base.StaticThroughput(), seg.StaticThroughput()), "static-gain-%")
}

// BenchmarkReplicaSelection compares the distributor's replica-selection
// policies (ablation for DESIGN.md §5).
func BenchmarkReplicaSelection(b *testing.B) {
	for _, name := range []string{"wlc", "lc", "rr", "random", "leastload"} {
		b.Run(name, func(b *testing.B) {
			picker, err := loadbal.ByName(name, 1)
			if err != nil {
				b.Fatal(err)
			}
			cands := []loadbal.NodeState{
				{ID: "a", Weight: 1, Active: 3},
				{ID: "b", Weight: 0.57, Active: 1},
				{ID: "c", Weight: 0.43, Active: 2},
				{ID: "d", Weight: 1, Active: 0},
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := picker.Pick(cands); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkZipf measures workload generation cost (it must never be the
// harness bottleneck).
func BenchmarkZipf(b *testing.B) {
	z, err := workload.NewZipf(24000, workload.DefaultZipfS, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}

// BenchmarkLoadMetric measures the §3.3 per-request accounting.
func BenchmarkLoadMetric(b *testing.B) {
	tr := loadbal.NewTracker(loadbal.PaperWeights())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Record("n1", content.ClassHTML, 3*time.Millisecond)
	}
}

// BenchmarkSimEngine measures raw event throughput of the simulator.
func BenchmarkSimEngine(b *testing.B) {
	var eng sim.Engine
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.Schedule(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	eng.Schedule(0, tick)
	eng.Run(time.Duration(b.N+1) * time.Microsecond * 2)
}
