package webcluster

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"webcluster/internal/sim"
	"webcluster/internal/workload"
)

// renderCSV replays spec and returns the timeline plus its exact CSV
// bytes.
func renderCSV(t *testing.T, spec *workload.Spec) (*sim.Timeline, []byte) {
	t.Helper()
	tl, err := sim.RunScenario(spec, sim.DefaultScenarioOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return tl, buf.Bytes()
}

// Determinism regression: the scenario layer promises that one (spec,
// seed) pair replays to a byte-identical timeline CSV — the property the
// whole golden-file methodology and CHAOS_SEED-style replay debugging
// rest on. Run under -race in CI to also prove the replay is data-race
// free.
func TestScenarioDeterministicReplay(t *testing.T) {
	spec := workload.FlashCrowdScenario()
	spec.TimeScale = 16 // 2.5 min virtual: quick enough to replay three times under -race

	_, first := renderCSV(t, spec)
	_, second := renderCSV(t, spec)
	if !bytes.Equal(first, second) {
		t.Fatalf("same spec and seed produced different timelines:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", first, second)
	}

	reseeded := workload.FlashCrowdScenario()
	reseeded.TimeScale = 16
	reseeded.Seed = spec.Seed + 1
	_, third := renderCSV(t, reseeded)
	if bytes.Equal(first, third) {
		t.Fatal("different seeds produced byte-identical timelines — the seed is not reaching the random streams")
	}
}

// The CI smoke behind `make sim`: a compressed flash crowd saturates the
// cluster, and the §3.3 auto-replication planner must spread the new hot
// set so throughput recovers to the pre-spike level.
func TestScenarioFlashCrowdRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("flash-crowd recovery runs via `make sim` and plain `make test`; -short keeps it out of the race sweep")
	}
	spec := workload.FlashCrowdScenario()
	spec.TimeScale = 2 // rates (and therefore saturation) are preserved; only exposure shrinks

	tl, csv := renderCSV(t, spec)
	if len(tl.Points) != 20 {
		t.Fatalf("40m at 2m intervals should yield 20 points, got %d", len(tl.Points))
	}
	if !strings.HasPrefix(string(csv), sim.TimelineCSVHeader+"\n") {
		t.Fatalf("CSV missing the published header:\n%s", csv[:120])
	}

	// The surge occupies intervals 7–9 (14m–20m of the 40m span).
	pre := tl.MeanRPS(0, 7)
	surge := tl.MeanRPS(7, 10)
	post := tl.MeanRPS(10, -1)
	if pre < 400 || pre > 600 {
		t.Fatalf("pre-spike throughput %.1f req/s, want ~500", pre)
	}
	if surge < 4*pre {
		t.Fatalf("surge throughput %.1f req/s vs pre %.1f — the ×9 flash crowd is not arriving", surge, pre)
	}
	// Saturation evidence: queueing during the surge pushes p99 far past
	// the steady-state tail.
	var preP99, surgeP99 time.Duration
	for _, p := range tl.Points[:7] {
		if p.P99 > preP99 {
			preP99 = p.P99
		}
	}
	for _, p := range tl.Points[7:10] {
		if p.P99 > surgeP99 {
			surgeP99 = p.P99
		}
	}
	if surgeP99 < 5*preP99 {
		t.Fatalf("surge p99 %v vs pre-spike %v — the spike never stressed the cluster", surgeP99, preP99)
	}
	// The planner reacted: the promoted hot set gained replicas.
	if last, first := tl.Points[len(tl.Points)-1].Replicas, tl.Points[0].Replicas; last <= first {
		t.Fatalf("replica count %d → %d: auto-replication never acted", first, last)
	}
	// And the headline assertion: post-spike throughput within 20% of
	// pre-spike.
	if diff := (post - pre) / pre; diff < -0.2 || diff > 0.2 {
		t.Fatalf("post-spike throughput %.1f req/s is %+.0f%% of pre-spike %.1f — did not recover", post, diff*100, pre)
	}
	if tl.TotalErrors != 0 {
		t.Fatalf("%d requests errored during the flash crowd", tl.TotalErrors)
	}
}

// The acceptance bar from the issue: a 24 h diurnal scenario with over a
// million simulated requests — flash crowd and maintenance window
// included — must complete in well under a minute of wall time and emit
// a full timeline.
func TestScenarioDayLong(t *testing.T) {
	if testing.Short() {
		t.Skip("day-long scenario skipped in -short mode")
	}
	start := time.Now()
	tl, csv := renderCSV(t, workload.DayScenario())
	wall := time.Since(start)

	if wall > 60*time.Second {
		t.Fatalf("24h scenario took %v of wall time, must stay under 60s", wall)
	}
	if tl.TotalRequests < 1_000_000 {
		t.Fatalf("day scenario served %d requests, acceptance needs ≥ 1M", tl.TotalRequests)
	}
	if tl.VirtualDuration != 24*time.Hour {
		t.Fatalf("virtual span %v, want 24h", tl.VirtualDuration)
	}
	if len(tl.Points) != 288 {
		t.Fatalf("24h at 5m intervals should yield 288 points, got %d", len(tl.Points))
	}
	if lines := bytes.Count(csv, []byte("\n")); lines != 289 {
		t.Fatalf("CSV has %d lines, want header + 288 rows", lines)
	}

	// The maintenance window (n6-350 down 2h–2h45m) must be visible in
	// the down_nodes column and nowhere else.
	for _, p := range tl.Points {
		inWindow := p.End > 2*time.Hour && p.End <= 2*time.Hour+45*time.Minute
		if inWindow && p.DownNodes != 1 {
			t.Fatalf("interval ending %v is inside the maintenance window but reports %d down nodes", p.End, p.DownNodes)
		}
		if !inWindow && p.DownNodes != 0 {
			t.Fatalf("interval ending %v reports %d down nodes outside the window", p.End, p.DownNodes)
		}
	}

	// The 13h flash crowd (×3 on top of the afternoon curve) must show
	// up as a throughput step against the hour before it.
	calm := tl.MeanRPS(144, 156)  // 12h–13h
	spike := tl.MeanRPS(156, 164) // 13h–13h40m
	if spike < 2*calm {
		t.Fatalf("flash-crowd hour runs at %.1f req/s vs %.1f before it — the surge is missing", spike, calm)
	}

	// Diurnal shape: the overnight trough must be far below the evening
	// peak (curve knots 0.25 vs 1.8).
	night := tl.MeanRPS(36, 48)     // 3h–4h
	evening := tl.MeanRPS(216, 228) // 18h–19h
	if night >= evening/2 {
		t.Fatalf("diurnal curve flat: night %.1f req/s vs evening %.1f", night, evening)
	}
}

// The example spec files in examples/scenarios/ are documentation that
// must never drift from the built-ins they mirror.
func TestExampleScenarioFilesMatchBuiltins(t *testing.T) {
	cases := []struct {
		path string
		want *workload.Spec
	}{
		{"examples/scenarios/day.json", workload.DayScenario()},
		{"examples/scenarios/flashcrowd.json", workload.FlashCrowdScenario()},
	}
	for _, tc := range cases {
		got, err := workload.LoadSpec(tc.path)
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("%s drifted from its built-in:\nfile:    %+v\nbuiltin: %+v", tc.path, got, tc.want)
		}
	}
}
