package webcluster

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"webcluster/internal/sim"
	"webcluster/internal/workload"
)

// renderCSV replays spec and returns the timeline plus its exact CSV
// bytes.
func renderCSV(t *testing.T, spec *workload.Spec) (*sim.Timeline, []byte) {
	t.Helper()
	tl, err := sim.RunScenario(spec, sim.DefaultScenarioOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return tl, buf.Bytes()
}

// Determinism regression: the scenario layer promises that one (spec,
// seed) pair replays to a byte-identical timeline CSV — the property the
// whole golden-file methodology and CHAOS_SEED-style replay debugging
// rest on. Run under -race in CI to also prove the replay is data-race
// free.
func TestScenarioDeterministicReplay(t *testing.T) {
	spec := workload.FlashCrowdScenario()
	spec.TimeScale = 16 // 2.5 min virtual: quick enough to replay three times under -race

	_, first := renderCSV(t, spec)
	_, second := renderCSV(t, spec)
	if !bytes.Equal(first, second) {
		t.Fatalf("same spec and seed produced different timelines:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", first, second)
	}

	reseeded := workload.FlashCrowdScenario()
	reseeded.TimeScale = 16
	reseeded.Seed = spec.Seed + 1
	_, third := renderCSV(t, reseeded)
	if bytes.Equal(first, third) {
		t.Fatal("different seeds produced byte-identical timelines — the seed is not reaching the random streams")
	}
}

// The CI smoke behind `make sim`: a compressed flash crowd saturates the
// cluster, and the §3.3 auto-replication planner must spread the new hot
// set so throughput recovers to the pre-spike level.
func TestScenarioFlashCrowdRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("flash-crowd recovery runs via `make sim` and plain `make test`; -short keeps it out of the race sweep")
	}
	spec := workload.FlashCrowdScenario()
	spec.TimeScale = 2 // rates (and therefore saturation) are preserved; only exposure shrinks

	tl, csv := renderCSV(t, spec)
	if len(tl.Points) != 20 {
		t.Fatalf("40m at 2m intervals should yield 20 points, got %d", len(tl.Points))
	}
	if !strings.HasPrefix(string(csv), sim.TimelineCSVHeader+"\n") {
		t.Fatalf("CSV missing the published header:\n%s", csv[:120])
	}

	// The surge occupies intervals 7–9 (14m–20m of the 40m span).
	pre := tl.MeanRPS(0, 7)
	surge := tl.MeanRPS(7, 10)
	post := tl.MeanRPS(10, -1)
	if pre < 400 || pre > 600 {
		t.Fatalf("pre-spike throughput %.1f req/s, want ~500", pre)
	}
	if surge < 4*pre {
		t.Fatalf("surge throughput %.1f req/s vs pre %.1f — the ×9 flash crowd is not arriving", surge, pre)
	}
	// Saturation evidence: queueing during the surge pushes p99 far past
	// the steady-state tail.
	var preP99, surgeP99 time.Duration
	for _, p := range tl.Points[:7] {
		if p.P99 > preP99 {
			preP99 = p.P99
		}
	}
	for _, p := range tl.Points[7:10] {
		if p.P99 > surgeP99 {
			surgeP99 = p.P99
		}
	}
	if surgeP99 < 5*preP99 {
		t.Fatalf("surge p99 %v vs pre-spike %v — the spike never stressed the cluster", surgeP99, preP99)
	}
	// The planner reacted: the promoted hot set gained replicas.
	if last, first := tl.Points[len(tl.Points)-1].Replicas, tl.Points[0].Replicas; last <= first {
		t.Fatalf("replica count %d → %d: auto-replication never acted", first, last)
	}
	// And the headline assertion: post-spike throughput within 20% of
	// pre-spike.
	if diff := (post - pre) / pre; diff < -0.2 || diff > 0.2 {
		t.Fatalf("post-spike throughput %.1f req/s is %+.0f%% of pre-spike %.1f — did not recover", post, diff*100, pre)
	}
	if tl.TotalErrors != 0 {
		t.Fatalf("%d requests errored during the flash crowd", tl.TotalErrors)
	}
}

// The acceptance bar from the issue: a 24 h diurnal scenario with over a
// million simulated requests — flash crowd and maintenance window
// included — must complete in well under a minute of wall time and emit
// a full timeline.
func TestScenarioDayLong(t *testing.T) {
	if testing.Short() {
		t.Skip("day-long scenario skipped in -short mode")
	}
	start := time.Now()
	tl, csv := renderCSV(t, workload.DayScenario())
	wall := time.Since(start)

	if wall > 60*time.Second {
		t.Fatalf("24h scenario took %v of wall time, must stay under 60s", wall)
	}
	if tl.TotalRequests < 1_000_000 {
		t.Fatalf("day scenario served %d requests, acceptance needs ≥ 1M", tl.TotalRequests)
	}
	if tl.VirtualDuration != 24*time.Hour {
		t.Fatalf("virtual span %v, want 24h", tl.VirtualDuration)
	}
	if len(tl.Points) != 288 {
		t.Fatalf("24h at 5m intervals should yield 288 points, got %d", len(tl.Points))
	}
	if lines := bytes.Count(csv, []byte("\n")); lines != 289 {
		t.Fatalf("CSV has %d lines, want header + 288 rows", lines)
	}

	// The maintenance window (n6-350 down 2h–2h45m) must be visible in
	// the down_nodes column and nowhere else.
	for _, p := range tl.Points {
		inWindow := p.End > 2*time.Hour && p.End <= 2*time.Hour+45*time.Minute
		if inWindow && p.DownNodes != 1 {
			t.Fatalf("interval ending %v is inside the maintenance window but reports %d down nodes", p.End, p.DownNodes)
		}
		if !inWindow && p.DownNodes != 0 {
			t.Fatalf("interval ending %v reports %d down nodes outside the window", p.End, p.DownNodes)
		}
	}

	// The 13h flash crowd (×3 on top of the afternoon curve) must show
	// up as a throughput step against the hour before it.
	calm := tl.MeanRPS(144, 156)  // 12h–13h
	spike := tl.MeanRPS(156, 164) // 13h–13h40m
	if spike < 2*calm {
		t.Fatalf("flash-crowd hour runs at %.1f req/s vs %.1f before it — the surge is missing", spike, calm)
	}

	// Diurnal shape: the overnight trough must be far below the evening
	// peak (curve knots 0.25 vs 1.8).
	night := tl.MeanRPS(36, 48)     // 3h–4h
	evening := tl.MeanRPS(216, 228) // 18h–19h
	if night >= evening/2 {
		t.Fatalf("diurnal curve flat: night %.1f req/s vs evening %.1f", night, evening)
	}
}

// The overload-control acceptance bar: a ×10 flash crowd hits the
// surge scenario's three SLO classes while admission control is on.
// Graceful degradation means the batch class absorbs the damage
// (shed with 503s), interactive browsers degrade to stale front-end
// answers, and the critical checkout class keeps its p99 within 2x of
// the pre-surge tail without a single critical request refused.
// Runs under -race via `make chaos`.
func TestChaosSurgeGracefulDegradation(t *testing.T) {
	spec := workload.SurgeScenario()
	spec.TimeScale = 2 // rates — and therefore overload — are preserved; only exposure shrinks

	opts := sim.DefaultScenarioOptions()
	opts.Admission = &sim.AdmissionParams{MaxConcurrent: 10, CriticalHeadroom: 4}
	tl, err := sim.RunScenario(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Points) != 15 {
		t.Fatalf("30m at 2m intervals should yield 15 points, got %d", len(tl.Points))
	}

	// The ×10 surge occupies intervals 6–9 (12m–20m of the 30m span).
	const surgeFrom, surgeTo = 6, 10
	pre := tl.MeanRPS(0, surgeFrom)
	surge := tl.MeanRPS(surgeFrom, surgeTo)
	if surge < 4*pre {
		t.Fatalf("surge throughput %.1f req/s vs pre %.1f — the ×10 flash crowd is not arriving", surge, pre)
	}

	var preCritP99, surgeCritP99 time.Duration
	var surgeBatchShed, surgeStale int64
	for _, p := range tl.Points {
		// Never, anywhere: critical requests must not be refused.
		if p.ClassShed[sim.SLOCritical] != 0 {
			t.Fatalf("interval %d shed %d critical requests; critical must never be refused",
				p.Index, p.ClassShed[sim.SLOCritical])
		}
		switch {
		case p.Index < surgeFrom:
			if p.ClassP99[sim.SLOCritical] > preCritP99 {
				preCritP99 = p.ClassP99[sim.SLOCritical]
			}
		case p.Index < surgeTo:
			if p.ClassP99[sim.SLOCritical] > surgeCritP99 {
				surgeCritP99 = p.ClassP99[sim.SLOCritical]
			}
			if p.ClassShed[sim.SLOBatch] == 0 {
				t.Errorf("surge interval %d shed no batch traffic — admission control is not engaging", p.Index)
			}
			surgeBatchShed += p.ClassShed[sim.SLOBatch]
			surgeStale += p.StaleServed
		}
	}

	// Headline: the critical class rides out a ×10 overload with its
	// tail within 2x of steady state.
	if surgeCritP99 > 2*preCritP99 {
		t.Fatalf("critical p99 %v during the surge vs %v before it — want within 2x", surgeCritP99, preCritP99)
	}
	if surgeBatchShed == 0 {
		t.Fatal("no batch requests shed during the surge — the shedding ladder never engaged")
	}
	// Interactive degradation is visible: stale front-end answers stand
	// in for refused full service.
	if surgeStale == 0 {
		t.Fatal("no interactive requests degraded to stale during the surge")
	}
	t.Logf("pre-surge critical p99 %v, surge critical p99 %v (%.2fx), batch shed %d, stale served %d",
		preCritP99, surgeCritP99, float64(surgeCritP99)/float64(preCritP99), surgeBatchShed, surgeStale)
}

// The example spec files in examples/scenarios/ are documentation that
// must never drift from the built-ins they mirror.
func TestExampleScenarioFilesMatchBuiltins(t *testing.T) {
	cases := []struct {
		path string
		want *workload.Spec
	}{
		{"examples/scenarios/day.json", workload.DayScenario()},
		{"examples/scenarios/flashcrowd.json", workload.FlashCrowdScenario()},
		{"examples/scenarios/surge.json", workload.SurgeScenario()},
	}
	for _, tc := range cases {
		got, err := workload.LoadSpec(tc.path)
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("%s drifted from its built-in:\nfile:    %+v\nbuiltin: %+v", tc.path, got, tc.want)
		}
	}
}
