package webcluster

// Cache-coherence property suite: with the distributor-side response
// cache enabled and freshness set to an hour, the ONLY thing standing
// between a client and a stale body is the management plane's purge
// hook. A mutator drives a random (seeded, CHAOS_SEED-reproducible)
// sequence of controller mutations while reader goroutines hammer the
// front end; every response is checked against a version model — once a
// mutation has returned, no later request may observe the pre-mutation
// body.

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/core"
	"webcluster/internal/faults"
	"webcluster/internal/respcache"
	"webcluster/internal/testutil"
)

// propBody encodes path and version so a reader can recover the version
// a response was generated from.
func propBody(path string, version int) []byte {
	return []byte(fmt.Sprintf("<html>%s v=%d</html>", path, version))
}

// propVersion recovers the version from a propBody response.
func propVersion(t *testing.T, body []byte) int {
	s := string(body)
	i := strings.LastIndex(s, "v=")
	j := strings.LastIndex(s, "</html>")
	if i < 0 || j < i {
		t.Errorf("unparsable body %q", s)
		return -1
	}
	v, err := strconv.Atoi(s[i+2 : j])
	if err != nil {
		t.Errorf("unparsable version in %q: %v", s, err)
		return -1
	}
	return v
}

// pathModel is the linearized ground truth for one path. version and
// deleted are committed only after the controller mutation returns, so
// the model never runs ahead of the cluster. The epochs count committed
// deletes/inserts so a reader can tell whether one overlapped its
// request window (any status seen then is ambiguous, not a violation).
type pathModel struct {
	version  int
	deleted  bool
	delEpoch int
	insEpoch int
	// busy marks a controller mutation in progress on this path. Plan
	// execution deletes surplus copies from back ends before the table
	// update commits, so a read overlapping the mutation may legally see
	// a transient 404 — the coherence property only binds requests made
	// after the mutation has returned.
	busy bool
}

func TestCacheCoherenceUnderMutations(t *testing.T) {
	testutil.NoLeaks(t)
	seed := faults.Seed(606)
	t.Logf("cache-coherence seed %d (rerun with CHAOS_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))

	cluster, err := core.Launch(core.Options{
		CacheBytes: 8 << 20,
		// freshness far beyond the test's lifetime: every coherent
		// response below is coherent because a purge made it so
		CacheOptions: respcache.Options{FreshTTL: time.Hour, StaleTTL: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	if cluster.Cache == nil {
		t.Fatal("CacheBytes did not enable the response cache")
	}
	ids := cluster.Spec.NodeIDs()

	const paths = 10
	var mu sync.Mutex // guards model
	model := make([]pathModel, paths)
	pathOf := func(i int) string { return fmt.Sprintf("/prop/%d.html", i) }
	for i := 0; i < paths; i++ {
		p := pathOf(i)
		nodes := ids[:1+rng.Intn(len(ids))]
		obj := content.Object{Path: p, Size: int64(len(propBody(p, 0))), Class: content.ClassHTML}
		if err := cluster.Controller.Insert(obj, propBody(p, 0), nodes...); err != nil {
			t.Fatal(err)
		}
	}

	// readers: snapshot the model, fetch, then verify the response could
	// not predate the snapshot
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rrng := rand.New(rand.NewSource(seed + int64(r) + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rrng.Intn(paths)
				p := pathOf(i)
				mu.Lock()
				m0 := model[i]
				mu.Unlock()
				resp, err := cluster.Get(p)
				if err != nil {
					t.Errorf("reader %d: GET %s: %v", r, p, err)
					return
				}
				mu.Lock()
				m1 := model[i]
				mu.Unlock()
				switch resp.StatusCode {
				case 200:
					if m0.deleted && m1.deleted && m0.insEpoch == m1.insEpoch {
						t.Errorf("reader %d: %s served %q while deleted", r, p, resp.Body)
						return
					}
					if v := propVersion(t, resp.Body); v < m0.version {
						t.Errorf("reader %d: %s observed v%d after v%d was committed (stale cache)",
							r, p, v, m0.version)
						return
					}
				case 404:
					if !m0.deleted && !m1.deleted && m0.delEpoch == m1.delEpoch &&
						!m0.busy && !m1.busy {
						t.Errorf("reader %d: %s 404 while the path existed", r, p)
						return
					}
				default:
					t.Errorf("reader %d: %s unexpected status %d", r, p, resp.StatusCode)
					return
				}
			}
		}(r)
	}

	// mutator: one mutation at a time through the controller, committing
	// the model only after the call returns
	const mutations = 60
	versionCounter := make([]int, paths)
	setBusy := func(i int, b bool) {
		mu.Lock()
		model[i].busy = b
		mu.Unlock()
	}
	for m := 0; m < mutations; m++ {
		i := rng.Intn(paths)
		p := pathOf(i)
		mu.Lock()
		deleted := model[i].deleted
		model[i].busy = true
		mu.Unlock()
		switch op := rng.Intn(6); {
		case deleted || (op == 0):
			// (re-)insert at a strictly higher version
			if !deleted {
				if err := cluster.Controller.Delete(p); err != nil {
					t.Fatalf("delete %s: %v", p, err)
				}
				mu.Lock()
				model[i].deleted = true
				model[i].delEpoch++
				mu.Unlock()
			}
			versionCounter[i]++
			v := versionCounter[i]
			obj := content.Object{Path: p, Size: int64(len(propBody(p, v))), Class: content.ClassHTML}
			nodes := ids[:1+rng.Intn(len(ids))]
			if err := cluster.Controller.Insert(obj, propBody(p, v), nodes...); err != nil {
				t.Fatalf("insert %s v%d: %v", p, v, err)
			}
			mu.Lock()
			model[i].version = v
			model[i].deleted = false
			model[i].insEpoch++
			mu.Unlock()
		case op == 1:
			if err := cluster.Controller.Delete(p); err != nil {
				t.Fatalf("delete %s: %v", p, err)
			}
			mu.Lock()
			model[i].deleted = true
			model[i].delEpoch++
			mu.Unlock()
		case op == 2:
			versionCounter[i]++
			v := versionCounter[i]
			if err := cluster.Controller.Update(p, propBody(p, v)); err != nil {
				t.Fatalf("update %s v%d: %v", p, v, err)
			}
			mu.Lock()
			model[i].version = v
			mu.Unlock()
		case op == 3:
			rec, err := cluster.Table.Lookup(p)
			if err != nil {
				t.Fatalf("lookup %s: %v", p, err)
			}
			var target config.NodeID
			for _, id := range ids {
				if !rec.HasLocation(id) {
					target = id
					break
				}
			}
			if target == "" {
				break // fully replicated already
			}
			src := rec.Locations[rng.Intn(len(rec.Locations))]
			if err := cluster.Controller.Replicate(p, src, target); err != nil {
				t.Fatalf("replicate %s %s->%s: %v", p, src, target, err)
			}
		case op == 4:
			rec, err := cluster.Table.Lookup(p)
			if err != nil {
				t.Fatalf("lookup %s: %v", p, err)
			}
			if len(rec.Locations) < 2 {
				break // never offload the last copy
			}
			victim := rec.Locations[rng.Intn(len(rec.Locations))]
			if err := cluster.Controller.Offload(p, victim); err != nil {
				t.Fatalf("offload %s from %s: %v", p, victim, err)
			}
		default:
			nodes := append([]config.NodeID(nil), ids...)
			rng.Shuffle(len(nodes), func(a, b int) { nodes[a], nodes[b] = nodes[b], nodes[a] })
			nodes = nodes[:1+rng.Intn(len(nodes))]
			if err := cluster.Controller.Assign(p, nodes...); err != nil {
				t.Fatalf("assign %s: %v", p, err)
			}
		}
		setBusy(i, false)
	}
	close(stop)
	readers.Wait()

	st := cluster.Cache.Stats()
	if st.Invalidations == 0 {
		t.Fatal("mutations never purged the cache — the hook is not wired")
	}
	if st.Hits == 0 {
		t.Fatal("readers never hit the cache — the property was not exercised")
	}
	t.Logf("coherence run: %d mutations, cache stats %+v", mutations, st)
}

// TestCacheRenamePurges: a rename must purge the cached entry under the
// old name (404 afterwards) and serve the body under the new one.
func TestCacheRenamePurges(t *testing.T) {
	testutil.NoLeaks(t)
	cluster, err := core.Launch(core.Options{
		CacheBytes:   4 << 20,
		CacheOptions: respcache.Options{FreshTTL: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()

	body := []byte("<html>movable</html>")
	obj := content.Object{Path: "/old.html", Size: int64(len(body)), Class: content.ClassHTML}
	if err := cluster.Controller.Insert(obj, body, cluster.Spec.NodeIDs()[0]); err != nil {
		t.Fatal(err)
	}
	if resp, err := cluster.Get("/old.html"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("warming fetch: %v %v", resp, err)
	}
	// cached now; the rename must not leave the old name servable
	if err := cluster.Controller.Rename("/old.html", "/new.html"); err != nil {
		t.Fatal(err)
	}
	resp, err := cluster.Get("/old.html")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Fatalf("old name served %d after rename (body %q)", resp.StatusCode, resp.Body)
	}
	resp, err = cluster.Get("/new.html")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !bytes.Equal(resp.Body, body) {
		t.Fatalf("new name: status=%d body=%q", resp.StatusCode, resp.Body)
	}
}

// TestConsolePurgeOp: the console `purge` verb drops cached entries and
// `cache-stats` reports the cache counters end to end.
func TestConsolePurgeOp(t *testing.T) {
	testutil.NoLeaks(t)
	cluster, err := core.Launch(core.Options{
		CacheBytes:   4 << 20,
		CacheOptions: respcache.Options{FreshTTL: time.Hour},
		ConsoleAddr:  "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()

	body := []byte("<html>purge me</html>")
	obj := content.Object{Path: "/purgeme.html", Size: int64(len(body)), Class: content.ClassHTML}
	if err := cluster.Controller.Insert(obj, body, cluster.Spec.NodeIDs()[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Get("/purgeme.html"); err != nil {
		t.Fatal(err)
	}
	if st := cluster.Cache.Stats(); st.Entries != 1 {
		t.Fatalf("entry not cached: %+v", st)
	}
	if n, err := cluster.Controller.Purge("/purgeme.html"); err != nil || n != 1 {
		t.Fatalf("Purge = (%d, %v)", n, err)
	}
	if st := cluster.Cache.Stats(); st.Entries != 0 {
		t.Fatalf("purge left entries: %+v", st)
	}
	if st, ok := cluster.Controller.CacheStats(); !ok || st.Fills != 1 {
		t.Fatalf("CacheStats = (%+v, %v)", st, ok)
	}
	if _, err := cluster.Controller.Purge("*"); err != nil {
		t.Fatalf("purge *: %v", err)
	}
}
