package conntrack

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// validStates and allEvents enumerate the machine's domain for the
// property tests.
var validStates = []State{
	StateSynReceived, StateEstablished, StateBound,
	StateFinReceived, StateHalfClosed, StateClosed,
}

var allEvents = []Event{
	EventHandshakeDone, EventRequestBound, EventRequestDone,
	EventClientFin, EventFinAcked, EventLastAck, EventReset,
}

// randomEvents is a quick.Generator producing arbitrary event sequences.
type randomEvents []Event

// Generate implements quick.Generator.
func (randomEvents) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size + 1)
	evs := make(randomEvents, n)
	for i := range evs {
		evs[i] = allEvents[r.Intn(len(allEvents))]
	}
	return reflect.ValueOf(evs)
}

// TestNextStaysInDomain: driving any event sequence from the initial
// state never leaves the valid state set, and an error never moves the
// state.
func TestNextStaysInDomain(t *testing.T) {
	inDomain := func(s State) bool {
		for _, v := range validStates {
			if s == v {
				return true
			}
		}
		return false
	}
	prop := func(evs randomEvents) bool {
		s := StateSynReceived
		for _, ev := range evs {
			next, err := Next(s, ev)
			if err != nil {
				var bad *ErrBadTransition
				if !errors.As(err, &bad) {
					return false
				}
				if next != s {
					return false // error must leave the state unchanged
				}
				continue
			}
			if !inDomain(next) {
				return false
			}
			s = next
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestClosedIsTerminal: once CLOSED, every event is rejected and the
// state never changes.
func TestClosedIsTerminal(t *testing.T) {
	prop := func(evs randomEvents) bool {
		for _, ev := range evs {
			next, err := Next(StateClosed, ev)
			if err == nil || next != StateClosed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestResetAlwaysCloses: from every non-closed valid state, EventReset
// jumps straight to CLOSED.
func TestResetAlwaysCloses(t *testing.T) {
	for _, s := range validStates {
		next, err := Next(s, EventReset)
		if s == StateClosed {
			if err == nil {
				t.Fatalf("reset accepted in CLOSED")
			}
			continue
		}
		if err != nil || next != StateClosed {
			t.Fatalf("Next(%s, RESET) = %s, %v", s, next, err)
		}
	}
}

// TestClosedReachableFromEverywhere: from any valid state some event
// sequence reaches CLOSED — no state can strand a connection.
func TestClosedReachableFromEverywhere(t *testing.T) {
	for _, start := range validStates {
		reached := map[State]bool{start: true}
		frontier := []State{start}
		for len(frontier) > 0 {
			s := frontier[0]
			frontier = frontier[1:]
			for _, ev := range allEvents {
				next, err := Next(s, ev)
				if err == nil && !reached[next] {
					reached[next] = true
					frontier = append(frontier, next)
				}
			}
		}
		if !reached[StateClosed] {
			t.Fatalf("CLOSED unreachable from %s", start)
		}
	}
}
