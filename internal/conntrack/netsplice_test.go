package conntrack

import (
	"bytes"
	"io"
	"net"
	"testing"

	"webcluster/internal/faults"
)

// tcpPair returns the two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		_ = client.Close()
		t.Fatal(r.err)
	}
	t.Cleanup(func() { _ = client.Close(); _ = r.c.Close() })
	return client, r.c
}

func TestCanSplice(t *testing.T) {
	a, b := tcpPair(t)
	if !CanSplice(a, b) {
		t.Fatal("two direct TCP conns should be spliceable")
	}
	in := faults.New(1)
	wrapped := in.Conn("test.conn", a)
	if CanSplice(wrapped, b) || CanSplice(b, wrapped) {
		t.Fatal("a fault-wrapped conn must not report spliceable — unwrapping would bypass injection")
	}
	p1, p2 := net.Pipe()
	defer func() { _ = p1.Close(); _ = p2.Close() }()
	if CanSplice(p1, p2) {
		t.Fatal("net.Pipe ends are not TCP")
	}
}

// relayChain pushes payload through SpliceStreams across two TCP hops
// (client → relay → sink), with optional wrapping of the relay's source
// side, and returns what the sink received.
func relayChain(t *testing.T, payload []byte, wrap func(net.Conn) net.Conn) []byte {
	t.Helper()
	upClient, upServer := tcpPair(t)
	downClient, downServer := tcpPair(t)

	src := net.Conn(upServer)
	if wrap != nil {
		src = wrap(src)
	}
	relayDone := make(chan error, 1)
	go func() {
		_, err := SpliceStreams(downClient, src)
		_ = downClient.(*net.TCPConn).CloseWrite()
		relayDone <- err
	}()
	go func() {
		_, _ = upClient.Write(payload)
		_ = upClient.(*net.TCPConn).CloseWrite()
	}()
	got, err := io.ReadAll(downServer)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-relayDone; err != nil {
		t.Fatal(err)
	}
	return got
}

func TestSpliceStreamsTCPPath(t *testing.T) {
	payload := bytes.Repeat([]byte("s"), 2*spliceBufSize+7)
	got := relayChain(t, payload, nil)
	if !bytes.Equal(got, payload) {
		t.Fatalf("TCP splice path moved %d bytes, want %d", len(got), len(payload))
	}
}

// TestSpliceStreamsFallback wraps the source in the fault injector (so
// it is no longer a *net.TCPConn) and checks the buffered fallback moves
// the same bytes — and that the wrapper's rules still apply, proving the
// fast path never unwrapped it.
func TestSpliceStreamsFallback(t *testing.T) {
	in := faults.New(7)
	in.Set("splice.src", faults.Rule{MaxWriteChunk: 11}) // exercises chunked I/O through the wrapper
	payload := bytes.Repeat([]byte("f"), spliceBufSize+4096)
	got := relayChain(t, payload, func(c net.Conn) net.Conn {
		return in.Conn("splice.src", c)
	})
	if !bytes.Equal(got, payload) {
		t.Fatalf("fallback path moved %d bytes, want %d", len(got), len(payload))
	}
}
