package conntrack

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

var (
	client      = Endpoint{IP: "203.0.113.5", Port: 40001}
	vip         = Endpoint{IP: "198.51.100.1", Port: 80}
	distBackend = Endpoint{IP: "10.0.0.1", Port: 52000}
	backendEP   = Endpoint{IP: "10.0.0.7", Port: 8080}
)

func newTestSplice() *Splice {
	return NewSplice(client, vip, distBackend, backendEP,
		1000,   // client request bytes start here
		50000,  // pre-forked connection's request stream position
		700000, // backend response stream position
		3000,   // client-visible response stream position
	)
}

func TestRewriteRequestDirection(t *testing.T) {
	s := newTestSplice()
	in := Packet{
		Src: client, Dst: vip,
		Seq: 1000, Ack: 3000,
		Flags:      FlagACK | FlagPSH,
		PayloadLen: 120,
	}
	out, err := s.Rewrite(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Src != distBackend || out.Dst != backendEP {
		t.Fatalf("addresses = %s→%s", out.Src, out.Dst)
	}
	if out.Seq != 50000 {
		t.Fatalf("seq = %d, want 50000", out.Seq)
	}
	if out.Ack != 700000 {
		t.Fatalf("ack = %d, want 700000", out.Ack)
	}
	if out.Flags != in.Flags || out.PayloadLen != 120 {
		t.Fatal("flags/payload not preserved")
	}
}

func TestRewriteResponseDirection(t *testing.T) {
	s := newTestSplice()
	in := Packet{
		Src: backendEP, Dst: distBackend,
		Seq: 700000, Ack: 50120,
		Flags:      FlagACK,
		PayloadLen: 512,
	}
	out, err := s.Rewrite(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Src != vip || out.Dst != client {
		t.Fatalf("addresses = %s→%s", out.Src, out.Dst)
	}
	if out.Seq != 3000 {
		t.Fatalf("seq = %d, want 3000", out.Seq)
	}
	if out.Ack != 1120 {
		t.Fatalf("ack = %d, want 1120 (client data start + 120)", out.Ack)
	}
}

func TestRewriteWrongDirection(t *testing.T) {
	s := newTestSplice()
	_, err := s.Rewrite(Packet{Src: vip, Dst: client})
	if !errors.Is(err, ErrWrongDirection) {
		t.Fatalf("err = %v", err)
	}
	_, err = s.Rewrite(Packet{Src: Endpoint{IP: "8.8.8.8", Port: 53}, Dst: vip})
	if !errors.Is(err, ErrWrongDirection) {
		t.Fatalf("err = %v", err)
	}
}

func TestRelayedBytesAndResponseEnd(t *testing.T) {
	s := newTestSplice()
	_, _ = s.Rewrite(Packet{Src: client, Dst: vip, Seq: 1000, Ack: 3000, PayloadLen: 100})
	_, _ = s.Rewrite(Packet{Src: backendEP, Dst: distBackend, Seq: 700000, Ack: 50100, PayloadLen: 400})
	_, _ = s.Rewrite(Packet{Src: backendEP, Dst: distBackend, Seq: 700400, Ack: 50100, PayloadLen: 600})
	toB, toC := s.RelayedBytes()
	if toB != 100 || toC != 1000 {
		t.Fatalf("relayed = %d, %d", toB, toC)
	}
	if s.ResponseEnd() != 4000 {
		t.Fatalf("response end = %d, want 4000", s.ResponseEnd())
	}
}

func TestRebindReusesBackendStream(t *testing.T) {
	s := newTestSplice()
	// First exchange: 100 request bytes, 500 response bytes.
	_, _ = s.Rewrite(Packet{Src: client, Dst: vip, Seq: 1000, Ack: 3000, PayloadLen: 100})
	_, _ = s.Rewrite(Packet{Src: backendEP, Dst: distBackend, Seq: 700000, Ack: 50100, PayloadLen: 500})

	// New client binds to the same pre-forked connection.
	client2 := Endpoint{IP: "203.0.113.9", Port: 51515}
	s.Rebind(client2, 77000, 88000)

	out, err := s.Rewrite(Packet{Src: client2, Dst: vip, Seq: 77000, Ack: 88000, PayloadLen: 50})
	if err != nil {
		t.Fatal(err)
	}
	// The pre-forked connection's stream continues where it left off.
	if out.Seq != 50100 {
		t.Fatalf("seq = %d, want 50100 (continuation of backend stream)", out.Seq)
	}
	if out.Ack != 700500 {
		t.Fatalf("ack = %d, want 700500", out.Ack)
	}
	// The old client no longer matches.
	if _, err := s.Rewrite(Packet{Src: client, Dst: vip}); !errors.Is(err, ErrWrongDirection) {
		t.Fatal("stale client still spliced")
	}
}

func TestSequenceWraparound(t *testing.T) {
	// Bases near the uint32 limit: translation must wrap, not overflow.
	s := NewSplice(client, vip, distBackend, backendEP,
		math.MaxUint32-10, 100, math.MaxUint32-5, 200)
	var base uint32 = math.MaxUint32 - 10
	out, err := s.Rewrite(Packet{
		Src: client, Dst: vip,
		Seq:        base + 20, // 20 bytes into the stream, wrapped
		Ack:        200,
		PayloadLen: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != 120 {
		t.Fatalf("wrapped seq = %d, want 120", out.Seq)
	}
}

// TestPropertySpliceRoundTrip: for any bases and any in-stream packet,
// translating a request packet and mapping its echo back preserves stream
// offsets exactly.
func TestPropertySpliceRoundTrip(t *testing.T) {
	f := func(cStart, bStart, brStart, crStart uint32, offset uint16, payload uint16) bool {
		s := NewSplice(client, vip, distBackend, backendEP, cStart, bStart, brStart, crStart)
		in := Packet{
			Src: client, Dst: vip,
			Seq:        cStart + uint32(offset),
			Ack:        crStart,
			PayloadLen: uint32(payload),
		}
		out, err := s.Rewrite(in)
		if err != nil {
			return false
		}
		// The backend-space offset equals the client-space offset.
		if out.Seq-bStart != uint32(offset) {
			return false
		}
		// The backend acks those bytes; translated back to client space
		// the ack covers exactly the same offset.
		resp := Packet{
			Src: backendEP, Dst: distBackend,
			Seq: brStart,
			Ack: out.Seq + out.PayloadLen,
		}
		back, err := s.Rewrite(resp)
		if err != nil {
			return false
		}
		return back.Ack == in.Seq+in.PayloadLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFlagsHelpers(t *testing.T) {
	f := FlagSYN | FlagACK
	if !f.Has(FlagSYN) || !f.Has(FlagACK) || f.Has(FlagFIN) {
		t.Fatal("flag arithmetic wrong")
	}
	if (Endpoint{IP: "1.2.3.4", Port: 80}).String() != "1.2.3.4:80" {
		t.Fatal("endpoint string wrong")
	}
}
