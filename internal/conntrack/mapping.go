package conntrack

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"webcluster/internal/config"
)

// Errors returned by the mapping table.
var (
	// ErrEntryExists reports a duplicate client key.
	ErrEntryExists = errors.New("conntrack: entry already exists")
	// ErrEntryNotFound reports an unknown client key.
	ErrEntryNotFound = errors.New("conntrack: entry not found")
)

// ClientKey identifies a client connection the way the paper's mapping
// table does: by source IP address and port.
type ClientKey struct {
	IP   string
	Port int
}

// String formats the key as ip:port.
func (k ClientKey) String() string { return fmt.Sprintf("%s:%d", k.IP, k.Port) }

// hash folds the key FNV-1a style for stripe selection. Client ports
// dominate the entropy on a busy distributor (many connections from few
// proxy IPs), so the port is mixed in byte-wise after the address.
func (k ClientKey) hash() uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(k.IP); i++ {
		h ^= uint32(k.IP[i])
		h *= 16777619
	}
	h ^= uint32(k.Port & 0xff)
	h *= 16777619
	h ^= uint32(k.Port >> 8 & 0xff)
	h *= 16777619
	return h
}

// Entry is one mapping-table row: the tracked connection's state, TCP
// bookkeeping, and — once bound — the chosen back end.
type Entry struct {
	Key   ClientKey
	State State
	// Seq and Ack capture the TCP state the paper records at SYN time so
	// a backup distributor can resume relaying (sequence-number deltas).
	Seq uint32
	Ack uint32
	// Backend is the node this connection is currently bound to; empty
	// until a request has been routed.
	Backend config.NodeID
	// Requests counts HTTP requests served on this connection
	// (>1 under keep-alive).
	Requests int
	// Created is when the entry was installed.
	Created time.Time
}

// mappingStripe is one lock domain of the table. Connections hash to a
// stripe by client key, so a connection's Install/Advance/Bind traffic
// never contends with connections on other stripes.
type mappingStripe struct {
	mu      sync.RWMutex
	entries map[ClientKey]*Entry

	installed int64
	deleted   int64
}

// MappingTable tracks all live client connections, partitioned into
// power-of-two lock stripes keyed by client address. The zero value is
// not usable; construct with NewMappingTable (one stripe) or
// NewMappingTableStriped.
type MappingTable struct {
	stripes []*mappingStripe
	mask    uint32
	now     func() time.Time
}

// NewMappingTable returns an empty single-stripe table using the wall
// clock.
func NewMappingTable() *MappingTable {
	return NewMappingTableAt(time.Now)
}

// NewMappingTableAt returns an empty single-stripe table reading time
// from now.
func NewMappingTableAt(now func() time.Time) *MappingTable {
	return newMappingTable(1, now)
}

// NewMappingTableStriped returns an empty table with at least n lock
// stripes (rounded up to a power of two), for sharded front ends where a
// single table mutex would serialize every request.
func NewMappingTableStriped(n int) *MappingTable {
	return newMappingTable(n, time.Now)
}

func newMappingTable(n int, now func() time.Time) *MappingTable {
	size := 1
	for size < n {
		size <<= 1
	}
	t := &MappingTable{
		stripes: make([]*mappingStripe, size),
		mask:    uint32(size - 1),
		now:     now,
	}
	for i := range t.stripes {
		t.stripes[i] = &mappingStripe{entries: make(map[ClientKey]*Entry)}
	}
	return t
}

func (t *MappingTable) stripe(key ClientKey) *mappingStripe {
	return t.stripes[key.hash()&t.mask]
}

// Install creates the entry for a new connection in SYN_RECEIVED state,
// recording the client's initial sequence number as the paper's distributor
// does on SYN receipt.
func (t *MappingTable) Install(key ClientKey, seq, ack uint32) (*Entry, error) {
	s := t.stripe(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		return nil, fmt.Errorf("%w: %s", ErrEntryExists, key)
	}
	e := &Entry{
		Key:     key,
		State:   StateSynReceived,
		Seq:     seq,
		Ack:     ack,
		Created: t.now(),
	}
	s.entries[key] = e
	s.installed++
	return e, nil
}

// Advance applies ev to the entry for key, deleting it when it reaches
// CLOSED. It returns the post-event state.
func (t *MappingTable) Advance(key ClientKey, ev Event) (State, error) {
	s := t.stripe(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrEntryNotFound, key)
	}
	next, err := Next(e.State, ev)
	if err != nil {
		return e.State, err
	}
	e.State = next
	if ev == EventRequestBound {
		e.Requests++
	}
	if next == StateClosed {
		delete(s.entries, key)
		s.deleted++
	}
	return next, nil
}

// Bind records the back end chosen for key's current request.
func (t *MappingTable) Bind(key ClientKey, backend config.NodeID) error {
	s := t.stripe(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrEntryNotFound, key)
	}
	e.Backend = backend
	return nil
}

// Get returns a copy of the entry for key.
func (t *MappingTable) Get(key ClientKey) (Entry, bool) {
	s := t.stripe(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[key]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Len returns the number of live entries.
func (t *MappingTable) Len() int {
	n := 0
	for _, s := range t.stripes {
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

// Snapshot returns copies of all live entries (state-replication input for
// the backup distributor). Stripes are snapshotted one at a time; each
// stripe is internally consistent.
func (t *MappingTable) Snapshot() []Entry {
	out := make([]Entry, 0, t.Len())
	for _, s := range t.stripes {
		s.mu.RLock()
		for _, e := range s.entries {
			out = append(out, *e)
		}
		s.mu.RUnlock()
	}
	return out
}

// Restore installs entries wholesale (backup takeover path). Existing
// entries with the same key are overwritten.
func (t *MappingTable) Restore(entries []Entry) {
	for _, e := range entries {
		s := t.stripe(e.Key)
		s.mu.Lock()
		copied := e
		s.entries[e.Key] = &copied
		s.mu.Unlock()
	}
}

// Counts reports lifetime install/delete totals and the live count.
func (t *MappingTable) Counts() (installed, deleted int64, live int) {
	for _, s := range t.stripes {
		s.mu.RLock()
		installed += s.installed
		deleted += s.deleted
		live += len(s.entries)
		s.mu.RUnlock()
	}
	return installed, deleted, live
}
