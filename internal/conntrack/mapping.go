package conntrack

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"webcluster/internal/config"
)

// Errors returned by the mapping table.
var (
	// ErrEntryExists reports a duplicate client key.
	ErrEntryExists = errors.New("conntrack: entry already exists")
	// ErrEntryNotFound reports an unknown client key.
	ErrEntryNotFound = errors.New("conntrack: entry not found")
)

// ClientKey identifies a client connection the way the paper's mapping
// table does: by source IP address and port.
type ClientKey struct {
	IP   string
	Port int
}

// String formats the key as ip:port.
func (k ClientKey) String() string { return fmt.Sprintf("%s:%d", k.IP, k.Port) }

// Entry is one mapping-table row: the tracked connection's state, TCP
// bookkeeping, and — once bound — the chosen back end.
type Entry struct {
	Key   ClientKey
	State State
	// Seq and Ack capture the TCP state the paper records at SYN time so
	// a backup distributor can resume relaying (sequence-number deltas).
	Seq uint32
	Ack uint32
	// Backend is the node this connection is currently bound to; empty
	// until a request has been routed.
	Backend config.NodeID
	// Requests counts HTTP requests served on this connection
	// (>1 under keep-alive).
	Requests int
	// Created is when the entry was installed.
	Created time.Time
}

// MappingTable tracks all live client connections. The zero value is not
// usable; construct with NewMappingTable.
type MappingTable struct {
	mu      sync.RWMutex
	entries map[ClientKey]*Entry
	now     func() time.Time

	installed int64
	deleted   int64
}

// NewMappingTable returns an empty table using the wall clock.
func NewMappingTable() *MappingTable {
	return NewMappingTableAt(time.Now)
}

// NewMappingTableAt returns an empty table reading time from now.
func NewMappingTableAt(now func() time.Time) *MappingTable {
	return &MappingTable{entries: make(map[ClientKey]*Entry), now: now}
}

// Install creates the entry for a new connection in SYN_RECEIVED state,
// recording the client's initial sequence number as the paper's distributor
// does on SYN receipt.
func (t *MappingTable) Install(key ClientKey, seq, ack uint32) (*Entry, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.entries[key]; ok {
		return nil, fmt.Errorf("%w: %s", ErrEntryExists, key)
	}
	e := &Entry{
		Key:     key,
		State:   StateSynReceived,
		Seq:     seq,
		Ack:     ack,
		Created: t.now(),
	}
	t.entries[key] = e
	t.installed++
	return e, nil
}

// Advance applies ev to the entry for key, deleting it when it reaches
// CLOSED. It returns the post-event state.
func (t *MappingTable) Advance(key ClientKey, ev Event) (State, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[key]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrEntryNotFound, key)
	}
	next, err := Next(e.State, ev)
	if err != nil {
		return e.State, err
	}
	e.State = next
	if ev == EventRequestBound {
		e.Requests++
	}
	if next == StateClosed {
		delete(t.entries, key)
		t.deleted++
	}
	return next, nil
}

// Bind records the back end chosen for key's current request.
func (t *MappingTable) Bind(key ClientKey, backend config.NodeID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[key]
	if !ok {
		return fmt.Errorf("%w: %s", ErrEntryNotFound, key)
	}
	e.Backend = backend
	return nil
}

// Get returns a copy of the entry for key.
func (t *MappingTable) Get(key ClientKey) (Entry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.entries[key]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// Len returns the number of live entries.
func (t *MappingTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// Snapshot returns copies of all live entries (state-replication input for
// the backup distributor).
func (t *MappingTable) Snapshot() []Entry {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Entry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, *e)
	}
	return out
}

// Restore installs entries wholesale (backup takeover path). Existing
// entries with the same key are overwritten.
func (t *MappingTable) Restore(entries []Entry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range entries {
		copied := e
		t.entries[e.Key] = &copied
	}
}

// Counts reports lifetime install/delete totals and the live count.
func (t *MappingTable) Counts() (installed, deleted int64, live int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.installed, t.deleted, len(t.entries)
}
