package conntrack

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"webcluster/internal/config"
	"webcluster/internal/faults"
	"webcluster/internal/httpx"
)

// ErrPoolClosed reports use of a closed pool.
var ErrPoolClosed = errors.New("conntrack: pool closed")

// Dialer opens a new connection to a back-end node.
type Dialer func(node config.NodeID) (net.Conn, error)

// PooledConn is one pre-forked persistent connection to a back end. It
// carries a buffered reader so response parsing never loses bytes across
// requests on the same connection. The reader comes from the shared httpx
// pool and is returned to it when the connection is discarded, so a churn
// of back-end connections does not churn 4 KiB read buffers.
type PooledConn struct {
	Node   config.NodeID
	Conn   net.Conn
	Reader *bufio.Reader
	// Uses counts requests relayed over this connection.
	Uses int
	// shard is the idle stripe this connection is homed to; Release
	// routes it back there so a front-end shard keeps reusing the same
	// back-end connections (cache-warm sockets, no cross-CPU bouncing).
	shard int
}

// nodePool is the per-node idle state plus dial accounting. Idle
// connections are striped by front-end shard; all stripes share one
// mutex and condition (dial capacity is a per-node property), so shard
// affinity never introduces a second lock order.
type nodePool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	idle   [][]*PooledConn // indexed by shard
	total  int             // idle + checked out
	max    int
	closed bool
}

// Pool manages pre-forked persistent connections to every back-end node
// (§2.2: "the distributor pre-forks a number of persistent connections to
// the backend nodes"). Acquire prefers an idle pre-forked connection,
// dials extra connections on demand up to a per-node maximum, and blocks
// when the node is saturated. The zero value is not usable; construct with
// NewPool.
type Pool struct {
	dial     Dialer
	prefork  int
	max      int
	shards   int
	faults   *faults.Injector
	mu       sync.Mutex
	nodes    map[config.NodeID]*nodePool
	closed   bool
	overflow int64 // dials beyond the pre-forked set
}

// NewPool returns a pool that pre-forks prefork connections per node and
// allows up to max concurrent connections per node (max < prefork is
// raised to prefork).
func NewPool(dial Dialer, prefork, max int) *Pool {
	return NewPoolSharded(dial, prefork, max, 1)
}

// NewPoolSharded is NewPool with the idle lists striped across shards
// (values < 1 mean one stripe). AcquireShard(node, s) prefers stripe s
// and Release homes connections back to the stripe they were acquired
// for, so each front-end shard converges on a private set of back-end
// sockets; stripes steal from each other before dialing, so striping
// never increases the connection count.
func NewPoolSharded(dial Dialer, prefork, max, shards int) *Pool {
	if prefork < 0 {
		prefork = 0
	}
	if max < prefork {
		max = prefork
	}
	if max == 0 {
		max = 1
	}
	if shards < 1 {
		shards = 1
	}
	return &Pool{
		dial:    dial,
		prefork: prefork,
		max:     max,
		shards:  shards,
		nodes:   make(map[config.NodeID]*nodePool),
	}
}

// SetFaults attaches a fault injector consulted at the dial and checkout
// paths (points "pool.dial/<node>", "pool.conn/<node>" and
// "pool.checkout/<node>"). Call before traffic; nil (the default) injects
// nothing.
func (p *Pool) SetFaults(in *faults.Injector) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults = in
}

// injector returns the attached injector (possibly nil).
func (p *Pool) injector() *faults.Injector {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults
}

// nodeFor returns (creating if needed) the per-node pool.
func (p *Pool) nodeFor(node config.NodeID) (*nodePool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	np, ok := p.nodes[node]
	if !ok {
		np = &nodePool{max: p.max, idle: make([][]*PooledConn, p.shards)}
		np.cond = sync.NewCond(&np.mu)
		p.nodes[node] = np
	}
	return np, nil
}

// Prefork eagerly establishes the configured number of persistent
// connections to each node. Failures are returned joined, after
// successfully dialed connections have been retained.
func (p *Pool) Prefork(nodes []config.NodeID) error {
	var errs []error
	for _, node := range nodes {
		np, err := p.nodeFor(node)
		if err != nil {
			return err
		}
		for i := 0; i < p.prefork; i++ {
			pc, err := p.dialNode(node)
			if err != nil {
				errs = append(errs, fmt.Errorf("prefork %s: %w", node, err))
				break
			}
			pc.shard = i % p.shards
			np.mu.Lock()
			np.idle[pc.shard] = append(np.idle[pc.shard], pc)
			np.total++
			np.mu.Unlock()
		}
	}
	return errors.Join(errs...)
}

// dialNode opens one new connection to node.
func (p *Pool) dialNode(node config.NodeID) (*PooledConn, error) {
	in := p.injector()
	if err := in.Fail("pool.dial/" + string(node)); err != nil {
		return nil, fmt.Errorf("dialing %s: %w", node, err)
	}
	conn, err := p.dial(node)
	if err != nil {
		return nil, fmt.Errorf("dialing %s: %w", node, err)
	}
	conn = in.Conn("pool.conn/"+string(node), conn)
	return &PooledConn{Node: node, Conn: conn, Reader: httpx.AcquireReader(conn)}, nil
}

// releaseReader returns pc's buffered reader to the shared pool. Only safe
// once pc's connection is closed (any buffered bytes are dead).
func releaseReader(pc *PooledConn) {
	if pc.Reader != nil {
		httpx.ReleaseReader(pc.Reader)
		pc.Reader = nil
	}
}

// Acquire checks out a connection to node, preferring an idle pre-forked
// one, dialing a fresh one when under the per-node maximum, and otherwise
// blocking until a connection is released.
func (p *Pool) Acquire(node config.NodeID) (*PooledConn, error) {
	return p.AcquireShard(node, 0)
}

// AcquireShard is Acquire with stripe affinity: it prefers the caller
// shard's idle stripe, steals from a sibling stripe (re-homing the
// connection to shard) before dialing, and blocks only when the node is
// at its connection maximum with nothing idle anywhere.
func (p *Pool) AcquireShard(node config.NodeID, shard int) (*PooledConn, error) {
	if err := p.injector().Fail("pool.checkout/" + string(node)); err != nil {
		return nil, fmt.Errorf("checkout %s: %w", node, err)
	}
	np, err := p.nodeFor(node)
	if err != nil {
		return nil, err
	}
	if shard < 0 || shard >= p.shards {
		shard = 0
	}
	np.mu.Lock()
	for {
		if np.closed {
			np.mu.Unlock()
			return nil, ErrPoolClosed
		}
		for i := 0; i < p.shards; i++ {
			s := shard + i
			if s >= p.shards {
				s -= p.shards
			}
			if n := len(np.idle[s]); n > 0 {
				pc := np.idle[s][n-1]
				np.idle[s][n-1] = nil
				np.idle[s] = np.idle[s][:n-1]
				pc.shard = shard
				np.mu.Unlock()
				return pc, nil
			}
		}
		if np.total < np.max {
			np.total++
			np.mu.Unlock()
			pc, err := p.dialNode(node)
			if err != nil {
				np.mu.Lock()
				np.total--
				np.cond.Signal()
				np.mu.Unlock()
				return nil, err
			}
			pc.shard = shard
			p.mu.Lock()
			p.overflow++
			p.mu.Unlock()
			return pc, nil
		}
		np.cond.Wait()
	}
}

// Release returns a healthy connection to its home stripe's idle list.
func (p *Pool) Release(pc *PooledConn) {
	np, err := p.nodeFor(pc.Node)
	if err != nil {
		_ = pc.Conn.Close()
		releaseReader(pc)
		return
	}
	np.mu.Lock()
	defer np.mu.Unlock()
	if np.closed {
		_ = pc.Conn.Close()
		releaseReader(pc)
		return
	}
	pc.Uses++
	np.idle[pc.shard] = append(np.idle[pc.shard], pc)
	np.cond.Signal()
}

// Discard drops a broken connection, freeing its slot.
func (p *Pool) Discard(pc *PooledConn) {
	_ = pc.Conn.Close()
	releaseReader(pc)
	np, err := p.nodeFor(pc.Node)
	if err != nil {
		return
	}
	np.mu.Lock()
	defer np.mu.Unlock()
	np.total--
	np.cond.Signal()
}

// IdleCount returns the number of idle connections to node.
func (p *Pool) IdleCount(node config.NodeID) int {
	p.mu.Lock()
	np, ok := p.nodes[node]
	p.mu.Unlock()
	if !ok {
		return 0
	}
	np.mu.Lock()
	defer np.mu.Unlock()
	n := 0
	for _, s := range np.idle {
		n += len(s)
	}
	return n
}

// OverflowDials returns how many connections were dialed beyond the
// pre-forked set (a sizing signal for the prefork parameter).
func (p *Pool) OverflowDials() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.overflow
}

// Close closes every idle connection and fails all future operations.
// Checked-out connections are closed by their holders via Discard.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	nodes := make([]*nodePool, 0, len(p.nodes))
	for _, np := range p.nodes {
		nodes = append(nodes, np)
	}
	p.mu.Unlock()

	var errs []error
	for _, np := range nodes {
		np.mu.Lock()
		np.closed = true
		for s := range np.idle {
			for _, pc := range np.idle[s] {
				if err := pc.Conn.Close(); err != nil {
					errs = append(errs, err)
				}
				releaseReader(pc)
			}
			np.idle[s] = nil
		}
		np.cond.Broadcast()
		np.mu.Unlock()
	}
	return errors.Join(errs...)
}
