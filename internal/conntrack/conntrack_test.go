package conntrack

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/testutil"
)

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		StateSynReceived: "SYN_RECEIVED",
		StateEstablished: "ESTABLISHED",
		StateBound:       "BOUND",
		StateFinReceived: "FIN_RECEIVED",
		StateHalfClosed:  "HALF_CLOSED",
		StateClosed:      "CLOSED",
	}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), str)
		}
	}
}

func TestHappyPathLifecycle(t *testing.T) {
	// The §2.2 teardown: SYN → ESTABLISHED → BOUND → ... → CLOSED.
	steps := []struct {
		ev   Event
		want State
	}{
		{EventHandshakeDone, StateEstablished},
		{EventRequestBound, StateBound},
		{EventRequestDone, StateEstablished},
		{EventRequestBound, StateBound}, // keep-alive: second request
		{EventRequestDone, StateEstablished},
		{EventClientFin, StateFinReceived},
		{EventFinAcked, StateHalfClosed},
		{EventLastAck, StateClosed},
	}
	s := StateSynReceived
	for i, step := range steps {
		next, err := Next(s, step.ev)
		if err != nil {
			t.Fatalf("step %d (%v in %v): %v", i, step.ev, s, err)
		}
		if next != step.want {
			t.Fatalf("step %d: %v, want %v", i, next, step.want)
		}
		s = next
	}
}

func TestFinWhileBound(t *testing.T) {
	s, err := Next(StateBound, EventClientFin)
	if err != nil || s != StateFinReceived {
		t.Fatalf("FIN in BOUND → %v, %v", s, err)
	}
}

func TestResetFromEveryLiveState(t *testing.T) {
	for _, s := range []State{StateSynReceived, StateEstablished, StateBound, StateFinReceived, StateHalfClosed} {
		next, err := Next(s, EventReset)
		if err != nil || next != StateClosed {
			t.Errorf("reset from %v → %v, %v", s, next, err)
		}
	}
	if _, err := Next(StateClosed, EventReset); err == nil {
		t.Error("reset from CLOSED accepted")
	}
}

// TestPropertyInvalidTransitionsRejected: exhaustively check that every
// (state, event) pair either transitions to a valid state or returns
// ErrBadTransition with the pair recorded.
func TestExhaustiveTransitionTable(t *testing.T) {
	states := []State{StateSynReceived, StateEstablished, StateBound, StateFinReceived, StateHalfClosed, StateClosed}
	events := []Event{EventHandshakeDone, EventRequestBound, EventRequestDone, EventClientFin, EventFinAcked, EventLastAck, EventReset}
	valid := 0
	for _, s := range states {
		for _, ev := range events {
			next, err := Next(s, ev)
			if err != nil {
				var bad *ErrBadTransition
				if !errors.As(err, &bad) {
					t.Fatalf("error type %T", err)
				}
				if bad.From != s || bad.Event != ev {
					t.Fatalf("error fields %+v for (%v,%v)", bad, s, ev)
				}
				if next != s {
					t.Fatalf("failed transition moved state %v → %v", s, next)
				}
				continue
			}
			valid++
			if next < StateSynReceived || next > StateClosed {
				t.Fatalf("transition to invalid state %d", next)
			}
		}
	}
	// Happy-path transitions plus FIN-from-BOUND plus 5 resets.
	if valid != 12 {
		t.Fatalf("valid transition count = %d, want 12", valid)
	}
}

func TestMappingInstallAdvance(t *testing.T) {
	mt := NewMappingTable()
	key := ClientKey{IP: "10.0.0.1", Port: 1234}
	e, err := mt.Install(key, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if e.State != StateSynReceived || e.Seq != 100 || e.Ack != 200 {
		t.Fatalf("entry = %+v", e)
	}
	if _, err := mt.Install(key, 1, 2); !errors.Is(err, ErrEntryExists) {
		t.Fatalf("duplicate install: %v", err)
	}
	if mt.Len() != 1 {
		t.Fatalf("len = %d", mt.Len())
	}
	if _, err := mt.Advance(key, EventHandshakeDone); err != nil {
		t.Fatal(err)
	}
	got, ok := mt.Get(key)
	if !ok || got.State != StateEstablished {
		t.Fatalf("entry after advance = %+v %v", got, ok)
	}
}

func TestMappingCloseDeletesEntry(t *testing.T) {
	mt := NewMappingTable()
	key := ClientKey{IP: "1.2.3.4", Port: 80}
	_, _ = mt.Install(key, 0, 0)
	for _, ev := range []Event{EventHandshakeDone, EventClientFin, EventFinAcked, EventLastAck} {
		if _, err := mt.Advance(key, ev); err != nil {
			t.Fatal(err)
		}
	}
	if mt.Len() != 0 {
		t.Fatal("closed entry not deleted")
	}
	installed, deleted, live := mt.Counts()
	if installed != 1 || deleted != 1 || live != 0 {
		t.Fatalf("counts = %d %d %d", installed, deleted, live)
	}
	if _, err := mt.Advance(key, EventReset); !errors.Is(err, ErrEntryNotFound) {
		t.Fatalf("advance after delete: %v", err)
	}
}

func TestMappingBindAndRequests(t *testing.T) {
	mt := NewMappingTable()
	key := ClientKey{IP: "9.9.9.9", Port: 999}
	_, _ = mt.Install(key, 0, 0)
	_, _ = mt.Advance(key, EventHandshakeDone)
	if err := mt.Bind(key, config.NodeID("n7")); err != nil {
		t.Fatal(err)
	}
	_, _ = mt.Advance(key, EventRequestBound)
	_, _ = mt.Advance(key, EventRequestDone)
	_, _ = mt.Advance(key, EventRequestBound)
	e, _ := mt.Get(key)
	if e.Backend != "n7" || e.Requests != 2 {
		t.Fatalf("entry = %+v", e)
	}
	if err := mt.Bind(ClientKey{IP: "x"}, "n1"); !errors.Is(err, ErrEntryNotFound) {
		t.Fatalf("bind missing: %v", err)
	}
}

func TestMappingBadTransitionKeepsEntry(t *testing.T) {
	mt := NewMappingTable()
	key := ClientKey{IP: "1.1.1.1", Port: 1}
	_, _ = mt.Install(key, 0, 0)
	if _, err := mt.Advance(key, EventLastAck); err == nil {
		t.Fatal("invalid event accepted")
	}
	if mt.Len() != 1 {
		t.Fatal("entry dropped on invalid event")
	}
}

func TestMappingSnapshotRestore(t *testing.T) {
	mt := NewMappingTable()
	for i := 0; i < 5; i++ {
		key := ClientKey{IP: "10.0.0.1", Port: 1000 + i}
		_, _ = mt.Install(key, uint32(i), 0)
		_, _ = mt.Advance(key, EventHandshakeDone)
	}
	snap := mt.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot size = %d", len(snap))
	}
	restored := NewMappingTable()
	restored.Restore(snap)
	if restored.Len() != 5 {
		t.Fatalf("restored len = %d", restored.Len())
	}
	for _, e := range snap {
		got, ok := restored.Get(e.Key)
		if !ok || got.State != e.State || got.Seq != e.Seq {
			t.Fatalf("restored entry %+v vs %+v", got, e)
		}
	}
}

func TestClientKeyString(t *testing.T) {
	k := ClientKey{IP: "1.2.3.4", Port: 80}
	if k.String() != "1.2.3.4:80" {
		t.Fatalf("String = %q", k.String())
	}
}

// TestPropertyMappingNeverNegative: random event sequences never corrupt
// the live count (len == installed - deleted).
func TestPropertyMappingAccounting(t *testing.T) {
	f := func(ops []uint8) bool {
		mt := NewMappingTable()
		events := []Event{EventHandshakeDone, EventRequestBound, EventRequestDone,
			EventClientFin, EventFinAcked, EventLastAck, EventReset}
		for i, op := range ops {
			key := ClientKey{IP: "k", Port: int(op % 8)}
			if op%5 == 0 {
				_, _ = mt.Install(key, uint32(i), 0)
			} else {
				_, _ = mt.Advance(key, events[int(op)%len(events)])
			}
			installed, deleted, live := mt.Counts()
			if int64(live) != installed-deleted || live < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// poolServer accepts and holds connections for pool tests.
func poolServer(t *testing.T) (addr string, accepted *atomic.Int32, cleanup func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	count := new(atomic.Int32)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
			count.Add(1)
		}
	}()
	return l.Addr().String(), count, func() {
		_ = l.Close()
		mu.Lock()
		for _, c := range conns {
			_ = c.Close()
		}
		mu.Unlock()
		wg.Wait()
	}
}

func testDialer(addr string) Dialer {
	return func(config.NodeID) (net.Conn, error) {
		return net.Dial("tcp", addr)
	}
}

func TestPoolPrefork(t *testing.T) {
	addr, accepted, cleanup := poolServer(t)
	defer cleanup()
	p := NewPool(testDialer(addr), 3, 8)
	defer func() { _ = p.Close() }()
	if err := p.Prefork([]config.NodeID{"n1", "n2"}); err != nil {
		t.Fatal(err)
	}
	if p.IdleCount("n1") != 3 || p.IdleCount("n2") != 3 {
		t.Fatalf("idle counts = %d, %d", p.IdleCount("n1"), p.IdleCount("n2"))
	}
	testutil.Eventually(t, time.Second, func() bool {
		return accepted.Load() >= 6
	}, "server accepted %d connections, want 6", accepted.Load())
	if got := accepted.Load(); got != 6 {
		t.Fatalf("server accepted %d connections, want 6", got)
	}
}

func TestPoolAcquireReusesIdle(t *testing.T) {
	addr, accepted, cleanup := poolServer(t)
	defer cleanup()
	p := NewPool(testDialer(addr), 2, 4)
	defer func() { _ = p.Close() }()
	if err := p.Prefork([]config.NodeID{"n1"}); err != nil {
		t.Fatal(err)
	}
	pc, err := p.Acquire("n1")
	if err != nil {
		t.Fatal(err)
	}
	p.Release(pc)
	pc2, err := p.Acquire("n1")
	if err != nil {
		t.Fatal(err)
	}
	if pc2 != pc {
		t.Fatal("idle connection not reused (LIFO expected)")
	}
	if pc2.Uses != 1 {
		t.Fatalf("uses = %d", pc2.Uses)
	}
	p.Release(pc2)
	testutil.Eventually(t, time.Second, func() bool {
		return accepted.Load() >= 2
	}, "server never saw the preforked pair")
	if got := accepted.Load(); got != 2 {
		t.Fatalf("accepted = %d, want only the preforked pair", got)
	}
	if p.OverflowDials() != 0 {
		t.Fatal("overflow dial recorded for idle reuse")
	}
}

func TestPoolOverflowDial(t *testing.T) {
	addr, _, cleanup := poolServer(t)
	defer cleanup()
	p := NewPool(testDialer(addr), 1, 3)
	defer func() { _ = p.Close() }()
	if err := p.Prefork([]config.NodeID{"n1"}); err != nil {
		t.Fatal(err)
	}
	a, _ := p.Acquire("n1")
	b, err := p.Acquire("n1") // beyond prefork, under max
	if err != nil {
		t.Fatal(err)
	}
	if p.OverflowDials() != 1 {
		t.Fatalf("overflow = %d", p.OverflowDials())
	}
	p.Release(a)
	p.Release(b)
}

func TestPoolBlocksAtMax(t *testing.T) {
	addr, _, cleanup := poolServer(t)
	defer cleanup()
	p := NewPool(testDialer(addr), 0, 1)
	defer func() { _ = p.Close() }()
	a, err := p.Acquire("n1")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *PooledConn)
	go func() {
		pc, err := p.Acquire("n1")
		if err != nil {
			close(got)
			return
		}
		got <- pc
	}()
	select {
	case <-got:
		t.Fatal("Acquire did not block at max")
	case <-time.After(50 * time.Millisecond):
	}
	p.Release(a)
	select {
	case pc := <-got:
		if pc == nil {
			t.Fatal("blocked Acquire failed")
		}
		p.Release(pc)
	case <-time.After(time.Second):
		t.Fatal("blocked Acquire never woke")
	}
}

func TestPoolDiscardFreesSlot(t *testing.T) {
	addr, _, cleanup := poolServer(t)
	defer cleanup()
	p := NewPool(testDialer(addr), 0, 1)
	defer func() { _ = p.Close() }()
	a, _ := p.Acquire("n1")
	p.Discard(a)
	b, err := p.Acquire("n1")
	if err != nil {
		t.Fatal(err)
	}
	if b == a {
		t.Fatal("discarded connection returned")
	}
	p.Release(b)
}

func TestPoolDialFailure(t *testing.T) {
	p := NewPool(func(config.NodeID) (net.Conn, error) {
		return nil, errors.New("refused")
	}, 0, 2)
	defer func() { _ = p.Close() }()
	if _, err := p.Acquire("n1"); err == nil {
		t.Fatal("acquire with failing dialer succeeded")
	}
	// The failed dial must release its slot: the next attempt still
	// tries (and fails) rather than blocking forever.
	errCh := make(chan error, 1)
	go func() {
		_, err := p.Acquire("n1")
		errCh <- err
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("second acquire succeeded")
		}
	case <-time.After(time.Second):
		t.Fatal("slot leaked by failed dial")
	}
}

func TestPoolCloseUnblocksWaiters(t *testing.T) {
	addr, _, cleanup := poolServer(t)
	defer cleanup()
	p := NewPool(testDialer(addr), 0, 1)
	a, _ := p.Acquire("n1")
	errCh := make(chan error, 1)
	go func() {
		_, err := p.Acquire("n1")
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_ = p.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("waiter error = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock waiter")
	}
	_ = a.Conn.Close()
}

func TestPoolUseAfterClose(t *testing.T) {
	addr, _, cleanup := poolServer(t)
	defer cleanup()
	p := NewPool(testDialer(addr), 0, 2)
	_ = p.Close()
	if _, err := p.Acquire("n1"); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("acquire after close: %v", err)
	}
	if err := p.Prefork([]config.NodeID{"n1"}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("prefork after close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestPoolConcurrentAcquireRelease(t *testing.T) {
	addr, _, cleanup := poolServer(t)
	defer cleanup()
	p := NewPool(testDialer(addr), 2, 4)
	defer func() { _ = p.Close() }()
	if err := p.Prefork([]config.NodeID{"n1"}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				pc, err := p.Acquire("n1")
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				p.Release(pc)
			}
		}()
	}
	wg.Wait()
}

func TestEventStrings(t *testing.T) {
	for _, ev := range []Event{EventHandshakeDone, EventRequestBound, EventRequestDone,
		EventClientFin, EventFinAcked, EventLastAck, EventReset} {
		if s := ev.String(); s == "" || s == fmt.Sprintf("Event(%d)", int(ev)) {
			t.Errorf("event %d has no name", ev)
		}
	}
}
