package conntrack

import (
	"io"
	"net"
	"sync"
)

// spliceBufSize sizes the fallback copy buffers for relays that cannot use
// the kernel fast path.
const spliceBufSize = 256 << 10

// spliceBufs pools fallback copy buffers so a non-TCP relay (fault
// wrappers, tests) allocates nothing per connection.
var spliceBufs = sync.Pool{New: func() any {
	b := make([]byte, spliceBufSize)
	return &b
}}

// CanSplice reports whether relaying src into dst hits the kernel
// zero-copy path: both ends must be real *net.TCPConn values. Wrapped
// connections (fault injection, TLS, test doubles) intentionally fail
// this check — unwrapping them would move bytes the wrapper never sees
// and silently bypass injected faults.
func CanSplice(dst io.Writer, src io.Reader) bool {
	_, dok := dst.(*net.TCPConn)
	_, sok := src.(*net.TCPConn)
	return dok && sok
}

// SpliceStreams relays src into dst until EOF or error, returning the
// bytes moved. On a *net.TCPConn pair it uses TCPConn.ReadFrom, which the
// runtime lowers to splice(2) (or sendfile) so the payload never crosses
// into user space. Every other pairing takes a pooled-buffer copy so
// fault-injection wrappers keep observing (and perturbing) the stream.
func SpliceStreams(dst io.Writer, src io.Reader) (int64, error) {
	if tdst, ok := dst.(*net.TCPConn); ok {
		if tsrc, ok := src.(*net.TCPConn); ok {
			return tdst.ReadFrom(tsrc)
		}
	}
	bufp := spliceBufs.Get().(*[]byte)
	n, err := io.CopyBuffer(struct{ io.Writer }{dst}, struct{ io.Reader }{src}, *bufp)
	spliceBufs.Put(bufp)
	return n, err
}
