// Package conntrack implements the distributor's per-connection state: the
// mapping table indexed by client address that binds each user connection
// to a pre-forked back-end connection, the TCP teardown state machine
// described in §2.2 (FIN_RECEIVED → HALF_CLOSED → CLOSED), and the pool of
// pre-forked persistent connections to back-end nodes.
package conntrack

import "fmt"

// State is the lifecycle state of one tracked client connection. The
// distributor in the paper records TCP handshake/teardown progress in the
// mapping table entry so it can relay packets statelessly; this user-space
// reproduction keeps the same machine at connection-event granularity.
type State int

// Connection states, in lifecycle order.
const (
	// StateSynReceived: client SYN seen, entry created, handshake not
	// yet complete.
	StateSynReceived State = iota + 1
	// StateEstablished: three-way handshake completed; requests flow.
	StateEstablished
	// StateBound: an HTTP request has been parsed and the connection is
	// bound to a pre-forked back-end connection.
	StateBound
	// StateFinReceived: client FIN seen; distributor is draining the
	// final response.
	StateFinReceived
	// StateHalfClosed: distributor ACKed the FIN; awaiting the last data
	// ACK from the client.
	StateHalfClosed
	// StateClosed: teardown complete; entry may be deleted and the
	// pre-forked connection released.
	StateClosed
)

// String names the state using the paper's vocabulary.
func (s State) String() string {
	switch s {
	case StateSynReceived:
		return "SYN_RECEIVED"
	case StateEstablished:
		return "ESTABLISHED"
	case StateBound:
		return "BOUND"
	case StateFinReceived:
		return "FIN_RECEIVED"
	case StateHalfClosed:
		return "HALF_CLOSED"
	case StateClosed:
		return "CLOSED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Event is a connection-level occurrence that drives state transitions.
type Event int

// Events.
const (
	// EventHandshakeDone: three-way handshake completed.
	EventHandshakeDone Event = iota + 1
	// EventRequestBound: request parsed and bound to a back-end
	// connection.
	EventRequestBound
	// EventRequestDone: the response has been fully relayed and, on a
	// keep-alive connection, the binding released.
	EventRequestDone
	// EventClientFin: the client signalled it will send no more
	// requests (FIN / read EOF).
	EventClientFin
	// EventFinAcked: distributor acknowledged the FIN.
	EventFinAcked
	// EventLastAck: the final data packet was acknowledged.
	EventLastAck
	// EventReset: the connection aborted (RST / I/O error).
	EventReset
)

// String names the event.
func (e Event) String() string {
	switch e {
	case EventHandshakeDone:
		return "HANDSHAKE_DONE"
	case EventRequestBound:
		return "REQUEST_BOUND"
	case EventRequestDone:
		return "REQUEST_DONE"
	case EventClientFin:
		return "CLIENT_FIN"
	case EventFinAcked:
		return "FIN_ACKED"
	case EventLastAck:
		return "LAST_ACK"
	case EventReset:
		return "RESET"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// ErrBadTransition reports an event that is invalid in the current state.
type ErrBadTransition struct {
	From  State
	Event Event
}

// Error implements error.
func (e *ErrBadTransition) Error() string {
	return fmt.Sprintf("conntrack: event %s invalid in state %s", e.Event, e.From)
}

// Next returns the state after ev occurs in s. EventReset is valid in every
// non-closed state and jumps straight to CLOSED.
func Next(s State, ev Event) (State, error) {
	if ev == EventReset {
		if s == StateClosed {
			return s, &ErrBadTransition{From: s, Event: ev}
		}
		return StateClosed, nil
	}
	switch s {
	case StateSynReceived:
		if ev == EventHandshakeDone {
			return StateEstablished, nil
		}
	case StateEstablished:
		switch ev {
		case EventRequestBound:
			return StateBound, nil
		case EventClientFin:
			return StateFinReceived, nil
		}
	case StateBound:
		switch ev {
		case EventRequestDone:
			return StateEstablished, nil
		case EventClientFin:
			return StateFinReceived, nil
		}
	case StateFinReceived:
		if ev == EventFinAcked {
			return StateHalfClosed, nil
		}
	case StateHalfClosed:
		if ev == EventLastAck {
			return StateClosed, nil
		}
	}
	return s, &ErrBadTransition{From: s, Event: ev}
}
