package conntrack

import (
	"errors"
	"fmt"
)

// This file models the packet-level mechanism of the paper's kernel
// module ([24], §2.2): after the distributor binds a client connection to
// a pre-forked back-end connection, it relays every packet by rewriting
// IP addresses, ports and TCP sequence/acknowledgement numbers so that
// client and server "transparently receive and recognize these packets".
//
// The user-space relay in this package's Distributor performs the same
// function with socket reads/writes; Splice exists so the translation
// arithmetic itself — the part that is easy to get subtly wrong and that
// the backup distributor must replicate — is an explicit, tested artifact.

// Endpoint is one side of a TCP connection.
type Endpoint struct {
	IP   string
	Port int
}

// String formats the endpoint as ip:port.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.IP, e.Port) }

// TCPFlags is the subset of flags the relay inspects.
type TCPFlags uint8

// Flag bits.
const (
	FlagSYN TCPFlags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
	FlagPSH
)

// Has reports whether all bits in f are set.
func (t TCPFlags) Has(f TCPFlags) bool { return t&f == f }

// Packet is the header slice of one TCP segment the relay rewrites.
type Packet struct {
	Src, Dst Endpoint
	Seq, Ack uint32
	Flags    TCPFlags
	// PayloadLen is the TCP payload size (the relay never touches the
	// payload itself).
	PayloadLen uint32
}

// Errors.
var (
	// ErrWrongDirection reports a packet that matches neither side of
	// the splice.
	ErrWrongDirection = errors.New("conntrack: packet does not belong to this splice")
)

// Splice binds one client connection to one pre-forked back-end
// connection and rewrites packet headers between the two sequence-number
// spaces. Construct with NewSplice at binding time (§2.2: "the distributor
// stores related information about the selected connection in the mapping
// table, which will bind the user connection to the pre-forked
// connection").
//
// Sequence translation: let clientDataStart be the client's sequence
// number at binding (first byte of the HTTP request to relay) and
// backendDataStart the distributor's next sequence number on the
// pre-forked connection. A client byte at clientDataStart+k appears on
// the wire to the back end at backendDataStart+k, so
//
//	seq' = seq − clientDataStart + backendDataStart
//
// and symmetrically for the response stream with the two acknowledgement
// bases. Reusing a pre-forked connection for a later client re-binds with
// fresh bases, which is why the same persistent connection can carry many
// client exchanges.
type Splice struct {
	client      Endpoint // remote client
	vip         Endpoint // distributor's client-facing address
	distBackend Endpoint // distributor's address on the pre-forked conn
	backend     Endpoint // back-end server address

	// Request-direction bases (client → backend).
	clientDataStart  uint32
	backendDataStart uint32
	// Response-direction bases (backend → client).
	backendRespStart uint32
	clientRespStart  uint32

	relayedToBackend uint32
	relayedToClient  uint32
}

// NewSplice records the four sequence bases at binding time.
func NewSplice(client, vip, distBackend, backend Endpoint,
	clientDataStart, backendDataStart, backendRespStart, clientRespStart uint32) *Splice {
	return &Splice{
		client:           client,
		vip:              vip,
		distBackend:      distBackend,
		backend:          backend,
		clientDataStart:  clientDataStart,
		backendDataStart: backendDataStart,
		backendRespStart: backendRespStart,
		clientRespStart:  clientRespStart,
	}
}

// Rewrite translates one packet through the splice: a client→VIP packet
// becomes a distributor→backend packet; a backend→distributor packet
// becomes a VIP→client packet. Sequence arithmetic is modular (uint32
// wraparound-safe by construction).
func (s *Splice) Rewrite(p Packet) (Packet, error) {
	switch {
	case p.Src == s.client && p.Dst == s.vip:
		// Request direction.
		out := p
		out.Src = s.distBackend
		out.Dst = s.backend
		out.Seq = p.Seq - s.clientDataStart + s.backendDataStart
		out.Ack = p.Ack - s.clientRespStart + s.backendRespStart
		s.relayedToBackend += p.PayloadLen
		return out, nil
	case p.Src == s.backend && p.Dst == s.distBackend:
		// Response direction.
		out := p
		out.Src = s.vip
		out.Dst = s.client
		out.Seq = p.Seq - s.backendRespStart + s.clientRespStart
		out.Ack = p.Ack - s.backendDataStart + s.clientDataStart
		s.relayedToClient += p.PayloadLen
		return out, nil
	default:
		return Packet{}, fmt.Errorf("%w: %s→%s", ErrWrongDirection, p.Src, p.Dst)
	}
}

// RelayedBytes reports payload bytes relayed in each direction.
func (s *Splice) RelayedBytes() (toBackend, toClient uint32) {
	return s.relayedToBackend, s.relayedToClient
}

// ResponseEnd returns the client-space sequence number just past the last
// relayed response byte — the number whose acknowledgement moves the §2.2
// teardown from HALF_CLOSED to CLOSED.
func (s *Splice) ResponseEnd() uint32 {
	return s.clientRespStart + s.relayedToClient
}

// Rebind prepares the splice for reusing the same pre-forked connection
// with a new client exchange: response/request bases advance past the
// bytes already relayed, and the client-side bases are replaced.
func (s *Splice) Rebind(client Endpoint, clientDataStart, clientRespStart uint32) {
	s.client = client
	s.backendDataStart += s.relayedToBackend
	s.backendRespStart += s.relayedToClient
	s.clientDataStart = clientDataStart
	s.clientRespStart = clientRespStart
	s.relayedToBackend = 0
	s.relayedToClient = 0
}
