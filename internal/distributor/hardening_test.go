package distributor

import (
	"net"
	"testing"
	"time"

	"webcluster/internal/faults"
	"webcluster/internal/httpx"
	"webcluster/internal/testutil"
)

// TestExchangeTimeoutFailsOverStalledBackend: a slow-loris back end (its
// pooled connections never deliver a response) must surface as an
// exchange timeout and fail over to the healthy replica — the request
// succeeds and no relay goroutine is left hanging. Reverting the
// exchange deadline in attemptExchange makes this test hang.
func TestExchangeTimeoutFailsOverStalledBackend(t *testing.T) {
	in := faults.New(1)
	tc := startClusterOpts(t, 2, func(o *Options) {
		o.Faults = in
		o.ExchangeTimeout = 150 * time.Millisecond
		o.RetryBackoff = time.Millisecond
	})
	tc.place(t, "/ha.html", []byte("alive"), "n1", "n2")

	// Stall every distributor→n1 connection: responses never arrive.
	in.Set("pool.conn/n1", faults.Rule{ReadStall: time.Minute})

	start := time.Now()
	for i := 0; i < 4; i++ {
		resp := fetch(t, tc.front, "/ha.html", httpx.Proto11)
		if resp.StatusCode != 200 || string(resp.Body) != "alive" {
			t.Fatalf("request %d = %d %q", i, resp.StatusCode, resp.Body)
		}
		if got := resp.Header.Get("X-Served-By"); got != "n2" {
			t.Fatalf("request %d served by %s with n1 stalled", i, got)
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("failover took %v — deadlines not bounding the stall", elapsed)
	}
	if in.Fired("pool.conn/n1") == 0 {
		t.Fatal("stall rule never fired — test exercised nothing")
	}
}

// TestReplicationFeedCutsStalledBackup: a backup whose link stalls longer
// than the feed's write deadline gets its stream cut instead of pinning
// the feed goroutine; the server still shuts down promptly. Reverting the
// SetWriteDeadline in feed() makes the stream survive (this test fails)
// and a genuinely blocked peer would wedge Close.
func TestReplicationFeedCutsStalledBackup(t *testing.T) {
	testutil.NoLeaks(t)
	tc := startCluster(t, 1)
	in := faults.New(2)
	repl := NewReplicationServer(tc.dist, 30*time.Millisecond)
	repl.SetFaults(in)
	// Every feed write stalls past the write deadline (max(4×30ms, 1s)).
	in.Set("repl.feed", faults.Rule{Latency: 1500 * time.Millisecond})
	replAddr, err := repl.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = repl.Close() }()

	conn, err := net.Dial("tcp", replAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	// The first snapshot write blows its deadline: the server cuts the
	// stream, and this read observes the close rather than hanging. If
	// the write deadline were removed the delayed writes would keep
	// succeeding and this loop would only end at its own read deadline.
	cutStart := time.Now()
	buf := make([]byte, 4096)
	for {
		if _, rerr := conn.Read(buf); rerr != nil {
			break
		}
	}
	if elapsed := time.Since(cutStart); elapsed > 8*time.Second {
		t.Fatalf("stream not cut by the write deadline (ran %v)", elapsed)
	}
	start := time.Now()
	if err := repl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Close blocked %v on the stalled feed", elapsed)
	}
}
