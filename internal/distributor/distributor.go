// Package distributor implements the paper's content-aware distributor
// (§2.2): the layer-7 front end that completes the client's TCP handshake,
// reads the HTTP request, consults the URL table for the nodes holding the
// requested content, binds the client connection to a pre-forked
// persistent back-end connection, and relays the exchange. It also hosts
// the primary/backup fault-tolerance mechanism (§2.3).
package distributor

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"webcluster/internal/trace"

	"webcluster/internal/admission"
	"webcluster/internal/config"
	"webcluster/internal/conntrack"
	"webcluster/internal/faults"
	"webcluster/internal/httpx"
	"webcluster/internal/journal"
	"webcluster/internal/loadbal"
	"webcluster/internal/respcache"
	"webcluster/internal/telemetry"
	"webcluster/internal/urltable"
)

// Errors.
var (
	// ErrNoBackend reports content whose replica set is empty or whose
	// nodes are all unknown.
	ErrNoBackend = errors.New("distributor: no backend for content")
)

// Options configures a distributor.
type Options struct {
	// Table is the URL table to route by. Required.
	Table *urltable.Table
	// Cluster describes the back-end nodes; node Addr fields must be
	// set. Required.
	Cluster config.ClusterSpec
	// Picker selects among a content's replicas; defaults to
	// WeightedLeastConn over the candidate replicas.
	Picker loadbal.Picker
	// PreforkPerNode is the number of persistent connections opened to
	// each node up front (§2.2); default 4.
	PreforkPerNode int
	// MaxConnsPerNode caps concurrent back-end connections per node;
	// default 64.
	MaxConnsPerNode int
	// Weights configures the §3.3 load-metric constants; zero value
	// means the paper's constants.
	Weights loadbal.CostWeights
	// AccessLog, when non-nil, receives one Common Log Format line per
	// completed request (the distributor sees every request, so this is
	// the natural place to record the site's traffic for later replay).
	AccessLog io.Writer
	// ExchangeTimeout bounds each back-end exchange attempt (write +
	// response read) so one stalled back end cannot hang a relay
	// goroutine; default 10s, negative disables.
	ExchangeTimeout time.Duration
	// ExchangeRetries is how many additional pooled connections one
	// exchange tries after a failure before reporting it (each retry
	// waits RetryBackoff, doubling); default 1.
	ExchangeRetries int
	// RetryBackoff is the initial pause before an exchange retry;
	// default 5ms, negative disables.
	RetryBackoff time.Duration
	// Faults, when non-nil, injects connection faults at the pool dial
	// and relay paths (tests only).
	Faults *faults.Injector
	// Cache, when non-nil, serves cacheable GET/HEAD responses straight
	// from the front end (hits never touch a back end); the management
	// plane must purge it on every content mutation — wire the same
	// cache into the controller.
	Cache *respcache.Cache
	// Telemetry, when non-nil, enables request-scoped tracing: every
	// request gets a pooled span (parse → route → cache → backend →
	// reply) captured into the telemetry ring, and trace IDs propagate
	// to back ends via the X-Dist-Trace header. Nil means untraced; the
	// per-class stats registry exists either way.
	Telemetry *telemetry.Telemetry
	// Journal, when non-nil, receives structured decision events from
	// the error paths only: replica failovers, exhausted retries, and
	// admission-ladder shifts. The happy relay path records nothing, so
	// journaling costs the fast path zero allocations.
	Journal *journal.Journal
	// Admission, when non-nil, enables SLO-class overload control:
	// requests are classified (critical/interactive/batch), admitted
	// through per-class weighted concurrency gates, stamped with
	// downstream deadlines, and progressively shed under pressure. Nil
	// disables admission entirely — the request path is then identical
	// to a build without the subsystem.
	Admission *admission.Options
	// Shards is the number of accept/relay shards (per-core data-plane
	// partitions). Each shard gets its own SO_REUSEPORT listener where
	// the platform supports it (striped accept goroutines on one
	// listener otherwise), its own httpx buffer pools, a private
	// conntrack idle stripe per back end, and a mapping-table lock
	// stripe count to match, so hot connections stop bouncing between
	// CPUs. Default 1 (the unsharded layout).
	Shards int
}

// shard is one data-plane partition of the distributor: a listener (or
// accept stripe), private buffer pools, and an id selecting the
// conntrack idle stripe. Every connection is served start-to-finish by
// the shard that accepted it.
type shard struct {
	id    int
	pools *httpx.Pools
}

// Distributor is the content-aware front end. Construct with New.
type Distributor struct {
	table   *urltable.Table
	cluster config.ClusterSpec
	picker  loadbal.Picker
	pool    *conntrack.Pool
	mapping *conntrack.MappingTable
	tracker *loadbal.Tracker
	cache   *respcache.Cache
	adm     *admission.Controller

	active map[config.NodeID]*atomic.Int64
	// down marks nodes the monitor has declared failed; pickReplica
	// skips them so clients never wait on a dead back end.
	down sync.Map // config.NodeID → bool
	// loads holds the latest interval L_j per node for load-aware
	// pickers (loadbal.LeastLoad).
	loads sync.Map // config.NodeID → float64

	exchangeTimeout time.Duration
	exchangeRetries int
	retryBackoff    time.Duration

	shards []*shard

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	closed    chan struct{}
	closeOne  sync.Once
	wg        sync.WaitGroup

	tel *telemetry.Telemetry
	jnl *journal.Journal
	// shedding tracks, per SLO class, whether the last journaled
	// admission verdict was a shed — so the journal records ladder
	// *transitions* (first shed, first recovery) instead of one event
	// per rejected request.
	shedding [admission.NumClasses]atomic.Bool

	stats   *telemetry.Registry
	routed  atomic.Int64
	noRoute atomic.Int64
	relayNs atomic.Int64 // summed relay overhead (routing decision time)
	// truncations counts relays where the back end delivered fewer body
	// bytes than its Content-Length promised; each one resets the client
	// mapping (the client saw a short response).
	truncations atomic.Int64

	logMu     sync.Mutex
	accessLog io.Writer
}

// New constructs a distributor. It does not open connections; call Start
// (which pre-forks) or Prefork explicitly.
func New(opts Options) (*Distributor, error) {
	if opts.Table == nil {
		return nil, errors.New("distributor: nil URL table")
	}
	if err := opts.Cluster.Validate(); err != nil {
		return nil, fmt.Errorf("distributor: %w", err)
	}
	for _, n := range opts.Cluster.Nodes {
		if n.Addr == "" {
			return nil, fmt.Errorf("distributor: node %s has no address", n.ID)
		}
	}
	picker := opts.Picker
	if picker == nil {
		picker = loadbal.WeightedLeastConn{}
	}
	prefork := opts.PreforkPerNode
	if prefork <= 0 {
		prefork = 4
	}
	maxConns := opts.MaxConnsPerNode
	if maxConns <= 0 {
		maxConns = 64
	}
	weights := opts.Weights
	if weights == (loadbal.CostWeights{}) {
		weights = loadbal.PaperWeights()
	}
	exchangeTimeout := opts.ExchangeTimeout
	if exchangeTimeout == 0 {
		exchangeTimeout = 10 * time.Second
	} else if exchangeTimeout < 0 {
		exchangeTimeout = 0
	}
	exchangeRetries := opts.ExchangeRetries
	if exchangeRetries <= 0 {
		exchangeRetries = 1
	}
	retryBackoff := opts.RetryBackoff
	if retryBackoff == 0 {
		retryBackoff = 5 * time.Millisecond
	} else if retryBackoff < 0 {
		retryBackoff = 0
	}
	stats := opts.Telemetry.Registry()
	if stats == nil {
		stats = telemetry.NewRegistry("distributor")
	}
	if opts.Cache != nil {
		registerCacheMetrics(stats, opts.Cache)
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 1
	}
	d := &Distributor{
		table:     opts.Table,
		cluster:   opts.Cluster,
		picker:    picker,
		mapping:   conntrack.NewMappingTableStriped(shards),
		cache:     opts.Cache,
		tel:       opts.Telemetry,
		jnl:       opts.Journal,
		stats:     stats,
		tracker:   loadbal.NewTracker(weights),
		active:    make(map[config.NodeID]*atomic.Int64, len(opts.Cluster.Nodes)),
		conns:     make(map[net.Conn]struct{}),
		closed:    make(chan struct{}),
		accessLog: opts.AccessLog,

		exchangeTimeout: exchangeTimeout,
		exchangeRetries: exchangeRetries,
		retryBackoff:    retryBackoff,
	}
	d.shards = make([]*shard, shards)
	for i := range d.shards {
		d.shards[i] = &shard{id: i, pools: httpx.NewPools()}
	}
	addrs := make(map[config.NodeID]string, len(opts.Cluster.Nodes))
	for _, n := range opts.Cluster.Nodes {
		addrs[n.ID] = n.Addr
		d.active[n.ID] = &atomic.Int64{}
	}
	d.pool = conntrack.NewPoolSharded(func(node config.NodeID) (net.Conn, error) {
		addr, ok := addrs[node]
		if !ok {
			return nil, fmt.Errorf("%w: unknown node %s", ErrNoBackend, node)
		}
		return net.DialTimeout("tcp", addr, 2*time.Second)
	}, prefork, maxConns, shards)
	d.pool.SetFaults(opts.Faults)
	if opts.Admission != nil {
		admOpts := *opts.Admission
		admOpts.Registry = stats
		d.adm = admission.New(admOpts)
		// The pressure signal the batch rung keys off: summed per-backend
		// in-flight exchanges against the pool's aggregate connection
		// capacity. d.active is fully populated above and never written
		// again, so the unlocked map iteration is safe.
		capacity := int64(maxConns) * int64(len(opts.Cluster.Nodes))
		d.adm.SetPressure(func() (int64, int64) {
			var inflight int64
			for _, c := range d.active {
				inflight += c.Load()
			}
			return inflight, capacity
		})
		for _, n := range opts.Cluster.Nodes {
			c := d.active[n.ID]
			stats.GaugeFunc("distributor_inflight_"+string(n.ID), func() float64 {
				return float64(c.Load())
			})
		}
	}
	return d, nil
}

// Table returns the routing table (the controller mutates it through
// management operations).
func (d *Distributor) Table() *urltable.Table { return d.table }

// Tracker returns the §3.3 load tracker fed by completed requests.
func (d *Distributor) Tracker() *loadbal.Tracker { return d.tracker }

// Mapping returns the connection mapping table.
func (d *Distributor) Mapping() *conntrack.MappingTable { return d.mapping }

// Cluster returns the node specifications.
func (d *Distributor) Cluster() config.ClusterSpec { return d.cluster }

// Stats returns per-class statistics observed at the front end.
func (d *Distributor) Stats() *telemetry.Registry { return d.stats }

// Telemetry returns the tracing layer, nil when tracing is off.
func (d *Distributor) Telemetry() *telemetry.Telemetry { return d.tel }

// Routed returns the number of successfully routed requests.
func (d *Distributor) Routed() int64 { return d.routed.Load() }

// NoRoute returns the number of requests with no routable backend.
func (d *Distributor) NoRoute() int64 { return d.noRoute.Load() }

// RelayTruncations returns the number of relays cut short by a back end
// delivering less body than its Content-Length declared.
func (d *Distributor) RelayTruncations() int64 { return d.truncations.Load() }

// MeanRouteOverhead returns the average time spent making routing
// decisions (URL-table lookup + replica pick), the §5.2 overhead quantity.
func (d *Distributor) MeanRouteOverhead() time.Duration {
	n := d.routed.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(d.relayNs.Load() / n)
}

// Start pre-forks connections to every node, then listens on addr (":0"
// for ephemeral) and serves in the background, returning the bound
// address. With Shards > 1 each shard accepts on its own SO_REUSEPORT
// listener bound to the same address where the platform supports it (the
// kernel then spreads incoming connections across shards); otherwise all
// shards run striped accept loops on one shared listener.
func (d *Distributor) Start(addr string) (string, error) {
	if err := d.pool.Prefork(d.cluster.NodeIDs()); err != nil {
		return "", fmt.Errorf("distributor: prefork: %w", err)
	}
	listeners, err := listenShards(addr, len(d.shards))
	if err != nil {
		return "", fmt.Errorf("distributor: listen: %w", err)
	}
	d.mu.Lock()
	d.listeners = listeners
	d.mu.Unlock()
	for i, s := range d.shards {
		l := listeners[0]
		if len(listeners) == len(d.shards) {
			l = listeners[i]
		}
		d.wg.Add(1)
		go func(l net.Listener, s *shard) {
			defer d.wg.Done()
			d.acceptLoop(l, s)
		}(l, s)
	}
	return listeners[0].Addr().String(), nil
}

// listenSingle is the one-shared-listener shape of listenShards: the
// unsharded layout, and the fallback when a REUSEPORT group can't be
// assembled.
func listenSingle(addr string) ([]net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return []net.Listener{l}, nil
}

// acceptLoop accepts client connections for one shard until Close.
func (d *Distributor) acceptLoop(l net.Listener, s *shard) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		d.mu.Lock()
		select {
		case <-d.closed:
			d.mu.Unlock()
			_ = conn.Close()
			return
		default:
		}
		d.conns[conn] = struct{}{}
		d.mu.Unlock()
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			defer func() {
				_ = conn.Close()
				d.mu.Lock()
				delete(d.conns, conn)
				d.mu.Unlock()
			}()
			d.serveClient(s, conn)
		}()
	}
}

// clientKey derives the mapping-table key from the connection's remote
// address.
func clientKey(conn net.Conn) conntrack.ClientKey {
	host, portStr, err := net.SplitHostPort(conn.RemoteAddr().String())
	if err != nil {
		return conntrack.ClientKey{IP: conn.RemoteAddr().String()}
	}
	port, _ := strconv.Atoi(portStr)
	return conntrack.ClientKey{IP: host, Port: port}
}

// serveClient runs the §2.2 lifecycle for one client connection: install a
// mapping entry at "SYN" (accept), walk the state machine through request
// binding and teardown, and release pre-forked connections after each
// relayed exchange. The connection is pinned to the accepting shard: its
// buffers come from the shard's pools and its back-end checkouts prefer
// the shard's idle stripe. Pipelined HTTP/1.1 requests drain in-loop —
// buffered bytes from the same read feed the next iteration directly,
// and the per-connection route hint answers repeat lookups with one
// pointer compare instead of re-entering the shared router state.
func (d *Distributor) serveClient(s *shard, client net.Conn) {
	key := clientKey(client)
	// The accept completing stands in for the SYN/ACK exchange; Go hands
	// us the connection post-handshake, so install then mark established.
	if _, err := d.mapping.Install(key, 0, 0); err != nil {
		return
	}
	if _, err := d.mapping.Advance(key, conntrack.EventHandshakeDone); err != nil {
		return
	}
	reset := func() { _, _ = d.mapping.Advance(key, conntrack.EventReset) }

	// Reader and request come from the shard's pools and are reused across
	// every keep-alive request on this connection, so steady-state parsing
	// allocates nothing.
	br := s.pools.AcquireReader(client)
	defer s.pools.ReleaseReader(br)
	req := s.pools.AcquireRequest()
	defer s.pools.ReleaseRequest(req)
	var hint urltable.Hint
	for {
		// Tracing starts after the first request byte is visible, so
		// keep-alive idle time between requests is never charged to the
		// parse phase. A failed Peek falls through: ReadRequestInto hits
		// the same condition and classifies it (clean FIN vs. torn read).
		// A pipelined follow-up request already sits in the read buffer,
		// so Peek returns without touching the socket.
		var sp *telemetry.Span
		if d.tel != nil {
			if _, perr := br.Peek(1); perr == nil {
				sp = d.tel.StartSpan(0)
			}
		}
		err := httpx.ReadRequestInto(br, req)
		if err != nil {
			if errors.Is(err, io.EOF) {
				d.finishSpan(sp, "client-fin")
				// Client FIN with no request in flight: run teardown.
				if _, err := d.mapping.Advance(key, conntrack.EventClientFin); err == nil {
					_, _ = d.mapping.Advance(key, conntrack.EventFinAcked)
					_, _ = d.mapping.Advance(key, conntrack.EventLastAck)
				}
				return
			}
			sp.MarkParse()
			sp.SetStatus(400)
			d.finishSpan(sp, "parse-error")
			resp := httpx.NewResponse(httpx.Proto10, 400, []byte("bad request\n"))
			_ = httpx.WriteResponse(client, resp)
			reset()
			return
		}
		sp.AdoptTrace(req.TraceID)
		sp.MarkParse()
		sp.SetRequest(req.Method, req.Path)
		ok := d.relayRequest(s, client, key, req, &hint, sp)
		d.tel.FinishSpan(sp)
		if !ok {
			reset()
			return
		}
		if !req.KeepAlive() {
			// HTTP/1.0 close: distributor sets FIN toward the client
			// after the last relayed packet (§2.2).
			if _, err := d.mapping.Advance(key, conntrack.EventClientFin); err == nil {
				_, _ = d.mapping.Advance(key, conntrack.EventFinAcked)
				_, _ = d.mapping.Advance(key, conntrack.EventLastAck)
			}
			return
		}
	}
}

// finishSpan stamps a terminal outcome and closes the span (nil-safe).
func (d *Distributor) finishSpan(sp *telemetry.Span, outcome string) {
	if sp == nil {
		return
	}
	sp.SetOutcome(outcome)
	d.tel.FinishSpan(sp)
}

// relayRequest routes one parsed request and relays the response. It
// reports whether the client connection remains usable. sp is the
// request's span (nil when tracing is off); relayRequest marks phases and
// outcomes but the caller finishes it.
func (d *Distributor) relayRequest(s *shard, client net.Conn, key conntrack.ClientKey, req *httpx.Request, hint *urltable.Hint, sp *telemetry.Span) bool {
	if sp != nil {
		// Propagate the trace in-band: every forwarded exchange below
		// carries X-Dist-Trace, and the chosen back end echoes it with its
		// own span ID.
		req.TraceID = sp.ID()
	}
	if d.adm != nil {
		// Overload control runs before any routing or cache work: a shed
		// request must cost nothing downstream. An admitted request holds
		// its class slot for the full relay (including the cache path —
		// the slot bounds front-end concurrency, not just back-end load).
		class, handled, ok := d.admitRequest(client, key, req, sp)
		if handled {
			return ok
		}
		defer d.adm.Release(class)
	}
	if d.cache != nil && cacheEligible(req) {
		// Cache hits (and cache-led fetches) never bind a back-end
		// connection, so the mapping entry stays ESTABLISHED; a miss the
		// cache declines falls through to the ordinary relay below.
		if handled, ok := d.serveFromCache(s, client, key, req, sp); handled {
			return ok
		}
	}
	start := time.Now()
	rec, err := d.table.RouteHinted(req.Path, hint)
	if err != nil {
		d.noRoute.Add(1)
		sp.MarkRoute()
		sp.SetStatus(404)
		sp.SetOutcome("no-route")
		resp := httpx.NewResponse(req.Proto, 404, []byte("no route: "+req.Path+"\n"))
		d.logAccess(key, req, 404, len(resp.Body))
		return httpx.WriteResponse(client, resp) == nil && req.KeepAlive()
	}
	node, err := d.pickReplica(rec, "")
	routeCost := time.Since(start)
	sp.MarkRoute()
	if err != nil {
		d.noRoute.Add(1)
		sp.SetStatus(503)
		sp.SetOutcome("no-replica")
		resp := httpx.NewResponse(req.Proto, 503, []byte("no backend available\n"))
		d.logAccess(key, req, 503, len(resp.Body))
		return httpx.WriteResponse(client, resp) == nil && req.KeepAlive()
	}
	if err := d.mapping.Bind(key, node); err != nil {
		return false
	}
	if _, err := d.mapping.Advance(key, conntrack.EventRequestBound); err != nil {
		return false
	}

	counter := d.active[node]
	counter.Add(1)
	pc, resp, err := d.exchangeStart(s, node, req)
	counter.Add(-1)
	if err != nil && idempotent(req) {
		// The chosen back end failed before any response header arrived:
		// fail over to another replica once before giving up. Only safe
		// for idempotent methods — re-sending a POST could apply its
		// effect twice. Nothing has been written to the client yet.
		if alt, altErr := d.pickReplica(rec, node); altErr == nil {
			if bindErr := d.mapping.Bind(key, alt); bindErr != nil {
				return false
			}
			if d.jnl != nil {
				// The failover decision itself is journal-worthy: which
				// node failed, which replica took over, and the incident
				// trace that links this to the fault and the monitor's
				// down transition.
				failed := string(node)
				tr := d.jnl.Incident(failed)
				d.jnl.Record(journal.Event{
					Actor:  journal.ActorDistributor,
					Kind:   journal.KindFailover,
					Trace:  tr,
					Node:   failed,
					Path:   req.Path,
					Detail: string(alt),
				})
			}
			altCounter := d.active[alt]
			altCounter.Add(1)
			pc, resp, err = d.exchangeStart(s, alt, req)
			altCounter.Add(-1)
			node = alt
		}
	}
	if err != nil {
		sp.MarkBackend()
		sp.SetStatus(502)
		sp.SetOutcome("bad-gateway")
		if d.jnl != nil {
			failed := string(node)
			tr := d.jnl.Incident(failed)
			detail := err.Error()
			d.jnl.Record(journal.Event{
				Actor:  journal.ActorDistributor,
				Kind:   journal.KindRetryExhausted,
				Trace:  tr,
				Node:   failed,
				Path:   req.Path,
				Detail: detail,
			})
		}
		out := httpx.NewResponse(req.Proto, 502, []byte("backend error\n"))
		d.logAccess(key, req, 502, len(out.Body))
		_ = httpx.WriteResponse(client, out)
		return false
	}
	sp.MarkBackend()
	sp.SetBackend(string(node), resp.SpanID)

	// Response header is parsed; the body still sits on the back-end
	// connection. streamResponse copies it to the client through a pooled
	// buffer and records the exchange. The exchange deadline stays armed
	// across the copy so a back end that stalls mid-body cannot pin this
	// goroutine.
	if !d.streamResponse(s, client, key, req, node, pc, resp, start, routeCost, sp) {
		return false
	}
	if _, err := d.mapping.Advance(key, conntrack.EventRequestDone); err != nil {
		return false
	}
	return true
}

// idempotent reports whether req may be re-sent after a failed attempt.
// Only safe methods qualify; the streaming path never retries once any
// response byte has reached the client.
func idempotent(req *httpx.Request) bool {
	return req.Method == "GET" || req.Method == "HEAD"
}

// exchangeStart sends req over a pre-forked connection to node and parses
// the response header, leaving the body unread on the returned connection
// (the caller streams it with httpx.RelayResponse). Each attempt runs
// under the exchange deadline so a stalled or slow-loris back end surfaces
// as a timeout instead of hanging the relay goroutine; failed attempts
// discard the connection and retry (bounded, with doubling backoff) — a
// stale keep-alive connection is the common recoverable case. Retries only
// happen for idempotent requests: a non-idempotent body was already sent
// on the wire once, so a second send could apply its effect twice.
//
// On success the exchange deadline is still armed; the caller clears it
// after relaying the body.
func (d *Distributor) exchangeStart(s *shard, node config.NodeID, req *httpx.Request) (*conntrack.PooledConn, *httpx.Response, error) {
	var lastErr error
	backoff := d.retryBackoff
	for attempt := 0; attempt <= d.exchangeRetries; attempt++ {
		if attempt > 0 {
			if !idempotent(req) {
				break
			}
			if backoff > 0 {
				time.Sleep(backoff)
				backoff *= 2
			}
		}
		pc, err := d.pool.AcquireShard(node, s.id)
		if err != nil {
			return nil, nil, fmt.Errorf("acquiring connection to %s: %w", node, err)
		}
		resp, err := d.attemptStart(s, pc, req)
		if err != nil {
			d.pool.Discard(pc)
			lastErr = fmt.Errorf("exchange with %s: %w", node, err)
			continue
		}
		return pc, resp, nil
	}
	return nil, nil, lastErr
}

// attemptStart arms the exchange deadline, forwards req (as HTTP/1.1,
// Connection dropped on the wire — no clone; head and body leave in one
// vectored write) and parses the response header. The deadline is left
// armed: it also bounds the body relay.
func (d *Distributor) attemptStart(s *shard, pc *conntrack.PooledConn, req *httpx.Request) (*httpx.Response, error) {
	if d.exchangeTimeout > 0 {
		if err := pc.Conn.SetDeadline(time.Now().Add(d.exchangeTimeout)); err != nil {
			return nil, fmt.Errorf("arming deadline: %w", err)
		}
	}
	if err := s.pools.WriteProxyRequest(pc.Conn, req); err != nil {
		return nil, fmt.Errorf("forwarding: %w", err)
	}
	resp, err := httpx.ReadResponseHeader(pc.Reader)
	if err != nil {
		return nil, fmt.Errorf("reading: %w", err)
	}
	return resp, nil
}

// logAccess appends one CLF line to the access log, if configured.
func (d *Distributor) logAccess(key conntrack.ClientKey, req *httpx.Request, status int, respBytes int) {
	if d.accessLog == nil {
		return
	}
	entry := trace.Entry{
		ClientIP: key.IP,
		Time:     time.Now(),
		Method:   req.Method,
		Path:     req.Target,
		Proto:    req.Proto,
		Status:   status,
		Bytes:    int64(respBytes),
	}
	d.logMu.Lock()
	defer d.logMu.Unlock()
	_, _ = fmt.Fprintln(d.accessLog, entry.String())
}

// SetAvailable marks a node up or down for routing. The monitor calls
// this on liveness transitions; content on a down node is served from its
// other replicas until the node recovers.
func (d *Distributor) SetAvailable(node config.NodeID, up bool) {
	if up {
		d.down.Delete(node)
	} else {
		d.down.Store(node, true)
	}
}

// Available reports whether node is currently routable.
func (d *Distributor) Available(node config.NodeID) bool {
	_, isDown := d.down.Load(node)
	return !isDown
}

// UpdateLoads publishes the latest per-node §3.3 load indices for
// load-aware replica selection. The auto-balancer calls this at each
// interval boundary.
func (d *Distributor) UpdateLoads(loads map[config.NodeID]float64) {
	for id, l := range loads {
		d.loads.Store(id, l)
	}
}

// nodeLoad returns the last published L_j for node (0 before the first
// interval closes).
func (d *Distributor) nodeLoad(node config.NodeID) float64 {
	v, ok := d.loads.Load(node)
	if !ok {
		return 0
	}
	l, ok := v.(float64)
	if !ok {
		return 0
	}
	return l
}

// pickReplica chooses among the available nodes holding rec, excluding
// exclude (a node that just failed an exchange for this request).
func (d *Distributor) pickReplica(rec urltable.Record, exclude config.NodeID) (config.NodeID, error) {
	candidates := make([]loadbal.NodeState, 0, len(rec.Locations))
	for _, id := range rec.Locations {
		if id == exclude || !d.Available(id) {
			continue
		}
		spec, ok := d.cluster.Node(id)
		if !ok {
			continue
		}
		counter := d.active[id]
		if counter == nil {
			continue
		}
		candidates = append(candidates, loadbal.NodeState{
			ID:     id,
			Weight: spec.EffectiveWeight(),
			Active: counter.Load(),
			Load:   d.nodeLoad(id),
		})
	}
	if len(candidates) == 0 {
		return "", fmt.Errorf("%w: %s", ErrNoBackend, rec.Path)
	}
	return d.picker.Pick(candidates)
}

// ActiveRequests returns in-flight requests bound to node.
func (d *Distributor) ActiveRequests(node config.NodeID) int64 {
	c, ok := d.active[node]
	if !ok {
		return 0
	}
	return c.Load()
}

// Close stops the listener, closes all client connections and the
// connection pool, and joins every goroutine.
func (d *Distributor) Close() error {
	var errs []error
	d.closeOne.Do(func() {
		close(d.closed)
		d.mu.Lock()
		for _, l := range d.listeners {
			errs = append(errs, l.Close())
		}
		for conn := range d.conns {
			_ = conn.Close()
		}
		d.mu.Unlock()
	})
	d.wg.Wait()
	errs = append(errs, d.pool.Close())
	return errors.Join(errs...)
}
