package distributor

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/conntrack"
	"webcluster/internal/content"
	"webcluster/internal/faults"
	"webcluster/internal/urltable"
)

// contentObject converts a wire record back into a content object.
func contentObject(r snapshotRecord) content.Object {
	return content.Object{
		Path:     r.Path,
		Size:     r.Size,
		Class:    content.Class(r.Class),
		Priority: r.Priority,
	}
}

// The primary/backup protocol (§2.3): the backup connects to the primary's
// replication port, receives heartbeats and periodic state snapshots (URL
// table + mapping table + cluster spec), and — when the primary stops
// responding — takes over by binding the service address itself and
// recreating the distributor from the replicated state.

// snapshotRecord is the wire form of one URL-table entry.
type snapshotRecord struct {
	Path      string          `json:"path"`
	Size      int64           `json:"size"`
	Class     int             `json:"class"`
	Priority  int             `json:"priority"`
	Pinned    bool            `json:"pinned,omitempty"`
	Hits      int64           `json:"hits"`
	Locations []config.NodeID `json:"locations"`
}

// snapshotMapping is the wire form of one mapping-table entry.
type snapshotMapping struct {
	IP       string        `json:"ip"`
	Port     int           `json:"port"`
	State    int           `json:"state"`
	Backend  config.NodeID `json:"backend"`
	Requests int           `json:"requests"`
}

// replMessage is one line of the replication stream.
type replMessage struct {
	Type    string              `json:"type"` // "hb" | "snapshot"
	Cluster *config.ClusterSpec `json:"cluster,omitempty"`
	Table   []snapshotRecord    `json:"table,omitempty"`
	Mapping []snapshotMapping   `json:"mapping,omitempty"`
}

// ReplicationServer streams distributor state to connected backups.
// Construct with NewReplicationServer.
type ReplicationServer struct {
	d        *Distributor
	interval time.Duration
	// writeTimeout bounds each stream write so one stalled backup
	// cannot pin its feed goroutine (and its connection slot) forever.
	writeTimeout time.Duration
	faults       *faults.Injector

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   chan struct{}
	closeOne sync.Once
	wg       sync.WaitGroup
}

// NewReplicationServer returns a replication source for d snapshotting at
// the given interval (default 200ms when non-positive).
func NewReplicationServer(d *Distributor, interval time.Duration) *ReplicationServer {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	writeTimeout := 4 * interval
	if writeTimeout < time.Second {
		writeTimeout = time.Second
	}
	return &ReplicationServer{
		d:            d,
		interval:     interval,
		writeTimeout: writeTimeout,
		conns:        make(map[net.Conn]struct{}),
		closed:       make(chan struct{}),
	}
}

// SetFaults attaches a fault injector to the replication stream (point
// "repl.feed": truncation, corruption, stalls on the feed toward
// backups). Call before Start.
func (rs *ReplicationServer) SetFaults(in *faults.Injector) { rs.faults = in }

// Start listens for backups on addr (":0" for ephemeral), returning the
// bound address.
func (rs *ReplicationServer) Start(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("replication: listen: %w", err)
	}
	rs.mu.Lock()
	rs.listener = l
	rs.mu.Unlock()
	rs.wg.Add(1)
	go func() {
		defer rs.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			conn = rs.faults.Conn("repl.feed", conn)
			rs.mu.Lock()
			select {
			case <-rs.closed:
				rs.mu.Unlock()
				_ = conn.Close()
				return
			default:
			}
			rs.conns[conn] = struct{}{}
			rs.mu.Unlock()
			rs.wg.Add(1)
			go func() {
				defer rs.wg.Done()
				defer func() {
					_ = conn.Close()
					rs.mu.Lock()
					delete(rs.conns, conn)
					rs.mu.Unlock()
				}()
				rs.feed(conn)
			}()
		}
	}()
	return l.Addr().String(), nil
}

// snapshot captures the distributor's replicable state.
func (rs *ReplicationServer) snapshot() replMessage {
	var records []snapshotRecord
	rs.d.table.Walk(func(r urltable.Record) {
		records = append(records, snapshotRecord{
			Path:      r.Path,
			Size:      r.Size,
			Class:     int(r.Class),
			Priority:  r.Priority,
			Pinned:    r.Pinned,
			Hits:      r.Hits,
			Locations: r.Locations,
		})
	})
	entries := rs.d.mapping.Snapshot()
	mappings := make([]snapshotMapping, 0, len(entries))
	for _, e := range entries {
		mappings = append(mappings, snapshotMapping{
			IP:       e.Key.IP,
			Port:     e.Key.Port,
			State:    int(e.State),
			Backend:  e.Backend,
			Requests: e.Requests,
		})
	}
	cluster := rs.d.cluster
	return replMessage{
		Type:    "snapshot",
		Cluster: &cluster,
		Table:   records,
		Mapping: mappings,
	}
}

// feed streams heartbeats and snapshots to one backup until error or
// close. Every write runs under the write deadline: a backup that stops
// draining (slow-loris reader) gets its stream cut instead of wedging the
// feed goroutine.
func (rs *ReplicationServer) feed(conn net.Conn) {
	enc := json.NewEncoder(conn)
	send := func(msg replMessage) error {
		if err := conn.SetWriteDeadline(time.Now().Add(rs.writeTimeout)); err != nil {
			return err
		}
		return enc.Encode(msg)
	}
	ticker := time.NewTicker(rs.interval)
	defer ticker.Stop()
	// Immediate first snapshot so a new backup is current at once.
	if err := send(rs.snapshot()); err != nil {
		return
	}
	hb := 0
	for {
		select {
		case <-rs.closed:
			return
		case <-ticker.C:
			var msg replMessage
			// Heartbeat between snapshots: every tick sends a
			// heartbeat; every 4th carries full state.
			if hb%4 == 3 {
				msg = rs.snapshot()
			} else {
				msg = replMessage{Type: "hb"}
			}
			hb++
			if err := send(msg); err != nil {
				return
			}
		}
	}
}

// Close stops replication and joins all goroutines.
func (rs *ReplicationServer) Close() error {
	var err error
	rs.closeOne.Do(func() {
		close(rs.closed)
		rs.mu.Lock()
		if rs.listener != nil {
			err = rs.listener.Close()
		}
		for conn := range rs.conns {
			_ = conn.Close()
		}
		rs.mu.Unlock()
	})
	rs.wg.Wait()
	return err
}

// PromoteFunc builds and starts the successor distributor during takeover.
// It receives the replicated URL table and cluster spec and must return
// the running replacement (typically via New + Start on the service
// address the failed primary held).
type PromoteFunc func(table *urltable.Table, cluster config.ClusterSpec) (*Distributor, error)

// Backup monitors a primary distributor and takes over when it fails.
// Construct with NewBackup.
type Backup struct {
	replAddr string
	timeout  time.Duration
	promote  PromoteFunc

	mu        sync.Mutex
	lastState replMessage
	promoted  *Distributor
	err       error

	done     chan struct{}
	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup

	faults *faults.Injector
}

// SetFaults installs a fault injector consulted around the replication
// dial (points "backup.dial" and "backup.conn"). Call before Start.
func (b *Backup) SetFaults(in *faults.Injector) { b.faults = in }

// NewBackup returns a backup that monitors the primary's replication
// endpoint at replAddr, declares it dead after timeout without traffic,
// and calls promote to take over.
func NewBackup(replAddr string, timeout time.Duration, promote PromoteFunc) *Backup {
	if timeout <= 0 {
		timeout = time.Second
	}
	return &Backup{
		replAddr: replAddr,
		timeout:  timeout,
		promote:  promote,
		done:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
}

// Start begins monitoring in the background.
func (b *Backup) Start() error {
	// The dial is bounded like the reads: an unresponsive primary at
	// connect time should not block backup startup indefinitely.
	if err := b.faults.Fail("backup.dial"); err != nil {
		return fmt.Errorf("backup: connecting to primary: %w", err)
	}
	conn, err := net.DialTimeout("tcp", b.replAddr, b.timeout)
	if err != nil {
		return fmt.Errorf("backup: connecting to primary: %w", err)
	}
	conn = b.faults.Conn("backup.conn", conn)
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.monitor(conn)
	}()
	return nil
}

// monitor consumes the replication stream; when it breaks or goes silent,
// the backup promotes itself.
func (b *Backup) monitor(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)
	dec := json.NewDecoder(br)
	for {
		select {
		case <-b.stopped:
			return
		default:
		}
		if err := conn.SetReadDeadline(time.Now().Add(b.timeout)); err != nil {
			b.takeover()
			return
		}
		var msg replMessage
		if err := dec.Decode(&msg); err != nil {
			// Stream broken or heartbeat missed: the primary is dead.
			b.takeover()
			return
		}
		if msg.Type == "snapshot" {
			b.mu.Lock()
			b.lastState = msg
			b.mu.Unlock()
		}
	}
}

// StateReceived reports whether at least one full snapshot has landed —
// the point after which a takeover can restore state.
func (b *Backup) StateReceived() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastState.Cluster != nil
}

// takeover rebuilds the distributor from replicated state via promote.
func (b *Backup) takeover() {
	select {
	case <-b.stopped:
		return // deliberate shutdown, not a failure
	default:
	}
	b.mu.Lock()
	state := b.lastState
	b.mu.Unlock()

	defer close(b.done)
	if state.Cluster == nil {
		b.setErr(errors.New("backup: no replicated state at takeover"))
		return
	}
	table := urltable.New(urltable.Options{CacheEntries: 1024})
	if err := RestoreTable(table, state); err != nil {
		b.setErr(fmt.Errorf("backup: restoring table: %w", err))
		return
	}
	d, err := b.promote(table, *state.Cluster)
	if err != nil {
		b.setErr(fmt.Errorf("backup: promote: %w", err))
		return
	}
	// Restore the replicated mapping entries for observability; the
	// underlying client TCP connections died with the primary, so these
	// entries represent connections the clients must re-establish.
	restored := make([]conntrack.Entry, 0, len(state.Mapping))
	for _, m := range state.Mapping {
		restored = append(restored, conntrack.Entry{
			Key:      conntrack.ClientKey{IP: m.IP, Port: m.Port},
			State:    conntrack.State(m.State),
			Backend:  m.Backend,
			Requests: m.Requests,
		})
	}
	d.Mapping().Restore(restored)
	b.mu.Lock()
	b.promoted = d
	b.mu.Unlock()
}

// RestoreTable loads a replicated snapshot into table.
func RestoreTable(table *urltable.Table, msg replMessage) error {
	for _, r := range msg.Table {
		obj := contentObject(r)
		if err := table.Insert(obj, r.Locations...); err != nil {
			return err
		}
		if r.Pinned {
			if err := table.SetPinned(r.Path, true); err != nil {
				return err
			}
		}
	}
	return nil
}

// setErr records a takeover failure.
func (b *Backup) setErr(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.err = err
}

// Promoted blocks until takeover completes (or ctx-free timeout d) and
// returns the successor distributor, nil if monitoring is still healthy
// after d, or the takeover error.
func (b *Backup) Promoted(d time.Duration) (*Distributor, error) {
	select {
	case <-b.done:
	case <-time.After(d):
		return nil, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.promoted, b.err
}

// Stop ends monitoring without promoting.
func (b *Backup) Stop() {
	b.stopOnce.Do(func() { close(b.stopped) })
	b.wg.Wait()
}
