package distributor

// SLO-class admission control at the front end. When Options.Admission
// is set, every parsed request is classified (X-Dist-Class header, then
// URL-prefix rules) and passed through the per-class admission gate
// before any routing work happens. Admitted requests are stamped with a
// per-class downstream deadline (X-Dist-Deadline) so back ends can
// cancel work the client has given up on; shed requests take the
// progressive ladder — batch gets an immediate 503 + Retry-After,
// interactive degrades to the response cache's stale-on-error path when
// an expired copy is available, and only a fully saturated critical
// class sees a bare 503. With Options.Admission nil none of this code
// runs and the request path is byte-identical to an admission-free
// build.

import (
	"net"
	"time"

	"webcluster/internal/admission"
	"webcluster/internal/conntrack"
	"webcluster/internal/httpx"
	"webcluster/internal/journal"
	"webcluster/internal/respcache"
	"webcluster/internal/telemetry"
)

// Admission returns the distributor's admission controller, nil when
// overload control is disabled.
func (d *Distributor) Admission() *admission.Controller { return d.adm }

// admitRequest runs the admission decision for req. It reports the
// verdict's class (for the later Release) and, for shed verdicts,
// writes the degraded response itself: handled=true means a response
// went out and relayRequest must not continue; connOK then mirrors the
// usual keep-alive contract.
func (d *Distributor) admitRequest(client net.Conn, key conntrack.ClientKey, req *httpx.Request, sp *telemetry.Span) (class admission.Class, handled, connOK bool) {
	class = d.adm.Classify(req.Header.Get("X-Dist-Class"), req.Path)
	verdict := d.adm.Admit(class)
	d.journalAdmission(class, verdict)
	switch verdict {
	case admission.Admitted:
		if b := d.adm.DeadlineBudget(class); b > 0 {
			// In-band deadline: the client's propagated deadline (if any)
			// only ever tightens; back ends compare against their own
			// clock and cancel overdue work.
			req.TightenDeadline(time.Now().Add(b))
		}
		return class, false, true
	case admission.ShedStale:
		h, ok := d.shedToStale(client, key, req, sp)
		return class, h, ok
	default: // admission.ShedReject
		return class, true, d.writeShed(client, key, req, sp)
	}
}

// journalAdmission records admission-ladder *shifts*: the first shed
// verdict for a class after a quiet period (the ladder engaged) and the
// first admit after shedding (the class recovered). Steady-state
// requests — admitted while quiet, shed while already shedding — cost
// one atomic load and record nothing.
func (d *Distributor) journalAdmission(class admission.Class, verdict admission.Verdict) {
	if d.jnl == nil {
		return
	}
	if verdict == admission.Admitted {
		if d.shedding[class].Load() && d.shedding[class].CompareAndSwap(true, false) {
			name := class.String()
			d.jnl.Record(journal.Event{
				Actor:  journal.ActorDistributor,
				Kind:   journal.KindAdmissionRecover,
				Detail: name,
			})
		}
		return
	}
	if !d.shedding[class].Load() && d.shedding[class].CompareAndSwap(false, true) {
		name := class.String() + " " + verdict.String()
		d.jnl.Record(journal.Event{
			Actor:  journal.ActorDistributor,
			Kind:   journal.KindAdmissionShed,
			Detail: name,
		})
	}
}

// shedToStale degrades an interactive request under overload: answer
// from the response cache if any copy — fresh or expired-but-within-
// stale-window — exists, else reject. No back-end work happens on this
// path; that is the point of shedding.
func (d *Distributor) shedToStale(client net.Conn, key conntrack.ClientKey, req *httpx.Request, sp *telemetry.Span) (handled, connOK bool) {
	if d.cache != nil && cacheEligible(req) {
		start := time.Now()
		e, state := d.cache.Get(req.Path)
		sp.MarkCache()
		switch state {
		case respcache.Fresh:
			return true, d.writeCached(client, key, req, e, "HIT", start, sp)
		case respcache.Stale:
			if served, ok := d.serveStaleIfAllowed(client, key, req, e, start, sp); served {
				return true, ok
			}
		}
	}
	return true, d.writeShed(client, key, req, sp)
}

// writeShed emits the bottom rung of the ladder: 503 with a Retry-After
// hint, logged and traced like any other terminal verdict.
func (d *Distributor) writeShed(client net.Conn, key conntrack.ClientKey, req *httpx.Request, sp *telemetry.Span) bool {
	sp.MarkRoute()
	sp.SetStatus(503)
	sp.SetOutcome("shed")
	resp := httpx.NewResponse(req.Proto, 503, []byte("overloaded\n"))
	resp.Header.Set("Retry-After", d.adm.RetryAfter())
	d.logAccess(key, req, 503, len(resp.Body))
	return httpx.WriteResponse(client, resp) == nil && req.KeepAlive()
}
