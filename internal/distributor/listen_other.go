//go:build !linux

package distributor

import "net"

// listenShards opens the distributor's accept sockets. Without a portable
// SO_REUSEPORT story this platform always gets one shared listener;
// Start runs one striped accept goroutine per shard on it.
func listenShards(addr string, n int) ([]net.Listener, error) {
	return listenSingle(addr)
}
