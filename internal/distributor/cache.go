package distributor

// Front-end response cache integration. When Options.Cache is set, the
// distributor answers cacheable GET/HEAD requests from the respcache
// store instead of relaying them: fresh entries are served directly
// (zero backend round trips), expired entries are revalidated against a
// back end with a conditional GET (a 304 extends the entry without moving
// the body again), misses are fetched once per path no matter how many
// clients are waiting (singleflight), and when every replica of a path is
// down an expired copy within the stale window is served rather than a
// 502. Cache hits never touch the mapping table — no back-end connection
// is bound — so the client connection simply stays ESTABLISHED.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/conntrack"
	"webcluster/internal/content"
	"webcluster/internal/httpx"
	"webcluster/internal/respcache"
	"webcluster/internal/telemetry"
)

// Cache returns the distributor's response cache, nil when disabled.
func (d *Distributor) Cache() *respcache.Cache { return d.cache }

// registerCacheMetrics exposes the response cache's counters through the
// telemetry registry so /metrics, /debug/vars and the cluster stats plane
// include cache behaviour (hit/miss/stale/coalesce rates, residency).
func registerCacheMetrics(reg *telemetry.Registry, cache *respcache.Cache) {
	views := map[string]func(respcache.Stats) float64{
		"respcache_hits":         func(s respcache.Stats) float64 { return float64(s.Hits) },
		"respcache_misses":       func(s respcache.Stats) float64 { return float64(s.Misses) },
		"respcache_revalidated":  func(s respcache.Stats) float64 { return float64(s.Revalidated) },
		"respcache_stale_served": func(s respcache.Stats) float64 { return float64(s.StaleServed) },
		"respcache_coalesced":    func(s respcache.Stats) float64 { return float64(s.Coalesced) },
		"respcache_evictions":    func(s respcache.Stats) float64 { return float64(s.Evictions) },
		"respcache_entries":      func(s respcache.Stats) float64 { return float64(s.Entries) },
		"respcache_bytes":        func(s respcache.Stats) float64 { return float64(s.Bytes) },
	}
	for name, view := range views {
		view := view
		reg.GaugeFunc(name, func() float64 { return view(cache.Stats()) })
	}
}

// cacheEligible reports whether the request may be answered from the
// response cache: safe method, static content, no query string.
func cacheEligible(req *httpx.Request) bool {
	if req.Method != "GET" && req.Method != "HEAD" {
		return false
	}
	return req.Query == "" && !req.IsDynamic()
}

// serveFromCache attempts to answer req from the cache. handled reports
// whether a response (or terminal failure) was written to the client;
// when false the caller falls through to the normal relay path. connOK
// mirrors relayRequest's contract.
func (d *Distributor) serveFromCache(s *shard, client net.Conn, key conntrack.ClientKey, req *httpx.Request, sp *telemetry.Span) (handled, connOK bool) {
	start := time.Now()
	e, state := d.cache.Get(req.Path)
	sp.MarkCache()
	switch state {
	case respcache.Fresh:
		return true, d.writeCached(client, key, req, e, "HIT", start, sp)
	case respcache.Stale:
		if req.Method == "HEAD" {
			// HEAD carries no body either way; the relay path is cheap
			// and avoids leading a GET fetch for it
			return false, true
		}
		return d.serveStaleEntry(s, client, key, req, e, start, sp)
	default:
		if req.Method == "HEAD" {
			return false, true
		}
		return d.serveMiss(s, client, key, req, start, sp)
	}
}

// writeCached replays e to the client, honoring client conditionals
// (If-None-Match / If-Modified-Since → 304) and emitting Age plus the
// X-Dist-Cache verdict. Returns whether the client connection remains
// usable.
func (d *Distributor) writeCached(client net.Conn, key conntrack.ClientKey, req *httpx.Request, e *respcache.Entry, status string, start time.Time, sp *telemetry.Span) bool {
	routeCost := time.Since(start)
	notMod := false
	if inm := req.Header.Get("If-None-Match"); inm != "" {
		notMod = httpx.ETagMatch(inm, e.Stored.ETag)
	} else if ims := req.Header.Get("If-Modified-Since"); ims != "" && e.Stored.LastModified != "" {
		if ims == e.Stored.LastModified {
			notMod = true
		} else if t, err := httpx.ParseHTTPTime(ims); err == nil {
			if lm, lerr := httpx.ParseHTTPTime(e.Stored.LastModified); lerr == nil {
				notMod = !lm.After(t)
			}
		}
	}
	//distlint:ignore cowdiscipline ServeStored borrows the published snapshot read-only; nothing writes through the pointer
	err := httpx.ServeStored(client, &e.Stored, httpx.ServeOptions{
		Proto:       req.Proto,
		Head:        req.Method == "HEAD",
		NotModified: notMod,
		AgeSeconds:  e.AgeSeconds(d.cache.Now()),
		CacheStatus: status,
		ForceClose:  !req.KeepAlive(),
	})
	code := e.Stored.StatusCode
	sent := len(e.Stored.Body)
	if notMod {
		code, sent = 304, 0
		d.cache.CountNotModified()
	} else if req.Method == "HEAD" {
		sent = 0
	}
	procTime := time.Since(start)
	d.routed.Add(1)
	d.relayNs.Add(int64(routeCost))
	d.logAccess(key, req, code, sent)
	class := content.Classify(req.Path).String()
	sp.MarkReply()
	sp.SetClass(class)
	sp.SetStatus(code)
	sp.SetBytes(int64(sent))
	sp.SetCache(status)
	sp.SetOutcome("cached")
	cs := d.stats.Class(class)
	cs.Requests.Inc()
	cs.Bytes.Add(int64(sent))
	cs.Latency.Observe(procTime)
	return err == nil && req.KeepAlive()
}

// serveStaleIfAllowed serves an expired-but-within-stale-window entry —
// the degraded answer shared by the stale-on-error fallback (every
// replica of a path failing) and the admission controller's ShedStale
// rung (interactive requests degraded under overload). served is false
// when there is no entry to degrade to; the caller then falls through to
// its own failure path. Both call sites count the stale serve exactly
// once, here.
func (d *Distributor) serveStaleIfAllowed(client net.Conn, key conntrack.ClientKey, req *httpx.Request, stale *respcache.Entry, start time.Time, sp *telemetry.Span) (served, connOK bool) {
	if stale == nil {
		return false, true
	}
	d.cache.CountStale()
	return true, d.writeCached(client, key, req, stale, "STALE", start, sp)
}

// serveMiss handles a cache miss: join or lead the singleflight fetch for
// the path. The leader performs one backend exchange and every concurrent
// requester shares its result.
func (d *Distributor) serveMiss(s *shard, client net.Conn, key conntrack.ClientKey, req *httpx.Request, start time.Time, sp *telemetry.Span) (handled, connOK bool) {
	f, leader := d.cache.BeginFlight(req.Path)
	if !leader {
		e, err := f.Wait()
		if e == nil || err != nil {
			// leader failed or the response was uncacheable: relay
			return false, true
		}
		sp.MarkCache() // waited on the flight leader
		return true, d.writeCached(client, key, req, e, "HIT", start, sp)
	}
	// double-check after winning the flight: a previous leader may have
	// filled the entry between our Get miss and BeginFlight
	if e, st := d.cache.Get(req.Path); st == respcache.Fresh {
		f.Finish(e, nil)
		return true, d.writeCached(client, key, req, e, "HIT", start, sp)
	}
	rec, err := d.table.Route(req.Path)
	if err != nil {
		f.Finish(nil, nil)
		return false, true // relay path emits the 404
	}
	node, err := d.pickReplica(rec, "")
	routeCost := time.Since(start)
	sp.MarkRoute()
	if err != nil {
		f.Finish(nil, err)
		return false, true // relay path emits the 503
	}
	counter := d.active[node]
	counter.Add(1)
	pc, resp, err := d.exchangeStart(s, node, req)
	counter.Add(-1)
	if err != nil {
		if alt, altErr := d.pickReplica(rec, node); altErr == nil {
			altCounter := d.active[alt]
			altCounter.Add(1)
			pc, resp, err = d.exchangeStart(s, alt, req)
			altCounter.Add(-1)
			node = alt
		}
	}
	if err != nil {
		f.Finish(nil, err)
		sp.MarkBackend()
		sp.SetStatus(502)
		sp.SetOutcome("bad-gateway")
		out := httpx.NewResponse(req.Proto, 502, []byte("backend error\n"))
		d.logAccess(key, req, 502, len(out.Body))
		_ = httpx.WriteResponse(client, out)
		return true, false
	}
	sp.MarkBackend()
	sp.SetBackend(string(node), resp.SpanID)
	if !cacheableResponse(resp, d.cache.MaxEntryBytes()) {
		f.Finish(nil, nil)
		return true, d.streamResponse(s, client, key, req, node, pc, resp, start, routeCost, sp)
	}
	e, berr := d.bufferEntry(pc, resp)
	if berr != nil {
		f.Finish(nil, berr)
		sp.SetStatus(502)
		sp.SetOutcome("bad-gateway")
		out := httpx.NewResponse(req.Proto, 502, []byte("backend error\n"))
		d.logAccess(key, req, 502, len(out.Body))
		_ = httpx.WriteResponse(client, out)
		return true, false
	}
	f.Finish(e, nil)
	return true, d.writeCached(client, key, req, e, "MISS", start, sp)
}

// serveStaleEntry handles an expired entry: revalidate it against a back
// end with a conditional GET (coalesced like a miss), falling back to
// stale-on-error service when no replica can answer.
func (d *Distributor) serveStaleEntry(s *shard, client net.Conn, key conntrack.ClientKey, req *httpx.Request, stale *respcache.Entry, start time.Time, sp *telemetry.Span) (handled, connOK bool) {
	f, leader := d.cache.BeginFlight(req.Path)
	if !leader {
		e, err := f.Wait()
		sp.MarkCache() // waited on the flight leader
		switch {
		case e != nil && err == nil:
			return true, d.writeCached(client, key, req, e, "HIT", start, sp)
		case err != nil:
			// no replica answered the leader; the entry is still within
			// its stale window (Get classified it Stale), so degrade
			return d.serveStaleIfAllowed(client, key, req, stale, start, sp)
		default:
			return false, true // uncacheable upstream response: relay
		}
	}
	rec, err := d.table.Route(req.Path)
	if err != nil {
		// the path left the table; never resurrect the entry
		f.Finish(nil, nil)
		return false, true
	}
	node, err := d.pickReplica(rec, "")
	routeCost := time.Since(start)
	sp.MarkRoute()
	if err != nil {
		f.Finish(nil, err)
		return d.serveStaleIfAllowed(client, key, req, stale, start, sp)
	}
	// conditional GET carrying the stored validator; a 304 means the body
	// never moves again
	rr := s.pools.AcquireRequest()
	rr.Method = "GET"
	rr.Target = req.Target
	rr.Path = req.Path
	rr.Proto = httpx.Proto11
	rr.TraceID = req.TraceID
	rr.Header.Set("If-None-Match", stale.Stored.ETag)
	counter := d.active[node]
	counter.Add(1)
	pc, resp, err := d.exchangeStart(s, node, rr)
	counter.Add(-1)
	if err != nil {
		if alt, altErr := d.pickReplica(rec, node); altErr == nil {
			altCounter := d.active[alt]
			altCounter.Add(1)
			pc, resp, err = d.exchangeStart(s, alt, rr)
			altCounter.Add(-1)
			node = alt
		}
	}
	s.pools.ReleaseRequest(rr)
	sp.MarkBackend()
	if err != nil {
		f.Finish(nil, err)
		return d.serveStaleIfAllowed(client, key, req, stale, start, sp)
	}
	sp.SetBackend(string(node), resp.SpanID)
	if resp.StatusCode == 304 {
		if serr := d.settleConn(pc, resp); serr != nil {
			f.Finish(nil, serr)
			return d.serveStaleIfAllowed(client, key, req, stale, start, sp)
		}
		// skip the refresh if an invalidation raced the exchange: the
		// waiting requesters still get the body they asked for before the
		// mutation, but the entry must not outlive the purge
		if !f.Doomed() {
			d.cache.Refresh(stale)
		}
		f.Finish(stale, nil)
		return true, d.writeCached(client, key, req, stale, "REVALIDATED", start, sp)
	}
	if !cacheableResponse(resp, d.cache.MaxEntryBytes()) {
		f.Finish(nil, nil)
		return true, d.streamResponse(s, client, key, req, node, pc, resp, start, routeCost, sp)
	}
	e, berr := d.bufferEntry(pc, resp)
	if berr != nil {
		f.Finish(nil, berr)
		return d.serveStaleIfAllowed(client, key, req, stale, start, sp)
	}
	f.Finish(e, nil)
	return true, d.writeCached(client, key, req, e, "MISS", start, sp)
}

// cacheableResponse reports whether a backend response may be stored: a
// complete 200 whose declared body fits the per-entry cap.
func cacheableResponse(resp *httpx.Response, maxBytes int64) bool {
	return resp.StatusCode == 200 && resp.ContentLength >= 0 && resp.ContentLength <= maxBytes
}

// bufferEntry drains the response body from the pooled connection into a
// new cache entry, settling the connection back into the pool.
func (d *Distributor) bufferEntry(pc *conntrack.PooledConn, resp *httpx.Response) (*respcache.Entry, error) {
	body := make([]byte, resp.ContentLength)
	if _, err := io.ReadFull(pc.Reader, body); err != nil {
		d.pool.Discard(pc)
		return nil, fmt.Errorf("buffering cacheable body: %w", err)
	}
	if err := d.settleConn(pc, resp); err != nil {
		return nil, err
	}
	st := httpx.Stored{
		StatusCode:   resp.StatusCode,
		ContentType:  resp.Header.Get("Content-Type"),
		ETag:         resp.Header.Get("Etag"),
		LastModified: resp.Header.Get("Last-Modified"),
		Date:         resp.Header.Get("Date"),
		Body:         body,
	}
	// back ends that predate validators still get strong ones here, so
	// client conditionals and later revalidation work for every entry
	if st.ETag == "" {
		st.ETag = httpx.StrongETag(body)
	}
	if st.Date == "" {
		st.Date = httpx.CurrentDate()
	}
	return respcache.NewEntry(st, d.cache.Now(), d.cache.FreshFor()), nil
}

// settleConn clears the exchange deadline and returns the pooled
// connection for reuse (or discards it when the back end asked to close).
func (d *Distributor) settleConn(pc *conntrack.PooledConn, resp *httpx.Response) error {
	if d.exchangeTimeout > 0 {
		if err := pc.Conn.SetDeadline(time.Time{}); err != nil {
			d.pool.Discard(pc)
			return fmt.Errorf("clearing deadline: %w", err)
		}
	}
	if resp.KeepAlive() {
		d.pool.Release(pc)
	} else {
		d.pool.Discard(pc)
	}
	return nil
}

// streamResponse relays resp's body from the pooled back-end connection
// to the client and records the exchange, exactly as the non-cached relay
// path does (it is that path's tail, shared with the cache's uncacheable
// fallbacks). Returns whether the client connection remains usable.
func (d *Distributor) streamResponse(s *shard, client net.Conn, key conntrack.ClientKey, req *httpx.Request, node config.NodeID, pc *conntrack.PooledConn, resp *httpx.Response, start time.Time, routeCost time.Duration, sp *telemetry.Span) bool {
	relayed, relayErr := s.pools.RelayResponse(client, resp, pc.Reader, req.Proto, !req.KeepAlive())
	if relayErr != nil {
		// The header already reached the client, so the exchange cannot
		// be retried; the back-end connection has lost framing either
		// way. Reset the mapping (caller) and drop both connections.
		d.pool.Discard(pc)
		if errors.Is(relayErr, httpx.ErrBodyTruncated) {
			d.truncations.Add(1)
		}
		sp.MarkReply()
		sp.SetStatus(resp.StatusCode)
		sp.SetBytes(relayed)
		sp.SetOutcome("relay-error")
		d.logAccess(key, req, resp.StatusCode, int(relayed))
		return false
	}
	if d.exchangeTimeout > 0 {
		if err := pc.Conn.SetDeadline(time.Time{}); err != nil {
			d.pool.Discard(pc)
			return false
		}
	}
	if resp.KeepAlive() {
		d.pool.Release(pc)
	} else {
		d.pool.Discard(pc)
	}
	procTime := time.Since(start)
	d.routed.Add(1)
	d.relayNs.Add(int64(routeCost))
	d.logAccess(key, req, resp.StatusCode, int(relayed))
	class := content.Classify(req.Path)
	d.tracker.Record(node, class, procTime)
	sp.MarkReply()
	sp.SetClass(class.String())
	sp.SetStatus(resp.StatusCode)
	sp.SetBytes(relayed)
	sp.SetOutcome("relayed")
	cs := d.stats.Class(class.String())
	cs.Requests.Inc()
	cs.Bytes.Add(relayed)
	cs.Latency.Observe(procTime)
	if resp.StatusCode >= 400 {
		cs.Errors.Inc()
	}
	return true
}
