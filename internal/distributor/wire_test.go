package distributor

import (
	"encoding/json"
	"reflect"
	"testing"

	"webcluster/internal/config"
	"webcluster/internal/urltable"
)

// TestReplMessageGoldenWireFormat pins the replication wire format: a
// primary and a backup from different builds must agree on it, so any
// field rename or type change fails here before it breaks takeover.
func TestReplMessageGoldenWireFormat(t *testing.T) {
	msg := replMessage{
		Type: "snapshot",
		Cluster: &config.ClusterSpec{
			DistributorCPUMHz: 350,
			Nodes: []config.NodeSpec{{
				ID: "n1", CPUMHz: 350, MemoryMB: 64,
				Disk: config.DiskSCSI, Platform: config.LinuxApache,
				Addr: "127.0.0.1:9001",
			}},
		},
		Table: []snapshotRecord{{
			Path: "/a.html", Size: 12, Class: 1, Priority: 2,
			Pinned: true, Hits: 7, Locations: []config.NodeID{"n1"},
		}},
		Mapping: []snapshotMapping{{
			IP: "10.0.0.9", Port: 4242, State: 3,
			Backend: "n1", Requests: 5,
		}},
	}
	got, err := json.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	golden := `{"type":"snapshot",` +
		`"cluster":{"distributorCPUMHz":350,"nodes":[{"id":"n1","cpuMHz":350,"memoryMB":64,"diskGB":0,"disk":"SCSI","platform":"Linux/Apache","addr":"127.0.0.1:9001"}]},` +
		`"table":[{"path":"/a.html","size":12,"class":1,"priority":2,"pinned":true,"hits":7,"locations":["n1"]}],` +
		`"mapping":[{"ip":"10.0.0.9","port":4242,"state":3,"backend":"n1","requests":5}]}`
	if string(got) != golden {
		t.Fatalf("wire format drifted:\n got: %s\nwant: %s", got, golden)
	}
}

// TestReplMessageRoundTrip: decode(encode(msg)) == msg for snapshots and
// heartbeats, including omitted optional fields.
func TestReplMessageRoundTrip(t *testing.T) {
	cases := []replMessage{
		{Type: "hb"},
		{
			Type:    "snapshot",
			Cluster: &config.ClusterSpec{DistributorCPUMHz: 200},
			Table: []snapshotRecord{
				{Path: "/x", Size: 1, Class: 2, Locations: []config.NodeID{"a", "b"}},
				{Path: "/y", Size: 0, Class: 5, Priority: 1, Hits: 3},
			},
			Mapping: []snapshotMapping{
				{IP: "1.2.3.4", Port: 1, State: 6, Backend: "a"},
			},
		},
	}
	for _, in := range cases {
		data, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		var out replMessage
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip changed message:\n in: %+v\nout: %+v", in, out)
		}
	}
}

// TestRestoreTableFromWire: a decoded snapshot restores the URL table
// with locations, pins and objects intact (the takeover path).
func TestRestoreTableFromWire(t *testing.T) {
	raw := `{"type":"snapshot","cluster":{"distributorCPUMHz":350,"nodes":[]},` +
		`"table":[{"path":"/p.html","size":9,"class":1,"priority":0,"pinned":true,"hits":2,"locations":["n1","n2"]}]}`
	var msg replMessage
	if err := json.Unmarshal([]byte(raw), &msg); err != nil {
		t.Fatal(err)
	}
	table := urltable.New(urltable.Options{CacheEntries: 16})
	if err := RestoreTable(table, msg); err != nil {
		t.Fatal(err)
	}
	rec, err := table.Lookup("/p.html")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Locations) != 2 || !rec.Pinned {
		t.Fatalf("restored record = %+v", rec)
	}
}
