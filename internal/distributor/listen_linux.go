//go:build linux

package distributor

import (
	"context"
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT; the legacy syscall package predates it, so
// the constant is defined here (linux-only file, value is ABI-stable).
const soReusePort = 0xf

// listenShards opens the distributor's accept sockets. With n > 1 it
// binds n SO_REUSEPORT listeners to the same address so the kernel hashes
// incoming connections across them (one accept queue per shard, no
// thundering herd, no cross-CPU handoff at accept time). An ephemeral
// ":0" request binds the first listener ephemerally and the rest to the
// concrete port it got. If the REUSEPORT group cannot be assembled (old
// kernel, exotic socket type) it degrades to a single shared listener —
// Start then runs striped accept loops instead.
func listenShards(addr string, n int) ([]net.Listener, error) {
	if n <= 1 {
		l, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		return []net.Listener{l}, nil
	}
	lc := net.ListenConfig{Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		if err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		}); err != nil {
			return err
		}
		return serr
	}}
	first, err := lc.Listen(context.Background(), "tcp", addr)
	if err != nil {
		return listenSingle(addr)
	}
	listeners := []net.Listener{first}
	concrete := first.Addr().String()
	for i := 1; i < n; i++ {
		l, err := lc.Listen(context.Background(), "tcp", concrete)
		if err != nil {
			for _, prev := range listeners {
				_ = prev.Close()
			}
			return listenSingle(addr)
		}
		listeners = append(listeners, l)
	}
	return listeners, nil
}
