package distributor

import (
	"errors"
	"net"
	"testing"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/faults"
	"webcluster/internal/urltable"
)

// TestBackupStartDialFault: a refuse rule on "backup.dial" must fail
// Start with the injected error before any connection is attempted, so
// chaos tests can exercise an unreachable primary at connect time.
func TestBackupStartDialFault(t *testing.T) {
	// A live listener proves the failure comes from the injector, not
	// from the network.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()

	in := faults.New(1)
	in.Set("backup.dial", faults.Rule{Refuse: true})

	b := NewBackup(l.Addr().String(), time.Second, func(*urltable.Table, config.ClusterSpec) (*Distributor, error) {
		return nil, nil
	})
	b.SetFaults(in)
	err = b.Start()
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("Start = %v, want ErrInjected", err)
	}
	b.Stop()
}
