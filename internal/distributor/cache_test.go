package distributor

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"webcluster/internal/backend"
	"webcluster/internal/httpx"
	"webcluster/internal/respcache"
)

// withCache returns a startClusterOpts tweak enabling the response cache.
func withCache(c *respcache.Cache) func(*Options) {
	return func(o *Options) { o.Cache = c }
}

// backendRequests sums the html-class request counters across backends —
// the number of round trips that actually reached a back end.
func (tc *testCluster) backendRequests() int64 {
	var n int64
	for _, srv := range tc.backends {
		n += srv.Stats().Class("html").Requests.Value()
	}
	return n
}

// fetchHdr issues one request with extra header pairs on a fresh
// connection and returns the parsed response.
func fetchHdr(t *testing.T, addr, method, path string, hdr ...string) *httpx.Response {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	pairs := append([]string{"Host", "c", "Connection", "close"}, hdr...)
	req := &httpx.Request{
		Method: method, Target: path, Path: path,
		Proto: httpx.Proto11, Header: httpx.NewHeader(pairs...),
	}
	if err := httpx.WriteRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestCacheHitSkipsBackend(t *testing.T) {
	rc := respcache.New(respcache.Options{FreshTTL: time.Hour})
	tc := startClusterOpts(t, 2, withCache(rc))
	body := []byte("<html>hot content</html>")
	tc.place(t, "/hot.html", body, "n1")

	resp := fetch(t, tc.front, "/hot.html", httpx.Proto11)
	if resp.StatusCode != 200 || !bytes.Equal(resp.Body, body) {
		t.Fatalf("miss fetch: status=%d body=%q", resp.StatusCode, resp.Body)
	}
	if got := resp.Header.Get("X-Dist-Cache"); got != "MISS" {
		t.Fatalf("first fetch verdict = %q, want MISS", got)
	}
	if resp.Header.Get("Etag") == "" || resp.Header.Get("Date") == "" {
		t.Fatal("cached response missing validators")
	}
	before := tc.backendRequests()
	for i := 0; i < 5; i++ {
		resp = fetch(t, tc.front, "/hot.html", httpx.Proto11)
		if resp.StatusCode != 200 || !bytes.Equal(resp.Body, body) {
			t.Fatalf("hit fetch %d: status=%d body=%q", i, resp.StatusCode, resp.Body)
		}
		if got := resp.Header.Get("X-Dist-Cache"); got != "HIT" {
			t.Fatalf("hit fetch %d verdict = %q", i, got)
		}
		if resp.Header.Get("Age") == "" {
			t.Fatalf("hit fetch %d missing Age", i)
		}
	}
	if after := tc.backendRequests(); after != before {
		t.Fatalf("cache hits reached a back end: %d round trips", after-before)
	}
	if st := rc.Stats(); st.Hits < 5 || st.Fills != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

func TestCacheClientConditional(t *testing.T) {
	rc := respcache.New(respcache.Options{FreshTTL: time.Hour})
	tc := startClusterOpts(t, 1, withCache(rc))
	body := []byte("<html>conditional</html>")
	tc.place(t, "/cond.html", body, "n1")

	warm := fetch(t, tc.front, "/cond.html", httpx.Proto11)
	etag := warm.Header.Get("Etag")
	if etag == "" {
		t.Fatal("no Etag to condition on")
	}
	resp := fetchHdr(t, tc.front, "GET", "/cond.html", "If-None-Match", etag)
	if resp.StatusCode != 304 {
		t.Fatalf("matching If-None-Match: status = %d", resp.StatusCode)
	}
	if len(resp.Body) != 0 {
		t.Fatalf("304 carried a body: %q", resp.Body)
	}
	if resp.Header.Get("Etag") != etag {
		t.Fatal("304 lost the validator")
	}
	// a mismatched validator gets the full representation
	resp = fetchHdr(t, tc.front, "GET", "/cond.html", "If-None-Match", `"stale-tag"`)
	if resp.StatusCode != 200 || !bytes.Equal(resp.Body, body) {
		t.Fatalf("mismatched If-None-Match: status=%d body=%q", resp.StatusCode, resp.Body)
	}
	if st := rc.Stats(); st.NotModified != 1 {
		t.Fatalf("notModified = %d, want 1", st.NotModified)
	}
}

func TestCacheHEADHit(t *testing.T) {
	rc := respcache.New(respcache.Options{FreshTTL: time.Hour})
	tc := startClusterOpts(t, 1, withCache(rc))
	body := []byte("<html>head me</html>")
	tc.place(t, "/head.html", body, "n1")
	fetch(t, tc.front, "/head.html", httpx.Proto11) // warm

	conn, err := net.Dial("tcp", tc.front)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	req := &httpx.Request{
		Method: "HEAD", Target: "/head.html", Path: "/head.html",
		Proto: httpx.Proto11, Header: httpx.NewHeader("Host", "c", "Connection", "close"),
	}
	if err := httpx.WriteRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	if !strings.Contains(out, "X-Dist-Cache: HIT") {
		t.Fatalf("HEAD not served from cache:\n%s", out)
	}
	if !strings.Contains(out, fmt.Sprintf("Content-Length: %d", len(body))) {
		t.Fatalf("HEAD lost the representation length:\n%s", out)
	}
	if strings.Contains(out, "head me") {
		t.Fatalf("HEAD carried a body:\n%s", out)
	}
}

func TestCacheCoalescedMiss(t *testing.T) {
	rc := respcache.New(respcache.Options{FreshTTL: time.Hour})
	tc := startClusterOpts(t, 1, withCache(rc))
	body := []byte("<html>one fetch to rule them all</html>")
	tc.place(t, "/surge.html", body, "n1")
	// slow the backend down so every concurrent requester arrives while
	// the leader's fetch is still in flight
	tc.backends["n1"].SetDelay(func(backend.ServedRequest) time.Duration {
		return 150 * time.Millisecond
	})

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", tc.front)
			if err != nil {
				errs <- err
				return
			}
			defer func() { _ = conn.Close() }()
			req := &httpx.Request{
				Method: "GET", Target: "/surge.html", Path: "/surge.html",
				Proto: httpx.Proto11, Header: httpx.NewHeader("Host", "c", "Connection", "close"),
			}
			if err := httpx.WriteRequest(conn, req); err != nil {
				errs <- err
				return
			}
			resp, err := httpx.ReadResponse(bufio.NewReader(conn))
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != 200 || !bytes.Equal(resp.Body, body) {
				errs <- fmt.Errorf("status=%d body=%q", resp.StatusCode, resp.Body)
				return
			}
			if v := resp.Header.Get("X-Dist-Cache"); v != "HIT" && v != "MISS" {
				errs <- fmt.Errorf("verdict = %q", v)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := tc.backendRequests(); got != 1 {
		t.Fatalf("%d concurrent misses made %d backend fetches, want 1", clients, got)
	}
}

func TestCacheRevalidation(t *testing.T) {
	rc := respcache.New(respcache.Options{FreshTTL: 50 * time.Millisecond, StaleTTL: time.Hour})
	tc := startClusterOpts(t, 1, withCache(rc))
	body := []byte("<html>unchanged upstream</html>")
	tc.place(t, "/reval.html", body, "n1")

	fetch(t, tc.front, "/reval.html", httpx.Proto11) // fill
	time.Sleep(120 * time.Millisecond)               // let freshness lapse

	resp := fetch(t, tc.front, "/reval.html", httpx.Proto11)
	if resp.StatusCode != 200 || !bytes.Equal(resp.Body, body) {
		t.Fatalf("revalidated fetch: status=%d body=%q", resp.StatusCode, resp.Body)
	}
	if got := resp.Header.Get("X-Dist-Cache"); got != "REVALIDATED" {
		t.Fatalf("verdict = %q, want REVALIDATED (backend should have 304'd)", got)
	}
	// the refresh restored freshness: the next fetch is a plain hit
	resp = fetch(t, tc.front, "/reval.html", httpx.Proto11)
	if got := resp.Header.Get("X-Dist-Cache"); got != "HIT" {
		t.Fatalf("post-revalidation verdict = %q", got)
	}
	if st := rc.Stats(); st.Revalidated != 1 {
		t.Fatalf("revalidated = %d, want 1", st.Revalidated)
	}
}

func TestCacheStaleOnError(t *testing.T) {
	rc := respcache.New(respcache.Options{FreshTTL: 50 * time.Millisecond, StaleTTL: time.Hour})
	tc := startClusterOpts(t, 2, withCache(rc))
	body := []byte("<html>last known good</html>")
	tc.place(t, "/fragile.html", body, "n1", "n2")

	fetch(t, tc.front, "/fragile.html", httpx.Proto11) // fill
	time.Sleep(120 * time.Millisecond)                 // expire
	for _, srv := range tc.backends {                  // every replica down
		_ = srv.Close()
	}

	resp := fetch(t, tc.front, "/fragile.html", httpx.Proto11)
	if resp.StatusCode != 200 || !bytes.Equal(resp.Body, body) {
		t.Fatalf("stale-on-error: status=%d body=%q", resp.StatusCode, resp.Body)
	}
	if got := resp.Header.Get("X-Dist-Cache"); got != "STALE" {
		t.Fatalf("verdict = %q, want STALE", got)
	}
	if st := rc.Stats(); st.StaleServed == 0 {
		t.Fatalf("staleServed = 0: %+v", st)
	}
}

func TestCacheInvalidateNeverServesOldBody(t *testing.T) {
	rc := respcache.New(respcache.Options{FreshTTL: time.Hour})
	tc := startClusterOpts(t, 1, withCache(rc))
	v1 := []byte("<html>version one</html>")
	v2 := []byte("<html>version two, longer</html>")
	tc.place(t, "/mut.html", v1, "n1")

	fetch(t, tc.front, "/mut.html", httpx.Proto11) // cache v1

	// the management-plane mutation: new content lands on the back end,
	// then the cache entry is purged
	if err := tc.backends["n1"].Store().Delete("/mut.html"); err != nil {
		t.Fatal(err)
	}
	if err := tc.backends["n1"].Store().Put("/mut.html", v2); err != nil {
		t.Fatal(err)
	}
	tc.backends["n1"].InvalidateCache("/mut.html")
	if n := rc.Invalidate("/mut.html"); n != 1 {
		t.Fatalf("Invalidate dropped %d entries", n)
	}

	resp := fetch(t, tc.front, "/mut.html", httpx.Proto11)
	if !bytes.Equal(resp.Body, v2) {
		t.Fatalf("post-purge fetch returned %q, want the new body", resp.Body)
	}
	if got := resp.Header.Get("X-Dist-Cache"); got != "MISS" {
		t.Fatalf("post-purge verdict = %q", got)
	}
}

func TestCacheUncacheableStreams(t *testing.T) {
	// per-entry cap below the object size: the miss path must stream the
	// response through the normal relay instead of buffering it
	rc := respcache.New(respcache.Options{FreshTTL: time.Hour, MaxEntryBytes: 64})
	tc := startClusterOpts(t, 1, withCache(rc))
	body := bytes.Repeat([]byte("x"), 512)
	tc.place(t, "/large.html", body, "n1")

	for i := 0; i < 3; i++ {
		resp := fetch(t, tc.front, "/large.html", httpx.Proto11)
		if resp.StatusCode != 200 || !bytes.Equal(resp.Body, body) {
			t.Fatalf("fetch %d: status=%d len=%d", i, resp.StatusCode, len(resp.Body))
		}
		if v := resp.Header.Get("X-Dist-Cache"); v != "" {
			t.Fatalf("uncacheable response carried a cache verdict %q", v)
		}
	}
	// every fetch reached a back end; nothing was stored
	if got := tc.backendRequests(); got != 3 {
		t.Fatalf("backend round trips = %d, want 3", got)
	}
	if st := rc.Stats(); st.Entries != 0 {
		t.Fatalf("uncacheable body stored: %+v", st)
	}
}

func TestCacheDynamicBypassed(t *testing.T) {
	rc := respcache.New(respcache.Options{FreshTTL: time.Hour})
	tc := startClusterOpts(t, 1, withCache(rc))
	tc.backends["n1"].HandleFunc("/cgi-bin/now", func(*httpx.Request) ([]byte, float64, error) {
		return []byte("dynamic"), 0, nil
	})
	tc.place(t, "/cgi-bin/now", []byte("#!script\n"), "n1")

	for i := 0; i < 2; i++ {
		resp := fetch(t, tc.front, "/cgi-bin/now", httpx.Proto11)
		if resp.StatusCode != 200 {
			t.Fatalf("dynamic fetch %d: status=%d", i, resp.StatusCode)
		}
		if v := resp.Header.Get("X-Dist-Cache"); v != "" {
			t.Fatalf("dynamic response cached: verdict %q", v)
		}
	}
}
