package distributor

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"webcluster/internal/backend"
	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/httpx"
	"webcluster/internal/loadbal"
	"webcluster/internal/nfs"
	"webcluster/internal/trace"
	"webcluster/internal/urltable"
)

func TestSetAvailableExcludesNode(t *testing.T) {
	tc := startCluster(t, 2)
	tc.place(t, "/dual.html", []byte("x"), "n1", "n2")
	tc.dist.SetAvailable("n1", false)
	for i := 0; i < 10; i++ {
		resp := fetch(t, tc.front, "/dual.html", httpx.Proto11)
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Served-By"); got != "n2" {
			t.Fatalf("served by %s with n1 down", got)
		}
	}
	// Recovery restores routing.
	tc.dist.SetAvailable("n1", true)
	if !tc.dist.Available("n1") {
		t.Fatal("availability not restored")
	}
}

func TestAllReplicasDown503(t *testing.T) {
	tc := startCluster(t, 1)
	tc.place(t, "/a.html", []byte("x"), "n1")
	tc.dist.SetAvailable("n1", false)
	resp := fetch(t, tc.front, "/a.html", httpx.Proto11)
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

func TestFailoverToSecondReplicaOnDeadBackend(t *testing.T) {
	tc := startCluster(t, 2)
	tc.place(t, "/dual.html", []byte("survivor"), "n1", "n2")
	// Kill n1's web server outright: the distributor's pooled
	// connections to it break mid-exchange.
	_ = tc.backends["n1"].Close()

	ok := 0
	for i := 0; i < 10; i++ {
		resp := fetch(t, tc.front, "/dual.html", httpx.Proto11)
		if resp.StatusCode == 200 {
			if got := resp.Header.Get("X-Served-By"); got != "n2" {
				t.Fatalf("served by %s after n1 died", got)
			}
			ok++
		}
	}
	// Every request must succeed: picks of n1 fail over to n2 within
	// the same request.
	if ok != 10 {
		t.Fatalf("only %d/10 requests survived the node failure", ok)
	}
}

func TestDeadSoleReplica502(t *testing.T) {
	tc := startCluster(t, 2)
	tc.place(t, "/single.html", []byte("x"), "n1")
	_ = tc.backends["n1"].Close()
	resp := fetch(t, tc.front, "/single.html", httpx.Proto11)
	if resp.StatusCode != 502 {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
}

func TestRecoveryAfterRestartWindow(t *testing.T) {
	tc := startCluster(t, 2)
	tc.place(t, "/dual.html", []byte("x"), "n1", "n2")
	tc.dist.SetAvailable("n2", false)
	resp := fetch(t, tc.front, "/dual.html", httpx.Proto11)
	if resp.Header.Get("X-Served-By") != "n1" {
		t.Fatalf("served by %s", resp.Header.Get("X-Served-By"))
	}
	tc.dist.SetAvailable("n2", true)
	// Both nodes routable again: hammer and confirm no errors.
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		resp := fetch(t, tc.front, "/dual.html", httpx.Proto11)
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d after recovery", resp.StatusCode)
		}
	}
}

func TestLoadAwarePickerUsesPublishedLoads(t *testing.T) {
	tc := startCluster(t, 2)
	tc.place(t, "/dual.html", []byte("x"), "n1", "n2")
	// Swap in the load-aware picker and publish loads marking n1 hot.
	tc.dist.UpdateLoads(map[config.NodeID]float64{"n1": 50, "n2": 1})
	// Rebuild with LeastLoad: easier to construct a dedicated cluster.
	table := tc.table
	spec := tc.spec
	dist2, err := New(Options{
		Table:   table,
		Cluster: spec,
		Picker:  loadbal.LeastLoad{},
	})
	if err != nil {
		t.Fatal(err)
	}
	front2, err := dist2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dist2.Close() }()
	dist2.UpdateLoads(map[config.NodeID]float64{"n1": 50, "n2": 1})
	for i := 0; i < 8; i++ {
		resp := fetch(t, front2, "/dual.html", httpx.Proto11)
		if got := resp.Header.Get("X-Served-By"); got != "n2" {
			t.Fatalf("load-aware pick served by %s", got)
		}
	}
}

func TestAccessLogRecordsAndReplays(t *testing.T) {
	tc := startCluster(t, 2)
	tc.place(t, "/logged.html", []byte("hello"), "n1", "n2")

	// A second distributor over the same backends, with an access log.
	var logBuf syncBuffer
	dist, err := New(Options{
		Table:     tc.table,
		Cluster:   tc.spec,
		AccessLog: &logBuf,
	})
	if err != nil {
		t.Fatal(err)
	}
	front, err := dist.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dist.Close() }()

	for i := 0; i < 5; i++ {
		resp := fetch(t, front, "/logged.html", httpx.Proto11)
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}
	_ = fetch(t, front, "/missing.html", httpx.Proto11) // a 404 line

	entries, err := trace.Read(strings.NewReader(logBuf.String()))
	if err != nil {
		t.Fatalf("parsing access log: %v\nlog:\n%s", err, logBuf.String())
	}
	if len(entries) != 6 {
		t.Fatalf("log entries = %d, want 6", len(entries))
	}
	okCount, notFound := 0, 0
	for _, e := range entries {
		switch e.Status {
		case 200:
			okCount++
			if e.Bytes != 5 {
				t.Fatalf("logged bytes = %d", e.Bytes)
			}
		case 404:
			notFound++
		}
	}
	if okCount != 5 || notFound != 1 {
		t.Fatalf("statuses: %d ok, %d notfound", okCount, notFound)
	}

	// Replay the recorded trace against the same front end: statuses
	// must reproduce exactly.
	report, err := trace.Replay(entries, trace.ReplayOptions{Addr: front, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests != 6 || report.Errors != 0 || report.StatusMismatches != 0 {
		t.Fatalf("replay report = %+v", report)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the access log.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestLiveNFSConfiguration(t *testing.T) {
	// Configuration 2 end to end over real sockets: content lives on a
	// shared file server; web nodes have no local copies; an L4-style
	// all-nodes URL table entry routes anywhere and every node can still
	// serve by fetching remotely.
	sharedStore := &backend.MemStore{}
	_ = sharedStore.Put("/shared/page.html", []byte("from the file server"))
	fileServer := nfs.NewServer(sharedStore)
	nfsAddr, err := fileServer.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = fileServer.Close() }()

	spec := config.ClusterSpec{DistributorCPUMHz: 350}
	for i := 0; i < 2; i++ {
		id := config.NodeID(fmt.Sprintf("web%d", i+1))
		client := nfs.Dial(nfsAddr)
		defer func() { _ = client.Close() }()
		srv, err := backend.NewServer(backend.ServerOptions{
			Spec: config.NodeSpec{
				ID: id, CPUMHz: 350, MemoryMB: 64,
				Disk: config.DiskSCSI, Platform: config.LinuxApache,
			},
			Store: nfs.NewRemoteStore(client),
		})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = srv.Close() }()
		spec.Nodes = append(spec.Nodes, config.NodeSpec{
			ID: id, CPUMHz: 350, MemoryMB: 64,
			Disk: config.DiskSCSI, Platform: config.LinuxApache, Addr: addr,
		})
	}

	table := urltable.New(urltable.Options{})
	obj := content.Object{Path: "/shared/page.html", Size: 20, Class: content.ClassHTML}
	if err := table.Insert(obj, "web1", "web2"); err != nil {
		t.Fatal(err)
	}
	dist, err := New(Options{Table: table, Cluster: spec})
	if err != nil {
		t.Fatal(err)
	}
	front, err := dist.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dist.Close() }()

	for i := 0; i < 4; i++ {
		resp := fetch(t, front, "/shared/page.html", httpx.Proto11)
		if resp.StatusCode != 200 || string(resp.Body) != "from the file server" {
			t.Fatalf("resp = %d %q", resp.StatusCode, resp.Body)
		}
	}
	if fileServer.Requests.Value() == 0 {
		t.Fatal("file server never consulted")
	}
	// Web-node page caches absorb repeats: far fewer NFS fetches than
	// client requests.
	if fileServer.Requests.Value() > 3 {
		t.Fatalf("NFS fetches = %d, want ≤ node count (page-cached)", fileServer.Requests.Value())
	}
}
