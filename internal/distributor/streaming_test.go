package distributor

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/faults"
	"webcluster/internal/httpx"
	"webcluster/internal/testutil"
	"webcluster/internal/urltable"
)

// TestRelayTruncationOnContentLengthMismatch: a back end that advertises
// more body than it delivers must surface as a relay truncation — the
// client connection is cut (it already saw the too-long Content-Length),
// the truncation counter increments, and the mapping entry is torn down
// through EventReset rather than leaking.
func TestRelayTruncationOnContentLengthMismatch(t *testing.T) {
	testutil.NoLeaks(t)
	// A liar back end: correct header, 100-byte promise, 5-byte body.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer func() { _ = c.Close() }()
				if _, err := httpx.ReadRequest(bufio.NewReader(c)); err != nil {
					return
				}
				_, _ = io.WriteString(c, "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort")
			}(conn)
		}
	}()

	table := urltable.New(urltable.Options{CacheEntries: 8})
	spec := config.ClusterSpec{
		DistributorCPUMHz: 350,
		Nodes: []config.NodeSpec{{
			ID: "liar", CPUMHz: 350, MemoryMB: 64,
			Disk: config.DiskSCSI, Platform: config.LinuxApache,
			Addr: l.Addr().String(),
		}},
	}
	obj := content.Object{Path: "/x.html", Size: 100, Class: content.Classify("/x.html")}
	if err := table.Insert(obj, "liar"); err != nil {
		t.Fatal(err)
	}
	dist, err := New(Options{Table: table, Cluster: spec, PreforkPerNode: 1})
	if err != nil {
		t.Fatal(err)
	}
	front, err := dist.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dist.Close() })

	conn, err := net.Dial("tcp", front)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	req := &httpx.Request{
		Method: "GET", Target: "/x.html", Path: "/x.html",
		Proto: httpx.Proto11, Header: httpx.NewHeader("Connection", "close"),
	}
	if err := httpx.WriteRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := httpx.ReadResponse(bufio.NewReader(conn)); err == nil {
		t.Fatal("client read a complete response from a truncated relay")
	}

	testutil.Eventually(t, 2*time.Second, func() bool {
		if dist.RelayTruncations() != 1 {
			return false
		}
		installed, deleted, _ := dist.Mapping().Counts()
		return installed >= 1 && deleted == installed
	}, "truncations = %d, mapping not reset", dist.RelayTruncations())
}

// TestClientDisconnectMidBody: a client that walks away while a large
// body is streaming must not be misreported as a back-end truncation, and
// the distributor keeps serving new connections afterwards.
func TestClientDisconnectMidBody(t *testing.T) {
	tc := startCluster(t, 1)
	big := bytes.Repeat([]byte("b"), 4<<20)
	tc.place(t, "/big.bin", big, "n1")
	tc.place(t, "/after.html", []byte("still here"), "n1")

	conn, err := net.Dial("tcp", tc.front)
	if err != nil {
		t.Fatal(err)
	}
	req := &httpx.Request{
		Method: "GET", Target: "/big.bin", Path: "/big.bin",
		Proto: httpx.Proto11, Header: httpx.NewHeader("Host", "c"),
	}
	if err := httpx.WriteRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	// Read just the start of the response, then vanish mid-body.
	buf := make([]byte, 4096)
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()

	// The write failure tears down the client mapping but is not a
	// back-end truncation.
	testutil.Eventually(t, 5*time.Second, func() bool {
		installed, deleted, _ := tc.dist.Mapping().Counts()
		return installed >= 1 && deleted == installed
	}, "mapping not cleaned after client disconnect")
	if n := tc.dist.RelayTruncations(); n != 0 {
		t.Fatalf("client disconnect counted as %d backend truncations", n)
	}
	resp := fetch(t, tc.front, "/after.html", httpx.Proto11)
	if resp.StatusCode != 200 || string(resp.Body) != "still here" {
		t.Fatalf("post-disconnect fetch = %d %q", resp.StatusCode, resp.Body)
	}
}

// TestFaultInjectedDropMidBodyResetsMapping: a drop-after-N-bytes fault on
// the pooled back-end connection truncates the stream after the header but
// before the body completes; the error must propagate to the mapping-table
// state machine (EventReset → entry deleted) and count as a truncation.
func TestFaultInjectedDropMidBodyResetsMapping(t *testing.T) {
	in := faults.New(7)
	tc := startClusterOpts(t, 1, func(o *Options) {
		o.Faults = in
		o.RetryBackoff = time.Millisecond
	})
	body := bytes.Repeat([]byte("z"), 64<<10)
	tc.place(t, "/chunky.bin", body, "n1")

	// Let the request and response header through, then kill the stream
	// mid-body (the rule counts bytes in both directions).
	in.Set("pool.conn/n1", faults.Rule{DropAfterBytes: 4096})

	conn, err := net.Dial("tcp", tc.front)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	req := &httpx.Request{
		Method: "GET", Target: "/chunky.bin", Path: "/chunky.bin",
		Proto: httpx.Proto11, Header: httpx.NewHeader("Connection", "close"),
	}
	if err := httpx.WriteRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := httpx.ReadResponse(bufio.NewReader(conn)); err == nil {
		t.Fatal("client read a complete 64 KiB body through a 4 KiB drop rule")
	}

	if in.Fired("pool.conn/n1") == 0 {
		t.Fatal("drop rule never fired — test exercised nothing")
	}
	testutil.Eventually(t, 2*time.Second, func() bool {
		if tc.dist.RelayTruncations() == 0 {
			return false
		}
		installed, deleted, _ := tc.dist.Mapping().Counts()
		return installed >= 1 && deleted == installed
	}, "truncation not propagated to mapping state machine (truncations=%d)",
		tc.dist.RelayTruncations())
}

// TestNonIdempotentRequestNotRetried: a POST whose first exchange attempt
// dies must NOT be re-sent — not to another pooled connection, not to
// another replica — because its effect could apply twice. The client gets
// a 502 after exactly one backend attempt.
func TestNonIdempotentRequestNotRetried(t *testing.T) {
	attempts := make(chan struct{}, 16)
	// A back end that counts attempts and kills the connection without
	// responding.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer func() { _ = c.Close() }()
				if _, err := httpx.ReadRequest(bufio.NewReader(c)); err != nil {
					return
				}
				attempts <- struct{}{}
			}(conn)
		}
	}()

	table := urltable.New(urltable.Options{CacheEntries: 8})
	node := func(id config.NodeID) config.NodeSpec {
		return config.NodeSpec{
			ID: id, CPUMHz: 350, MemoryMB: 64,
			Disk: config.DiskSCSI, Platform: config.LinuxApache,
			Addr: l.Addr().String(),
		}
	}
	spec := config.ClusterSpec{
		DistributorCPUMHz: 350,
		Nodes:             []config.NodeSpec{node("d1"), node("d2")},
	}
	obj := content.Object{Path: "/form.cgi", Size: 1, Class: content.Classify("/form.cgi")}
	if err := table.Insert(obj, "d1", "d2"); err != nil {
		t.Fatal(err)
	}
	dist, err := New(Options{
		Table: table, Cluster: spec, PreforkPerNode: 1,
		ExchangeRetries: 3, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front, err := dist.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dist.Close() })

	conn, err := net.Dial("tcp", front)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	req := &httpx.Request{
		Method: "POST", Target: "/form.cgi", Path: "/form.cgi",
		Proto: httpx.Proto11, Header: httpx.NewHeader("Connection", "close"),
		Body: []byte("amount=100"),
	}
	if err := httpx.WriteRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 502 {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	// Drain with a grace period: any retry would have landed by now.
	time.Sleep(100 * time.Millisecond)
	if n := len(attempts); n != 1 {
		t.Fatalf("non-idempotent request sent %d times, want 1", n)
	}
}
