package distributor

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"webcluster/internal/httpx"
)

// writePipelined serializes reqs back-to-back into one buffer and sends
// it in a single Write, so every follow-up request is already sitting in
// the distributor's read buffer when it finishes the previous response —
// the shard must drain them without re-entering the accept path.
func writePipelined(t *testing.T, conn net.Conn, paths []string, lastClose bool) {
	t.Helper()
	var buf bytes.Buffer
	for i, path := range paths {
		req := &httpx.Request{
			Method: "GET", Target: path, Path: path,
			Proto: httpx.Proto11, Header: httpx.NewHeader("Host", "c"),
		}
		if lastClose && i == len(paths)-1 {
			req.Header.Set("Connection", "close")
		}
		if err := httpx.WriteRequest(&buf, req); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedRequestsInOrder: N requests written in one burst come
// back as N complete responses, in request order, on one connection.
func TestPipelinedRequestsInOrder(t *testing.T) {
	tc := startCluster(t, 1)
	const n = 6
	var paths []string
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/pipe%d.html", i)
		tc.place(t, path, []byte(fmt.Sprintf("body-%d", i)), "n1")
		paths = append(paths, path)
	}

	conn, err := net.Dial("tcp", tc.front)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	writePipelined(t, conn, paths, true)

	br := bufio.NewReader(conn)
	for i := 0; i < n; i++ {
		resp, err := httpx.ReadResponse(br)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("response %d: status %d", i, resp.StatusCode)
		}
		if want := fmt.Sprintf("body-%d", i); string(resp.Body) != want {
			t.Fatalf("response %d out of order: body %q, want %q", i, resp.Body, want)
		}
	}
}

// TestPipelinedFailoverMidPipeline: a backend dies while a burst of
// pipelined requests is queued on the client connection. The requests
// already relayed are unaffected, and every queued request after the
// kill fails over to the surviving replica — same connection, same
// order, no interleaving.
func TestPipelinedFailoverMidPipeline(t *testing.T) {
	tc := startCluster(t, 2)
	const n = 8
	var paths []string
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/dual%d.html", i)
		tc.place(t, path, []byte(fmt.Sprintf("dual-%d", i)), "n1", "n2")
		paths = append(paths, path)
	}

	conn, err := net.Dial("tcp", tc.front)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	_ = conn.SetDeadline(time.Now().Add(15 * time.Second))
	writePipelined(t, conn, paths, true)

	br := bufio.NewReader(conn)
	killed := false
	for i := 0; i < n; i++ {
		resp, err := httpx.ReadResponse(br)
		if err != nil {
			t.Fatalf("response %d (after kill=%v): %v", i, killed, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("response %d: status %d", i, resp.StatusCode)
		}
		if want := fmt.Sprintf("dual-%d", i); string(resp.Body) != want {
			t.Fatalf("response %d out of order: body %q, want %q", i, resp.Body, want)
		}
		if i == 1 && !killed {
			// Kill one backend with most of the pipeline still queued.
			// Whichever node the distributor was using, the remaining
			// requests must keep flowing (dead pooled conns get detected
			// and the relay retries or fails over per request).
			_ = tc.backends["n1"].Close()
			killed = true
		}
	}
}
