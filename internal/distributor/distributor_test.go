package distributor

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"webcluster/internal/backend"
	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/httpx"
	"webcluster/internal/testutil"
	"webcluster/internal/urltable"
)

// testCluster is a distributor over live in-process backends.
type testCluster struct {
	table    *urltable.Table
	dist     *Distributor
	front    string
	backends map[config.NodeID]*backend.Server
	spec     config.ClusterSpec
}

// startCluster launches n backends and a distributor over them.
func startCluster(t *testing.T, n int) *testCluster {
	return startClusterOpts(t, n, nil)
}

// startClusterOpts is startCluster with a hook to adjust the distributor
// options (fault injectors, timeouts) before New.
func startClusterOpts(t *testing.T, n int, tweak func(*Options)) *testCluster {
	t.Helper()
	testutil.NoLeaks(t) // registered first so it checks after all closes
	spec := config.ClusterSpec{DistributorCPUMHz: 350}
	backends := make(map[config.NodeID]*backend.Server, n)
	for i := 0; i < n; i++ {
		id := config.NodeID(fmt.Sprintf("n%d", i+1))
		store := &backend.MemStore{}
		srv, err := backend.NewServer(backend.ServerOptions{
			Spec: config.NodeSpec{
				ID: id, CPUMHz: 350, MemoryMB: 64,
				Disk: config.DiskSCSI, Platform: config.LinuxApache,
			},
			Store: store,
		})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		spec.Nodes = append(spec.Nodes, config.NodeSpec{
			ID: id, CPUMHz: 350, MemoryMB: 64,
			Disk: config.DiskSCSI, Platform: config.LinuxApache, Addr: addr,
		})
		backends[id] = srv
		t.Cleanup(func() { _ = srv.Close() })
	}
	table := urltable.New(urltable.Options{CacheEntries: 64})
	opts := Options{Table: table, Cluster: spec, PreforkPerNode: 2}
	if tweak != nil {
		tweak(&opts)
	}
	dist, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	front, err := dist.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = dist.Close() })
	return &testCluster{table: table, dist: dist, front: front, backends: backends, spec: spec}
}

// place puts an object on specific nodes and registers it.
func (tc *testCluster) place(t *testing.T, path string, body []byte, nodes ...config.NodeID) {
	t.Helper()
	for _, id := range nodes {
		if err := tc.backends[id].Store().Put(path, body); err != nil {
			t.Fatal(err)
		}
	}
	obj := content.Object{Path: path, Size: int64(len(body)), Class: content.Classify(path)}
	if err := tc.table.Insert(obj, nodes...); err != nil {
		t.Fatal(err)
	}
}

// fetch issues one request on a fresh connection.
func fetch(t *testing.T, addr, path, proto string) *httpx.Response {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	req := &httpx.Request{
		Method: "GET", Target: path, Path: path,
		Proto: proto, Header: httpx.NewHeader("Host", "c"),
	}
	if proto == httpx.Proto11 {
		req.Header.Set("Connection", "close")
	}
	if err := httpx.WriteRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestRoutesToHoldingNode(t *testing.T) {
	tc := startCluster(t, 3)
	tc.place(t, "/only-on-n2.html", []byte("content-n2"), "n2")
	for i := 0; i < 5; i++ {
		resp := fetch(t, tc.front, "/only-on-n2.html", httpx.Proto11)
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if got := resp.Header.Get("X-Served-By"); got != "n2" {
			t.Fatalf("served by %s, want n2", got)
		}
	}
	if tc.dist.Routed() != 5 {
		t.Fatalf("routed = %d", tc.dist.Routed())
	}
}

func TestUnknownPath404(t *testing.T) {
	tc := startCluster(t, 2)
	resp := fetch(t, tc.front, "/ghost.html", httpx.Proto11)
	if resp.StatusCode != 404 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if tc.dist.NoRoute() != 1 {
		t.Fatalf("noRoute = %d", tc.dist.NoRoute())
	}
}

func TestUnknownLocation503(t *testing.T) {
	tc := startCluster(t, 2)
	obj := content.Object{Path: "/orphan.html", Size: 1, Class: content.ClassHTML}
	if err := tc.table.Insert(obj, "not-a-node"); err != nil {
		t.Fatal(err)
	}
	resp := fetch(t, tc.front, "/orphan.html", httpx.Proto11)
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestSpreadsAcrossReplicas(t *testing.T) {
	tc := startCluster(t, 3)
	tc.place(t, "/everywhere.html", []byte("x"), "n1", "n2", "n3")
	// WLC spreads only under concurrency (sequential requests always
	// see zero actives and tie to the first replica), so hammer the
	// front end from many goroutines and look at which backends served.
	var wg sync.WaitGroup
	var mu sync.Mutex
	served := map[string]int{}
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp := fetch(t, tc.front, "/everywhere.html", httpx.Proto11)
				mu.Lock()
				served[resp.Header.Get("X-Served-By")]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(served) < 2 {
		t.Fatalf("replica spread = %v, want >1 node used", served)
	}
}

func TestKeepAliveMultipleRequests(t *testing.T) {
	tc := startCluster(t, 2)
	tc.place(t, "/a.html", []byte("A"), "n1")
	tc.place(t, "/b.html", []byte("B"), "n2")

	conn, err := net.Dial("tcp", tc.front)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)
	for _, path := range []string{"/a.html", "/b.html", "/a.html"} {
		req := &httpx.Request{
			Method: "GET", Target: path, Path: path,
			Proto: httpx.Proto11, Header: httpx.NewHeader("Host", "c"),
		}
		if err := httpx.WriteRequest(conn, req); err != nil {
			t.Fatal(err)
		}
		resp, err := httpx.ReadResponse(br)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s → %d", path, resp.StatusCode)
		}
	}
	// One client connection, one mapping entry, three bound requests.
	installed, _, _ := tc.dist.Mapping().Counts()
	if installed != 1 {
		t.Fatalf("mapping installs = %d", installed)
	}
}

func TestHTTP10ClosesAfterResponse(t *testing.T) {
	tc := startCluster(t, 1)
	tc.place(t, "/a.html", []byte("x"), "n1")
	conn, err := net.Dial("tcp", tc.front)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	req := &httpx.Request{
		Method: "GET", Target: "/a.html", Path: "/a.html",
		Proto: httpx.Proto10, Header: httpx.Header{},
	}
	if err := httpx.WriteRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	resp, err := httpx.ReadResponse(br)
	if err != nil {
		t.Fatal(err)
	}
	if resp.KeepAlive() {
		t.Fatal("HTTP/1.0 relay claims keep-alive")
	}
	_ = conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := br.ReadByte(); err == nil {
		t.Fatal("distributor held the connection open")
	}
	// Mapping entry cleaned up.
	testutil.Eventually(t, time.Second, func() bool {
		return tc.dist.Mapping().Len() == 0
	}, "mapping entries leaked: %d", tc.dist.Mapping().Len())
}

func TestMappingCleanupOnEOF(t *testing.T) {
	tc := startCluster(t, 1)
	tc.place(t, "/a.html", []byte("x"), "n1")
	conn, err := net.Dial("tcp", tc.front)
	if err != nil {
		t.Fatal(err)
	}
	// Send nothing; close immediately (client FIN with no request).
	_ = conn.Close()
	testutil.Eventually(t, time.Second, func() bool {
		if tc.dist.Mapping().Len() != 0 {
			return false
		}
		installed, deleted, _ := tc.dist.Mapping().Counts()
		return installed >= 1 && deleted == installed
	}, "mapping not cleaned after client EOF")
}

func TestTrackerRecordsLoad(t *testing.T) {
	tc := startCluster(t, 2)
	tc.place(t, "/a.html", []byte("x"), "n1")
	for i := 0; i < 3; i++ {
		_ = fetch(t, tc.front, "/a.html", httpx.Proto11)
	}
	reqs := tc.dist.Tracker().Requests()
	if reqs["n1"] != 3 {
		t.Fatalf("tracker requests = %v", reqs)
	}
	loads := tc.dist.Tracker().IntervalLoads(tc.spec.Nodes)
	if loads["n1"] <= 0 {
		t.Fatalf("loads = %v", loads)
	}
}

func TestHitCountsAccumulate(t *testing.T) {
	tc := startCluster(t, 1)
	tc.place(t, "/a.html", []byte("x"), "n1")
	for i := 0; i < 4; i++ {
		_ = fetch(t, tc.front, "/a.html", httpx.Proto11)
	}
	rec, _ := tc.table.Lookup("/a.html")
	if rec.Hits != 4 {
		t.Fatalf("hits = %d", rec.Hits)
	}
}

func TestPreforkedConnectionsReused(t *testing.T) {
	tc := startCluster(t, 1)
	tc.place(t, "/a.html", []byte("x"), "n1")
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = fetch(t, tc.front, "/a.html", httpx.Proto11)
		}()
	}
	wg.Wait()
	// The backend should have seen at most prefork+overflow conns, far
	// fewer than 20 client connections (distributor reuses the pool).
	// Serve stats: 20 requests total.
	total := tc.backends["n1"].Stats().Class("html").Requests.Value()
	if total != 20 {
		t.Fatalf("backend served %d", total)
	}
}

func TestBadClientRequest(t *testing.T) {
	tc := startCluster(t, 1)
	conn, err := net.Dial("tcp", tc.front)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Write([]byte("NOT HTTP AT ALL\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestMeanRouteOverheadMeasured(t *testing.T) {
	tc := startCluster(t, 1)
	tc.place(t, "/a.html", []byte("x"), "n1")
	for i := 0; i < 10; i++ {
		_ = fetch(t, tc.front, "/a.html", httpx.Proto11)
	}
	if d := tc.dist.MeanRouteOverhead(); d <= 0 || d > 10*time.Millisecond {
		t.Fatalf("route overhead = %v", d)
	}
}

func TestOptionsValidation(t *testing.T) {
	table := urltable.New(urltable.Options{})
	if _, err := New(Options{Cluster: config.PaperTestbed()}); err == nil {
		t.Fatal("nil table accepted")
	}
	if _, err := New(Options{Table: table, Cluster: config.ClusterSpec{}}); err == nil {
		t.Fatal("empty cluster accepted")
	}
	spec := config.ClusterSpec{Nodes: []config.NodeSpec{{ID: "n", CPUMHz: 1, MemoryMB: 1}}}
	if _, err := New(Options{Table: table, Cluster: spec}); err == nil {
		t.Fatal("node without address accepted")
	}
}

func TestFailoverReplicationAndTakeover(t *testing.T) {
	tc := startCluster(t, 2)
	tc.place(t, "/page.html", []byte("survives"), "n1", "n2")

	repl := NewReplicationServer(tc.dist, 30*time.Millisecond)
	replAddr, err := repl.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	serviceAddr := tc.front
	promoted := make(chan *Distributor, 1)
	promote := func(table *urltable.Table, spec config.ClusterSpec) (*Distributor, error) {
		d, err := New(Options{Table: table, Cluster: spec})
		if err != nil {
			return nil, err
		}
		var addr string
		for i := 0; i < 100; i++ {
			addr, err = d.Start(serviceAddr)
			if err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			return nil, err
		}
		_ = addr
		return d, nil
	}
	b := NewBackup(replAddr, 200*time.Millisecond, promote)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}

	// Let at least one snapshot land, then kill the primary.
	testutil.Eventually(t, 2*time.Second, b.StateReceived,
		"backup never received a snapshot")
	_ = repl.Close()
	_ = tc.dist.Close()

	successor, err := b.Promoted(5 * time.Second)
	if err != nil {
		t.Fatalf("takeover: %v", err)
	}
	if successor == nil {
		t.Fatal("no takeover")
	}
	defer func() { _ = successor.Close() }()

	if successor.Table().Len() != 1 {
		t.Fatalf("replicated table has %d entries", successor.Table().Len())
	}
	resp := fetch(t, serviceAddr, "/page.html", httpx.Proto11)
	if resp.StatusCode != 200 || string(resp.Body) != "survives" {
		t.Fatalf("post-takeover fetch = %d %q", resp.StatusCode, resp.Body)
	}
	select {
	case promoted <- successor:
	default:
	}
}

func TestBackupStopWithoutFailure(t *testing.T) {
	tc := startCluster(t, 1)
	repl := NewReplicationServer(tc.dist, 20*time.Millisecond)
	replAddr, err := repl.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = repl.Close() }()
	b := NewBackup(replAddr, 500*time.Millisecond, func(*urltable.Table, config.ClusterSpec) (*Distributor, error) {
		t.Error("promote called on healthy primary")
		return nil, nil
	})
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	b.Stop()
	// Monitoring healthy: Promoted times out with nil, nil.
	d, err := b.Promoted(50 * time.Millisecond)
	if d != nil || err != nil {
		t.Fatalf("promoted = %v, %v", d, err)
	}
}

func TestReplicationStreamContents(t *testing.T) {
	tc := startCluster(t, 1)
	tc.place(t, "/a.html", []byte("x"), "n1")
	repl := NewReplicationServer(tc.dist, 20*time.Millisecond)
	replAddr, err := repl.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = repl.Close() }()

	conn, err := net.Dial("tcp", replAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1<<16)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	raw := string(buf[:n])
	if !strings.Contains(raw, `"snapshot"`) || !strings.Contains(raw, "/a.html") {
		t.Fatalf("first replication message = %q", raw)
	}
}
