package distributor

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"webcluster/internal/admission"
	"webcluster/internal/backend"
	"webcluster/internal/httpx"
	"webcluster/internal/respcache"
)

// withAdmission returns a startClusterOpts tweak enabling overload
// control with a tiny budget and near-instant queue timeouts, so a
// test can saturate a class with a handful of slow requests.
func withAdmission(maxConcurrent int) func(*Options) {
	return func(o *Options) {
		o.Admission = &admission.Options{
			MaxConcurrent: maxConcurrent,
			MaxWait: [admission.NumClasses]time.Duration{
				time.Millisecond, time.Millisecond, time.Millisecond,
			},
		}
	}
}

// saturate parks n slow background requests of the given class and
// waits until all of them hold admission slots. The returned func
// blocks until they drain.
func saturate(t *testing.T, tc *testCluster, class admission.Class, path string, n int) (wait func()) {
	t.Helper()
	for _, srv := range tc.backends {
		srv.SetDelay(func(backend.ServedRequest) time.Duration { return 400 * time.Millisecond })
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = fetchHdr(t, tc.front, "GET", path, "X-Dist-Class", class.String())
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for tc.dist.Admission().InFlight(class) < int64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d %s requests in flight", tc.dist.Admission().InFlight(class), n, class)
		}
		time.Sleep(time.Millisecond)
	}
	return wg.Wait
}

// TestAdmissionShedInteractiveServesStale covers the second
// serveStaleIfAllowed call site: an interactive request shed by
// admission control degrades to the cache's stale copy instead of a
// 503 (the first call site, distributor stale-on-error with every
// replica down, is covered by TestCacheStaleOnError).
func TestAdmissionShedInteractiveServesStale(t *testing.T) {
	rc := respcache.New(respcache.Options{FreshTTL: 50 * time.Millisecond, StaleTTL: time.Hour})
	tc := startClusterOpts(t, 2, func(o *Options) {
		withCache(rc)(o)
		withAdmission(6)(o) // interactive share: 2 slots
	})
	body := []byte("<html>degraded but served</html>")
	tc.place(t, "/degrade.html", body, "n1", "n2")

	fetch(t, tc.front, "/degrade.html", httpx.Proto11) // fill
	time.Sleep(120 * time.Millisecond)                 // let freshness lapse

	drain := saturate(t, tc, admission.Interactive, "/degrade.html", 2)
	defer drain()

	resp := fetchHdr(t, tc.front, "GET", "/degrade.html", "X-Dist-Class", "interactive")
	if resp.StatusCode != 200 || !bytes.Equal(resp.Body, body) {
		t.Fatalf("shed interactive request: status=%d body=%q, want the stale copy", resp.StatusCode, resp.Body)
	}
	if got := resp.Header.Get("X-Dist-Cache"); got != "STALE" {
		t.Fatalf("verdict = %q, want STALE", got)
	}
	if _, _, _, stale := tc.dist.Admission().ClassCounters(admission.Interactive); stale == 0 {
		t.Fatal("interactive stale counter did not move")
	}
}

// TestAdmissionShedInteractiveWithoutStaleRejects: the stale rung only
// degrades when the cache actually has a copy; otherwise the shed
// falls through to a 503 with a Retry-After hint.
func TestAdmissionShedInteractiveWithoutStaleRejects(t *testing.T) {
	rc := respcache.New(respcache.Options{FreshTTL: 50 * time.Millisecond, StaleTTL: time.Hour})
	tc := startClusterOpts(t, 2, func(o *Options) {
		withCache(rc)(o)
		withAdmission(6)(o)
	})
	body := []byte("<html>never cached</html>")
	tc.place(t, "/uncached.html", body, "n1", "n2")

	drain := saturate(t, tc, admission.Interactive, "/uncached.html", 2)
	defer drain()

	resp := fetchHdr(t, tc.front, "GET", "/uncached.html", "X-Dist-Class", "interactive")
	if resp.StatusCode != 503 {
		t.Fatalf("shed with no stale copy: status=%d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want %q", got, "1")
	}
}

// TestAdmissionBatchRejectedFirst: the batch rung never degrades to
// stale — it is rejected outright with a Retry-After hint, even when a
// stale copy exists.
func TestAdmissionBatchRejectedFirst(t *testing.T) {
	rc := respcache.New(respcache.Options{FreshTTL: 50 * time.Millisecond, StaleTTL: time.Hour})
	tc := startClusterOpts(t, 2, func(o *Options) {
		withCache(rc)(o)
		withAdmission(6)(o) // batch share: 1 slot
	})
	body := []byte("<html>report</html>")
	tc.place(t, "/report.html", body, "n1", "n2")

	fetch(t, tc.front, "/report.html", httpx.Proto11) // fill
	time.Sleep(120 * time.Millisecond)                // let freshness lapse

	drain := saturate(t, tc, admission.Batch, "/report.html", 1)
	defer drain()

	resp := fetchHdr(t, tc.front, "GET", "/report.html", "X-Dist-Class", "batch")
	if resp.StatusCode != 503 {
		t.Fatalf("shed batch request: status=%d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want %q", got, "1")
	}
	if _, _, shed, _ := tc.dist.Admission().ClassCounters(admission.Batch); shed == 0 {
		t.Fatal("batch shed counter did not move")
	}
}
