package admission

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseClassAndString(t *testing.T) {
	cases := []struct {
		in   string
		want Class
		ok   bool
	}{
		{"critical", Critical, true},
		{"interactive", Interactive, true},
		{"batch", Batch, true},
		{"", Interactive, false},
		{"Critical", Interactive, false}, // exact lowercase only
		{"bulk", Interactive, false},
	}
	for _, c := range cases {
		got, ok := ParseClass(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseClass(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
	for _, c := range []Class{Critical, Interactive, Batch} {
		back, ok := ParseClass(c.String())
		if !ok || back != c {
			t.Errorf("round trip %v via %q failed", c, c.String())
		}
	}
}

func TestClassify(t *testing.T) {
	c := New(Options{Rules: []Rule{
		{Prefix: "/api/", Class: Critical},
		{Prefix: "/api/export/", Class: Batch},
		{Prefix: "/feeds/", Class: Batch},
	}})
	cases := []struct {
		header, path string
		want         Class
	}{
		{"batch", "/api/checkout", Batch}, // header wins over rules
		{"critical", "/feeds/all", Critical},
		{"", "/api/checkout", Critical},      // prefix rule
		{"", "/api/export/dump", Batch},      // longest prefix wins
		{"", "/feeds/all", Batch},            //
		{"", "/index.html", Interactive},     // default
		{"nonsense", "/index.html", Interactive}, // bad header falls through to rules/default
		{"nonsense", "/feeds/all", Batch},
	}
	for _, tc := range cases {
		if got := c.Classify(tc.header, tc.path); got != tc.want {
			t.Errorf("Classify(%q, %q) = %v, want %v", tc.header, tc.path, got, tc.want)
		}
	}
}

func TestSetRulesReplacesTable(t *testing.T) {
	c := New(Options{Rules: []Rule{{Prefix: "/a/", Class: Batch}}})
	if got := c.Classify("", "/a/x"); got != Batch {
		t.Fatalf("before SetRules: %v", got)
	}
	c.SetRules([]Rule{{Prefix: "/a/", Class: Critical}})
	if got := c.Classify("", "/a/x"); got != Critical {
		t.Fatalf("after SetRules: %v", got)
	}
}

func TestSharesSplitLimits(t *testing.T) {
	c := New(Options{MaxConcurrent: 60}) // default 3:2:1
	if c.Limit(Critical) != 30 || c.Limit(Interactive) != 20 || c.Limit(Batch) != 10 {
		t.Fatalf("limits = %d/%d/%d, want 30/20/10",
			c.Limit(Critical), c.Limit(Interactive), c.Limit(Batch))
	}
	// Tiny budgets still give every class at least one slot.
	c = New(Options{MaxConcurrent: 1})
	for _, cl := range []Class{Critical, Interactive, Batch} {
		if c.Limit(cl) < 1 {
			t.Fatalf("class %v got zero slots", cl)
		}
	}
}

func TestAdmitFastPathUpToLimit(t *testing.T) {
	c := New(Options{MaxConcurrent: 6, Shares: [NumClasses]int{1, 1, 1}})
	for i := 0; i < 2; i++ {
		if v := c.Admit(Critical); v != Admitted {
			t.Fatalf("admit %d: %v", i, v)
		}
	}
	if got := c.InFlight(Critical); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	c.Release(Critical)
	c.Release(Critical)
	if got := c.InFlight(Critical); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
	off, adm, shed, stale := c.ClassCounters(Critical)
	if off != 2 || adm != 2 || shed != 0 || stale != 0 {
		t.Fatalf("ledger = %d/%d/%d/%d", off, adm, shed, stale)
	}
}

// TestShedLadder: with slots full and queues full, each class sheds to
// its own rung — batch and critical reject, interactive degrades to
// stale.
func TestShedLadder(t *testing.T) {
	c := New(Options{
		MaxConcurrent: 3,
		Shares:        [NumClasses]int{1, 1, 1},
		MaxQueue:      [NumClasses]int{1, 1, 1},
		MaxWait:       [NumClasses]time.Duration{time.Second, time.Second, time.Second},
	})
	for _, tc := range []struct {
		class Class
		want  Verdict
	}{
		{Batch, ShedReject},
		{Interactive, ShedStale},
		{Critical, ShedReject},
	} {
		if v := c.Admit(tc.class); v != Admitted {
			t.Fatalf("%v: first admit got %v", tc.class, v)
		}
		// Fill the 1-deep queue with a parked waiter so the next arrival
		// sees queue-full and sheds synchronously to the class's rung.
		parked := make(chan Verdict, 1)
		go func(cl Class) { parked <- c.Admit(cl) }(tc.class)
		waitFor(t, func() bool { return c.classes[tc.class].queued.Load() == 1 })
		if v := c.Admit(tc.class); v != tc.want {
			t.Fatalf("%v: overflow verdict = %v, want %v", tc.class, v, tc.want)
		}
		// Free the slot: the parked waiter gets the handoff.
		c.Release(tc.class)
		if v := <-parked; v != Admitted {
			t.Fatalf("%v: parked waiter = %v, want Admitted", tc.class, v)
		}
		c.Release(tc.class)
		off, adm, shed, stale := c.ClassCounters(tc.class)
		if off != adm+shed+stale {
			t.Fatalf("%v ledger broken: %d != %d+%d+%d", tc.class, off, adm, shed, stale)
		}
	}
}

// TestQueueHandoff: a queued waiter is admitted when a slot frees, and
// the handoff settles before the waiter's channel closes.
func TestQueueHandoff(t *testing.T) {
	c := New(Options{
		MaxConcurrent: 3,
		Shares:        [NumClasses]int{1, 1, 1},
		MaxWait:       [NumClasses]time.Duration{time.Second, time.Second, time.Second},
	})
	if v := c.Admit(Critical); v != Admitted {
		t.Fatalf("seed admit: %v", v)
	}
	got := make(chan Verdict, 1)
	go func() { got <- c.Admit(Critical) }()
	waitFor(t, func() bool { return c.classes[Critical].queued.Load() == 1 })
	c.Release(Critical)
	if v := <-got; v != Admitted {
		t.Fatalf("waiter verdict = %v, want Admitted", v)
	}
	if n := c.InFlight(Critical); n != 1 {
		t.Fatalf("inflight after handoff = %d, want 1", n)
	}
	c.Release(Critical)
}

func TestWaitTimeoutSheds(t *testing.T) {
	c := New(Options{
		MaxConcurrent: 3,
		Shares:        [NumClasses]int{1, 1, 1},
		MaxWait:       [NumClasses]time.Duration{time.Millisecond, time.Millisecond, time.Millisecond},
	})
	if v := c.Admit(Batch); v != Admitted {
		t.Fatalf("seed admit: %v", v)
	}
	if v := c.Admit(Batch); v != ShedReject {
		t.Fatalf("queued wait should time out to ShedReject, got %v", v)
	}
	cs := &c.classes[Batch]
	if cs.timeouts.Value() != 1 {
		t.Fatalf("timeouts = %d, want 1", cs.timeouts.Value())
	}
	if cs.queued.Load() != 0 {
		t.Fatalf("queued = %d after timeout, want 0", cs.queued.Load())
	}
	c.Release(Batch)
}

// TestCoDelDropState drives the controller through a standing-queue
// window with an injected clock and checks that (a) the next window
// sheds without queueing and (b) an idle window clears the state.
func TestCoDelDropState(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	c := New(Options{
		MaxConcurrent: 3,
		Shares:        [NumClasses]int{1, 1, 1},
		MaxWait:       [NumClasses]time.Duration{time.Millisecond, time.Millisecond, time.Millisecond},
		QueueTarget:   500 * time.Microsecond,
		QueueInterval: 10 * time.Millisecond,
		Clock:         clock,
	})
	if v := c.Admit(Batch); v != Admitted {
		t.Fatalf("seed admit: %v", v)
	}
	// Standing queue: the wait times out, recording a sojourn of maxWait
	// (1ms) — above the 500us target — and opening the window at t0.
	if v := c.Admit(Batch); v != ShedReject {
		t.Fatalf("timed-out wait: %v", v)
	}
	// Next arrival after the window closes flips to drop state and is
	// shed instantly (no queueing: queued stays 0).
	advance(20 * time.Millisecond)
	if v := c.Admit(Batch); v != ShedReject {
		t.Fatalf("drop-state arrival: %v", v)
	}
	if !c.Dropping(Batch) {
		t.Fatal("expected drop state after standing-queue window")
	}
	if q := c.classes[Batch].queued.Load(); q != 0 {
		t.Fatalf("drop-state shed queued a waiter: %d", q)
	}
	// A quiet window (no sojourns observed) clears the drop flag. The
	// slot is still full, so the arrival sheds — but from queue-full /
	// timeout, with drop state off.
	advance(20 * time.Millisecond)
	c.Admit(Batch)
	if c.Dropping(Batch) {
		t.Fatal("drop state should clear after an idle window")
	}
	c.Release(Batch)
}

func TestBackendPressureShedsBatchOnly(t *testing.T) {
	c := New(Options{
		MaxConcurrent: 3,
		Shares:        [NumClasses]int{1, 1, 1},
		MaxWait:       [NumClasses]time.Duration{5 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond},
	})
	var saturated atomic.Bool
	c.SetPressure(func() (int64, int64) {
		if saturated.Load() {
			return 10, 10
		}
		return 0, 10
	})
	saturated.Store(true)
	// Fill every class's single slot.
	for _, cl := range []Class{Critical, Interactive, Batch} {
		if v := c.Admit(cl); v != Admitted {
			t.Fatalf("%v seed: %v", cl, v)
		}
	}
	// Batch sheds pre-queue under back-end pressure; critical and
	// interactive still get to wait (and here time out — but they were
	// not rejected by the pressure signal, which is what queued>0 during
	// the wait would show; just assert batch sheds instantly).
	start := time.Now()
	if v := c.Admit(Batch); v != ShedReject {
		t.Fatalf("batch under pressure: %v", v)
	}
	if d := time.Since(start); d > 2*time.Millisecond {
		t.Fatalf("batch shed should not wait, took %v", d)
	}
	for _, cl := range []Class{Critical, Interactive, Batch} {
		c.Release(cl)
	}
	// Pressure off: batch queues and gets the freed slot.
	saturated.Store(false)
	if v := c.Admit(Batch); v != Admitted {
		t.Fatalf("batch after pressure clears: %v", v)
	}
	c.Release(Batch)
}

func TestDeadlineBudgets(t *testing.T) {
	c := New(Options{DeadlineBudget: [NumClasses]time.Duration{time.Second, 0, -1}})
	if got := c.DeadlineBudget(Critical); got != time.Second {
		t.Fatalf("critical budget = %v", got)
	}
	if got := c.DeadlineBudget(Interactive); got != 5*time.Second {
		t.Fatalf("interactive budget should default to 5s, got %v", got)
	}
	if got := c.DeadlineBudget(Batch); got != 0 {
		t.Fatalf("negative budget should disable stamping, got %v", got)
	}
	if c.RetryAfter() != "1" {
		t.Fatalf("RetryAfter = %q", c.RetryAfter())
	}
}

// TestAdmitDecisionAllocFree pins the fast path at zero allocations —
// the same invariant BenchmarkAdmissionDecision gates in CI.
func TestAdmitDecisionAllocFree(t *testing.T) {
	c := New(Options{MaxConcurrent: 64})
	allocs := testing.AllocsPerRun(200, func() {
		if c.Admit(Critical) == Admitted {
			c.Release(Critical)
		}
	})
	if allocs != 0 {
		t.Errorf("admission fast path allocated %.1f per op, want 0", allocs)
	}
}

// TestAdmissionCountersReconcile is the -race property test: under
// concurrent mixed-class load with releases, timeouts, handoffs and
// sheds racing, the per-class ledger must balance exactly —
// offered == admitted + shed + stale.
func TestAdmissionCountersReconcile(t *testing.T) {
	c := New(Options{
		MaxConcurrent: 12,
		MaxQueue:      [NumClasses]int{4, 4, 4},
		MaxWait: [NumClasses]time.Duration{
			2 * time.Millisecond, time.Millisecond, 500 * time.Microsecond,
		},
		QueueTarget:   200 * time.Microsecond,
		QueueInterval: 2 * time.Millisecond,
	})
	const (
		workers = 16
		perG    = 400
	)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				class := Class(rng.Intn(NumClasses))
				if c.Admit(class) == Admitted {
					if rng.Intn(4) == 0 {
						time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
					}
					c.Release(class)
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()
	var totalOffered int64
	for _, cl := range []Class{Critical, Interactive, Batch} {
		off, adm, shed, stale := c.ClassCounters(cl)
		if off != adm+shed+stale {
			t.Errorf("%v: offered %d != admitted %d + shed %d + stale %d",
				cl, off, adm, shed, stale)
		}
		if got := c.InFlight(cl); got != 0 {
			t.Errorf("%v: inflight %d after drain, want 0", cl, got)
		}
		if q := c.classes[cl].queued.Load(); q != 0 {
			t.Errorf("%v: queued %d after drain, want 0", cl, q)
		}
		totalOffered += off
	}
	if want := int64(workers * perG); totalOffered != want {
		t.Errorf("total offered %d, want %d", totalOffered, want)
	}
}

// waitFor polls cond until true or the deadline lapses.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
