// Package admission implements SLO-class overload control for the
// distributor front end. Every request is classified into one of three
// service-level classes — critical, interactive, batch — from an
// X-Dist-Class header or a URL-prefix rule table, then passed through a
// per-class weighted admission gate: each class owns a bounded share of
// the front end's concurrency budget, arrivals beyond the share wait in
// a bounded FIFO queue with a per-class timeout, and a CoDel-style
// controller sheds without queueing while the minimum queue sojourn over
// an observation window stays above target (a standing queue, not a
// burst). Shedding is progressive: batch is rejected first (its share is
// smallest and its waits shortest), interactive degrades to a
// stale-from-cache answer (ShedStale — the distributor reuses the
// respcache stale-on-error path), and only when even the critical
// class's queue overflows or times out does a request see a bare 503
// with Retry-After (ShedReject).
//
// The fast path — class under its limit, no queue — is two atomic adds
// and a compare: zero allocations, gated by BenchmarkAdmissionDecision.
// All counters reconcile exactly: offered == admitted + shed + stale per
// class, which the -race property test asserts under concurrency.
package admission

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"webcluster/internal/telemetry"
)

// Class is a request's service-level objective class.
type Class uint8

// The three SLO classes, in shedding-priority order: batch is degraded
// first, critical last.
const (
	Critical Class = iota
	Interactive
	Batch
)

// NumClasses is the number of SLO classes.
const NumClasses = 3

// String returns the wire/config name of the class.
func (c Class) String() string {
	switch c {
	case Critical:
		return "critical"
	case Batch:
		return "batch"
	default:
		return "interactive"
	}
}

// ParseClass maps a wire or spec name to a Class. Only the three
// canonical lowercase names are recognized (the header values are
// interned by the parser, so the comparisons never allocate).
func ParseClass(s string) (Class, bool) {
	switch s {
	case "critical":
		return Critical, true
	case "interactive":
		return Interactive, true
	case "batch":
		return Batch, true
	}
	return Interactive, false
}

// Verdict is the outcome of an admission decision.
type Verdict uint8

const (
	// Admitted grants a concurrency slot; the caller must Release the
	// same class exactly once when the request completes.
	Admitted Verdict = iota
	// ShedStale degrades the request: serve an expired-but-present cache
	// copy if one exists, else reject. The interactive rung of the
	// ladder.
	ShedStale
	// ShedReject rejects the request with 503 + Retry-After.
	ShedReject
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Admitted:
		return "admitted"
	case ShedStale:
		return "shed-stale"
	default:
		return "shed-reject"
	}
}

// Rule maps a URL path prefix to a class; longest matching prefix wins.
type Rule struct {
	Prefix string
	Class  Class
}

// Options configures a Controller. The zero value yields working
// defaults sized for one front end.
type Options struct {
	// MaxConcurrent is the total concurrency budget split across the
	// classes by Shares; default 256.
	MaxConcurrent int
	// Shares weight the per-class split of MaxConcurrent in class order
	// (critical, interactive, batch); default 3:2:1. Each class's slots
	// are its own — batch saturating its share can never starve
	// critical.
	Shares [NumClasses]int
	// MaxQueue bounds each class's waiter queue; default 2x the class
	// limit. A full queue sheds immediately.
	MaxQueue [NumClasses]int
	// MaxWait bounds a queued request's wait for a slot; defaults
	// 100ms / 50ms / 10ms (critical / interactive / batch) — the batch
	// rung of the ladder gives up first.
	MaxWait [NumClasses]time.Duration
	// QueueTarget is the CoDel sojourn target (default 5ms): while the
	// minimum queue delay observed over a QueueInterval stays above it,
	// the class is in drop state and arrivals that miss the fast path
	// are shed without queueing.
	QueueTarget time.Duration
	// QueueInterval is the CoDel observation window (default 100ms).
	QueueInterval time.Duration
	// DeadlineBudget is the per-class downstream deadline stamped on
	// admitted requests (X-Dist-Deadline); defaults 2s / 5s / 10s. Zero
	// entries take the default; a negative entry disables stamping for
	// that class.
	DeadlineBudget [NumClasses]time.Duration
	// Rules is the URL-prefix classification table consulted when no
	// X-Dist-Class header is present; replaceable at runtime with
	// SetRules.
	Rules []Rule
	// RetryAfterSeconds is the Retry-After hint on rejects; default 1.
	RetryAfterSeconds int
	// Registry receives the per-class admission counters and gauges
	// (offered/admitted/shed/stale, in-flight, queue-delay quantiles).
	// Nil creates a private registry.
	Registry *telemetry.Registry
	// Clock injects time for tests; default time.Now. Never called on
	// the fast path.
	Clock func() time.Time
}

// waiter is one queued request.
type waiter struct {
	ch  chan struct{} // closed when a slot is handed over
	enq time.Time
}

// classState is one class's gate: an atomic in-flight count checked
// lock-free on the fast path, a mutex-guarded bounded FIFO for the slow
// path, and the CoDel drop-state machine fed by observed queue sojourns.
type classState struct {
	limit    int64
	inflight atomic.Int64
	// queued mirrors len(queue) so the fast path can yield to waiters
	// (FIFO fairness) without touching the queue lock.
	queued   atomic.Int64
	maxQueue int
	maxWait  time.Duration
	verdict  Verdict // the ladder rung this class sheds to

	mu    sync.Mutex
	queue []*waiter

	// CoDel state: the minimum sojourn observed in the current window
	// (-1 = none), the window's start instant, and the drop flag the
	// last closed window produced.
	target      int64 // ns
	window      int64 // ns
	minSojourn  atomic.Int64
	windowStart atomic.Int64
	dropping    atomic.Bool

	// Ledger (registry-owned): offered == admitted + shed + stale,
	// always.
	offered  *telemetry.Counter
	admitted *telemetry.Counter
	shed     *telemetry.Counter // ShedReject verdicts
	stale    *telemetry.Counter // ShedStale verdicts
	timeouts *telemetry.Counter // subset of sheds: queue-wait expiries

	queueDelay telemetry.Histogram
}

// Controller is the admission gate. Construct with New; safe for
// concurrent use.
type Controller struct {
	classes [NumClasses]classState
	budgets [NumClasses]time.Duration
	rules   atomic.Pointer[[]Rule]
	clock   func() time.Time

	retryAfter string

	// pressure, when set, reports external (back-end) load as
	// (in-flight, capacity); batch arrivals that miss the fast path are
	// shed without queueing while in-flight >= capacity. The distributor
	// wires its per-backend in-flight gauges here.
	pressure atomic.Pointer[func() (int64, int64)]
}

// defaultShares is the 3:2:1 critical/interactive/batch split.
var defaultShares = [NumClasses]int{3, 2, 1}

// defaultMaxWait gives batch the shortest patience.
var defaultMaxWait = [NumClasses]time.Duration{100 * time.Millisecond, 50 * time.Millisecond, 10 * time.Millisecond}

// defaultBudgets are the per-class downstream deadlines.
var defaultBudgets = [NumClasses]time.Duration{2 * time.Second, 5 * time.Second, 10 * time.Second}

// New builds a Controller.
func New(opts Options) *Controller {
	total := opts.MaxConcurrent
	if total <= 0 {
		total = 256
	}
	shares := opts.Shares
	if shares == ([NumClasses]int{}) {
		shares = defaultShares
	}
	sum := 0
	for i, s := range shares {
		if s <= 0 {
			shares[i] = 1
		}
		sum += shares[i]
	}
	target := opts.QueueTarget
	if target <= 0 {
		target = 5 * time.Millisecond
	}
	window := opts.QueueInterval
	if window <= 0 {
		window = 100 * time.Millisecond
	}
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry("admission")
	}
	retryAfter := opts.RetryAfterSeconds
	if retryAfter <= 0 {
		retryAfter = 1
	}

	c := &Controller{clock: clock, retryAfter: strconv.Itoa(retryAfter)}
	rules := append([]Rule(nil), opts.Rules...)
	sortRules(rules)
	c.rules.Store(&rules)
	for i := range c.classes {
		cs := &c.classes[i]
		class := Class(i)
		cs.limit = int64(total * shares[i] / sum)
		if cs.limit < 1 {
			cs.limit = 1
		}
		cs.maxQueue = opts.MaxQueue[i]
		if cs.maxQueue <= 0 {
			cs.maxQueue = int(2 * cs.limit)
		}
		cs.maxWait = opts.MaxWait[i]
		if cs.maxWait <= 0 {
			cs.maxWait = defaultMaxWait[i]
		}
		cs.verdict = ShedReject
		if class == Interactive {
			cs.verdict = ShedStale
		}
		cs.target = int64(target)
		cs.window = int64(window)
		cs.minSojourn.Store(-1)

		c.budgets[i] = opts.DeadlineBudget[i]
		if c.budgets[i] == 0 {
			c.budgets[i] = defaultBudgets[i]
		}

		name := class.String()
		cs.offered = reg.Counter("admission_" + name + "_offered")
		cs.admitted = reg.Counter("admission_" + name + "_admitted")
		cs.shed = reg.Counter("admission_" + name + "_shed")
		cs.stale = reg.Counter("admission_" + name + "_stale")
		cs.timeouts = reg.Counter("admission_" + name + "_wait_timeouts")
		reg.GaugeFunc("admission_"+name+"_inflight", func() float64 {
			return float64(cs.inflight.Load())
		})
		reg.GaugeFunc("admission_"+name+"_queued", func() float64 {
			return float64(cs.queued.Load())
		})
		reg.GaugeFunc("admission_"+name+"_queue_p99_ms", func() float64 {
			return float64(cs.queueDelay.Quantile(0.99)) / float64(time.Millisecond)
		})
	}
	return c
}

// sortRules orders rules longest-prefix-first so the first match in
// Classify's linear scan is the most specific.
func sortRules(rules []Rule) {
	for i := 1; i < len(rules); i++ {
		for j := i; j > 0 && len(rules[j].Prefix) > len(rules[j-1].Prefix); j-- {
			rules[j], rules[j-1] = rules[j-1], rules[j]
		}
	}
}

// SetRules replaces the URL-prefix classification table (copy-on-write;
// in-flight Classify calls keep the table they loaded).
func (c *Controller) SetRules(rules []Rule) {
	cp := append([]Rule(nil), rules...)
	sortRules(cp)
	c.rules.Store(&cp)
}

// SetPressure wires an external load reading: fn reports (in-flight,
// capacity) across the back ends. While in-flight >= capacity, batch
// arrivals that miss the fast path are shed without queueing — the
// bottom rung of the ladder engages from back-end pressure, not just
// front-end queue delay.
func (c *Controller) SetPressure(fn func() (inflight, capacity int64)) {
	c.pressure.Store(&fn)
}

// RetryAfter returns the Retry-After header value for rejects (whole
// seconds, precomputed so sheds do not format integers).
func (c *Controller) RetryAfter() string { return c.retryAfter }

// Limit returns the class's concurrency share.
func (c *Controller) Limit(class Class) int64 { return c.classes[class].limit }

// InFlight returns the class's current admitted count.
func (c *Controller) InFlight(class Class) int64 { return c.classes[class].inflight.Load() }

// DeadlineBudget returns the downstream deadline budget for class, 0
// when stamping is disabled for it.
func (c *Controller) DeadlineBudget(class Class) time.Duration {
	if b := c.budgets[class]; b > 0 {
		return b
	}
	return 0
}

// Classify resolves a request's class: an explicit X-Dist-Class header
// value wins, then the longest matching URL-prefix rule, then
// Interactive. Allocation-free.
func (c *Controller) Classify(header, path string) Class {
	if header != "" {
		if cl, ok := ParseClass(header); ok {
			return cl
		}
	}
	rules := *c.rules.Load()
	for i := range rules {
		r := &rules[i]
		if len(path) >= len(r.Prefix) && path[:len(r.Prefix)] == r.Prefix {
			return r.Class
		}
	}
	return Interactive
}

// Admit runs the admission decision for one request of the given class.
// Admitted grants a slot the caller must Release exactly once; the shed
// verdicts grant nothing. The uncontended path (class under limit, no
// queue) performs no allocation and never reads the clock.
func (c *Controller) Admit(class Class) Verdict {
	cs := &c.classes[class]
	cs.offered.Inc()
	if cs.queued.Load() == 0 {
		if cs.inflight.Add(1) <= cs.limit {
			cs.admitted.Inc()
			return Admitted
		}
		cs.inflight.Add(-1)
	}
	return c.admitSlow(cs, class)
}

// Release returns a slot for class and hands it to the head of the
// class's queue when one is waiting.
func (c *Controller) Release(class Class) {
	cs := &c.classes[class]
	cs.inflight.Add(-1)
	if cs.queued.Load() == 0 {
		return
	}
	cs.wake()
}

// wake hands free slots to queued waiters in FIFO order. The slot is
// claimed (inflight incremented) on the waiter's behalf before its
// channel is closed, so the transfer is settled by the time the waiter
// observes it — the timed-out-but-handed-over race resolves by queue
// membership under the lock, never by a second channel wait.
func (cs *classState) wake() {
	cs.mu.Lock()
	for len(cs.queue) > 0 {
		if cs.inflight.Add(1) > cs.limit {
			cs.inflight.Add(-1)
			break
		}
		w := cs.queue[0]
		n := copy(cs.queue, cs.queue[1:])
		cs.queue[n] = nil
		cs.queue = cs.queue[:n]
		cs.queued.Add(-1)
		close(w.ch)
	}
	cs.mu.Unlock()
}

// admitSlow is the contended path: consult the CoDel drop state and
// back-end pressure, then queue with a bounded wait.
func (c *Controller) admitSlow(cs *classState, class Class) Verdict {
	now := c.clock()
	cs.codelTick(now.UnixNano())
	if cs.dropping.Load() {
		return cs.shedVerdict()
	}
	if class == Batch && c.backendsSaturated() {
		return cs.shedVerdict()
	}

	w := &waiter{ch: make(chan struct{}), enq: now}
	cs.mu.Lock()
	// Recheck under the lock: a Release may have drained the queue and
	// freed slots between the fast path and here.
	if len(cs.queue) == 0 {
		if cs.inflight.Add(1) <= cs.limit {
			cs.mu.Unlock()
			cs.admitted.Inc()
			return Admitted
		}
		cs.inflight.Add(-1)
	}
	if len(cs.queue) >= cs.maxQueue {
		cs.mu.Unlock()
		return cs.shedVerdict()
	}
	cs.queue = append(cs.queue, w)
	cs.queued.Add(1)
	cs.mu.Unlock()

	t := time.NewTimer(cs.maxWait)
	select {
	case <-w.ch:
		t.Stop()
		cs.observeSojourn(c.clock().Sub(w.enq))
		cs.admitted.Inc()
		return Admitted
	case <-t.C:
		cs.mu.Lock()
		removed := cs.remove(w)
		cs.mu.Unlock()
		if !removed {
			// wake popped us before the timer fired: the slot is already
			// ours (claimed under the lock), so this is an admission —
			// just a slow one; its full sojourn feeds the CoDel signal.
			cs.observeSojourn(c.clock().Sub(w.enq))
			cs.admitted.Inc()
			return Admitted
		}
		// A timed-out wait is a sojourn above any reasonable target.
		cs.observeSojourn(cs.maxWait)
		cs.timeouts.Inc()
		return cs.shedVerdict()
	}
}

// remove deletes w from the queue, reporting whether it was still
// queued. Caller holds cs.mu.
func (cs *classState) remove(w *waiter) bool {
	for i, q := range cs.queue {
		if q == w {
			n := copy(cs.queue[i:], cs.queue[i+1:])
			cs.queue[i+n] = nil
			cs.queue = cs.queue[:i+n]
			cs.queued.Add(-1)
			return true
		}
	}
	return false
}

// shedVerdict records the class's ladder rung in the ledger and returns
// it.
func (cs *classState) shedVerdict() Verdict {
	if cs.verdict == ShedStale {
		cs.stale.Inc()
	} else {
		cs.shed.Inc()
	}
	return cs.verdict
}

// backendsSaturated reads the wired pressure signal.
func (c *Controller) backendsSaturated() bool {
	fn := c.pressure.Load()
	if fn == nil {
		return false
	}
	inflight, capacity := (*fn)()
	return capacity > 0 && inflight >= capacity
}

// observeSojourn feeds one queue delay into the histogram and the
// current CoDel window's minimum.
func (cs *classState) observeSojourn(d time.Duration) {
	if d < 0 {
		d = 0
	}
	cs.queueDelay.Observe(d)
	for {
		cur := cs.minSojourn.Load()
		if cur >= 0 && int64(d) >= cur {
			return
		}
		if cs.minSojourn.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// codelTick closes the observation window when it has elapsed: the drop
// flag for the next window is whether even the *minimum* sojourn stayed
// above target — a standing queue (CoDel's signal), as opposed to a
// burst some request got through quickly.
func (cs *classState) codelTick(nowNs int64) {
	ws := cs.windowStart.Load()
	if ws == 0 {
		cs.windowStart.CompareAndSwap(0, nowNs)
		return
	}
	if nowNs-ws < cs.window {
		return
	}
	if !cs.windowStart.CompareAndSwap(ws, nowNs) {
		return // another goroutine closed this window
	}
	min := cs.minSojourn.Swap(-1)
	cs.dropping.Store(min >= 0 && min > cs.target)
}

// Dropping reports whether the class is currently in CoDel drop state.
func (c *Controller) Dropping(class Class) bool {
	return c.classes[class].dropping.Load()
}

// ClassCounters returns the class's ledger. offered == admitted + shed
// + stale at any quiescent point.
func (c *Controller) ClassCounters(class Class) (offered, admitted, shed, stale int64) {
	cs := &c.classes[class]
	return cs.offered.Value(), cs.admitted.Value(), cs.shed.Value(), cs.stale.Value()
}

// QueueDelay exposes the class's queue-sojourn histogram (the pressure
// signal's raw series).
func (c *Controller) QueueDelay(class Class) *telemetry.Histogram {
	return &c.classes[class].queueDelay
}
