// Package respcache is the distributor-side hot-content cache: a sharded
// segmented-LRU response store with TinyLFU frequency admission,
// singleflight miss coalescing, and explicit management-plane
// invalidation.
//
// The paper's content-aware front end (§2.2) relays every request to a
// back end, so even the hottest static objects pay a full backend round
// trip. This package lets the distributor answer cacheable GET/HEAD
// requests itself: responses are stored under a byte budget, admission is
// gated on a count-min frequency sketch so one-hit-wonders cannot evict
// hot objects, concurrent misses on one path coalesce into a single
// backend fetch, and every management-plane mutation that changes content
// or placement synchronously purges the affected entries — the cache
// never serves what the doctree no longer holds. Expired entries remain
// usable for conditional revalidation and, within a stale window, for
// stale-on-error service when every replica of a path is down.
package respcache

import (
	"sync"
	"sync/atomic"
	"time"

	"webcluster/internal/httpx"
)

// State classifies a lookup result.
type State int

const (
	// Miss: no usable entry; the caller must fetch from a back end.
	Miss State = iota
	// Fresh: the entry is within its freshness lifetime and may be
	// served without contacting a back end.
	Fresh
	// Stale: the entry's freshness lapsed but it is within the stale
	// window — usable as a revalidation base and for stale-on-error.
	Stale
)

func (s State) String() string {
	switch s {
	case Fresh:
		return "fresh"
	case Stale:
		return "stale"
	default:
		return "miss"
	}
}

// entryOverhead approximates per-entry bookkeeping (node, map slot,
// headers) charged against the byte budget on top of the body.
const entryOverhead = 256

// Entry is one cached response. The Stored payload and its size are
// immutable after construction; freshness fields are atomics so a
// revalidation can extend an entry's life while other goroutines serve
// from it.
//
// distlint:cow — entries are shared snapshots once published; the
// cowdiscipline analyzer rejects field assignments through them
// (freshness updates go through the atomic setters).
type Entry struct {
	Stored httpx.Stored
	// storedAt is the unix-nano time the response was stored or last
	// successfully revalidated; Age is measured from it.
	storedAt atomic.Int64
	// expires is the unix-nano end of the freshness lifetime.
	expires atomic.Int64
	size    int64
}

// NewEntry builds an entry from a stored response, fresh for ttl from now.
func NewEntry(s httpx.Stored, now time.Time, ttl time.Duration) *Entry {
	e := &Entry{
		Stored: s,
		size: int64(len(s.Body)+len(s.ContentType)+len(s.ETag)+
			len(s.LastModified)+len(s.Date)) + entryOverhead,
	}
	e.storedAt.Store(now.UnixNano())
	e.expires.Store(now.Add(ttl).UnixNano())
	return e
}

// AgeSeconds is the RFC 7234 Age of the entry at now: seconds since it
// was stored or last revalidated.
func (e *Entry) AgeSeconds(now time.Time) int64 {
	age := (now.UnixNano() - e.storedAt.Load()) / int64(time.Second)
	if age < 0 {
		age = 0
	}
	return age
}

// Size is the budget charge for this entry.
func (e *Entry) Size() int64 { return e.size }

// Options configures a Cache.
type Options struct {
	// MaxBytes is the total byte budget across shards (default 64 MiB).
	MaxBytes int64
	// Shards is the shard count, rounded up to a power of two
	// (default 8).
	Shards int
	// FreshTTL is how long a stored response serves without
	// revalidation (default 5s).
	FreshTTL time.Duration
	// StaleTTL is how long past expiry an entry remains usable for
	// revalidation and stale-on-error (default 30s).
	StaleTTL time.Duration
	// MaxEntryBytes caps a single cacheable body (default 1 MiB).
	MaxEntryBytes int64
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Revalidated   int64 `json:"revalidated"`
	StaleServed   int64 `json:"staleServed"`
	NotModified   int64 `json:"notModified"`
	Coalesced     int64 `json:"coalesced"`
	Fills         int64 `json:"fills"`
	Rejected      int64 `json:"rejected"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	MaxBytes      int64 `json:"maxBytes"`
}

// Cache is the distributor-side response cache. All methods are safe for
// concurrent use.
type Cache struct {
	shards    []*shard
	shardMask uint64
	opts      Options

	flightMu sync.Mutex
	flights  map[string]*Flight

	hits          atomic.Int64
	misses        atomic.Int64
	revalidated   atomic.Int64
	staleServed   atomic.Int64
	notModified   atomic.Int64
	coalesced     atomic.Int64
	fills         atomic.Int64
	rejected      atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

// New builds a cache; zero option fields take the documented defaults.
func New(opts Options) *Cache {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 64 << 20
	}
	if opts.Shards <= 0 {
		opts.Shards = 8
	}
	shards := 1
	for shards < opts.Shards {
		shards <<= 1
	}
	if opts.FreshTTL <= 0 {
		opts.FreshTTL = 5 * time.Second
	}
	if opts.StaleTTL <= 0 {
		opts.StaleTTL = 30 * time.Second
	}
	if opts.MaxEntryBytes <= 0 {
		opts.MaxEntryBytes = 1 << 20
	}
	if opts.MaxEntryBytes > opts.MaxBytes {
		opts.MaxEntryBytes = opts.MaxBytes
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	c := &Cache{
		shards:    make([]*shard, shards),
		shardMask: uint64(shards - 1),
		opts:      opts,
		flights:   make(map[string]*Flight),
	}
	perShard := opts.MaxBytes / int64(shards)
	// size each sketch for the number of small entries the shard could
	// plausibly hold (4 KiB average object)
	sketchKeys := int(perShard / 4096)
	for i := range c.shards {
		c.shards[i] = newShard(perShard, sketchKeys)
	}
	return c
}

// hashKey is FNV-1a over the path.
func hashKey(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return h
}

func (c *Cache) shardFor(h uint64) *shard {
	// fold the high bits in so shard index and sketch rows (which use
	// the low bits) stay decorrelated
	return c.shards[(h^h>>32)&c.shardMask]
}

// Now returns the cache clock's current time.
func (c *Cache) Now() time.Time { return c.opts.Clock() }

// FreshFor returns the configured freshness lifetime.
func (c *Cache) FreshFor() time.Duration { return c.opts.FreshTTL }

// MaxEntryBytes returns the per-entry body cap.
func (c *Cache) MaxEntryBytes() int64 { return c.opts.MaxEntryBytes }

// Get looks the path up, recording the access in the frequency sketch
// either way, and classifies the result by freshness at the cache clock.
func (c *Cache) Get(path string) (*Entry, State) {
	h := hashKey(path)
	now := c.opts.Clock().UnixNano()
	e := c.shardFor(h).get(path, h, now, int64(c.opts.StaleTTL))
	if e == nil {
		c.misses.Add(1)
		return nil, Miss
	}
	if now <= e.expires.Load() {
		c.hits.Add(1)
		return e, Fresh
	}
	return e, Stale
}

// Put stores the entry for path, subject to size and frequency admission.
// Returns whether the entry was admitted.
func (c *Cache) Put(path string, e *Entry) bool {
	if int64(len(e.Stored.Body)) > c.opts.MaxEntryBytes {
		c.rejected.Add(1)
		return false
	}
	h := hashKey(path)
	var ev int64
	ok := c.shardFor(h).put(path, h, e, &ev)
	c.evictions.Add(ev)
	if ok {
		c.fills.Add(1)
	} else {
		c.rejected.Add(1)
	}
	return ok
}

// Refresh extends e's freshness lifetime from now (a 304 revalidation
// confirmed the stored body is still current).
func (c *Cache) Refresh(e *Entry) {
	now := c.opts.Clock()
	e.storedAt.Store(now.UnixNano())
	e.expires.Store(now.Add(c.opts.FreshTTL).UnixNano())
	c.revalidated.Add(1)
}

// Invalidate removes the entry for path and dooms any in-flight fetch so
// a response read before the mutation can never be stored after it.
// Returns the number of entries dropped (0 or 1).
func (c *Cache) Invalidate(path string) int {
	c.invalidations.Add(1)
	c.flightMu.Lock()
	defer c.flightMu.Unlock()
	if f, ok := c.flights[path]; ok {
		f.doomed.Store(true)
		// detach so post-purge requesters start a clean fetch instead
		// of adopting the doomed flight's pre-mutation response
		delete(c.flights, path)
	}
	// the shard removal stays under flightMu so it serializes against
	// Finish's doomed-check-then-store: either Finish stored first and the
	// entry is removed here, or the doom is visible and Finish skips the
	// store — a purged body can never be re-inserted afterwards
	h := hashKey(path)
	if c.shardFor(h).invalidate(path) {
		return 1
	}
	return 0
}

// InvalidateAll empties the cache (console `purge *`), dooming every
// in-flight fetch. Returns the number of entries dropped.
func (c *Cache) InvalidateAll() int {
	c.invalidations.Add(1)
	c.flightMu.Lock()
	defer c.flightMu.Unlock()
	for path, f := range c.flights {
		f.doomed.Store(true)
		delete(c.flights, path)
	}
	dropped := 0
	for _, s := range c.shards {
		dropped += s.purgeAll()
	}
	return dropped
}

// CountStale records one stale-on-error service.
func (c *Cache) CountStale() { c.staleServed.Add(1) }

// CountNotModified records one 304 served to a client conditional.
func (c *Cache) CountNotModified() { c.notModified.Add(1) }

// Stats snapshots the counters and current residency.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Revalidated:   c.revalidated.Load(),
		StaleServed:   c.staleServed.Load(),
		NotModified:   c.notModified.Load(),
		Coalesced:     c.coalesced.Load(),
		Fills:         c.fills.Load(),
		Rejected:      c.rejected.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		MaxBytes:      c.opts.MaxBytes,
	}
	for _, s := range c.shards {
		n, b := s.usage()
		st.Entries += n
		st.Bytes += b
	}
	return st
}

// Flight is one coalesced backend fetch. The leader performs the fetch
// and calls Finish; followers block in Wait and share the result. An
// Invalidate racing the fetch dooms the flight: its response is still
// returned to the requesters that were already waiting (it was valid when
// they asked) but it is not stored, and the flight is detached so later
// requesters refetch.
type Flight struct {
	c      *Cache
	key    string
	done   chan struct{}
	doomed atomic.Bool
	entry  *Entry
	err    error
}

// BeginFlight joins or creates the in-flight fetch for path. leader is
// true when the caller created the flight and must Finish it.
func (c *Cache) BeginFlight(path string) (f *Flight, leader bool) {
	c.flightMu.Lock()
	defer c.flightMu.Unlock()
	if f, ok := c.flights[path]; ok {
		c.coalesced.Add(1)
		return f, false
	}
	f = &Flight{c: c, key: path, done: make(chan struct{})}
	c.flights[path] = f
	return f, true
}

// Doomed reports whether an invalidation raced this flight.
func (f *Flight) Doomed() bool { return f.doomed.Load() }

// Finish resolves the flight: detaches it, stores the entry (unless the
// flight was doomed or errored), and wakes the followers. Exactly one
// call, by the leader.
func (f *Flight) Finish(e *Entry, err error) {
	f.entry, f.err = e, err
	f.c.flightMu.Lock()
	// an Invalidate may already have detached us; only remove our own
	// registration, never a successor flight
	if cur, ok := f.c.flights[f.key]; ok && cur == f {
		delete(f.c.flights, f.key)
	}
	// doomed-check and store happen under flightMu, which Invalidate also
	// holds across its doom+remove: the two are serialized, so a response
	// read before a purge cannot land in the cache after it
	if e != nil && err == nil && !f.doomed.Load() {
		f.c.Put(f.key, e)
	}
	f.c.flightMu.Unlock()
	close(f.done)
}

// Wait blocks until the leader finishes and returns the shared result.
func (f *Flight) Wait() (*Entry, error) {
	<-f.done
	return f.entry, f.err
}
