package respcache

// Sharded segmented-LRU store. Each shard owns a map plus two intrusive
// recency lists — probation for entries seen once, protected for entries
// hit again — under a per-shard byte budget. Eviction always claims the
// probation tail first, and a candidate only displaces it when the
// frequency sketch says the candidate is the hotter key (TinyLFU
// admission). Protected overflow demotes back to probation rather than
// straight to eviction, which is what gives SLRU its scan resistance.

import "sync"

// node is an intrusive doubly-linked list element in one of the two
// recency segments.
type node struct {
	key        string
	hash       uint64
	entry      *Entry
	prev, next *node
	protected  bool
}

// lruList is a circular intrusive list with a sentinel root; root.next is
// the most recent element, root.prev the eviction candidate.
type lruList struct {
	root node
	len  int
}

func (l *lruList) init() {
	l.root.prev = &l.root
	l.root.next = &l.root
}

func (l *lruList) pushFront(n *node) {
	n.prev = &l.root
	n.next = l.root.next
	n.prev.next = n
	n.next.prev = n
	l.len++
}

func (l *lruList) remove(n *node) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
	l.len--
}

func (l *lruList) moveFront(n *node) {
	l.remove(n)
	l.pushFront(n)
}

// back returns the least-recently-used element, nil when empty.
func (l *lruList) back() *node {
	if l.len == 0 {
		return nil
	}
	return l.root.prev
}

// protectedShare is the fraction of a shard's budget the protected
// segment may hold before demoting back into probation.
const protectedShare = 0.8

type shard struct {
	mu        sync.Mutex
	items     map[string]*node
	probation lruList
	protected lruList
	sketch    *sketch
	bytes     int64 // bytes used across both segments
	maxBytes  int64
	protBytes int64 // bytes in the protected segment
	protCap   int64
}

func newShard(maxBytes int64, sketchKeys int) *shard {
	s := &shard{
		items:    make(map[string]*node),
		sketch:   newSketch(sketchKeys),
		maxBytes: maxBytes,
		protCap:  int64(float64(maxBytes) * protectedShare),
	}
	s.probation.init()
	s.protected.init()
	return s
}

// get returns the live entry for key, recording the lookup in the
// frequency sketch (for hits and misses both) and adjusting recency: a
// probation hit promotes to protected, a protected hit refreshes
// recency. Entries past the stale horizon are removed and reported as
// absent.
func (s *shard) get(key string, hash uint64, nowNanos int64, staleTTL int64) *Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sketch.bump(hash)
	n, ok := s.items[key]
	if !ok {
		return nil
	}
	if nowNanos > n.entry.expires.Load()+staleTTL {
		s.removeLocked(n)
		return nil
	}
	if n.protected {
		s.protected.moveFront(n)
	} else {
		// second hit: promote, demoting protected overflow back into
		// probation so hot-but-idle entries face eviction honestly
		s.probation.remove(n)
		n.protected = true
		s.protected.pushFront(n)
		s.protBytes += n.entry.size
		for s.protBytes > s.protCap {
			v := s.protected.back()
			if v == nil || v == n {
				break
			}
			s.protected.remove(v)
			v.protected = false
			s.probation.pushFront(v)
			s.protBytes -= v.entry.size
		}
	}
	return n.entry
}

// put inserts or replaces the entry, applying TinyLFU admission when the
// shard is full: the candidate is dropped unless the sketch estimates it
// at least as popular as each probation victim it would evict. Returns
// false when admission rejected the entry.
func (s *shard) put(key string, hash uint64, e *Entry, evictions *int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.items[key]; ok {
		// replacement keeps the node's segment but counts as a touch, so
		// a reclaim triggered by a grown body victimizes colder keys first
		s.bytes += e.size - old.entry.size
		if old.protected {
			s.protBytes += e.size - old.entry.size
			s.protected.moveFront(old)
		} else {
			s.probation.moveFront(old)
		}
		old.entry = e
		s.reclaimLocked(hash, true, evictions)
		return true
	}
	if e.size > s.maxBytes {
		return false
	}
	if !s.reclaimNeededLocked(e.size) {
		// full: admission duel against the probation victim
		if !s.admitLocked(hash, e.size, evictions) {
			return false
		}
	}
	n := &node{key: key, hash: hash, entry: e}
	s.items[key] = n
	s.probation.pushFront(n)
	s.bytes += e.size
	return true
}

// reclaimNeededLocked reports whether size fits without eviction.
func (s *shard) reclaimNeededLocked(size int64) bool {
	return s.bytes+size <= s.maxBytes
}

// admitLocked makes room for a candidate of the given frequency and size,
// evicting probation victims only while the candidate's estimated
// frequency is at least each victim's. Returns whether the candidate won.
func (s *shard) admitLocked(hash uint64, size int64, evictions *int64) bool {
	candFreq := s.sketch.estimate(hash)
	for s.bytes+size > s.maxBytes {
		v := s.probation.back()
		if v == nil {
			v = s.protected.back()
		}
		if v == nil {
			return false
		}
		if s.sketch.estimate(v.hash) > candFreq {
			return false
		}
		s.removeLocked(v)
		*evictions++
	}
	return true
}

// reclaimLocked evicts unconditionally until the budget holds (used after
// an in-place replacement grew an entry; the key is already resident so
// admission does not apply, but it must not blow the budget).
func (s *shard) reclaimLocked(self uint64, force bool, evictions *int64) {
	for s.bytes > s.maxBytes {
		v := s.probation.back()
		if v == nil {
			v = s.protected.back()
		}
		if v == nil || (v.hash == self && !force) {
			return
		}
		s.removeLocked(v)
		*evictions++
		force = false
		// never evict more than the whole shard chasing one oversized
		// replacement; removeLocked shrank bytes, loop re-checks
		if s.probation.len == 0 && s.protected.len == 0 {
			return
		}
	}
}

// removeLocked unlinks n from whichever segment holds it.
func (s *shard) removeLocked(n *node) {
	if n.protected {
		s.protected.remove(n)
		s.protBytes -= n.entry.size
	} else {
		s.probation.remove(n)
	}
	delete(s.items, n.key)
	s.bytes -= n.entry.size
}

// invalidate removes key, reporting whether an entry was present.
func (s *shard) invalidate(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.items[key]
	if !ok {
		return false
	}
	s.removeLocked(n)
	return true
}

// purgeAll empties the shard, returning how many entries it dropped.
func (s *shard) purgeAll() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := len(s.items)
	s.items = make(map[string]*node)
	s.probation.init()
	s.protected.init()
	s.bytes = 0
	s.protBytes = 0
	return dropped
}

// usage returns the shard's entry count and resident bytes.
func (s *shard) usage() (entries int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items), s.bytes
}
