package respcache

// TinyLFU-style frequency sketch: a 4-bit count-min sketch with periodic
// aging. The cache records every lookup's key here — hits and misses alike
// — so at admission time it can compare how often the candidate has been
// requested against the eviction victim and keep whichever is hotter.
// One-hit-wonder bodies never displace a popular object because their
// estimated frequency stays at 1.
//
// Counters saturate at 15; once the total number of recorded increments
// reaches ~8x the table width every counter is halved, so the sketch
// tracks recent popularity rather than all-time popularity (the "aging" or
// "reset" operation from the TinyLFU paper).

type sketch struct {
	// rows are four independent hash rows packed two counters per byte.
	rows [4][]byte
	mask uint64
	// additions counts increments since the last aging pass.
	additions int
	sample    int
}

// newSketch sizes the sketch for roughly n distinct keys (rounded up to a
// power of two, minimum 256 counters per row).
func newSketch(n int) *sketch {
	w := 256
	for w < n {
		w <<= 1
	}
	s := &sketch{mask: uint64(w - 1), sample: 8 * w}
	for i := range s.rows {
		s.rows[i] = make([]byte, w/2)
	}
	return s
}

// spread mixes one 64-bit hash into four row indexes.
func (s *sketch) spread(h uint64, row int) uint64 {
	// distinct odd multipliers per row decorrelate the indexes
	const (
		m0 = 0x9e3779b97f4a7c15
		m1 = 0xc2b2ae3d27d4eb4f
		m2 = 0x165667b19e3779f9
		m3 = 0xff51afd7ed558ccd
	)
	switch row {
	case 0:
		h *= m0
	case 1:
		h *= m1
	case 2:
		h *= m2
	default:
		h *= m3
	}
	h ^= h >> 32
	return h & s.mask
}

func (s *sketch) get(row int, idx uint64) byte {
	b := s.rows[row][idx>>1]
	if idx&1 == 1 {
		return b >> 4
	}
	return b & 0x0f
}

func (s *sketch) set(row int, idx uint64, v byte) {
	p := &s.rows[row][idx>>1]
	if idx&1 == 1 {
		*p = (*p & 0x0f) | (v << 4)
	} else {
		*p = (*p & 0xf0) | v
	}
}

// bump records one occurrence of the key hash, aging the sketch when the
// sample window fills.
func (s *sketch) bump(h uint64) {
	bumped := false
	for row := 0; row < 4; row++ {
		idx := s.spread(h, row)
		if v := s.get(row, idx); v < 15 {
			s.set(row, idx, v+1)
			bumped = true
		}
	}
	if bumped {
		s.additions++
		if s.additions >= s.sample {
			s.age()
		}
	}
}

// estimate returns the minimum counter across rows — the classic
// count-min upper bound on the key's recent request count.
func (s *sketch) estimate(h uint64) byte {
	min := byte(15)
	for row := 0; row < 4; row++ {
		if v := s.get(row, s.spread(h, row)); v < min {
			min = v
		}
	}
	return min
}

// age halves every counter, decaying old popularity.
func (s *sketch) age() {
	for row := range s.rows {
		for i := range s.rows[row] {
			// halve both packed counters in one shift: clearing the bits
			// that would leak between nibbles first
			s.rows[row][i] = (s.rows[row][i] >> 1) & 0x77
		}
	}
	s.additions /= 2
}
