package respcache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"webcluster/internal/httpx"
)

// fakeClock is a manually-advanced cache clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2024, time.June, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func storedBody(n int) httpx.Stored {
	body := make([]byte, n)
	for i := range body {
		body[i] = byte('a' + i%26)
	}
	return httpx.Stored{StatusCode: 200, ContentType: "text/html", Body: body}
}

// testCache builds a single-shard cache with a fake clock so recency,
// admission, and freshness are all deterministic.
func testCache(maxBytes int64) (*Cache, *fakeClock) {
	clk := newFakeClock()
	c := New(Options{
		MaxBytes: maxBytes,
		Shards:   1,
		FreshTTL: 10 * time.Second,
		StaleTTL: 20 * time.Second,
		Clock:    clk.now,
	})
	return c, clk
}

func TestSketchBumpEstimate(t *testing.T) {
	s := newSketch(16)
	h := hashKey("/a.html")
	if got := s.estimate(h); got != 0 {
		t.Fatalf("fresh sketch estimate = %d", got)
	}
	for i := 1; i <= 5; i++ {
		s.bump(h)
		if got := s.estimate(h); got != byte(i) {
			t.Fatalf("after %d bumps estimate = %d", i, got)
		}
	}
	// counters saturate at 15
	for i := 0; i < 40; i++ {
		s.bump(h)
	}
	if got := s.estimate(h); got != 15 {
		t.Fatalf("saturated estimate = %d, want 15", got)
	}
	// aging halves every counter
	s.age()
	if got := s.estimate(h); got != 7 {
		t.Fatalf("aged estimate = %d, want 7", got)
	}
	// an unrelated key stays near zero
	if got := s.estimate(hashKey("/never-seen")); got > 1 {
		t.Fatalf("cold key estimate = %d", got)
	}
}

func TestSketchAgingTriggers(t *testing.T) {
	s := newSketch(1) // 256 counters, sample window 2048
	hot := hashKey("/hot")
	for i := 0; i < 30; i++ {
		s.bump(hot)
	}
	// churn distinct keys until the sample window rolls the sketch over
	for i := 0; s.estimate(hot) == 15 && i < 4*s.sample; i++ {
		s.bump(hashKey(fmt.Sprintf("/churn/%d", i)))
	}
	if got := s.estimate(hot); got >= 15 {
		t.Fatalf("aging never decayed the hot key: estimate = %d", got)
	}
}

func TestGetStateTransitions(t *testing.T) {
	c, clk := testCache(1 << 20)
	const path = "/page.html"
	if e, st := c.Get(path); st != Miss || e != nil {
		t.Fatalf("empty cache Get = (%v, %v)", e, st)
	}
	e := NewEntry(storedBody(100), c.Now(), c.FreshFor())
	if !c.Put(path, e) {
		t.Fatal("Put into empty cache rejected")
	}
	if got, st := c.Get(path); st != Fresh || got != e {
		t.Fatalf("after Put Get = (%v, %v)", got, st)
	}
	clk.advance(11 * time.Second) // past FreshTTL
	if got, st := c.Get(path); st != Stale || got != e {
		t.Fatalf("after expiry Get = (%v, %v)", got, st)
	}
	if age := e.AgeSeconds(c.Now()); age != 11 {
		t.Fatalf("AgeSeconds = %d, want 11", age)
	}
	// a 304 revalidation restores freshness and resets Age
	c.Refresh(e)
	if _, st := c.Get(path); st != Fresh {
		t.Fatalf("after Refresh state = %v", st)
	}
	if age := e.AgeSeconds(c.Now()); age != 0 {
		t.Fatalf("AgeSeconds after Refresh = %d", age)
	}
	clk.advance(31 * time.Second) // past FreshTTL+StaleTTL
	if got, st := c.Get(path); st != Miss || got != nil {
		t.Fatalf("past stale horizon Get = (%v, %v)", got, st)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("expired entry still resident: %+v", st)
	}
}

func TestStateString(t *testing.T) {
	if Miss.String() != "miss" || Fresh.String() != "fresh" || Stale.String() != "stale" {
		t.Fatalf("State strings: %v %v %v", Miss, Fresh, Stale)
	}
}

func TestPutRejectsOversizedBody(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{MaxBytes: 1 << 20, MaxEntryBytes: 512, Shards: 1, Clock: clk.now})
	e := NewEntry(storedBody(1024), c.Now(), c.FreshFor())
	if c.Put("/big", e) {
		t.Fatal("oversized body admitted")
	}
	if st := c.Stats(); st.Rejected != 1 || st.Fills != 0 {
		t.Fatalf("stats after oversized put: %+v", st)
	}
}

// place runs the distributor's miss sequence: a Get (which records the
// path in the frequency sketch) followed by a Put.
func place(t *testing.T, c *Cache, path string, size int) *Entry {
	t.Helper()
	c.Get(path)
	e := NewEntry(storedBody(size), c.Now(), c.FreshFor())
	if !c.Put(path, e) {
		t.Fatalf("Put(%s) rejected", path)
	}
	return e
}

func TestAdmissionRejectsColdCandidate(t *testing.T) {
	// budget fits three ~1256-byte entries (1000 body + overhead)
	c, _ := testCache(4096)
	for _, p := range []string{"/a", "/b", "/c"} {
		place(t, c, p, 1000)
	}
	// heat the residents so the probation victim outranks a newcomer
	for i := 0; i < 5; i++ {
		for _, p := range []string{"/a", "/b", "/c"} {
			c.Get(p)
		}
	}
	// a one-hit-wonder must not displace them
	c.Get("/cold")
	cold := NewEntry(storedBody(1000), c.Now(), c.FreshFor())
	if c.Put("/cold", cold) {
		t.Fatal("cold candidate displaced a hot resident")
	}
	for _, p := range []string{"/a", "/b", "/c"} {
		if _, st := c.Get(p); st != Fresh {
			t.Fatalf("%s lost after rejected admission: %v", p, st)
		}
	}
	// once the candidate is requested often enough, it wins the duel
	for i := 0; i < 10; i++ {
		c.Get("/hot")
	}
	hot := NewEntry(storedBody(1000), c.Now(), c.FreshFor())
	if !c.Put("/hot", hot) {
		t.Fatal("hot candidate rejected")
	}
	if _, st := c.Get("/hot"); st != Fresh {
		t.Fatal("admitted entry not served")
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("admission evicted nothing: %+v", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("budget blown: %d > %d", st.Bytes, st.MaxBytes)
	}
}

func TestProtectedSegmentSurvivesEviction(t *testing.T) {
	c, _ := testCache(4096)
	place(t, c, "/keep", 1000)
	c.Get("/keep") // second hit promotes to protected
	place(t, c, "/b", 1000)
	place(t, c, "/c", 1000)
	// hot newcomer forces one eviction; the probation tail (/b) must go
	// before the protected entry
	for i := 0; i < 8; i++ {
		c.Get("/new")
	}
	if !c.Put("/new", NewEntry(storedBody(1000), c.Now(), c.FreshFor())) {
		t.Fatal("hot newcomer rejected")
	}
	if _, st := c.Get("/keep"); st != Fresh {
		t.Fatal("protected entry evicted while probation had a victim")
	}
	if _, st := c.Get("/b"); st != Miss {
		t.Fatal("probation tail survived eviction")
	}
}

func TestReplacementStaysInBudget(t *testing.T) {
	c, _ := testCache(4096)
	place(t, c, "/a", 1000)
	place(t, c, "/b", 1000)
	// replace /a with a much larger body: same key, so no admission
	// duel, but the budget must still hold afterwards
	big := NewEntry(storedBody(3000), c.Now(), c.FreshFor())
	if !c.Put("/a", big) {
		t.Fatal("replacement rejected")
	}
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("replacement blew the budget: %d > %d", st.Bytes, st.MaxBytes)
	}
	if got, state := c.Get("/a"); state != Fresh || got != big {
		t.Fatalf("replacement not visible: (%v, %v)", got, state)
	}
}

func TestInvalidate(t *testing.T) {
	c, _ := testCache(1 << 20)
	place(t, c, "/x", 100)
	place(t, c, "/y", 100)
	if n := c.Invalidate("/x"); n != 1 {
		t.Fatalf("Invalidate dropped %d", n)
	}
	if n := c.Invalidate("/x"); n != 0 {
		t.Fatalf("second Invalidate dropped %d", n)
	}
	if _, st := c.Get("/x"); st != Miss {
		t.Fatal("invalidated entry still served")
	}
	if _, st := c.Get("/y"); st != Fresh {
		t.Fatal("unrelated entry lost")
	}
	if n := c.InvalidateAll(); n != 1 {
		t.Fatalf("InvalidateAll dropped %d, want 1", n)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("cache not empty after InvalidateAll: %+v", st)
	}
}

func TestFlightCoalescing(t *testing.T) {
	c, _ := testCache(1 << 20)
	f1, leader := c.BeginFlight("/p")
	if !leader {
		t.Fatal("first flight not leader")
	}
	f2, leader2 := c.BeginFlight("/p")
	if leader2 || f2 != f1 {
		t.Fatal("second requester did not join the flight")
	}
	done := make(chan *Entry, 1)
	go func() {
		e, err := f2.Wait()
		if err != nil {
			t.Error(err)
		}
		done <- e
	}()
	e := NewEntry(storedBody(100), c.Now(), c.FreshFor())
	f1.Finish(e, nil)
	if got := <-done; got != e {
		t.Fatalf("follower got %v", got)
	}
	// the leader's result was stored
	if _, st := c.Get("/p"); st != Fresh {
		t.Fatal("coalesced fetch not cached")
	}
	if st := c.Stats(); st.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", st.Coalesced)
	}
	// the flight is detached: a new miss starts a new fetch
	if _, leader := c.BeginFlight("/p"); !leader {
		t.Fatal("finished flight still registered")
	}
}

func TestFlightErrorShared(t *testing.T) {
	c, _ := testCache(1 << 20)
	f, _ := c.BeginFlight("/err")
	f2, _ := c.BeginFlight("/err")
	wantErr := fmt.Errorf("backend down")
	go f.Finish(nil, wantErr)
	if _, err := f2.Wait(); err != wantErr {
		t.Fatalf("follower err = %v", err)
	}
	if _, st := c.Get("/err"); st != Miss {
		t.Fatal("errored flight stored an entry")
	}
}

func TestInvalidateDoomsFlight(t *testing.T) {
	c, _ := testCache(1 << 20)
	f, _ := c.BeginFlight("/doomed")
	c.Invalidate("/doomed")
	if !f.Doomed() {
		t.Fatal("invalidation did not doom the in-flight fetch")
	}
	// the doomed flight was detached: a post-purge requester gets a
	// fresh flight, not the pre-mutation response
	f2, leader := c.BeginFlight("/doomed")
	if !leader || f2 == f {
		t.Fatal("post-invalidate requester adopted the doomed flight")
	}
	// the doomed leader's result reaches its own waiters but is never
	// stored, and finishing must not unregister the successor flight
	e := NewEntry(storedBody(100), c.Now(), c.FreshFor())
	f.Finish(e, nil)
	if got, err := f.Wait(); got != e || err != nil {
		t.Fatalf("doomed flight Wait = (%v, %v)", got, err)
	}
	if _, st := c.Get("/doomed"); st != Miss {
		t.Fatal("doomed flight stored its pre-mutation entry")
	}
	c.flightMu.Lock()
	cur := c.flights["/doomed"]
	c.flightMu.Unlock()
	if cur != f2 {
		t.Fatalf("successor flight lost: %v", cur)
	}
	f2.Finish(nil, nil)
}

func TestStatsCounters(t *testing.T) {
	c, clk := testCache(1 << 20)
	c.Get("/s") // miss
	e := NewEntry(storedBody(64), c.Now(), c.FreshFor())
	c.Put("/s", e)
	c.Get("/s") // hit
	clk.advance(11 * time.Second)
	c.Get("/s") // stale (neither hit nor miss)
	c.CountStale()
	c.CountNotModified()
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Fills != 1 ||
		st.StaleServed != 1 || st.NotModified != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Entries != 1 || st.Bytes != e.Size() || st.MaxBytes != 1<<20 {
		t.Fatalf("residency = %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{MaxBytes: 64 << 10, Shards: 4, FreshTTL: time.Hour, Clock: clk.now})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				path := fmt.Sprintf("/obj/%d", i%17)
				switch {
				case i%31 == 0:
					c.Invalidate(path)
				case i%7 == 0:
					f, leader := c.BeginFlight(path)
					if leader {
						f.Finish(NewEntry(storedBody(128), c.Now(), c.FreshFor()), nil)
					} else {
						_, _ = f.Wait()
					}
				default:
					if _, st := c.Get(path); st == Miss {
						c.Put(path, NewEntry(storedBody(128), c.Now(), c.FreshFor()))
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("budget blown under concurrency: %d > %d", st.Bytes, st.MaxBytes)
	}
}
