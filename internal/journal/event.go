package journal

// Actor identifies which control-plane component recorded an event.
type Actor uint8

const (
	// ActorPlanner is the §3.3 load balancer producing decisions.
	ActorPlanner Actor = iota + 1
	// ActorController is the management controller executing plans.
	ActorController
	// ActorDistributor is the request-routing front end.
	ActorDistributor
	// ActorMonitor is the liveness watcher.
	ActorMonitor
	// ActorFaults is the chaos injector.
	ActorFaults
	// ActorAgent is a node-side management broker.
	ActorAgent
	// ActorRecorder is the flight recorder itself.
	ActorRecorder
)

// String returns the actor's wire label.
func (a Actor) String() string {
	switch a {
	case ActorPlanner:
		return "planner"
	case ActorController:
		return "controller"
	case ActorDistributor:
		return "distributor"
	case ActorMonitor:
		return "monitor"
	case ActorFaults:
		return "faults"
	case ActorAgent:
		return "agent"
	case ActorRecorder:
		return "recorder"
	}
	return "unknown"
}

// Kind classifies what happened. The A/B/F payload fields carry
// kind-specific readings (documented per constant) so the hot record
// path never formats strings.
type Kind uint8

const (
	// KindPlanReplicate is a planner decision to add a copy.
	// A = interval hits of the document, F = load CV the planner saw.
	KindPlanReplicate Kind = iota + 1
	// KindPlanOffload is a planner decision to drop a copy.
	// A = interval hits, F = load CV.
	KindPlanOffload
	// KindApply is a controller plan executed against the cluster.
	KindApply
	// KindApplyFail is a controller plan that failed mid-execution.
	KindApplyFail
	// KindPurge is a coherence invalidation after a mutation.
	// A = cache entries dropped.
	KindPurge
	// KindFailover is the distributor re-routing a request off a dead
	// replica. Node = failed node, Detail = replacement node.
	KindFailover
	// KindRetryExhausted is the distributor giving up on a request
	// after its retry budget (the client saw a 502/503).
	KindRetryExhausted
	// KindAdmissionShed is a service class entering overload shedding.
	KindAdmissionShed
	// KindAdmissionRecover is a class leaving shedding.
	KindAdmissionRecover
	// KindNodeDown is a monitor up→down transition. Detail = probe error.
	KindNodeDown
	// KindNodeUp is a monitor down→up transition.
	KindNodeUp
	// KindFault is an injected fault firing for the first time at a
	// point under the current rule generation. A = rule generation.
	KindFault
	// KindAgentOp is a node-side broker executing a mutating op.
	KindAgentOp
	// KindSnapshot is the flight recorder dumping a bundle.
	// Detail = trigger reason.
	KindSnapshot
)

// String returns the kind's wire label.
func (k Kind) String() string {
	switch k {
	case KindPlanReplicate:
		return "plan-replicate"
	case KindPlanOffload:
		return "plan-offload"
	case KindApply:
		return "apply"
	case KindApplyFail:
		return "apply-fail"
	case KindPurge:
		return "purge"
	case KindFailover:
		return "failover"
	case KindRetryExhausted:
		return "retry-exhausted"
	case KindAdmissionShed:
		return "admission-shed"
	case KindAdmissionRecover:
		return "admission-recover"
	case KindNodeDown:
		return "node-down"
	case KindNodeUp:
		return "node-up"
	case KindFault:
		return "fault"
	case KindAgentOp:
		return "agent-op"
	case KindSnapshot:
		return "snapshot"
	}
	return "unknown"
}

// Event is one journal entry. It is a flat value type — no pointers, no
// interfaces — so recording is a single struct copy into a ring slot
// and a snapshot is a memcpy out. Strings must be prepared by the
// caller before Record (the journalsafe lint rule enforces this at call
// sites): the journal itself never formats, concatenates, or allocates.
type Event struct {
	// Seq is the journal-local monotonic sequence number, stamped by
	// Record. Merged streams order by (Time, Src, Seq).
	Seq uint64 `json:"seq"`
	// Time is the record wall-clock time in Unix nanoseconds.
	Time int64 `json:"time"`
	// Trace links causally related events: a fault, the failovers it
	// caused, the monitor transition, the repair decisions, and the
	// purges they triggered all share the incident's trace ID.
	Trace uint64 `json:"trace,omitempty"`
	// Actor and Kind say who recorded what.
	Actor Actor `json:"actor"`
	Kind  Kind  `json:"kind"`
	// Src is the node label of the journal that recorded the event,
	// stamped by Record; it disambiguates merged cluster streams.
	Src string `json:"src,omitempty"`
	// Node is the subject node ("n3" went down, failover off "n1").
	Node string `json:"node,omitempty"`
	// Path is the subject document, when the event concerns one.
	Path string `json:"path,omitempty"`
	// Detail is free-form, kind-specific context (probe error text,
	// planner reason, replacement node).
	Detail string `json:"detail,omitempty"`
	// A, B, F are kind-specific numeric payloads (see Kind constants).
	A int64   `json:"a,omitempty"`
	B int64   `json:"b,omitempty"`
	F float64 `json:"f,omitempty"`
}
