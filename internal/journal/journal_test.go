package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordSnapshotOrder(t *testing.T) {
	j := New(Options{Node: "front", Size: 64})
	for i := 0; i < 10; i++ {
		j.Record(Event{Actor: ActorController, Kind: KindApply, A: int64(i)})
	}
	evs := j.Snapshot(0)
	if len(evs) != 10 {
		t.Fatalf("snapshot len = %d, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.A != int64(i) {
			t.Fatalf("event %d: A = %d, want %d (sequence order)", i, ev.A, i)
		}
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d: Seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Src != "front" {
			t.Fatalf("event %d: Src = %q, want front", i, ev.Src)
		}
		if ev.Time == 0 {
			t.Fatalf("event %d: Time not stamped", i)
		}
	}
	if got := j.Snapshot(3); len(got) != 3 || got[0].A != 7 {
		t.Fatalf("Snapshot(3) = %v, want newest 3 (A=7,8,9)", got)
	}
}

func TestOverflowKeepsNewest(t *testing.T) {
	// 2 stripes × 16 slots = 32 capacity.
	j := New(Options{Size: 32, Stripes: 2})
	const total = 100
	for i := 0; i < total; i++ {
		j.Record(Event{Kind: KindPurge, A: int64(i)})
	}
	evs := j.Snapshot(0)
	if len(evs) != j.Cap() {
		t.Fatalf("snapshot len = %d, want full capacity %d", len(evs), j.Cap())
	}
	// Drop policy: each stripe overwrites its oldest, so the survivors
	// are exactly the newest Cap() events.
	for i, ev := range evs {
		want := int64(total - j.Cap() + i)
		if ev.A != want {
			t.Fatalf("event %d: A = %d, want %d (oldest overwritten)", i, ev.A, want)
		}
	}
	if j.Recorded() != total {
		t.Fatalf("Recorded = %d, want %d", j.Recorded(), total)
	}
	if j.Dropped() != total-uint64(j.Cap()) {
		t.Fatalf("Dropped = %d, want %d", j.Dropped(), total-uint64(j.Cap()))
	}
}

func TestSince(t *testing.T) {
	j := New(Options{Size: 64})
	for i := 0; i < 8; i++ {
		j.Record(Event{Kind: KindApply, A: int64(i)})
	}
	evs := j.Since(5, 0)
	if len(evs) != 3 || evs[0].Seq != 6 {
		t.Fatalf("Since(5) = %+v, want seq 6,7,8", evs)
	}
	if got := j.Since(100, 0); len(got) != 0 {
		t.Fatalf("Since(100) = %+v, want empty", got)
	}
}

func TestMergeOrdersByTimeThenSrcSeq(t *testing.T) {
	mk := func(src string, seq uint64, ts int64) Event {
		return Event{Src: src, Seq: seq, Time: ts, Kind: KindApply}
	}
	merged := Merge(
		[]Event{mk("b", 1, 30), mk("b", 2, 10)},
		[]Event{mk("a", 1, 10), mk("a", 2, 20)},
	)
	want := []struct {
		src string
		seq uint64
	}{{"a", 1}, {"b", 2}, {"a", 2}, {"b", 1}}
	if len(merged) != len(want) {
		t.Fatalf("merged len = %d, want %d", len(merged), len(want))
	}
	for i, w := range want {
		if merged[i].Src != w.src || merged[i].Seq != w.seq {
			t.Fatalf("merged[%d] = %s/%d, want %s/%d", i, merged[i].Src, merged[i].Seq, w.src, w.seq)
		}
	}
}

func TestIncidentLifecycle(t *testing.T) {
	j := New(Options{Size: 64})
	t1 := j.Incident("n2")
	if t1 == 0 {
		t.Fatal("Incident returned 0")
	}
	if got := j.Incident("n2"); got != t1 {
		t.Fatalf("second Incident = %d, want same trace %d", got, t1)
	}
	if got := j.IncidentTrace("n2"); got != t1 {
		t.Fatalf("IncidentTrace = %d, want %d", got, t1)
	}
	if got := j.AnyIncident(); got != t1 {
		t.Fatalf("AnyIncident = %d, want %d", got, t1)
	}
	t2 := j.Incident("n3")
	if t2 == t1 {
		t.Fatal("distinct incidents share a trace")
	}
	if got := j.AnyIncident(); got != t2 {
		t.Fatalf("AnyIncident after second open = %d, want newest %d", got, t2)
	}
	if got := j.EndIncident("n2"); got != t1 {
		t.Fatalf("EndIncident = %d, want %d", got, t1)
	}
	if got := j.IncidentTrace("n2"); got != 0 {
		t.Fatalf("IncidentTrace after end = %d, want 0", got)
	}
	if got := j.AnyIncident(); got != t2 {
		t.Fatalf("AnyIncident after end = %d, want %d", got, t2)
	}
	j.EndIncident("n3")
	if got := j.AnyIncident(); got != 0 {
		t.Fatalf("AnyIncident with none open = %d, want 0", got)
	}
}

func TestNilJournalIsSafe(t *testing.T) {
	var j *Journal
	j.Record(Event{Kind: KindApply})
	if j.Snapshot(0) != nil || j.Since(0, 0) != nil {
		t.Fatal("nil journal returned events")
	}
	if j.Incident("n1") != 0 || j.EndIncident("n1") != 0 || j.AnyIncident() != 0 {
		t.Fatal("nil journal returned a trace")
	}
	if j.Recorded() != 0 || j.Dropped() != 0 || j.Cap() != 0 || j.Node() != "" {
		t.Fatal("nil journal returned non-zero accounting")
	}
}

func TestRecordZeroAlloc(t *testing.T) {
	j := New(Options{Node: "bench", Size: 1024})
	ev := Event{Actor: ActorDistributor, Kind: KindFailover, Node: "n1", Path: "/a.html", Detail: "n2"}
	allocs := testing.AllocsPerRun(1000, func() { j.Record(ev) })
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestConcurrentRecord(t *testing.T) {
	j := New(Options{Size: 4096, Stripes: 8})
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				j.Record(Event{Kind: KindPurge})
			}
		}()
	}
	wg.Wait()
	if j.Recorded() != workers*per {
		t.Fatalf("Recorded = %d, want %d", j.Recorded(), workers*per)
	}
	evs := j.Snapshot(0)
	if len(evs) != workers*per {
		t.Fatalf("snapshot len = %d, want %d", len(evs), workers*per)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not in sequence order at %d", i)
		}
	}
}

func TestRecorderManualDump(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	j := New(Options{Node: "front", Size: 256, Clock: func() time.Time { return now }})
	j.Record(Event{Actor: ActorFaults, Kind: KindFault, Node: "n2"})
	now = now.Add(40 * time.Second)
	j.Record(Event{Actor: ActorDistributor, Kind: KindFailover, Node: "n2", Detail: "n1"})
	r, err := NewRecorder(RecorderOptions{
		Journal: j, Dir: dir, Window: 30 * time.Second,
		Clock: func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	r.AddSource("placement", func() any { return map[string]int{"docs": 3} })
	path, err := r.Dump("manual test")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Reason != "manual test" || b.Node != "front" {
		t.Fatalf("bundle header = %q/%q", b.Reason, b.Node)
	}
	// The fault event is 40s old — outside the 30s window.
	if len(b.Events) != 1 || b.Events[0].Kind != KindFailover {
		t.Fatalf("bundle events = %+v, want just the failover inside the window", b.Events)
	}
	var placement map[string]int
	if err := json.Unmarshal(b.Sources["placement"], &placement); err != nil || placement["docs"] != 3 {
		t.Fatalf("bundle source = %s (err %v)", b.Sources["placement"], err)
	}
	if !strings.Contains(filepath.Base(path), "manual-test") {
		t.Fatalf("bundle name %q lacks sanitized reason", path)
	}
	// The dump itself left a snapshot marker in the journal.
	evs := j.Snapshot(0)
	if evs[len(evs)-1].Kind != KindSnapshot {
		t.Fatalf("last journal event = %v, want snapshot marker", evs[len(evs)-1].Kind)
	}
}

func TestRecorderBurnRateTrigger(t *testing.T) {
	dir := t.TempDir()
	j := New(Options{Node: "front", Size: 256})
	var mu sync.Mutex
	stats := ClassStats{Class: "critical", Requests: 0, Errors: 0}
	r, err := NewRecorder(RecorderOptions{
		Journal: j, Dir: dir,
		Budgets: []Budget{{Class: "critical", MaxErrorRate: 0.1, MinRequests: 5}},
		Stats: func() []ClassStats {
			mu.Lock()
			defer mu.Unlock()
			return []ClassStats{stats}
		},
		Interval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Close()
	// First interval establishes the baseline; then burn the budget.
	time.Sleep(15 * time.Millisecond)
	mu.Lock()
	stats.Requests, stats.Errors = 100, 50
	mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for {
		files, _ := os.ReadDir(dir)
		if len(files) > 0 {
			b, err := ReadBundle(filepath.Join(dir, files[0].Name()))
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(b.Reason, "slo-burn critical") {
				t.Fatalf("bundle reason = %q, want slo-burn critical", b.Reason)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("burn-rate watcher never dumped")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRecorderCrashDump(t *testing.T) {
	dir := t.TempDir()
	j := New(Options{Node: "front", Size: 64})
	r, err := NewRecorder(RecorderOptions{Journal: j, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RecoverAndDump swallowed the panic")
			}
		}()
		defer r.RecoverAndDump()
		panic("boom")
	}()
	files, _ := os.ReadDir(dir)
	if len(files) != 1 {
		t.Fatalf("crash dump files = %d, want 1", len(files))
	}
	b, err := ReadBundle(filepath.Join(dir, files[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.Reason, "crash") || !strings.Contains(b.Reason, "boom") {
		t.Fatalf("crash bundle reason = %q", b.Reason)
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"":                       "manual",
		"manual test":            "manual-test",
		"slo-burn critical p99":  "slo-burn-critical-p99",
		"crash runtime error: x": "crash-runtime-error-x",
		"///":                    "manual",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
