package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Source produces one named section of a flight bundle — the telemetry
// report, the URL-table placement walk, the cluster stats. Sources are
// plain closures so the recorder depends on no other package; whatever
// they return is JSON-encoded into the bundle.
type Source func() any

// ClassStats is the per-class reading the burn-rate watcher polls:
// cumulative request/error counts and the current p99. The embedder
// wires Stats to its telemetry pipeline.
type ClassStats struct {
	Class    string
	Requests int64
	Errors   int64
	P99Ns    int64
}

// Budget is one per-class SLO the watcher enforces. A breach of either
// ceiling triggers a flight dump (subject to the cooldown).
type Budget struct {
	// Class names the service class ("critical", "interactive").
	Class string
	// MaxErrorRate is the error fraction ceiling over one watch
	// interval's delta (0 disables the error budget).
	MaxErrorRate float64
	// MinRequests is how many requests the interval delta must hold
	// before the error rate is meaningful; 0 means 10.
	MinRequests int64
	// MaxP99Ns is the p99 latency ceiling in nanoseconds (0 disables
	// the latency budget).
	MaxP99Ns int64
}

// Bundle is one flight-recorder snapshot: the journal window plus every
// registered source, JSON on disk.
type Bundle struct {
	Reason   string                     `json:"reason"`
	Node     string                     `json:"node,omitempty"`
	Time     int64                      `json:"time"`
	Recorded uint64                     `json:"recorded"`
	Dropped  uint64                     `json:"dropped"`
	Events   []Event                    `json:"events"`
	Sources  map[string]json.RawMessage `json:"sources,omitempty"`
}

// RecorderOptions configures a Recorder.
type RecorderOptions struct {
	// Journal is the event stream bundles snapshot. Required.
	Journal *Journal
	// Dir is where bundles are written. Required.
	Dir string
	// Window bounds how far back in time a bundle's journal slice
	// reaches; 0 means 30s.
	Window time.Duration
	// Budgets are the per-class SLOs the burn-rate watcher enforces;
	// empty disables the watcher.
	Budgets []Budget
	// Stats feeds the watcher its per-class readings; nil disables the
	// watcher.
	Stats func() []ClassStats
	// Interval is the watcher poll period; 0 means 1s.
	Interval time.Duration
	// Cooldown is the minimum spacing between automatic dumps so a
	// sustained burn cannot flood the disk; 0 means 30s. Manual dumps
	// ignore it.
	Cooldown time.Duration
	// Clock overrides time.Now, for tests.
	Clock func() time.Time
}

// Recorder is the flight recorder: it snapshots the last Window of
// journal plus every registered source into a bundle file when
// triggered — manually (console dump), by the SLO burn-rate watcher,
// or by a crash via RecoverAndDump.
type Recorder struct {
	jnl      *Journal
	dir      string
	window   time.Duration
	budgets  []Budget
	stats    func() []ClassStats
	interval time.Duration
	cooldown time.Duration
	clock    func() time.Time

	mu       sync.Mutex
	sources  []namedSource
	last     map[string]ClassStats
	lastAuto time.Time
	dumps    int

	closed   chan struct{}
	closeOne sync.Once
	wg       sync.WaitGroup
}

type namedSource struct {
	name string
	fn   Source
}

// NewRecorder builds a recorder over o.Journal writing bundles to
// o.Dir (created if absent).
func NewRecorder(o RecorderOptions) (*Recorder, error) {
	if o.Journal == nil {
		return nil, fmt.Errorf("journal: recorder needs a journal")
	}
	if o.Dir == "" {
		return nil, fmt.Errorf("journal: recorder needs a directory")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	r := &Recorder{
		jnl:      o.Journal,
		dir:      o.Dir,
		window:   o.Window,
		budgets:  o.Budgets,
		stats:    o.Stats,
		interval: o.Interval,
		cooldown: o.Cooldown,
		clock:    o.Clock,
		last:     make(map[string]ClassStats),
		closed:   make(chan struct{}),
	}
	if r.window <= 0 {
		r.window = 30 * time.Second
	}
	if r.interval <= 0 {
		r.interval = time.Second
	}
	if r.cooldown <= 0 {
		r.cooldown = 30 * time.Second
	}
	if r.clock == nil {
		r.clock = time.Now
	}
	return r, nil
}

// AddSource registers a named bundle section. Sources are snapshotted
// in registration order at dump time.
func (r *Recorder) AddSource(name string, fn Source) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.sources = append(r.sources, namedSource{name: name, fn: fn})
	r.mu.Unlock()
}

// Dir returns the bundle directory.
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}

// Dump writes a bundle now and returns its path. The reason is stored
// in the bundle and sanitized into the file name. Nil-safe (returns
// an error).
func (r *Recorder) Dump(reason string) (string, error) {
	if r == nil {
		return "", fmt.Errorf("journal: no recorder configured")
	}
	now := r.clock()
	events := r.jnl.Snapshot(0)
	cutoff := now.Add(-r.window).UnixNano()
	for len(events) > 0 && events[0].Time < cutoff {
		events = events[1:]
	}
	b := Bundle{
		Reason:   reason,
		Node:     r.jnl.Node(),
		Time:     now.UnixNano(),
		Recorded: r.jnl.Recorded(),
		Dropped:  r.jnl.Dropped(),
		Events:   events,
	}
	r.mu.Lock()
	sources := make([]namedSource, len(r.sources))
	copy(sources, r.sources)
	r.dumps++
	n := r.dumps
	r.mu.Unlock()
	if len(sources) > 0 {
		b.Sources = make(map[string]json.RawMessage, len(sources))
		for _, s := range sources {
			raw, err := json.Marshal(s.fn())
			if err != nil {
				raw, _ = json.Marshal(fmt.Sprintf("source error: %v", err))
			}
			b.Sources[s.name] = raw
		}
	}
	name := fmt.Sprintf("flight-%03d-%s.json", n, sanitize(reason))
	path := filepath.Join(r.dir, name)
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	detail := reason
	r.jnl.Record(Event{Actor: ActorRecorder, Kind: KindSnapshot, Detail: detail, A: int64(len(events))})
	return path, nil
}

// RecoverAndDump is the crash trigger: deferred at the top of a
// daemon's main goroutine, it turns a panic into a flight bundle
// before re-panicking so the crash still surfaces.
func (r *Recorder) RecoverAndDump() {
	p := recover()
	if p == nil {
		return
	}
	if r != nil {
		_, _ = r.Dump(fmt.Sprintf("crash %v", p))
	}
	panic(p)
}

// Start launches the SLO burn-rate watcher when budgets and a stats
// feed are configured; otherwise it is a no-op. Close joins the
// watcher.
func (r *Recorder) Start() {
	if r == nil || r.stats == nil || len(r.budgets) == 0 {
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		ticker := time.NewTicker(r.interval)
		defer ticker.Stop()
		for {
			select {
			case <-r.closed:
				return
			case <-ticker.C:
				r.check()
			}
		}
	}()
}

// check samples the stats feed and dumps on the first budget breach.
func (r *Recorder) check() {
	cur := make(map[string]ClassStats)
	for _, cs := range r.stats() {
		cur[cs.Class] = cs
	}
	r.mu.Lock()
	prev := r.last
	r.last = cur
	cooling := r.clock().Sub(r.lastAuto) < r.cooldown && !r.lastAuto.IsZero()
	r.mu.Unlock()
	if cooling {
		return
	}
	for _, b := range r.budgets {
		cs, ok := cur[b.Class]
		if !ok {
			continue
		}
		reason := ""
		if b.MaxP99Ns > 0 && cs.P99Ns > b.MaxP99Ns {
			reason = fmt.Sprintf("slo-burn %s p99 %s > %s", b.Class,
				time.Duration(cs.P99Ns), time.Duration(b.MaxP99Ns))
		}
		if reason == "" && b.MaxErrorRate > 0 {
			minReq := b.MinRequests
			if minReq <= 0 {
				minReq = 10
			}
			p := prev[b.Class]
			dReq, dErr := cs.Requests-p.Requests, cs.Errors-p.Errors
			if dReq >= minReq && float64(dErr)/float64(dReq) > b.MaxErrorRate {
				reason = fmt.Sprintf("slo-burn %s errors %d/%d", b.Class, dErr, dReq)
			}
		}
		if reason != "" {
			r.mu.Lock()
			r.lastAuto = r.clock()
			r.mu.Unlock()
			_, _ = r.Dump(reason)
			return
		}
	}
}

// Close stops the watcher (if running) and waits for it.
func (r *Recorder) Close() {
	if r == nil {
		return
	}
	r.closeOne.Do(func() { close(r.closed) })
	r.wg.Wait()
}

// ReadBundle loads a bundle file, for tests and tooling.
func ReadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

// sanitize maps a dump reason onto a safe file-name fragment.
func sanitize(s string) string {
	if s == "" {
		return "manual"
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s) && len(out) < 40; i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		default:
			if len(out) > 0 && out[len(out)-1] != '-' {
				out = append(out, '-')
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '-' {
		out = out[:len(out)-1]
	}
	if len(out) == 0 {
		return "manual"
	}
	return string(out)
}
