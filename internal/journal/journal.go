// Package journal is the cluster's structured decision journal: a
// fixed-memory, lock-striped ring of flat Event values that every
// control-plane actor — planner, controller, distributor, monitor,
// fault injector, node agents — records into. It answers "why does the
// cluster look like this": which decision placed a document, what the
// planner saw when it decided, which fault started an incident and
// what the repair chain did about it.
//
// Memory model: the journal owns a fixed set of ring stripes sized at
// construction; recording never allocates (events are value structs
// copied into pre-allocated slots) and never blocks beyond one brief
// per-slot mutex. A global atomic sequence both orders events and
// picks the stripe, so concurrent recorders from different goroutines
// spread across stripes instead of contending on one lock. Drop policy
// under overflow: each stripe overwrites its oldest slot — the journal
// keeps the newest Size events and silently forgets the past, which is
// the right trade for an always-on flight recorder.
//
// Causality: Incident(node) opens (or joins) a trace for a node's
// ongoing incident; every actor that touches the incident records with
// that trace ID, and EndIncident closes it on recovery. A merged
// cluster stream filtered by one trace is the incident's full story.
package journal

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures a Journal.
type Options struct {
	// Node labels every event's Src field ("front", "n3").
	Node string
	// Size is the total event capacity across stripes; rounded up so
	// each stripe is a power of two, minimum 16 per stripe. 0 means
	// DefaultSize.
	Size int
	// Stripes is the number of independent rings; 0 means
	// DefaultStripes. More stripes means less lock contention between
	// concurrent recorders.
	Stripes int
	// Clock overrides time.Now, for deterministic tests.
	Clock func() time.Time
}

// DefaultSize is the journal capacity when Options.Size is zero.
const DefaultSize = 4096

// DefaultStripes is the stripe count when Options.Stripes is zero.
const DefaultStripes = 4

// stripe is one ring. Same discipline as telemetry's span ring: the
// owning Journal's atomic sequence claims a slot index, the slot mutex
// only guards the struct copy, and snapshots lock one slot at a time.
type stripe struct {
	mask  uint64
	slots []slot
}

type slot struct {
	mu   sync.Mutex
	used bool
	ev   Event
}

// Journal is a fixed-memory structured event log. The zero value is
// not usable; a nil *Journal is: every method no-ops (Record drops,
// queries return nothing), so call sites need no "is journaling on"
// branches.
type Journal struct {
	node  string
	clock func() time.Time

	// seq is the global monotonic sequence; it orders events and
	// selects the stripe (seq % stripes) so writers interleave across
	// rings.
	seq         atomic.Uint64
	stripeMask  uint64
	stripeShift uint
	stripes     []stripe

	// mu guards the incident table and the trace-ID generator state.
	// Never held while recording.
	mu        sync.Mutex
	incidents map[string]uint64
	lastTrace uint64
	idc       uint64
	idseed    uint64
}

// New builds a journal. See Options for defaults.
func New(o Options) *Journal {
	size := o.Size
	if size <= 0 {
		size = DefaultSize
	}
	stripes := o.Stripes
	if stripes <= 0 {
		stripes = DefaultStripes
	}
	// Power-of-two stripe count so selection is a mask.
	n, shift := 1, uint(0)
	for n < stripes {
		n <<= 1
		shift++
	}
	stripes = n
	per := 16
	for per < (size+stripes-1)/stripes {
		per <<= 1
	}
	j := &Journal{
		node:        o.Node,
		clock:       o.Clock,
		stripeMask:  uint64(stripes - 1),
		stripeShift: shift,
		stripes:     make([]stripe, stripes),
		incidents:   make(map[string]uint64),
		idseed:      uint64(0x9e3779b97f4a7c15),
	}
	if j.clock == nil {
		j.clock = time.Now
	}
	for i := range j.stripes {
		j.stripes[i] = stripe{mask: uint64(per - 1), slots: make([]slot, per)}
	}
	return j
}

// Node returns the label stamped into events' Src field.
func (j *Journal) Node() string {
	if j == nil {
		return ""
	}
	return j.node
}

// Cap returns the total event capacity.
func (j *Journal) Cap() int {
	if j == nil {
		return 0
	}
	return len(j.stripes) * len(j.stripes[0].slots)
}

// Record stamps ev's Seq, Time, and Src and copies it into a ring
// slot, overwriting the stripe's oldest entry when full. It performs
// no allocation and no blocking call — safe on the relay fast path —
// and is a no-op on a nil journal.
func (j *Journal) Record(ev Event) {
	if j == nil {
		return
	}
	seq := j.seq.Add(1)
	ev.Seq = seq
	ev.Time = j.clock().UnixNano()
	ev.Src = j.node
	st := &j.stripes[seq&j.stripeMask]
	s := &st.slots[(seq>>j.stripeShift)&st.mask]
	s.mu.Lock()
	s.ev = ev
	s.used = true
	s.mu.Unlock()
}

// Recorded returns the number of events ever recorded (including ones
// the rings have since overwritten).
func (j *Journal) Recorded() uint64 {
	if j == nil {
		return 0
	}
	return j.seq.Load()
}

// Dropped estimates how many events have been overwritten: recorded
// minus capacity, floored at zero. Per-stripe overwrite makes the true
// count depend on interleaving; this is the upper bound the /debug
// surfaces report.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	n := j.seq.Load()
	c := uint64(j.Cap())
	if n <= c {
		return 0
	}
	return n - c
}

// splitmix64 mixes a counter into a well-distributed 64-bit ID —
// same generator the telemetry span IDs use.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Incident returns the trace ID of node's open incident, opening one
// if none exists. Every actor touching the same node incident gets the
// same trace, which is what links a fault to its failovers, the
// monitor transition, and the eventual repair. Returns 0 on a nil
// journal.
func (j *Journal) Incident(node string) uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if t, ok := j.incidents[node]; ok {
		return t
	}
	j.idc++
	t := splitmix64(j.idseed + j.idc)
	if t == 0 {
		t = 1
	}
	j.incidents[node] = t
	j.lastTrace = t
	return t
}

// IncidentTrace returns node's open incident trace without opening
// one; 0 when the node has no open incident.
func (j *Journal) IncidentTrace(node string) uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.incidents[node]
}

// EndIncident closes node's incident and returns its trace (0 if none
// was open). The recovery event itself should carry the returned trace
// so the incident's story has an explicit end marker.
func (j *Journal) EndIncident(node string) uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	t := j.incidents[node]
	delete(j.incidents, node)
	return t
}

// AnyIncident returns the most recently opened incident trace that is
// still open, or 0 when the cluster is quiet. Planner rounds record
// their decisions under this trace: repair decisions made while an
// incident is open are part of its causal story.
func (j *Journal) AnyIncident() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.incidents) == 0 {
		return 0
	}
	for _, t := range j.incidents {
		if t == j.lastTrace {
			return t
		}
	}
	// lastTrace's incident already closed; return any open one.
	for _, t := range j.incidents {
		return t
	}
	return 0
}

// Snapshot returns up to limit of the newest events in sequence order
// (oldest of the kept window first). limit <= 0 means everything still
// in the rings.
func (j *Journal) Snapshot(limit int) []Event {
	return j.collect(limit, 0)
}

// Since returns events with Seq > seq in sequence order, newest-capped
// at limit (<= 0 means no cap). It is the admin listener's incremental
// poll primitive.
func (j *Journal) Since(seq uint64, limit int) []Event {
	return j.collect(limit, seq)
}

func (j *Journal) collect(limit int, after uint64) []Event {
	if j == nil {
		return nil
	}
	var out []Event
	for si := range j.stripes {
		st := &j.stripes[si]
		for i := range st.slots {
			s := &st.slots[i]
			s.mu.Lock()
			if s.used && s.ev.Seq > after {
				out = append(out, s.ev)
			}
			s.mu.Unlock()
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// Merge interleaves several journals' event lists into one stream
// ordered by time, with (Src, Seq) as the tiebreak so each origin's
// own order is preserved — the controller's single-system-image view
// of the cluster journal.
func Merge(lists ...[]Event) []Event {
	var out []Event
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Time != out[b].Time {
			return out[a].Time < out[b].Time
		}
		if out[a].Src != out[b].Src {
			return out[a].Src < out[b].Src
		}
		return out[a].Seq < out[b].Seq
	})
	return out
}
