// Package content models the web site itself: content classes (static
// HTML, images, CGI, ASP, video), per-object metadata, and synthetic site
// generation following the workload-characterization studies the paper
// cites (Arlitt & Williamson 1996; Arlitt & Jin 1999): skewed popularity
// and heavy-tailed file sizes where a tiny fraction of large files consumes
// most of the storage yet receives almost no requests.
package content

import (
	"fmt"
	"math"
	"math/rand"
	"path"
	"sort"
	"strings"
)

// Class categorizes an object by service demand, the axis along which the
// paper partitions content.
type Class int

// Content classes.
const (
	// ClassHTML is a static text page: cheap CPU, small, cacheable.
	ClassHTML Class = iota + 1
	// ClassImage is a static image: cheap CPU, small-to-medium, cacheable.
	ClassImage
	// ClassCGI is a CGI script execution: CPU-bound dynamic content.
	ClassCGI
	// ClassASP is an ASP page execution: CPU-bound dynamic content,
	// (IIS-hosted in the paper's testbed).
	ClassASP
	// ClassVideo is a large multimedia file: disk/bandwidth-bound, rarely
	// requested, dominates storage.
	ClassVideo
)

// classNames indexes Class values starting at 1.
var classNames = [...]string{"", "html", "image", "cgi", "asp", "video"}

// String returns the lowercase class name used in metrics and reports.
func (c Class) String() string {
	if c < 1 || int(c) >= len(classNames) {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// Dynamic reports whether the class requires server-side execution.
func (c Class) Dynamic() bool { return c == ClassCGI || c == ClassASP }

// Classes lists all classes in declaration order.
func Classes() []Class {
	return []Class{ClassHTML, ClassImage, ClassCGI, ClassASP, ClassVideo}
}

// Classify infers a content class from a URL path by the site's naming
// conventions (the same conventions the synthetic generator emits).
func Classify(p string) Class {
	switch {
	case strings.Contains(p, "/cgi-bin/") || strings.HasSuffix(p, ".cgi"):
		return ClassCGI
	case strings.HasSuffix(p, ".asp"):
		return ClassASP
	case strings.HasSuffix(p, ".mpg") || strings.HasSuffix(p, ".avi") ||
		strings.HasSuffix(p, ".mov") || strings.HasSuffix(p, ".rm"):
		return ClassVideo
	case strings.HasSuffix(p, ".gif") || strings.HasSuffix(p, ".jpg") ||
		strings.HasSuffix(p, ".png") || strings.HasSuffix(p, ".ico"):
		return ClassImage
	default:
		return ClassHTML
	}
}

// Object is one item of web content.
type Object struct {
	// Path is the URL path, also the object's identity.
	Path string
	// Size is the object size in bytes. For dynamic content it is the
	// typical response size.
	Size  int64
	Class Class
	// Priority marks critical content (product lists, shopping pages in
	// the paper's motivation); higher is more important. Default 0.
	Priority int
	// CPUCost scales the computational demand of a dynamic object in
	// abstract work units; 0 for static content.
	CPUCost float64
}

// Site is an immutable collection of objects ordered by descending
// designed popularity: index 0 is the hottest object. The request
// generator maps a Zipf rank directly to this ordering.
type Site struct {
	objects []Object
	byPath  map[string]int
}

// NewSite builds a Site from objects, which are taken in the given order as
// the popularity ranking. Duplicate paths are rejected.
func NewSite(objects []Object) (*Site, error) {
	byPath := make(map[string]int, len(objects))
	for i, o := range objects {
		if o.Path == "" || !strings.HasPrefix(o.Path, "/") {
			return nil, fmt.Errorf("site: object %d has invalid path %q", i, o.Path)
		}
		if _, dup := byPath[o.Path]; dup {
			return nil, fmt.Errorf("site: duplicate path %q", o.Path)
		}
		byPath[o.Path] = i
	}
	return &Site{objects: append([]Object(nil), objects...), byPath: byPath}, nil
}

// Len returns the number of objects.
func (s *Site) Len() int { return len(s.objects) }

// ByRank returns the object at popularity rank i (0 = hottest).
func (s *Site) ByRank(i int) Object { return s.objects[i] }

// Lookup returns the object at a path.
func (s *Site) Lookup(p string) (Object, bool) {
	i, ok := s.byPath[p]
	if !ok {
		return Object{}, false
	}
	return s.objects[i], true
}

// Objects returns a copy of all objects in rank order.
func (s *Site) Objects() []Object {
	return append([]Object(nil), s.objects...)
}

// TotalBytes sums object sizes.
func (s *Site) TotalBytes() int64 {
	var total int64
	for _, o := range s.objects {
		total += o.Size
	}
	return total
}

// ClassBytes sums object sizes per class.
func (s *Site) ClassBytes() map[Class]int64 {
	out := make(map[Class]int64, 5)
	for _, o := range s.objects {
		out[o.Class] += o.Size
	}
	return out
}

// Paths returns all object paths in rank order.
func (s *Site) Paths() []string {
	out := make([]string, len(s.objects))
	for i, o := range s.objects {
		out[i] = o.Path
	}
	return out
}

// Directories returns the sorted set of directories containing at least one
// object (used by the single-system-image tree view).
func (s *Site) Directories() []string {
	set := make(map[string]struct{})
	for _, o := range s.objects {
		dir := path.Dir(o.Path)
		for dir != "/" && dir != "." {
			set[dir] = struct{}{}
			dir = path.Dir(dir)
		}
	}
	dirs := make([]string, 0, len(set))
	for d := range set {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs
}

// GenParams controls synthetic site generation.
type GenParams struct {
	// Objects is the total object count (the paper's live site holds
	// about 8700).
	Objects int
	// Seed makes generation deterministic.
	Seed int64
	// DynamicFraction is the fraction of objects that are CGI/ASP
	// (Workload B uses a significant dynamic share; Workload A uses 0).
	DynamicFraction float64
	// VideoFraction is the fraction of objects that are large video
	// files; per Arlitt & Jin, large files are ~0.3% of objects.
	VideoFraction float64
	// MeanStaticBytes is the body of the static size distribution; sizes
	// are lognormal around it with a bounded-Pareto tail.
	MeanStaticBytes int64
	// CriticalFraction of objects get Priority 1 (shopping pages etc.).
	CriticalFraction float64
}

// DefaultGenParams returns parameters shaped after the paper's cited
// workload characterizations and its live 8700-object site.
func DefaultGenParams() GenParams {
	return GenParams{
		Objects:          8700,
		Seed:             1,
		DynamicFraction:  0,
		VideoFraction:    0.003,
		MeanStaticBytes:  6 * 1024,
		CriticalFraction: 0.01,
	}
}

// GenerateSite synthesizes a site per p. The popularity ranking interleaves
// classes so that dynamic and static content both appear among hot objects,
// while video objects are pushed toward the cold tail (per Arlitt & Jin,
// large files receive ~0.1% of requests).
func GenerateSite(p GenParams) (*Site, error) {
	if p.Objects <= 0 {
		return nil, fmt.Errorf("content: non-positive object count %d", p.Objects)
	}
	if p.DynamicFraction < 0 || p.DynamicFraction > 1 {
		return nil, fmt.Errorf("content: dynamic fraction %g out of [0,1]", p.DynamicFraction)
	}
	if p.VideoFraction < 0 || p.VideoFraction+p.DynamicFraction > 1 {
		return nil, fmt.Errorf("content: video fraction %g invalid", p.VideoFraction)
	}
	if p.MeanStaticBytes <= 0 {
		p.MeanStaticBytes = 6 * 1024
	}
	rng := rand.New(rand.NewSource(p.Seed))

	nVideo := int(math.Round(float64(p.Objects) * p.VideoFraction))
	nDyn := int(math.Round(float64(p.Objects) * p.DynamicFraction))
	nStatic := p.Objects - nVideo - nDyn
	if nStatic < 0 {
		return nil, fmt.Errorf("content: fractions exceed object count")
	}

	// Build per-class pools, then interleave into a popularity ranking.
	static := make([]Object, 0, nStatic)
	for i := 0; i < nStatic; i++ {
		var o Object
		if rng.Float64() < 0.35 {
			o = Object{
				Path:  fmt.Sprintf("/docs/d%02d/page%05d.html", i%40, i),
				Class: ClassHTML,
			}
		} else {
			o = Object{
				Path:  fmt.Sprintf("/images/g%02d/img%05d.gif", i%40, i),
				Class: ClassImage,
			}
		}
		o.Size = staticSize(rng, p.MeanStaticBytes)
		static = append(static, o)
	}
	dynamic := make([]Object, 0, nDyn)
	for i := 0; i < nDyn; i++ {
		var o Object
		if i%2 == 0 {
			o = Object{Path: fmt.Sprintf("/cgi-bin/app%05d.cgi", i), Class: ClassCGI}
		} else {
			o = Object{Path: fmt.Sprintf("/asp/page%05d.asp", i), Class: ClassASP}
		}
		// Dynamic responses are small but computation dominates.
		o.Size = 2*1024 + rng.Int63n(6*1024)
		o.CPUCost = 0.5 + rng.ExpFloat64()*0.7
		if o.CPUCost > 6 {
			o.CPUCost = 6
		}
		dynamic = append(dynamic, o)
	}
	video := make([]Object, 0, nVideo)
	for i := 0; i < nVideo; i++ {
		video = append(video, Object{
			Path:  fmt.Sprintf("/video/v%04d.mpg", i),
			Class: ClassVideo,
			// Large files: 1–64 MB, log-uniform.
			Size: int64(math.Exp(math.Log(1<<20) + rng.Float64()*math.Log(64))),
		})
	}

	// Interleave static and dynamic through the ranking proportionally;
	// sprinkle video into the cold half only.
	objects := make([]Object, 0, p.Objects)
	si, di := 0, 0
	for si < len(static) || di < len(dynamic) {
		total := len(static) + len(dynamic)
		if si < len(static) && (di >= len(dynamic) || rng.Float64() < float64(len(static))/float64(total)) {
			objects = append(objects, static[si])
			si++
		} else {
			objects = append(objects, dynamic[di])
			di++
		}
	}
	// Insert each video object at a random position in the cold half.
	for _, v := range video {
		lo := len(objects) / 2
		pos := lo
		if len(objects) > lo {
			pos = lo + rng.Intn(len(objects)-lo+1)
		}
		objects = append(objects, Object{})
		copy(objects[pos+1:], objects[pos:])
		objects[pos] = v
	}
	// Mark the first CriticalFraction of static pages as critical.
	nCrit := int(float64(len(objects)) * p.CriticalFraction)
	for i := 0; i < len(objects) && nCrit > 0; i++ {
		if objects[i].Class == ClassHTML {
			objects[i].Priority = 1
			nCrit--
		}
	}
	return NewSite(objects)
}

// staticSize draws a static file size: lognormal body with a bounded-Pareto
// tail (Barford & Crovella), clamped to [128 B, 1 MB].
func staticSize(rng *rand.Rand, mean int64) int64 {
	var size float64
	if rng.Float64() < 0.93 {
		// Lognormal body around the mean.
		mu := math.Log(float64(mean)) - 0.5
		size = math.Exp(mu + rng.NormFloat64()*0.8)
	} else {
		// Pareto tail, alpha ≈ 1.1.
		const alpha = 1.1
		u := rng.Float64()
		size = float64(mean) * math.Pow(1-u, -1/alpha)
	}
	if size < 128 {
		size = 128
	}
	if size > 1<<20 {
		size = 1 << 20
	}
	return int64(size)
}
