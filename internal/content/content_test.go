package content

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestClassify(t *testing.T) {
	cases := map[string]Class{
		"/cgi-bin/app.cgi": ClassCGI,
		"/x/y.cgi":         ClassCGI,
		"/asp/page.asp":    ClassASP,
		"/video/movie.mpg": ClassVideo,
		"/video/movie.avi": ClassVideo,
		"/video/movie.mov": ClassVideo,
		"/video/clip.rm":   ClassVideo,
		"/images/i.gif":    ClassImage,
		"/images/i.jpg":    ClassImage,
		"/images/i.png":    ClassImage,
		"/favicon.ico":     ClassImage,
		"/docs/index.html": ClassHTML,
		"/docs/readme":     ClassHTML,
	}
	for path, want := range cases {
		if got := Classify(path); got != want {
			t.Errorf("Classify(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{
		ClassHTML: "html", ClassImage: "image", ClassCGI: "cgi",
		ClassASP: "asp", ClassVideo: "video",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if !strings.Contains(Class(99).String(), "99") {
		t.Error("unknown class String not diagnostic")
	}
}

func TestClassDynamic(t *testing.T) {
	for _, c := range Classes() {
		want := c == ClassCGI || c == ClassASP
		if c.Dynamic() != want {
			t.Errorf("%v.Dynamic() = %v", c, c.Dynamic())
		}
	}
}

func TestNewSiteRejectsBadPaths(t *testing.T) {
	if _, err := NewSite([]Object{{Path: "nope.html"}}); err == nil {
		t.Fatal("relative path accepted")
	}
	if _, err := NewSite([]Object{{Path: ""}}); err == nil {
		t.Fatal("empty path accepted")
	}
	if _, err := NewSite([]Object{{Path: "/a"}, {Path: "/a"}}); err == nil {
		t.Fatal("duplicate path accepted")
	}
}

func TestSiteLookup(t *testing.T) {
	site, err := NewSite([]Object{
		{Path: "/a.html", Size: 10, Class: ClassHTML},
		{Path: "/b.gif", Size: 20, Class: ClassImage},
	})
	if err != nil {
		t.Fatal(err)
	}
	if site.Len() != 2 {
		t.Fatalf("len = %d", site.Len())
	}
	obj, ok := site.Lookup("/b.gif")
	if !ok || obj.Size != 20 {
		t.Fatalf("Lookup = %+v %v", obj, ok)
	}
	if _, ok := site.Lookup("/c"); ok {
		t.Fatal("lookup of absent path succeeded")
	}
	if site.ByRank(0).Path != "/a.html" {
		t.Fatal("rank order not preserved")
	}
	if site.TotalBytes() != 30 {
		t.Fatalf("total = %d", site.TotalBytes())
	}
}

func TestSiteObjectsIsCopy(t *testing.T) {
	site, _ := NewSite([]Object{{Path: "/a", Size: 1}})
	objs := site.Objects()
	objs[0].Size = 999
	if site.ByRank(0).Size != 1 {
		t.Fatal("Objects aliases internal state")
	}
}

func TestGenerateSiteCounts(t *testing.T) {
	p := GenParams{
		Objects:          1000,
		Seed:             3,
		DynamicFraction:  0.2,
		VideoFraction:    0.01,
		MeanStaticBytes:  4096,
		CriticalFraction: 0.02,
	}
	site, err := GenerateSite(p)
	if err != nil {
		t.Fatal(err)
	}
	if site.Len() != 1000 {
		t.Fatalf("object count = %d", site.Len())
	}
	counts := map[Class]int{}
	crit := 0
	for _, o := range site.Objects() {
		counts[o.Class]++
		if o.Priority > 0 {
			crit++
		}
		if o.Class.Dynamic() && o.CPUCost <= 0 {
			t.Fatalf("dynamic object %s has no CPU cost", o.Path)
		}
		if !o.Class.Dynamic() && o.CPUCost != 0 {
			t.Fatalf("static object %s has CPU cost", o.Path)
		}
		if o.Size <= 0 {
			t.Fatalf("object %s has size %d", o.Path, o.Size)
		}
	}
	dyn := counts[ClassCGI] + counts[ClassASP]
	if dyn != 200 {
		t.Fatalf("dynamic count = %d, want 200", dyn)
	}
	if counts[ClassVideo] != 10 {
		t.Fatalf("video count = %d, want 10", counts[ClassVideo])
	}
	if crit == 0 {
		t.Fatal("no critical objects marked")
	}
}

func TestGenerateSiteDeterministic(t *testing.T) {
	p := DefaultGenParams()
	p.Objects = 500
	a, err := GenerateSite(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSite(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		if a.ByRank(i) != b.ByRank(i) {
			t.Fatalf("rank %d differs between identical seeds", i)
		}
	}
}

func TestGenerateSiteSeedVariation(t *testing.T) {
	p := DefaultGenParams()
	p.Objects = 500
	a, _ := GenerateSite(p)
	p.Seed = 2
	b, _ := GenerateSite(p)
	same := 0
	for i := 0; i < a.Len(); i++ {
		if a.ByRank(i) == b.ByRank(i) {
			same++
		}
	}
	if same == a.Len() {
		t.Fatal("different seeds produced identical sites")
	}
}

// TestGenerateSiteHeavyTail checks the Arlitt/Jin-style invariant the
// paper's motivation quotes: a tiny fraction of (video) objects consumes a
// large share of total bytes yet sits in the cold half of the popularity
// ranking.
func TestGenerateSiteHeavyTail(t *testing.T) {
	p := DefaultGenParams()
	p.Objects = 8700
	site, err := GenerateSite(p)
	if err != nil {
		t.Fatal(err)
	}
	var videoBytes, total int64
	videoCount := 0
	for i, o := range site.Objects() {
		total += o.Size
		if o.Class == ClassVideo {
			videoBytes += o.Size
			videoCount++
			if i < site.Len()/2 {
				t.Errorf("video object at hot rank %d", i)
			}
		}
	}
	frac := float64(videoCount) / float64(site.Len())
	if frac > 0.01 {
		t.Fatalf("video object fraction = %.3f, want ≲0.003", frac)
	}
	if float64(videoBytes)/float64(total) < 0.3 {
		t.Fatalf("video byte share = %.2f, want heavy (>0.3)", float64(videoBytes)/float64(total))
	}
}

func TestGenerateSiteValidation(t *testing.T) {
	bad := []GenParams{
		{Objects: 0},
		{Objects: 10, DynamicFraction: -0.1},
		{Objects: 10, DynamicFraction: 1.5},
		{Objects: 10, DynamicFraction: 0.9, VideoFraction: 0.9},
	}
	for i, p := range bad {
		if _, err := GenerateSite(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestDirectories(t *testing.T) {
	site, _ := NewSite([]Object{
		{Path: "/a/b/c.html"},
		{Path: "/a/d.html"},
		{Path: "/e.html"},
	})
	dirs := site.Directories()
	want := []string{"/a", "/a/b"}
	if len(dirs) != len(want) {
		t.Fatalf("dirs = %v, want %v", dirs, want)
	}
	for i := range want {
		if dirs[i] != want[i] {
			t.Fatalf("dirs = %v, want %v", dirs, want)
		}
	}
}

func TestClassBytes(t *testing.T) {
	site, _ := NewSite([]Object{
		{Path: "/a.html", Size: 5, Class: ClassHTML},
		{Path: "/b.html", Size: 7, Class: ClassHTML},
		{Path: "/c.gif", Size: 11, Class: ClassImage},
	})
	cb := site.ClassBytes()
	if cb[ClassHTML] != 12 || cb[ClassImage] != 11 {
		t.Fatalf("class bytes = %v", cb)
	}
}

// TestPropertyStaticSizeBounds: generated static sizes stay within the
// documented clamp for any seed.
func TestPropertyStaticSizeBounds(t *testing.T) {
	f := func(seed int64) bool {
		p := DefaultGenParams()
		p.Objects = 200
		p.Seed = seed
		site, err := GenerateSite(p)
		if err != nil {
			return false
		}
		for _, o := range site.Objects() {
			if o.Class == ClassHTML || o.Class == ClassImage {
				if o.Size < 128 || o.Size > 1<<20 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyPathsClassifyAsLabeled: generated paths classify back to
// their labelled class, so the URL-table, workloads and backends agree.
func TestPropertyPathsClassifyAsLabeled(t *testing.T) {
	f := func(seed int64) bool {
		p := DefaultGenParams()
		p.Objects = 300
		p.DynamicFraction = 0.2
		p.Seed = seed
		site, err := GenerateSite(p)
		if err != nil {
			return false
		}
		for _, o := range site.Objects() {
			if Classify(o.Path) != o.Class {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticSizeDistributionMean(t *testing.T) {
	p := DefaultGenParams()
	p.Objects = 20000
	site, err := GenerateSite(p)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	n := 0
	for _, o := range site.Objects() {
		if o.Class == ClassHTML || o.Class == ClassImage {
			sum += float64(o.Size)
			n++
		}
	}
	mean := sum / float64(n)
	// Lognormal body + Pareto tail around MeanStaticBytes: the realized
	// mean lands within a factor ~3 of the target.
	if mean < float64(p.MeanStaticBytes)/3 || mean > float64(p.MeanStaticBytes)*3 {
		t.Fatalf("static mean = %.0f, target %d", mean, p.MeanStaticBytes)
	}
	if math.IsNaN(mean) {
		t.Fatal("mean is NaN")
	}
}
