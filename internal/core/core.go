// Package core is the public façade of the content placement and
// management system: it assembles a complete live cluster — back-end web
// servers with brokers on every node, the content-aware distributor in
// front, the controller with its agent repository, and the §3.3
// auto-balancer — inside one process, over real TCP sockets on loopback.
// Examples, integration tests and the cmd/ tools are thin wrappers around
// this package.
package core

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"time"

	"webcluster/internal/admission"
	"webcluster/internal/backend"
	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/distributor"
	"webcluster/internal/faults"
	"webcluster/internal/httpx"
	"webcluster/internal/journal"
	"webcluster/internal/loadbal"
	"webcluster/internal/mgmt"
	"webcluster/internal/monitor"
	"webcluster/internal/respcache"
	"webcluster/internal/telemetry"
	"webcluster/internal/urltable"
	"webcluster/internal/workload"
)

// PlacementFunc decides which nodes hold an object at site-load time. The
// returned slice must name at least one node of the cluster spec.
type PlacementFunc func(obj content.Object, spec config.ClusterSpec) []config.NodeID

// PlaceAll replicates every object on every node (the traditional full-
// replication scheme, §1.1).
func PlaceAll(_ content.Object, spec config.ClusterSpec) []config.NodeID {
	return spec.NodeIDs()
}

// PlaceRoundRobin spreads objects one-per-node in rank order (a minimal
// partitioning baseline). The zero value is not usable; construct with
// NewPlaceRoundRobin.
type PlaceRoundRobin struct {
	next int
}

// NewPlaceRoundRobin returns a fresh round-robin placer.
func NewPlaceRoundRobin() *PlaceRoundRobin { return &PlaceRoundRobin{} }

// Place implements PlacementFunc semantics as a method.
func (p *PlaceRoundRobin) Place(_ content.Object, spec config.ClusterSpec) []config.NodeID {
	ids := spec.NodeIDs()
	id := ids[p.next%len(ids)]
	p.next++
	return []config.NodeID{id}
}

// PlaceByType returns the paper's recommended policy (§1.2, §4): dynamic
// content on the fastest-CPU nodes, video on the largest-disk nodes,
// static content round-robined over the remaining nodes (or all nodes if
// the split would leave a group empty), with priority content replicated
// everywhere static lives.
func PlaceByType() PlacementFunc {
	var staticNext, dynNext, videoNext int
	return func(obj content.Object, spec config.ClusterSpec) []config.NodeID {
		maxMHz, maxDisk := 0, 0
		for _, n := range spec.Nodes {
			if n.CPUMHz > maxMHz {
				maxMHz = n.CPUMHz
			}
			if n.DiskGB > maxDisk {
				maxDisk = n.DiskGB
			}
		}
		var fast, rest, bigDisk []config.NodeID
		for _, n := range spec.Nodes {
			if n.CPUMHz == maxMHz {
				fast = append(fast, n.ID)
			} else {
				rest = append(rest, n.ID)
			}
			if n.DiskGB == maxDisk {
				bigDisk = append(bigDisk, n.ID)
			}
		}
		if len(rest) == 0 {
			rest = spec.NodeIDs()
		}
		switch {
		case obj.Class.Dynamic():
			id := fast[dynNext%len(fast)]
			dynNext++
			return []config.NodeID{id}
		case obj.Class == content.ClassVideo:
			id := bigDisk[videoNext%len(bigDisk)]
			videoNext++
			return []config.NodeID{id}
		case obj.Priority > 0:
			// Critical content is replicated across the static group
			// for availability (§3.2).
			return append([]config.NodeID(nil), rest...)
		default:
			id := rest[staticNext%len(rest)]
			staticNext++
			return []config.NodeID{id}
		}
	}
}

// NodeHandle bundles one live node's components.
type NodeHandle struct {
	Spec       config.NodeSpec
	Server     *backend.Server
	Broker     *mgmt.Broker
	Store      backend.Store
	Addr       string // web server address
	BrokerAddr string
}

// Options configures Launch.
type Options struct {
	// Spec describes the nodes; Addr fields are ignored (Launch assigns
	// loopback addresses). Defaults to a small 3-node cluster.
	Spec config.ClusterSpec
	// StoreFor supplies each node's store; nil means a fresh MemStore.
	StoreFor func(spec config.NodeSpec) backend.Store
	// DelayFor supplies per-node service-delay models for hardware
	// emulation; nil for none.
	DelayFor func(spec config.NodeSpec) backend.DelayFunc
	// Picker selects among replicas in the distributor.
	Picker loadbal.Picker
	// PreforkPerNode is the distributor's persistent-connection count
	// per node.
	PreforkPerNode int
	// DistributorShards is the distributor's per-core accept/relay shard
	// count (SO_REUSEPORT listeners where available); 0 means unsharded.
	DistributorShards int
	// TableCacheEntries sizes the URL table's entry cache.
	TableCacheEntries int
	// BalanceInterval enables the auto-balancer loop when positive.
	BalanceInterval time.Duration
	// BalanceOptions tunes the §3.3 planner.
	BalanceOptions loadbal.PlannerOptions
	// ConsoleAddr starts a remote-console endpoint when non-empty
	// (":0" for ephemeral).
	ConsoleAddr string
	// MonitorInterval enables broker health probing when positive:
	// nodes whose broker stops answering are taken out of routing until
	// they recover.
	MonitorInterval time.Duration
	// Faults, when non-nil, threads a fault injector through every
	// network layer (backend accept paths, distributor pool, monitor
	// probes) for chaos testing. Production launches leave it nil.
	Faults *faults.Injector
	// CacheBytes, when positive, enables the distributor-side response
	// cache (respcache) with this byte budget and wires it into the
	// controller so every management mutation purges affected entries.
	CacheBytes int64
	// CacheOptions tunes the response cache beyond the byte budget
	// (TTLs, shard count, clock). MaxBytes inside it is overridden by
	// CacheBytes. Ignored when CacheBytes <= 0.
	CacheOptions respcache.Options
	// TelemetryOptions tunes the distributor's telemetry layer (ring
	// size, slow-request log). Node defaults to "distributor". Telemetry
	// itself is always on — it is the observability plane of the system.
	TelemetryOptions telemetry.Options
	// Admission, when non-nil, enables SLO-class overload control at the
	// distributor (per-class weighted admission, progressive shedding,
	// in-band deadline propagation). Nil leaves the request path exactly
	// as without the subsystem.
	Admission *admission.Options
	// JournalSize sizes each decision journal's ring (one on the front
	// end, one per node); 0 means journal.DefaultSize. The journal is
	// always on — like telemetry, it is fixed memory and its record path
	// allocates nothing.
	JournalSize int
	// FlightDir, when non-empty, enables the flight recorder: incident
	// bundles (recent journal window + telemetry + placement state) are
	// written there on SLO burn-rate breaches, console dumps, and
	// crash recovery.
	FlightDir string
	// FlightBudgets are the per-class SLO budgets the flight recorder's
	// burn-rate watcher monitors; empty disables the watcher (manual and
	// crash dumps still work).
	FlightBudgets []journal.Budget
	// FlightWindow bounds how much journal history one bundle carries;
	// 0 means the recorder's default (30s).
	FlightWindow time.Duration
}

// DefaultSpec returns a 3-node heterogeneous development cluster.
func DefaultSpec() config.ClusterSpec {
	return config.ClusterSpec{
		DistributorCPUMHz: 350,
		Nodes: []config.NodeSpec{
			{ID: "fast-1", CPUMHz: 350, MemoryMB: 128, DiskGB: 8, Disk: config.DiskSCSI, Platform: config.LinuxApache},
			{ID: "mid-1", CPUMHz: 200, MemoryMB: 128, DiskGB: 4, Disk: config.DiskSCSI, Platform: config.WindowsNTIIS},
			{ID: "slow-1", CPUMHz: 150, MemoryMB: 64, DiskGB: 4, Disk: config.DiskIDE, Platform: config.LinuxApache},
		},
	}
}

// Cluster is a running in-process deployment.
type Cluster struct {
	Spec        config.ClusterSpec
	Table       *urltable.Table
	Nodes       map[config.NodeID]*NodeHandle
	Distributor *distributor.Distributor
	Controller  *mgmt.Controller
	Balancer    *mgmt.AutoBalancer
	Console     *mgmt.ConsoleServer
	Monitor     *monitor.Watcher
	// Cache is the distributor-side response cache, nil when disabled.
	Cache *respcache.Cache
	// Telemetry is the distributor's observability layer (span ring,
	// metrics registry); the controller scrapes it for cluster stats.
	Telemetry *telemetry.Telemetry
	// Journal is the front end's decision journal; every control-plane
	// actor in this process records into it (per-node agent journals live
	// in the brokers and are merged by the controller on scrape).
	Journal *journal.Journal
	// Recorder is the flight recorder, nil unless Options.FlightDir was
	// set.
	Recorder *journal.Recorder
	// FrontAddr is the distributor's client-facing address.
	FrontAddr string
	// ConsoleAddr is the console endpoint ("" when disabled).
	ConsoleAddr string
	// GetTimeout bounds each Get round trip (dial plus exchange);
	// zero means DefaultGetTimeout.
	GetTimeout time.Duration
}

// DefaultGetTimeout bounds Cluster.Get when GetTimeout is unset.
const DefaultGetTimeout = 5 * time.Second

// Launch starts every component and returns the running cluster. On error
// everything already started is shut down.
func Launch(opts Options) (cluster *Cluster, err error) {
	spec := opts.Spec
	if len(spec.Nodes) == 0 {
		spec = DefaultSpec()
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	c := &Cluster{
		Spec:  spec,
		Nodes: make(map[config.NodeID]*NodeHandle, len(spec.Nodes)),
	}
	defer func() {
		if err != nil {
			_ = c.Close()
		}
	}()

	cacheEntries := opts.TableCacheEntries
	if cacheEntries == 0 {
		cacheEntries = 1024
	}
	c.Table = urltable.New(urltable.Options{CacheEntries: cacheEntries})
	c.Controller = mgmt.NewController(c.Table)
	c.Journal = journal.New(journal.Options{Node: "front", Size: opts.JournalSize})
	c.Controller.SetJournal(c.Journal)
	// Injected faults become journal events too, so a chaos bundle shows
	// the fault alongside the failover it provoked (nil-safe).
	opts.Faults.SetJournal(c.Journal)

	for i := range spec.Nodes {
		ns := spec.Nodes[i]
		var store backend.Store
		if opts.StoreFor != nil {
			store = opts.StoreFor(ns)
		} else {
			store = &backend.MemStore{}
		}
		var delay backend.DelayFunc
		if opts.DelayFor != nil {
			delay = opts.DelayFor(ns)
		}
		srv, serr := backend.NewServer(backend.ServerOptions{
			Spec:   ns,
			Store:  store,
			Delay:  delay,
			Faults: opts.Faults,
		})
		if serr != nil {
			return nil, fmt.Errorf("core: node %s: %w", ns.ID, serr)
		}
		registerDefaultDynamic(srv, ns)
		addr, serr := srv.Start("127.0.0.1:0")
		if serr != nil {
			return nil, fmt.Errorf("core: node %s: %w", ns.ID, serr)
		}
		nodeJnl := journal.New(journal.Options{Node: string(ns.ID), Size: opts.JournalSize})
		broker := mgmt.NewBroker(mgmt.Env{Node: ns.ID, Store: store, Server: srv, Journal: nodeJnl})
		brokerAddr, serr := broker.Start("127.0.0.1:0")
		if serr != nil {
			return nil, fmt.Errorf("core: broker %s: %w", ns.ID, serr)
		}
		spec.Nodes[i].Addr = addr
		c.Nodes[ns.ID] = &NodeHandle{
			Spec:       spec.Nodes[i],
			Server:     srv,
			Broker:     broker,
			Store:      store,
			Addr:       addr,
			BrokerAddr: brokerAddr,
		}
		if cerr := c.Controller.AddNode(ns.ID, brokerAddr); cerr != nil {
			return nil, fmt.Errorf("core: %w", cerr)
		}
	}
	c.Spec = spec

	if opts.CacheBytes > 0 {
		copts := opts.CacheOptions
		copts.MaxBytes = opts.CacheBytes
		c.Cache = respcache.New(copts)
		// the controller purges this cache synchronously on every
		// content/placement mutation — the coherence half of the design
		c.Controller.SetCache(c.Cache)
	}
	telOpts := opts.TelemetryOptions
	if telOpts.Node == "" {
		telOpts.Node = "distributor"
	}
	c.Telemetry = telemetry.New(telOpts)
	c.Controller.SetTelemetry(c.Telemetry)
	dist, derr := distributor.New(distributor.Options{
		Table:          c.Table,
		Cluster:        spec,
		Picker:         opts.Picker,
		PreforkPerNode: opts.PreforkPerNode,
		Shards:         opts.DistributorShards,
		Faults:         opts.Faults,
		Cache:          c.Cache,
		Telemetry:      c.Telemetry,
		Journal:        c.Journal,
		Admission:      opts.Admission,
	})
	if derr != nil {
		return nil, fmt.Errorf("core: %w", derr)
	}
	c.Distributor = dist
	front, derr := dist.Start("127.0.0.1:0")
	if derr != nil {
		return nil, fmt.Errorf("core: %w", derr)
	}
	c.FrontAddr = front

	balOpts := opts.BalanceOptions
	if balOpts == (loadbal.PlannerOptions{}) {
		balOpts = loadbal.DefaultPlannerOptions()
	}
	c.Balancer = mgmt.NewAutoBalancer(c.Controller, dist.Tracker(), spec.Nodes, balOpts, opts.BalanceInterval)
	c.Balancer.SetOnLoads(dist.UpdateLoads)
	if opts.BalanceInterval > 0 {
		c.Balancer.Start()
	}

	if opts.ConsoleAddr != "" {
		c.Console = mgmt.NewConsoleServer(c.Controller, c.Balancer)
		c.Console.SetSiteLoader(c.consoleSiteLoader)
		caddr, cerr := c.Console.Start(opts.ConsoleAddr)
		if cerr != nil {
			return nil, fmt.Errorf("core: %w", cerr)
		}
		c.ConsoleAddr = caddr
	}

	if opts.MonitorInterval > 0 {
		nodeNames := make([]string, 0, len(spec.Nodes))
		for _, n := range spec.Nodes {
			nodeNames = append(nodeNames, string(n.ID))
		}
		prober := func(node string) (monitor.NodeStatus, error) {
			return c.Controller.Status(config.NodeID(node))
		}
		c.Monitor = monitor.NewWatcher(nodeNames, prober, opts.MonitorInterval,
			func(ev monitor.Event) {
				c.Distributor.SetAvailable(config.NodeID(ev.Node), ev.Up)
			})
		c.Monitor.SetFaults(opts.Faults)
		c.Monitor.SetJournal(c.Journal)
		c.Monitor.Start()
	}

	if opts.FlightDir != "" {
		rec, rerr := journal.NewRecorder(journal.RecorderOptions{
			Journal: c.Journal,
			Dir:     opts.FlightDir,
			Window:  opts.FlightWindow,
			Budgets: opts.FlightBudgets,
			Stats:   c.classStats,
		})
		if rerr != nil {
			return nil, fmt.Errorf("core: %w", rerr)
		}
		rec.AddSource("telemetry", func() any { return c.Telemetry.Report(32) })
		rec.AddSource("placement", func() any { return c.placementState() })
		c.Recorder = rec
		c.Controller.SetDumper(rec.Dump)
		rec.Start()
	}
	return c, nil
}

// classStats adapts the telemetry registry's per-class counters to the
// flight recorder's burn-rate watcher.
func (c *Cluster) classStats() []journal.ClassStats {
	snap := c.Telemetry.Registry().Snapshot()
	names := make([]string, 0, len(snap.Classes))
	for name := range snap.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]journal.ClassStats, 0, len(names))
	for _, name := range names {
		cs := snap.Classes[name]
		out = append(out, journal.ClassStats{
			Class:    name,
			Requests: cs.Requests,
			Errors:   cs.Errors,
			P99Ns:    int64(cs.Latency.Quantile(0.99)),
		})
	}
	return out
}

// placementState captures the URL table for flight-recorder bundles: the
// placement the cluster was actually running when the incident fired.
func (c *Cluster) placementState() any {
	type placement struct {
		Path      string   `json:"path"`
		Locations []string `json:"locations"`
		Hits      int64    `json:"hits"`
		Pinned    bool     `json:"pinned,omitempty"`
		Priority  int      `json:"priority,omitempty"`
	}
	var out []placement
	c.Table.Walk(func(r urltable.Record) {
		locs := make([]string, len(r.Locations))
		for i, id := range r.Locations {
			locs[i] = string(id)
		}
		out = append(out, placement{
			Path:      r.Path,
			Locations: locs,
			Hits:      r.Hits,
			Pinned:    r.Pinned,
			Priority:  r.Priority,
		})
	})
	return out
}

// registerDefaultDynamic installs synthetic CGI/ASP handlers matching the
// path conventions of the generated sites: the response embeds the node ID
// and query, and the reported CPU cost drives the load metric.
func registerDefaultDynamic(srv *backend.Server, ns config.NodeSpec) {
	handler := func(kind string) backend.DynamicHandler {
		return func(req *httpx.Request) ([]byte, float64, error) {
			body := fmt.Sprintf("<html>%s output from %s for %s q=%s</html>\n",
				kind, ns.ID, req.Path, req.Query)
			return []byte(body), 1.0, nil
		}
	}
	srv.HandlePrefix("/cgi-bin/", handler("cgi"))
	srv.HandlePrefix("/asp/", handler("asp"))
}

// PlaceSite loads a site through the controller using the placement
// policy, so every object is stored on its nodes (via store-file agents)
// and registered in the URL table.
func (c *Cluster) PlaceSite(site *content.Site, place PlacementFunc) error {
	if place == nil {
		place = PlaceAll
	}
	for _, obj := range site.Objects() {
		nodes := place(obj, c.Spec)
		if len(nodes) == 0 {
			return fmt.Errorf("core: placement returned no nodes for %s", obj.Path)
		}
		var data []byte
		if !obj.Class.Dynamic() {
			data = backend.SynthesizeBody(obj.Path, obj.Size)
		} else {
			// Dynamic objects need a placeholder file (the "script")
			// so stores and agents can manage them; the registered
			// handlers produce the responses.
			data = []byte("#!script " + obj.Path + "\n")
		}
		if err := c.Controller.Insert(obj, data, nodes...); err != nil {
			return fmt.Errorf("core: placing %s: %w", obj.Path, err)
		}
	}
	return nil
}

// consoleSiteLoader backs the console's loadsite command.
func (c *Cluster) consoleSiteLoader(req mgmt.ConsoleRequest) (string, error) {
	objects := req.Objects
	if objects <= 0 {
		objects = 500
	}
	kind := workload.KindA
	if req.Workload == "B" || req.Workload == "b" {
		kind = workload.KindB
	}
	site, err := workload.BuildSite(kind, objects, req.Seed+1)
	if err != nil {
		return "", err
	}
	var place PlacementFunc
	switch req.Policy {
	case "", "type":
		place = PlaceByType()
	case "all":
		place = PlaceAll
	case "rr":
		place = NewPlaceRoundRobin().Place
	default:
		return "", fmt.Errorf("core: unknown policy %q", req.Policy)
	}
	if err := c.PlaceSite(site, place); err != nil {
		return "", err
	}
	return fmt.Sprintf("placed %d objects (workload %s, policy %s)",
		site.Len(), kind, req.Policy), nil
}

// Get issues one HTTP/1.1 request through the front end — the quickstart
// helper for demos and tests.
func (c *Cluster) Get(path string) (*httpx.Response, error) {
	timeout := c.GetTimeout
	if timeout <= 0 {
		timeout = DefaultGetTimeout
	}
	conn, err := net.DialTimeout("tcp", c.FrontAddr, timeout)
	if err != nil {
		return nil, fmt.Errorf("core: dialing front end: %w", err)
	}
	defer func() { _ = conn.Close() }()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, fmt.Errorf("core: arming deadline: %w", err)
	}
	req := &httpx.Request{
		Method: "GET",
		Target: path,
		Path:   path,
		Proto:  httpx.Proto11,
		Header: httpx.NewHeader("Host", "cluster", "Connection", "close"),
	}
	if err := httpx.WriteRequest(conn, req); err != nil {
		return nil, fmt.Errorf("core: sending request: %w", err)
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return nil, fmt.Errorf("core: reading response: %w", err)
	}
	return resp, nil
}

// Close shuts every component down, last-started first.
func (c *Cluster) Close() error {
	var errs []error
	if c.Recorder != nil {
		c.Recorder.Close()
	}
	if c.Monitor != nil {
		c.Monitor.Close()
	}
	if c.Console != nil {
		errs = append(errs, c.Console.Close())
	}
	if c.Balancer != nil {
		c.Balancer.Close()
	}
	if c.Distributor != nil {
		errs = append(errs, c.Distributor.Close())
	}
	for _, nh := range c.Nodes {
		if nh.Broker != nil {
			errs = append(errs, nh.Broker.Close())
		}
		if nh.Server != nil {
			errs = append(errs, nh.Server.Close())
		}
	}
	return errors.Join(errs...)
}

// Summary formats a short status block for demos.
func (c *Cluster) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "front end: %s\n", c.FrontAddr)
	fmt.Fprintf(&b, "URL table: %d entries, %d KB\n", c.Table.Len(), c.Table.MemoryBytes()/1024)
	for _, id := range c.Controller.Nodes() {
		nh := c.Nodes[id]
		if nh == nil {
			continue
		}
		st := nh.Server.PageCacheStats()
		fmt.Fprintf(&b, "node %-8s %4d MHz %4d MB  store %5d objs  cache hit %5.1f%%\n",
			id, nh.Spec.CPUMHz, nh.Spec.MemoryMB,
			len(nh.Store.List()), 100*st.HitRate())
	}
	return b.String()
}
