package core_test

import (
	"fmt"
	"log"

	"webcluster/internal/content"
	"webcluster/internal/core"
)

// Example launches a complete in-process cluster, partitions a generated
// site by content type, and serves a request through the content-aware
// distributor. (No Output comment: the example binds ephemeral ports, so
// it is compile-checked rather than executed.)
func Example() {
	cluster, err := core.Launch(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()

	site, err := content.GenerateSite(content.DefaultGenParams())
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.PlaceSite(site, core.PlaceByType()); err != nil {
		log.Fatal(err)
	}

	resp, err := cluster.Get(site.ByRank(0).Path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(resp.StatusCode, resp.Header.Get("X-Served-By"))
}
