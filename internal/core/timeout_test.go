package core

import (
	"net"
	"testing"
	"time"
)

// TestGetTimesOutOnWedgedFrontEnd: a front end that accepts the
// connection but never answers must surface as a bounded error from Get,
// not a hung caller.
func TestGetTimesOutOnWedgedFrontEnd(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			// Hold the connection open without reading or writing.
			go func() {
				<-done
				_ = conn.Close()
			}()
		}
	}()

	c := &Cluster{FrontAddr: l.Addr().String(), GetTimeout: 150 * time.Millisecond}
	start := time.Now()
	_, err = c.Get("/a.html")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Get against a wedged front end succeeded")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Get took %v; deadline did not bound the exchange", elapsed)
	}
}
