package core

import (
	"strings"
	"testing"
	"time"

	"webcluster/internal/backend"
	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/loadbal"
	"webcluster/internal/mgmt"
	"webcluster/internal/testutil"
	"webcluster/internal/workload"
)

func launch(t *testing.T, opts Options) *Cluster {
	t.Helper()
	cluster, err := Launch(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cluster.Close() })
	return cluster
}

func smallSite(t *testing.T) *content.Site {
	t.Helper()
	site, err := content.GenerateSite(content.GenParams{
		Objects:          80,
		Seed:             9,
		DynamicFraction:  0.1,
		VideoFraction:    0.01,
		MeanStaticBytes:  1024,
		CriticalFraction: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	return site
}

func TestLaunchDefaults(t *testing.T) {
	cluster := launch(t, Options{})
	if len(cluster.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(cluster.Nodes))
	}
	if cluster.FrontAddr == "" {
		t.Fatal("no front address")
	}
	if got := len(cluster.Controller.Nodes()); got != 3 {
		t.Fatalf("controller nodes = %d", got)
	}
}

func TestPlaceSiteAndGet(t *testing.T) {
	cluster := launch(t, Options{})
	site := smallSite(t)
	if err := cluster.PlaceSite(site, PlaceByType()); err != nil {
		t.Fatal(err)
	}
	if cluster.Table.Len() != site.Len() {
		t.Fatalf("table has %d of %d", cluster.Table.Len(), site.Len())
	}
	// Every object is servable through the front end.
	for rank := 0; rank < 20; rank++ {
		obj := site.ByRank(rank)
		resp, err := cluster.Get(obj.Path)
		if err != nil {
			t.Fatalf("GET %s: %v", obj.Path, err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s → %d", obj.Path, resp.StatusCode)
		}
		if !obj.Class.Dynamic() && int64(len(resp.Body)) != obj.Size {
			t.Fatalf("GET %s: %d bytes, want %d", obj.Path, len(resp.Body), obj.Size)
		}
	}
	// Unknown path 404s.
	resp, err := cluster.Get("/not/there.html")
	if err != nil || resp.StatusCode != 404 {
		t.Fatalf("missing path: %d, %v", resp.StatusCode, err)
	}
}

func TestPlaceByTypePolicy(t *testing.T) {
	cluster := launch(t, Options{})
	site := smallSite(t)
	if err := cluster.PlaceSite(site, PlaceByType()); err != nil {
		t.Fatal(err)
	}
	// Dynamic content only on the fastest node; critical replicated.
	for _, obj := range site.Objects() {
		rec, err := cluster.Table.Lookup(obj.Path)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case obj.Class.Dynamic():
			if len(rec.Locations) != 1 || rec.Locations[0] != "fast-1" {
				t.Fatalf("dynamic %s at %v", obj.Path, rec.Locations)
			}
		case obj.Priority > 0:
			if len(rec.Locations) < 2 {
				t.Fatalf("critical %s has %v", obj.Path, rec.Locations)
			}
		case obj.Class == content.ClassVideo:
			if len(rec.Locations) != 1 || rec.Locations[0] != "fast-1" {
				t.Fatalf("video %s at %v (biggest disk is fast-1)", obj.Path, rec.Locations)
			}
		}
	}
}

func TestPlaceAllPolicy(t *testing.T) {
	cluster := launch(t, Options{})
	site, err := content.GenerateSite(content.GenParams{Objects: 10, Seed: 1, MeanStaticBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.PlaceSite(site, PlaceAll); err != nil {
		t.Fatal(err)
	}
	rec, err := cluster.Table.Lookup(site.ByRank(0).Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Locations) != 3 {
		t.Fatalf("full replication produced %v", rec.Locations)
	}
}

func TestPlaceRoundRobinPolicy(t *testing.T) {
	p := NewPlaceRoundRobin()
	spec := DefaultSpec()
	seen := map[config.NodeID]int{}
	for i := 0; i < 9; i++ {
		locs := p.Place(content.Object{Path: "/x"}, spec)
		if len(locs) != 1 {
			t.Fatalf("locs = %v", locs)
		}
		seen[locs[0]]++
	}
	for _, n := range spec.NodeIDs() {
		if seen[n] != 3 {
			t.Fatalf("uneven RR: %v", seen)
		}
	}
}

func TestDynamicHandlerResponds(t *testing.T) {
	cluster := launch(t, Options{})
	obj := content.Object{Path: "/cgi-bin/test.cgi", Size: 64, Class: content.ClassCGI, CPUCost: 1}
	if err := cluster.Controller.Insert(obj, []byte("#!"), "fast-1"); err != nil {
		t.Fatal(err)
	}
	resp, err := cluster.Get("/cgi-bin/test.cgi")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), "cgi output from fast-1") {
		t.Fatalf("resp = %d %q", resp.StatusCode, resp.Body)
	}
}

func TestConsoleIntegration(t *testing.T) {
	cluster := launch(t, Options{ConsoleAddr: "127.0.0.1:0"})
	if cluster.ConsoleAddr == "" {
		t.Fatal("console not started")
	}
	console, err := mgmt.DialConsole(cluster.ConsoleAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = console.Close() }()

	// loadsite through the console, then fetch through the front end.
	resp, err := console.Do(mgmt.ConsoleRequest{
		Op: "loadsite", Objects: 50, Workload: "A", Policy: "rr", Seed: 3,
	})
	if err != nil {
		t.Fatalf("loadsite: %v (%+v)", err, resp)
	}
	site, err := workload.BuildSite(workload.KindA, 50, 4) // seed 3+1
	if err != nil {
		t.Fatal(err)
	}
	got, err := cluster.Get(site.ByRank(0).Path)
	if err != nil || got.StatusCode != 200 {
		t.Fatalf("GET after loadsite: %v %v", got, err)
	}
	// Balance-now runs (no hot spot: zero actions is fine).
	if _, err := console.Do(mgmt.ConsoleRequest{Op: "balance"}); err != nil {
		t.Fatalf("balance: %v", err)
	}
}

func TestAutoBalancerLoopRuns(t *testing.T) {
	cluster := launch(t, Options{BalanceInterval: 30 * time.Millisecond})
	testutil.Eventually(t, 2*time.Second, func() bool {
		rounds, _ := cluster.Balancer.Rounds()
		return rounds >= 2
	}, "balancer loop did not run")
}

func TestSummary(t *testing.T) {
	cluster := launch(t, Options{})
	site := smallSite(t)
	if err := cluster.PlaceSite(site, PlaceByType()); err != nil {
		t.Fatal(err)
	}
	s := cluster.Summary()
	if !strings.Contains(s, "fast-1") || !strings.Contains(s, "URL table") {
		t.Fatalf("summary = %q", s)
	}
}

func TestLaunchCustomStore(t *testing.T) {
	cluster := launch(t, Options{
		StoreFor: func(config.NodeSpec) backend.Store { return &backend.SyntheticStore{} },
	})
	obj := content.Object{Path: "/big/video.mpg", Size: 1 << 20, Class: content.ClassVideo}
	// Synthetic placement: no data transfer, just a size.
	if err := cluster.Controller.Insert(obj, nil, "slow-1"); err != nil {
		t.Fatal(err)
	}
	resp, err := cluster.Get("/big/video.mpg")
	if err != nil || resp.StatusCode != 200 || len(resp.Body) != 1<<20 {
		t.Fatalf("synthetic video: %d, %d bytes, %v", resp.StatusCode, len(resp.Body), err)
	}
}

func TestLaunchRejectsBadSpec(t *testing.T) {
	_, err := Launch(Options{Spec: config.ClusterSpec{
		Nodes: []config.NodeSpec{{ID: "x"}}, // invalid: zero CPU
	}})
	if err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestWorkloadAgainstCore(t *testing.T) {
	cluster := launch(t, Options{})
	site := smallSite(t)
	if err := cluster.PlaceSite(site, PlaceByType()); err != nil {
		t.Fatal(err)
	}
	report, err := workload.RunClientPool(workload.ClientPoolOptions{
		Addr:      cluster.FrontAddr,
		Clients:   4,
		Duration:  400 * time.Millisecond,
		Site:      site,
		Seed:      1,
		KeepAlive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 {
		t.Fatal("no requests")
	}
	if report.Errors != 0 {
		t.Fatalf("errors = %d of %d", report.Errors, report.Requests)
	}
}

func TestMonitorMarksDeadNodeUnroutable(t *testing.T) {
	cluster := launch(t, Options{MonitorInterval: 25 * time.Millisecond})
	obj := content.Object{Path: "/ha.html", Size: 1, Class: content.ClassHTML}
	if err := cluster.Controller.Insert(obj, []byte("x"), "fast-1", "mid-1"); err != nil {
		t.Fatal(err)
	}
	// Kill mid-1 completely (web server and broker).
	_ = cluster.Nodes["mid-1"].Server.Close()
	_ = cluster.Nodes["mid-1"].Broker.Close()

	// The monitor should flag it down within a few probe intervals.
	testutil.Eventually(t, 3*time.Second, func() bool {
		return !cluster.Distributor.Available("mid-1")
	}, "monitor never marked the dead node down")
	// All traffic lands on the survivor.
	for i := 0; i < 5; i++ {
		resp, err := cluster.Get("/ha.html")
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("resp = %v, %v", resp, err)
		}
		if got := resp.Header.Get("X-Served-By"); got != "fast-1" {
			t.Fatalf("served by %s with mid-1 dead", got)
		}
	}
}

func TestAutoBalanceLiveLoop(t *testing.T) {
	cluster := launch(t, Options{
		BalanceInterval: 150 * time.Millisecond,
		BalanceOptions: loadbal.PlannerOptions{
			Threshold:         0.2,
			MaxActionsPerNode: 4,
			MinHits:           5,
		},
	})
	// Hot spot: popular pages on slow-1 only.
	site, err := content.GenerateSite(content.GenParams{
		Objects: 40, Seed: 11, MeanStaticBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range site.Objects() {
		if err := cluster.Controller.Insert(obj,
			backend.SynthesizeBody(obj.Path, obj.Size), "slow-1"); err != nil {
			t.Fatal(err)
		}
	}
	// Drive load while the background balancer runs.
	_, err = workload.RunClientPool(workload.ClientPoolOptions{
		Addr:      cluster.FrontAddr,
		Clients:   6,
		Duration:  800 * time.Millisecond,
		Site:      site,
		Seed:      1,
		KeepAlive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Within a few intervals the hottest object must gain replicas.
	testutil.Eventually(t, 3*time.Second, func() bool {
		rec, err := cluster.Table.Lookup(site.ByRank(0).Path)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Locations) > 1 {
			return true // auto-replication happened
		}
		// Keep a trickle of load so intervals are non-empty.
		_, _ = cluster.Get(site.ByRank(0).Path)
		return false
	}, "background balancer never replicated the hot object")
}
