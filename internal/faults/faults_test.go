package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair returns two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer func() { _ = l.Close() }()
	type res struct {
		conn net.Conn
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("accept: %v", r.err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = r.conn.Close()
	})
	return client, r.conn
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Fail("anything"); err != nil {
		t.Fatalf("nil Fail: %v", err)
	}
	if got := in.Seed(); got != 0 {
		t.Fatalf("nil Seed = %d", got)
	}
	if got := in.Fired("anything"); got != 0 {
		t.Fatalf("nil Fired = %d", got)
	}
	in.Clear("anything") // must not panic
	c, s := tcpPair(t)
	if wrapped := in.Conn("p", c); wrapped != c {
		t.Fatal("nil Conn must return the conn unchanged")
	}
	_ = s
	if l := in.Listener("p", nil); l != nil {
		t.Fatal("nil Listener(nil) must return nil")
	}
}

func TestFailRefuseAndHierarchy(t *testing.T) {
	in := New(1)
	in.Set("pool.dial", Rule{Refuse: true})
	if err := in.Fail("pool.dial/n1"); !errors.Is(err, ErrInjected) {
		t.Fatalf("family rule did not fire: %v", err)
	}
	if got := in.Fired("pool.dial/n1"); got != 1 {
		t.Fatalf("Fired = %d, want 1", got)
	}
	// An exact (inactive) rule shadows the family rule.
	in.Set("pool.dial/n2", Rule{})
	if err := in.Fail("pool.dial/n2"); err != nil {
		t.Fatalf("exact rule should shadow family refuse: %v", err)
	}
	in.Clear("pool.dial")
	if err := in.Fail("pool.dial/n1"); err != nil {
		t.Fatalf("cleared rule still firing: %v", err)
	}
}

func TestDropAfterBytesTruncatesStream(t *testing.T) {
	in := New(2)
	in.Set("p", Rule{DropAfterBytes: 8})
	client, server := tcpPair(t)
	fc := in.Conn("p", server)

	if _, err := fc.Write(make([]byte, 4)); err != nil {
		t.Fatalf("first write: %v", err)
	}
	// Second write reaches the 8-byte budget: the conn is cut.
	if _, err := fc.Write(make([]byte, 4)); err == nil {
		t.Fatal("write at budget should report the drop")
	}
	if _, err := fc.Write([]byte{0}); err == nil {
		t.Fatal("write after drop should fail")
	}
	got, err := io.ReadAll(client)
	if err != nil {
		t.Fatalf("peer read: %v", err)
	}
	if len(got) != 8 {
		t.Fatalf("peer saw %d bytes, want exactly the 8-byte budget", len(got))
	}
	if in.Fired("p") == 0 {
		t.Fatal("drop did not count as fired")
	}
}

func TestMaxWriteChunkShortensWrites(t *testing.T) {
	in := New(3)
	in.Set("p", Rule{MaxWriteChunk: 3})
	client, server := tcpPair(t)
	fc := in.Conn("p", server)
	n, err := fc.Write([]byte("0123456789"))
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if n != 3 {
		t.Fatalf("short write returned n=%d, want 3", n)
	}
	buf := make([]byte, 16)
	_ = client.SetReadDeadline(time.Now().Add(2 * time.Second))
	rn, err := client.Read(buf)
	if err != nil {
		t.Fatalf("peer read: %v", err)
	}
	if string(buf[:rn]) != "012" {
		t.Fatalf("peer saw %q, want %q", buf[:rn], "012")
	}
}

func TestCorruptEveryNFlipsBytes(t *testing.T) {
	in := New(4)
	in.Set("p", Rule{CorruptEveryN: 2})
	client, server := tcpPair(t)
	fc := in.Conn("p", server)
	orig := []byte{0x10, 0x10, 0x10, 0x10}
	sent := append([]byte(nil), orig...)
	if _, err := fc.Write(sent); err != nil {
		t.Fatalf("write: %v", err)
	}
	if !bytes.Equal(sent, orig) {
		t.Fatal("corruption mutated the caller's buffer")
	}
	_ = fc.Close()
	got, err := io.ReadAll(client)
	if err != nil {
		t.Fatalf("peer read: %v", err)
	}
	want := []byte{0x10, 0x11, 0x10, 0x11} // every 2nd byte, low bit flipped
	if !bytes.Equal(got, want) {
		t.Fatalf("peer saw %x, want %x", got, want)
	}
}

func TestReadStallBoundedByDeadline(t *testing.T) {
	in := New(5)
	in.Set("p", Rule{ReadStall: time.Minute})
	_, server := tcpPair(t)
	fc := in.Conn("p", server)
	if err := fc.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	start := time.Now()
	_, err := fc.Read(make([]byte, 1))
	if err == nil {
		t.Fatal("stalled read returned no error")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want timeout error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline-bounded stall took %v", elapsed)
	}
}

func TestReadStallInterruptedByClose(t *testing.T) {
	in := New(6)
	in.Set("p", Rule{ReadStall: time.Minute})
	_, server := tcpPair(t)
	fc := in.Conn("p", server)
	done := make(chan error, 1)
	go func() {
		_, err := fc.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_ = fc.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read on closed conn returned no error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("close did not interrupt the stall")
	}
}

func TestRefuseOnLiveConn(t *testing.T) {
	in := New(7)
	client, server := tcpPair(t)
	fc := in.Conn("p", server)
	if _, err := fc.Write([]byte("ok")); err != nil {
		t.Fatalf("pre-rule write: %v", err)
	}
	in.Set("p", Rule{Refuse: true})
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("refused write: %v", err)
	}
	buf := make([]byte, 4)
	_ = client.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _ := client.Read(buf)
	if string(buf[:n]) != "ok" {
		t.Fatalf("peer saw %q before refusal, want %q", buf[:n], "ok")
	}
}

func TestProbabilityIsSeedDeterministic(t *testing.T) {
	outcomes := func(seed int64) []bool {
		in := New(seed)
		in.Set("p", Rule{Refuse: true, Probability: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fail("p") != nil
		}
		return out
	}
	a, b := outcomes(42), outcomes(42)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("probability 0.5 fired %d/%d times — gate not mixing", hits, len(a))
	}
}

func TestRuleChangeResetsDropBudget(t *testing.T) {
	in := New(8)
	in.Set("p", Rule{DropAfterBytes: 4})
	_, server := tcpPair(t)
	fc := in.Conn("p", server)
	if _, err := fc.Write(make([]byte, 2)); err != nil {
		t.Fatalf("write under first generation: %v", err)
	}
	// Re-installing the rule starts a new generation: budget resets.
	in.Set("p", Rule{DropAfterBytes: 4})
	if _, err := fc.Write(make([]byte, 3)); err != nil {
		t.Fatalf("budget did not reset on rule change: %v", err)
	}
	if _, err := fc.Write(make([]byte, 2)); err == nil {
		t.Fatal("second-generation budget never tripped")
	}
}

func TestListenerRefusesThenRecovers(t *testing.T) {
	in := New(9)
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	l := in.Listener("accept", raw)
	defer func() { _ = l.Close() }()

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()

	in.Set("accept", Rule{Refuse: true})
	refused, err := net.Dial("tcp", raw.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	// The refused conn is closed server-side: the client reads EOF.
	_ = refused.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, rerr := refused.Read(make([]byte, 1)); rerr == nil {
		t.Fatal("refused connection delivered data")
	}
	_ = refused.Close()

	in.Clear("accept")
	ok, err := net.Dial("tcp", raw.Addr().String())
	if err != nil {
		t.Fatalf("dial after clear: %v", err)
	}
	defer func() { _ = ok.Close() }()
	select {
	case c := <-accepted:
		_ = c.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("accept never returned after rule cleared")
	}
	if in.Fired("accept") == 0 {
		t.Fatal("refusal did not count as fired")
	}
}

func TestLatencyDelaysOperations(t *testing.T) {
	in := New(10)
	in.Set("p", Rule{Latency: 60 * time.Millisecond})
	client, server := tcpPair(t)
	fc := in.Conn("p", server)
	go func() { _, _ = client.Write([]byte("x")) }()
	start := time.Now()
	if _, err := fc.Read(make([]byte, 1)); err != nil {
		t.Fatalf("read: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("latency rule added only %v", elapsed)
	}
}
