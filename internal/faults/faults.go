// Package faults is a deterministic fault-injection layer for the live
// cluster components. An Injector holds named fault points ("backend.conn/n3",
// "repl.feed", "probe/mid-1", ...); product code consults the injector at
// those points through nil-safe hooks, so a nil *Injector — the production
// default — costs one pointer comparison and injects nothing.
//
// All randomness comes from the injector's seeded RNG (no wall-clock
// entropy): the same seed and the same schedule of Set/Clear calls produce
// the same fault decisions, which is what makes chaos scenarios replayable
// from a printed seed (see harness.go and DESIGN.md §8).
//
// Connection-level faults (Rule) cover the partial failures the paper's
// fault-tolerance mechanisms exist to survive: added latency, slow-loris
// stalls, partial writes, drop-after-N-bytes truncation, byte corruption,
// and outright refusal. Process-level faults (backend crash/restart,
// prober blackholes) are driven by schedule steps that call Close/Start on
// the components themselves or set Refuse rules on non-connection points.
package faults

import (
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"webcluster/internal/journal"
)

// ErrInjected marks every failure manufactured by an Injector, so tests
// and error-classification code can tell injected faults from real ones.
var ErrInjected = errors.New("faults: injected failure")

// Rule describes the faults active at one point. The zero value injects
// nothing. A Rule applies to every operation at the point while set;
// changing the rule (Set/Clear) takes effect on live connections too —
// wrappers re-read the active rule on every operation.
type Rule struct {
	// Refuse fails the operation outright: dials and process-level
	// points return ErrInjected, accepted connections are closed
	// immediately, reads/writes on live connections fail.
	Refuse bool
	// Latency is added before every read and write (a degraded link).
	Latency time.Duration
	// ReadStall blocks every read for the given duration before
	// proceeding (slow-loris peer). The stall is interruptible by
	// closing the connection and is bounded by any read deadline set on
	// it, so hardened callers time out instead of hanging.
	ReadStall time.Duration
	// DropAfterBytes closes the connection after it has carried this
	// many further bytes (reads + writes) under this rule — a mid-stream
	// truncation. 0 means no limit.
	DropAfterBytes int64
	// MaxWriteChunk truncates each write to at most this many bytes
	// (partial writes; callers relying on one-shot writes break). 0
	// means unlimited.
	MaxWriteChunk int
	// CorruptEveryN flips the low bit of every Nth written byte
	// (stream corruption). 0 disables.
	CorruptEveryN int
	// Probability gates the rule per connection: each new connection
	// (or live connection re-reading a changed rule) is subject to the
	// rule with this probability, decided by the injector's seeded RNG.
	// 0 means always (the common case); values in (0,1) make mixed
	// healthy/faulty populations.
	Probability float64
}

// active reports whether the rule injects anything at all.
func (r Rule) active() bool {
	return r.Refuse || r.Latency > 0 || r.ReadStall > 0 ||
		r.DropAfterBytes > 0 || r.MaxWriteChunk > 0 || r.CorruptEveryN > 0
}

// ruleEntry is a rule plus the generation it was installed at, so live
// connection wrappers can detect rule changes and reset byte budgets.
type ruleEntry struct {
	rule Rule
	gen  uint64
}

// Injector is the seeded registry of fault points. The zero value and the
// nil pointer are valid and inject nothing; construct with New to inject.
type Injector struct {
	mu    sync.Mutex
	seed  int64
	rng   *rand.Rand
	gen   uint64
	rules map[string]ruleEntry
	fired map[string]int64
	// jnl, when set, receives one KindFault event the first time each
	// (point, rule generation) fires — the injected fault becomes part of
	// the incident's causal record without flooding the journal on every
	// faulted byte. noted holds the last journaled generation per point.
	jnl   *journal.Journal
	noted map[string]uint64
}

// New returns an injector whose probabilistic decisions derive from seed.
func New(seed int64) *Injector {
	return &Injector{
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string]ruleEntry),
		fired: make(map[string]int64),
	}
}

// Seed returns the seed the injector was built with (printed by the chaos
// harness so failing schedules can be rerun).
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Set installs (or replaces) the rule at point. Points are hierarchical:
// lookup tries the exact point first, then the prefix before the first
// "/", so Set("backend.conn", r) covers every node while
// Set("backend.conn/n3", r) targets one.
func (in *Injector) Set(point string, r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.gen++
	in.rules[point] = ruleEntry{rule: r, gen: in.gen}
}

// Clear removes the rule at point.
func (in *Injector) Clear(point string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.gen++
	delete(in.rules, point)
}

// lookup resolves the active rule for point (exact, then family prefix).
func (in *Injector) lookup(point string) (ruleEntry, bool) {
	if e, ok := in.rules[point]; ok {
		return e, true
	}
	if i := strings.IndexByte(point, '/'); i > 0 {
		if e, ok := in.rules[point[:i]]; ok {
			return e, true
		}
	}
	return ruleEntry{}, false
}

// entry returns the current rule entry for point, applying the
// probability gate with the seeded RNG (the roll is recorded per
// generation by callers, not here).
func (in *Injector) entry(point string) (ruleEntry, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.lookup(point)
}

// roll draws the probability gate for a rule.
func (in *Injector) roll(r Rule) bool {
	if r.Probability <= 0 || r.Probability >= 1 {
		return true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() < r.Probability
}

// SetJournal attaches a decision journal to the injector. The journal's
// locks are leaves (per-slot and journal-internal only), so recording
// from under in.mu cannot deadlock. Safe on a nil receiver.
func (in *Injector) SetJournal(j *journal.Journal) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.jnl = j
	if in.noted == nil {
		in.noted = make(map[string]uint64)
	}
}

// note counts one fired fault at point (test observability: schedules
// assert their faults actually hit something) and journals the first
// firing of each rule generation, opening the target node's incident
// trace so downstream failovers and purges link back to the fault.
func (in *Injector) note(point string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fired[point]++
	if in.jnl == nil {
		return
	}
	e, ok := in.lookup(point)
	if !ok || in.noted[point] == e.gen {
		return
	}
	in.noted[point] = e.gen
	var node string
	if i := strings.IndexByte(point, '/'); i >= 0 {
		node = point[i+1:]
	}
	var tr uint64
	if node != "" {
		tr = in.jnl.Incident(node)
	}
	in.jnl.Record(journal.Event{
		Actor:  journal.ActorFaults,
		Kind:   journal.KindFault,
		Trace:  tr,
		Node:   node,
		Detail: point,
		A:      int64(e.gen),
	})
}

// Fired returns how many faults have fired at point.
func (in *Injector) Fired(point string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[point]
}

// Fail is the process-level hook: it returns ErrInjected when a Refuse
// rule is active at point (subject to its probability), nil otherwise.
// Safe on a nil receiver.
func (in *Injector) Fail(point string) error {
	if in == nil {
		return nil
	}
	e, ok := in.entry(point)
	if !ok || !e.rule.Refuse || !in.roll(e.rule) {
		return nil
	}
	in.note(point)
	return ErrInjected
}

// Conn wraps c with the faults governed by point. The wrapper re-reads the
// rule on every operation, so schedule steps affect live connections. Safe
// on a nil receiver (returns c unchanged).
func (in *Injector) Conn(point string, c net.Conn) net.Conn {
	if in == nil || c == nil {
		return c
	}
	return &faultConn{Conn: c, in: in, point: point, done: make(chan struct{})}
}

// Listener wraps l so every accepted connection passes through Conn, and
// an active Refuse rule at point closes connections as they arrive
// (connection refusal as the client observes it). Safe on a nil receiver.
func (in *Injector) Listener(point string, l net.Listener) net.Listener {
	if in == nil || l == nil {
		return l
	}
	return &faultListener{Listener: l, in: in, point: point}
}

// faultListener injects at the accept path.
type faultListener struct {
	net.Listener
	in    *Injector
	point string
}

// Accept implements net.Listener.
func (fl *faultListener) Accept() (net.Conn, error) {
	for {
		c, err := fl.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if ferr := fl.in.Fail(fl.point); ferr != nil {
			_ = c.Close()
			continue // the peer sees an immediate close: refusal
		}
		return fl.in.Conn(fl.point, c), nil
	}
}

// faultConn applies the active rule to every read and write. It tracks
// the rule generation so a schedule change mid-connection resets the
// drop-after budget and re-rolls the probability gate.
type faultConn struct {
	net.Conn
	in    *Injector
	point string

	mu       sync.Mutex
	gen      uint64 // generation of the cached roll/budget
	subject  bool   // probability roll outcome for this generation
	carried  int64  // bytes carried under this generation
	written  int64  // bytes written lifetime (corruption phase)
	dropped  bool   // DropAfterBytes tripped; connection is dead
	deadline time.Time // read deadline, mirrored for stall bounding

	closeOnce sync.Once
	done      chan struct{}
}

// rule returns the rule this connection is currently subject to (zero
// Rule when none, the gate rolled false, or the connection was dropped).
func (fc *faultConn) rule() Rule {
	e, ok := fc.in.entry(fc.point)
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if !ok {
		fc.gen, fc.subject = 0, false
		return Rule{}
	}
	if e.gen != fc.gen {
		fc.gen = e.gen
		fc.carried = 0
		fc.subject = fc.in.roll(e.rule)
	}
	if !fc.subject || !e.rule.active() {
		return Rule{}
	}
	return e.rule
}

// wait sleeps for d, but returns early when the connection closes or the
// mirrored read deadline passes (the caller then hits the real deadline
// error on the underlying operation).
func (fc *faultConn) wait(d time.Duration) {
	fc.mu.Lock()
	dl := fc.deadline
	fc.mu.Unlock()
	if !dl.IsZero() {
		if until := time.Until(dl); until < d {
			d = until
		}
	}
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-fc.done:
	}
}

// account charges n carried bytes against the drop budget, closing the
// connection when it trips. It reports whether the connection is dead.
func (fc *faultConn) account(r Rule, n int) bool {
	if r.DropAfterBytes <= 0 {
		return false
	}
	fc.mu.Lock()
	fc.carried += int64(n)
	trip := !fc.dropped && fc.carried >= r.DropAfterBytes
	if trip {
		fc.dropped = true
	}
	dead := fc.dropped
	fc.mu.Unlock()
	if trip {
		fc.in.note(fc.point)
		_ = fc.Close()
	}
	return dead
}

// Read implements net.Conn.
func (fc *faultConn) Read(p []byte) (int, error) {
	r := fc.rule()
	if r.Refuse {
		fc.in.note(fc.point)
		_ = fc.Close()
		return 0, ErrInjected
	}
	if r.ReadStall > 0 {
		fc.in.note(fc.point)
		fc.wait(r.ReadStall)
	}
	if r.Latency > 0 {
		fc.wait(r.Latency)
	}
	n, err := fc.Conn.Read(p)
	if fc.account(r, n) && err == nil {
		return n, net.ErrClosed
	}
	return n, err
}

// Write implements net.Conn.
func (fc *faultConn) Write(p []byte) (int, error) {
	r := fc.rule()
	if r.Refuse {
		fc.in.note(fc.point)
		_ = fc.Close()
		return 0, ErrInjected
	}
	if r.Latency > 0 {
		fc.wait(r.Latency)
	}
	chunk := p
	if r.MaxWriteChunk > 0 && len(chunk) > r.MaxWriteChunk {
		fc.in.note(fc.point)
		chunk = chunk[:r.MaxWriteChunk]
	}
	if r.CorruptEveryN > 0 && len(chunk) > 0 {
		fc.in.note(fc.point)
		mutated := make([]byte, len(chunk))
		copy(mutated, chunk)
		fc.mu.Lock()
		base := fc.written
		fc.mu.Unlock()
		for i := range mutated {
			if (base+int64(i)+1)%int64(r.CorruptEveryN) == 0 {
				mutated[i] ^= 0x01
			}
		}
		chunk = mutated
	}
	n, err := fc.Conn.Write(chunk)
	fc.mu.Lock()
	fc.written += int64(n)
	fc.mu.Unlock()
	if fc.account(r, n) && err == nil {
		return n, net.ErrClosed
	}
	return n, err
}

// SetDeadline implements net.Conn, mirroring the read half for stalls.
func (fc *faultConn) SetDeadline(t time.Time) error {
	fc.mu.Lock()
	fc.deadline = t
	fc.mu.Unlock()
	return fc.Conn.SetDeadline(t)
}

// SetReadDeadline implements net.Conn, mirroring it for stall bounding.
func (fc *faultConn) SetReadDeadline(t time.Time) error {
	fc.mu.Lock()
	fc.deadline = t
	fc.mu.Unlock()
	return fc.Conn.SetReadDeadline(t)
}

// Close implements net.Conn, releasing any in-progress stalls.
func (fc *faultConn) Close() error {
	fc.closeOnce.Do(func() { close(fc.done) })
	return fc.Conn.Close()
}
