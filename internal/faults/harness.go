// Chaos harness: a seeded scenario runner. A Scenario is a fault schedule
// — rule changes and process-level actions at offsets from the scenario
// start — applied against an Injector while the test drives traffic. The
// reproducibility contract: a scenario is fully determined by (seed,
// steps); the harness prints the seed so a failed run can be replayed with
// CHAOS_SEED=<seed> (see Seed and DESIGN.md §8).

package faults

import (
	"fmt"
	"os"
	"strconv"
	"time"
)

// Step is one scheduled schedule entry.
type Step struct {
	// At is the offset from scenario start at which the step fires.
	// Steps must be ordered by At.
	At time.Duration
	// Point names the fault point the step manipulates ("" for pure
	// Action steps).
	Point string
	// Rule is installed at Point when non-nil; a nil Rule with a
	// non-empty Point clears it.
	Rule *Rule
	// Action is a process-level hook (backend crash/restart, listener
	// close, ...) run after the rule change, if any.
	Action func()
	// Note is logged when the step fires.
	Note string
}

// Scenario is a named, seeded fault schedule.
type Scenario struct {
	Name  string
	Steps []Step
}

// Logf is the logging hook the harness reports through (testing.T.Logf in
// tests).
type Logf func(format string, args ...any)

// Harness binds an injector to a logger and runs scenarios against it.
type Harness struct {
	In   *Injector
	logf Logf
}

// NewHarness returns a harness over a fresh injector seeded with seed,
// logging through logf (nil for silent). The seed is logged immediately —
// the replay handle for everything that follows.
func NewHarness(seed int64, logf Logf) *Harness {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	h := &Harness{In: New(seed), logf: logf}
	h.logf("chaos: injector seed=%d (rerun with CHAOS_SEED=%d)", seed, seed)
	return h
}

// Seed resolves the scenario seed: the CHAOS_SEED environment variable
// when set (replaying a failed run), otherwise fallback.
func Seed(fallback int64) int64 {
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return fallback
}

// Run applies sc's steps at their offsets, blocking until the last step
// has fired or stop is closed. It returns an error when the schedule is
// malformed (steps out of order). Traffic runs concurrently with Run —
// start Run in a goroutine, drive the workload, then join.
func (h *Harness) Run(sc Scenario, stop <-chan struct{}) error {
	start := time.Now()
	var prev time.Duration
	for i, step := range sc.Steps {
		if step.At < prev {
			return fmt.Errorf("faults: scenario %s step %d out of order (%v after %v)",
				sc.Name, i, step.At, prev)
		}
		prev = step.At
		if wait := step.At - time.Since(start); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-stop:
				t.Stop()
				h.logf("chaos[%s]: stopped before step %d", sc.Name, i)
				return nil
			}
		}
		if step.Point != "" {
			if step.Rule != nil {
				h.In.Set(step.Point, *step.Rule)
			} else {
				h.In.Clear(step.Point)
			}
		}
		if step.Action != nil {
			step.Action()
		}
		h.logf("chaos[%s] t=%v: %s", sc.Name, step.At, stepDesc(step))
	}
	return nil
}

// Go runs sc in a background goroutine, returning a join function that
// blocks until the schedule finishes and reports its error. The returned
// stop function aborts the remaining steps.
func (h *Harness) Go(sc Scenario) (join func() error, stop func()) {
	stopCh := make(chan struct{})
	errCh := make(chan error, 1)
	go func() { errCh <- h.Run(sc, stopCh) }()
	var stopped bool
	return func() error { return <-errCh },
		func() {
			if !stopped {
				stopped = true
				close(stopCh)
			}
		}
}

// stepDesc formats a step for the log.
func stepDesc(s Step) string {
	switch {
	case s.Note != "":
		return s.Note
	case s.Point != "" && s.Rule != nil:
		return fmt.Sprintf("set %s %+v", s.Point, *s.Rule)
	case s.Point != "":
		return "clear " + s.Point
	default:
		return "action"
	}
}
