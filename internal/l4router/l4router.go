// Package l4router implements the paper's baseline front end (the authors'
// prior work [2]): a content-blind layer-4 TCP connection router. It picks
// a back end at connection-establishment time — before any HTTP bytes
// arrive — and splices the two TCP streams. Because the choice happens
// before the URL is visible, every back end must be able to serve every
// object, which is why this front end only works with full replication or
// a shared file system (§2.1, §5.3 configurations 1 and 2).
package l4router

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/conntrack"
	"webcluster/internal/faults"
	"webcluster/internal/loadbal"
)

// dialTimeout bounds each back-end connect; a dead back end must fail
// fast so the client can retry, not absorb the accept goroutine.
const dialTimeout = 5 * time.Second

// Backend is one routable node: identity, static weight, dial address.
type Backend struct {
	ID     config.NodeID
	Weight float64
	Addr   string
}

// Router is the L4 front end. Construct with New.
type Router struct {
	picker loadbal.Picker

	mu       sync.Mutex
	backends []Backend
	active   map[config.NodeID]*atomic.Int64
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   chan struct{}
	closeOne sync.Once
	wg       sync.WaitGroup

	routed atomic.Int64
	failed atomic.Int64

	faults *faults.Injector
}

// New returns a router over backends using picker (the paper's baseline
// uses Weighted Least Connection).
func New(picker loadbal.Picker, backends []Backend) (*Router, error) {
	if len(backends) == 0 {
		return nil, errors.New("l4router: no backends")
	}
	if picker == nil {
		picker = loadbal.WeightedLeastConn{}
	}
	r := &Router{
		picker:   picker,
		backends: append([]Backend(nil), backends...),
		active:   make(map[config.NodeID]*atomic.Int64, len(backends)),
		conns:    make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
	}
	for _, b := range backends {
		if b.Addr == "" {
			return nil, fmt.Errorf("l4router: backend %s has no address", b.ID)
		}
		r.active[b.ID] = &atomic.Int64{}
	}
	return r, nil
}

// SetFaults installs a fault injector consulted around each back-end
// dial (points "l4router.dial" and "l4router.server"). Call before
// Start. A nil injector disables injection.
func (r *Router) SetFaults(in *faults.Injector) { r.faults = in }

// Start listens on addr (":0" for ephemeral) and proxies in the
// background, returning the bound address.
func (r *Router) Start(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("l4router: listen: %w", err)
	}
	r.mu.Lock()
	r.listener = l
	r.mu.Unlock()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.acceptLoop(l)
	}()
	return l.Addr().String(), nil
}

// acceptLoop proxies until Close.
func (r *Router) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.proxy(conn)
		}()
	}
}

// pick chooses a back end for a new connection.
func (r *Router) pick() (Backend, error) {
	r.mu.Lock()
	states := make([]loadbal.NodeState, len(r.backends))
	for i, b := range r.backends {
		states[i] = loadbal.NodeState{
			ID:     b.ID,
			Weight: b.Weight,
			Active: r.active[b.ID].Load(),
		}
	}
	backends := r.backends
	r.mu.Unlock()

	id, err := r.picker.Pick(states)
	if err != nil {
		return Backend{}, err
	}
	for _, b := range backends {
		if b.ID == id {
			return b, nil
		}
	}
	return Backend{}, fmt.Errorf("l4router: picker chose unknown node %s", id)
}

// proxy splices one client connection to one freshly dialed back-end
// connection — the layer-4 semantics: one back-end connection per client
// connection, no reuse, no request inspection.
func (r *Router) proxy(client net.Conn) {
	defer func() { _ = client.Close() }()

	backend, err := r.pick()
	if err != nil {
		r.failed.Add(1)
		return
	}
	if err := r.faults.Fail("l4router.dial"); err != nil {
		r.failed.Add(1)
		return
	}
	server, err := net.DialTimeout("tcp", backend.Addr, dialTimeout)
	if err != nil {
		r.failed.Add(1)
		return
	}
	server = r.faults.Conn("l4router.server", server)
	defer func() { _ = server.Close() }()

	r.mu.Lock()
	select {
	case <-r.closed:
		r.mu.Unlock()
		return
	default:
	}
	r.conns[client] = struct{}{}
	r.conns[server] = struct{}{}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		delete(r.conns, client)
		delete(r.conns, server)
		r.mu.Unlock()
	}()

	counter := r.active[backend.ID]
	counter.Add(1)
	defer counter.Add(-1)
	r.routed.Add(1)

	// Bidirectional splice; each direction half-closes when its source
	// reaches EOF, mirroring TCP FIN propagation through a L4 device.
	// With no fault injector both ends are bare *net.TCPConn values, so
	// SpliceStreams moves bytes via the kernel splice(2) fast path; a
	// wrapped end ("l4router.server") takes the pooled-buffer fallback
	// so injected faults stay observable.
	done := make(chan struct{}, 2)
	go func() {
		// The splice is intentionally deadline-free: an idle but healthy
		// client may hold its connection open indefinitely, and lifetime
		// is bounded by Close/CloseWrite propagation from either side.
		// (Audited for relay v3: the suppression covers only this dialed
		// conn's deadline-before-I/O rule; the dial itself stays behind
		// DialTimeout and the l4router.dial fault point above.)
		//distlint:ignore deadlinecheck L4 splice lifetime is bounded by peer close, not deadlines
		_, _ = conntrack.SpliceStreams(server, client)
		if tc, ok := server.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() {
		_, _ = conntrack.SpliceStreams(client, server)
		if tc, ok := client.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}

// Active returns the instantaneous connection count for node.
func (r *Router) Active(node config.NodeID) int64 {
	c, ok := r.active[node]
	if !ok {
		return 0
	}
	return c.Load()
}

// Routed returns the lifetime count of proxied connections.
func (r *Router) Routed() int64 { return r.routed.Load() }

// Failed returns the lifetime count of connections that could not be
// proxied.
func (r *Router) Failed() int64 { return r.failed.Load() }

// Close stops the router and joins all goroutines.
func (r *Router) Close() error {
	var err error
	r.closeOne.Do(func() {
		close(r.closed)
		r.mu.Lock()
		if r.listener != nil {
			err = r.listener.Close()
		}
		for conn := range r.conns {
			_ = conn.Close()
		}
		r.mu.Unlock()
	})
	r.wg.Wait()
	return err
}
