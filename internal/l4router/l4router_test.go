package l4router

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"webcluster/internal/backend"
	"webcluster/internal/config"
	"webcluster/internal/httpx"
	"webcluster/internal/loadbal"
)

// startBackends launches n identical backends all holding the same file.
func startBackends(t *testing.T, n int) []Backend {
	t.Helper()
	out := make([]Backend, 0, n)
	for i := 0; i < n; i++ {
		id := config.NodeID(fmt.Sprintf("n%d", i+1))
		store := &backend.MemStore{}
		_ = store.Put("/a.html", []byte("shared content"))
		srv, err := backend.NewServer(backend.ServerOptions{
			Spec: config.NodeSpec{
				ID: id, CPUMHz: 350, MemoryMB: 64,
				Disk: config.DiskSCSI, Platform: config.LinuxApache,
			},
			Store: store,
		})
		if err != nil {
			t.Fatal(err)
		}
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = srv.Close() })
		out = append(out, Backend{ID: id, Weight: 1, Addr: addr})
	}
	return out
}

func startRouter(t *testing.T, picker loadbal.Picker, backends []Backend) (*Router, string) {
	t.Helper()
	r, err := New(picker, backends)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := r.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })
	return r, addr
}

func get(t *testing.T, addr, path string) *httpx.Response {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	req := &httpx.Request{
		Method: "GET", Target: path, Path: path,
		Proto: httpx.Proto11, Header: httpx.NewHeader("Connection", "close"),
	}
	if err := httpx.WriteRequest(conn, req); err != nil {
		t.Fatal(err)
	}
	resp, err := httpx.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestProxiesRequests(t *testing.T) {
	backends := startBackends(t, 2)
	r, addr := startRouter(t, loadbal.WeightedLeastConn{}, backends)
	resp := get(t, addr, "/a.html")
	if resp.StatusCode != 200 || string(resp.Body) != "shared content" {
		t.Fatalf("resp = %d %q", resp.StatusCode, resp.Body)
	}
	if r.Routed() != 1 {
		t.Fatalf("routed = %d", r.Routed())
	}
}

func TestContentBlind404OnPartitionedContent(t *testing.T) {
	// The defining limitation (§2.1): with partitioned content, an L4
	// router can land a request on a node that does not hold it.
	backends := startBackends(t, 2)
	// Place a second file on the first backend only — but the router
	// cannot know that. Requests round-robined to n2 will 404.
	r, addr := startRouter(t, loadbal.NewRoundRobin(), backends)
	_ = r
	// /a.html exists everywhere: all fine.
	codes := map[int]int{}
	for i := 0; i < 4; i++ {
		resp := get(t, addr, "/only-on-nobody.html")
		codes[resp.StatusCode]++
	}
	if codes[404] != 4 {
		t.Fatalf("codes = %v", codes)
	}
}

func TestRoundRobinAlternates(t *testing.T) {
	backends := startBackends(t, 2)
	_, addr := startRouter(t, loadbal.NewRoundRobin(), backends)
	served := map[string]int{}
	for i := 0; i < 10; i++ {
		resp := get(t, addr, "/a.html")
		served[resp.Header.Get("X-Served-By")]++
	}
	if served["n1"] != 5 || served["n2"] != 5 {
		t.Fatalf("spread = %v", served)
	}
}

func TestKeepAliveThroughRouter(t *testing.T) {
	backends := startBackends(t, 2)
	_, addr := startRouter(t, loadbal.WeightedLeastConn{}, backends)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	br := bufio.NewReader(conn)
	var first string
	for i := 0; i < 3; i++ {
		req := &httpx.Request{
			Method: "GET", Target: "/a.html", Path: "/a.html",
			Proto: httpx.Proto11, Header: httpx.Header{},
		}
		if err := httpx.WriteRequest(conn, req); err != nil {
			t.Fatal(err)
		}
		resp, err := httpx.ReadResponse(br)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		// Layer-4 semantics: the whole connection is pinned to one
		// backend; every request on it hits the same node.
		if first == "" {
			first = resp.Header.Get("X-Served-By")
		} else if got := resp.Header.Get("X-Served-By"); got != first {
			t.Fatalf("connection migrated %s → %s mid-stream", first, got)
		}
	}
}

func TestActiveCountTracksConnections(t *testing.T) {
	backends := startBackends(t, 1)
	r, addr := startRouter(t, loadbal.WeightedLeastConn{}, backends)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for r.Active("n1") != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if r.Active("n1") != 1 {
		t.Fatalf("active = %d with connection open", r.Active("n1"))
	}
	_ = conn.Close()
	for r.Active("n1") != 0 && time.Now().Before(deadline.Add(time.Second)) {
		time.Sleep(5 * time.Millisecond)
	}
	if r.Active("n1") != 0 {
		t.Fatalf("active = %d after close", r.Active("n1"))
	}
}

func TestFailedBackendCounted(t *testing.T) {
	r, addr := startRouter(t, loadbal.WeightedLeastConn{}, []Backend{
		{ID: "dead", Weight: 1, Addr: "127.0.0.1:1"},
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	// The router closes the client connection when the dial fails.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected connection close")
	}
	deadline := time.Now().Add(time.Second)
	for r.Failed() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if r.Failed() != 1 {
		t.Fatalf("failed = %d", r.Failed())
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("no backends accepted")
	}
	if _, err := New(nil, []Backend{{ID: "x"}}); err == nil {
		t.Fatal("backend without address accepted")
	}
}

func TestNilPickerDefaultsToWLC(t *testing.T) {
	backends := startBackends(t, 1)
	r, err := New(nil, backends)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = r.Close() }()
}

func TestConcurrentProxying(t *testing.T) {
	backends := startBackends(t, 3)
	r, addr := startRouter(t, loadbal.WeightedLeastConn{}, backends)
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs <- err
				return
			}
			defer func() { _ = conn.Close() }()
			req := &httpx.Request{
				Method: "GET", Target: "/a.html", Path: "/a.html",
				Proto: httpx.Proto11, Header: httpx.NewHeader("Connection", "close"),
			}
			if err := httpx.WriteRequest(conn, req); err != nil {
				errs <- err
				return
			}
			resp, err := httpx.ReadResponse(bufio.NewReader(conn))
			if err != nil || resp.StatusCode != 200 {
				errs <- fmt.Errorf("resp %v, %v", resp, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if r.Routed() != 24 {
		t.Fatalf("routed = %d", r.Routed())
	}
}

func TestCloseUnblocksConnections(t *testing.T) {
	backends := startBackends(t, 1)
	r, addr := startRouter(t, loadbal.WeightedLeastConn{}, backends)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	time.Sleep(30 * time.Millisecond) // let the splice start
	done := make(chan error, 1)
	go func() { done <- r.Close() }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Close hung with open spliced connection")
	}
}
