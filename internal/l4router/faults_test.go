package l4router

import (
	"net"
	"testing"
	"time"

	"webcluster/internal/faults"
	"webcluster/internal/loadbal"
)

// TestDialFaultCountsAsFailed: with a refuse rule on "l4router.dial",
// the router must drop the connection and count it as failed instead of
// reaching the back end.
func TestDialFaultCountsAsFailed(t *testing.T) {
	backends := startBackends(t, 1)
	r, err := New(loadbal.WeightedLeastConn{}, backends)
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(1)
	in.Set("l4router.dial", faults.Rule{Refuse: true})
	r.SetFaults(in)
	addr, err := r.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = r.Close() })

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	// The router closes the client without proxying; the read observes it.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("read succeeded through a refused dial")
	}

	deadline := time.Now().Add(2 * time.Second)
	for r.Failed() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if r.Failed() == 0 {
		t.Fatal("failed counter never incremented")
	}
	if r.Routed() != 0 {
		t.Fatalf("routed = %d, want 0", r.Routed())
	}

	// Clearing the rule restores service.
	in.Set("l4router.dial", faults.Rule{})
	resp := get(t, addr, "/a.html")
	if resp.StatusCode != 200 {
		t.Fatalf("after clearing fault: status = %d", resp.StatusCode)
	}
}
