package workload

import (
	"math"
	"testing"
	"time"
)

// sampleStats draws n gaps and returns their mean and coefficient of
// variation.
func sampleStats(t *testing.T, s Sampler, n int) (mean, cv float64) {
	t.Helper()
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Next()
		if v < 0 {
			t.Fatalf("%s sample %d is negative: %g", s.Name(), i, v)
		}
		sum += v
		sumSq += v * v
	}
	mean = sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance) / mean
}

// All samplers are normalized to unit mean: the scenario driver divides a
// sample by the instantaneous rate, so any bias here is a rate bias.
func TestSamplerMeans(t *testing.T) {
	const n = 200000
	cases := []struct {
		name string
		spec ArrivalSpec
	}{
		{"poisson", ArrivalSpec{Process: ProcessPoisson}},
		{"gamma-cv0.5", ArrivalSpec{Process: ProcessGamma, CV: 0.5}},
		{"gamma-cv1", ArrivalSpec{Process: ProcessGamma, CV: 1}},
		{"gamma-cv2.5", ArrivalSpec{Process: ProcessGamma, CV: 2.5}},
		{"weibull-shape0.7", ArrivalSpec{Process: ProcessWeibull, Shape: 0.7}},
		{"weibull-shape1", ArrivalSpec{Process: ProcessWeibull, Shape: 1}},
		{"weibull-shape2", ArrivalSpec{Process: ProcessWeibull, Shape: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSampler(tc.spec, 42)
			if err != nil {
				t.Fatal(err)
			}
			mean, _ := sampleStats(t, s, n)
			// High-CV gamma mixes in very heavy draws, so its sample mean
			// converges slowest; 3% covers it at n=200k with margin.
			if math.Abs(mean-1) > 0.03 {
				t.Fatalf("mean = %.4f, want 1 ± 0.03", mean)
			}
		})
	}
}

// The gamma sampler exists to model bursty crawler traffic: its CV must
// actually track the requested CV, not just its mean.
func TestGammaCV(t *testing.T) {
	for _, want := range []float64{0.5, 1.0, 2.0} {
		g, err := NewGamma(want, 7)
		if err != nil {
			t.Fatal(err)
		}
		_, cv := sampleStats(t, g, 400000)
		if math.Abs(cv-want)/want > 0.05 {
			t.Fatalf("cv(%g) sample = %.4f, want within 5%%", want, cv)
		}
	}
}

// Weibull shape <1 is over-dispersed, >1 under-dispersed relative to
// exponential — the property the api class's burstiness relies on.
func TestWeibullDispersion(t *testing.T) {
	under, err := NewWeibull(0.7, 11)
	if err != nil {
		t.Fatal(err)
	}
	over, err := NewWeibull(2.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	_, cvUnder := sampleStats(t, under, 200000)
	_, cvOver := sampleStats(t, over, 200000)
	if cvUnder <= 1.05 {
		t.Fatalf("weibull shape 0.7 cv = %.3f, want > 1", cvUnder)
	}
	if cvOver >= 0.95 {
		t.Fatalf("weibull shape 2.0 cv = %.3f, want < 1", cvOver)
	}
}

func TestSamplerDeterminism(t *testing.T) {
	for _, spec := range []ArrivalSpec{
		{Process: ProcessPoisson},
		{Process: ProcessGamma, CV: 2.5},
		{Process: ProcessWeibull, Shape: 0.7},
	} {
		a, err := NewSampler(spec, 99)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewSampler(spec, 99)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			if x, y := a.Next(), b.Next(); x != y {
				t.Fatalf("%s sample %d diverged with equal seeds: %g vs %g", spec.Process, i, x, y)
			}
		}
	}
}

func TestNewSamplerErrors(t *testing.T) {
	if _, err := NewSampler(ArrivalSpec{Process: ProcessClosed}, 1); err == nil {
		t.Fatal("closed-loop spec should not produce a sampler")
	}
	if _, err := NewSampler(ArrivalSpec{Process: "pareto"}, 1); err == nil {
		t.Fatal("unknown process should be rejected")
	}
	if _, err := NewGamma(-1, 1); err == nil {
		t.Fatal("negative cv should be rejected")
	}
	if _, err := NewWeibull(-1, 1); err == nil {
		t.Fatal("negative shape should be rejected")
	}
}

func TestGap(t *testing.T) {
	if got := Gap(1.0, 100); got != 10*time.Millisecond {
		t.Fatalf("Gap(1, 100/s) = %v, want 10ms", got)
	}
	if got := Gap(0.5, 50); got != 10*time.Millisecond {
		t.Fatalf("Gap(0.5, 50/s) = %v, want 10ms", got)
	}
	// A zero or negative instantaneous rate (a diurnal curve touching
	// zero) must clamp to the floor instead of dividing by zero.
	floor := ratePerSecFloor // ~28h gap at the 1e-5/s floor
	floorGap := time.Duration(float64(time.Second) / floor)
	if got := Gap(1.0, 0); got <= 0 || got > 2*floorGap {
		t.Fatalf("Gap at zero rate = %v, want a large finite gap", got)
	}
}

// Chi-square goodness of fit: the Zipf sampler's empirical rank
// frequencies must match the analytic distribution it claims to draw
// from. 50 ranks → 49 degrees of freedom; the α=0.001 critical value is
// 85.4, so a pass bound of 90 gives a vanishing false-failure rate while
// still catching an off-by-one or mis-normalized CDF immediately.
func TestZipfChiSquare(t *testing.T) {
	const (
		ranks = 50
		draws = 200000
	)
	z, err := NewZipf(ranks, 0.9, 1234)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, ranks)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	var chi2 float64
	for i := 0; i < ranks; i++ {
		expected := float64(draws) * z.Probability(i)
		if expected < 5 {
			t.Fatalf("rank %d expectation %.2f too small for a chi-square test; raise draws", i, expected)
		}
		d := float64(counts[i]) - expected
		chi2 += d * d / expected
	}
	if chi2 > 90 {
		t.Fatalf("chi-square = %.1f over %d ranks, exceeds 90 (α≈0.001 for df=49): empirical Zipf diverges from analytic", chi2, ranks)
	}
}

func TestPermutationBijection(t *testing.T) {
	p, err := NewPermutation(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	p.PromoteRandom(10)
	p.Shuffle(0.3)
	p.Shuffle(1)
	seen := make(map[int]bool, 100)
	for r := 0; r < 100; r++ {
		obj := p.Apply(r)
		if obj < 0 || obj >= 100 {
			t.Fatalf("rank %d maps outside the site: %d", r, obj)
		}
		if seen[obj] {
			t.Fatalf("object %d appears at two ranks — permutation broken", obj)
		}
		seen[obj] = true
	}
}

func TestPromoteRandomBringsColdObjects(t *testing.T) {
	const n, k = 200, 8
	p, err := NewPermutation(n, 21)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]int, k)
	for i := 0; i < k; i++ {
		before[i] = p.Apply(i)
	}
	promoted := p.PromoteRandom(k)
	if len(promoted) != k {
		t.Fatalf("promoted %d objects, want %d", len(promoted), k)
	}
	for i, obj := range promoted {
		if p.Apply(i) != obj {
			t.Fatalf("promoted object %d not at rank %d", obj, i)
		}
		for _, b := range before {
			if obj == b {
				t.Fatalf("object %d was already in the top-%d; flash crowd must bring cold content", obj, k)
			}
		}
	}
}
