package workload

import (
	"fmt"
	"math/rand"
)

// Permutation remaps popularity ranks so scenario events can reshape a
// site's popularity without touching per-class Zipf samplers: a sampler
// keeps drawing rank r, the permutation decides which object currently
// *holds* rank r. A flash crowd promotes previously cold objects into the
// top ranks; popularity churn reshuffles a fraction of the ranking.
// Deterministic for a given seed; single-goroutine. Construct with
// NewPermutation.
type Permutation struct {
	fwd []int // fwd[rank] = object index occupying that rank
	pos []int // pos[object] = rank currently held (inverse of fwd)
	rng *rand.Rand
}

// NewPermutation returns the identity permutation over n objects.
func NewPermutation(n int, seed int64) (*Permutation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive permutation size %d", n)
	}
	p := &Permutation{
		fwd: make([]int, n),
		pos: make([]int, n),
		rng: rand.New(rand.NewSource(seed)),
	}
	for i := range p.fwd {
		p.fwd[i] = i
		p.pos[i] = i
	}
	return p, nil
}

// Apply maps a drawn rank to the object index currently holding it.
func (p *Permutation) Apply(rank int) int { return p.fwd[rank] }

// Len returns the rank-space size.
func (p *Permutation) Len() int { return len(p.fwd) }

// swap exchanges the objects holding ranks a and b.
func (p *Permutation) swap(a, b int) {
	p.fwd[a], p.fwd[b] = p.fwd[b], p.fwd[a]
	p.pos[p.fwd[a]] = a
	p.pos[p.fwd[b]] = b
}

// PromoteRandom models a flash crowd's hot-object shift: k objects drawn
// uniformly from outside the current top-k move into ranks 0..k-1 (the
// displaced former leaders take the vacated ranks). It returns the
// promoted objects' indices.
func (p *Permutation) PromoteRandom(k int) []int {
	n := len(p.fwd)
	if k > n {
		k = n
	}
	promoted := make([]int, 0, k)
	for i := 0; i < k; i++ {
		// Pick a victim rank at or beyond k so each promotion brings in
		// genuinely cold content rather than reshuffling the head.
		from := i
		if k < n {
			from = k + p.rng.Intn(n-k)
		}
		p.swap(i, from)
		promoted = append(promoted, p.fwd[i])
	}
	return promoted
}

// Shuffle models popularity churn: a Fisher–Yates pass re-ranks the whole
// site when fraction ≥ 1, or swaps fraction×n random rank pairs for
// partial churn.
func (p *Permutation) Shuffle(fraction float64) {
	n := len(p.fwd)
	if fraction >= 1 {
		for i := n - 1; i > 0; i-- {
			p.swap(i, p.rng.Intn(i+1))
		}
		return
	}
	if fraction <= 0 {
		return
	}
	swaps := int(fraction * float64(n))
	for i := 0; i < swaps; i++ {
		p.swap(p.rng.Intn(n), p.rng.Intn(n))
	}
}
