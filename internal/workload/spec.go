package workload

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"
)

// Declarative scenario specs: a JSON document describing a day (or any
// window) of traffic against a simulated cluster — multiple client
// classes with their own arrival processes and popularity skews, a
// diurnal rate curve, and a timeline of events (flash crowds, popularity
// churn, node maintenance). The sim package replays a Spec on the
// discrete-event engine; cmd/simrun replays one from the command line.

// Duration is a time.Duration that marshals as a string ("90s", "24h").
// JSON numbers are accepted as seconds.
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	switch val := v.(type) {
	case string:
		parsed, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("invalid duration %q", val)
		}
		*d = Duration(parsed)
	case float64:
		*d = Duration(time.Duration(val * float64(time.Second)))
	default:
		return fmt.Errorf("duration must be a string or a number of seconds, got %T", v)
	}
	return nil
}

// Spec is one declarative scenario.
type Spec struct {
	// Name labels the scenario in reports and CSV headers.
	Name string `json:"name"`
	// Seed drives every random stream (site, samplers, events).
	Seed int64 `json:"seed"`
	// Workload selects the site mix: "A" (static) or "B" (static +
	// dynamic + video), matching the paper's §5.1 workloads.
	Workload string `json:"workload"`
	// Objects sizes the generated site.
	Objects int `json:"objects"`
	// Duration is the simulated span (virtual time, before TimeScale).
	Duration Duration `json:"duration"`
	// Interval is the timeline aggregation granularity (default 1m).
	Interval Duration `json:"interval,omitempty"`
	// TimeScale compresses the scenario's *shape* for quick runs: all
	// durations — Duration, Interval, event times, rate-curve knots —
	// are divided by it while per-second rates stay untouched, so load
	// levels and queueing behaviour are preserved and only the exposure
	// shrinks. 0 means 1 (no compression).
	TimeScale float64 `json:"timeScale,omitempty"`
	// RateCurve is the diurnal multiplier applied to every open-loop
	// class's rate, interpolated piecewise-linearly between knots.
	// Empty means a flat 1.0.
	RateCurve []RatePoint `json:"rateCurve,omitempty"`
	// Classes are the client populations.
	Classes []ClassSpec `json:"classes"`
	// Events is the scenario timeline.
	Events []EventSpec `json:"events,omitempty"`
}

// ClassSpec is one client class.
type ClassSpec struct {
	// ID names the class.
	ID string `json:"id"`
	// Arrival selects and parameterizes the arrival process.
	Arrival ArrivalSpec `json:"arrival"`
	// ZipfS is the class's popularity skew (0 = DefaultZipfS).
	ZipfS float64 `json:"zipfS,omitempty"`
	// SloClass maps this population onto an admission SLO class:
	// critical | interactive | batch. Empty means interactive (the
	// admission default for unclassified traffic).
	SloClass string `json:"sloClass,omitempty"`
	// Seed offsets this class's random streams from Spec.Seed; classes
	// with equal offsets still differ (the class index is mixed in).
	Seed int64 `json:"seed,omitempty"`
}

// ArrivalSpec parameterizes a class's request arrivals.
type ArrivalSpec struct {
	// Process is poisson | gamma | weibull | closed.
	Process string `json:"process"`
	// RatePerSec is the open-loop base arrival rate.
	RatePerSec float64 `json:"ratePerSec,omitempty"`
	// CV is the gamma process's coefficient of variation (0 = 1).
	CV float64 `json:"cv,omitempty"`
	// Shape is the weibull shape (0 = 1).
	Shape float64 `json:"shape,omitempty"`
	// Clients is the closed-loop population size.
	Clients int `json:"clients,omitempty"`
	// Think is the closed-loop per-request think time.
	Think Duration `json:"think,omitempty"`
}

// RatePoint is one knot of the diurnal curve.
type RatePoint struct {
	At Duration `json:"at"`
	// X is the rate multiplier at that instant.
	X float64 `json:"x"`
}

// Event kinds understood by the scenario runner.
const (
	// EventRate multiplies arrival rates (one class or all) by X,
	// reverting after Duration when set.
	EventRate = "rate"
	// EventFlashCrowd promotes HotObjects cold objects into the top
	// ranks and applies an X rate surge for Duration (X 0 = no surge).
	EventFlashCrowd = "flash-crowd"
	// EventChurn reshuffles Fraction of the popularity ranking
	// (0 or ≥1 = full re-rank).
	EventChurn = "churn"
	// EventNodeDown takes a node out of routing (maintenance/failure).
	EventNodeDown = "node-down"
	// EventNodeUp returns a node to routing.
	EventNodeUp = "node-up"
)

// EventSpec is one timeline event.
type EventSpec struct {
	// At is when the event fires (before TimeScale).
	At Duration `json:"at"`
	// Kind selects the event type.
	Kind string `json:"kind"`
	// Class scopes EventRate to one class ID; empty means all classes.
	Class string `json:"class,omitempty"`
	// X is the rate multiplier for EventRate/EventFlashCrowd.
	X float64 `json:"x,omitempty"`
	// Duration bounds EventRate / the EventFlashCrowd surge; 0 means
	// the change is permanent.
	Duration Duration `json:"duration,omitempty"`
	// HotObjects is the EventFlashCrowd promotion count.
	HotObjects int `json:"hotObjects,omitempty"`
	// Fraction is the EventChurn re-rank share.
	Fraction float64 `json:"fraction,omitempty"`
	// Node is the EventNodeDown/EventNodeUp target.
	Node string `json:"node,omitempty"`
}

// ParseSpec decodes and validates a JSON scenario spec. Syntax and type
// errors are reported with the line:column of the offending byte; semantic
// errors name the field path (e.g. classes[1].arrival.ratePerSec).
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, positionError(data, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("workload spec: trailing data after document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and parses a scenario spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload spec: %w", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// positionError rewrites json decode errors to carry line:column.
func positionError(data []byte, err error) error {
	var offset int64 = -1
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	switch {
	case errors.As(err, &syn):
		offset = syn.Offset
	case errors.As(err, &typ):
		offset = typ.Offset
	}
	if offset < 0 {
		return fmt.Errorf("workload spec: %w", err)
	}
	if offset > int64(len(data)) {
		offset = int64(len(data))
	}
	line, col := 1, 1
	for _, b := range data[:offset] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("workload spec: %d:%d: %w", line, col, err)
}

// Validate checks the spec's semantics, naming the offending field path.
func (s *Spec) Validate() error {
	bad := func(path, format string, args ...any) error {
		return fmt.Errorf("workload spec: %s: %s", path, fmt.Sprintf(format, args...))
	}
	switch s.Workload {
	case "A", "B":
	case "":
		return bad("workload", "missing (want \"A\" or \"B\")")
	default:
		return bad("workload", "unknown kind %q (want \"A\" or \"B\")", s.Workload)
	}
	if s.Objects <= 0 {
		return bad("objects", "non-positive site size %d", s.Objects)
	}
	if s.Duration <= 0 {
		return bad("duration", "non-positive duration %v", s.Duration.D())
	}
	if s.Interval < 0 {
		return bad("interval", "negative interval %v", s.Interval.D())
	}
	if s.TimeScale < 0 {
		return bad("timeScale", "negative time scale %g", s.TimeScale)
	}
	if len(s.Classes) == 0 {
		return bad("classes", "at least one client class is required")
	}
	for i, rp := range s.RateCurve {
		path := fmt.Sprintf("rateCurve[%d]", i)
		if rp.At < 0 {
			return bad(path+".at", "negative time %v", rp.At.D())
		}
		if rp.X < 0 {
			return bad(path+".x", "negative multiplier %g", rp.X)
		}
		if i > 0 && rp.At <= s.RateCurve[i-1].At {
			return bad(path+".at", "knots must be strictly increasing")
		}
	}
	seen := make(map[string]bool, len(s.Classes))
	for i, c := range s.Classes {
		path := fmt.Sprintf("classes[%d]", i)
		if c.ID == "" {
			return bad(path+".id", "missing class id")
		}
		if seen[c.ID] {
			return bad(path+".id", "duplicate class id %q", c.ID)
		}
		seen[c.ID] = true
		if c.ZipfS < 0 {
			return bad(path+".zipfS", "negative zipf exponent %g", c.ZipfS)
		}
		switch c.SloClass {
		case "", "critical", "interactive", "batch":
		default:
			return bad(path+".sloClass", "unknown SLO class %q (want critical|interactive|batch)", c.SloClass)
		}
		a := c.Arrival
		switch a.Process {
		case ProcessPoisson, ProcessGamma, ProcessWeibull:
			if a.RatePerSec <= 0 {
				return bad(path+".arrival.ratePerSec", "open-loop class needs a positive rate, got %g", a.RatePerSec)
			}
			if a.CV < 0 {
				return bad(path+".arrival.cv", "negative cv %g", a.CV)
			}
			if a.Shape < 0 {
				return bad(path+".arrival.shape", "negative shape %g", a.Shape)
			}
			if a.Clients != 0 {
				return bad(path+".arrival.clients", "clients is a closed-loop field")
			}
		case ProcessClosed:
			if a.Clients <= 0 {
				return bad(path+".arrival.clients", "closed-loop class needs a positive client count, got %d", a.Clients)
			}
			if a.RatePerSec != 0 {
				return bad(path+".arrival.ratePerSec", "ratePerSec is an open-loop field")
			}
			if a.Think < 0 {
				return bad(path+".arrival.think", "negative think time %v", a.Think.D())
			}
		case "":
			return bad(path+".arrival.process", "missing arrival process")
		default:
			return bad(path+".arrival.process", "unknown process %q (want poisson|gamma|weibull|closed)", a.Process)
		}
	}
	for i, e := range s.Events {
		path := fmt.Sprintf("events[%d]", i)
		if e.At < 0 {
			return bad(path+".at", "negative time %v", e.At.D())
		}
		if e.At > s.Duration {
			return bad(path+".at", "event at %v is beyond duration %v", e.At.D(), s.Duration.D())
		}
		if e.Duration < 0 {
			return bad(path+".duration", "negative duration %v", e.Duration.D())
		}
		switch e.Kind {
		case EventRate:
			if e.X <= 0 {
				return bad(path+".x", "rate event needs a positive multiplier, got %g", e.X)
			}
			if e.Class != "" && !seen[e.Class] {
				return bad(path+".class", "unknown class %q", e.Class)
			}
		case EventFlashCrowd:
			if e.HotObjects <= 0 {
				return bad(path+".hotObjects", "flash crowd needs a positive hot-object count, got %d", e.HotObjects)
			}
			if e.HotObjects > s.Objects {
				return bad(path+".hotObjects", "hot-object count %d exceeds site size %d", e.HotObjects, s.Objects)
			}
			if e.X < 0 {
				return bad(path+".x", "negative surge multiplier %g", e.X)
			}
		case EventChurn:
			if e.Fraction < 0 || e.Fraction > 1 {
				return bad(path+".fraction", "churn fraction %g outside [0,1]", e.Fraction)
			}
		case EventNodeDown, EventNodeUp:
			if e.Node == "" {
				return bad(path+".node", "missing node id")
			}
		case "":
			return bad(path+".kind", "missing event kind")
		default:
			return bad(path+".kind", "unknown kind %q", e.Kind)
		}
	}
	return nil
}

// Kind returns the site workload kind.
func (s *Spec) Kind() Kind {
	if s.Workload == "B" {
		return KindB
	}
	return KindA
}

// EffectiveTimeScale returns TimeScale with the zero default applied.
func (s *Spec) EffectiveTimeScale() float64 {
	if s.TimeScale <= 0 {
		return 1
	}
	return s.TimeScale
}

// EffectiveInterval returns the aggregation interval with its default.
func (s *Spec) EffectiveInterval() time.Duration {
	if s.Interval <= 0 {
		return time.Minute
	}
	return s.Interval.D()
}

// CurveMultiplier evaluates the diurnal curve at virtual time t (in
// pre-TimeScale coordinates), interpolating linearly between knots and
// clamping to the first/last knot outside their span.
func (s *Spec) CurveMultiplier(t time.Duration) float64 {
	if len(s.RateCurve) == 0 {
		return 1
	}
	first := s.RateCurve[0]
	if t <= first.At.D() {
		return first.X
	}
	for i := 1; i < len(s.RateCurve); i++ {
		a, b := s.RateCurve[i-1], s.RateCurve[i]
		if t <= b.At.D() {
			span := b.At.D() - a.At.D()
			if span <= 0 {
				return b.X
			}
			frac := float64(t-a.At.D()) / float64(span)
			return a.X + frac*(b.X-a.X)
		}
	}
	return s.RateCurve[len(s.RateCurve)-1].X
}

// DayScenario is the built-in 24-hour diurnal evaluation: three open-loop
// client classes over a Workload B site, a day-shaped rate curve, morning
// maintenance on one fast node, midday flash crowd, and two popularity
// churn points. At these rates the day carries over a million requests;
// the discrete-event clock compresses it to seconds of wall time.
func DayScenario() *Spec {
	return &Spec{
		Name:     "day",
		Seed:     1,
		Workload: "B",
		Objects:  4000,
		Duration: Duration(24 * time.Hour),
		Interval: Duration(5 * time.Minute),
		RateCurve: []RatePoint{
			{At: 0, X: 0.45},
			{At: Duration(3 * time.Hour), X: 0.25},
			{At: Duration(7 * time.Hour), X: 0.8},
			{At: Duration(12 * time.Hour), X: 1.4},
			{At: Duration(17 * time.Hour), X: 1.8},
			{At: Duration(21 * time.Hour), X: 1.0},
			{At: Duration(24 * time.Hour), X: 0.45},
		},
		Classes: []ClassSpec{
			{ID: "browsers", Arrival: ArrivalSpec{Process: ProcessPoisson, RatePerSec: 9}, ZipfS: 0.9},
			{ID: "crawlers", Arrival: ArrivalSpec{Process: ProcessGamma, RatePerSec: 3, CV: 2.5}, ZipfS: 0.4},
			{ID: "api", Arrival: ArrivalSpec{Process: ProcessWeibull, RatePerSec: 3, Shape: 0.7}, ZipfS: 1.1},
		},
		Events: []EventSpec{
			{At: Duration(2 * time.Hour), Kind: EventNodeDown, Node: "n6-350"},
			{At: Duration(2*time.Hour + 45*time.Minute), Kind: EventNodeUp, Node: "n6-350"},
			{At: Duration(6 * time.Hour), Kind: EventChurn, Fraction: 0.3},
			{At: Duration(13 * time.Hour), Kind: EventFlashCrowd, HotObjects: 24, X: 3, Duration: Duration(40 * time.Minute)},
			{At: Duration(19 * time.Hour), Kind: EventChurn, Fraction: 0.25},
		},
	}
}

// FlashCrowdScenario is the built-in CI smoke: steady Poisson traffic, a
// sudden hot-object shift with a sustained rate surge, then the surge
// subsiding while the shifted popularity stays — the auto-replication
// planner must spread the new hot set for throughput to recover to the
// pre-spike level.
func FlashCrowdScenario() *Spec {
	return &Spec{
		Name:     "flash-crowd",
		Seed:     7,
		Workload: "A",
		Objects:  2000,
		Duration: Duration(40 * time.Minute),
		Interval: Duration(2 * time.Minute),
		Classes: []ClassSpec{
			{ID: "browsers", Arrival: ArrivalSpec{Process: ProcessPoisson, RatePerSec: 500}, ZipfS: 0.9},
		},
		Events: []EventSpec{
			{At: Duration(14 * time.Minute), Kind: EventFlashCrowd, HotObjects: 6, X: 9, Duration: Duration(6 * time.Minute)},
		},
	}
}

// SurgeScenario is the built-in overload-control evaluation: three SLO
// populations — checkout traffic (critical), browsers (interactive) and
// crawlers (batch) — over a Workload A site, with a 10x flash-crowd
// surge mid-run. Run with admission enabled, the surge intervals must
// show batch being shed and stale answers absorbing interactive
// pressure while the critical class's p99 stays bounded; with admission
// off the same surge degrades every class alike.
func SurgeScenario() *Spec {
	return &Spec{
		Name:     "surge",
		Seed:     11,
		Workload: "A",
		Objects:  2000,
		Duration: Duration(30 * time.Minute),
		Interval: Duration(2 * time.Minute),
		Classes: []ClassSpec{
			{ID: "checkout", Arrival: ArrivalSpec{Process: ProcessPoisson, RatePerSec: 50}, ZipfS: 1.1, SloClass: "critical"},
			{ID: "browsers", Arrival: ArrivalSpec{Process: ProcessPoisson, RatePerSec: 250}, ZipfS: 0.9, SloClass: "interactive"},
			{ID: "crawlers", Arrival: ArrivalSpec{Process: ProcessGamma, RatePerSec: 150, CV: 2.0}, ZipfS: 0.4, SloClass: "batch"},
		},
		Events: []EventSpec{
			{At: Duration(12 * time.Minute), Kind: EventFlashCrowd, HotObjects: 8, X: 10, Duration: Duration(8 * time.Minute)},
		},
	}
}

// BuiltinScenario returns a named built-in spec.
func BuiltinScenario(name string) (*Spec, error) {
	switch name {
	case "day":
		return DayScenario(), nil
	case "flash-crowd":
		return FlashCrowdScenario(), nil
	case "surge":
		return SurgeScenario(), nil
	default:
		return nil, fmt.Errorf("workload: unknown built-in scenario %q (want day|flash-crowd|surge)", name)
	}
}
