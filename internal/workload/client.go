package workload

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"webcluster/internal/content"
	"webcluster/internal/httpx"
	"webcluster/internal/metrics"
)

// ClientPoolOptions configures a WebBench-style closed-loop client pool
// driving a live front end (§5.1: 24 machines × 4 WebBench clients; here,
// N goroutines with keep-alive connections).
type ClientPoolOptions struct {
	// Addr is the front end to hammer.
	Addr string
	// Clients is the number of concurrent closed-loop clients.
	Clients int
	// Duration is how long the run lasts.
	Duration time.Duration
	// Site is the content the clients request.
	Site *content.Site
	// ZipfS is the popularity skew; 0 means DefaultZipfS.
	ZipfS float64
	// Seed makes per-client streams deterministic.
	Seed int64
	// ThinkTime pauses each client between requests; 0 for none
	// (WebBench's default saturation mode).
	ThinkTime time.Duration
	// KeepAlive controls whether clients reuse connections (HTTP/1.1)
	// or reconnect per request (HTTP/1.0).
	KeepAlive bool
}

// Report is the outcome of a client-pool run.
type Report struct {
	Requests int64
	Errors   int64
	Bytes    int64
	Elapsed  time.Duration
	// PerClass holds per-class request counts and latencies.
	PerClass map[string]ClassReport
}

// ClassReport is one class's slice of the run.
type ClassReport struct {
	Requests int64
	Errors   int64
	MeanLat  time.Duration
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
}

// Throughput returns overall requests per second.
func (r Report) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// ClassThroughput returns class's requests per second.
func (r Report) ClassThroughput(class string) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.PerClass[class].Requests) / r.Elapsed.Seconds()
}

// String formats the headline numbers.
func (r Report) String() string {
	return fmt.Sprintf("%d reqs in %v (%.1f req/s), %d errors",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput(), r.Errors)
}

// RunClientPool drives the front end with closed-loop clients and returns
// the aggregated report. It blocks for the configured duration.
func RunClientPool(opts ClientPoolOptions) (Report, error) {
	if opts.Clients <= 0 {
		return Report{}, errors.New("workload: non-positive client count")
	}
	if opts.Site == nil || opts.Site.Len() == 0 {
		return Report{}, errors.New("workload: empty site")
	}
	zipfS := opts.ZipfS
	if zipfS == 0 {
		zipfS = DefaultZipfS
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}

	var reg metrics.Registry
	var wg sync.WaitGroup
	deadline := time.Now().Add(opts.Duration)
	start := time.Now()

	for i := 0; i < opts.Clients; i++ {
		gen, err := NewGenerator(opts.Site, zipfS, opts.Seed+int64(i)*7919)
		if err != nil {
			return Report{}, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			runClient(opts, gen, &reg, deadline)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := Report{Elapsed: elapsed, PerClass: make(map[string]ClassReport)}
	for _, class := range reg.Classes() {
		cs := reg.Class(class)
		report.Requests += cs.Requests.Value()
		report.Errors += cs.Errors.Value()
		report.Bytes += cs.Bytes.Value()
		report.PerClass[class] = ClassReport{
			Requests: cs.Requests.Value(),
			Errors:   cs.Errors.Value(),
			MeanLat:  cs.Latency.Mean(),
			P50:      cs.Latency.Quantile(0.5),
			P95:      cs.Latency.Quantile(0.95),
			P99:      cs.Latency.Quantile(0.99),
		}
	}
	return report, nil
}

// runClient is one closed-loop client: request, read, repeat.
func runClient(opts ClientPoolOptions, gen *Generator, reg *metrics.Registry, deadline time.Time) {
	var (
		conn net.Conn
		br   *bufio.Reader
	)
	closeConn := func() {
		if conn != nil {
			_ = conn.Close()
			conn, br = nil, nil
		}
	}
	defer closeConn()

	for time.Now().Before(deadline) {
		obj := gen.Next()
		class := obj.Class.String()
		cs := reg.Class(class)

		if conn == nil {
			c, err := net.DialTimeout("tcp", opts.Addr, 2*time.Second)
			if err != nil {
				cs.Requests.Inc()
				cs.Errors.Inc()
				continue
			}
			conn = c
			br = bufio.NewReader(conn)
		}

		proto := httpx.Proto11
		if !opts.KeepAlive {
			proto = httpx.Proto10
		}
		req := &httpx.Request{
			Method: "GET",
			Target: obj.Path,
			Path:   obj.Path,
			Proto:  proto,
			Header: httpx.NewHeader("Host", "cluster"),
		}
		start := time.Now()
		_ = conn.SetDeadline(deadline.Add(2 * time.Second))
		err := httpx.WriteRequest(conn, req)
		var resp *httpx.Response
		if err == nil {
			resp, err = httpx.ReadResponse(br)
		}
		cs.Requests.Inc()
		if err != nil {
			cs.Errors.Inc()
			closeConn()
			continue
		}
		cs.Latency.Observe(time.Since(start))
		cs.Bytes.Add(int64(len(resp.Body)))
		if resp.StatusCode >= 400 {
			cs.Errors.Inc()
		}
		if !opts.KeepAlive || !resp.KeepAlive() {
			closeConn()
		}
		if opts.ThinkTime > 0 {
			time.Sleep(opts.ThinkTime)
		}
	}
}
