package workload

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"webcluster/internal/content"
	"webcluster/internal/httpx"
	"webcluster/internal/metrics"
)

// Session-model workload (Barford & Crovella's SURGE structure): a user
// fetches an HTML page, then its embedded images over the same keep-alive
// connection, thinks, and moves to the next page. This reproduces the
// burstiness and reference locality that per-request closed loops miss;
// WebBench-style saturation testing uses RunClientPool instead.

// PageVisit is one page plus its embedded objects.
type PageVisit struct {
	Page     content.Object
	Embedded []content.Object
}

// Objects returns the visit's requests in fetch order.
func (v PageVisit) Objects() []content.Object {
	out := make([]content.Object, 0, 1+len(v.Embedded))
	out = append(out, v.Page)
	return append(out, v.Embedded...)
}

// SessionGenerator draws page visits from a site: pages are Zipf-ranked
// over the site's HTML objects and embedded objects Zipf-ranked over its
// images, with a geometric embedded-count distribution (SURGE's embedded
// references). Construct with NewSessionGenerator.
type SessionGenerator struct {
	pages     []content.Object
	images    []content.Object
	pageZipf  *Zipf
	imageZipf *Zipf
	rng       *rand.Rand
	// meanEmbedded is the average embedded object count per page.
	meanEmbedded float64
}

// NewSessionGenerator builds a session generator over site. meanEmbedded
// defaults to 4 when non-positive (Arlitt/Williamson report ~3–5 inline
// images per page in 1990s traces).
func NewSessionGenerator(site *content.Site, zipfS float64, meanEmbedded float64, seed int64) (*SessionGenerator, error) {
	if zipfS == 0 {
		zipfS = DefaultZipfS
	}
	if meanEmbedded <= 0 {
		meanEmbedded = 4
	}
	var pages, images []content.Object
	for _, o := range site.Objects() {
		switch o.Class {
		case content.ClassHTML, content.ClassCGI, content.ClassASP:
			pages = append(pages, o)
		case content.ClassImage:
			images = append(images, o)
		}
	}
	if len(pages) == 0 {
		return nil, errors.New("workload: site has no page objects")
	}
	g := &SessionGenerator{
		pages:        pages,
		images:       images,
		rng:          rand.New(rand.NewSource(seed)),
		meanEmbedded: meanEmbedded,
	}
	var err error
	if g.pageZipf, err = NewZipf(len(pages), zipfS, seed+1); err != nil {
		return nil, err
	}
	if len(images) > 0 {
		if g.imageZipf, err = NewZipf(len(images), zipfS, seed+2); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Next draws one page visit.
func (g *SessionGenerator) Next() PageVisit {
	visit := PageVisit{Page: g.pages[g.pageZipf.Next()]}
	if g.imageZipf == nil {
		return visit
	}
	// Geometric embedded count with the configured mean: p = 1/(mean+1).
	p := 1 / (g.meanEmbedded + 1)
	n := 0
	for g.rng.Float64() > p {
		n++
		if n >= 64 {
			break
		}
	}
	for i := 0; i < n; i++ {
		visit.Embedded = append(visit.Embedded, g.images[g.imageZipf.Next()])
	}
	return visit
}

// SessionPoolOptions configures a session-model load run.
type SessionPoolOptions struct {
	// Addr is the front end to drive.
	Addr string
	// Users is the concurrent session count.
	Users int
	// Duration bounds the run.
	Duration time.Duration
	// Site supplies the content.
	Site *content.Site
	// ZipfS is the popularity skew (0 = default).
	ZipfS float64
	// MeanEmbedded is the average embedded objects per page (0 = 4).
	MeanEmbedded float64
	// MeanThink is the mean exponential think time between page visits
	// (0 = 500ms).
	MeanThink time.Duration
	// Seed drives all randomness.
	Seed int64
}

// SessionReport is the outcome of a session run.
type SessionReport struct {
	PageVisits int64
	Requests   int64
	Errors     int64
	Elapsed    time.Duration
	// MeanPageTime is the mean time to fetch a full page visit (page +
	// embedded objects).
	MeanPageTime time.Duration
}

// String formats the headline numbers.
func (r SessionReport) String() string {
	return fmt.Sprintf("%d page visits (%d requests) in %v, %d errors, mean page time %v",
		r.PageVisits, r.Requests, r.Elapsed.Round(time.Millisecond),
		r.Errors, r.MeanPageTime.Round(100*time.Microsecond))
}

// RunSessionPool drives the front end with session-model users.
func RunSessionPool(opts SessionPoolOptions) (SessionReport, error) {
	if opts.Users <= 0 {
		return SessionReport{}, errors.New("workload: non-positive user count")
	}
	if opts.Site == nil || opts.Site.Len() == 0 {
		return SessionReport{}, errors.New("workload: empty site")
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	meanThink := opts.MeanThink
	if meanThink <= 0 {
		meanThink = 500 * time.Millisecond
	}

	var (
		mu        sync.Mutex
		visits    int64
		requests  int64
		errCount  int64
		pageTimes metrics.Histogram
	)
	deadline := time.Now().Add(opts.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for u := 0; u < opts.Users; u++ {
		gen, err := NewSessionGenerator(opts.Site, opts.ZipfS, opts.MeanEmbedded, opts.Seed+int64(u)*104729)
		if err != nil {
			return SessionReport{}, err
		}
		think := rand.New(rand.NewSource(opts.Seed + int64(u)*31))
		wg.Add(1)
		go func() {
			defer wg.Done()
			var conn net.Conn
			var br *bufio.Reader
			closeConn := func() {
				if conn != nil {
					_ = conn.Close()
					conn, br = nil, nil
				}
			}
			defer closeConn()
			for time.Now().Before(deadline) {
				visit := gen.Next()
				visitStart := time.Now()
				failed := false
				for _, obj := range visit.Objects() {
					if conn == nil {
						c, err := net.DialTimeout("tcp", opts.Addr, 2*time.Second)
						if err != nil {
							failed = true
							break
						}
						conn = c
						br = bufio.NewReader(conn)
					}
					req := &httpx.Request{
						Method: "GET", Target: obj.Path, Path: obj.Path,
						Proto: httpx.Proto11, Header: httpx.NewHeader("Host", "cluster"),
					}
					_ = conn.SetDeadline(deadline.Add(2 * time.Second))
					err := httpx.WriteRequest(conn, req)
					var resp *httpx.Response
					if err == nil {
						resp, err = httpx.ReadResponse(br)
					}
					mu.Lock()
					requests++
					mu.Unlock()
					if err != nil || resp.StatusCode >= 400 {
						mu.Lock()
						errCount++
						mu.Unlock()
						if err != nil {
							closeConn()
						}
						failed = true
						break
					}
					if !resp.KeepAlive() {
						closeConn()
					}
				}
				mu.Lock()
				visits++
				if !failed {
					pageTimes.Observe(time.Since(visitStart))
				}
				mu.Unlock()
				// Exponential think time, capped so the run ends.
				pause := time.Duration(think.ExpFloat64() * float64(meanThink))
				if pause > time.Second {
					pause = time.Second
				}
				time.Sleep(pause)
			}
		}()
	}
	wg.Wait()
	return SessionReport{
		PageVisits:   visits,
		Requests:     requests,
		Errors:       errCount,
		Elapsed:      time.Since(start),
		MeanPageTime: pageTimes.Mean(),
	}, nil
}
