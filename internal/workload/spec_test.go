package workload

import (
	"encoding/json"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"time"
)

const validSpecJSON = `{
  "name": "golden",
  "seed": 42,
  "workload": "B",
  "objects": 500,
  "duration": "30m",
  "interval": "2m",
  "timeScale": 4,
  "rateCurve": [
    {"at": "0s", "x": 0.5},
    {"at": "15m", "x": 1.5},
    {"at": "30m", "x": 0.5}
  ],
  "classes": [
    {"id": "browsers", "arrival": {"process": "poisson", "ratePerSec": 120}, "zipfS": 0.9},
    {"id": "crawlers", "arrival": {"process": "gamma", "ratePerSec": 10, "cv": 2.5}, "zipfS": 0.4, "seed": 3},
    {"id": "kiosk", "arrival": {"process": "closed", "clients": 20, "think": "500ms"}}
  ],
  "events": [
    {"at": "10m", "kind": "flash-crowd", "hotObjects": 12, "x": 3, "duration": "5m"},
    {"at": "20m", "kind": "churn", "fraction": 0.25},
    {"at": "22m", "kind": "node-down", "node": "n6-350"},
    {"at": "26m", "kind": "node-up", "node": "n6-350"},
    {"at": "28m", "kind": "rate", "class": "crawlers", "x": 0.1}
  ]
}`

func TestParseSpecGolden(t *testing.T) {
	s, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "golden" || s.Seed != 42 || s.Workload != "B" || s.Objects != 500 {
		t.Fatalf("header fields wrong: %+v", s)
	}
	if s.Duration.D() != 30*time.Minute || s.Interval.D() != 2*time.Minute || s.TimeScale != 4 {
		t.Fatalf("time fields wrong: duration %v interval %v scale %g", s.Duration.D(), s.Interval.D(), s.TimeScale)
	}
	if len(s.Classes) != 3 || len(s.Events) != 5 || len(s.RateCurve) != 3 {
		t.Fatalf("sections wrong: %d classes, %d events, %d knots", len(s.Classes), len(s.Events), len(s.RateCurve))
	}
	if c := s.Classes[1]; c.Arrival.Process != ProcessGamma || c.Arrival.CV != 2.5 || c.Seed != 3 {
		t.Fatalf("crawlers class wrong: %+v", c)
	}
	if c := s.Classes[2]; c.Arrival.Process != ProcessClosed || c.Arrival.Clients != 20 || c.Arrival.Think.D() != 500*time.Millisecond {
		t.Fatalf("kiosk class wrong: %+v", c)
	}
	if e := s.Events[0]; e.Kind != EventFlashCrowd || e.HotObjects != 12 || e.X != 3 || e.Duration.D() != 5*time.Minute {
		t.Fatalf("flash-crowd event wrong: %+v", e)
	}
}

// Round trip: marshal the parsed spec back to JSON and reparse — the two
// structs must be identical, so nothing is lost or silently defaulted in
// either direction.
func TestSpecRoundTrip(t *testing.T) {
	first, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(first, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	second, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("reparse of marshaled spec: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("round trip changed the spec:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}

// Semantic errors must name the offending field path so a spec author can
// find the line without a JSON schema validator.
func TestParseSpecSemanticErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(s *Spec)
		wantSub string
	}{
		{"negative rate", func(s *Spec) { s.Classes[0].Arrival.RatePerSec = -5 }, "classes[0].arrival.ratePerSec"},
		{"unknown process", func(s *Spec) { s.Classes[1].Arrival.Process = "pareto" }, `classes[1].arrival.process: unknown process "pareto"`},
		{"missing class", func(s *Spec) { s.Classes = nil }, "classes: at least one"},
		{"duplicate class id", func(s *Spec) { s.Classes[1].ID = s.Classes[0].ID }, "classes[1].id: duplicate"},
		{"missing workload", func(s *Spec) { s.Workload = "" }, "workload: missing"},
		{"zero objects", func(s *Spec) { s.Objects = 0 }, "objects"},
		{"negative curve knot", func(s *Spec) { s.RateCurve[1].X = -1 }, "rateCurve[1].x"},
		{"non-increasing knots", func(s *Spec) { s.RateCurve[1].At = 0 }, "rateCurve[1].at"},
		{"closed without clients", func(s *Spec) { s.Classes[2].Arrival.Clients = 0 }, "classes[2].arrival.clients"},
		{"event past end", func(s *Spec) { s.Events[0].At = Duration(2 * time.Hour) }, "events[0].at"},
		{"unknown event kind", func(s *Spec) { s.Events[1].Kind = "meteor" }, `events[1].kind: unknown kind "meteor"`},
		{"flash crowd too hot", func(s *Spec) { s.Events[0].HotObjects = 10000 }, "events[0].hotObjects"},
		{"node event without node", func(s *Spec) { s.Events[2].Node = "" }, "events[2].node"},
		{"churn fraction out of range", func(s *Spec) { s.Events[1].Fraction = 1.5 }, "events[1].fraction"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := ParseSpec([]byte(validSpecJSON))
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(s)
			err = s.Validate()
			if err == nil {
				t.Fatal("mutated spec validated cleanly")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// Syntax and type errors must carry line:column of the offending byte.
func TestParseSpecPositionalErrors(t *testing.T) {
	pos := regexp.MustCompile(`workload spec: \d+:\d+:`)
	cases := []struct {
		name string
		src  string
	}{
		{"syntax", "{\n  \"name\": \"x\",\n  \"seed\": ,\n}"},
		{"wrong type", "{\n  \"workload\": \"A\",\n  \"objects\": \"many\"\n}"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.src))
			if err == nil {
				t.Fatal("malformed spec parsed cleanly")
			}
			if !pos.MatchString(err.Error()) {
				t.Fatalf("error %q lacks a line:column position", err)
			}
		})
	}
	// The syntax error above sits on line 3.
	if _, err := ParseSpec([]byte(cases[0].src)); !strings.Contains(err.Error(), "3:") {
		t.Fatalf("error %q should point at line 3", err)
	}
}

func TestParseSpecRejectsUnknownFieldsAndTrailing(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"workload": "A", "objects": 1, "duration": "1m", "classses": []}`)); err == nil || !strings.Contains(err.Error(), "classses") {
		t.Fatalf("unknown field not rejected: %v", err)
	}
	if _, err := ParseSpec([]byte(validSpecJSON + "\n{}")); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing document not rejected: %v", err)
	}
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"90s"`), &d); err != nil || d.D() != 90*time.Second {
		t.Fatalf(`"90s" -> %v, %v`, d.D(), err)
	}
	if err := json.Unmarshal([]byte(`2.5`), &d); err != nil || d.D() != 2500*time.Millisecond {
		t.Fatalf(`2.5 -> %v, %v (numbers are seconds)`, d.D(), err)
	}
	if err := json.Unmarshal([]byte(`"fortnight"`), &d); err == nil {
		t.Fatal("bad duration string accepted")
	}
	if err := json.Unmarshal([]byte(`true`), &d); err == nil {
		t.Fatal("bool duration accepted")
	}
	out, err := json.Marshal(Duration(90 * time.Second))
	if err != nil || string(out) != `"1m30s"` {
		t.Fatalf("marshal = %s, %v", out, err)
	}
}

func TestCurveMultiplier(t *testing.T) {
	s := &Spec{RateCurve: []RatePoint{
		{At: 0, X: 0.5},
		{At: Duration(10 * time.Minute), X: 1.5},
		{At: Duration(20 * time.Minute), X: 1.0},
	}}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 0.5},
		{5 * time.Minute, 1.0},  // midpoint of the first segment
		{10 * time.Minute, 1.5}, // exactly on a knot
		{15 * time.Minute, 1.25},
		{25 * time.Minute, 1.0}, // past the last knot: hold
	}
	for _, tc := range cases {
		if got := s.CurveMultiplier(tc.at); got != tc.want {
			t.Fatalf("CurveMultiplier(%v) = %g, want %g", tc.at, got, tc.want)
		}
	}
	flat := &Spec{}
	if got := flat.CurveMultiplier(time.Hour); got != 1 {
		t.Fatalf("empty curve multiplier = %g, want 1", got)
	}
}

// The built-in scenarios are the CI entry points; they must always
// validate against their own schema.
func TestBuiltinScenariosValidate(t *testing.T) {
	for _, name := range []string{"day", "flash-crowd"} {
		s, err := BuiltinScenario(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("built-in %q fails its own validation: %v", name, err)
		}
	}
	if _, err := BuiltinScenario("nope"); err == nil {
		t.Fatal("unknown builtin accepted")
	}
	day := DayScenario()
	if day.Duration.D() != 24*time.Hour {
		t.Fatalf("day scenario spans %v, want 24h", day.Duration.D())
	}
}
