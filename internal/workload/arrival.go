package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Open-loop arrival processes. The scenario layer schedules one request
// per drawn inter-arrival gap, independent of response completion — the
// regime flash crowds and diurnal curves live in, which the closed-loop
// WebBench clients cannot express (a closed loop self-throttles exactly
// when the interesting overload would begin).

// Arrival process names accepted in workload specs.
const (
	ProcessPoisson = "poisson"
	ProcessGamma   = "gamma"
	ProcessWeibull = "weibull"
	// ProcessClosed is the classic closed-loop client pool, kept for
	// steady-state comparisons against the paper's WebBench setup.
	ProcessClosed = "closed"
)

// Sampler draws unit-mean inter-arrival intervals; the scenario layer
// divides by the instantaneous arrival rate, so one sampler serves a
// whole diurnal curve. Deterministic for a given seed; single-goroutine.
type Sampler interface {
	// Next returns the next inter-arrival gap in units of the mean
	// (expected value 1).
	Next() float64
	// Name identifies the process in reports.
	Name() string
}

// NewSampler builds the sampler for an arrival spec. Only open-loop
// processes have samplers; ProcessClosed is rejected.
func NewSampler(a ArrivalSpec, seed int64) (Sampler, error) {
	switch a.Process {
	case ProcessPoisson:
		return NewPoisson(seed), nil
	case ProcessGamma:
		cv := a.CV
		if cv == 0 {
			cv = 1
		}
		return NewGamma(cv, seed)
	case ProcessWeibull:
		shape := a.Shape
		if shape == 0 {
			shape = 1
		}
		return NewWeibull(shape, seed)
	case ProcessClosed:
		return nil, fmt.Errorf("workload: closed-loop arrivals have no sampler")
	default:
		return nil, fmt.Errorf("workload: unknown arrival process %q", a.Process)
	}
}

// Poisson draws exponential inter-arrivals (a memoryless Poisson arrival
// stream). Construct with NewPoisson.
type Poisson struct {
	rng *rand.Rand
}

// NewPoisson returns a Poisson sampler.
func NewPoisson(seed int64) *Poisson {
	return &Poisson{rng: rand.New(rand.NewSource(seed))}
}

// Next implements Sampler.
func (p *Poisson) Next() float64 { return p.rng.ExpFloat64() }

// Name implements Sampler.
func (p *Poisson) Name() string { return ProcessPoisson }

// Gamma draws gamma-distributed inter-arrivals with the given coefficient
// of variation: cv > 1 is burstier than Poisson (clustered arrivals with
// long gaps), cv < 1 is more regular. Construct with NewGamma.
type Gamma struct {
	shape float64 // k = 1/cv²; unit mean ⇒ scale = 1/k
	rng   *rand.Rand
}

// NewGamma returns a gamma sampler with unit mean and the given CV.
func NewGamma(cv float64, seed int64) (*Gamma, error) {
	if cv <= 0 {
		return nil, fmt.Errorf("workload: non-positive gamma cv %g", cv)
	}
	return &Gamma{shape: 1 / (cv * cv), rng: rand.New(rand.NewSource(seed))}, nil
}

// Next implements Sampler.
func (g *Gamma) Next() float64 { return gammaSample(g.rng, g.shape) / g.shape }

// Name implements Sampler.
func (g *Gamma) Name() string { return ProcessGamma }

// gammaSample draws Gamma(shape, 1) via Marsaglia–Tsang squeeze, with the
// standard U^(1/k) boost for shape < 1.
func gammaSample(rng *rand.Rand, shape float64) float64 {
	if shape < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Weibull draws Weibull-distributed inter-arrivals with the given shape:
// shape < 1 gives heavy-tailed bursty gaps, shape > 1 near-deterministic
// pacing. Construct with NewWeibull.
type Weibull struct {
	shape float64
	scale float64 // chosen so the mean is 1: 1/Γ(1+1/shape)
	rng   *rand.Rand
}

// NewWeibull returns a Weibull sampler with unit mean and the given shape.
func NewWeibull(shape float64, seed int64) (*Weibull, error) {
	if shape <= 0 {
		return nil, fmt.Errorf("workload: non-positive weibull shape %g", shape)
	}
	return &Weibull{
		shape: shape,
		scale: 1 / math.Gamma(1+1/shape),
		rng:   rand.New(rand.NewSource(seed)),
	}, nil
}

// Next implements Sampler.
func (w *Weibull) Next() float64 {
	u := w.rng.Float64()
	for u == 0 {
		u = w.rng.Float64()
	}
	return w.scale * math.Pow(-math.Log(u), 1/w.shape)
}

// Name implements Sampler.
func (w *Weibull) Name() string { return ProcessWeibull }

// Gap converts a unit-mean sample into an inter-arrival duration at the
// given instantaneous rate (requests per second). Rates at or below zero
// are clamped to ratePerSecFloor so a diurnal curve touching zero idles
// instead of dividing by zero.
func Gap(sample, ratePerSec float64) time.Duration {
	if ratePerSec < ratePerSecFloor {
		ratePerSec = ratePerSecFloor
	}
	return time.Duration(sample / ratePerSec * float64(time.Second))
}

// ratePerSecFloor bounds how idle a rate curve can make a class: one
// request per ~28 virtual hours.
const ratePerSecFloor = 1e-5
