package workload

import (
	"fmt"

	"webcluster/internal/content"
)

// Kind names the two paper workloads.
type Kind int

// Workloads.
const (
	// KindA is Workload A: static content only (§5.1).
	KindA Kind = iota + 1
	// KindB is Workload B: static plus a significant amount of dynamic
	// content (CGI and ASP) and video files (§5.1).
	KindB
)

// String names the workload.
func (k Kind) String() string {
	switch k {
	case KindA:
		return "A"
	case KindB:
		return "B"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// SiteParams returns the content-generation parameters for a workload at
// the given scale.
func SiteParams(kind Kind, objects int, seed int64) (content.GenParams, error) {
	p := content.DefaultGenParams()
	p.Objects = objects
	p.Seed = seed
	switch kind {
	case KindA:
		p.DynamicFraction = 0
		p.VideoFraction = 0.003
	case KindB:
		// A "significant amount" of dynamic content: 10% of objects,
		// interleaved through the popularity ranking so dynamic
		// requests form roughly that share of traffic.
		p.DynamicFraction = 0.10
		p.VideoFraction = 0.003
	default:
		return content.GenParams{}, fmt.Errorf("workload: unknown kind %v", kind)
	}
	return p, nil
}

// BuildSite generates the site for a workload.
func BuildSite(kind Kind, objects int, seed int64) (*content.Site, error) {
	p, err := SiteParams(kind, objects, seed)
	if err != nil {
		return nil, err
	}
	site, err := content.GenerateSite(p)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", kind, err)
	}
	return site, nil
}

// Generator draws a request stream over a site: Zipf-ranked object
// selection, one stream per client. Construct with NewGenerator.
type Generator struct {
	site *content.Site
	zipf *Zipf
}

// NewGenerator returns a request generator over site with the given Zipf
// exponent and seed.
func NewGenerator(site *content.Site, zipfS float64, seed int64) (*Generator, error) {
	z, err := NewZipf(site.Len(), zipfS, seed)
	if err != nil {
		return nil, err
	}
	return &Generator{site: site, zipf: z}, nil
}

// Next draws the next requested object.
func (g *Generator) Next() content.Object {
	return g.site.ByRank(g.zipf.Next())
}

// Site returns the underlying site.
func (g *Generator) Site() *content.Site { return g.site }

// DefaultZipfS is the popularity skew used throughout the evaluation.
const DefaultZipfS = 0.9
