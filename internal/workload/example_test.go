package workload_test

import (
	"fmt"

	"webcluster/internal/workload"
)

// ExampleZipf demonstrates the popularity sampler behind every workload:
// rank 0 is drawn far more often than the tail.
func ExampleZipf() {
	z, err := workload.NewZipf(1000, 0.9, 42)
	if err != nil {
		fmt.Println(err)
		return
	}
	counts := make(map[int]int)
	for i := 0; i < 10000; i++ {
		counts[z.Next()]++
	}
	fmt.Printf("rank 0 drawn more than rank 500: %v\n", counts[0] > counts[500])
	fmt.Printf("p(0) > 10*p(99): %v\n", z.Probability(0) > 10*z.Probability(99))

	// Output:
	// rank 0 drawn more than rank 500: true
	// p(0) > 10*p(99): true
}

// ExampleBuildSite shows the two paper workloads at a glance.
func ExampleBuildSite() {
	siteA, _ := workload.BuildSite(workload.KindA, 1000, 1)
	siteB, _ := workload.BuildSite(workload.KindB, 1000, 1)
	dynB := 0
	for _, o := range siteB.Objects() {
		if o.Class.Dynamic() {
			dynB++
		}
	}
	dynA := 0
	for _, o := range siteA.Objects() {
		if o.Class.Dynamic() {
			dynA++
		}
	}
	fmt.Printf("workload A dynamic objects: %d\n", dynA)
	fmt.Printf("workload B has dynamic objects: %v\n", dynB > 50)

	// Output:
	// workload A dynamic objects: 0
	// workload B has dynamic objects: true
}
