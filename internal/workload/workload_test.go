package workload

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"webcluster/internal/backend"
	"webcluster/internal/config"
	"webcluster/internal/content"
)

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 1, 1); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := NewZipf(10, 0, 1); err == nil {
		t.Fatal("zero exponent accepted")
	}
	if _, err := NewZipf(10, -1, 1); err == nil {
		t.Fatal("negative exponent accepted")
	}
}

func TestZipfBounds(t *testing.T) {
	z, err := NewZipf(100, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	for i := 0; i < 10000; i++ {
		r := z.Next()
		if r < 0 || r >= 100 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z, _ := NewZipf(1000, 0.9, 1)
	counts := make([]int, 1000)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate: empirically its share ≈ its probability.
	p0 := z.Probability(0)
	got := float64(counts[0]) / draws
	if math.Abs(got-p0) > p0/2 {
		t.Fatalf("rank-0 share = %.4f, designed %.4f", got, p0)
	}
	// The top 10% of ranks must capture the majority of draws.
	top := 0
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	if float64(top)/draws < 0.5 {
		t.Fatalf("top-decile share = %.3f, want skew > 0.5", float64(top)/draws)
	}
}

func TestZipfDeterministicPerSeed(t *testing.T) {
	a, _ := NewZipf(50, 0.9, 42)
	b, _ := NewZipf(50, 0.9, 42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

// TestPropertyZipfProbabilitiesDecreasing: p(i) is non-increasing in rank
// and sums to ~1.
func TestPropertyZipfProbabilities(t *testing.T) {
	f := func(nRaw uint8, sRaw uint8) bool {
		n := int(nRaw)%200 + 2
		s := 0.3 + float64(sRaw%20)/10 // 0.3 … 2.2
		z, err := NewZipf(n, s, 1)
		if err != nil {
			return false
		}
		var sum float64
		prev := math.Inf(1)
		for i := 0; i < n; i++ {
			p := z.Probability(i)
			if p > prev+1e-12 || p < 0 {
				return false
			}
			prev = p
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfProbabilityOutOfRange(t *testing.T) {
	z, _ := NewZipf(5, 1, 1)
	if z.Probability(-1) != 0 || z.Probability(5) != 0 {
		t.Fatal("out-of-range probability not zero")
	}
}

func TestWorkloadKinds(t *testing.T) {
	if KindA.String() != "A" || KindB.String() != "B" {
		t.Fatal("kind names wrong")
	}
	siteA, err := BuildSite(KindA, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range siteA.Objects() {
		if o.Class.Dynamic() {
			t.Fatalf("workload A contains dynamic object %s", o.Path)
		}
	}
	siteB, err := BuildSite(KindB, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	dyn := 0
	for _, o := range siteB.Objects() {
		if o.Class.Dynamic() {
			dyn++
		}
	}
	if dyn < 50 {
		t.Fatalf("workload B dynamic objects = %d, want a significant share", dyn)
	}
	if _, err := SiteParams(Kind(9), 10, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestGeneratorDrawsFromSite(t *testing.T) {
	site, err := BuildSite(KindA, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(site, DefaultZipfS, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		obj := gen.Next()
		if _, ok := site.Lookup(obj.Path); !ok {
			t.Fatalf("generator produced foreign object %s", obj.Path)
		}
	}
	if gen.Site() != site {
		t.Fatal("Site accessor wrong")
	}
}

// startBackend serves a tiny site for client-pool tests.
func startBackend(t *testing.T, site *content.Site) string {
	t.Helper()
	store := &backend.SyntheticStore{}
	for _, o := range site.Objects() {
		if o.Class.Dynamic() {
			continue
		}
		if err := store.PlaceSized(o.Path, o.Size); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := backend.NewServer(backend.ServerOptions{
		Spec: config.NodeSpec{
			ID: "w1", CPUMHz: 350, MemoryMB: 64,
			Disk: config.DiskSCSI, Platform: config.LinuxApache,
		},
		Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr
}

func smallStaticSite(t *testing.T) *content.Site {
	t.Helper()
	site, err := content.GenerateSite(content.GenParams{
		Objects:         50,
		Seed:            2,
		MeanStaticBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	return site
}

func TestClientPoolAgainstServer(t *testing.T) {
	site := smallStaticSite(t)
	addr := startBackend(t, site)
	report, err := RunClientPool(ClientPoolOptions{
		Addr:      addr,
		Clients:   4,
		Duration:  300 * time.Millisecond,
		Site:      site,
		Seed:      1,
		KeepAlive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if report.Errors != 0 {
		t.Fatalf("errors = %d / %d", report.Errors, report.Requests)
	}
	if report.Throughput() <= 0 {
		t.Fatal("throughput zero")
	}
	if report.Bytes == 0 {
		t.Fatal("no bytes accounted")
	}
	if len(report.PerClass) == 0 {
		t.Fatal("no per-class stats")
	}
	for class, cr := range report.PerClass {
		if cr.Requests > 0 && cr.MeanLat <= 0 {
			t.Fatalf("class %s has requests but zero latency", class)
		}
	}
}

func TestClientPoolHTTP10(t *testing.T) {
	site := smallStaticSite(t)
	addr := startBackend(t, site)
	report, err := RunClientPool(ClientPoolOptions{
		Addr:      addr,
		Clients:   2,
		Duration:  200 * time.Millisecond,
		Site:      site,
		Seed:      1,
		KeepAlive: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 || report.Errors != 0 {
		t.Fatalf("report = %+v", report)
	}
}

func TestClientPoolThinkTime(t *testing.T) {
	site := smallStaticSite(t)
	addr := startBackend(t, site)
	report, err := RunClientPool(ClientPoolOptions{
		Addr:      addr,
		Clients:   2,
		Duration:  200 * time.Millisecond,
		Site:      site,
		Seed:      1,
		ThinkTime: 50 * time.Millisecond,
		KeepAlive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With 50ms think time and a 200ms run, each client manages ≤5.
	if report.Requests > 12 {
		t.Fatalf("think time ignored: %d requests", report.Requests)
	}
}

func TestClientPoolValidation(t *testing.T) {
	site := smallStaticSite(t)
	if _, err := RunClientPool(ClientPoolOptions{Clients: 0, Site: site}); err == nil {
		t.Fatal("zero clients accepted")
	}
	if _, err := RunClientPool(ClientPoolOptions{Clients: 1}); err == nil {
		t.Fatal("nil site accepted")
	}
}

func TestClientPoolUnreachableServer(t *testing.T) {
	site := smallStaticSite(t)
	report, err := RunClientPool(ClientPoolOptions{
		Addr:     "127.0.0.1:1", // nothing listens there
		Clients:  2,
		Duration: 100 * time.Millisecond,
		Site:     site,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors == 0 {
		t.Fatal("unreachable server produced no errors")
	}
	if report.Errors != report.Requests {
		t.Fatalf("errors %d != attempts %d", report.Errors, report.Requests)
	}
}

func TestReportClassThroughput(t *testing.T) {
	r := Report{
		Requests: 100,
		Elapsed:  2 * time.Second,
		PerClass: map[string]ClassReport{"html": {Requests: 50}},
	}
	if r.Throughput() != 50 {
		t.Fatalf("throughput = %g", r.Throughput())
	}
	if r.ClassThroughput("html") != 25 {
		t.Fatalf("class throughput = %g", r.ClassThroughput("html"))
	}
	if r.ClassThroughput("ghost") != 0 {
		t.Fatal("ghost class throughput nonzero")
	}
}

func TestSessionGeneratorVisits(t *testing.T) {
	site, err := content.GenerateSite(content.GenParams{
		Objects:         300,
		Seed:            4,
		DynamicFraction: 0.1,
		MeanStaticBytes: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewSessionGenerator(site, 0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	totalEmbedded := 0
	const visits = 2000
	for i := 0; i < visits; i++ {
		v := gen.Next()
		switch v.Page.Class {
		case content.ClassHTML, content.ClassCGI, content.ClassASP:
		default:
			t.Fatalf("page class = %v", v.Page.Class)
		}
		for _, e := range v.Embedded {
			if e.Class != content.ClassImage {
				t.Fatalf("embedded class = %v", e.Class)
			}
		}
		totalEmbedded += len(v.Embedded)
		if got := len(v.Objects()); got != 1+len(v.Embedded) {
			t.Fatalf("Objects() = %d", got)
		}
	}
	mean := float64(totalEmbedded) / visits
	if mean < 3 || mean > 5 {
		t.Fatalf("mean embedded = %.2f, want ≈4", mean)
	}
}

func TestSessionGeneratorNoImages(t *testing.T) {
	site, err := content.NewSite([]content.Object{
		{Path: "/a.html", Size: 10, Class: content.ClassHTML},
	})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := NewSessionGenerator(site, 0, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	v := gen.Next()
	if len(v.Embedded) != 0 {
		t.Fatal("embedded objects without images in site")
	}
}

func TestSessionGeneratorNoPages(t *testing.T) {
	site, err := content.NewSite([]content.Object{
		{Path: "/i.gif", Size: 10, Class: content.ClassImage},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSessionGenerator(site, 0, 4, 1); err == nil {
		t.Fatal("pageless site accepted")
	}
}

func TestRunSessionPool(t *testing.T) {
	site := smallStaticSite(t)
	addr := startBackend(t, site)
	report, err := RunSessionPool(SessionPoolOptions{
		Addr:      addr,
		Users:     3,
		Duration:  400 * time.Millisecond,
		Site:      site,
		MeanThink: 10 * time.Millisecond,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.PageVisits == 0 || report.Requests < report.PageVisits {
		t.Fatalf("report = %+v", report)
	}
	if report.Errors != 0 {
		t.Fatalf("errors = %d", report.Errors)
	}
	if report.MeanPageTime <= 0 {
		t.Fatal("no page-time samples")
	}
	if report.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunSessionPoolValidation(t *testing.T) {
	site := smallStaticSite(t)
	if _, err := RunSessionPool(SessionPoolOptions{Users: 0, Site: site}); err == nil {
		t.Fatal("zero users accepted")
	}
	if _, err := RunSessionPool(SessionPoolOptions{Users: 1}); err == nil {
		t.Fatal("nil site accepted")
	}
}
