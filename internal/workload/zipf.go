// Package workload generates synthetic web workloads with the invariants
// the paper's evaluation relies on (§5.1, citing Arlitt & Williamson,
// Arlitt & Jin, Barford & Crovella): Zipf-skewed document popularity,
// heavy-tailed file sizes (via internal/content's site generator) and
// WebBench-style closed-loop request clients. Workload A is all-static;
// Workload B mixes in a significant share of CGI and ASP requests.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 0..n-1 with probability proportional to
// 1/(rank+1)^s. It is deterministic for a given seed and safe for
// single-goroutine use; give each client its own sampler. Construct with
// NewZipf.
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf returns a sampler over n ranks with exponent s (web popularity
// studies place s near 0.8–1.0).
func NewZipf(n int, s float64, seed int64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: non-positive rank count %d", n)
	}
	if s <= 0 {
		return nil, fmt.Errorf("workload: non-positive zipf exponent %g", s)
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rand.New(rand.NewSource(seed))}, nil
}

// Next draws one rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the rank-space size.
func (z *Zipf) N() int { return len(z.cdf) }

// Probability returns the sampling probability of rank i.
func (z *Zipf) Probability(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
