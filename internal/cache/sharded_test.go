package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestShardedPutGetRemove(t *testing.T) {
	c := NewSharded(1024, 8)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("/d%d/f%d.html", i%7, i)
		if !c.Put(key, Bytes("v")) {
			t.Fatalf("Put(%q) rejected a fitting value", key)
		}
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
	v, ok := c.Get("/d3/f3.html")
	if !ok || string(v.(Bytes)) != "v" {
		t.Fatalf("Get = %v %v", v, ok)
	}
	if !c.Remove("/d3/f3.html") {
		t.Fatal("Remove missed a stored key")
	}
	if _, ok := c.Get("/d3/f3.html"); ok {
		t.Fatal("Get hit a removed key")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len after Clear = %d", c.Len())
	}
}

func TestShardedCapacitySplit(t *testing.T) {
	// 8 shards over capacity 64: each shard holds at most 8 bytes, the
	// total byte bound stays global.
	c := NewSharded(64, 8)
	st := c.Stats()
	if st.Capacity != 64 {
		t.Fatalf("aggregate capacity = %d, want 64", st.Capacity)
	}
	// Shard count shrinks when capacity is tiny so every shard can hold
	// at least one unit-sized entry.
	small := NewSharded(2, 64)
	if got := len(small.shards); got > 2 {
		t.Fatalf("tiny cache kept %d shards", got)
	}
	// Non-power-of-two shard requests round down.
	odd := NewSharded(1024, 6)
	if got := len(odd.shards); got != 4 {
		t.Fatalf("shards = %d, want 4", got)
	}
}

func TestShardedStatsAggregate(t *testing.T) {
	c := NewSharded(1024, 4)
	c.Put("a", Bytes("x"))
	c.Get("a")
	c.Get("missing")
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShardedConcurrent(t *testing.T) {
	c := NewSharded(1<<16, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				key := fmt.Sprintf("/g%d/f%d", g, i%64)
				c.Put(key, Bytes("body"))
				c.Get(key)
				if i%17 == 0 {
					c.Remove(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Fatal("cache empty after concurrent load")
	}
}
