// Package cache provides a byte-bounded LRU cache.
//
// It is the storage substrate for two components of the system described in
// the paper: the per-node memory page cache of a back-end web server (whose
// hit rate drives the Figure 2 result) and the URL-table entry cache the
// distributor uses to speed up demultiplexing (§5.2).
package cache

import (
	"container/list"
	"sync"
)

// Sizer reports the storage footprint of a cached value in bytes. Values
// stored in an LRU must have a stable size for the duration of their
// residency; mutating a cached value's size corrupts the accounting.
type Sizer interface {
	SizeBytes() int64
}

// Bytes is a convenience value type for caching raw content.
type Bytes []byte

// SizeBytes returns the length of the byte slice.
func (b Bytes) SizeBytes() int64 { return int64(len(b)) }

var _ Sizer = Bytes(nil)

// EvictFunc observes an eviction. It runs while the cache lock is held, so
// it must not call back into the cache.
type EvictFunc func(key string, value Sizer)

// LRU is a thread-safe, byte-capacity-bounded least-recently-used cache.
// The zero value is not usable; construct with NewLRU.
type LRU struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	onEvict  EvictFunc

	hits   int64
	misses int64
}

type lruEntry struct {
	key   string
	value Sizer
	size  int64
}

// NewLRU returns an LRU bounded to capacity bytes. A non-positive capacity
// yields a cache that stores nothing (every Get is a miss), which models a
// node with no memory available for caching.
func NewLRU(capacity int64) *LRU {
	return &LRU{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// SetEvictFunc registers a callback invoked for each evicted entry.
func (c *LRU) SetEvictFunc(fn EvictFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onEvict = fn
}

// Get returns the cached value and whether it was present, promoting the
// entry to most recently used.
func (c *LRU) Get(key string) (Sizer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	ent, _ := el.Value.(*lruEntry)
	return ent.value, true
}

// Contains reports whether key is cached without promoting it or touching
// hit/miss accounting.
func (c *LRU) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Put inserts or replaces the value for key and evicts least-recently-used
// entries until the cache fits its capacity. Values larger than the whole
// capacity are not cached at all (matching the behaviour of an OS page cache
// asked to hold a file bigger than memory: it thrashes rather than pins, so
// we model it as an unconditional miss). It reports whether the value was
// retained.
func (c *LRU) Put(key string, value Sizer) bool {
	size := value.SizeBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.capacity {
		// Too big to ever fit; also drop any stale smaller entry.
		if el, ok := c.items[key]; ok {
			c.removeElement(el)
		}
		return false
	}
	if el, ok := c.items[key]; ok {
		ent, _ := el.Value.(*lruEntry)
		c.used += size - ent.size
		ent.value = value
		ent.size = size
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&lruEntry{key: key, value: value, size: size})
		c.items[key] = el
		c.used += size
	}
	for c.used > c.capacity {
		c.removeElement(c.ll.Back())
	}
	return true
}

// Remove deletes key from the cache, reporting whether it was present.
func (c *LRU) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeElement(el)
	return true
}

// removeElement unlinks el. Caller holds c.mu; el must be non-nil.
func (c *LRU) removeElement(el *list.Element) {
	ent, _ := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.used -= ent.size
	if c.onEvict != nil {
		c.onEvict(ent.key, ent.value)
	}
}

// Clear drops every entry without invoking the eviction callback.
func (c *LRU) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.used = 0
}

// Len returns the number of cached entries.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// UsedBytes returns the summed size of resident entries.
func (c *LRU) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Capacity returns the configured byte bound.
func (c *LRU) Capacity() int64 { return c.capacity }

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits     int64
	Misses   int64
	Entries  int
	Used     int64
	Capacity int64
}

// HitRate returns hits/(hits+misses), or 0 when no lookups have occurred.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the cache counters.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:     c.hits,
		Misses:   c.misses,
		Entries:  c.ll.Len(),
		Used:     c.used,
		Capacity: c.capacity,
	}
}

// ResetStats zeroes the hit/miss counters, leaving contents intact.
func (c *LRU) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses = 0, 0
}
