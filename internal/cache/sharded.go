package cache

// Sharded is an LRU split across independently locked shards, keyed by a
// hash of the entry key. The distributor's URL-table entry cache sits on
// the routing fast path, where a single cache mutex would serialize every
// request the copy-on-write table just freed from its read lock; sharding
// divides that contention by the shard count while keeping the byte bound
// global (capacity is split evenly across shards).
type Sharded struct {
	shards []*LRU
	mask   uint32
}

// NewSharded returns a cache bounded to capacity bytes total, split over
// at most shards independently locked LRUs. The shard count is rounded
// down to a power of two and never exceeds the capacity, so each shard
// retains at least one entry of size 1.
func NewSharded(capacity int64, shards int) *Sharded {
	if shards < 1 {
		shards = 1
	}
	for int64(shards) > capacity && shards > 1 {
		shards >>= 1
	}
	n := 1
	for n*2 <= shards {
		n *= 2
	}
	per := (capacity + int64(n) - 1) / int64(n)
	s := &Sharded{shards: make([]*LRU, n), mask: uint32(n - 1)}
	for i := range s.shards {
		s.shards[i] = NewLRU(per)
	}
	return s
}

// fnv32 is FNV-1a over the key bytes; allocation-free for string keys.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// shard returns the LRU responsible for key.
func (s *Sharded) shard(key string) *LRU {
	return s.shards[fnv32(key)&s.mask]
}

// Get returns the cached value for key and whether it was present.
func (s *Sharded) Get(key string) (Sizer, bool) {
	return s.shard(key).Get(key)
}

// Put inserts or replaces the value for key, reporting whether it was
// retained.
func (s *Sharded) Put(key string, value Sizer) bool {
	return s.shard(key).Put(key, value)
}

// Remove deletes key, reporting whether it was present.
func (s *Sharded) Remove(key string) bool {
	return s.shard(key).Remove(key)
}

// Clear drops every entry from every shard.
func (s *Sharded) Clear() {
	for _, sh := range s.shards {
		sh.Clear()
	}
}

// Len returns the number of cached entries across all shards.
func (s *Sharded) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Stats aggregates the per-shard counters.
func (s *Sharded) Stats() Stats {
	var out Stats
	for _, sh := range s.shards {
		st := sh.Stats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Entries += st.Entries
		out.Used += st.Used
		out.Capacity += st.Capacity
	}
	return out
}
