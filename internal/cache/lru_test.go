package cache

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	c := NewLRU(100)
	if !c.Put("a", Bytes("hello")) {
		t.Fatal("Put rejected a fitting value")
	}
	v, ok := c.Get("a")
	if !ok {
		t.Fatal("Get missed a stored value")
	}
	if string(v.(Bytes)) != "hello" {
		t.Fatalf("Get returned %q, want %q", v, "hello")
	}
}

func TestGetMissing(t *testing.T) {
	c := NewLRU(100)
	if _, ok := c.Get("nope"); ok {
		t.Fatal("Get hit on an empty cache")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 1 miss 0 hits", st)
	}
}

func TestEvictionOrder(t *testing.T) {
	c := NewLRU(3)
	var evicted []string
	c.SetEvictFunc(func(key string, _ Sizer) { evicted = append(evicted, key) })
	c.Put("a", Bytes("x"))
	c.Put("b", Bytes("x"))
	c.Put("c", Bytes("x"))
	// Touch "a" so "b" is the LRU entry.
	c.Get("a")
	c.Put("d", Bytes("x"))
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if !c.Contains("a") || !c.Contains("c") || !c.Contains("d") {
		t.Fatal("wrong survivors after eviction")
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := NewLRU(4)
	if c.Put("big", Bytes("12345")) {
		t.Fatal("Put accepted a value larger than capacity")
	}
	if c.Contains("big") {
		t.Fatal("oversized value resident")
	}
	if c.UsedBytes() != 0 {
		t.Fatalf("used = %d, want 0", c.UsedBytes())
	}
}

func TestOversizedReplacesDropsStale(t *testing.T) {
	c := NewLRU(4)
	c.Put("k", Bytes("12"))
	if c.Put("k", Bytes("123456")) {
		t.Fatal("oversized replacement retained")
	}
	if c.Contains("k") {
		t.Fatal("stale small entry survived an oversized replacement")
	}
}

func TestReplaceAdjustsUsed(t *testing.T) {
	c := NewLRU(10)
	c.Put("k", Bytes("1234"))
	c.Put("k", Bytes("12"))
	if got := c.UsedBytes(); got != 2 {
		t.Fatalf("used = %d, want 2", got)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestRemove(t *testing.T) {
	c := NewLRU(10)
	c.Put("k", Bytes("abc"))
	if !c.Remove("k") {
		t.Fatal("Remove missed a present key")
	}
	if c.Remove("k") {
		t.Fatal("Remove hit an absent key")
	}
	if c.UsedBytes() != 0 || c.Len() != 0 {
		t.Fatal("cache not empty after Remove")
	}
}

func TestClear(t *testing.T) {
	c := NewLRU(10)
	evictions := 0
	c.SetEvictFunc(func(string, Sizer) { evictions++ })
	c.Put("a", Bytes("x"))
	c.Put("b", Bytes("y"))
	c.Clear()
	if c.Len() != 0 || c.UsedBytes() != 0 {
		t.Fatal("Clear left residue")
	}
	if evictions != 0 {
		t.Fatal("Clear invoked the eviction callback")
	}
}

func TestZeroCapacityCachesNothing(t *testing.T) {
	c := NewLRU(0)
	if c.Put("a", Bytes("x")) {
		t.Fatal("zero-capacity cache retained a value")
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("zero-capacity cache hit")
	}
}

func TestHitRate(t *testing.T) {
	c := NewLRU(100)
	c.Put("a", Bytes("x"))
	c.Get("a")
	c.Get("a")
	c.Get("b")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate = %g, want 2/3", got)
	}
}

func TestHitRateNoLookups(t *testing.T) {
	if got := (Stats{}).HitRate(); got != 0 {
		t.Fatalf("empty hit rate = %g, want 0", got)
	}
}

func TestResetStats(t *testing.T) {
	c := NewLRU(10)
	c.Put("a", Bytes("x"))
	c.Get("a")
	c.Get("b")
	c.ResetStats()
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
	if st.Entries != 1 {
		t.Fatal("ResetStats dropped contents")
	}
}

// TestPropertyNeverExceedsCapacity drives random operations and checks the
// byte bound and accounting invariants throughout.
func TestPropertyNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64, capSmall uint8) bool {
		capacity := int64(capSmall)%64 + 1
		c := NewLRU(capacity)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			key := strconv.Itoa(rng.Intn(20))
			switch rng.Intn(3) {
			case 0:
				size := rng.Intn(int(capacity) + 5)
				c.Put(key, Bytes(make([]byte, size)))
			case 1:
				c.Get(key)
			case 2:
				c.Remove(key)
			}
			if c.UsedBytes() > capacity {
				return false
			}
			if c.UsedBytes() < 0 {
				return false
			}
		}
		// Cross-check used bytes against summed entries.
		var sum int64
		for i := 0; i < 20; i++ {
			key := strconv.Itoa(i)
			if v, ok := c.Get(key); ok {
				sum += v.SizeBytes()
			}
		}
		return sum == c.UsedBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLRUKeepsHotKey: a key touched on every round survives any
// interleaving of other insertions that fit alongside it.
func TestPropertyLRUKeepsHotKey(t *testing.T) {
	f := func(seed int64) bool {
		c := NewLRU(10)
		c.Put("hot", Bytes("x"))
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			if _, ok := c.Get("hot"); !ok {
				return false
			}
			c.Put(fmt.Sprintf("cold%d", rng.Intn(100)), Bytes("abc"))
		}
		return c.Contains("hot")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := NewLRU(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				key := strconv.Itoa((g*1000 + i) % 64)
				c.Put(key, Bytes(make([]byte, i%128)))
				c.Get(key)
				if i%10 == 0 {
					c.Remove(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.UsedBytes() > c.Capacity() {
		t.Fatalf("used %d exceeds capacity %d", c.UsedBytes(), c.Capacity())
	}
}

func TestBytesSizer(t *testing.T) {
	if Bytes("abcd").SizeBytes() != 4 {
		t.Fatal("Bytes.SizeBytes wrong")
	}
	if Bytes(nil).SizeBytes() != 0 {
		t.Fatal("nil Bytes size wrong")
	}
}
