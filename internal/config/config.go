// Package config holds the shared cluster description types: node
// identities, hardware specifications, and the paper's laboratory testbed
// (§5.1) as a ready-made preset. Every other package refers to nodes
// through these types, so the package sits at the bottom of the import
// graph and has no dependencies inside the module.
package config

import (
	"encoding/json"
	"fmt"
	"os"
)

// NodeID names a back-end server node.
type NodeID string

// DiskKind distinguishes the two disk technologies in the paper's testbed.
type DiskKind int

// Disk kinds.
const (
	DiskIDE DiskKind = iota + 1
	DiskSCSI
)

// String returns the conventional name of the disk kind.
func (d DiskKind) String() string {
	switch d {
	case DiskIDE:
		return "IDE"
	case DiskSCSI:
		return "SCSI"
	default:
		return fmt.Sprintf("DiskKind(%d)", int(d))
	}
}

// MarshalJSON encodes the disk kind as its name.
func (d DiskKind) MarshalJSON() ([]byte, error) { return json.Marshal(d.String()) }

// UnmarshalJSON decodes a disk kind from its name.
func (d *DiskKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("disk kind: %w", err)
	}
	switch s {
	case "IDE":
		*d = DiskIDE
	case "SCSI":
		*d = DiskSCSI
	default:
		return fmt.Errorf("unknown disk kind %q", s)
	}
	return nil
}

// Platform is the operating system / server software pairing of a node.
// The paper mixes Linux+Apache and Windows NT+IIS nodes to demonstrate
// heterogeneity; the management layer must not care which is which.
type Platform int

// Platforms.
const (
	LinuxApache Platform = iota + 1
	WindowsNTIIS
)

// String returns the conventional name of the platform.
func (p Platform) String() string {
	switch p {
	case LinuxApache:
		return "Linux/Apache"
	case WindowsNTIIS:
		return "WindowsNT/IIS"
	default:
		return fmt.Sprintf("Platform(%d)", int(p))
	}
}

// MarshalJSON encodes the platform as its name.
func (p Platform) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// UnmarshalJSON decodes a platform from its name.
func (p *Platform) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("platform: %w", err)
	}
	switch s {
	case "Linux/Apache":
		*p = LinuxApache
	case "WindowsNT/IIS":
		*p = WindowsNTIIS
	default:
		return fmt.Errorf("unknown platform %q", s)
	}
	return nil
}

// NodeSpec describes one back-end server's hardware and identity.
type NodeSpec struct {
	ID       NodeID   `json:"id"`
	CPUMHz   int      `json:"cpuMHz"`
	MemoryMB int      `json:"memoryMB"`
	DiskGB   int      `json:"diskGB"`
	Disk     DiskKind `json:"disk"`
	Platform Platform `json:"platform"`
	// Weight is the static capacity weighting used by the load metric
	// L_j = Σ(l_i × freq) / Weight (§3.3) and by the baseline L4 router's
	// Weighted Least Connection policy. Zero means "derive from CPUMHz".
	Weight float64 `json:"weight,omitempty"`
	// Addr is the listen address of a live node; empty in pure simulation.
	Addr string `json:"addr,omitempty"`
	// BrokerAddr is the node's management-broker address in a live
	// multi-process deployment.
	BrokerAddr string `json:"brokerAddr,omitempty"`
}

// EffectiveWeight returns Weight, deriving a CPU-proportional default when
// unset (350 MHz ⇒ 1.0).
func (n NodeSpec) EffectiveWeight() float64 {
	if n.Weight > 0 {
		return n.Weight
	}
	if n.CPUMHz <= 0 {
		return 1
	}
	return float64(n.CPUMHz) / 350.0
}

// Validate checks the spec for usability.
func (n NodeSpec) Validate() error {
	if n.ID == "" {
		return fmt.Errorf("node spec: missing id")
	}
	if n.CPUMHz <= 0 {
		return fmt.Errorf("node %s: non-positive CPUMHz %d", n.ID, n.CPUMHz)
	}
	if n.MemoryMB <= 0 {
		return fmt.Errorf("node %s: non-positive MemoryMB %d", n.ID, n.MemoryMB)
	}
	if n.Weight < 0 {
		return fmt.Errorf("node %s: negative weight %g", n.ID, n.Weight)
	}
	return nil
}

// ClusterSpec describes a whole testbed: the distributor host and the
// back-end server pool.
type ClusterSpec struct {
	// DistributorCPUMHz sizes the front-end host (350 MHz in §5.1).
	DistributorCPUMHz int        `json:"distributorCPUMHz"`
	Nodes             []NodeSpec `json:"nodes"`
}

// Validate checks every node and rejects duplicate IDs.
func (c ClusterSpec) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster spec: no nodes")
	}
	seen := make(map[NodeID]struct{}, len(c.Nodes))
	for _, n := range c.Nodes {
		if err := n.Validate(); err != nil {
			return fmt.Errorf("cluster spec: %w", err)
		}
		if _, dup := seen[n.ID]; dup {
			return fmt.Errorf("cluster spec: duplicate node id %s", n.ID)
		}
		seen[n.ID] = struct{}{}
	}
	return nil
}

// Node returns the spec for id.
func (c ClusterSpec) Node(id NodeID) (NodeSpec, bool) {
	for _, n := range c.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return NodeSpec{}, false
}

// NodeIDs returns the node IDs in declaration order.
func (c ClusterSpec) NodeIDs() []NodeID {
	ids := make([]NodeID, len(c.Nodes))
	for i, n := range c.Nodes {
		ids[i] = n.ID
	}
	return ids
}

// PaperTestbed returns the §5.1 laboratory configuration: a 350 MHz
// distributor in front of three 150 MHz/64 MB/IDE nodes, two
// 200 MHz/128 MB/SCSI nodes and four 350 MHz/128 MB/SCSI nodes, with a mix
// of Linux+Apache and NT+IIS platforms.
func PaperTestbed() ClusterSpec {
	spec := ClusterSpec{DistributorCPUMHz: 350}
	add := func(id string, mhz, memMB, diskGB int, disk DiskKind, plat Platform) {
		spec.Nodes = append(spec.Nodes, NodeSpec{
			ID:       NodeID(id),
			CPUMHz:   mhz,
			MemoryMB: memMB,
			DiskGB:   diskGB,
			Disk:     disk,
			Platform: plat,
		})
	}
	add("n1-150", 150, 64, 4, DiskIDE, LinuxApache)
	add("n2-150", 150, 64, 4, DiskIDE, WindowsNTIIS)
	add("n3-150", 150, 64, 4, DiskIDE, LinuxApache)
	add("n4-200", 200, 128, 4, DiskSCSI, WindowsNTIIS)
	add("n5-200", 200, 128, 4, DiskSCSI, LinuxApache)
	add("n6-350", 350, 128, 8, DiskSCSI, LinuxApache)
	add("n7-350", 350, 128, 8, DiskSCSI, WindowsNTIIS)
	add("n8-350", 350, 128, 8, DiskSCSI, LinuxApache)
	add("n9-350", 350, 128, 8, DiskSCSI, LinuxApache)
	return spec
}

// Load reads a ClusterSpec from a JSON file.
func Load(path string) (ClusterSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ClusterSpec{}, fmt.Errorf("reading cluster spec: %w", err)
	}
	var spec ClusterSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return ClusterSpec{}, fmt.Errorf("parsing cluster spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return ClusterSpec{}, err
	}
	return spec, nil
}

// Save writes a ClusterSpec to a JSON file.
func Save(path string, spec ClusterSpec) error {
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding cluster spec: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing cluster spec: %w", err)
	}
	return nil
}
