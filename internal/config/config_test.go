package config

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNodeSpecValidate(t *testing.T) {
	good := NodeSpec{ID: "n1", CPUMHz: 350, MemoryMB: 128}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []NodeSpec{
		{CPUMHz: 350, MemoryMB: 128},        // missing id
		{ID: "n", CPUMHz: 0, MemoryMB: 128}, // zero CPU
		{ID: "n", CPUMHz: 350, MemoryMB: 0}, // zero mem
		{ID: "n", CPUMHz: 350, MemoryMB: 64, Weight: -1},
	}
	for i, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestClusterSpecValidate(t *testing.T) {
	spec := ClusterSpec{Nodes: []NodeSpec{
		{ID: "a", CPUMHz: 350, MemoryMB: 128},
		{ID: "b", CPUMHz: 200, MemoryMB: 64},
	}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (ClusterSpec{}).Validate(); err == nil {
		t.Fatal("empty cluster accepted")
	}
	dup := ClusterSpec{Nodes: []NodeSpec{
		{ID: "a", CPUMHz: 350, MemoryMB: 128},
		{ID: "a", CPUMHz: 200, MemoryMB: 64},
	}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate node IDs accepted")
	}
}

func TestEffectiveWeight(t *testing.T) {
	if got := (NodeSpec{CPUMHz: 350}).EffectiveWeight(); got != 1 {
		t.Fatalf("350MHz weight = %g, want 1", got)
	}
	if got := (NodeSpec{CPUMHz: 175}).EffectiveWeight(); got != 0.5 {
		t.Fatalf("175MHz weight = %g, want 0.5", got)
	}
	if got := (NodeSpec{CPUMHz: 100, Weight: 3}).EffectiveWeight(); got != 3 {
		t.Fatalf("explicit weight = %g, want 3", got)
	}
	if got := (NodeSpec{}).EffectiveWeight(); got != 1 {
		t.Fatalf("zero spec weight = %g, want 1", got)
	}
}

func TestPaperTestbed(t *testing.T) {
	spec := PaperTestbed()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(spec.Nodes) != 9 {
		t.Fatalf("node count = %d, want 9", len(spec.Nodes))
	}
	counts := map[int]int{}
	for _, n := range spec.Nodes {
		counts[n.CPUMHz]++
	}
	if counts[150] != 3 || counts[200] != 2 || counts[350] != 4 {
		t.Fatalf("CPU mix = %v, want 3×150, 2×200, 4×350", counts)
	}
	for _, n := range spec.Nodes {
		switch n.CPUMHz {
		case 150:
			if n.MemoryMB != 64 || n.Disk != DiskIDE || n.DiskGB != 4 {
				t.Errorf("150MHz node %s misconfigured: %+v", n.ID, n)
			}
		case 200:
			if n.MemoryMB != 128 || n.Disk != DiskSCSI || n.DiskGB != 4 {
				t.Errorf("200MHz node %s misconfigured: %+v", n.ID, n)
			}
		case 350:
			if n.MemoryMB != 128 || n.Disk != DiskSCSI || n.DiskGB != 8 {
				t.Errorf("350MHz node %s misconfigured: %+v", n.ID, n)
			}
		}
	}
	if spec.DistributorCPUMHz != 350 {
		t.Fatalf("distributor CPU = %d", spec.DistributorCPUMHz)
	}
	// Both platforms present (heterogeneity is the point).
	plats := map[Platform]bool{}
	for _, n := range spec.Nodes {
		plats[n.Platform] = true
	}
	if !plats[LinuxApache] || !plats[WindowsNTIIS] {
		t.Fatal("testbed not platform-heterogeneous")
	}
}

func TestNodeLookup(t *testing.T) {
	spec := PaperTestbed()
	n, ok := spec.Node("n1-150")
	if !ok || n.CPUMHz != 150 {
		t.Fatalf("Node lookup = %+v %v", n, ok)
	}
	if _, ok := spec.Node("absent"); ok {
		t.Fatal("lookup of absent node succeeded")
	}
	ids := spec.NodeIDs()
	if len(ids) != 9 || ids[0] != "n1-150" {
		t.Fatalf("NodeIDs = %v", ids)
	}
}

func TestDiskKindJSON(t *testing.T) {
	for _, d := range []DiskKind{DiskIDE, DiskSCSI} {
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var got DiskKind
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got != d {
			t.Fatalf("round trip %v → %v", d, got)
		}
	}
	var d DiskKind
	if err := json.Unmarshal([]byte(`"FLOPPY"`), &d); err == nil {
		t.Fatal("unknown disk kind accepted")
	}
	if DiskKind(99).String() == "" {
		t.Fatal("unknown disk kind has empty String")
	}
}

func TestPlatformJSON(t *testing.T) {
	for _, p := range []Platform{LinuxApache, WindowsNTIIS} {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var got Platform
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Fatalf("round trip %v → %v", p, got)
		}
	}
	var p Platform
	if err := json.Unmarshal([]byte(`"BeOS"`), &p); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	spec := PaperTestbed()
	spec.Nodes[0].Addr = "127.0.0.1:8081"
	spec.Nodes[0].BrokerAddr = "127.0.0.1:9081"
	spec.Nodes[0].Weight = 2.5
	if err := Save(path, spec); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Nodes) != len(spec.Nodes) {
		t.Fatalf("node count %d != %d", len(got.Nodes), len(spec.Nodes))
	}
	n := got.Nodes[0]
	if n.Addr != "127.0.0.1:8081" || n.BrokerAddr != "127.0.0.1:9081" ||
		math.Abs(n.Weight-2.5) > 1e-9 {
		t.Fatalf("round trip lost fields: %+v", n)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

func TestLoadInvalidSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := Save(path, ClusterSpec{Nodes: []NodeSpec{{ID: "x", CPUMHz: 1, MemoryMB: 1}}}); err != nil {
		t.Fatal(err)
	}
	// Corrupt it to an invalid (empty-node) spec.
	spec := ClusterSpec{}
	data, _ := json.Marshal(spec)
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if !strings.Contains(errString(Load(path)), "no nodes") {
		t.Fatal("unexpected error message")
	}
}

// writeFile is a thin wrapper so the corruption step reads clearly.
func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// errString extracts the error from a (ClusterSpec, error) pair.
func errString(_ ClusterSpec, err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
