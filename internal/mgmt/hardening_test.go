package mgmt

import (
	"errors"
	"net"
	"testing"
	"time"

	"webcluster/internal/testutil"
)

// TestBrokerClientTimeoutOnSilentServer: a broker that accepts but never
// answers (crashed agent loop, black-holed node) must fail the call at
// the client deadline — this is the path the monitor's prober runs on, so
// a hang here would freeze failure detection cluster-wide. Reverting the
// deadline in BrokerClient.call turns this test into a hang.
func TestBrokerClientTimeoutOnSilentServer(t *testing.T) {
	testutil.NoLeaks(t)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c // held open, never read, never answered
		}
	}()

	client, err := DialBroker(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	client.SetTimeout(150 * time.Millisecond)

	start := time.Now()
	_, _, err = client.Invoke("ping", Args{})
	if err == nil {
		t.Fatal("invoke against silent broker succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want timeout error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("invoke took %v — deadline not applied", elapsed)
	}
	select {
	case c := <-accepted:
		_ = c.Close()
	default:
	}
}

// TestBrokerClientRecoversAfterTimeout: a timeout against a live broker
// does not poison subsequent calls once the deadline allows them through.
func TestBrokerClientDeadlineClearedOnSuccess(t *testing.T) {
	testutil.NoLeaks(t)
	b := NewBroker(Env{Node: "n1"})
	addr, err := b.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	client, err := DialBroker(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = client.Close() }()
	client.SetTimeout(2 * time.Second)
	if err := client.Install(Spec{Name: "ping", Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	// Several sequential calls must all finish well under the deadline —
	// a deadline left armed from a previous call would trip spuriously.
	for i := 0; i < 3; i++ {
		time.Sleep(20 * time.Millisecond)
		if _, _, err := client.Invoke("ping", Args{}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}
