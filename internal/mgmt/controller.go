package mgmt

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/doctree"
	"webcluster/internal/journal"
	"webcluster/internal/loadbal"
	"webcluster/internal/monitor"
	"webcluster/internal/respcache"
	"webcluster/internal/telemetry"
	"webcluster/internal/urltable"
)

// CacheView is the slice of the distributor's response cache the
// management plane drives: synchronous purges after every content or
// placement mutation, and counters for the console. Wiring one in is what
// makes the front-end cache coherent — the controller purges affected
// paths before a mutation returns, so the cache never serves content the
// doctree no longer holds.
type CacheView interface {
	Invalidate(path string) int
	InvalidateAll() int
	Stats() respcache.Stats
}

// Controller is the special daemon that receives administrator requests
// and dispatches agents to brokers (§3.1). It owns the agent repository,
// executes doctree plans (file steps through agents, then the URL-table
// update), and applies the §3.3 auto-replication planner's actions.
// Construct with NewController.
type Controller struct {
	table *urltable.Table

	mu      sync.Mutex
	brokers map[config.NodeID]*BrokerClient
	repo    map[string]Spec
	audit   []string
	cache   CacheView
	tel     *telemetry.Telemetry
	jnl     *journal.Journal
	dumper  func(reason string) (string, error)

	installsSent int64
}

// NewController returns a controller managing table, with the built-in
// agent repository loaded.
func NewController(table *urltable.Table) *Controller {
	repo := make(map[string]Spec)
	for _, spec := range BuiltinSpecs() {
		repo[spec.Name] = spec
	}
	return &Controller{
		table:   table,
		brokers: make(map[config.NodeID]*BrokerClient),
		repo:    repo,
	}
}

// Table returns the managed URL table.
func (c *Controller) Table() *urltable.Table { return c.table }

// AddNode connects the controller to the broker for node at addr.
func (c *Controller) AddNode(node config.NodeID, brokerAddr string) error {
	client, err := DialBroker(brokerAddr)
	if err != nil {
		return fmt.Errorf("controller: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.brokers[node]; ok {
		_ = old.Close()
	}
	c.brokers[node] = client
	return nil
}

// RemoveNode disconnects node's broker.
func (c *Controller) RemoveNode(node config.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if client, ok := c.brokers[node]; ok {
		_ = client.Close()
		delete(c.brokers, node)
	}
}

// Nodes returns the managed node IDs, sorted.
func (c *Controller) Nodes() []config.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]config.NodeID, 0, len(c.brokers))
	for id := range c.brokers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InstallsSent counts agent specs shipped to brokers (download-on-demand
// traffic).
func (c *Controller) InstallsSent() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.installsSent
}

// SetCache attaches the front-end response cache so mutations purge it.
func (c *Controller) SetCache(v CacheView) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache = v
}

// cacheView returns the attached cache, nil when none.
func (c *Controller) cacheView() CacheView {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cache
}

// SetTelemetry attaches the front end's (distributor's) telemetry layer
// so cluster-wide stats include the distributor's own view alongside the
// per-node scrapes.
func (c *Controller) SetTelemetry(t *telemetry.Telemetry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tel = t
}

// telemetryView returns the attached front-end telemetry, nil when none.
func (c *Controller) telemetryView() *telemetry.Telemetry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tel
}

// SetJournal attaches the front end's decision journal. The controller
// records planner decisions, plan applications, and cache purges into
// it, and merges it with per-node scrapes in ClusterJournal.
func (c *Controller) SetJournal(j *journal.Journal) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jnl = j
}

// journalView returns the attached journal; nil (which is safe to
// record into) when none.
func (c *Controller) journalView() *journal.Journal {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jnl
}

// SetDumper attaches the flight recorder's manual trigger so the
// console dump verb can reach it.
func (c *Controller) SetDumper(fn func(reason string) (string, error)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dumper = fn
}

// DumpFlight triggers a flight-recorder bundle and returns its path.
func (c *Controller) DumpFlight(reason string) (string, error) {
	c.mu.Lock()
	fn := c.dumper
	c.mu.Unlock()
	if fn == nil {
		return "", errors.New("controller: no flight recorder attached")
	}
	return fn(reason)
}

// gatherReports scrapes the telemetry of every reachable node (via
// OpTelemetry dispatch) plus the attached front-end layer. Nodes that
// fail to answer are skipped — a single-system image over the nodes that
// are alive beats no image at all — and their IDs are returned so the
// caller can surface the gap.
func (c *Controller) gatherReports() (reports []telemetry.Report, missing []config.NodeID) {
	if t := c.telemetryView(); t != nil {
		reports = append(reports, t.Report(telemetryReportSpans))
	}
	for _, node := range c.Nodes() {
		res, err := c.Dispatch(node, OpTelemetry.String(), Args{})
		if err != nil || res.Telemetry == nil {
			missing = append(missing, node)
			continue
		}
		reports = append(reports, *res.Telemetry)
	}
	return reports, missing
}

// ClusterStats merges every node's telemetry snapshot (plus the front
// end's) into the single-system-image per-class view the console's stats
// verb renders.
func (c *Controller) ClusterStats() (telemetry.ClusterStats, []config.NodeID) {
	reports, missing := c.gatherReports()
	snaps := make([]telemetry.Snapshot, len(reports))
	for i, r := range reports {
		snaps[i] = r.Snapshot
	}
	return telemetry.Summarize(snaps...), missing
}

// ClusterTraces returns the slowest recent spans across every node,
// merged slowest-first and capped at limit (<=0 for the default 32).
func (c *Controller) ClusterTraces(limit int) ([]telemetry.Span, []config.NodeID) {
	if limit <= 0 {
		limit = telemetryReportSpans
	}
	reports, missing := c.gatherReports()
	lists := make([][]telemetry.Span, len(reports))
	for i, r := range reports {
		lists[i] = r.Spans
	}
	return telemetry.MergeSpans(limit, lists...), missing
}

// ClusterJournal merges the front end's journal with every node's
// OpJournal scrape into one time-ordered stream capped at limit (<=0
// for the default 256). Nodes that fail to answer are returned so the
// caller can surface the gap.
func (c *Controller) ClusterJournal(limit int) ([]journal.Event, []config.NodeID) {
	if limit <= 0 {
		limit = journalReportEvents
	}
	var lists [][]journal.Event
	if j := c.journalView(); j != nil {
		lists = append(lists, j.Snapshot(0))
	}
	var missing []config.NodeID
	for _, node := range c.Nodes() {
		res, err := c.Dispatch(node, OpJournal.String(), Args{})
		if err != nil {
			missing = append(missing, node)
			continue
		}
		lists = append(lists, res.Journal)
	}
	merged := journal.Merge(lists...)
	if len(merged) > limit {
		merged = merged[len(merged)-limit:]
	}
	return merged, missing
}

// ExplainReport is the console explain verb's answer: where a document
// lives now, the journal events that shaped that placement, and the
// most recent planner decision about it with the inputs the planner
// saw (interval hits in Decision.A, load CV in Decision.F, branch and
// rejected alternatives in Decision.Detail).
type ExplainReport struct {
	Path      string          `json:"path"`
	Locations []config.NodeID `json:"locations"`
	Pinned    bool            `json:"pinned"`
	Priority  int             `json:"priority"`
	Hits      int64           `json:"hits"`
	Size      int64           `json:"size"`
	// Decision is the newest planner decision concerning Path.
	Decision *journal.Event `json:"decision,omitempty"`
	// History is every journal event touching Path, oldest first.
	History []journal.Event `json:"history,omitempty"`
}

// Explain looks up path and walks the merged cluster journal for the
// events that explain its placement. limit caps History (<=0 keeps
// everything in the journal window).
func (c *Controller) Explain(path string, limit int) (*ExplainReport, []config.NodeID, error) {
	rec, err := c.table.Lookup(path)
	if err != nil {
		return nil, nil, err
	}
	events, missing := c.ClusterJournal(0)
	rep := &ExplainReport{
		Path:      rec.Path,
		Locations: rec.Locations,
		Pinned:    rec.Pinned,
		Priority:  rec.Priority,
		Hits:      rec.Hits,
		Size:      rec.Size,
	}
	for _, ev := range events {
		if ev.Path != path {
			continue
		}
		rep.History = append(rep.History, ev)
		if ev.Kind == journal.KindPlanReplicate || ev.Kind == journal.KindPlanOffload {
			e := ev
			rep.Decision = &e
		}
	}
	if limit > 0 && len(rep.History) > limit {
		rep.History = rep.History[len(rep.History)-limit:]
	}
	return rep, missing, nil
}

// purgeCache synchronously invalidates path in the front-end cache after
// the op mutation committed, auditing and journaling the purge (under
// the incident trace when the mutation repairs one). Called with the
// mutation already applied on every node and in the table, so a fetch
// racing the purge can only observe post-mutation content.
func (c *Controller) purgeCache(op, path string, trace uint64) {
	v := c.cacheView()
	if v == nil {
		return
	}
	n := v.Invalidate(path)
	c.logf("OK purge %s after %s (%d entries)", path, op, n)
	c.journalView().Record(journal.Event{
		Actor:  journal.ActorController,
		Kind:   journal.KindPurge,
		Trace:  trace,
		Path:   path,
		Detail: op,
		A:      int64(n),
	})
}

// Purge drops path from the front-end cache on demand (console
// operation); path "*" empties the cache. Returns entries dropped.
func (c *Controller) Purge(path string) (int, error) {
	v := c.cacheView()
	if v == nil {
		return 0, errors.New("controller: no response cache attached")
	}
	var n int
	if path == "*" {
		n = v.InvalidateAll()
	} else {
		n = v.Invalidate(path)
	}
	c.logf("OK purge %s by console (%d entries)", path, n)
	return n, nil
}

// CacheStats snapshots the attached cache's counters; ok is false when no
// cache is wired in.
func (c *Controller) CacheStats() (stats respcache.Stats, ok bool) {
	v := c.cacheView()
	if v == nil {
		return respcache.Stats{}, false
	}
	return v.Stats(), true
}

// logf appends to the audit log.
func (c *Controller) logf(format string, args ...any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.audit = append(c.audit, fmt.Sprintf(format, args...))
}

// AuditLog returns a copy of the audit entries.
func (c *Controller) AuditLog() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.audit...)
}

// broker returns the client for node.
func (c *Controller) broker(node config.NodeID) (*BrokerClient, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	client, ok := c.brokers[node]
	if !ok {
		return nil, fmt.Errorf("controller: no broker for node %s", node)
	}
	return client, nil
}

// Dispatch invokes agent on node with the download-on-demand retry: when
// the broker lacks the agent, the controller ships the spec from its
// repository and retries once.
func (c *Controller) Dispatch(node config.NodeID, agent string, args Args) (Result, error) {
	client, err := c.broker(node)
	if err != nil {
		return Result{}, err
	}
	result, needCode, err := client.Invoke(agent, args)
	if err == nil {
		return result, nil
	}
	if !needCode {
		return Result{}, fmt.Errorf("dispatch %s to %s: %w", agent, node, err)
	}
	c.mu.Lock()
	spec, ok := c.repo[agent]
	c.mu.Unlock()
	if !ok {
		return Result{}, fmt.Errorf("dispatch %s to %s: agent not in repository", agent, node)
	}
	if err := client.Install(spec); err != nil {
		return Result{}, fmt.Errorf("dispatch %s to %s: %w", agent, node, err)
	}
	c.mu.Lock()
	c.installsSent++
	c.mu.Unlock()
	result, _, err = client.Invoke(agent, args)
	if err != nil {
		return Result{}, fmt.Errorf("dispatch %s to %s after install: %w", agent, node, err)
	}
	return result, nil
}

// runStep executes one doctree step via agents.
func (c *Controller) runStep(step doctree.Step) error {
	switch step.Kind {
	case doctree.StepStore:
		_, err := c.Dispatch(step.Node, OpStoreFile.String(), Args{
			Path: step.Path,
			Data: step.Data,
			Size: step.SyntheticSize,
		})
		return err
	case doctree.StepDelete:
		_, err := c.Dispatch(step.Node, OpDeleteFile.String(), Args{Path: step.Path})
		return err
	case doctree.StepCopy:
		fetched, err := c.Dispatch(step.Source, OpFetchFile.String(), Args{Path: step.Path})
		if err != nil {
			return err
		}
		dest := step.DestPath
		if dest == "" {
			dest = step.Path
		}
		_, err = c.Dispatch(step.Node, OpStoreFile.String(), Args{
			Path: dest,
			Data: fetched.Data,
			Size: step.SyntheticSize,
		})
		return err
	default:
		return fmt.Errorf("controller: unknown step kind %v", step.Kind)
	}
}

// Execute runs a plan: all file steps, then the table update. A failed
// step aborts before the table changes, so the distributor never routes to
// content that was not actually placed.
func (c *Controller) Execute(plan doctree.Plan) error {
	return c.execute(plan, 0)
}

// execute is Execute with an incident trace for the journal record, so
// repairs triggered by an open incident stay causally linked to it.
func (c *Controller) execute(plan doctree.Plan, trace uint64) error {
	j := c.journalView()
	for _, step := range plan.Steps {
		if err := c.runStep(step); err != nil {
			c.logf("FAILED %s: %v", plan.Describe, err)
			detail := plan.Describe + ": " + err.Error()
			j.Record(journal.Event{
				Actor:  journal.ActorController,
				Kind:   journal.KindApplyFail,
				Trace:  trace,
				Detail: detail,
			})
			return fmt.Errorf("executing %q: %w", plan.Describe, err)
		}
	}
	if plan.Apply != nil {
		if err := plan.Apply(c.table); err != nil {
			c.logf("FAILED table update for %s: %v", plan.Describe, err)
			detail := plan.Describe + ": " + err.Error()
			j.Record(journal.Event{
				Actor:  journal.ActorController,
				Kind:   journal.KindApplyFail,
				Trace:  trace,
				Detail: detail,
			})
			return fmt.Errorf("updating table for %q: %w", plan.Describe, err)
		}
	}
	c.logf("OK %s", plan.Describe)
	j.Record(journal.Event{
		Actor:  journal.ActorController,
		Kind:   journal.KindApply,
		Trace:  trace,
		Detail: plan.Describe,
	})
	return nil
}

// Insert places a new object on nodes (console operation).
func (c *Controller) Insert(obj content.Object, data []byte, nodes ...config.NodeID) error {
	plan, err := doctree.InsertPlan(obj, data, nodes...)
	if err != nil {
		return err
	}
	if err := c.Execute(plan); err != nil {
		return err
	}
	// a path can be re-inserted after a delete while a 404 relay is in
	// flight; the purge dooms any such fetch
	c.purgeCache("insert", obj.Path, 0)
	return nil
}

// Delete removes an object everywhere (console operation).
func (c *Controller) Delete(path string) error {
	plan, err := doctree.DeletePlan(c.table, path)
	if err != nil {
		return err
	}
	if err := c.Execute(plan); err != nil {
		return err
	}
	c.purgeCache("delete", path, 0)
	return nil
}

// Rename renames an object everywhere (console operation).
func (c *Controller) Rename(oldPath, newPath string) error {
	plan, err := doctree.RenamePlan(c.table, oldPath, newPath)
	if err != nil {
		return err
	}
	if err := c.Execute(plan); err != nil {
		return err
	}
	c.purgeCache("rename", oldPath, 0)
	c.purgeCache("rename", newPath, 0)
	return nil
}

// Replicate copies an object to target (console operation; also the
// auto-replication executor).
func (c *Controller) Replicate(path string, source, target config.NodeID) error {
	return c.replicate(path, source, target, 0)
}

// replicate is Replicate threading an incident trace through the
// execute/purge journal records.
func (c *Controller) replicate(path string, source, target config.NodeID, trace uint64) error {
	plan, err := doctree.ReplicatePlan(c.table, path, source, target)
	if err != nil {
		return err
	}
	if err := c.execute(plan, trace); err != nil {
		return err
	}
	c.purgeCache("replicate", path, trace)
	return nil
}

// Offload removes node's copy of an object (console operation; also the
// auto-offload executor).
func (c *Controller) Offload(path string, node config.NodeID) error {
	return c.offload(path, node, 0)
}

// offload is Offload threading an incident trace through the
// execute/purge journal records.
func (c *Controller) offload(path string, node config.NodeID, trace uint64) error {
	plan, err := doctree.OffloadPlan(c.table, path, node)
	if err != nil {
		return err
	}
	if err := c.execute(plan, trace); err != nil {
		return err
	}
	c.purgeCache("offload", path, trace)
	return nil
}

// Assign moves an object to exactly the given nodes (console operation).
func (c *Controller) Assign(path string, nodes ...config.NodeID) error {
	plan, err := doctree.AssignPlan(c.table, path, nodes...)
	if err != nil {
		return err
	}
	if err := c.Execute(plan); err != nil {
		return err
	}
	c.purgeCache("assign", path, 0)
	return nil
}

// SetPriority updates an object's priority in the table.
func (c *Controller) SetPriority(path string, priority int) error {
	if err := c.table.SetPriority(path, priority); err != nil {
		return err
	}
	c.logf("OK set priority %d on %s", priority, path)
	return nil
}

// Update replaces an object's content on every node holding it — the
// consistency operation for replicated mutable content: one controller-
// driven propagation updates all copies and invalidates their page caches.
// The URL-table size is refreshed afterwards.
func (c *Controller) Update(path string, data []byte) error {
	rec, err := c.table.Lookup(path)
	if err != nil {
		return err
	}
	for _, node := range rec.Locations {
		if _, err := c.Dispatch(node, OpReplaceFile.String(), Args{Path: path, Data: data}); err != nil {
			c.logf("FAILED update %s on %s: %v", path, node, err)
			return fmt.Errorf("updating %s on %s: %w", path, node, err)
		}
	}
	c.logf("OK update %s on %v (%d bytes)", path, rec.Locations, len(data))
	// purge only after every replica holds the new content: a fetch that
	// starts after this point reads post-mutation bytes from any node
	c.purgeCache("update", path, 0)
	return nil
}

// Verify audits an object's replica consistency: it collects the SHA-256
// of every copy through the checksum agent and reports whether all copies
// agree, returning the per-node checksums for diagnosis.
func (c *Controller) Verify(path string) (consistent bool, sums map[config.NodeID]string, err error) {
	rec, err := c.table.Lookup(path)
	if err != nil {
		return false, nil, err
	}
	sums = make(map[config.NodeID]string, len(rec.Locations))
	first := ""
	consistent = true
	for _, node := range rec.Locations {
		res, err := c.Dispatch(node, OpChecksum.String(), Args{Path: path})
		if err != nil {
			return false, sums, fmt.Errorf("verifying %s on %s: %w", path, node, err)
		}
		sums[node] = res.Message
		if first == "" {
			first = res.Message
		} else if res.Message != first {
			consistent = false
		}
	}
	c.logf("OK verify %s: consistent=%v over %d copies", path, consistent, len(sums))
	return consistent, sums, nil
}

// Pin fixes (or releases) an object's placement: pinned content is never
// touched by auto-replication, the §4 treatment for mutable documents
// whose consistency is managed centrally on a dedicated node.
func (c *Controller) Pin(path string, pinned bool) error {
	if err := c.table.SetPinned(path, pinned); err != nil {
		return err
	}
	verb := "pinned"
	if !pinned {
		verb = "unpinned"
	}
	c.logf("OK %s %s", verb, path)
	return nil
}

// View returns the single-system-image tree.
func (c *Controller) View() *doctree.Dir { return doctree.View(c.table) }

// Status probes node through the status agent.
func (c *Controller) Status(node config.NodeID) (monitor.NodeStatus, error) {
	result, err := c.Dispatch(node, OpStatus.String(), Args{})
	if err != nil {
		return monitor.NodeStatus{}, err
	}
	if result.Status == nil {
		return monitor.NodeStatus{}, fmt.Errorf("controller: node %s returned no status", node)
	}
	return *result.Status, nil
}

// Ping probes node's broker liveness.
func (c *Controller) Ping(node config.NodeID) error {
	_, err := c.Dispatch(node, OpPing.String(), Args{})
	return err
}

// ApplyActions executes the load balancer's placement actions (§3.3),
// returning how many succeeded. Individual failures are audited and
// skipped: a missed rebalance is recoverable next interval.
func (c *Controller) ApplyActions(actions []loadbal.Action) (int, error) {
	decs := make([]loadbal.Decision, len(actions))
	for i, a := range actions {
		decs[i] = loadbal.Decision{Action: a, Reason: "manual"}
	}
	return c.ApplyDecisions(decs, 0)
}

// ApplyDecisions executes the planner's decisions, journaling each one
// with the inputs that produced it (demand, load CV, branch reason,
// rejected alternatives) before applying it, all under trace so
// repairs planned during an incident stay linked to the fault that
// started it. Returns how many applied; individual failures are
// audited and skipped.
func (c *Controller) ApplyDecisions(decs []loadbal.Decision, trace uint64) (int, error) {
	j := c.journalView()
	applied := 0
	var errs []error
	for _, d := range decs {
		kind := journal.KindPlanReplicate
		if d.Kind == loadbal.ActionOffload {
			kind = journal.KindPlanOffload
		}
		detail := d.Reason
		if len(d.Rejected) > 0 {
			detail = d.Reason + " rejected=" + strings.Join(d.Rejected, ",")
		}
		node := string(d.Target)
		j.Record(journal.Event{
			Actor:  journal.ActorPlanner,
			Kind:   kind,
			Trace:  trace,
			Node:   node,
			Path:   d.Path,
			Detail: detail,
			A:      d.Hits,
			F:      d.LoadCV,
		})
		var err error
		switch d.Kind {
		case loadbal.ActionReplicate:
			err = c.replicate(d.Path, d.Source, d.Target, trace)
		case loadbal.ActionOffload:
			err = c.offload(d.Path, d.Target, trace)
		default:
			err = fmt.Errorf("controller: unknown action kind %v", d.Kind)
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", d.Action, err))
			continue
		}
		applied++
	}
	return applied, errors.Join(errs...)
}

// AutoBalancer periodically closes a load interval, plans placement
// changes and applies them — the §3.3 auto-replication facility. Construct
// with NewAutoBalancer; Start launches the loop; Close joins it.
type AutoBalancer struct {
	controller *Controller
	tracker    *loadbal.Tracker
	specs      []config.NodeSpec
	opts       loadbal.PlannerOptions
	interval   time.Duration

	mu      sync.Mutex
	rounds  int
	applied int
	onLoads func(map[config.NodeID]float64)

	closed   chan struct{}
	closeOne sync.Once
	wg       sync.WaitGroup
}

// NewAutoBalancer wires the balancing loop. interval defaults to 2s when
// non-positive.
func NewAutoBalancer(controller *Controller, tracker *loadbal.Tracker, specs []config.NodeSpec, opts loadbal.PlannerOptions, interval time.Duration) *AutoBalancer {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	return &AutoBalancer{
		controller: controller,
		tracker:    tracker,
		specs:      append([]config.NodeSpec(nil), specs...),
		opts:       opts,
		interval:   interval,
		closed:     make(chan struct{}),
	}
}

// SetOnLoads registers a callback receiving each interval's per-node
// loads (the distributor subscribes so its load-aware picker sees fresh
// L_j values). Call before Start.
func (ab *AutoBalancer) SetOnLoads(fn func(map[config.NodeID]float64)) {
	ab.mu.Lock()
	defer ab.mu.Unlock()
	ab.onLoads = fn
}

// Start launches the periodic loop.
func (ab *AutoBalancer) Start() {
	ab.wg.Add(1)
	go func() {
		defer ab.wg.Done()
		ticker := time.NewTicker(ab.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ab.closed:
				return
			case <-ticker.C:
				ab.RunOnce()
			}
		}
	}()
}

// RunOnce closes the current interval and applies the planned actions,
// returning them (tests and the console's balance-now command call this
// directly).
func (ab *AutoBalancer) RunOnce() []loadbal.Action {
	loads := ab.tracker.IntervalLoads(ab.specs)
	ab.mu.Lock()
	onLoads := ab.onLoads
	ab.mu.Unlock()
	if onLoads != nil {
		onLoads(loads)
	}
	decs := loadbal.PlanDecisions(loads, ab.controller.Table(), ab.opts)
	// Decisions made while a node incident is open are part of that
	// incident's causal story: journal them under its trace.
	trace := ab.controller.journalView().AnyIncident()
	applied, _ := ab.controller.ApplyDecisions(decs, trace)
	ab.controller.Table().ResetHits()
	actions := make([]loadbal.Action, len(decs))
	for i, d := range decs {
		actions[i] = d.Action
	}
	ab.mu.Lock()
	ab.rounds++
	ab.applied += applied
	ab.mu.Unlock()
	return actions
}

// Rounds reports completed balancing intervals and applied actions.
func (ab *AutoBalancer) Rounds() (rounds, applied int) {
	ab.mu.Lock()
	defer ab.mu.Unlock()
	return ab.rounds, ab.applied
}

// Close stops the loop and joins it.
func (ab *AutoBalancer) Close() {
	ab.closeOne.Do(func() { close(ab.closed) })
	ab.wg.Wait()
}
