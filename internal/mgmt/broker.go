package mgmt

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// Broker is the per-node management daemon (§3.1): it executes agents
// against the node's local environment. It starts with an empty agent
// registry — agents arrive from the controller on first use. Construct
// with NewBroker.
type Broker struct {
	env Env

	mu       sync.Mutex
	agents   map[string]Spec
	installs int64 // agent installations ("code downloads") served

	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   chan struct{}
	closeOne sync.Once
	wg       sync.WaitGroup
}

// NewBroker returns a broker for env.
func NewBroker(env Env) *Broker {
	return &Broker{
		env:    env,
		agents: make(map[string]Spec),
		conns:  make(map[net.Conn]struct{}),
		closed: make(chan struct{}),
	}
}

// Installs returns how many agent installations this broker performed —
// the visible trace of download-on-demand dispatch.
func (b *Broker) Installs() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.installs
}

// InstalledAgents returns the names of agents currently installed.
func (b *Broker) InstalledAgents() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.agents))
	for name := range b.agents {
		out = append(out, name)
	}
	return out
}

// Start listens on addr (":0" for ephemeral) and serves in the background,
// returning the bound address.
func (b *Broker) Start(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("broker %s: listen: %w", b.env.Node, err)
	}
	b.mu.Lock()
	b.listener = l
	b.mu.Unlock()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			b.mu.Lock()
			select {
			case <-b.closed:
				b.mu.Unlock()
				_ = conn.Close()
				return
			default:
			}
			b.conns[conn] = struct{}{}
			b.mu.Unlock()
			b.wg.Add(1)
			go func() {
				defer b.wg.Done()
				defer func() {
					_ = conn.Close()
					b.mu.Lock()
					delete(b.conns, conn)
					b.mu.Unlock()
				}()
				b.serveConn(conn)
			}()
		}
	}()
	return l.Addr().String(), nil
}

// serveConn handles one controller connection's request stream.
func (b *Broker) serveConn(conn net.Conn) {
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := b.handle(req)
		if err := encode(enc, resp); err != nil {
			return
		}
	}
}

// handle executes one request.
func (b *Broker) handle(req request) response {
	if req.Install != nil {
		b.mu.Lock()
		if _, exists := b.agents[req.Install.Name]; !exists {
			b.agents[req.Install.Name] = *req.Install
			b.installs++
		}
		b.mu.Unlock()
		return response{ID: req.ID, OK: true, Result: &Result{Message: "installed " + req.Install.Name}}
	}
	b.mu.Lock()
	spec, ok := b.agents[req.Agent]
	b.mu.Unlock()
	if !ok {
		return response{
			ID:       req.ID,
			OK:       false,
			Error:    fmt.Sprintf("agent %q not installed", req.Agent),
			NeedCode: true,
		}
	}
	var args Args
	if req.Args != nil {
		args = *req.Args
	}
	result, err := ExecuteOp(spec.Op, b.env, args)
	if err != nil {
		return response{ID: req.ID, OK: false, Error: err.Error()}
	}
	return response{ID: req.ID, OK: true, Result: &result}
}

// Close stops the broker and joins all goroutines.
func (b *Broker) Close() error {
	var err error
	b.closeOne.Do(func() {
		close(b.closed)
		b.mu.Lock()
		if b.listener != nil {
			err = b.listener.Close()
		}
		for conn := range b.conns {
			_ = conn.Close()
		}
		b.mu.Unlock()
	})
	b.wg.Wait()
	return err
}

// DefaultBrokerTimeout bounds one broker call (send + response) unless
// SetTimeout overrides it. A broker that stops answering — crashed node,
// black-holed network — fails the call instead of wedging the
// controller's management loop.
const DefaultBrokerTimeout = 10 * time.Second

// BrokerClient is the controller's connection to one broker. Construct
// with DialBroker. Calls are serialized per client.
type BrokerClient struct {
	mu      sync.Mutex
	conn    net.Conn
	enc     *json.Encoder
	dec     *json.Decoder
	nextID  int64
	timeout time.Duration
}

// DialBroker connects to a broker at addr.
func DialBroker(addr string) (*BrokerClient, error) {
	conn, err := net.DialTimeout("tcp", addr, DefaultBrokerTimeout)
	if err != nil {
		return nil, fmt.Errorf("mgmt: dialing broker %s: %w", addr, err)
	}
	return &BrokerClient{
		conn:    conn,
		enc:     json.NewEncoder(conn),
		dec:     json.NewDecoder(conn),
		timeout: DefaultBrokerTimeout,
	}, nil
}

// SetTimeout overrides the per-call deadline (0 disables).
func (c *BrokerClient) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// call performs one request/response exchange.
func (c *BrokerClient) call(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	req.ID = c.nextID
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return response{}, fmt.Errorf("mgmt: arming deadline: %w", err)
		}
		defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	}
	if err := encode(c.enc, req); err != nil {
		return response{}, err
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return response{}, fmt.Errorf("mgmt: reading broker response: %w", err)
	}
	if resp.ID != req.ID {
		return response{}, fmt.Errorf("mgmt: response id %d for request %d", resp.ID, req.ID)
	}
	return resp, nil
}

// Invoke runs agent with args on the broker. The needCode flag is
// reported so the caller (controller) can install and retry.
func (c *BrokerClient) Invoke(agent string, args Args) (Result, bool, error) {
	resp, err := c.call(request{Agent: agent, Args: &args})
	if err != nil {
		return Result{}, false, err
	}
	if !resp.OK {
		if resp.NeedCode {
			return Result{}, true, fmt.Errorf("mgmt: %s", resp.Error)
		}
		return Result{}, false, fmt.Errorf("mgmt: agent %s: %s", agent, resp.Error)
	}
	if resp.Result == nil {
		return Result{}, false, nil
	}
	return *resp.Result, false, nil
}

// Install ships an agent spec to the broker.
func (c *BrokerClient) Install(spec Spec) error {
	resp, err := c.call(request{Install: &spec})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("mgmt: installing %s: %s", spec.Name, resp.Error)
	}
	return nil
}

// Close closes the underlying connection.
func (c *BrokerClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
