package mgmt

import (
	"net"
	"testing"
	"time"
)

// TestConsoleDoTimesOutOnSilentServer: a console server that accepts the
// connection but never replies must fail the command within the
// configured deadline instead of wedging the administrative client.
func TestConsoleDoTimesOutOnSilentServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				<-done
				_ = conn.Close()
			}()
		}
	}()

	console, err := DialConsole(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = console.Close() }()
	console.SetTimeout(100 * time.Millisecond)

	start := time.Now()
	_, err = console.Do(ConsoleRequest{Op: "tree"})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Do against a silent console server succeeded")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Do took %v; deadline did not bound the exchange", elapsed)
	}
}
