// Package mgmt implements the content management system of §3: per-node
// broker daemons, the agent framework with download-on-demand dispatch,
// the controller that orchestrates management operations and auto-
// replication, and the remote-console client.
//
// In the paper, agents are Java classes that brokers download and execute
// ("downloaded executable content"). Go has no portable runtime class
// loading, so the reproduction models mobile code faithfully at the
// protocol level: brokers start with an empty agent registry and only the
// bootstrap install capability; when the controller dispatches an agent the
// broker does not know, the broker answers need-code, the controller ships
// the agent's spec, and the broker installs it before retrying. Management
// therefore exercises the same install-on-first-use flow the paper
// describes, and a broker accumulates exactly the agents its node needed.
package mgmt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"webcluster/internal/backend"
	"webcluster/internal/config"
	"webcluster/internal/journal"
	"webcluster/internal/monitor"
	"webcluster/internal/telemetry"
)

// Op is a built-in agent behaviour. Agent specs bind a name to an op; the
// spec is what travels from the controller's repository to a broker.
type Op int

// Ops.
const (
	// OpPing answers liveness probes.
	OpPing Op = iota + 1
	// OpStatus reports the node's monitor.NodeStatus.
	OpStatus
	// OpDeleteFile removes a file from the node's local store.
	OpDeleteFile
	// OpStoreFile places a file (bytes or synthetic size) on the node.
	OpStoreFile
	// OpFetchFile returns a file's bytes (the controller's copy source).
	OpFetchFile
	// OpListFiles returns all stored paths.
	OpListFiles
	// OpReplaceFile atomically replaces a file's contents (the update
	// path for mutable content: delete + store + cache invalidation).
	OpReplaceFile
	// OpChecksum returns the SHA-256 of a stored file, letting the
	// controller audit replica consistency without transferring bytes.
	OpChecksum
	// OpTelemetry returns the node's telemetry report (metrics snapshot
	// plus slowest recent spans) for the single-system-image stats plane.
	OpTelemetry
	// OpJournal returns the node's recent decision-journal events for
	// the controller's merged cluster journal.
	OpJournal
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpStatus:
		return "status"
	case OpDeleteFile:
		return "delete-file"
	case OpStoreFile:
		return "store-file"
	case OpFetchFile:
		return "fetch-file"
	case OpListFiles:
		return "list-files"
	case OpReplaceFile:
		return "replace-file"
	case OpChecksum:
		return "checksum"
	case OpTelemetry:
		return "telemetry"
	case OpJournal:
		return "journal"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Spec is the transferable description of an agent: the unit of "mobile
// code" the controller's repository holds and brokers install on demand.
type Spec struct {
	Name string `json:"name"`
	Op   Op     `json:"op"`
}

// BuiltinSpecs returns the standard agent repository contents: one agent
// per management function, named as the controller dispatches them.
func BuiltinSpecs() []Spec {
	ops := []Op{OpPing, OpStatus, OpDeleteFile, OpStoreFile, OpFetchFile, OpListFiles, OpReplaceFile, OpChecksum, OpTelemetry, OpJournal}
	specs := make([]Spec, len(ops))
	for i, op := range ops {
		specs[i] = Spec{Name: op.String(), Op: op}
	}
	return specs
}

// Args carries an agent invocation's parameters.
type Args struct {
	Path string `json:"path,omitempty"`
	// Data is the object payload for store-file (base64 on the wire).
	Data []byte `json:"data,omitempty"`
	// Size requests synthetic placement of Size bytes when Data is nil.
	Size int64 `json:"size,omitempty"`
}

// Result carries an agent's outcome.
type Result struct {
	Message   string              `json:"message,omitempty"`
	Data      []byte              `json:"data,omitempty"`
	Paths     []string            `json:"paths,omitempty"`
	Status    *monitor.NodeStatus `json:"status,omitempty"`
	Telemetry *telemetry.Report   `json:"telemetry,omitempty"`
	Journal   []journal.Event     `json:"journal,omitempty"`
}

// Env is the node-local environment an agent executes against.
type Env struct {
	Node  config.NodeID
	Store backend.Store
	// Server is the co-located web server, when one exists, for status
	// reporting; nil on a pure storage node.
	Server *backend.Server
	// Telemetry is the node's observability layer for OpTelemetry
	// scrapes. Defaults to Server's when nil.
	Telemetry *telemetry.Telemetry
	// Journal is the node's decision journal; mutating ops record into
	// it and OpJournal scrapes it. Nil disables both (journal methods
	// are nil-safe).
	Journal *journal.Journal
	Now     func() time.Time
}

// telemetryReportSpans caps how many spans one OpTelemetry scrape ships
// (the slowest ones; the console merges and re-caps across nodes).
const telemetryReportSpans = 32

// journalReportEvents caps how many events one OpJournal scrape ships
// (the newest ones; the controller merges across nodes).
const journalReportEvents = 256

// journalAgentOp records one successful mutating agent op into the
// node's journal (a no-op when the node has none).
func journalAgentOp(env Env, opName, path string) {
	node := string(env.Node)
	env.Journal.Record(journal.Event{
		Actor:  journal.ActorAgent,
		Kind:   journal.KindAgentOp,
		Node:   node,
		Path:   path,
		Detail: opName,
	})
}

// ExecuteOp runs one agent op in env.
func ExecuteOp(op Op, env Env, args Args) (Result, error) {
	now := env.Now
	if now == nil {
		now = time.Now
	}
	switch op {
	case OpPing:
		return Result{Message: "pong"}, nil

	case OpStatus:
		st := monitor.NodeStatus{
			Node:        string(env.Node),
			CollectedAt: now(),
		}
		if env.Store != nil {
			st.StoreObjects = len(env.Store.List())
			st.StoreBytes = env.Store.UsedBytes()
		}
		if env.Server != nil {
			st.ActiveRequests = env.Server.ActiveRequests()
			cs := env.Server.PageCacheStats()
			st.CacheHits = cs.Hits
			st.CacheMisses = cs.Misses
			st.CacheHitRate = cs.HitRate()
			var served int64
			var latency telemetry.HistSnapshot
			for _, class := range env.Server.Stats().Classes() {
				stats := env.Server.Stats().Class(class)
				served += stats.Requests.Value()
				latency.Merge(stats.Latency.Snapshot())
			}
			st.RequestsServed = served
			st.LatencyP50Ns = int64(latency.Quantile(0.5))
			st.LatencyP99Ns = int64(latency.Quantile(0.99))
		}
		return Result{Status: &st}, nil

	case OpDeleteFile:
		if env.Store == nil {
			return Result{}, fmt.Errorf("mgmt: node %s has no store", env.Node)
		}
		if err := env.Store.Delete(args.Path); err != nil {
			return Result{}, fmt.Errorf("mgmt: delete %q: %w", args.Path, err)
		}
		if env.Server != nil {
			env.Server.InvalidateCache(args.Path)
		}
		journalAgentOp(env, "delete-file", args.Path)
		return Result{Message: "deleted " + args.Path}, nil

	case OpStoreFile:
		if env.Store == nil {
			return Result{}, fmt.Errorf("mgmt: node %s has no store", env.Node)
		}
		if args.Data == nil && args.Size > 0 {
			if ss, ok := env.Store.(*backend.SyntheticStore); ok {
				if err := ss.PlaceSized(args.Path, args.Size); err != nil {
					return Result{}, fmt.Errorf("mgmt: place %q: %w", args.Path, err)
				}
				if env.Server != nil {
					env.Server.InvalidateCache(args.Path)
				}
				journalAgentOp(env, "store-file", args.Path)
				return Result{Message: "placed " + args.Path}, nil
			}
			// Materialize synthetic bytes for stores that keep data.
			args.Data = backend.SynthesizeBody(args.Path, args.Size)
		}
		if err := env.Store.Put(args.Path, args.Data); err != nil {
			return Result{}, fmt.Errorf("mgmt: store %q: %w", args.Path, err)
		}
		if env.Server != nil {
			env.Server.InvalidateCache(args.Path)
		}
		journalAgentOp(env, "store-file", args.Path)
		return Result{Message: "stored " + args.Path}, nil

	case OpFetchFile:
		if env.Store == nil {
			return Result{}, fmt.Errorf("mgmt: node %s has no store", env.Node)
		}
		data, err := env.Store.Fetch(args.Path)
		if err != nil {
			return Result{}, fmt.Errorf("mgmt: fetch %q: %w", args.Path, err)
		}
		return Result{Data: data}, nil

	case OpListFiles:
		if env.Store == nil {
			return Result{}, fmt.Errorf("mgmt: node %s has no store", env.Node)
		}
		return Result{Paths: env.Store.List()}, nil

	case OpReplaceFile:
		if env.Store == nil {
			return Result{}, fmt.Errorf("mgmt: node %s has no store", env.Node)
		}
		if !env.Store.Has(args.Path) {
			return Result{}, fmt.Errorf("mgmt: replace %q: %w", args.Path, backend.ErrNotStored)
		}
		if err := env.Store.Delete(args.Path); err != nil {
			return Result{}, fmt.Errorf("mgmt: replace %q: %w", args.Path, err)
		}
		data := args.Data
		if data == nil && args.Size > 0 {
			data = backend.SynthesizeBody(args.Path, args.Size)
		}
		if err := env.Store.Put(args.Path, data); err != nil {
			return Result{}, fmt.Errorf("mgmt: replace %q: %w", args.Path, err)
		}
		if env.Server != nil {
			env.Server.InvalidateCache(args.Path)
		}
		journalAgentOp(env, "replace-file", args.Path)
		return Result{Message: "replaced " + args.Path}, nil

	case OpChecksum:
		if env.Store == nil {
			return Result{}, fmt.Errorf("mgmt: node %s has no store", env.Node)
		}
		data, err := env.Store.Fetch(args.Path)
		if err != nil {
			return Result{}, fmt.Errorf("mgmt: checksum %q: %w", args.Path, err)
		}
		sum := sha256.Sum256(data)
		return Result{Message: hex.EncodeToString(sum[:])}, nil

	case OpTelemetry:
		tel := env.Telemetry
		if tel == nil && env.Server != nil {
			tel = env.Server.Telemetry()
		}
		if tel == nil {
			return Result{}, fmt.Errorf("mgmt: node %s has no telemetry", env.Node)
		}
		report := tel.Report(telemetryReportSpans)
		return Result{Telemetry: &report}, nil

	case OpJournal:
		if env.Journal == nil {
			return Result{}, fmt.Errorf("mgmt: node %s has no journal", env.Node)
		}
		return Result{Journal: env.Journal.Snapshot(journalReportEvents)}, nil

	default:
		return Result{}, fmt.Errorf("mgmt: unknown op %v", op)
	}
}

// Wire protocol: newline-delimited JSON over TCP.

// request is one broker-bound message: either an agent invocation or an
// agent installation.
type request struct {
	ID      int64  `json:"id"`
	Agent   string `json:"agent,omitempty"`
	Args    *Args  `json:"args,omitempty"`
	Install *Spec  `json:"install,omitempty"`
}

// response is the broker's reply.
type response struct {
	ID     int64   `json:"id"`
	OK     bool    `json:"ok"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
	// NeedCode signals the broker lacks the agent and wants its spec.
	NeedCode bool `json:"needCode,omitempty"`
}

// encode writes v as one JSON line.
func encode(enc *json.Encoder, v any) error {
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("mgmt: encoding message: %w", err)
	}
	return nil
}
