package mgmt

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/doctree"
	"webcluster/internal/journal"
	"webcluster/internal/monitor"
	"webcluster/internal/respcache"
	"webcluster/internal/telemetry"
)

// The remote console (§3.1/§3.2). The paper ships a Java-applet GUI; this
// reproduction exposes the same operations over a JSON line protocol so
// cmd/console (and tests) can drive the controller remotely, preserving
// the property that administration happens against a single system image
// from anywhere on the network.

// ConsoleRequest is one console command.
type ConsoleRequest struct {
	Op       string          `json:"op"`
	Path     string          `json:"path,omitempty"`
	NewPath  string          `json:"newPath,omitempty"`
	Size     int64           `json:"size,omitempty"`
	Priority int             `json:"priority,omitempty"`
	Node     config.NodeID   `json:"node,omitempty"`
	Source   config.NodeID   `json:"source,omitempty"`
	Target   config.NodeID   `json:"target,omitempty"`
	Nodes    []config.NodeID `json:"nodes,omitempty"`
	Data     []byte          `json:"data,omitempty"`
	// loadsite parameters.
	Objects  int    `json:"objects,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Workload string `json:"workload,omitempty"`
	Policy   string `json:"policy,omitempty"`
	// Limit caps list-shaped replies (traces); 0 means the default.
	Limit int `json:"limit,omitempty"`
}

// ConsoleResponse is the controller's reply.
type ConsoleResponse struct {
	OK      bool                `json:"ok"`
	Error   string              `json:"error,omitempty"`
	Tree    string              `json:"tree,omitempty"`
	Status  *monitor.NodeStatus `json:"status,omitempty"`
	Audit   []string            `json:"audit,omitempty"`
	Nodes   []config.NodeID     `json:"nodes,omitempty"`
	Actions []string            `json:"actions,omitempty"`
	Message string              `json:"message,omitempty"`
	// Cache carries the front-end response-cache counters (cache-stats).
	Cache *respcache.Stats `json:"cache,omitempty"`
	// Stats carries the merged cluster-wide telemetry view (stats).
	Stats *telemetry.ClusterStats `json:"stats,omitempty"`
	// Traces carries the slowest recent spans across all nodes (traces).
	Traces []telemetry.Span `json:"traces,omitempty"`
	// Journal carries merged decision-journal events (journal).
	Journal []journal.Event `json:"journal,omitempty"`
	// Explain carries the placement explanation for one path (explain).
	Explain *ExplainReport `json:"explain,omitempty"`
}

// SiteLoader services the console's loadsite command: generate a synthetic
// site and place it through the controller. Wired by the embedding
// deployment (core or cmd/distributor) because placement policies live
// above this package.
type SiteLoader func(req ConsoleRequest) (string, error)

// ConsoleServer exposes a controller to remote consoles. Construct with
// NewConsoleServer.
type ConsoleServer struct {
	controller *Controller
	// balancer, when set, backs the balance-now command.
	balancer *AutoBalancer
	// siteLoader, when set, backs the loadsite command.
	siteLoader SiteLoader

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   chan struct{}
	closeOne sync.Once
	wg       sync.WaitGroup
}

// NewConsoleServer returns a console endpoint for controller; balancer may
// be nil.
func NewConsoleServer(controller *Controller, balancer *AutoBalancer) *ConsoleServer {
	return &ConsoleServer{
		controller: controller,
		balancer:   balancer,
		conns:      make(map[net.Conn]struct{}),
		closed:     make(chan struct{}),
	}
}

// SetSiteLoader wires the loadsite command. Call before Start.
func (s *ConsoleServer) SetSiteLoader(fn SiteLoader) { s.siteLoader = fn }

// Start listens on addr (":0" for ephemeral), returning the bound address.
func (s *ConsoleServer) Start(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("console: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			select {
			case <-s.closed:
				s.mu.Unlock()
				_ = conn.Close()
				return
			default:
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer func() {
					_ = conn.Close()
					s.mu.Lock()
					delete(s.conns, conn)
					s.mu.Unlock()
				}()
				s.serveConn(conn)
			}()
		}
	}()
	return l.Addr().String(), nil
}

// serveConn handles one console session.
func (s *ConsoleServer) serveConn(conn net.Conn) {
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	for {
		var req ConsoleRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.handle(req)
		if err := encode(enc, resp); err != nil {
			return
		}
	}
}

// handle executes one console command.
func (s *ConsoleServer) handle(req ConsoleRequest) ConsoleResponse {
	fail := func(err error) ConsoleResponse {
		return ConsoleResponse{OK: false, Error: err.Error()}
	}
	switch req.Op {
	case "tree":
		return ConsoleResponse{OK: true, Tree: doctree.Render(s.controller.View())}
	case "nodes":
		return ConsoleResponse{OK: true, Nodes: s.controller.Nodes()}
	case "insert":
		obj := content.Object{
			Path:     req.Path,
			Size:     req.Size,
			Class:    content.Classify(req.Path),
			Priority: req.Priority,
		}
		if obj.Size == 0 && req.Data != nil {
			obj.Size = int64(len(req.Data))
		}
		if err := s.controller.Insert(obj, req.Data, req.Nodes...); err != nil {
			return fail(err)
		}
		return ConsoleResponse{OK: true, Message: "inserted " + req.Path}
	case "delete":
		if err := s.controller.Delete(req.Path); err != nil {
			return fail(err)
		}
		return ConsoleResponse{OK: true, Message: "deleted " + req.Path}
	case "rename":
		if err := s.controller.Rename(req.Path, req.NewPath); err != nil {
			return fail(err)
		}
		return ConsoleResponse{OK: true, Message: "renamed " + req.Path}
	case "replicate":
		if err := s.controller.Replicate(req.Path, req.Source, req.Target); err != nil {
			return fail(err)
		}
		return ConsoleResponse{OK: true, Message: "replicated " + req.Path}
	case "offload":
		if err := s.controller.Offload(req.Path, req.Node); err != nil {
			return fail(err)
		}
		return ConsoleResponse{OK: true, Message: "offloaded " + req.Path}
	case "assign":
		if err := s.controller.Assign(req.Path, req.Nodes...); err != nil {
			return fail(err)
		}
		return ConsoleResponse{OK: true, Message: "assigned " + req.Path}
	case "priority":
		if err := s.controller.SetPriority(req.Path, req.Priority); err != nil {
			return fail(err)
		}
		return ConsoleResponse{OK: true, Message: "priority set"}
	case "verify":
		consistent, sums, err := s.controller.Verify(req.Path)
		if err != nil {
			return fail(err)
		}
		lines := make([]string, 0, len(sums)+1)
		for node, sum := range sums {
			lines = append(lines, fmt.Sprintf("%s %s", node, sum))
		}
		sort.Strings(lines)
		msg := "CONSISTENT"
		if !consistent {
			msg = "INCONSISTENT"
		}
		return ConsoleResponse{OK: true, Message: msg, Actions: lines}
	case "update":
		if err := s.controller.Update(req.Path, req.Data); err != nil {
			return fail(err)
		}
		return ConsoleResponse{OK: true, Message: "updated " + req.Path}
	case "pin":
		if err := s.controller.Pin(req.Path, true); err != nil {
			return fail(err)
		}
		return ConsoleResponse{OK: true, Message: "pinned " + req.Path}
	case "unpin":
		if err := s.controller.Pin(req.Path, false); err != nil {
			return fail(err)
		}
		return ConsoleResponse{OK: true, Message: "unpinned " + req.Path}
	case "status":
		st, err := s.controller.Status(req.Node)
		if err != nil {
			return fail(err)
		}
		return ConsoleResponse{OK: true, Status: &st}
	case "purge":
		if req.Path == "" {
			return fail(fmt.Errorf("console: purge requires a path (or *)"))
		}
		n, err := s.controller.Purge(req.Path)
		if err != nil {
			return fail(err)
		}
		return ConsoleResponse{OK: true, Message: fmt.Sprintf("purged %s (%d entries)", req.Path, n)}
	case "cache-stats":
		stats, ok := s.controller.CacheStats()
		if !ok {
			return fail(fmt.Errorf("console: no response cache attached"))
		}
		return ConsoleResponse{OK: true, Cache: &stats}
	case "stats":
		stats, missing := s.controller.ClusterStats()
		resp := ConsoleResponse{OK: true, Stats: &stats}
		if len(missing) > 0 {
			resp.Message = fmt.Sprintf("unreachable: %v", missing)
		}
		return resp
	case "traces":
		spans, missing := s.controller.ClusterTraces(req.Limit)
		resp := ConsoleResponse{OK: true, Traces: spans}
		if len(missing) > 0 {
			resp.Message = fmt.Sprintf("unreachable: %v", missing)
		}
		return resp
	case "journal":
		var events []journal.Event
		var missing []config.NodeID
		if req.Node != "" {
			// Single-node scrape, bypassing the merge.
			res, err := s.controller.Dispatch(req.Node, OpJournal.String(), Args{})
			if err != nil {
				return fail(err)
			}
			events = res.Journal
			if req.Limit > 0 && len(events) > req.Limit {
				events = events[len(events)-req.Limit:]
			}
		} else {
			events, missing = s.controller.ClusterJournal(req.Limit)
		}
		resp := ConsoleResponse{OK: true, Journal: events}
		if len(missing) > 0 {
			resp.Message = fmt.Sprintf("unreachable: %v", missing)
		}
		return resp
	case "dump":
		reason := req.Path
		if reason == "" {
			reason = "console dump"
		}
		path, err := s.controller.DumpFlight(reason)
		if err != nil {
			return fail(err)
		}
		return ConsoleResponse{OK: true, Message: "dumped " + path}
	case "explain":
		if req.Path == "" {
			return fail(fmt.Errorf("console: explain requires a path"))
		}
		rep, missing, err := s.controller.Explain(req.Path, req.Limit)
		if err != nil {
			return fail(err)
		}
		resp := ConsoleResponse{OK: true, Explain: rep}
		if len(missing) > 0 {
			resp.Message = fmt.Sprintf("unreachable: %v", missing)
		}
		return resp
	case "audit":
		return ConsoleResponse{OK: true, Audit: s.controller.AuditLog()}
	case "loadsite":
		if s.siteLoader == nil {
			return fail(fmt.Errorf("console: no site loader configured"))
		}
		msg, err := s.siteLoader(req)
		if err != nil {
			return fail(err)
		}
		return ConsoleResponse{OK: true, Message: msg}
	case "balance":
		if s.balancer == nil {
			return fail(fmt.Errorf("console: no balancer configured"))
		}
		actions := s.balancer.RunOnce()
		out := make([]string, len(actions))
		for i, a := range actions {
			out[i] = a.String()
		}
		return ConsoleResponse{OK: true, Actions: out}
	default:
		return fail(fmt.Errorf("console: unknown op %q", req.Op))
	}
}

// Close stops the console server and joins its goroutines.
func (s *ConsoleServer) Close() error {
	var err error
	s.closeOne.Do(func() {
		close(s.closed)
		s.mu.Lock()
		if s.listener != nil {
			err = s.listener.Close()
		}
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return err
}

// DefaultConsoleTimeout bounds console dials and round trips until
// overridden with SetTimeout.
const DefaultConsoleTimeout = 5 * time.Second

// Console is the remote-console client. Construct with DialConsole.
type Console struct {
	mu      sync.Mutex
	conn    net.Conn
	enc     *json.Encoder
	dec     *json.Decoder
	timeout time.Duration
}

// DialConsole connects to a console server at addr.
func DialConsole(addr string) (*Console, error) {
	conn, err := net.DialTimeout("tcp", addr, DefaultConsoleTimeout)
	if err != nil {
		return nil, fmt.Errorf("console: dialing %s: %w", addr, err)
	}
	return &Console{
		conn:    conn,
		enc:     json.NewEncoder(conn),
		dec:     json.NewDecoder(conn),
		timeout: DefaultConsoleTimeout,
	}, nil
}

// SetTimeout changes the per-command deadline (ignored if d <= 0).
func (c *Console) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.timeout = d
	}
}

// Do performs one console command.
func (c *Console) Do(req ConsoleRequest) (ConsoleResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// A wedged or partitioned console server must surface as a timeout,
	// not a hung administrative client.
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return ConsoleResponse{}, fmt.Errorf("console: arming deadline: %w", err)
	}
	defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	if err := encode(c.enc, req); err != nil {
		return ConsoleResponse{}, err
	}
	var resp ConsoleResponse
	if err := c.dec.Decode(&resp); err != nil {
		return ConsoleResponse{}, fmt.Errorf("console: reading response: %w", err)
	}
	if !resp.OK {
		return resp, fmt.Errorf("console: %s", resp.Error)
	}
	return resp, nil
}

// Close closes the console connection.
func (c *Console) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
