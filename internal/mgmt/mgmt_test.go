package mgmt

import (
	"errors"
	"strings"
	"testing"

	"webcluster/internal/backend"
	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/doctree"
	"webcluster/internal/journal"
	"webcluster/internal/loadbal"
	"webcluster/internal/urltable"
)

func env(node string) Env {
	return Env{Node: config.NodeID(node), Store: &backend.MemStore{}}
}

func TestExecutePing(t *testing.T) {
	res, err := ExecuteOp(OpPing, env("n1"), Args{})
	if err != nil || res.Message != "pong" {
		t.Fatalf("ping = %+v, %v", res, err)
	}
}

func TestExecuteStoreFetchDeleteList(t *testing.T) {
	e := env("n1")
	if _, err := ExecuteOp(OpStoreFile, e, Args{Path: "/a", Data: []byte("xyz")}); err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteOp(OpFetchFile, e, Args{Path: "/a"})
	if err != nil || string(res.Data) != "xyz" {
		t.Fatalf("fetch = %+v, %v", res, err)
	}
	res, err = ExecuteOp(OpListFiles, e, Args{})
	if err != nil || len(res.Paths) != 1 || res.Paths[0] != "/a" {
		t.Fatalf("list = %+v, %v", res, err)
	}
	if _, err := ExecuteOp(OpDeleteFile, e, Args{Path: "/a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteOp(OpFetchFile, e, Args{Path: "/a"}); err == nil {
		t.Fatal("fetch after delete succeeded")
	}
}

func TestExecuteStoreSynthetic(t *testing.T) {
	e := Env{Node: "n1", Store: &backend.SyntheticStore{}}
	if _, err := ExecuteOp(OpStoreFile, e, Args{Path: "/big.mpg", Size: 4096}); err != nil {
		t.Fatal(err)
	}
	res, err := ExecuteOp(OpFetchFile, e, Args{Path: "/big.mpg"})
	if err != nil || len(res.Data) != 4096 {
		t.Fatalf("fetch synthetic = %d bytes, %v", len(res.Data), err)
	}
}

func TestExecuteStoreSyntheticSizeOnMemStore(t *testing.T) {
	// A size-only store against a data store materializes the bytes.
	e := env("n1")
	if _, err := ExecuteOp(OpStoreFile, e, Args{Path: "/f", Size: 100}); err != nil {
		t.Fatal(err)
	}
	data, err := e.Store.Fetch("/f")
	if err != nil || len(data) != 100 {
		t.Fatalf("materialized %d bytes, %v", len(data), err)
	}
}

func TestExecuteStatusWithoutServer(t *testing.T) {
	e := env("n1")
	_ = e.Store.Put("/a", []byte("abc"))
	res, err := ExecuteOp(OpStatus, e, Args{})
	if err != nil || res.Status == nil {
		t.Fatalf("status = %+v, %v", res, err)
	}
	if res.Status.Node != "n1" || res.Status.StoreObjects != 1 || res.Status.StoreBytes != 3 {
		t.Fatalf("status = %+v", res.Status)
	}
}

func TestExecuteNilStoreErrors(t *testing.T) {
	e := Env{Node: "n1"}
	for _, op := range []Op{OpDeleteFile, OpStoreFile, OpFetchFile, OpListFiles} {
		if _, err := ExecuteOp(op, e, Args{Path: "/x"}); err == nil {
			t.Errorf("%v with nil store succeeded", op)
		}
	}
}

func TestExecuteUnknownOp(t *testing.T) {
	if _, err := ExecuteOp(Op(99), env("n1"), Args{}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestBuiltinSpecsCoverOps(t *testing.T) {
	specs := BuiltinSpecs()
	if len(specs) != 10 {
		t.Fatalf("specs = %d", len(specs))
	}
	for _, s := range specs {
		if s.Name != s.Op.String() {
			t.Errorf("spec %q vs op %q", s.Name, s.Op)
		}
	}
}

func startBroker(t *testing.T, e Env) (*Broker, *BrokerClient) {
	t.Helper()
	b := NewBroker(e)
	addr, err := b.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := DialBroker(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = b.Close()
	})
	return b, client
}

func TestBrokerNeedCodeFlow(t *testing.T) {
	b, client := startBroker(t, env("n1"))
	// Fresh broker: no agents installed.
	if agents := b.InstalledAgents(); len(agents) != 0 {
		t.Fatalf("fresh broker has agents %v", agents)
	}
	_, needCode, err := client.Invoke("ping", Args{})
	if err == nil || !needCode {
		t.Fatalf("uninstalled invoke: needCode=%v err=%v", needCode, err)
	}
	if err := client.Install(Spec{Name: "ping", Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	res, needCode, err := client.Invoke("ping", Args{})
	if err != nil || needCode || res.Message != "pong" {
		t.Fatalf("after install: %+v %v %v", res, needCode, err)
	}
	if b.Installs() != 1 {
		t.Fatalf("installs = %d", b.Installs())
	}
	// Duplicate install is idempotent.
	if err := client.Install(Spec{Name: "ping", Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	if b.Installs() != 1 {
		t.Fatal("duplicate install counted")
	}
}

func TestBrokerAgentError(t *testing.T) {
	_, client := startBroker(t, env("n1"))
	_ = client.Install(Spec{Name: "delete-file", Op: OpDeleteFile})
	_, needCode, err := client.Invoke("delete-file", Args{Path: "/absent"})
	if err == nil || needCode {
		t.Fatalf("agent failure: needCode=%v err=%v", needCode, err)
	}
}

func newController(t *testing.T, nodes ...string) (*Controller, map[string]*Broker) {
	t.Helper()
	table := urltable.New(urltable.Options{})
	ctl := NewController(table)
	brokers := make(map[string]*Broker, len(nodes))
	for _, n := range nodes {
		b := NewBroker(env(n))
		addr, err := b.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := ctl.AddNode(config.NodeID(n), addr); err != nil {
			t.Fatal(err)
		}
		brokers[n] = b
		t.Cleanup(func() { _ = b.Close() })
	}
	return ctl, brokers
}

func TestControllerDispatchInstallsOnDemand(t *testing.T) {
	ctl, brokers := newController(t, "n1")
	res, err := ctl.Dispatch("n1", "ping", Args{})
	if err != nil || res.Message != "pong" {
		t.Fatalf("dispatch = %+v, %v", res, err)
	}
	if ctl.InstallsSent() != 1 || brokers["n1"].Installs() != 1 {
		t.Fatalf("installs: controller %d broker %d", ctl.InstallsSent(), brokers["n1"].Installs())
	}
	// Second dispatch uses the installed agent.
	if _, err := ctl.Dispatch("n1", "ping", Args{}); err != nil {
		t.Fatal(err)
	}
	if ctl.InstallsSent() != 1 {
		t.Fatal("re-installed an installed agent")
	}
}

func TestControllerDispatchUnknownNode(t *testing.T) {
	ctl, _ := newController(t, "n1")
	if _, err := ctl.Dispatch("ghost", "ping", Args{}); err == nil {
		t.Fatal("dispatch to unknown node succeeded")
	}
}

func TestControllerDispatchUnknownAgent(t *testing.T) {
	ctl, _ := newController(t, "n1")
	if _, err := ctl.Dispatch("n1", "format-disk", Args{}); err == nil {
		t.Fatal("unknown agent dispatched")
	}
}

func TestControllerInsertDeleteLifecycle(t *testing.T) {
	ctl, brokers := newController(t, "n1", "n2")
	obj := content.Object{Path: "/a.html", Size: 4, Class: content.ClassHTML}
	if err := ctl.Insert(obj, []byte("page"), "n1", "n2"); err != nil {
		t.Fatal(err)
	}
	// Files landed on both nodes.
	for n, b := range brokers {
		if !b.env.Store.Has("/a.html") {
			t.Fatalf("node %s missing file", n)
		}
	}
	rec, err := ctl.Table().Lookup("/a.html")
	if err != nil || len(rec.Locations) != 2 {
		t.Fatalf("table: %+v, %v", rec, err)
	}
	if err := ctl.Delete("/a.html"); err != nil {
		t.Fatal(err)
	}
	for n, b := range brokers {
		if b.env.Store.Has("/a.html") {
			t.Fatalf("node %s still has file", n)
		}
	}
	if _, err := ctl.Table().Lookup("/a.html"); err == nil {
		t.Fatal("table entry survived delete")
	}
}

func TestControllerReplicateCopiesData(t *testing.T) {
	ctl, brokers := newController(t, "src", "dst")
	obj := content.Object{Path: "/f.html", Size: 6, Class: content.ClassHTML}
	if err := ctl.Insert(obj, []byte("corpus"), "src"); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Replicate("/f.html", "", "dst"); err != nil {
		t.Fatal(err)
	}
	data, err := brokers["dst"].env.Store.Fetch("/f.html")
	if err != nil || string(data) != "corpus" {
		t.Fatalf("dst copy = %q, %v", data, err)
	}
	rec, _ := ctl.Table().Lookup("/f.html")
	if !rec.HasLocation("dst") {
		t.Fatal("table lacks new location")
	}
}

func TestControllerRename(t *testing.T) {
	ctl, brokers := newController(t, "n1")
	obj := content.Object{Path: "/old.html", Size: 1, Class: content.ClassHTML}
	if err := ctl.Insert(obj, []byte("x"), "n1"); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Rename("/old.html", "/new.html"); err != nil {
		t.Fatal(err)
	}
	st := brokers["n1"].env.Store
	if st.Has("/old.html") || !st.Has("/new.html") {
		t.Fatalf("store after rename: %v", st.List())
	}
}

func TestControllerFailedStepLeavesTableUnchanged(t *testing.T) {
	ctl, _ := newController(t, "n1")
	// A plan whose step targets an unmanaged node must fail before the
	// table is touched.
	plan, err := doctree.InsertPlan(
		content.Object{Path: "/x.html", Size: 1, Class: content.ClassHTML},
		[]byte("x"), "ghost")
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Execute(plan); err == nil {
		t.Fatal("plan against unknown node succeeded")
	}
	if _, err := ctl.Table().Lookup("/x.html"); err == nil {
		t.Fatal("table updated despite failed step")
	}
	found := false
	for _, line := range ctl.AuditLog() {
		if strings.HasPrefix(line, "FAILED") {
			found = true
		}
	}
	if !found {
		t.Fatal("failure not audited")
	}
}

func TestControllerOffload(t *testing.T) {
	ctl, brokers := newController(t, "n1", "n2")
	obj := content.Object{Path: "/f.html", Size: 1, Class: content.ClassHTML}
	_ = ctl.Insert(obj, []byte("x"), "n1", "n2")
	if err := ctl.Offload("/f.html", "n1"); err != nil {
		t.Fatal(err)
	}
	if brokers["n1"].env.Store.Has("/f.html") {
		t.Fatal("file survived offload")
	}
	rec, _ := ctl.Table().Lookup("/f.html")
	if rec.HasLocation("n1") {
		t.Fatal("location survived offload")
	}
}

func TestControllerAssign(t *testing.T) {
	ctl, brokers := newController(t, "n1", "n2", "n3")
	obj := content.Object{Path: "/f.html", Size: 1, Class: content.ClassHTML}
	_ = ctl.Insert(obj, []byte("x"), "n1")
	if err := ctl.Assign("/f.html", "n2", "n3"); err != nil {
		t.Fatal(err)
	}
	if brokers["n1"].env.Store.Has("/f.html") {
		t.Fatal("n1 still holds the file")
	}
	if !brokers["n2"].env.Store.Has("/f.html") || !brokers["n3"].env.Store.Has("/f.html") {
		t.Fatal("assignment targets missing the file")
	}
}

func TestControllerStatusAndPing(t *testing.T) {
	ctl, _ := newController(t, "n1")
	if err := ctl.Ping("n1"); err != nil {
		t.Fatal(err)
	}
	st, err := ctl.Status("n1")
	if err != nil || st.Node != "n1" {
		t.Fatalf("status = %+v, %v", st, err)
	}
}

func TestControllerApplyActions(t *testing.T) {
	ctl, _ := newController(t, "n1", "n2")
	obj := content.Object{Path: "/hot.html", Size: 1, Class: content.ClassHTML}
	_ = ctl.Insert(obj, []byte("x"), "n1")
	actions := []loadbal.Action{
		{Kind: loadbal.ActionReplicate, Path: "/hot.html", Source: "n1", Target: "n2"},
		{Kind: loadbal.ActionOffload, Path: "/hot.html", Target: "n1"},
	}
	applied, err := ctl.ApplyActions(actions)
	if err != nil || applied != 2 {
		t.Fatalf("applied = %d, %v", applied, err)
	}
	rec, _ := ctl.Table().Lookup("/hot.html")
	if rec.HasLocation("n1") || !rec.HasLocation("n2") {
		t.Fatalf("locations = %v", rec.Locations)
	}
}

func TestControllerApplyActionsPartialFailure(t *testing.T) {
	ctl, _ := newController(t, "n1", "n2")
	obj := content.Object{Path: "/a.html", Size: 1, Class: content.ClassHTML}
	_ = ctl.Insert(obj, []byte("x"), "n1")
	actions := []loadbal.Action{
		{Kind: loadbal.ActionOffload, Path: "/a.html", Target: "n1"}, // last copy → fails
		{Kind: loadbal.ActionReplicate, Path: "/a.html", Source: "n1", Target: "n2"},
	}
	applied, err := ctl.ApplyActions(actions)
	if err == nil {
		t.Fatal("expected partial failure error")
	}
	if applied != 1 {
		t.Fatalf("applied = %d, want 1", applied)
	}
}

func TestControllerRemoveNode(t *testing.T) {
	ctl, _ := newController(t, "n1")
	ctl.RemoveNode("n1")
	if _, err := ctl.Dispatch("n1", "ping", Args{}); err == nil {
		t.Fatal("dispatch after RemoveNode succeeded")
	}
	if len(ctl.Nodes()) != 0 {
		t.Fatalf("nodes = %v", ctl.Nodes())
	}
}

func TestAutoBalancerRunOnce(t *testing.T) {
	ctl, _ := newController(t, "busy", "idle")
	obj := content.Object{Path: "/hot.html", Size: 1, Class: content.ClassHTML}
	_ = ctl.Insert(obj, []byte("x"), "busy")
	// Drive hits so the planner sees popularity.
	for i := 0; i < 50; i++ {
		_, _ = ctl.Table().Route("/hot.html")
	}
	tracker := loadbal.NewTracker(loadbal.PaperWeights())
	specs := []config.NodeSpec{
		{ID: "busy", CPUMHz: 350, MemoryMB: 128},
		{ID: "idle", CPUMHz: 350, MemoryMB: 128},
	}
	for i := 0; i < 50; i++ {
		tracker.Record("busy", content.ClassHTML, 10e6) // 10ms
	}
	ab := NewAutoBalancer(ctl, tracker, specs, loadbal.DefaultPlannerOptions(), 0)
	actions := ab.RunOnce()
	if len(actions) == 0 {
		t.Fatal("no balancing actions for a hot spot")
	}
	rec, _ := ctl.Table().Lookup("/hot.html")
	if len(rec.Locations) < 2 {
		t.Fatalf("hot content not replicated: %v", rec.Locations)
	}
	// Hits reset after the interval.
	if rec.Hits != 0 {
		t.Fatalf("hits not reset: %d", rec.Hits)
	}
	rounds, applied := ab.Rounds()
	if rounds != 1 || applied == 0 {
		t.Fatalf("rounds = %d applied = %d", rounds, applied)
	}
}

func TestConsoleEndToEnd(t *testing.T) {
	ctl, _ := newController(t, "n1", "n2")
	srv := NewConsoleServer(ctl, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	console, err := DialConsole(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = console.Close() }()

	// insert → tree shows it.
	resp, err := console.Do(ConsoleRequest{
		Op: "insert", Path: "/docs/x.html", Size: 4,
		Data: []byte("page"), Nodes: []config.NodeID{"n1"},
	})
	if err != nil {
		t.Fatalf("insert: %v (%+v)", err, resp)
	}
	resp, err = console.Do(ConsoleRequest{Op: "tree"})
	if err != nil || !strings.Contains(resp.Tree, "x.html") {
		t.Fatalf("tree = %+v, %v", resp, err)
	}
	// replicate → both nodes.
	if _, err := console.Do(ConsoleRequest{Op: "replicate", Path: "/docs/x.html", Target: "n2"}); err != nil {
		t.Fatal(err)
	}
	// priority.
	if _, err := console.Do(ConsoleRequest{Op: "priority", Path: "/docs/x.html", Priority: 3}); err != nil {
		t.Fatal(err)
	}
	rec, _ := ctl.Table().Lookup("/docs/x.html")
	if rec.Priority != 3 || len(rec.Locations) != 2 {
		t.Fatalf("record = %+v", rec)
	}
	// status.
	resp, err = console.Do(ConsoleRequest{Op: "status", Node: "n1"})
	if err != nil || resp.Status == nil {
		t.Fatalf("status = %+v, %v", resp, err)
	}
	// nodes.
	resp, err = console.Do(ConsoleRequest{Op: "nodes"})
	if err != nil || len(resp.Nodes) != 2 {
		t.Fatalf("nodes = %+v, %v", resp, err)
	}
	// rename + delete.
	if _, err := console.Do(ConsoleRequest{Op: "rename", Path: "/docs/x.html", NewPath: "/docs/y.html"}); err != nil {
		t.Fatal(err)
	}
	if _, err := console.Do(ConsoleRequest{Op: "delete", Path: "/docs/y.html"}); err != nil {
		t.Fatal(err)
	}
	// audit trail accumulated.
	resp, err = console.Do(ConsoleRequest{Op: "audit"})
	if err != nil || len(resp.Audit) < 4 {
		t.Fatalf("audit = %+v, %v", resp, err)
	}
	// errors surface.
	if _, err := console.Do(ConsoleRequest{Op: "delete", Path: "/absent"}); err == nil {
		t.Fatal("console delete of absent path succeeded")
	}
	if _, err := console.Do(ConsoleRequest{Op: "definitely-not-an-op"}); err == nil {
		t.Fatal("unknown op accepted")
	}
	// balance without a balancer fails cleanly.
	if _, err := console.Do(ConsoleRequest{Op: "balance"}); err == nil {
		t.Fatal("balance without balancer succeeded")
	}
}

func TestConsoleSiteLoader(t *testing.T) {
	ctl, _ := newController(t, "n1")
	srv := NewConsoleServer(ctl, nil)
	srv.SetSiteLoader(func(req ConsoleRequest) (string, error) {
		if req.Objects != 42 {
			return "", errors.New("params not forwarded")
		}
		return "loaded", nil
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	console, err := DialConsole(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = console.Close() }()
	resp, err := console.Do(ConsoleRequest{Op: "loadsite", Objects: 42})
	if err != nil || resp.Message != "loaded" {
		t.Fatalf("loadsite = %+v, %v", resp, err)
	}
}

func TestOpStrings(t *testing.T) {
	for _, op := range []Op{OpPing, OpStatus, OpDeleteFile, OpStoreFile, OpFetchFile, OpListFiles} {
		if s := op.String(); strings.HasPrefix(s, "Op(") {
			t.Errorf("op %d unnamed", op)
		}
	}
}

func TestConsolePinUnpin(t *testing.T) {
	ctl, _ := newController(t, "n1")
	obj := content.Object{Path: "/mut.html", Size: 1, Class: content.ClassHTML}
	if err := ctl.Insert(obj, []byte("x"), "n1"); err != nil {
		t.Fatal(err)
	}
	srv := NewConsoleServer(ctl, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	console, err := DialConsole(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = console.Close() }()
	if _, err := console.Do(ConsoleRequest{Op: "pin", Path: "/mut.html"}); err != nil {
		t.Fatal(err)
	}
	rec, _ := ctl.Table().Lookup("/mut.html")
	if !rec.Pinned {
		t.Fatal("console pin did not stick")
	}
	// Pinned markers appear in the tree view.
	resp, err := console.Do(ConsoleRequest{Op: "tree"})
	if err != nil || !strings.Contains(resp.Tree, "pinned") {
		t.Fatalf("tree = %q, %v", resp.Tree, err)
	}
	if _, err := console.Do(ConsoleRequest{Op: "unpin", Path: "/mut.html"}); err != nil {
		t.Fatal(err)
	}
	rec, _ = ctl.Table().Lookup("/mut.html")
	if rec.Pinned {
		t.Fatal("console unpin did not stick")
	}
}

func TestExecuteReplaceFile(t *testing.T) {
	e := env("n1")
	_ = e.Store.Put("/a", []byte("v1"))
	if _, err := ExecuteOp(OpReplaceFile, e, Args{Path: "/a", Data: []byte("version-two")}); err != nil {
		t.Fatal(err)
	}
	data, err := e.Store.Fetch("/a")
	if err != nil || string(data) != "version-two" {
		t.Fatalf("fetch = %q, %v", data, err)
	}
	// Replacing a missing file fails (it is an update, not an insert).
	if _, err := ExecuteOp(OpReplaceFile, e, Args{Path: "/missing", Data: []byte("x")}); err == nil {
		t.Fatal("replace of absent file succeeded")
	}
}

func TestControllerUpdatePropagatesToAllReplicas(t *testing.T) {
	ctl, brokers := newController(t, "n1", "n2", "n3")
	obj := content.Object{Path: "/cat.html", Size: 2, Class: content.ClassHTML}
	if err := ctl.Insert(obj, []byte("v1"), "n1", "n2", "n3"); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Update("/cat.html", []byte("fresh catalogue")); err != nil {
		t.Fatal(err)
	}
	for n, b := range brokers {
		data, err := b.env.Store.Fetch("/cat.html")
		if err != nil || string(data) != "fresh catalogue" {
			t.Fatalf("node %s copy = %q, %v", n, data, err)
		}
	}
	if err := ctl.Update("/ghost.html", []byte("x")); err == nil {
		t.Fatal("update of unknown path succeeded")
	}
}

func TestControllerVerifyConsistency(t *testing.T) {
	ctl, brokers := newController(t, "n1", "n2")
	obj := content.Object{Path: "/v.html", Size: 3, Class: content.ClassHTML}
	if err := ctl.Insert(obj, []byte("abc"), "n1", "n2"); err != nil {
		t.Fatal(err)
	}
	consistent, sums, err := ctl.Verify("/v.html")
	if err != nil || !consistent {
		t.Fatalf("verify = %v, %v, %v", consistent, sums, err)
	}
	if len(sums) != 2 || sums["n1"] != sums["n2"] {
		t.Fatalf("sums = %v", sums)
	}
	// Corrupt one replica behind the controller's back.
	if err := brokers["n2"].env.Store.Delete("/v.html"); err != nil {
		t.Fatal(err)
	}
	if err := brokers["n2"].env.Store.Put("/v.html", []byte("XYZ")); err != nil {
		t.Fatal(err)
	}
	consistent, sums, err = ctl.Verify("/v.html")
	if err != nil || consistent {
		t.Fatalf("divergence not detected: %v, %v, %v", consistent, sums, err)
	}
	if sums["n1"] == sums["n2"] {
		t.Fatal("sums identical after corruption")
	}
}

func TestControllerSurvivesBrokerDeath(t *testing.T) {
	ctl, brokers := newController(t, "n1", "n2")
	obj := content.Object{Path: "/x.html", Size: 1, Class: content.ClassHTML}
	if err := ctl.Insert(obj, []byte("x"), "n1", "n2"); err != nil {
		t.Fatal(err)
	}
	// Kill n2's broker: operations touching it fail cleanly, the table
	// stays consistent, and other nodes keep working.
	_ = brokers["n2"].Close()
	err := ctl.Replicate("/x.html", "", "n2") // n2 already holds → plan error, fine
	if err == nil {
		t.Fatal("replicate onto existing holder accepted")
	}
	if err := ctl.Delete("/x.html"); err == nil {
		t.Fatal("delete through a dead broker succeeded")
	}
	// Failed plan: table still has the entry (steps aborted first).
	if _, err := ctl.Table().Lookup("/x.html"); err != nil {
		t.Fatal("table entry lost after failed delete")
	}
	// The healthy node still answers.
	if err := ctl.Ping("n1"); err != nil {
		t.Fatalf("healthy node unreachable: %v", err)
	}
	// Reconnecting the node restores operations.
	b := NewBroker(env("n2"))
	addr, err := b.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = b.Close() })
	// Plans have no rollback: the failed delete already removed n1's
	// copy before aborting at n2 (the audit records the failure and the
	// table is untouched). Re-seed both stores so the retried plan can
	// complete.
	_ = b.env.Store.Put("/x.html", []byte("x"))
	_ = brokers["n1"].env.Store.Put("/x.html", []byte("x"))
	if err := ctl.AddNode("n2", addr); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Delete("/x.html"); err != nil {
		t.Fatalf("delete after reconnect: %v", err)
	}
	if _, err := ctl.Table().Lookup("/x.html"); err == nil {
		t.Fatal("table entry survived successful delete")
	}
}

// journaledController mirrors the production wiring in cmd/distributor
// and cmd/backend: a front-end journal attached to the controller plus
// one journal per node, scraped over OpJournal.
func journaledController(t *testing.T, nodes ...string) (*Controller, *journal.Journal) {
	t.Helper()
	table := urltable.New(urltable.Options{})
	ctl := NewController(table)
	front := journal.New(journal.Options{Node: "front"})
	ctl.SetJournal(front)
	for _, n := range nodes {
		b := NewBroker(Env{
			Node:    config.NodeID(n),
			Store:   &backend.MemStore{},
			Journal: journal.New(journal.Options{Node: n}),
		})
		addr, err := b.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := ctl.AddNode(config.NodeID(n), addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = b.Close() })
	}
	return ctl, front
}

// TestExplainPlannerDecision is the acceptance check for the explain
// verb: after the §3.3 planner replicates a hot document, Explain must
// return the placing decision together with the inputs the planner saw
// (interval hits, load CV, branch, rejected alternatives).
func TestExplainPlannerDecision(t *testing.T) {
	ctl, _ := journaledController(t, "busy", "idle")
	obj := content.Object{Path: "/hot.html", Size: 1, Class: content.ClassHTML}
	if err := ctl.Insert(obj, []byte("x"), "busy"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		_, _ = ctl.Table().Route("/hot.html")
	}
	tracker := loadbal.NewTracker(loadbal.PaperWeights())
	specs := []config.NodeSpec{
		{ID: "busy", CPUMHz: 350, MemoryMB: 128},
		{ID: "idle", CPUMHz: 350, MemoryMB: 128},
	}
	for i := 0; i < 50; i++ {
		tracker.Record("busy", content.ClassHTML, 10e6)
	}
	ab := NewAutoBalancer(ctl, tracker, specs, loadbal.DefaultPlannerOptions(), 0)
	if actions := ab.RunOnce(); len(actions) == 0 {
		t.Fatal("planner produced no actions for a hot spot")
	}

	rep, missing, err := ctl.Explain("/hot.html", 0)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if len(missing) != 0 {
		t.Fatalf("unreachable nodes during explain: %v", missing)
	}
	if len(rep.Locations) < 2 {
		t.Fatalf("explain locations = %v, want the replica too", rep.Locations)
	}
	d := rep.Decision
	if d == nil {
		t.Fatal("explain returned no planner decision for a planner-replicated doc")
	}
	if d.Actor != journal.ActorPlanner || d.Kind != journal.KindPlanReplicate {
		t.Fatalf("decision = %s/%s, want planner/plan-replicate", d.Actor, d.Kind)
	}
	if d.Path != "/hot.html" || d.Node != "idle" {
		t.Fatalf("decision targeted %s on %s", d.Path, d.Node)
	}
	// The planner's inputs ride on the event: interval hits in A, the
	// interval load CV in F, the branch name in Detail.
	if d.A != 50 {
		t.Fatalf("decision hits = %d, want the 50 interval hits", d.A)
	}
	if d.F <= 0 {
		t.Fatalf("decision load CV = %v, want > 0 for an imbalanced interval", d.F)
	}
	if d.Detail == "" || !strings.Contains(d.Detail, "replicate-hot-to-cold") {
		t.Fatalf("decision detail = %q, want the planner branch name", d.Detail)
	}
	// History covers the document's whole journal trail, with the plan
	// event present and trimmed correctly by limit.
	found := false
	for _, ev := range rep.History {
		if ev.Path != "/hot.html" {
			t.Fatalf("history leaked another path's event: %+v", ev)
		}
		if ev.Kind == journal.KindPlanReplicate {
			found = true
		}
	}
	if !found {
		t.Fatal("history omits the plan event")
	}
	limited, _, err := ctl.Explain("/hot.html", 1)
	if err != nil || len(limited.History) != 1 {
		t.Fatalf("limited history = %d events, %v; want 1", len(limited.History), err)
	}
}

// TestConsoleJournalDumpExplain drives the three new console verbs end
// to end: the merged cluster journal (front + per-node scrapes), the
// manual flight dump trigger, and explain over the wire.
func TestConsoleJournalDumpExplain(t *testing.T) {
	ctl, front := journaledController(t, "n1", "n2")
	obj := content.Object{Path: "/doc.html", Size: 1, Class: content.ClassHTML}
	if err := ctl.Insert(obj, []byte("x"), "n1"); err != nil {
		t.Fatal(err)
	}
	front.Record(journal.Event{
		Actor: journal.ActorDistributor, Kind: journal.KindFailover,
		Node: "n1", Path: "/doc.html", Detail: "n2",
	})
	var dumpedReason string
	ctl.SetDumper(func(reason string) (string, error) {
		dumpedReason = reason
		return "/tmp/flight-test.json", nil
	})
	srv := NewConsoleServer(ctl, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	console, err := DialConsole(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = console.Close() }()

	// journal: merged stream carries the front event and both nodes'
	// agent-op events from the insert.
	resp, err := console.Do(ConsoleRequest{Op: "journal"})
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	if resp.Message != "" {
		t.Fatalf("journal reported unreachable nodes: %s", resp.Message)
	}
	srcs := map[string]bool{}
	sawFailover := false
	for _, ev := range resp.Journal {
		srcs[ev.Src] = true
		if ev.Kind == journal.KindFailover {
			sawFailover = true
		}
	}
	if !srcs["front"] || !srcs["n1"] || !sawFailover {
		t.Fatalf("merged journal sources = %v (failover=%v), want front+n1 with the failover", srcs, sawFailover)
	}
	// journal -node scopes to one node's scrape.
	resp, err = console.Do(ConsoleRequest{Op: "journal", Node: "n1", Limit: 1})
	if err != nil || len(resp.Journal) != 1 || resp.Journal[0].Src != "n1" {
		t.Fatalf("scoped journal = %+v, %v", resp.Journal, err)
	}

	// dump: routed to the attached recorder trigger.
	resp, err = console.Do(ConsoleRequest{Op: "dump", Path: "operator drill"})
	if err != nil || !strings.Contains(resp.Message, "flight-test.json") {
		t.Fatalf("dump = %+v, %v", resp, err)
	}
	if dumpedReason != "operator drill" {
		t.Fatalf("dump reason = %q", dumpedReason)
	}

	// explain over the wire.
	if _, err := console.Do(ConsoleRequest{Op: "replicate", Path: "/doc.html", Target: "n2"}); err != nil {
		t.Fatal(err)
	}
	resp, err = console.Do(ConsoleRequest{Op: "explain", Path: "/doc.html"})
	if err != nil || resp.Explain == nil {
		t.Fatalf("explain = %+v, %v", resp, err)
	}
	if len(resp.Explain.Locations) != 2 || len(resp.Explain.History) == 0 {
		t.Fatalf("explain report = %+v", resp.Explain)
	}
	// explain of an unknown path fails cleanly.
	if _, err := console.Do(ConsoleRequest{Op: "explain", Path: "/absent"}); err == nil {
		t.Fatal("explain of absent path succeeded")
	}
	if _, err := console.Do(ConsoleRequest{Op: "explain"}); err == nil {
		t.Fatal("explain without a path succeeded")
	}
}
