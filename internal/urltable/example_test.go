package urltable_test

import (
	"fmt"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/urltable"
)

// Example shows the distributor's routing data path: populate the
// multi-level hash table with placed content, then resolve request URLs
// to replica sets.
func Example() {
	table := urltable.New(urltable.Options{CacheEntries: 128})

	// The administrator partitions content across the cluster.
	pages := []struct {
		obj   content.Object
		nodes []string
	}{
		{content.Object{Path: "/docs/index.html", Size: 4096, Class: content.ClassHTML}, []string{"n1", "n2"}},
		{content.Object{Path: "/cgi-bin/search.cgi", Size: 2048, Class: content.ClassCGI, CPUCost: 2}, []string{"n6"}},
		{content.Object{Path: "/video/demo.mpg", Size: 8 << 20, Class: content.ClassVideo}, []string{"n9"}},
	}
	for _, p := range pages {
		ids := make([]config.NodeID, 0, len(p.nodes))
		for _, n := range p.nodes {
			ids = append(ids, config.NodeID(n))
		}
		if err := table.Insert(p.obj, ids...); err != nil {
			fmt.Println("insert:", err)
			return
		}
	}

	// Per incoming request, the distributor resolves the URL and counts
	// the hit for §3.3 load balancing.
	rec, err := table.Route("/cgi-bin/search.cgi")
	if err != nil {
		fmt.Println("route:", err)
		return
	}
	fmt.Printf("%s → %v (class %s)\n", rec.Path, rec.Locations, rec.Class)

	rec, _ = table.Lookup("/cgi-bin/search.cgi")
	fmt.Printf("hits after one route: %d\n", rec.Hits)

	// Output:
	// /cgi-bin/search.cgi → [n6] (class cgi)
	// hits after one route: 1
}
