package urltable

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"webcluster/internal/config"
	"webcluster/internal/content"
)

// Persistence: the URL table is the distributor's authoritative routing
// state. Alongside live replication to a backup (§2.3), the table can be
// checkpointed to disk so a restarted distributor resumes routing without
// replaying management history.

// persistRecord is the stable on-disk form of one entry.
type persistRecord struct {
	Path      string          `json:"path"`
	Size      int64           `json:"size"`
	Class     string          `json:"class"`
	Priority  int             `json:"priority,omitempty"`
	Pinned    bool            `json:"pinned,omitempty"`
	Hits      int64           `json:"hits,omitempty"`
	Locations []config.NodeID `json:"locations"`
}

// classFromName inverts content.Class.String().
func classFromName(name string) (content.Class, error) {
	for _, c := range content.Classes() {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("urltable: unknown content class %q", name)
}

// Save writes the table as a deterministic JSON document (entries sorted
// by path).
func (t *Table) Save(w io.Writer) error {
	var records []persistRecord
	t.Walk(func(r Record) {
		records = append(records, persistRecord{
			Path:      r.Path,
			Size:      r.Size,
			Class:     r.Class.String(),
			Priority:  r.Priority,
			Pinned:    r.Pinned,
			Hits:      r.Hits,
			Locations: r.Locations,
		})
	})
	sort.Slice(records, func(i, j int) bool { return records[i].Path < records[j].Path })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		return fmt.Errorf("urltable: encoding: %w", err)
	}
	return nil
}

// Load reads a table previously written by Save, restoring entries, pins
// and hit counters.
func Load(r io.Reader, opts Options) (*Table, error) {
	var records []persistRecord
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return nil, fmt.Errorf("urltable: decoding: %w", err)
	}
	t := New(opts)
	for _, pr := range records {
		class, err := classFromName(pr.Class)
		if err != nil {
			return nil, err
		}
		obj := content.Object{
			Path:     pr.Path,
			Size:     pr.Size,
			Class:    class,
			Priority: pr.Priority,
		}
		if err := t.Insert(obj, pr.Locations...); err != nil {
			return nil, fmt.Errorf("urltable: restoring %s: %w", pr.Path, err)
		}
		if pr.Pinned {
			if err := t.SetPinned(pr.Path, true); err != nil {
				return nil, err
			}
		}
		if pr.Hits > 0 {
			t.restoreHits(pr.Path, pr.Hits)
		}
	}
	return t, nil
}

// restoreHits sets a restored entry's hit counter. Counters are shared
// across entry copies, so storing through the current snapshot is enough.
func (t *Table) restoreHits(path string, hits int64) {
	segs, err := splitPath(path)
	if err != nil {
		return
	}
	if e := findSegs(t.root.Load(), segs); e != nil {
		e.hits.Store(hits)
	}
}

// SaveFile checkpoints the table to a file.
func (t *Table) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("urltable: creating %s: %w", path, err)
	}
	if err := t.Save(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("urltable: closing %s: %w", path, err)
	}
	return nil
}

// LoadFile restores a table from a file written by SaveFile.
func LoadFile(path string, opts Options) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("urltable: opening %s: %w", path, err)
	}
	defer func() { _ = f.Close() }()
	return Load(f, opts)
}
