package urltable

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"webcluster/internal/config"
	"webcluster/internal/content"
)

func newTable(t *testing.T) *Table {
	t.Helper()
	return New(Options{CacheEntries: 16})
}

func obj(path string, size int64) content.Object {
	return content.Object{Path: path, Size: size, Class: content.Classify(path)}
}

func TestInsertLookup(t *testing.T) {
	tbl := newTable(t)
	if err := tbl.Insert(obj("/docs/a.html", 100), "n1", "n2"); err != nil {
		t.Fatal(err)
	}
	rec, err := tbl.Lookup("/docs/a.html")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Size != 100 || rec.Class != content.ClassHTML {
		t.Fatalf("record = %+v", rec)
	}
	if len(rec.Locations) != 2 || !rec.HasLocation("n1") || !rec.HasLocation("n2") {
		t.Fatalf("locations = %v", rec.Locations)
	}
	if rec.HasLocation("n3") {
		t.Fatal("phantom location")
	}
}

func TestLookupMissing(t *testing.T) {
	tbl := newTable(t)
	_, err := tbl.Lookup("/absent")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestInsertDuplicate(t *testing.T) {
	tbl := newTable(t)
	if err := tbl.Insert(obj("/a/b", 1), "n1"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(obj("/a/b", 2), "n2"); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
}

func TestBadPaths(t *testing.T) {
	tbl := newTable(t)
	if err := tbl.Insert(obj("relative", 1), "n1"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("insert: %v", err)
	}
	if _, err := tbl.Lookup("no-slash"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("lookup: %v", err)
	}
	if _, err := tbl.Lookup("///"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("empty segments: %v", err)
	}
}

func TestDirAndLeafCoexist(t *testing.T) {
	tbl := newTable(t)
	if err := tbl.Insert(obj("/docs", 1), "n1"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(obj("/docs/a.html", 2), "n2"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Lookup("/docs"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Lookup("/docs/a.html"); err != nil {
		t.Fatal(err)
	}
}

func TestRouteCountsHits(t *testing.T) {
	tbl := newTable(t)
	if err := tbl.Insert(obj("/a", 1), "n1"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := tbl.Route("/a"); err != nil {
			t.Fatal(err)
		}
	}
	rec, _ := tbl.Lookup("/a")
	if rec.Hits != 3 {
		t.Fatalf("hits = %d, want 3", rec.Hits)
	}
	// Lookup must not count.
	rec, _ = tbl.Lookup("/a")
	if rec.Hits != 3 {
		t.Fatalf("Lookup changed hit count to %d", rec.Hits)
	}
}

func TestResetHits(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/a", 1), "n1")
	_, _ = tbl.Route("/a")
	tbl.ResetHits()
	rec, _ := tbl.Lookup("/a")
	if rec.Hits != 0 {
		t.Fatalf("hits after reset = %d", rec.Hits)
	}
}

func TestRemove(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/x/y/z.html", 1), "n1")
	if err := tbl.Remove("/x/y/z.html"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Lookup("/x/y/z.html"); !errors.Is(err, ErrNotFound) {
		t.Fatal("entry survived Remove")
	}
	if err := tbl.Remove("/x/y/z.html"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second remove: %v", err)
	}
	if tbl.Len() != 0 {
		t.Fatalf("len = %d", tbl.Len())
	}
}

func TestRemovePrunesMemory(t *testing.T) {
	tbl := newTable(t)
	base := tbl.MemoryBytes()
	_ = tbl.Insert(obj("/deep/a/b/c/d.html", 1), "n1")
	grown := tbl.MemoryBytes()
	if grown <= base {
		t.Fatal("memory accounting did not grow")
	}
	_ = tbl.Remove("/deep/a/b/c/d.html")
	if got := tbl.MemoryBytes(); got != base {
		t.Fatalf("memory after prune = %d, want %d", got, base)
	}
}

func TestRemoveKeepsSharedPrefix(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/shared/a.html", 1), "n1")
	_ = tbl.Insert(obj("/shared/b.html", 1), "n1")
	_ = tbl.Remove("/shared/a.html")
	if _, err := tbl.Lookup("/shared/b.html"); err != nil {
		t.Fatal("sibling lost after remove")
	}
}

func TestRename(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/old/name.html", 42), "n1", "n2")
	_, _ = tbl.Route("/old/name.html")
	if err := tbl.Rename("/old/name.html", "/new/name.html"); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Lookup("/old/name.html"); !errors.Is(err, ErrNotFound) {
		t.Fatal("old path survived rename")
	}
	rec, err := tbl.Lookup("/new/name.html")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Size != 42 || len(rec.Locations) != 2 || rec.Hits != 1 {
		t.Fatalf("rename lost state: %+v", rec)
	}
}

func TestRenameMissing(t *testing.T) {
	tbl := newTable(t)
	if err := tbl.Rename("/a", "/b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestRenameOntoExisting(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/a", 1), "n1")
	_ = tbl.Insert(obj("/b", 2), "n1")
	if err := tbl.Rename("/a", "/b"); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
	// Original must be intact after the failed rename.
	if _, err := tbl.Lookup("/a"); err != nil {
		t.Fatal("source lost after failed rename")
	}
}

func TestAddRemoveLocation(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/a", 1), "n1")
	if err := tbl.AddLocation("/a", "n2"); err != nil {
		t.Fatal(err)
	}
	// Duplicate add is a no-op.
	if err := tbl.AddLocation("/a", "n2"); err != nil {
		t.Fatal(err)
	}
	rec, _ := tbl.Lookup("/a")
	if len(rec.Locations) != 2 {
		t.Fatalf("locations = %v", rec.Locations)
	}
	if err := tbl.RemoveLocation("/a", "n1"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.RemoveLocation("/a", "n2"); !errors.Is(err, ErrNoLocation) {
		t.Fatalf("removing last copy: %v", err)
	}
	if err := tbl.RemoveLocation("/a", "n9"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("removing absent location: %v", err)
	}
}

func TestSetPriority(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/a", 1), "n1")
	if err := tbl.SetPriority("/a", 7); err != nil {
		t.Fatal(err)
	}
	rec, _ := tbl.Lookup("/a")
	if rec.Priority != 7 {
		t.Fatalf("priority = %d", rec.Priority)
	}
	if err := tbl.SetPriority("/absent", 1); !errors.Is(err, ErrNotFound) {
		t.Fatal("priority on absent path")
	}
}

func TestWalkVisitsAll(t *testing.T) {
	tbl := newTable(t)
	paths := []string{"/a", "/b/c", "/b/d/e.html"}
	for _, p := range paths {
		_ = tbl.Insert(obj(p, 1), "n1")
	}
	seen := map[string]bool{}
	tbl.Walk(func(r Record) { seen[r.Path] = true })
	for _, p := range paths {
		if !seen[p] {
			t.Fatalf("Walk missed %s", p)
		}
	}
	if len(seen) != len(paths) {
		t.Fatalf("Walk visited %d entries", len(seen))
	}
}

func TestEntriesAtSortedByHits(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/cold", 1), "n1")
	_ = tbl.Insert(obj("/hot", 1), "n1")
	_ = tbl.Insert(obj("/elsewhere", 1), "n2")
	for i := 0; i < 5; i++ {
		_, _ = tbl.Route("/hot")
	}
	_, _ = tbl.Route("/cold")
	recs := tbl.EntriesAt("n1")
	if len(recs) != 2 {
		t.Fatalf("entries at n1 = %d", len(recs))
	}
	if recs[0].Path != "/hot" || recs[1].Path != "/cold" {
		t.Fatalf("order = %v, %v", recs[0].Path, recs[1].Path)
	}
}

func TestEntryCacheHits(t *testing.T) {
	tbl := New(Options{CacheEntries: 8})
	_ = tbl.Insert(obj("/a", 1), "n1")
	for i := 0; i < 10; i++ {
		_, _ = tbl.Route("/a")
	}
	st := tbl.Stats()
	if st.Lookups != 10 {
		t.Fatalf("lookups = %d", st.Lookups)
	}
	if st.CacheHits < 8 {
		t.Fatalf("cache hits = %d, want ≥8", st.CacheHits)
	}
}

func TestNoCacheMode(t *testing.T) {
	tbl := New(Options{})
	_ = tbl.Insert(obj("/a", 1), "n1")
	for i := 0; i < 5; i++ {
		if _, err := tbl.Route("/a"); err != nil {
			t.Fatal(err)
		}
	}
	if st := tbl.Stats(); st.CacheHits != 0 {
		t.Fatalf("cache hits with cache disabled = %d", st.CacheHits)
	}
}

func TestCacheInvalidatedOnRemove(t *testing.T) {
	tbl := New(Options{CacheEntries: 8})
	_ = tbl.Insert(obj("/a", 1), "n1")
	_, _ = tbl.Route("/a") // populates cache
	_ = tbl.Remove("/a")
	if _, err := tbl.Route("/a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale cache served a removed entry: %v", err)
	}
}

func TestMemoryScalesWithObjects(t *testing.T) {
	tbl := newTable(t)
	gen := content.DefaultGenParams()
	gen.Objects = 8700
	site, err := content.GenerateSite(gen)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range site.Objects() {
		if err := tbl.Insert(o, "n1"); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Len() != 8700 {
		t.Fatalf("len = %d", tbl.Len())
	}
	mem := tbl.MemoryBytes()
	// The paper reports ~260 KB in C; the Go structure costs more per
	// object but must stay within the same order of magnitude.
	if mem < 260<<10 || mem > 8<<20 {
		t.Fatalf("memory = %d bytes, want between 260KB and 8MB", mem)
	}
}

func TestConcurrentRouteAndMutate(t *testing.T) {
	tbl := New(Options{CacheEntries: 64})
	for i := 0; i < 50; i++ {
		_ = tbl.Insert(obj(fmt.Sprintf("/p/%d.html", i), 1), "n1")
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_, _ = tbl.Route(fmt.Sprintf("/p/%d.html", i%50))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = tbl.AddLocation(fmt.Sprintf("/p/%d.html", i%50), config.NodeID(fmt.Sprintf("n%d", i%5+2)))
		}
	}()
	wg.Wait()
}

// TestPropertyInsertedAlwaysFound: any set of distinct valid paths can be
// inserted and every one of them resolves, while paths outside the set do
// not.
func TestPropertyInsertedAlwaysFound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := New(Options{CacheEntries: 4})
		n := rng.Intn(60) + 1
		paths := make(map[string]bool, n)
		for i := 0; i < n; i++ {
			depth := rng.Intn(4) + 1
			p := ""
			for d := 0; d < depth; d++ {
				p += fmt.Sprintf("/s%d", rng.Intn(8))
			}
			p += fmt.Sprintf("/f%d.html", i)
			paths[p] = true
			if err := tbl.Insert(obj(p, int64(i)), "n1"); err != nil {
				return false
			}
		}
		for p := range paths {
			if _, err := tbl.Lookup(p); err != nil {
				return false
			}
		}
		if _, err := tbl.Lookup("/definitely/not/there.html"); err == nil {
			return false
		}
		return tbl.Len() == len(paths)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyInsertRemoveRestoresMemory: inserting then removing any set
// of paths returns the memory estimate to its baseline (accounting never
// leaks).
func TestPropertyInsertRemoveRestoresMemory(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := New(Options{CacheEntries: 4})
		base := tbl.MemoryBytes()
		n := rng.Intn(40) + 1
		paths := make([]string, 0, n)
		for i := 0; i < n; i++ {
			p := fmt.Sprintf("/d%d/f%d.html", rng.Intn(5), i)
			paths = append(paths, p)
			nLocs := rng.Intn(3) + 1
			locs := make([]config.NodeID, nLocs)
			for j := range locs {
				locs[j] = config.NodeID(fmt.Sprintf("n%d", j))
			}
			if err := tbl.Insert(obj(p, 10), locs...); err != nil {
				return false
			}
		}
		rng.Shuffle(len(paths), func(i, j int) { paths[i], paths[j] = paths[j], paths[i] })
		for _, p := range paths {
			if err := tbl.Remove(p); err != nil {
				return false
			}
		}
		return tbl.MemoryBytes() == base && tbl.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSetPinned(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/m.html", 1), "n1")
	rec, _ := tbl.Lookup("/m.html")
	if rec.Pinned {
		t.Fatal("fresh entry pinned")
	}
	if err := tbl.SetPinned("/m.html", true); err != nil {
		t.Fatal(err)
	}
	rec, _ = tbl.Lookup("/m.html")
	if !rec.Pinned {
		t.Fatal("pin not recorded")
	}
	if err := tbl.SetPinned("/m.html", false); err != nil {
		t.Fatal(err)
	}
	rec, _ = tbl.Lookup("/m.html")
	if rec.Pinned {
		t.Fatal("unpin not recorded")
	}
	if err := tbl.SetPinned("/absent", true); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pin absent: %v", err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/docs/a.html", 100), "n1", "n2")
	_ = tbl.Insert(obj("/cgi-bin/x.cgi", 50), "n3")
	_ = tbl.Insert(obj("/video/v.mpg", 1<<20), "n4")
	_ = tbl.SetPriority("/docs/a.html", 2)
	_ = tbl.SetPinned("/cgi-bin/x.cgi", true)
	for i := 0; i < 7; i++ {
		_, _ = tbl.Route("/docs/a.html")
	}

	var buf bytes.Buffer
	if err := tbl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf, Options{CacheEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 3 {
		t.Fatalf("restored %d entries", restored.Len())
	}
	rec, err := restored.Lookup("/docs/a.html")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Priority != 2 || rec.Hits != 7 || len(rec.Locations) != 2 {
		t.Fatalf("record = %+v", rec)
	}
	rec, _ = restored.Lookup("/cgi-bin/x.cgi")
	if !rec.Pinned || rec.Class != content.ClassCGI {
		t.Fatalf("record = %+v", rec)
	}
	rec, _ = restored.Lookup("/video/v.mpg")
	if rec.Class != content.ClassVideo || rec.Size != 1<<20 {
		t.Fatalf("record = %+v", rec)
	}
}

func TestSaveDeterministic(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/b.html", 1), "n1")
	_ = tbl.Insert(obj("/a.html", 1), "n1")
	var buf1, buf2 bytes.Buffer
	_ = tbl.Save(&buf1)
	_ = tbl.Save(&buf2)
	if buf1.String() != buf2.String() {
		t.Fatal("save output not deterministic")
	}
}

func TestSaveLoadFile(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/a.html", 1), "n1")
	path := filepath.Join(t.TempDir(), "table.json")
	if err := tbl.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFile(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 1 {
		t.Fatalf("restored %d entries", restored.Len())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.json"), Options{}); err == nil {
		t.Fatal("loading absent file succeeded")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not json"), Options{}); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewBufferString(`[{"path":"/a","class":"nonsense","locations":["n1"]}]`), Options{}); err == nil {
		t.Fatal("unknown class accepted")
	}
}
