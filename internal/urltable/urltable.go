// Package urltable implements the distributor's URL table (§2.2): the data
// structure consulted on every incoming request to find which back-end
// node(s) hold the requested content, plus the content metadata (size,
// class, priority, hit counts) that routing and load-balancing decisions
// read.
//
// Per §5.2 the table is a multi-level hash: each level of the structure
// corresponds to one level of the content tree, so a lookup walks the URL's
// path segments through nested hash maps. A small LRU cache of recently
// resolved full paths fronts the walk, the "proven technique for
// demultiplexing speedup" the paper borrows from Mogul.
package urltable

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"webcluster/internal/cache"
	"webcluster/internal/config"
	"webcluster/internal/content"
)

// Errors returned by table operations.
var (
	// ErrNotFound reports a path with no table entry.
	ErrNotFound = errors.New("urltable: path not found")
	// ErrExists reports an insert of an already-present path.
	ErrExists = errors.New("urltable: path already present")
	// ErrNoLocation reports an entry with no remaining replica.
	ErrNoLocation = errors.New("urltable: entry has no locations")
	// ErrBadPath reports a path that is not absolute.
	ErrBadPath = errors.New("urltable: path must begin with '/'")
)

// Record is an immutable snapshot of one URL-table entry.
type Record struct {
	Path     string
	Size     int64
	Class    content.Class
	Priority int
	// Pinned marks content whose placement is administratively fixed
	// (§4: mutable documents dedicated to one node so consistency can
	// be managed centrally). The auto-replicator never moves pinned
	// content.
	Pinned    bool
	Hits      int64
	Locations []config.NodeID
}

// Dynamic reports whether the record's class requires execution.
func (r Record) Dynamic() bool { return r.Class.Dynamic() }

// HasLocation reports whether node holds a copy.
func (r Record) HasLocation(node config.NodeID) bool {
	for _, loc := range r.Locations {
		if loc == node {
			return true
		}
	}
	return false
}

// entry is the stored (mutable) form of a record. Mutations other than the
// hit counter happen under the table's write lock; the hit counter is
// atomic so that the hot read path never takes the write lock.
type entry struct {
	path      string
	size      int64
	class     content.Class
	priority  int
	pinned    bool
	hits      atomic.Int64
	locations []config.NodeID
}

// SizeBytes implements cache.Sizer; the entry cache is bounded by entry
// count, so every entry counts as 1.
func (e *entry) SizeBytes() int64 { return 1 }

var _ cache.Sizer = (*entry)(nil)

// snapshot copies the entry into a Record. Callers must hold at least the
// table's read lock.
func (e *entry) snapshot() Record {
	return Record{
		Path:      e.path,
		Size:      e.size,
		Class:     e.class,
		Priority:  e.priority,
		Pinned:    e.pinned,
		Hits:      e.hits.Load(),
		Locations: append([]config.NodeID(nil), e.locations...),
	}
}

// node is one level of the multi-level hash. A node may simultaneously be
// an interior directory and hold a leaf entry (e.g. /docs and /docs/a.html).
type node struct {
	children map[string]*node
	leaf     *entry
}

// Per-entry and per-node bookkeeping constants for the memory footprint
// estimate reported by the §5.2 experiment. The constants approximate Go
// runtime overheads: map header+bucket share, string headers, slice
// headers, and the entry struct itself.
const (
	entryOverheadBytes    = 96
	locationBytes         = 24
	interiorOverheadBytes = 64
)

// Table is the URL table. The zero value is not usable; construct with New.
type Table struct {
	mu   sync.RWMutex
	root *node
	size int

	memBytes int64

	// entryCache maps full path → *entry for recently routed URLs.
	entryCache *cache.LRU

	lookups    atomic.Int64
	cacheHits  atomic.Int64
	walkDepths atomic.Int64 // summed segment counts, for diagnostics
}

// Options configures table construction.
type Options struct {
	// CacheEntries bounds the recently-accessed-entry cache; 0 disables
	// caching (useful for the ablation benchmark).
	CacheEntries int
}

// New returns an empty table. cacheEntries ≤ 0 disables the entry cache.
func New(opts Options) *Table {
	t := &Table{root: &node{}}
	if opts.CacheEntries > 0 {
		t.entryCache = cache.NewLRU(int64(opts.CacheEntries))
	}
	return t
}

// splitPath slices an absolute URL path into segments, ignoring empty
// segments from duplicate slashes.
func splitPath(p string) ([]string, error) {
	if !strings.HasPrefix(p, "/") {
		return nil, fmt.Errorf("%w: %q", ErrBadPath, p)
	}
	raw := strings.Split(p[1:], "/")
	segs := raw[:0]
	for _, s := range raw {
		if s != "" {
			segs = append(segs, s)
		}
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("%w: %q has no segments", ErrBadPath, p)
	}
	return segs, nil
}

// Insert adds a new entry for obj placed at locations. The object's path
// must not already be present.
func (t *Table) Insert(obj content.Object, locations ...config.NodeID) error {
	segs, err := splitPath(obj.Path)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.root
	for _, seg := range segs {
		if cur.children == nil {
			cur.children = make(map[string]*node, 4)
		}
		next, ok := cur.children[seg]
		if !ok {
			next = &node{}
			cur.children[seg] = next
			t.memBytes += interiorOverheadBytes + int64(len(seg))
		}
		cur = next
	}
	if cur.leaf != nil {
		return fmt.Errorf("%w: %q", ErrExists, obj.Path)
	}
	e := &entry{
		path:      obj.Path,
		size:      obj.Size,
		class:     obj.Class,
		priority:  obj.Priority,
		locations: append([]config.NodeID(nil), locations...),
	}
	cur.leaf = e
	t.size++
	t.memBytes += entryOverheadBytes + int64(len(obj.Path)) +
		int64(len(locations))*locationBytes
	return nil
}

// findLocked walks the multi-level hash to the entry for path. Caller
// holds at least the read lock.
func (t *Table) findLocked(segs []string) *entry {
	cur := t.root
	for _, seg := range segs {
		next, ok := cur.children[seg]
		if !ok {
			return nil
		}
		cur = next
	}
	return cur.leaf
}

// lookupEntry resolves path to its stored entry via the cache, falling back
// to the hash walk and populating the cache on success.
func (t *Table) lookupEntry(path string) (*entry, error) {
	t.lookups.Add(1)
	if t.entryCache != nil {
		if v, ok := t.entryCache.Get(path); ok {
			t.cacheHits.Add(1)
			e, ok := v.(*entry)
			if !ok {
				return nil, fmt.Errorf("urltable: cache holds %T", v)
			}
			return e, nil
		}
	}
	segs, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	t.walkDepths.Add(int64(len(segs)))
	t.mu.RLock()
	e := t.findLocked(segs)
	t.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	if t.entryCache != nil {
		t.entryCache.Put(path, e)
	}
	return e, nil
}

// Lookup returns the record for path without counting a hit.
func (t *Table) Lookup(path string) (Record, error) {
	e, err := t.lookupEntry(path)
	if err != nil {
		return Record{}, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return e.snapshot(), nil
}

// Route resolves path for request routing: it increments the entry's hit
// counter (the access-frequency input to §3.3 load balancing) and returns
// the snapshot.
func (t *Table) Route(path string) (Record, error) {
	e, err := t.lookupEntry(path)
	if err != nil {
		return Record{}, err
	}
	e.hits.Add(1)
	t.mu.RLock()
	defer t.mu.RUnlock()
	return e.snapshot(), nil
}

// Remove deletes the entry at path, pruning now-empty interior nodes.
func (t *Table) Remove(path string) error {
	segs, err := splitPath(path)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	// Record the walk so we can prune bottom-up.
	walk := make([]*node, 0, len(segs)+1)
	cur := t.root
	walk = append(walk, cur)
	for _, seg := range segs {
		next, ok := cur.children[seg]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNotFound, path)
		}
		cur = next
		walk = append(walk, cur)
	}
	if cur.leaf == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	t.memBytes -= entryOverheadBytes + int64(len(cur.leaf.path)) +
		int64(len(cur.leaf.locations))*locationBytes
	cur.leaf = nil
	t.size--
	for i := len(segs) - 1; i >= 0; i-- {
		child := walk[i+1]
		if child.leaf != nil || len(child.children) > 0 {
			break
		}
		delete(walk[i].children, segs[i])
		t.memBytes -= interiorOverheadBytes + int64(len(segs[i]))
	}
	if t.entryCache != nil {
		t.entryCache.Remove(path)
	}
	return nil
}

// Rename moves the entry at oldPath to newPath, preserving metadata, hit
// count and locations.
func (t *Table) Rename(oldPath, newPath string) error {
	t.mu.Lock()
	oldSegs, err := splitPath(oldPath)
	if err != nil {
		t.mu.Unlock()
		return err
	}
	e := t.findLocked(oldSegs)
	t.mu.Unlock()
	if e == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, oldPath)
	}
	rec := func() Record {
		t.mu.RLock()
		defer t.mu.RUnlock()
		return e.snapshot()
	}()
	if err := t.Insert(content.Object{
		Path:     newPath,
		Size:     rec.Size,
		Class:    rec.Class,
		Priority: rec.Priority,
	}, rec.Locations...); err != nil {
		return fmt.Errorf("rename to %q: %w", newPath, err)
	}
	if err := t.Remove(oldPath); err != nil {
		// Roll back the insert to keep the table consistent.
		_ = t.Remove(newPath)
		return fmt.Errorf("rename from %q: %w", oldPath, err)
	}
	// Carry the hit count over to the new entry.
	newSegs, err := splitPath(newPath)
	if err != nil {
		return err
	}
	t.mu.RLock()
	ne := t.findLocked(newSegs)
	t.mu.RUnlock()
	if ne != nil {
		ne.hits.Store(rec.Hits)
	}
	return nil
}

// AddLocation registers node as an additional replica holder for path.
// Adding an existing location is a no-op.
func (t *Table) AddLocation(path string, node config.NodeID) error {
	segs, err := splitPath(path)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.findLocked(segs)
	if e == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	for _, loc := range e.locations {
		if loc == node {
			return nil
		}
	}
	e.locations = append(e.locations, node)
	t.memBytes += locationBytes
	return nil
}

// RemoveLocation drops node from path's replica set. Removing the last
// location fails with ErrNoLocation: content must live somewhere.
func (t *Table) RemoveLocation(path string, node config.NodeID) error {
	segs, err := splitPath(path)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.findLocked(segs)
	if e == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	idx := -1
	for i, loc := range e.locations {
		if loc == node {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: %q not at %s", ErrNotFound, path, node)
	}
	if len(e.locations) == 1 {
		return fmt.Errorf("%w: %q", ErrNoLocation, path)
	}
	e.locations = append(e.locations[:idx], e.locations[idx+1:]...)
	t.memBytes -= locationBytes
	return nil
}

// SetPriority updates the priority of path's entry.
func (t *Table) SetPriority(path string, priority int) error {
	segs, err := splitPath(path)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.findLocked(segs)
	if e == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	e.priority = priority
	return nil
}

// SetPinned marks or unmarks path's placement as administratively fixed.
func (t *Table) SetPinned(path string, pinned bool) error {
	segs, err := splitPath(path)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.findLocked(segs)
	if e == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	e.pinned = pinned
	return nil
}

// ResetHits zeroes every entry's hit counter, starting a new accounting
// interval for the load balancer.
func (t *Table) ResetHits() {
	t.mu.RLock()
	defer t.mu.RUnlock()
	walkNodes(t.root, func(e *entry) { e.hits.Store(0) })
}

// Walk invokes fn for a snapshot of every entry, in unspecified order.
func (t *Table) Walk(fn func(Record)) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	walkNodes(t.root, func(e *entry) { fn(e.snapshot()) })
}

// walkNodes visits every leaf entry below n.
func walkNodes(n *node, fn func(*entry)) {
	if n.leaf != nil {
		fn(n.leaf)
	}
	for _, child := range n.children {
		walkNodes(child, fn)
	}
}

// EntriesAt returns snapshots of all entries replicated on node, sorted by
// descending hits (hottest first), the order the offloader inspects them.
func (t *Table) EntriesAt(node config.NodeID) []Record {
	var out []Record
	t.Walk(func(r Record) {
		if r.HasLocation(node) {
			out = append(out, r)
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// Len returns the number of entries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// MemoryBytes returns the estimated resident size of the table, the
// quantity the §5.2 experiment reports (~260 KB for ~8700 objects in the
// paper's C implementation).
func (t *Table) MemoryBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.memBytes
}

// Stats reports lookup-path effectiveness.
type Stats struct {
	Lookups   int64
	CacheHits int64
	Entries   int
	MemBytes  int64
}

// Stats returns a snapshot of table counters.
func (t *Table) Stats() Stats {
	t.mu.RLock()
	size := t.size
	mem := t.memBytes
	t.mu.RUnlock()
	return Stats{
		Lookups:   t.lookups.Load(),
		CacheHits: t.cacheHits.Load(),
		Entries:   size,
		MemBytes:  mem,
	}
}
