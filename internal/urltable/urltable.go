// Package urltable implements the distributor's URL table (§2.2): the data
// structure consulted on every incoming request to find which back-end
// node(s) hold the requested content, plus the content metadata (size,
// class, priority, hit counts) that routing and load-balancing decisions
// read.
//
// Per §5.2 the table is a multi-level hash: each level of the structure
// corresponds to one level of the content tree, so a lookup walks the URL's
// path segments through nested hash maps. A small LRU cache of recently
// resolved full paths fronts the walk, the "proven technique for
// demultiplexing speedup" the paper borrows from Mogul.
//
// Reads are lock-free: the trie is copy-on-write behind an atomic root
// pointer. Management mutations (§3: insert/delete/rename/replicate) build
// a new root by path-copying the affected spine — everything off the spine
// is shared — and publish it with one atomic swap, serialized by a writer
// mutex. Route therefore takes no lock and scales with distributor cores.
// Published nodes, entries and their location slices are immutable; the
// only mutable cell an entry carries is its hit counter, an atomic shared
// across copies of the same logical entry. The entry cache stores (root,
// entry) pairs and treats a cached pair under a different root as a miss,
// so a root swap soft-invalidates the whole cache at zero cost. See
// DESIGN.md §2 ("fast path") for the invariants.
package urltable

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"webcluster/internal/config"
	"webcluster/internal/content"
)

// Errors returned by table operations.
var (
	// ErrNotFound reports a path with no table entry.
	ErrNotFound = errors.New("urltable: path not found")
	// ErrExists reports an insert of an already-present path.
	ErrExists = errors.New("urltable: path already present")
	// ErrNoLocation reports an entry with no remaining replica.
	ErrNoLocation = errors.New("urltable: entry has no locations")
	// ErrBadPath reports a path that is not absolute.
	ErrBadPath = errors.New("urltable: path must begin with '/'")
)

// Record is an immutable snapshot of one URL-table entry. Locations
// aliases the table's internal slice, which is never mutated after
// publication — callers must treat it as read-only.
type Record struct {
	Path     string
	Size     int64
	Class    content.Class
	Priority int
	// Pinned marks content whose placement is administratively fixed
	// (§4: mutable documents dedicated to one node so consistency can
	// be managed centrally). The auto-replicator never moves pinned
	// content.
	Pinned    bool
	Hits      int64
	Locations []config.NodeID
}

// Dynamic reports whether the record's class requires execution.
func (r Record) Dynamic() bool { return r.Class.Dynamic() }

// HasLocation reports whether node holds a copy.
func (r Record) HasLocation(node config.NodeID) bool {
	for _, loc := range r.Locations {
		if loc == node {
			return true
		}
	}
	return false
}

// entry is the stored form of a record. Published entries are immutable:
// mutations clone the entry (and the trie spine above it) and swap the
// root. The hit counter is a shared pointer so every copy of the same
// logical entry — including ones cached before a mutation — counts into
// the same accumulator.
type entry struct {
	path      string
	size      int64
	class     content.Class
	priority  int
	pinned    bool
	hits      *atomic.Int64
	locations []config.NodeID
}

// clone returns a copy sharing the hit counter and location slice; the
// caller replaces whichever field it is mutating.
func (e *entry) clone() *entry {
	return &entry{
		path:      e.path,
		size:      e.size,
		class:     e.class,
		priority:  e.priority,
		pinned:    e.pinned,
		hits:      e.hits,
		locations: e.locations,
	}
}

// record snapshots the entry. The location slice is aliased, not copied:
// published entries never mutate it (AddLocation/RemoveLocation build a
// fresh slice on a fresh entry).
func (e *entry) record() Record {
	return Record{
		Path:      e.path,
		Size:      e.size,
		Class:     e.class,
		Priority:  e.priority,
		Pinned:    e.pinned,
		Hits:      e.hits.Load(),
		Locations: e.locations,
	}
}

// node is one level of the multi-level hash. A node may simultaneously be
// an interior directory and hold a leaf entry (e.g. /docs and /docs/a.html).
// Published nodes are immutable; mutations clone the affected spine.
type node struct {
	children map[string]*node
	leaf     *entry
}

// cloneNode returns a shallow copy of n with its own children map, the
// path-copy step of every mutation.
func cloneNode(n *node) *node {
	nn := &node{leaf: n.leaf}
	if len(n.children) > 0 {
		nn.children = make(map[string]*node, len(n.children))
		for k, v := range n.children {
			nn.children[k] = v
		}
	}
	return nn
}

// cachedEntry pairs a resolved entry with the root it was resolved under.
// A cached pair whose root is no longer current is treated as a miss, so
// one atomic root comparison revalidates the cache after any mutation.
type cachedEntry struct {
	root *node
	path string
	e    *entry
}

// entryCache is a lock-free direct-mapped path → (root, entry) cache.
// Relay v3 note: the first generation of this cache was an LRU behind
// sharded mutexes, and BENCH_relay.json caught it red-handed — a cached
// lookup cost 473 ns and 1 alloc against 324 ns and 0 allocs for the
// uncached trie walk, because two mutex hops plus recency-list
// maintenance dwarf a walk over 2-3 trie levels. A direct-mapped table
// of atomic pointers has no lock, no recency bookkeeping and no
// per-hit allocation: a hit is one atomic load, one root-pointer
// compare and one path compare. Collisions simply evict (last write
// wins) — for a routing cache, rebuilding an evicted pair costs one
// trie walk, so approximate retention is the right trade.
type entryCache struct {
	slots []atomic.Pointer[cachedEntry]
	mask  uint32
}

// newEntryCache returns a cache sized for n hot entries. Slots are
// over-provisioned 4× (rounded up to a power of two): a slot is one
// 8-byte pointer, so the headroom costs 24n bytes and roughly halves
// direct-mapped collisions between popular paths under Zipf traffic.
func newEntryCache(n int) *entryCache {
	size := 1
	for size < 4*n {
		size <<= 1
	}
	return &entryCache{slots: make([]atomic.Pointer[cachedEntry], size), mask: uint32(size - 1)}
}

// get returns the cached pair for path (any root), or nil.
func (c *entryCache) get(path string, h uint32) *cachedEntry {
	ce := c.slots[h&c.mask].Load()
	if ce == nil || ce.path != path {
		return nil
	}
	return ce
}

// put publishes a freshly resolved pair, evicting whatever shared the
// slot. The one allocation per fill is the cachedEntry itself.
func (c *entryCache) put(path string, h uint32, root *node, e *entry) {
	c.slots[h&c.mask].Store(&cachedEntry{root: root, path: path, e: e})
}

// remove eagerly frees path's slot (the root swap that accompanies every
// mutation already soft-invalidates it).
func (c *entryCache) remove(path string, h uint32) {
	i := h & c.mask
	if ce := c.slots[i].Load(); ce != nil && ce.path == path {
		c.slots[i].CompareAndSwap(ce, nil)
	}
}

// Per-entry and per-node bookkeeping constants for the memory footprint
// estimate reported by the §5.2 experiment. The constants approximate Go
// runtime overheads: map header+bucket share, string headers, slice
// headers, and the entry struct itself.
const (
	entryOverheadBytes    = 96
	locationBytes         = 24
	interiorOverheadBytes = 64
)

// counterStripes is the number of cache-line-padded stripes in the hot
// counters; must be a power of two.
const counterStripes = 16

// stripedCounter spreads increments across padded stripes indexed by the
// request's path hash, so the counters the read path bumps on every route
// don't put every core on one contended cache line. load sums the stripes
// and is exact once concurrent writers quiesce.
type stripedCounter struct {
	stripes [counterStripes]struct {
		v atomic.Int64
		_ [56]byte // pad to a cache line so stripes don't false-share
	}
}

func (c *stripedCounter) add(h uint32, d int64) {
	c.stripes[h&(counterStripes-1)].v.Add(d)
}

func (c *stripedCounter) load() int64 {
	var total int64
	for i := range c.stripes {
		total += c.stripes[i].v.Load()
	}
	return total
}

// fnv32 is FNV-1a over the path bytes, shared by the counter stripes.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Table is the URL table. The zero value is not usable; construct with New.
type Table struct {
	// root is the current published trie; readers Load it once and walk
	// an immutable snapshot.
	root atomic.Pointer[node]
	// writeMu serializes mutators (management operations are rare; reads
	// never take it).
	writeMu sync.Mutex

	size     atomic.Int64
	memBytes atomic.Int64

	// entryCache maps full path → (root, entry) for recently routed URLs.
	entryCache *entryCache

	lookups    stripedCounter
	cacheHits  stripedCounter
	walkDepths stripedCounter // summed segment counts, for diagnostics
}

// Options configures table construction.
type Options struct {
	// CacheEntries bounds the recently-accessed-entry cache; 0 disables
	// caching (useful for the ablation benchmark).
	CacheEntries int
}

// New returns an empty table. cacheEntries ≤ 0 disables the entry cache.
func New(opts Options) *Table {
	t := &Table{}
	t.root.Store(&node{})
	if opts.CacheEntries > 0 {
		t.entryCache = newEntryCache(opts.CacheEntries)
	}
	return t
}

// splitPath slices an absolute URL path into segments, ignoring empty
// segments from duplicate slashes. Mutators use it; the read path walks
// the string in place (findPath) to avoid the allocation.
func splitPath(p string) ([]string, error) {
	if !strings.HasPrefix(p, "/") {
		return nil, fmt.Errorf("%w: %q", ErrBadPath, p)
	}
	raw := strings.Split(p[1:], "/")
	segs := raw[:0]
	for _, s := range raw {
		if s != "" {
			segs = append(segs, s)
		}
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("%w: %q has no segments", ErrBadPath, p)
	}
	return segs, nil
}

// findPath walks root to the entry for path without allocating, segmenting
// the string in place. It returns the entry (nil when absent), the number
// of segments walked, and ErrBadPath for non-absolute or empty paths.
func findPath(root *node, path string) (*entry, int, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, 0, fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	cur := root
	depth := 0
	for start := 1; start <= len(path); {
		var seg string
		if end := strings.IndexByte(path[start:], '/'); end < 0 {
			seg = path[start:]
			start = len(path) + 1
		} else {
			seg = path[start : start+end]
			start += end + 1
		}
		if seg == "" {
			continue
		}
		depth++
		if cur != nil {
			cur = cur.children[seg]
		}
	}
	if depth == 0 {
		return nil, 0, fmt.Errorf("%w: %q has no segments", ErrBadPath, path)
	}
	if cur == nil {
		return nil, depth, nil
	}
	return cur.leaf, depth, nil
}

// findSegs walks root by pre-split segments (the mutator path).
func findSegs(root *node, segs []string) *entry {
	cur := root
	for _, seg := range segs {
		next, ok := cur.children[seg]
		if !ok {
			return nil
		}
		cur = next
	}
	return cur.leaf
}

// insertAt returns a new root with e stored at segs, sharing every node
// off the walked spine with the old root. memDelta counts interior nodes
// created. ok is false when a leaf already exists at segs.
func insertAt(root *node, segs []string, e *entry) (newRoot *node, memDelta int64, ok bool) {
	newRoot = cloneNode(root)
	cur := newRoot
	for _, seg := range segs {
		var next *node
		if child, exists := cur.children[seg]; exists {
			next = cloneNode(child)
		} else {
			next = &node{}
			memDelta += interiorOverheadBytes + int64(len(seg))
		}
		if cur.children == nil {
			cur.children = make(map[string]*node, 4)
		}
		cur.children[seg] = next
		cur = next
	}
	if cur.leaf != nil {
		return nil, 0, false
	}
	cur.leaf = e
	return newRoot, memDelta, true
}

// removeAt returns a new root with the leaf at segs removed and now-empty
// interior nodes pruned. memDelta is the (negative) footprint change. ok
// is false when no leaf exists at segs.
func removeAt(root *node, segs []string) (newRoot *node, removed *entry, memDelta int64, ok bool) {
	newRoot = cloneNode(root)
	spine := make([]*node, 0, len(segs)+1)
	spine = append(spine, newRoot)
	cur := newRoot
	for _, seg := range segs {
		child, exists := cur.children[seg]
		if !exists {
			return nil, nil, 0, false
		}
		next := cloneNode(child)
		cur.children[seg] = next
		cur = next
		spine = append(spine, next)
	}
	if cur.leaf == nil {
		return nil, nil, 0, false
	}
	removed = cur.leaf
	memDelta -= entryOverheadBytes + int64(len(removed.path)) +
		int64(len(removed.locations))*locationBytes
	cur.leaf = nil
	for i := len(segs) - 1; i >= 0; i-- {
		child := spine[i+1]
		if child.leaf != nil || len(child.children) > 0 {
			break
		}
		delete(spine[i].children, segs[i])
		memDelta -= interiorOverheadBytes + int64(len(segs[i]))
	}
	return newRoot, removed, memDelta, true
}

// replaceAt returns a new root with e substituted for the existing leaf at
// segs. The caller must have verified the leaf exists under this root.
func replaceAt(root *node, segs []string, e *entry) *node {
	newRoot := cloneNode(root)
	cur := newRoot
	for _, seg := range segs {
		next := cloneNode(cur.children[seg])
		cur.children[seg] = next
		cur = next
	}
	cur.leaf = e
	return newRoot
}

// Insert adds a new entry for obj placed at locations. The object's path
// must not already be present.
func (t *Table) Insert(obj content.Object, locations ...config.NodeID) error {
	segs, err := splitPath(obj.Path)
	if err != nil {
		return err
	}
	e := &entry{
		path:      obj.Path,
		size:      obj.Size,
		class:     obj.Class,
		priority:  obj.Priority,
		hits:      new(atomic.Int64),
		locations: append([]config.NodeID(nil), locations...),
	}
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	newRoot, memDelta, ok := insertAt(t.root.Load(), segs, e)
	if !ok {
		return fmt.Errorf("%w: %q", ErrExists, obj.Path)
	}
	memDelta += entryOverheadBytes + int64(len(obj.Path)) +
		int64(len(locations))*locationBytes
	t.root.Store(newRoot)
	t.size.Add(1)
	t.memBytes.Add(memDelta)
	return nil
}

// lookupEntry resolves path to its stored entry via the cache, falling back
// to the lock-free trie walk and populating the cache on success. The root
// is loaded once; the cache only serves entries resolved under that same
// root, so a concurrent mutation can never surface a stale entry.
func (t *Table) lookupEntry(path string) (*entry, error) {
	e, _, err := t.lookupEntryRoot(path)
	return e, err
}

// lookupEntryRoot is lookupEntry, additionally returning the root the
// entry was resolved under (the validity token for hint revalidation).
func (t *Table) lookupEntryRoot(path string) (*entry, *node, error) {
	h := fnv32(path)
	t.lookups.add(h, 1)
	root := t.root.Load()
	if t.entryCache != nil {
		if ce := t.entryCache.get(path, h); ce != nil && ce.root == root {
			t.cacheHits.add(h, 1)
			return ce.e, root, nil
		}
	}
	e, depth, err := findPath(root, path)
	if err != nil {
		return nil, nil, err
	}
	t.walkDepths.add(h, int64(depth))
	if e == nil {
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	if t.entryCache != nil {
		t.entryCache.put(path, h, root, e)
	}
	return e, root, nil
}

// Hint is a per-caller route memo: the last resolved (path, entry) pair
// and the root it was resolved under. A keep-alive or pipelined client
// hammering one URL revalidates with a single pointer compare instead of
// re-entering the shared cache. The zero value is an empty hint; a Hint
// must not be shared between goroutines.
type Hint struct {
	root *node
	path string
	e    *entry
}

// RouteHinted is Route with a caller-held hint. The hint is consulted
// before the shared entry cache and refreshed on every successful
// resolution; it only serves an entry resolved under the current root, so
// it can never return state from before a table mutation.
func (t *Table) RouteHinted(path string, hint *Hint) (Record, error) {
	if hint != nil && hint.e != nil && hint.path == path && hint.root == t.root.Load() {
		h := fnv32(path)
		t.lookups.add(h, 1)
		t.cacheHits.add(h, 1)
		hint.e.hits.Add(1)
		return hint.e.record(), nil
	}
	e, root, err := t.lookupEntryRoot(path)
	if err != nil {
		return Record{}, err
	}
	if hint != nil {
		hint.root, hint.path, hint.e = root, path, e
	}
	e.hits.Add(1)
	return e.record(), nil
}

// Lookup returns the record for path without counting a hit.
func (t *Table) Lookup(path string) (Record, error) {
	e, err := t.lookupEntry(path)
	if err != nil {
		return Record{}, err
	}
	return e.record(), nil
}

// Route resolves path for request routing: it increments the entry's hit
// counter (the access-frequency input to §3.3 load balancing) and returns
// the snapshot. Route takes no lock.
func (t *Table) Route(path string) (Record, error) {
	e, err := t.lookupEntry(path)
	if err != nil {
		return Record{}, err
	}
	e.hits.Add(1)
	return e.record(), nil
}

// Remove deletes the entry at path, pruning now-empty interior nodes.
func (t *Table) Remove(path string) error {
	segs, err := splitPath(path)
	if err != nil {
		return err
	}
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	newRoot, _, memDelta, ok := removeAt(t.root.Load(), segs)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	t.root.Store(newRoot)
	t.size.Add(-1)
	t.memBytes.Add(memDelta)
	if t.entryCache != nil {
		// The root swap already invalidates the cached pair; dropping it
		// eagerly just frees the slot.
		t.entryCache.remove(path, fnv32(path))
	}
	return nil
}

// Rename moves the entry at oldPath to newPath, preserving metadata, hit
// count and locations. Both the insert and the delete land in one atomic
// root swap: no reader ever observes the table without exactly one of the
// two paths.
func (t *Table) Rename(oldPath, newPath string) error {
	oldSegs, err := splitPath(oldPath)
	if err != nil {
		return err
	}
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	root := t.root.Load()
	e := findSegs(root, oldSegs)
	if e == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, oldPath)
	}
	newSegs, err := splitPath(newPath)
	if err != nil {
		return fmt.Errorf("rename to %q: %w", newPath, err)
	}
	ne := e.clone()
	ne.path = newPath
	r1, insDelta, ok := insertAt(root, newSegs, ne)
	if !ok {
		return fmt.Errorf("rename to %q: %w: %q", newPath, ErrExists, newPath)
	}
	r2, _, remDelta, ok := removeAt(r1, oldSegs)
	if !ok {
		return fmt.Errorf("rename from %q: %w", oldPath, ErrNotFound)
	}
	insDelta += entryOverheadBytes + int64(len(newPath)) +
		int64(len(ne.locations))*locationBytes
	t.root.Store(r2)
	t.memBytes.Add(insDelta + remDelta)
	if t.entryCache != nil {
		t.entryCache.remove(oldPath, fnv32(oldPath))
	}
	return nil
}

// mutateEntry applies fn to a clone of path's entry and publishes the
// result, the shared shape of every entry-level mutation.
func (t *Table) mutateEntry(path string, fn func(*entry) error) error {
	segs, err := splitPath(path)
	if err != nil {
		return err
	}
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	root := t.root.Load()
	e := findSegs(root, segs)
	if e == nil {
		return fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	ne := e.clone()
	if err := fn(ne); err != nil {
		return err
	}
	t.root.Store(replaceAt(root, segs, ne))
	return nil
}

// AddLocation registers node as an additional replica holder for path.
// Adding an existing location is a no-op.
func (t *Table) AddLocation(path string, node config.NodeID) error {
	return t.mutateEntry(path, func(ne *entry) error {
		for _, loc := range ne.locations {
			if loc == node {
				return nil
			}
		}
		locs := make([]config.NodeID, len(ne.locations)+1)
		copy(locs, ne.locations)
		locs[len(locs)-1] = node
		ne.locations = locs
		t.memBytes.Add(locationBytes)
		return nil
	})
}

// RemoveLocation drops node from path's replica set. Removing the last
// location fails with ErrNoLocation: content must live somewhere.
func (t *Table) RemoveLocation(path string, node config.NodeID) error {
	return t.mutateEntry(path, func(ne *entry) error {
		idx := -1
		for i, loc := range ne.locations {
			if loc == node {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("%w: %q not at %s", ErrNotFound, path, node)
		}
		if len(ne.locations) == 1 {
			return fmt.Errorf("%w: %q", ErrNoLocation, path)
		}
		locs := make([]config.NodeID, 0, len(ne.locations)-1)
		locs = append(locs, ne.locations[:idx]...)
		locs = append(locs, ne.locations[idx+1:]...)
		ne.locations = locs
		t.memBytes.Add(-locationBytes)
		return nil
	})
}

// SetPriority updates the priority of path's entry.
func (t *Table) SetPriority(path string, priority int) error {
	return t.mutateEntry(path, func(ne *entry) error {
		ne.priority = priority
		return nil
	})
}

// SetPinned marks or unmarks path's placement as administratively fixed.
func (t *Table) SetPinned(path string, pinned bool) error {
	return t.mutateEntry(path, func(ne *entry) error {
		ne.pinned = pinned
		return nil
	})
}

// ResetHits zeroes every entry's hit counter, starting a new accounting
// interval for the load balancer. Counters are shared across entry copies,
// so resetting the current snapshot resets every copy.
func (t *Table) ResetHits() {
	walkNodes(t.root.Load(), func(e *entry) { e.hits.Store(0) })
}

// Walk invokes fn for a snapshot of every entry, in unspecified order. The
// walk runs over one immutable root: concurrent mutations affect neither
// coverage nor safety.
func (t *Table) Walk(fn func(Record)) {
	walkNodes(t.root.Load(), func(e *entry) { fn(e.record()) })
}

// walkNodes visits every leaf entry below n.
func walkNodes(n *node, fn func(*entry)) {
	if n.leaf != nil {
		fn(n.leaf)
	}
	for _, child := range n.children {
		walkNodes(child, fn)
	}
}

// EntriesAt returns snapshots of all entries replicated on node, sorted by
// descending hits (hottest first), the order the offloader inspects them.
func (t *Table) EntriesAt(node config.NodeID) []Record {
	var out []Record
	t.Walk(func(r Record) {
		if r.HasLocation(node) {
			out = append(out, r)
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// Len returns the number of entries.
func (t *Table) Len() int {
	return int(t.size.Load())
}

// MemoryBytes returns the estimated resident size of the table, the
// quantity the §5.2 experiment reports (~260 KB for ~8700 objects in the
// paper's C implementation).
func (t *Table) MemoryBytes() int64 {
	return t.memBytes.Load()
}

// Stats reports lookup-path effectiveness.
type Stats struct {
	Lookups   int64
	CacheHits int64
	Entries   int
	MemBytes  int64
}

// Stats returns a snapshot of table counters.
func (t *Table) Stats() Stats {
	return Stats{
		Lookups:   t.lookups.load(),
		CacheHits: t.cacheHits.load(),
		Entries:   int(t.size.Load()),
		MemBytes:  t.memBytes.Load(),
	}
}
