package httpx

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestReadResponseHeaderLeavesBodyUnread(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nX-Served-By: n1\r\nContent-Length: 5\r\n\r\nhello"
	br := bufio.NewReader(strings.NewReader(raw))
	resp, err := ReadResponseHeader(br)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || resp.ContentLength != 5 || resp.Body != nil {
		t.Fatalf("got %+v", resp)
	}
	rest, err := io.ReadAll(br)
	if err != nil || string(rest) != "hello" {
		t.Fatalf("body consumed: %q %v", rest, err)
	}
}

func TestCopyBodyExact(t *testing.T) {
	src := strings.NewReader("0123456789")
	var dst bytes.Buffer
	n, err := CopyBody(&dst, src, 10)
	if err != nil || n != 10 || dst.String() != "0123456789" {
		t.Fatalf("CopyBody = %d %v %q", n, err, dst.String())
	}
}

func TestCopyBodyLargerThanBuffer(t *testing.T) {
	body := bytes.Repeat([]byte("x"), CopyBufSize*2+17)
	var dst bytes.Buffer
	n, err := CopyBody(&dst, bytes.NewReader(body), int64(len(body)))
	if err != nil || n != int64(len(body)) || !bytes.Equal(dst.Bytes(), body) {
		t.Fatalf("CopyBody = %d %v (want %d)", n, err, len(body))
	}
}

func TestCopyBodyTruncatedSource(t *testing.T) {
	src := strings.NewReader("abc") // promises 10, delivers 3
	var dst bytes.Buffer
	n, err := CopyBody(&dst, src, 10)
	if !errors.Is(err, ErrBodyTruncated) {
		t.Fatalf("err = %v, want ErrBodyTruncated", err)
	}
	if n != 3 || dst.String() != "abc" {
		t.Fatalf("relayed %d %q before the truncation", n, dst.String())
	}
}

// errWriter fails after accepting limit bytes — a client that went away.
type errWriter struct {
	limit int
	wrote int
}

func (w *errWriter) Write(p []byte) (int, error) {
	if w.wrote+len(p) > w.limit {
		n := w.limit - w.wrote
		w.wrote = w.limit
		return n, errors.New("client gone")
	}
	w.wrote += len(p)
	return len(p), nil
}

func TestCopyBodyDestinationErrorIsNotTruncation(t *testing.T) {
	body := bytes.Repeat([]byte("y"), 4096)
	_, err := CopyBody(&errWriter{limit: 100}, bytes.NewReader(body), int64(len(body)))
	if err == nil {
		t.Fatal("want error from dead client")
	}
	if errors.Is(err, ErrBodyTruncated) {
		t.Fatalf("client-side failure misreported as source truncation: %v", err)
	}
}

func TestRelayResponseRewritesConnectionOnWire(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nX-Served-By: n1\r\nContent-Length: 5\r\n\r\nhello"
	br := bufio.NewReader(strings.NewReader(raw))
	resp, err := ReadResponseHeader(br)
	if err != nil {
		t.Fatal(err)
	}
	var client bytes.Buffer
	n, err := RelayResponse(&client, resp, br, Proto10, true)
	if err != nil || n != 5 {
		t.Fatalf("RelayResponse = %d %v", n, err)
	}
	got, err := ReadResponse(bufio.NewReader(&client))
	if err != nil {
		t.Fatal(err)
	}
	if got.Proto != Proto10 || got.Header.Get("Connection") != "close" {
		t.Fatalf("relayed head not rewritten: %+v", got)
	}
	if string(got.Body) != "hello" || got.Header.Get("X-Served-By") != "n1" {
		t.Fatalf("relayed payload lost: %+v", got)
	}
	// The source response object must not have been mutated.
	if resp.Header.Get("Connection") != "" || resp.Proto != Proto11 {
		t.Fatalf("RelayResponse mutated resp: %+v", resp)
	}
}

func TestRelayResponseTruncatedBackend(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nshort"
	br := bufio.NewReader(strings.NewReader(raw))
	resp, err := ReadResponseHeader(br)
	if err != nil {
		t.Fatal(err)
	}
	var client bytes.Buffer
	n, err := RelayResponse(&client, resp, br, Proto11, false)
	if !errors.Is(err, ErrBodyTruncated) {
		t.Fatalf("err = %v, want ErrBodyTruncated", err)
	}
	if n != 5 {
		t.Fatalf("relayed %d bytes before truncation, want 5", n)
	}
}

func TestReadRequestIntoReusesStorage(t *testing.T) {
	raw := "POST /a HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n\r\nabc" +
		"GET /b HTTP/1.1\r\nHost: h\r\n\r\n"
	br := bufio.NewReader(strings.NewReader(raw))
	req := AcquireRequest()
	defer ReleaseRequest(req)
	if err := ReadRequestInto(br, req); err != nil {
		t.Fatal(err)
	}
	if req.Method != "POST" || string(req.Body) != "abc" {
		t.Fatalf("first parse: %+v", req)
	}
	if err := ReadRequestInto(br, req); err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Path != "/b" || len(req.Body) != 0 {
		t.Fatalf("second parse leaked state: %+v", req)
	}
	if req.Header.Get("Content-Length") != "" {
		t.Fatal("stale Content-Length survived reset")
	}
}

func TestWriteProxyRequestDropsConnection(t *testing.T) {
	req := &Request{
		Method: "GET",
		Target: "/x",
		Path:   "/x",
		Proto:  Proto10,
		Header: NewHeader("Connection", "keep-alive", "Host", "h"),
	}
	var buf bytes.Buffer
	if err := WriteProxyRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	wire := buf.String()
	if !strings.HasPrefix(wire, "GET /x HTTP/1.1\r\n") {
		t.Fatalf("wire = %q", wire)
	}
	if strings.Contains(wire, "Connection:") {
		t.Fatalf("hop-by-hop Connection forwarded: %q", wire)
	}
	if !strings.Contains(wire, "Host: h\r\n") {
		t.Fatalf("end-to-end header lost: %q", wire)
	}
	// req itself is untouched: same header fields as built.
	if req.Header.Get("Connection") != "keep-alive" || req.Proto != Proto10 {
		t.Fatalf("WriteProxyRequest mutated req: %+v", req)
	}
}

func TestHeaderPreservesInsertionOrder(t *testing.T) {
	resp := NewResponse(Proto11, 200, []byte("z"))
	resp.Header.Set("X-B", "2")
	resp.Header.Set("X-A", "1")
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	wire := buf.String()
	if strings.Index(wire, "X-B:") > strings.Index(wire, "X-A:") {
		t.Fatalf("insertion order not preserved: %q", wire)
	}
}
