package httpx

import (
	"errors"
	"fmt"
	"io"
)

// ErrBodyTruncated reports that a peer delivered fewer body bytes than its
// Content-Length promised. The relay uses it to tell a source-side failure
// (back end died mid-body — the response already sent to the client is
// short, so the client connection must close) from a destination-side one
// (client went away).
var ErrBodyTruncated = errors.New("httpx: body truncated")

// CopyBody copies exactly n body bytes from src to dst using a pooled
// 32 KiB buffer, so relaying a body of any size costs zero allocations.
// A short read from src returns an error wrapping ErrBodyTruncated; a
// write error on dst is returned as-is (not a truncation — the source
// stream is still intact). Either way the returned count is what reached
// dst, and on error the connection carrying src can no longer be reused
// for another exchange (framing is lost).
func CopyBody(dst io.Writer, src io.Reader, n int64) (int64, error) {
	if n <= 0 {
		return 0, nil
	}
	bufp := copyBufPool.Get().(*[]byte)
	defer copyBufPool.Put(bufp)
	buf := *bufp
	var written int64
	for written < n {
		chunk := n - written
		if chunk > int64(len(buf)) {
			chunk = int64(len(buf))
		}
		rn, rerr := src.Read(buf[:chunk])
		if rn > 0 {
			wn, werr := dst.Write(buf[:rn])
			written += int64(wn)
			if werr != nil {
				return written, fmt.Errorf("relaying body: %w", werr)
			}
			if wn < rn {
				return written, fmt.Errorf("relaying body: %w", io.ErrShortWrite)
			}
		}
		if written >= n {
			break
		}
		if rerr != nil {
			return written, fmt.Errorf("%w after %d/%d bytes: %v", ErrBodyTruncated, written, n, rerr)
		}
	}
	return written, nil
}

// RelayResponse streams resp from a back-end connection to the client:
// it writes the status line and headers (translated to the client's
// protocol version, Connection rewritten on the wire — resp is not
// mutated), flushes them so first-byte latency is O(headers) not O(body),
// then relays exactly resp.ContentLength body bytes from src with a
// pooled buffer. resp must come from ReadResponseHeader with its body
// still unread on src.
//
// The returned count is the number of body bytes that reached the client.
// On error the exchange is unrecoverable: the header section already went
// out, so the caller must close both connections (no retry, no reuse).
func RelayResponse(dst io.Writer, resp *Response, src io.Reader, clientProto string, forceClose bool) (int64, error) {
	bw := acquireWriter(dst)
	defer releaseWriter(bw)
	writeStatusLine(bw, clientProto, resp.StatusCode, resp.Status)
	resp.Header.writeFields(bw, "Connection", "Content-Length")
	if forceClose {
		_, _ = bw.WriteString("Connection: close\r\n")
	} else if c := resp.Header.Get("Connection"); c != "" {
		writeField(bw, "Connection", c)
	}
	writeTraceFields(bw, resp)
	_, _ = bw.WriteString("Content-Length: ")
	writeInt(bw, resp.ContentLength)
	_, _ = bw.WriteString("\r\n\r\n")
	if err := bw.Flush(); err != nil {
		return 0, fmt.Errorf("writing response header: %w", err)
	}
	return CopyBody(dst, src, resp.ContentLength)
}
