package httpx

import (
	"errors"
	"fmt"
	"io"
)

// ErrBodyTruncated reports that a peer delivered fewer body bytes than its
// Content-Length promised. The relay uses it to tell a source-side failure
// (back end died mid-body — the response already sent to the client is
// short, so the client connection must close) from a destination-side one
// (client went away).
var ErrBodyTruncated = errors.New("httpx: body truncated")

// copyBodyBuf is the relay loop: it copies exactly n bytes from src to dst
// through buf. See CopyBody for the error contract.
func copyBodyBuf(dst io.Writer, src io.Reader, n int64, buf []byte) (int64, error) {
	var written int64
	for written < n {
		chunk := n - written
		if chunk > int64(len(buf)) {
			chunk = int64(len(buf))
		}
		rn, rerr := src.Read(buf[:chunk])
		if rn > 0 {
			wn, werr := dst.Write(buf[:rn])
			written += int64(wn)
			if werr != nil {
				return written, fmt.Errorf("relaying body: %w", werr)
			}
			if wn < rn {
				return written, fmt.Errorf("relaying body: %w", io.ErrShortWrite)
			}
		}
		if written >= n {
			break
		}
		if rerr != nil {
			return written, fmt.Errorf("%w after %d/%d bytes: %v", ErrBodyTruncated, written, n, rerr)
		}
	}
	return written, nil
}

// CopyBody copies exactly n body bytes from src to dst using a pooled
// CopyBufSize buffer, so relaying a body of any size costs zero
// allocations. A short read from src returns an error wrapping
// ErrBodyTruncated; a write error on dst is returned as-is (not a
// truncation — the source stream is still intact). Either way the
// returned count is what reached dst, and on error the connection
// carrying src can no longer be reused for another exchange (framing is
// lost).
func (p *Pools) CopyBody(dst io.Writer, src io.Reader, n int64) (int64, error) {
	if n <= 0 {
		return 0, nil
	}
	bufp := p.acquireCopyBuf()
	defer p.releaseCopyBuf(bufp)
	return copyBodyBuf(dst, src, n, *bufp)
}

// CopyBody is Pools.CopyBody on the default pool set.
func CopyBody(dst io.Writer, src io.Reader, n int64) (int64, error) {
	return defaultPools.CopyBody(dst, src, n)
}

// RelayResponse streams resp from a back-end connection to the client:
// the status line and headers (translated to the client's protocol
// version, Connection rewritten on the wire — resp is not mutated) are
// staged into a pooled buffer, the first body chunk is read from src, and
// both go out in one vectored write (a single writev(2) on a TCP client),
// so a response that fits one copy buffer costs one write syscall instead
// of header-flush-plus-body. The remaining body — exactly
// resp.ContentLength bytes in total — streams through the same pooled
// buffer. resp must come from ReadResponseHeader with its body still
// unread on src.
//
// The returned count is the number of body bytes that reached the client.
// On error the exchange is unrecoverable: the header section (and
// possibly part of the body) already went out, so the caller must close
// both connections (no retry, no reuse).
func (p *Pools) RelayResponse(dst io.Writer, resp *Response, src io.Reader, clientProto string, forceClose bool) (int64, error) {
	hb := p.acquireHeaderBuf()
	defer p.releaseHeaderBuf(hb)
	head := appendResponseHeader((*hb)[:0], resp, clientProto, forceClose)
	*hb = head[:0] // keep any growth pooled
	total := resp.ContentLength
	if total <= 0 {
		if _, err := p.writeVectored(dst, head, nil); err != nil {
			return 0, fmt.Errorf("writing response header: %w", err)
		}
		return 0, nil
	}
	bufp := p.acquireCopyBuf()
	defer p.releaseCopyBuf(bufp)
	buf := *bufp
	chunk := total
	if chunk > int64(len(buf)) {
		chunk = int64(len(buf))
	}
	// One read before the header goes out: whatever src already buffered
	// rides the same writev as the header section.
	rn, rerr := src.Read(buf[:chunk])
	wn, werr := p.writeVectored(dst, head, buf[:rn])
	written := wn - int64(len(head))
	if written < 0 {
		written = 0
	}
	if werr != nil {
		if wn < int64(len(head)) {
			return 0, fmt.Errorf("writing response header: %w", werr)
		}
		return written, fmt.Errorf("relaying body: %w", werr)
	}
	if rerr != nil && written < total {
		return written, fmt.Errorf("%w after %d/%d bytes: %v", ErrBodyTruncated, written, total, rerr)
	}
	if written >= total {
		return written, nil
	}
	m, err := copyBodyBuf(dst, src, total-written, buf)
	return written + m, err
}

// RelayResponse is Pools.RelayResponse on the default pool set.
func RelayResponse(dst io.Writer, resp *Response, src io.Reader, clientProto string, forceClose bool) (int64, error) {
	return defaultPools.RelayResponse(dst, resp, src, clientProto, forceClose)
}
