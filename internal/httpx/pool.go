package httpx

import (
	"bufio"
	"io"
	"net"
	"sync"
)

// Pool sizing. Reader/writer buffers are sized for this system's messages
// (request lines plus a handful of headers fit in 4 KiB); copy buffers are
// 256 KiB so a large body relay moves data in a handful of syscalls
// without large per-request allocations.
const (
	readerBufSize = 4 << 10
	writerBufSize = 4 << 10
	// CopyBufSize is the size of the pooled buffers CopyBody relays with.
	CopyBufSize = 256 << 10
	// headerBufSize is the staging capacity for a serialized header
	// section (writeVectored); oversized sections grow the slice and the
	// release path drops outliers.
	headerBufSize    = 4 << 10
	maxHeaderBufSize = 16 << 10
)

// Pools is one independent set of the buffer pools the message fast path
// draws from: bufio readers/writers, reusable Requests, relay copy
// buffers, header staging buffers and writev vectors. The distributor
// gives each accept shard its own Pools so buffers stay core-local
// instead of bouncing between CPUs; everything else uses the package
// default via the package-level Acquire/Release functions. A Pools value
// is owned by exactly one shard — values acquired from it must be
// released back to the same Pools (distlint:pershard, enforced by the
// shardaffinity analyzer).
type Pools struct {
	readers  sync.Pool
	writers  sync.Pool
	requests sync.Pool
	copyBufs sync.Pool
	headers  sync.Pool
	bufvecs  sync.Pool
}

// PerShardMarker marks Pools as a per-shard type for the shardaffinity
// analyzer, which only sees doc-comment markers in the package it is
// analyzing; an empty marker method is visible through the type checker
// everywhere (the same convention as cowdiscipline's COWMarker).
func (*Pools) PerShardMarker() {}

// NewPools returns an independent pool set.
func NewPools() *Pools {
	p := &Pools{}
	p.readers.New = func() any { return bufio.NewReaderSize(nil, readerBufSize) }
	p.writers.New = func() any { return bufio.NewWriterSize(nil, writerBufSize) }
	p.requests.New = func() any { return &Request{Header: make(Header, 0, 8)} }
	p.copyBufs.New = func() any {
		b := make([]byte, CopyBufSize)
		return &b
	}
	p.headers.New = func() any {
		b := make([]byte, 0, headerBufSize)
		return &b
	}
	p.bufvecs.New = func() any {
		v := make(net.Buffers, 0, 2)
		return &v
	}
	return p
}

// defaultPools backs the package-level Acquire/Release functions: the
// shared pool set for callers without a shard of their own (backends,
// management plane, tests).
var defaultPools = NewPools()

// AcquireReader returns a pooled bufio.Reader reset to read from r.
// Release it with ReleaseReader once no buffered bytes are needed — for a
// persistent connection that means when the connection is closed, not
// between requests (the buffer may hold pipelined bytes).
func (p *Pools) AcquireReader(r io.Reader) *bufio.Reader {
	br := p.readers.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

// ReleaseReader returns br to the pool. The caller must not use br again.
func (p *Pools) ReleaseReader(br *bufio.Reader) {
	if br == nil {
		return
	}
	br.Reset(nil)
	p.readers.Put(br)
}

// AcquireRequest returns a pooled Request ready for ReadRequestInto.
func (p *Pools) AcquireRequest() *Request {
	return p.requests.Get().(*Request)
}

// ReleaseRequest returns req to the pool. Oversized body and header
// storage is dropped so one large upload doesn't pin memory forever.
func (p *Pools) ReleaseRequest(req *Request) {
	if req == nil {
		return
	}
	if cap(req.Body) > CopyBufSize {
		req.Body = nil
	}
	if cap(req.Header) > maxHeaderLines {
		req.Header = nil
	}
	req.reset()
	p.requests.Put(req)
}

// acquireWriter returns a pooled bufio.Writer targeting w.
func (p *Pools) acquireWriter(w io.Writer) *bufio.Writer {
	bw := p.writers.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

// releaseWriter returns bw to the pool, dropping any unflushed bytes from
// a failed write (Reset discards them).
func (p *Pools) releaseWriter(bw *bufio.Writer) {
	bw.Reset(nil)
	p.writers.Put(bw)
}

// acquireCopyBuf returns a pooled CopyBufSize relay buffer.
func (p *Pools) acquireCopyBuf() *[]byte {
	return p.copyBufs.Get().(*[]byte)
}

// releaseCopyBuf returns a relay buffer to the pool.
func (p *Pools) releaseCopyBuf(b *[]byte) {
	p.copyBufs.Put(b)
}

// acquireHeaderBuf returns an empty staging buffer for a header section.
func (p *Pools) acquireHeaderBuf() *[]byte {
	return p.headers.Get().(*[]byte)
}

// releaseHeaderBuf returns a staging buffer, dropping outliers a huge
// header section grew.
func (p *Pools) releaseHeaderBuf(b *[]byte) {
	if cap(*b) > maxHeaderBufSize {
		return
	}
	*b = (*b)[:0]
	p.headers.Put(b)
}

// AcquireReader returns a bufio.Reader from the default pool set; see
// Pools.AcquireReader.
func AcquireReader(r io.Reader) *bufio.Reader { return defaultPools.AcquireReader(r) }

// ReleaseReader returns br to the default pool set.
func ReleaseReader(br *bufio.Reader) { defaultPools.ReleaseReader(br) }

// AcquireRequest returns a pooled Request from the default pool set.
func AcquireRequest() *Request { return defaultPools.AcquireRequest() }

// ReleaseRequest returns req to the default pool set.
func ReleaseRequest(req *Request) { defaultPools.ReleaseRequest(req) }

// acquireWriter returns a pooled bufio.Writer targeting w.
func acquireWriter(w io.Writer) *bufio.Writer { return defaultPools.acquireWriter(w) }

// releaseWriter returns bw to the default pool set.
func releaseWriter(bw *bufio.Writer) { defaultPools.releaseWriter(bw) }
