package httpx

import (
	"bufio"
	"io"
	"sync"
)

// Pool sizing. Reader/writer buffers are sized for this system's messages
// (request lines plus a handful of headers fit in 4 KiB); copy buffers are
// 32 KiB so a body relay moves data in few syscalls without large
// per-request allocations.
const (
	readerBufSize = 4 << 10
	writerBufSize = 4 << 10
	// CopyBufSize is the size of the pooled buffers CopyBody relays with.
	CopyBufSize = 32 << 10
)

var (
	readerPool = sync.Pool{New: func() any {
		return bufio.NewReaderSize(nil, readerBufSize)
	}}
	writerPool = sync.Pool{New: func() any {
		return bufio.NewWriterSize(nil, writerBufSize)
	}}
	requestPool = sync.Pool{New: func() any {
		return &Request{Header: make(Header, 0, 8)}
	}}
	copyBufPool = sync.Pool{New: func() any {
		b := make([]byte, CopyBufSize)
		return &b
	}}
)

// AcquireReader returns a pooled bufio.Reader reset to read from r.
// Release it with ReleaseReader once no buffered bytes are needed — for a
// persistent connection that means when the connection is closed, not
// between requests (the buffer may hold pipelined bytes).
func AcquireReader(r io.Reader) *bufio.Reader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

// ReleaseReader returns br to the pool. The caller must not use br again.
func ReleaseReader(br *bufio.Reader) {
	if br == nil {
		return
	}
	br.Reset(nil)
	readerPool.Put(br)
}

// AcquireRequest returns a pooled Request ready for ReadRequestInto.
func AcquireRequest() *Request {
	return requestPool.Get().(*Request)
}

// ReleaseRequest returns req to the pool. Oversized body and header
// storage is dropped so one large upload doesn't pin memory forever.
func ReleaseRequest(req *Request) {
	if req == nil {
		return
	}
	if cap(req.Body) > CopyBufSize {
		req.Body = nil
	}
	if cap(req.Header) > maxHeaderLines {
		req.Header = nil
	}
	req.reset()
	requestPool.Put(req)
}

// acquireWriter returns a pooled bufio.Writer targeting w.
func acquireWriter(w io.Writer) *bufio.Writer {
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

// releaseWriter returns bw to the pool, dropping any unflushed bytes from
// a failed write (Reset discards them).
func releaseWriter(bw *bufio.Writer) {
	bw.Reset(nil)
	writerPool.Put(bw)
}
