package httpx

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
)

// chunkWriter accepts at most chunk bytes per Write and returns a nil
// error with the short count — the same contract as the fault injector's
// MaxWriteChunk rule. The net.Buffers generic fallback mishandles this
// shape (it treats n < len(p) with nil error as complete), so
// writeVectored's sequential path must retry until every byte lands.
type chunkWriter struct {
	buf   bytes.Buffer
	chunk int
}

func (w *chunkWriter) Write(p []byte) (int, error) {
	if len(p) > w.chunk {
		p = p[:w.chunk]
	}
	return w.buf.Write(p)
}

func TestWriteVectoredShortWrites(t *testing.T) {
	p := NewPools()
	head := []byte("HTTP/1.1 200 OK\r\nContent-Length: 26\r\n\r\n")
	body := []byte("abcdefghijklmnopqrstuvwxyz")
	w := &chunkWriter{chunk: 3}
	n, err := p.writeVectored(w, head, body)
	if err != nil {
		t.Fatal(err)
	}
	want := string(head) + string(body)
	if n != int64(len(want)) || w.buf.String() != want {
		t.Fatalf("wrote %d %q, want %d %q", n, w.buf.String(), len(want), want)
	}
}

func TestWriteVectoredZeroByteWriter(t *testing.T) {
	p := NewPools()
	w := &chunkWriter{chunk: 0} // accepts nothing: must not spin forever
	_, err := p.writeVectored(w, []byte("head"), []byte("body"))
	if err != io.ErrShortWrite {
		t.Fatalf("err = %v, want ErrShortWrite", err)
	}
}

// TestRelayResponseShortWriteClient drives the full relay path — header
// staging, first-chunk coalescing, remainder copy — through a writer
// that only takes a few bytes at a time, and checks the byte stream the
// client sees is complete and in order.
func TestRelayResponseShortWriteClient(t *testing.T) {
	p := NewPools()
	body := bytes.Repeat([]byte("0123456789"), 400) // 4000 B, > one chunk at 7 B
	resp := &Response{
		Proto: Proto11, StatusCode: 200, Status: "OK",
		Header:        NewHeader("X-Served-By", "n1"),
		ContentLength: int64(len(body)),
	}
	w := &chunkWriter{chunk: 7}
	written, err := p.RelayResponse(w, resp, bytes.NewReader(body), Proto11, true)
	if err != nil {
		t.Fatal(err)
	}
	if written != int64(len(body)) {
		t.Fatalf("relayed %d body bytes, want %d", written, len(body))
	}
	got, err := ReadResponse(bufio.NewReader(bytes.NewReader(w.buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != 200 || !bytes.Equal(got.Body, body) {
		t.Fatalf("client saw status %d, body %d bytes (want 200, %d)", got.StatusCode, len(got.Body), len(body))
	}
	if got.Header.Get("Connection") != "close" {
		t.Fatal("forceClose did not reach the client")
	}
}

func TestWriteRequestShortWriteWriter(t *testing.T) {
	p := NewPools()
	req := &Request{
		Method: "GET", Target: "/a/b.html", Path: "/a/b.html",
		Proto:  Proto11,
		Header: NewHeader("Host", "c", "X-Token", strings.Repeat("t", 200)),
	}
	w := &chunkWriter{chunk: 5}
	if err := p.WriteRequest(w, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(bytes.NewReader(w.buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "GET" || got.Target != "/a/b.html" || got.Header.Get("X-Token") != req.Header.Get("X-Token") {
		t.Fatalf("request did not survive the short-write writer: %+v", got)
	}
}

// TestRelayResponseVectoredTCP sends a large response over a real TCP
// pair so writeVectored takes the net.Buffers/writev path (the runtime
// loops over partial writevs internally) and verifies the exact bytes.
func TestRelayResponseVectoredTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	body := bytes.Repeat([]byte("v"), 3*CopyBufSize+123)
	done := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer func() { _ = conn.Close() }()
		p := NewPools()
		resp := &Response{
			Proto: Proto11, StatusCode: 200,
			Header:        NewHeader("X-Served-By", "n1"),
			ContentLength: int64(len(body)),
		}
		_, err = p.RelayResponse(conn, resp, bytes.NewReader(body), Proto11, true)
		done <- err
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	got, err := ReadResponse(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Body, body) {
		t.Fatalf("TCP vectored relay corrupted the body: got %d bytes, want %d", len(got.Body), len(body))
	}
}
