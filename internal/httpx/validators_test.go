package httpx

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestHTTPTimeRoundTrip(t *testing.T) {
	t0 := time.Date(2000, time.April, 10, 8, 30, 15, 0, time.UTC)
	s := FormatHTTPTime(t0)
	if s != "Mon, 10 Apr 2000 08:30:15 GMT" {
		t.Fatalf("FormatHTTPTime = %q", s)
	}
	got, err := ParseHTTPTime(s)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(t0) {
		t.Fatalf("round trip = %v, want %v", got, t0)
	}
	if _, err := ParseHTTPTime("Monday, 10-Apr-00 08:30:15 GMT"); err != nil {
		t.Fatalf("RFC 850 layout rejected: %v", err)
	}
	if _, err := ParseHTTPTime("not a date"); err == nil {
		t.Fatal("garbage date parsed")
	}
}

func TestCurrentDateCached(t *testing.T) {
	a := CurrentDate()
	b := CurrentDate()
	if a != b && a[:20] != b[:20] {
		// the second may have rolled over between calls, but both must
		// still be valid HTTP dates
		if _, err := ParseHTTPTime(b); err != nil {
			t.Fatalf("CurrentDate produced unparsable %q", b)
		}
	}
	if _, err := ParseHTTPTime(a); err != nil {
		t.Fatalf("CurrentDate produced unparsable %q: %v", a, err)
	}
}

func TestStrongETag(t *testing.T) {
	a := StrongETag([]byte("hello"))
	b := StrongETag([]byte("hello"))
	c := StrongETag([]byte("world"))
	if a != b {
		t.Fatalf("same content, different tags: %q vs %q", a, b)
	}
	if a == c {
		t.Fatalf("different content, same tag %q", a)
	}
	if !strings.HasPrefix(a, `"`) || !strings.HasSuffix(a, `"`) {
		t.Fatalf("not a quoted tag: %q", a)
	}
	if empty := StrongETag(nil); empty == a || len(empty) < 3 {
		t.Fatalf("empty-body tag = %q", empty)
	}
}

func TestETagMatch(t *testing.T) {
	etag := `"abc-123"`
	cases := []struct {
		header string
		want   bool
	}{
		{`"abc-123"`, true},
		{`*`, true},
		{`"zzz", "abc-123"`, true},
		{`W/"abc-123"`, true},
		{`"abc-124"`, false},
		{``, false},
		{`"zzz" , "abc-123" , "yyy"`, true},
	}
	for _, tc := range cases {
		if got := ETagMatch(tc.header, etag); got != tc.want {
			t.Errorf("ETagMatch(%q, %q) = %v, want %v", tc.header, etag, got, tc.want)
		}
	}
}

func TestNotModified(t *testing.T) {
	lm := time.Date(2024, time.March, 1, 12, 0, 0, 0, time.UTC)
	etag := `"tag"`
	h := NewHeader("If-None-Match", `"tag"`)
	if !NotModified(h, etag, lm) {
		t.Fatal("matching If-None-Match not honored")
	}
	// If-None-Match takes precedence over If-Modified-Since
	h = NewHeader("If-None-Match", `"other"`, "If-Modified-Since", FormatHTTPTime(lm))
	if NotModified(h, etag, lm) {
		t.Fatal("mismatched If-None-Match must win over a matching date")
	}
	h = NewHeader("If-Modified-Since", FormatHTTPTime(lm))
	if !NotModified(h, etag, lm) {
		t.Fatal("equal If-Modified-Since should be not-modified")
	}
	h = NewHeader("If-Modified-Since", FormatHTTPTime(lm.Add(-time.Hour)))
	if NotModified(h, etag, lm) {
		t.Fatal("older client copy must be modified")
	}
	if NotModified(NewHeader("If-Modified-Since", FormatHTTPTime(lm)), etag, time.Time{}) {
		t.Fatal("zero lastModified must disable the date check")
	}
}

// parseServed reads one serialized response off the buffer.
func parseServed(t *testing.T, buf *bytes.Buffer) *Response {
	t.Helper()
	resp, err := ReadResponse(bufio.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServeStored(t *testing.T) {
	body := []byte("<html>cached</html>")
	s := &Stored{
		StatusCode:   200,
		ContentType:  "text/html",
		ETag:         StrongETag(body),
		LastModified: "Mon, 10 Apr 2000 08:30:15 GMT",
		Date:         "Mon, 10 Apr 2000 08:30:20 GMT",
		Body:         body,
	}
	var buf bytes.Buffer
	if err := ServeStored(&buf, s, ServeOptions{Proto: Proto11, AgeSeconds: 7, CacheStatus: "HIT"}); err != nil {
		t.Fatal(err)
	}
	resp := parseServed(t, &buf)
	if resp.StatusCode != 200 || !bytes.Equal(resp.Body, body) {
		t.Fatalf("status=%d body=%q", resp.StatusCode, resp.Body)
	}
	for key, want := range map[string]string{
		"Content-Type":  "text/html",
		"Etag":          s.ETag,
		"Last-Modified": s.LastModified,
		"Date":          s.Date,
		"Age":           "7",
		"X-Dist-Cache":  "HIT",
	} {
		if got := resp.Header.Get(key); got != want {
			t.Errorf("%s = %q, want %q", key, got, want)
		}
	}

	// HEAD: full Content-Length, no body
	buf.Reset()
	if err := ServeStored(&buf, s, ServeOptions{Proto: Proto11, Head: true, AgeSeconds: -1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Content-Length: 19\r\n") {
		t.Fatalf("HEAD lost the representation length:\n%s", out)
	}
	if strings.Contains(out, "cached") {
		t.Fatalf("HEAD carried a body:\n%s", out)
	}
	if strings.Contains(out, "Age:") {
		t.Fatalf("negative AgeSeconds still emitted Age:\n%s", out)
	}

	// 304: validators only, no body, zero Content-Length
	buf.Reset()
	if err := ServeStored(&buf, s, ServeOptions{Proto: Proto11, NotModified: true, AgeSeconds: 0}); err != nil {
		t.Fatal(err)
	}
	resp = parseServed(t, &buf)
	if resp.StatusCode != 304 || len(resp.Body) != 0 {
		t.Fatalf("304 replay: status=%d body=%q", resp.StatusCode, resp.Body)
	}
	if resp.Header.Get("Etag") != s.ETag {
		t.Fatal("304 lost the validator")
	}
	if resp.Header.Get("Content-Type") != "" {
		t.Fatal("304 carried Content-Type")
	}

	// ForceClose appends the Connection header
	buf.Reset()
	if err := ServeStored(&buf, s, ServeOptions{Proto: Proto10, AgeSeconds: -1, ForceClose: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Connection: close\r\n") {
		t.Fatal("ForceClose missing")
	}
}

func TestServeStoredAllocs(t *testing.T) {
	body := bytes.Repeat([]byte("x"), 4096)
	s := &Stored{
		StatusCode:  200,
		ContentType: "text/html",
		ETag:        StrongETag(body),
		Date:        CurrentDate(),
		Body:        body,
	}
	var sink bytes.Buffer
	sink.Grow(8192)
	allocs := testing.AllocsPerRun(200, func() {
		sink.Reset()
		if err := ServeStored(&sink, s, ServeOptions{
			Proto: Proto11, AgeSeconds: 1, CacheStatus: "HIT",
		}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("ServeStored allocates %.1f/op, want 0", allocs)
	}
}

func TestStatusText304(t *testing.T) {
	if got := statusText(304); got != "Not Modified" {
		t.Fatalf("statusText(304) = %q", got)
	}
}
