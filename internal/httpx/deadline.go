package httpx

import (
	"strconv"
	"time"
)

// In-band deadline propagation. The distributor stamps each admitted
// request with the absolute instant after which the client's wait is
// considered abandoned, and forwards it to the back end as
//
//	X-Dist-Deadline: <unix-nanoseconds, lowercase hex>
//
// alongside the X-Dist-Trace/X-Dist-Span pair. A back end compares the
// propagated instant against its own clock and cancels work the client
// has already given up on. Like the trace headers the value lives in a
// Request field (Deadline), parsed and emitted without allocating.

// ParseDeadline parses an X-Dist-Deadline value (lowercase or uppercase
// hex Unix nanoseconds) from wire bytes without allocating. Values that
// are malformed or overflow int64 report ok=false.
func ParseDeadline(b []byte) (int64, bool) {
	v, ok := parseHex(b)
	if !ok || v > 1<<63-1 {
		return 0, false
	}
	return int64(v), true
}

// AppendDeadline appends nanos as the hex wire form of an
// X-Dist-Deadline value (the value only, no header name), writing into
// b's existing capacity when large enough. Non-positive deadlines append
// nothing: 0 means "no deadline" on the wire.
func AppendDeadline(b []byte, nanos int64) []byte {
	if nanos <= 0 {
		return b
	}
	return strconv.AppendUint(b, uint64(nanos), 16)
}

// DeadlineTime returns the request's propagated deadline as a time.Time,
// the zero Time when none was set.
func (r *Request) DeadlineTime() time.Time {
	if r.Deadline <= 0 {
		return time.Time{}
	}
	return time.Unix(0, r.Deadline)
}

// DeadlineExpired reports whether the propagated deadline has passed at
// now. A request with no deadline never expires.
func (r *Request) DeadlineExpired(now time.Time) bool {
	return r.Deadline > 0 && now.UnixNano() >= r.Deadline
}

// DeadlineRemaining returns the budget left before the propagated
// deadline at now (negative when already expired), or 0 when the request
// carries no deadline.
func (r *Request) DeadlineRemaining(now time.Time) time.Duration {
	if r.Deadline <= 0 {
		return 0
	}
	return time.Duration(r.Deadline - now.UnixNano())
}

// TightenDeadline lowers the request's deadline to t when t is earlier
// than the current one (or when none is set). A client-propagated
// deadline is never loosened — the distributor's own budget only ever
// shrinks the window.
func (r *Request) TightenDeadline(t time.Time) {
	ns := t.UnixNano()
	if r.Deadline == 0 || ns < r.Deadline {
		r.Deadline = ns
	}
}
