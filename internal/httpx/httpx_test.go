package httpx

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func parse(t *testing.T, raw string) *Request {
	t.Helper()
	req, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)))
	if err != nil {
		t.Fatalf("ReadRequest(%q): %v", raw, err)
	}
	return req
}

func TestReadRequestBasic(t *testing.T) {
	req := parse(t, "GET /docs/a.html?x=1 HTTP/1.1\r\nHost: example\r\n\r\n")
	if req.Method != "GET" || req.Target != "/docs/a.html?x=1" {
		t.Fatalf("parsed %+v", req)
	}
	if req.Path != "/docs/a.html" || req.Query != "x=1" {
		t.Fatalf("path/query split wrong: %q %q", req.Path, req.Query)
	}
	if req.Proto != Proto11 {
		t.Fatalf("proto = %q", req.Proto)
	}
	if req.Header.Get("host") != "example" {
		t.Fatal("case-insensitive header lookup failed")
	}
}

func TestReadRequestLFOnly(t *testing.T) {
	req := parse(t, "GET / HTTP/1.0\nHost: h\n\n")
	if req.Proto != Proto10 || req.Header.Get("Host") != "h" {
		t.Fatalf("parsed %+v", req)
	}
}

func TestReadRequestBody(t *testing.T) {
	req := parse(t, "POST /cgi-bin/f.cgi HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
	if string(req.Body) != "hello" {
		t.Fatalf("body = %q", req.Body)
	}
}

func TestReadRequestEOF(t *testing.T) {
	_, err := ReadRequest(bufio.NewReader(strings.NewReader("")))
	if err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestReadRequestMalformed(t *testing.T) {
	cases := []string{
		"GARBAGE\r\n\r\n",
		"GET\r\n\r\n",
		"GET /\r\n\r\n",
		"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
		"GET / HTTP/1.1\r\n: novalue\r\n\r\n",
		"GET / HTTP/1.1\r\nContent-Length: -3\r\n\r\n",
		"GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
	}
	for _, raw := range cases {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw))); err == nil {
			t.Errorf("ReadRequest(%q) succeeded, want error", raw)
		}
	}
}

func TestReadRequestUnsupportedProto(t *testing.T) {
	_, err := ReadRequest(bufio.NewReader(strings.NewReader("GET / HTTP/2.0\r\n\r\n")))
	if !errors.Is(err, ErrUnsupportedProto) {
		t.Fatalf("err = %v, want ErrUnsupportedProto", err)
	}
}

func TestReadRequestTooManyHeaders(t *testing.T) {
	var b strings.Builder
	b.WriteString("GET / HTTP/1.1\r\n")
	for i := 0; i < maxHeaderLines+1; i++ {
		b.WriteString("X-H: v\r\n")
	}
	b.WriteString("\r\n")
	_, err := ReadRequest(bufio.NewReader(strings.NewReader(b.String())))
	if !errors.Is(err, ErrHeaderTooLarge) {
		t.Fatalf("err = %v, want ErrHeaderTooLarge", err)
	}
}

func TestKeepAliveRules(t *testing.T) {
	cases := []struct {
		proto, conn string
		want        bool
	}{
		{Proto11, "", true},
		{Proto11, "close", false},
		{Proto11, "Close", false},
		{Proto10, "", false},
		{Proto10, "keep-alive", true},
		{Proto10, "Keep-Alive", true},
	}
	for _, tc := range cases {
		req := &Request{Proto: tc.proto, Header: Header{}}
		if tc.conn != "" {
			req.Header.Set("Connection", tc.conn)
		}
		if got := req.KeepAlive(); got != tc.want {
			t.Errorf("KeepAlive(%s, conn=%q) = %v, want %v", tc.proto, tc.conn, got, tc.want)
		}
		resp := &Response{Proto: tc.proto, Header: req.Header.Clone()}
		if got := resp.KeepAlive(); got != tc.want {
			t.Errorf("Response.KeepAlive(%s, conn=%q) = %v, want %v", tc.proto, tc.conn, got, tc.want)
		}
	}
}

func TestIsDynamic(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"/cgi-bin/app.cgi", true},
		{"/scripts/x.cgi", true},
		{"/asp/page.asp", true},
		{"/docs/a.html", false},
		{"/images/i.gif", false},
	}
	for _, tc := range cases {
		req := &Request{Path: tc.path}
		if got := req.IsDynamic(); got != tc.want {
			t.Errorf("IsDynamic(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

func TestCanonicalKey(t *testing.T) {
	cases := map[string]string{
		"content-length": "Content-Length",
		"HOST":           "Host",
		"x-served-by":    "X-Served-By",
		"ALREADY-OK":     "Already-Ok",
	}
	for in, want := range cases {
		if got := CanonicalKey(in); got != want {
			t.Errorf("CanonicalKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHeaderSetGetDel(t *testing.T) {
	h := Header{}
	h.Set("x-one", "1")
	if h.Get("X-One") != "1" {
		t.Fatal("Get after Set failed")
	}
	h.Del("X-ONE")
	if h.Get("x-one") != "" {
		t.Fatal("Del failed")
	}
}

func TestHeaderClone(t *testing.T) {
	h := NewHeader("A", "1")
	c := h.Clone()
	c.Set("A", "2")
	if h.Get("A") != "1" {
		t.Fatal("Clone aliases the original")
	}
}

func TestRequestRoundTrip(t *testing.T) {
	orig := &Request{
		Method: "POST",
		Target: "/asp/p.asp?q=2",
		Path:   "/asp/p.asp",
		Query:  "q=2",
		Proto:  Proto11,
		Header: NewHeader("Host", "h", "X-Test", "yes"),
		Body:   []byte("payload"),
	}
	var buf bytes.Buffer
	if err := WriteRequest(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != orig.Method || got.Target != orig.Target || got.Proto != orig.Proto {
		t.Fatalf("round trip lost request line: %+v", got)
	}
	if got.Header.Get("X-Test") != "yes" || string(got.Body) != "payload" {
		t.Fatalf("round trip lost header/body: %+v", got)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	orig := NewResponse(Proto11, 200, []byte("<html>hi</html>"))
	orig.Header.Set("X-Served-By", "n1")
	var buf bytes.Buffer
	if err := WriteResponse(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != 200 || got.Status != "OK" {
		t.Fatalf("status = %d %q", got.StatusCode, got.Status)
	}
	if string(got.Body) != "<html>hi</html>" {
		t.Fatalf("body = %q", got.Body)
	}
	if got.Header.Get("X-Served-By") != "n1" {
		t.Fatal("header lost")
	}
}

func TestResponseEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResponse(&buf, NewResponse(Proto10, 404, nil)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != 404 || len(got.Body) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestWriteResponseForcesContentLength(t *testing.T) {
	resp := &Response{Proto: Proto11, StatusCode: 200, Header: NewHeader("Content-Length", "999"), Body: []byte("ab")}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Content-Length: 2\r\n") {
		t.Fatalf("wire = %q", buf.String())
	}
}

func TestWriteResponseNilHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResponse(&buf, &Response{Proto: Proto11, StatusCode: 500}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResponse(bufio.NewReader(&buf)); err != nil {
		t.Fatal(err)
	}
}

func TestStatusText(t *testing.T) {
	cases := map[int]string{200: "OK", 404: "Not Found", 502: "Bad Gateway", 418: "Status 418"}
	for code, want := range cases {
		if got := statusText(code); got != want {
			t.Errorf("statusText(%d) = %q, want %q", code, got, want)
		}
	}
}

func TestReadResponseMalformed(t *testing.T) {
	cases := []string{
		"HTTP/1.1\r\n\r\n",
		"HTTP/3.0 200 OK\r\n\r\n",
		"HTTP/1.1 abc OK\r\n\r\n",
	}
	for _, raw := range cases {
		if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err == nil {
			t.Errorf("ReadResponse(%q) succeeded", raw)
		}
	}
}

func TestReadResponseEOF(t *testing.T) {
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(""))); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestPipelinedRequests(t *testing.T) {
	raw := "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"
	br := bufio.NewReader(strings.NewReader(raw))
	r1, err := ReadRequest(br)
	if err != nil || r1.Path != "/a" {
		t.Fatalf("first: %v %+v", err, r1)
	}
	r2, err := ReadRequest(br)
	if err != nil || r2.Path != "/b" {
		t.Fatalf("second: %v %+v", err, r2)
	}
}

// TestPropertyCanonicalKeyIdempotent: canonicalization is idempotent.
func TestPropertyCanonicalKeyIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := CanonicalKey(s)
		return CanonicalKey(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBodyRoundTrip: arbitrary binary bodies survive the wire.
func TestPropertyBodyRoundTrip(t *testing.T) {
	f := func(body []byte) bool {
		var buf bytes.Buffer
		if err := WriteResponse(&buf, NewResponse(Proto11, 200, body)); err != nil {
			return false
		}
		got, err := ReadResponse(bufio.NewReader(&buf))
		if err != nil {
			return false
		}
		return bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
