// Package httpx implements the small slice of HTTP/1.0 and HTTP/1.1 the
// system needs: request parsing, response framing and keep-alive semantics.
//
// The content-aware distributor must see the request line before it can
// route (§2.2), and it reuses pre-forked persistent connections (HTTP/1.1
// keep-alive) toward the back ends, so the library controls message framing
// itself instead of delegating to net/http's transport pooling, whose
// connection management would hide exactly the mechanism the paper builds.
//
// The package is written for the distributor's fast path: parsing interns
// common methods, header keys and values instead of allocating, headers are
// insertion-ordered slices rather than maps (no sort on write, no clone on
// forward), serialization runs through pooled bufio.Writers, and response
// bodies can be streamed (ReadResponseHeader + CopyBody) instead of
// buffered. See DESIGN.md §2 for the pooling and aliasing invariants.
package httpx

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Protocol versions understood by the parser.
const (
	Proto10 = "HTTP/1.0"
	Proto11 = "HTTP/1.1"
)

// Errors returned by the parser.
var (
	// ErrMalformedRequest reports an unparsable request line or header.
	ErrMalformedRequest = errors.New("httpx: malformed request")
	// ErrUnsupportedProto reports an HTTP version other than 1.0/1.1.
	ErrUnsupportedProto = errors.New("httpx: unsupported protocol version")
	// ErrHeaderTooLarge reports a header section beyond the size limit.
	ErrHeaderTooLarge = errors.New("httpx: header section too large")
)

// maxHeaderLines bounds the header section to keep a malicious client from
// holding distributor memory hostage.
const maxHeaderLines = 128

// Field is one header name/value pair. Keys are stored canonicalized by
// textproto rules (Content-Length, Host, ...).
type Field struct {
	Key   string
	Value string
}

// Header is a case-insensitive, single-valued, insertion-ordered header
// list. Relative to a map it writes without sorting (wire order is
// insertion order), iterates without allocation, and reuses its backing
// array across keep-alive requests. With the handful of fields this
// system's messages carry, linear scans beat map hashing.
type Header []Field

// NewHeader builds a header from alternating key, value pairs.
func NewHeader(pairs ...string) Header {
	if len(pairs)%2 != 0 {
		panic("httpx: NewHeader requires key/value pairs")
	}
	h := make(Header, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		h.Set(pairs[i], pairs[i+1])
	}
	return h
}

// isCanonicalKey reports whether k is already in canonical form, letting
// CanonicalKey skip its allocation for the common case of well-formed
// peers.
func isCanonicalKey(k string) bool {
	upper := true
	for i := 0; i < len(k); i++ {
		c := k[i]
		if upper && 'a' <= c && c <= 'z' {
			return false
		}
		if !upper && 'A' <= c && c <= 'Z' {
			return false
		}
		upper = c == '-'
	}
	return true
}

// CanonicalKey normalizes a header name: first letter and letters after '-'
// upper-cased, the rest lower-cased.
func CanonicalKey(k string) string {
	if isCanonicalKey(k) {
		return k
	}
	b := []byte(k)
	upper := true
	for i, c := range b {
		if upper && 'a' <= c && c <= 'z' {
			b[i] = c - ('a' - 'A')
		} else if !upper && 'A' <= c && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
		upper = c == '-'
	}
	return string(b)
}

// Get returns the value for key, canonicalizing the lookup.
func (h Header) Get(key string) string {
	key = CanonicalKey(key)
	for i := range h {
		if h[i].Key == key {
			return h[i].Value
		}
	}
	return ""
}

// Set stores value under the canonicalized key, replacing any existing
// entry in place (wire position is preserved).
func (h *Header) Set(key, value string) {
	h.setCanonical(CanonicalKey(key), value)
}

// setCanonical is Set for keys already in canonical form (the parser's
// path, which canonicalizes straight off the wire bytes).
func (h *Header) setCanonical(key, value string) {
	for i := range *h {
		if (*h)[i].Key == key {
			(*h)[i].Value = value
			return
		}
	}
	*h = append(*h, Field{Key: key, Value: value})
}

// Del removes the canonicalized key.
func (h *Header) Del(key string) {
	key = CanonicalKey(key)
	for i := range *h {
		if (*h)[i].Key == key {
			*h = append((*h)[:i], (*h)[i+1:]...)
			return
		}
	}
}

// Clone returns a copy of the header with its own backing array.
func (h Header) Clone() Header {
	if h == nil {
		return nil
	}
	return append(make(Header, 0, len(h)), h...)
}

// writeFields emits every field in insertion order, skipping the given
// canonical keys (hop-by-hop or recomputed fields).
func (h Header) writeFields(bw *bufio.Writer, skip1, skip2 string) {
	for i := range h {
		if h[i].Key == skip1 || h[i].Key == skip2 {
			continue
		}
		writeField(bw, h[i].Key, h[i].Value)
	}
}

// writeField emits one "Key: value\r\n" line.
func writeField(bw *bufio.Writer, key, value string) {
	_, _ = bw.WriteString(key)
	_, _ = bw.WriteString(": ")
	_, _ = bw.WriteString(value)
	_, _ = bw.WriteString("\r\n")
}

// writeInt emits n in decimal without allocating. Digits go out through
// WriteByte: handing bw a slice of a stack buffer would force the buffer
// to the heap (bufio may pass large writes straight to the underlying
// writer, so the slice escapes).
func writeInt(bw *bufio.Writer, n int64) {
	if n < 0 {
		_ = bw.WriteByte('-')
		n = -n
	}
	var scratch [20]byte
	i := len(scratch)
	for {
		i--
		scratch[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	for ; i < len(scratch); i++ {
		_ = bw.WriteByte(scratch[i])
	}
}

// Request is a parsed HTTP request.
type Request struct {
	Method string
	// Target is the request-target as sent (path plus optional query).
	Target string
	// Path is Target with any query string removed.
	Path string
	// Query is the raw query string (no leading '?'), empty if none.
	Query  string
	Proto  string
	Header Header
	// Body holds the request body when Content-Length was present.
	Body []byte
	// TraceID carries the in-band X-Dist-Trace value. The wire header is
	// parsed into (and emitted from) this field rather than the Header
	// slice, so tracing never allocates a header string on the hot path.
	TraceID uint64
	// Deadline carries the in-band X-Dist-Deadline value: the absolute
	// instant (Unix nanoseconds) after which the client has given up on
	// this request, 0 when none was propagated. Like TraceID it is a
	// field, not a header string, so deadline propagation stays
	// allocation-free; see deadline.go for the helpers.
	Deadline int64
}

// reset clears the request for reuse, keeping the header and body backing
// arrays so a keep-alive loop parses without allocating.
func (r *Request) reset() {
	r.Method, r.Target, r.Path, r.Query, r.Proto = "", "", "", "", ""
	r.Header = r.Header[:0]
	r.Body = r.Body[:0]
	r.TraceID = 0
	r.Deadline = 0
}

// keepAlive implements the shared version-dependent connection rules:
// HTTP/1.0 persists on "Connection: keep-alive" opt-in, HTTP/1.1 on
// "Connection: close" opt-out.
func keepAlive(proto, conn string) bool {
	switch proto {
	case Proto11:
		return !strings.EqualFold(conn, "close")
	case Proto10:
		return strings.EqualFold(conn, "keep-alive")
	default:
		return false
	}
}

// KeepAlive reports whether the connection should persist after this
// request.
func (r *Request) KeepAlive() bool {
	return keepAlive(r.Proto, r.Header.Get("Connection"))
}

// IsDynamic reports whether the request targets executable content by the
// path conventions the paper's workloads use (CGI scripts and ASP pages).
func (r *Request) IsDynamic() bool {
	return strings.Contains(r.Path, "/cgi-bin/") ||
		strings.HasSuffix(r.Path, ".cgi") ||
		strings.HasSuffix(r.Path, ".asp")
}

// internMethod returns a shared string for the common methods so request
// parsing does not allocate for them.
func internMethod(b []byte) string {
	switch string(b) { // compiles to a comparison, no conversion alloc
	case "GET":
		return "GET"
	case "POST":
		return "POST"
	case "HEAD":
		return "HEAD"
	case "PUT":
		return "PUT"
	case "DELETE":
		return "DELETE"
	}
	return string(b)
}

// internValue returns shared strings for header values this system emits
// on every message.
func internValue(b []byte) string {
	switch string(b) {
	case "close":
		return "close"
	case "keep-alive":
		return "keep-alive"
	case "text/html":
		return "text/html"
	case "HIT":
		return "HIT"
	case "MISS":
		return "MISS"
	case "STALE":
		return "STALE"
	case "REVALIDATED":
		return "REVALIDATED"
	case "critical":
		return "critical"
	case "interactive":
		return "interactive"
	case "batch":
		return "batch"
	}
	return string(b)
}

// canonFieldKey canonicalizes a wire header name and interns the keys this
// system sees on every message, so steady-state parsing allocates nothing.
func canonFieldKey(b []byte) string {
	var tmp [64]byte
	if len(b) > len(tmp) {
		return CanonicalKey(string(b))
	}
	upper := true
	for i := 0; i < len(b); i++ {
		c := b[i]
		if upper && 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		} else if !upper && 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		tmp[i] = c
		upper = c == '-'
	}
	s := tmp[:len(b)]
	switch string(s) {
	case "Host":
		return "Host"
	case "Connection":
		return "Connection"
	case "Content-Length":
		return "Content-Length"
	case "Content-Type":
		return "Content-Type"
	case "User-Agent":
		return "User-Agent"
	case "Accept":
		return "Accept"
	case "X-Served-By":
		return "X-Served-By"
	case "X-Cache":
		return "X-Cache"
	case "X-Dist-Cache":
		return "X-Dist-Cache"
	case "Etag":
		return "Etag"
	case "Last-Modified":
		return "Last-Modified"
	case "Date":
		return "Date"
	case "Age":
		return "Age"
	case "If-None-Match":
		return "If-None-Match"
	case "If-Modified-Since":
		return "If-Modified-Since"
	case "X-Dist-Trace":
		return "X-Dist-Trace"
	case "X-Dist-Span":
		return "X-Dist-Span"
	case "X-Dist-Deadline":
		return "X-Dist-Deadline"
	case "X-Dist-Class":
		return "X-Dist-Class"
	}
	return string(s)
}

// readHeaderInto parses header lines into h until the blank separator.
// The in-band tracing and deadline headers are diverted into the
// trace/span/deadline sinks when provided (never materialized as header
// strings — the zero-alloc keep-alive path depends on that); with a nil
// sink they land in h like any other field.
func readHeaderInto(br *bufio.Reader, h *Header, trace, span *uint64, deadline *int64) error {
	for i := 0; ; i++ {
		if i >= maxHeaderLines {
			return ErrHeaderTooLarge
		}
		line, err := readLineBytes(br)
		if err != nil {
			return fmt.Errorf("reading header: %w", err)
		}
		if len(line) == 0 {
			return nil
		}
		idx := bytes.IndexByte(line, ':')
		if idx <= 0 {
			return fmt.Errorf("%w: header %q", ErrMalformedRequest, line)
		}
		key := canonFieldKey(line[:idx])
		if key == "X-Dist-Trace" && trace != nil {
			*trace, _ = parseHex(bytes.TrimSpace(line[idx+1:]))
			continue
		}
		if key == "X-Dist-Span" && span != nil {
			*span, _ = parseHex(bytes.TrimSpace(line[idx+1:]))
			continue
		}
		if key == "X-Dist-Deadline" && deadline != nil {
			*deadline, _ = ParseDeadline(bytes.TrimSpace(line[idx+1:]))
			continue
		}
		val := internValue(bytes.TrimSpace(line[idx+1:]))
		h.setCanonical(key, val)
	}
}

// ReadRequest parses one request from br. io.EOF is returned unwrapped when
// the connection closes cleanly before any byte of a new request.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	req := &Request{Header: make(Header, 0, 8)}
	if err := ReadRequestInto(br, req); err != nil {
		return nil, err
	}
	return req, nil
}

// ReadRequestInto parses one request from br into req, reusing req's
// header and body storage — the allocation-free path for keep-alive loops.
// io.EOF is returned unwrapped when the connection closes cleanly before
// any byte of a new request.
func ReadRequestInto(br *bufio.Reader, req *Request) error {
	req.reset()
	line, err := readLineBytes(br)
	if err != nil {
		if err == io.EOF && len(line) == 0 {
			return io.EOF
		}
		return fmt.Errorf("reading request line: %w", err)
	}
	sp1 := bytes.IndexByte(line, ' ')
	if sp1 <= 0 {
		return fmt.Errorf("%w: %q", ErrMalformedRequest, line)
	}
	rest := line[sp1+1:]
	sp2 := bytes.IndexByte(rest, ' ')
	if sp2 <= 0 {
		return fmt.Errorf("%w: %q", ErrMalformedRequest, line)
	}
	proto := rest[sp2+1:]
	switch string(proto) {
	case Proto11:
		req.Proto = Proto11
	case Proto10:
		req.Proto = Proto10
	default:
		return fmt.Errorf("%w: %q", ErrUnsupportedProto, proto)
	}
	req.Method = internMethod(line[:sp1])
	req.Target = string(rest[:sp2])
	req.Path, req.Query, _ = strings.Cut(req.Target, "?")

	if err := readHeaderInto(br, &req.Header, &req.TraceID, nil, &req.Deadline); err != nil {
		return err
	}

	if cl := req.Header.Get("Content-Length"); cl != "" {
		n, err := strconv.ParseInt(cl, 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("%w: content-length %q", ErrMalformedRequest, cl)
		}
		req.Body = grow(req.Body, n)
		if _, err := io.ReadFull(br, req.Body); err != nil {
			return fmt.Errorf("reading body: %w", err)
		}
	}
	return nil
}

// grow returns b resized to n bytes, reusing its backing array when large
// enough.
func grow(b []byte, n int64) []byte {
	if int64(cap(b)) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

// WriteRequest serializes req to w in wire format: the request head is
// staged into a pooled buffer and goes out together with the body as one
// vectored write.
func (p *Pools) WriteRequest(w io.Writer, req *Request) error {
	hb := p.acquireHeaderBuf()
	defer p.releaseHeaderBuf(hb)
	head := appendRequestHead((*hb)[:0], req, req.Proto)
	*hb = head[:0]
	if _, err := p.writeVectored(w, head, req.Body); err != nil {
		return fmt.Errorf("writing request: %w", err)
	}
	return nil
}

// WriteRequest is Pools.WriteRequest on the default pool set.
func WriteRequest(w io.Writer, req *Request) error {
	return defaultPools.WriteRequest(w, req)
}

// WriteProxyRequest forwards req toward a back end: the request is written
// as HTTP/1.1 (so the pre-forked persistent connection survives the
// exchange) with the hop-by-hop Connection header dropped on the wire —
// no header clone, no mutation of req. Head and body leave in one
// vectored write.
func (p *Pools) WriteProxyRequest(w io.Writer, req *Request) error {
	hb := p.acquireHeaderBuf()
	defer p.releaseHeaderBuf(hb)
	head := appendRequestHead((*hb)[:0], req, Proto11)
	*hb = head[:0]
	if _, err := p.writeVectored(w, head, req.Body); err != nil {
		return fmt.Errorf("forwarding request: %w", err)
	}
	return nil
}

// WriteProxyRequest is Pools.WriteProxyRequest on the default pool set.
func WriteProxyRequest(w io.Writer, req *Request) error {
	return defaultPools.WriteProxyRequest(w, req)
}

// Response is a parsed or to-be-written HTTP response.
type Response struct {
	Proto      string
	StatusCode int
	Status     string // reason phrase; derived from StatusCode when empty
	Header     Header
	// Body holds the full body in buffered mode (ReadResponse). In
	// streaming mode (ReadResponseHeader) it is nil and the body remains
	// on the connection, ContentLength bytes long.
	Body []byte
	// ContentLength is the declared body length parsed from the header
	// section (0 when absent). Valid after ReadResponseHeader and
	// ReadResponse.
	ContentLength int64
	// TraceID/SpanID carry the in-band X-Dist-Trace / X-Dist-Span values:
	// a traced backend echoes the request's trace ID and stamps its own
	// service span ID. Parsed into (and emitted from) these fields, never
	// stored as header strings.
	TraceID uint64
	SpanID  uint64
}

// statusText maps the status codes this system emits to reason phrases.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 304:
		return "Not Modified"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	case 502:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	default:
		return "Status " + strconv.Itoa(code)
	}
}

// internStatus returns shared strings for the reason phrases this system
// emits.
func internStatus(b []byte) string {
	switch string(b) {
	case "OK":
		return "OK"
	case "Not Modified":
		return "Not Modified"
	case "Bad Request":
		return "Bad Request"
	case "Not Found":
		return "Not Found"
	case "Internal Server Error":
		return "Internal Server Error"
	case "Bad Gateway":
		return "Bad Gateway"
	case "Service Unavailable":
		return "Service Unavailable"
	}
	return string(b)
}

// KeepAlive reports whether the connection persists after this response,
// by the same version-dependent rules as Request.KeepAlive.
func (r *Response) KeepAlive() bool {
	return keepAlive(r.Proto, r.Header.Get("Connection"))
}

// NewResponse builds a response with the given status and body, framed with
// a Content-Length so it can be carried on a persistent connection.
func NewResponse(proto string, code int, body []byte) *Response {
	resp := &Response{
		Proto:         proto,
		StatusCode:    code,
		Header:        make(Header, 0, 4),
		Body:          body,
		ContentLength: int64(len(body)),
	}
	resp.Header.Set("Content-Length", strconv.Itoa(len(body)))
	return resp
}

// writeStatusLine emits "proto code status\r\n".
func writeStatusLine(bw *bufio.Writer, proto string, code int, status string) {
	if status == "" {
		status = statusText(code)
	}
	_, _ = bw.WriteString(proto)
	_ = bw.WriteByte(' ')
	writeInt(bw, int64(code))
	_ = bw.WriteByte(' ')
	_, _ = bw.WriteString(status)
	_, _ = bw.WriteString("\r\n")
}

// WriteResponse serializes resp to w, forcing a correct Content-Length.
// Headers go out in insertion order (any stale Content-Length field is
// skipped, not cloned around), and the body — typically an aliased slice
// of the backend's page cache — is written without copying.
func WriteResponse(w io.Writer, resp *Response) error {
	bw := acquireWriter(w)
	defer releaseWriter(bw)
	writeStatusLine(bw, resp.Proto, resp.StatusCode, resp.Status)
	resp.Header.writeFields(bw, "Content-Length", "")
	writeTraceFields(bw, resp)
	_, _ = bw.WriteString("Content-Length: ")
	writeInt(bw, int64(len(resp.Body)))
	_, _ = bw.WriteString("\r\n\r\n")
	_, _ = bw.Write(resp.Body)
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("writing response: %w", err)
	}
	return nil
}

// writeTraceFields emits the in-band tracing headers from resp's fields.
func writeTraceFields(bw *bufio.Writer, resp *Response) {
	if resp.TraceID != 0 {
		_, _ = bw.WriteString("X-Dist-Trace: ")
		writeHex(bw, resp.TraceID)
		_, _ = bw.WriteString("\r\n")
	}
	if resp.SpanID != 0 {
		_, _ = bw.WriteString("X-Dist-Span: ")
		writeHex(bw, resp.SpanID)
		_, _ = bw.WriteString("\r\n")
	}
}

// writeHex emits v as lowercase hex without allocating, digits routed
// through WriteByte for the same escape-analysis reason as writeInt.
func writeHex(bw *bufio.Writer, v uint64) {
	var scratch [16]byte
	i := len(scratch)
	for {
		i--
		d := byte(v & 0xf)
		if d < 10 {
			scratch[i] = '0' + d
		} else {
			scratch[i] = 'a' + d - 10
		}
		v >>= 4
		if v == 0 {
			break
		}
	}
	for ; i < len(scratch); i++ {
		_ = bw.WriteByte(scratch[i])
	}
}

// parseHex parses an unsigned hex value from wire bytes without
// allocating.
func parseHex(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 16 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		n <<= 4
		switch {
		case c >= '0' && c <= '9':
			n |= uint64(c - '0')
		case c >= 'a' && c <= 'f':
			n |= uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			n |= uint64(c-'A') + 10
		default:
			return 0, false
		}
	}
	return n, true
}

// parseDecimal parses an unsigned decimal from wire bytes without
// allocating.
func parseDecimal(b []byte) (int64, bool) {
	if len(b) == 0 || len(b) > 18 {
		return 0, false
	}
	var n int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
	}
	return n, true
}

// ReadResponseHeader parses the status line and header section from br,
// leaving the body unread on the connection — the streaming half of the
// relay fast path. The caller owns reading exactly ContentLength further
// bytes (CopyBody) before the connection can carry another exchange.
func ReadResponseHeader(br *bufio.Reader) (*Response, error) {
	line, err := readLineBytes(br)
	if err != nil {
		if err == io.EOF && len(line) == 0 {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("reading status line: %w", err)
	}
	sp1 := bytes.IndexByte(line, ' ')
	if sp1 <= 0 {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformedRequest, line)
	}
	resp := &Response{Header: make(Header, 0, 8)}
	switch string(line[:sp1]) {
	case Proto11:
		resp.Proto = Proto11
	case Proto10:
		resp.Proto = Proto10
	default:
		return nil, fmt.Errorf("%w: status line %q", ErrMalformedRequest, line)
	}
	rest := line[sp1+1:]
	codeBytes := rest
	if sp2 := bytes.IndexByte(rest, ' '); sp2 >= 0 {
		codeBytes = rest[:sp2]
		resp.Status = internStatus(rest[sp2+1:])
	}
	code, ok := parseDecimal(codeBytes)
	if !ok {
		return nil, fmt.Errorf("%w: status code %q", ErrMalformedRequest, codeBytes)
	}
	resp.StatusCode = int(code)
	if err := readHeaderInto(br, &resp.Header, &resp.TraceID, &resp.SpanID, nil); err != nil {
		return nil, err
	}
	if cl := resp.Header.Get("Content-Length"); cl != "" {
		n, err := strconv.ParseInt(cl, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: content-length %q", ErrMalformedRequest, cl)
		}
		resp.ContentLength = n
	}
	return resp, nil
}

// ReadResponse parses one response from br, requiring Content-Length
// framing (the only framing this system's servers emit) and buffering the
// whole body. The management, NFS and test-client paths use this; the
// distributor's relay streams instead (ReadResponseHeader + CopyBody).
func ReadResponse(br *bufio.Reader) (*Response, error) {
	resp, err := ReadResponseHeader(br)
	if err != nil {
		return nil, err
	}
	if cl := resp.Header.Get("Content-Length"); cl != "" {
		resp.Body = make([]byte, resp.ContentLength)
		if _, err := io.ReadFull(br, resp.Body); err != nil {
			return nil, fmt.Errorf("reading body: %w", err)
		}
	}
	return resp, nil
}

// readLineBytes reads a CRLF- or LF-terminated line, returning it without
// the terminator. The returned slice aliases br's buffer and is only valid
// until the next read; lines longer than the buffer spill into an owned
// allocation.
func readLineBytes(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		owned := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull {
			line, err = br.ReadSlice('\n')
			owned = append(owned, line...)
		}
		line = owned
	}
	if err != nil {
		return line, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}
