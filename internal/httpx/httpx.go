// Package httpx implements the small slice of HTTP/1.0 and HTTP/1.1 the
// system needs: request parsing, response framing and keep-alive semantics.
//
// The content-aware distributor must see the request line before it can
// route (§2.2), and it reuses pre-forked persistent connections (HTTP/1.1
// keep-alive) toward the back ends, so the library controls message framing
// itself instead of delegating to net/http's transport pooling, whose
// connection management would hide exactly the mechanism the paper builds.
package httpx

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Protocol versions understood by the parser.
const (
	Proto10 = "HTTP/1.0"
	Proto11 = "HTTP/1.1"
)

// Errors returned by the parser.
var (
	// ErrMalformedRequest reports an unparsable request line or header.
	ErrMalformedRequest = errors.New("httpx: malformed request")
	// ErrUnsupportedProto reports an HTTP version other than 1.0/1.1.
	ErrUnsupportedProto = errors.New("httpx: unsupported protocol version")
	// ErrHeaderTooLarge reports a header section beyond the size limit.
	ErrHeaderTooLarge = errors.New("httpx: header section too large")
)

// maxHeaderLines bounds the header section to keep a malicious client from
// holding distributor memory hostage.
const maxHeaderLines = 128

// Header is a case-insensitive single-valued header map. Keys are stored
// canonicalized by textproto rules (Content-Length, Host, ...).
type Header map[string]string

// CanonicalKey normalizes a header name: first letter and letters after '-'
// upper-cased, the rest lower-cased.
func CanonicalKey(k string) string {
	b := []byte(k)
	upper := true
	for i, c := range b {
		if upper && 'a' <= c && c <= 'z' {
			b[i] = c - ('a' - 'A')
		} else if !upper && 'A' <= c && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
		upper = c == '-'
	}
	return string(b)
}

// Get returns the value for key, canonicalizing the lookup.
func (h Header) Get(key string) string { return h[CanonicalKey(key)] }

// Set stores value under the canonicalized key.
func (h Header) Set(key, value string) { h[CanonicalKey(key)] = value }

// Del removes the canonicalized key.
func (h Header) Del(key string) { delete(h, CanonicalKey(key)) }

// Clone returns a deep copy of the header map.
func (h Header) Clone() Header {
	out := make(Header, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// writeSorted emits headers in sorted key order for deterministic output.
func (h Header) writeSorted(w *bufio.Writer) error {
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s: %s\r\n", k, h[k]); err != nil {
			return err
		}
	}
	return nil
}

// Request is a parsed HTTP request.
type Request struct {
	Method string
	// Target is the request-target as sent (path plus optional query).
	Target string
	// Path is Target with any query string removed.
	Path string
	// Query is the raw query string (no leading '?'), empty if none.
	Query  string
	Proto  string
	Header Header
	// Body holds the request body when Content-Length was present.
	Body []byte
}

// KeepAlive reports whether the connection should persist after this
// request under HTTP/1.0 ("Connection: keep-alive" opt-in) or HTTP/1.1
// ("Connection: close" opt-out) rules.
func (r *Request) KeepAlive() bool {
	conn := strings.ToLower(r.Header.Get("Connection"))
	switch r.Proto {
	case Proto11:
		return conn != "close"
	case Proto10:
		return conn == "keep-alive"
	default:
		return false
	}
}

// IsDynamic reports whether the request targets executable content by the
// path conventions the paper's workloads use (CGI scripts and ASP pages).
func (r *Request) IsDynamic() bool {
	return strings.Contains(r.Path, "/cgi-bin/") ||
		strings.HasSuffix(r.Path, ".cgi") ||
		strings.HasSuffix(r.Path, ".asp")
}

// ReadRequest parses one request from br. io.EOF is returned unwrapped when
// the connection closes cleanly before any byte of a new request.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		if err == io.EOF && line == "" {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("reading request line: %w", err)
	}
	method, rest, ok1 := strings.Cut(line, " ")
	target, proto, ok2 := strings.Cut(rest, " ")
	if !ok1 || !ok2 || method == "" || target == "" {
		return nil, fmt.Errorf("%w: %q", ErrMalformedRequest, line)
	}
	if proto != Proto10 && proto != Proto11 {
		return nil, fmt.Errorf("%w: %q", ErrUnsupportedProto, proto)
	}
	req := &Request{
		Method: method,
		Target: target,
		Proto:  proto,
		Header: make(Header, 8),
	}
	req.Path, req.Query, _ = strings.Cut(target, "?")

	for i := 0; ; i++ {
		if i >= maxHeaderLines {
			return nil, ErrHeaderTooLarge
		}
		line, err := readLine(br)
		if err != nil {
			return nil, fmt.Errorf("reading header: %w", err)
		}
		if line == "" {
			break
		}
		key, value, ok := strings.Cut(line, ":")
		if !ok || key == "" {
			return nil, fmt.Errorf("%w: header %q", ErrMalformedRequest, line)
		}
		req.Header.Set(key, strings.TrimSpace(value))
	}

	if cl := req.Header.Get("Content-Length"); cl != "" {
		n, err := strconv.ParseInt(cl, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: content-length %q", ErrMalformedRequest, cl)
		}
		req.Body = make([]byte, n)
		if _, err := io.ReadFull(br, req.Body); err != nil {
			return nil, fmt.Errorf("reading body: %w", err)
		}
	}
	return req, nil
}

// WriteRequest serializes req to w in wire format.
func WriteRequest(w io.Writer, req *Request) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s %s %s\r\n", req.Method, req.Target, req.Proto); err != nil {
		return fmt.Errorf("writing request line: %w", err)
	}
	hdr := req.Header
	if len(req.Body) > 0 {
		hdr = hdr.Clone()
		hdr.Set("Content-Length", strconv.Itoa(len(req.Body)))
	}
	if err := hdr.writeSorted(bw); err != nil {
		return fmt.Errorf("writing headers: %w", err)
	}
	if _, err := bw.WriteString("\r\n"); err != nil {
		return fmt.Errorf("writing header terminator: %w", err)
	}
	if len(req.Body) > 0 {
		if _, err := bw.Write(req.Body); err != nil {
			return fmt.Errorf("writing body: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flushing request: %w", err)
	}
	return nil
}

// Response is a parsed or to-be-written HTTP response.
type Response struct {
	Proto      string
	StatusCode int
	Status     string // reason phrase; derived from StatusCode when empty
	Header     Header
	Body       []byte
}

// statusText maps the status codes this system emits to reason phrases.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	case 502:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	default:
		return "Status " + strconv.Itoa(code)
	}
}

// KeepAlive reports whether the connection persists after this response,
// by the same version-dependent rules as Request.KeepAlive.
func (r *Response) KeepAlive() bool {
	conn := strings.ToLower(r.Header.Get("Connection"))
	switch r.Proto {
	case Proto11:
		return conn != "close"
	case Proto10:
		return conn == "keep-alive"
	default:
		return false
	}
}

// NewResponse builds a response with the given status and body, framed with
// a Content-Length so it can be carried on a persistent connection.
func NewResponse(proto string, code int, body []byte) *Response {
	resp := &Response{
		Proto:      proto,
		StatusCode: code,
		Header:     make(Header, 4),
		Body:       body,
	}
	resp.Header.Set("Content-Length", strconv.Itoa(len(body)))
	return resp
}

// WriteResponse serializes resp to w, forcing a correct Content-Length.
func WriteResponse(w io.Writer, resp *Response) error {
	bw := bufio.NewWriter(w)
	status := resp.Status
	if status == "" {
		status = statusText(resp.StatusCode)
	}
	if _, err := fmt.Fprintf(bw, "%s %d %s\r\n", resp.Proto, resp.StatusCode, status); err != nil {
		return fmt.Errorf("writing status line: %w", err)
	}
	hdr := resp.Header
	if hdr == nil {
		hdr = make(Header, 1)
	} else {
		hdr = hdr.Clone()
	}
	hdr.Set("Content-Length", strconv.Itoa(len(resp.Body)))
	if err := hdr.writeSorted(bw); err != nil {
		return fmt.Errorf("writing headers: %w", err)
	}
	if _, err := bw.WriteString("\r\n"); err != nil {
		return fmt.Errorf("writing header terminator: %w", err)
	}
	if _, err := bw.Write(resp.Body); err != nil {
		return fmt.Errorf("writing body: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flushing response: %w", err)
	}
	return nil
}

// ReadResponse parses one response from br, requiring Content-Length
// framing (the only framing this system's servers emit).
func ReadResponse(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br)
	if err != nil {
		if err == io.EOF && line == "" {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("reading status line: %w", err)
	}
	proto, rest, ok := strings.Cut(line, " ")
	if !ok || (proto != Proto10 && proto != Proto11) {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformedRequest, line)
	}
	codeStr, status, _ := strings.Cut(rest, " ")
	code, err := strconv.Atoi(codeStr)
	if err != nil {
		return nil, fmt.Errorf("%w: status code %q", ErrMalformedRequest, codeStr)
	}
	resp := &Response{
		Proto:      proto,
		StatusCode: code,
		Status:     status,
		Header:     make(Header, 8),
	}
	for i := 0; ; i++ {
		if i >= maxHeaderLines {
			return nil, ErrHeaderTooLarge
		}
		line, err := readLine(br)
		if err != nil {
			return nil, fmt.Errorf("reading header: %w", err)
		}
		if line == "" {
			break
		}
		key, value, ok := strings.Cut(line, ":")
		if !ok || key == "" {
			return nil, fmt.Errorf("%w: header %q", ErrMalformedRequest, line)
		}
		resp.Header.Set(key, strings.TrimSpace(value))
	}
	if cl := resp.Header.Get("Content-Length"); cl != "" {
		n, err := strconv.ParseInt(cl, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: content-length %q", ErrMalformedRequest, cl)
		}
		resp.Body = make([]byte, n)
		if _, err := io.ReadFull(br, resp.Body); err != nil {
			return nil, fmt.Errorf("reading body: %w", err)
		}
	}
	return resp, nil
}

// readLine reads a CRLF- or LF-terminated line, returning it without the
// terminator.
func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return line, err
	}
	line = strings.TrimSuffix(line, "\n")
	line = strings.TrimSuffix(line, "\r")
	return line, nil
}
