package httpx

import (
	"io"
	"net"
	"strconv"
)

// This file is the vectored-write half of the relay fast path (relay v3):
// instead of pushing the status line, each header field and the first body
// chunk through a bufio.Writer (3-4 small write syscalls per exchange), the
// header section is staged into a pooled byte slice with append helpers and
// handed to the kernel together with the first body chunk as one writev(2)
// via net.Buffers. The append helpers mirror the bufio-based writeInt/
// writeHex/writeStatusLine exactly; strconv's Append functions write into
// the staging buffer's existing capacity, so the hot path allocates
// nothing.

// appendField appends one "Key: value\r\n" line.
func appendField(b []byte, key, value string) []byte {
	b = append(b, key...)
	b = append(b, ": "...)
	b = append(b, value...)
	return append(b, "\r\n"...)
}

// appendFields appends every field in insertion order, skipping the given
// canonical keys (hop-by-hop or recomputed fields).
func (h Header) appendFields(b []byte, skip1, skip2 string) []byte {
	for i := range h {
		if h[i].Key == skip1 || h[i].Key == skip2 {
			continue
		}
		b = appendField(b, h[i].Key, h[i].Value)
	}
	return b
}

// appendStatusLine appends "proto code status\r\n".
func appendStatusLine(b []byte, proto string, code int, status string) []byte {
	if status == "" {
		status = statusText(code)
	}
	b = append(b, proto...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(code), 10)
	b = append(b, ' ')
	b = append(b, status...)
	return append(b, "\r\n"...)
}

// appendTraceFields appends the in-band tracing headers from resp's
// fields, the staging twin of writeTraceFields.
func appendTraceFields(b []byte, resp *Response) []byte {
	if resp.TraceID != 0 {
		b = append(b, "X-Dist-Trace: "...)
		b = strconv.AppendUint(b, resp.TraceID, 16)
		b = append(b, "\r\n"...)
	}
	if resp.SpanID != 0 {
		b = append(b, "X-Dist-Span: "...)
		b = strconv.AppendUint(b, resp.SpanID, 16)
		b = append(b, "\r\n"...)
	}
	return b
}

// appendResponseHeader stages the full relayed header section: status
// line, forwarded fields (Connection and Content-Length rewritten, resp
// not mutated), trace fields, and the recomputed Content-Length with the
// terminating blank line.
func appendResponseHeader(b []byte, resp *Response, clientProto string, forceClose bool) []byte {
	b = appendStatusLine(b, clientProto, resp.StatusCode, resp.Status)
	b = resp.Header.appendFields(b, "Connection", "Content-Length")
	if forceClose {
		b = append(b, "Connection: close\r\n"...)
	} else if c := resp.Header.Get("Connection"); c != "" {
		b = appendField(b, "Connection", c)
	}
	b = appendTraceFields(b, resp)
	b = append(b, "Content-Length: "...)
	b = strconv.AppendInt(b, resp.ContentLength, 10)
	return append(b, "\r\n\r\n"...)
}

// appendRequestHead stages the request line and header section. When
// written as a proxy request (proto differs from req.Proto) the Connection
// header is dropped; when a body is present Content-Length is recomputed.
func appendRequestHead(b []byte, req *Request, proto string) []byte {
	b = append(b, req.Method...)
	b = append(b, ' ')
	b = append(b, req.Target...)
	b = append(b, ' ')
	b = append(b, proto...)
	b = append(b, "\r\n"...)
	skipConn := ""
	if proto != req.Proto {
		skipConn = "Connection"
	}
	if len(req.Body) > 0 {
		b = req.Header.appendFields(b, "Content-Length", skipConn)
		b = append(b, "Content-Length: "...)
		b = strconv.AppendInt(b, int64(len(req.Body)), 10)
		b = append(b, "\r\n"...)
	} else {
		b = req.Header.appendFields(b, skipConn, "")
	}
	if req.TraceID != 0 {
		b = append(b, "X-Dist-Trace: "...)
		b = strconv.AppendUint(b, req.TraceID, 16)
		b = append(b, "\r\n"...)
	}
	if req.Deadline > 0 {
		b = append(b, "X-Dist-Deadline: "...)
		b = AppendDeadline(b, req.Deadline)
		b = append(b, "\r\n"...)
	}
	return append(b, "\r\n"...)
}

// writeVectored writes head then body as one logical write. On a real
// *net.TCPConn both segments go out in a single writev(2) (net.Buffers;
// the runtime loops over partial writevs internally). Any other writer —
// fault-injection wrappers, test doubles, TLS — takes a sequential path
// that retries short writes per segment, so a writer returning n < len(p)
// with a nil error (the fault injector's MaxWriteChunk does) can never
// reorder or drop bytes the way net.Buffers' generic fallback would.
func (p *Pools) writeVectored(w io.Writer, head, body []byte) (int64, error) {
	if tc, ok := w.(*net.TCPConn); ok && len(body) > 0 {
		vp := p.bufvecs.Get().(*net.Buffers)
		full := append((*vp)[:0], head, body)
		*vp = full
		// WriteTo consumes the vector (advances *vp as segments drain), so
		// restore the full backing array — with the segment references
		// dropped, so pooling the vector doesn't pin the buffers — before
		// putting it back.
		n, err := vp.WriteTo(tc)
		full[0], full[1] = nil, nil
		*vp = full[:0]
		p.bufvecs.Put(vp)
		return n, err
	}
	var n int64
	for _, seg := range [2][]byte{head, body} {
		for len(seg) > 0 {
			nn, err := w.Write(seg)
			n += int64(nn)
			if err != nil {
				return n, err
			}
			if nn == 0 {
				return n, io.ErrShortWrite
			}
			seg = seg[nn:]
		}
	}
	return n, nil
}
