package httpx

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseDeadline(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"1", 1, true},
		{"ff", 255, true},
		{"16f31d1a2b3c4d5e", 0x16f31d1a2b3c4d5e, true},
		{"7fffffffffffffff", 1<<63 - 1, true},
		{"8000000000000000", 0, false}, // overflows int64
		{"", 0, false},
		{"xyz", 0, false},
		{"11112222333344445", 0, false}, // 17 digits
	}
	for _, c := range cases {
		got, ok := ParseDeadline([]byte(c.in))
		if got != c.want || ok != c.ok {
			t.Errorf("ParseDeadline(%q) = (%d, %v), want (%d, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestAppendDeadlineRoundTrip(t *testing.T) {
	for _, ns := range []int64{1, 42, 1<<40 + 12345, 1<<63 - 1} {
		b := AppendDeadline(nil, ns)
		got, ok := ParseDeadline(b)
		if !ok || got != ns {
			t.Errorf("round trip %d: got (%d, %v) from %q", ns, got, ok, b)
		}
	}
	if b := AppendDeadline(nil, 0); len(b) != 0 {
		t.Errorf("AppendDeadline(0) emitted %q, want nothing", b)
	}
	if b := AppendDeadline(nil, -5); len(b) != 0 {
		t.Errorf("AppendDeadline(-5) emitted %q, want nothing", b)
	}
}

func TestDeadlineHelpersAllocFree(t *testing.T) {
	buf := make([]byte, 0, 32)
	val := []byte("16f31d1a2b3c4d5e")
	allocs := testing.AllocsPerRun(100, func() {
		buf = AppendDeadline(buf[:0], 0x16f31d1a2b3c4d5e)
		if _, ok := ParseDeadline(val); !ok {
			t.Fatal("parse failed")
		}
	})
	if allocs != 0 {
		t.Errorf("deadline parse/emit allocated %.1f per run, want 0", allocs)
	}
}

// TestRequestDeadlineWireRoundTrip drives the deadline through the full
// request serialization path: stamped on a request, emitted as
// X-Dist-Deadline, parsed back into the Deadline field (never into the
// Header slice), and cleared by reset.
func TestRequestDeadlineWireRoundTrip(t *testing.T) {
	const ns = int64(1757300000123456789)
	req := &Request{
		Method: "GET", Target: "/a.html", Path: "/a.html", Proto: Proto11,
		Header:   NewHeader("Host", "x"),
		TraceID:  0xabc,
		Deadline: ns,
	}
	var wire bytes.Buffer
	if err := WriteRequest(&wire, req); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	if !strings.Contains(wire.String(), "X-Dist-Deadline: ") {
		t.Fatalf("wire form missing deadline header:\n%s", wire.String())
	}

	parsed, err := ReadRequest(bufio.NewReader(bytes.NewReader(wire.Bytes())))
	if err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	if parsed.Deadline != ns {
		t.Fatalf("parsed deadline = %d, want %d", parsed.Deadline, ns)
	}
	if v := parsed.Header.Get("X-Dist-Deadline"); v != "" {
		t.Fatalf("deadline leaked into header slice: %q", v)
	}

	parsed.reset()
	if parsed.Deadline != 0 {
		t.Fatalf("reset kept deadline %d", parsed.Deadline)
	}
}

func TestRequestDeadlineAccessors(t *testing.T) {
	now := time.Unix(100, 0)
	var r Request
	if r.DeadlineExpired(now) || !r.DeadlineTime().IsZero() || r.DeadlineRemaining(now) != 0 {
		t.Fatal("zero request should have no deadline semantics")
	}
	r.TightenDeadline(now.Add(time.Second))
	if r.Deadline != now.Add(time.Second).UnixNano() {
		t.Fatalf("TightenDeadline from zero: got %d", r.Deadline)
	}
	// Tightening later never loosens.
	r.TightenDeadline(now.Add(2 * time.Second))
	if r.Deadline != now.Add(time.Second).UnixNano() {
		t.Fatalf("TightenDeadline loosened to %d", r.Deadline)
	}
	r.TightenDeadline(now.Add(500 * time.Millisecond))
	if r.Deadline != now.Add(500*time.Millisecond).UnixNano() {
		t.Fatalf("TightenDeadline did not tighten: %d", r.Deadline)
	}
	if r.DeadlineExpired(now) {
		t.Fatal("deadline should not be expired yet")
	}
	if got := r.DeadlineRemaining(now); got != 500*time.Millisecond {
		t.Fatalf("remaining = %v, want 500ms", got)
	}
	if !r.DeadlineExpired(now.Add(time.Second)) {
		t.Fatal("deadline should be expired")
	}
}
