package httpx

// HTTP validators and cache-serving support (the RFC 7232/7234 slice this
// system needs): strong entity tags derived from content, HTTP-date
// formatting with a per-second cache, If-None-Match / If-Modified-Since
// evaluation, and a zero-allocation serializer for stored responses that
// emits Date, Age and conditional 304s. The distributor's hot-content
// cache is the main consumer, but the helpers are layer-agnostic: the
// back-end servers use the same evaluation for conditional requests so
// the front end can revalidate expired entries against them.

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"
)

// TimeFormat is the HTTP-date layout (RFC 7231 IMF-fixdate). Times must be
// rendered in UTC.
const TimeFormat = "Mon, 02 Jan 2006 15:04:05 GMT"

// FormatHTTPTime renders t as an HTTP-date.
func FormatHTTPTime(t time.Time) string {
	return t.UTC().Format(TimeFormat)
}

// ParseHTTPTime parses an HTTP-date, accepting the obsolete RFC 850 and
// asctime layouts a legacy client might still send.
func ParseHTTPTime(s string) (time.Time, error) {
	for _, layout := range []string{TimeFormat, time.RFC850, time.ANSIC} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("%w: http-date %q", ErrMalformedRequest, s)
}

// cachedDate is the per-second formatted Date value, so emitting a Date
// header on every response costs one allocation per second, not per
// request.
type cachedDate struct {
	unix int64
	s    string
}

var currentDate atomic.Pointer[cachedDate]

// CurrentDate returns the HTTP-date for the current wall-clock second. The
// formatted string is cached until the second rolls over.
func CurrentDate() string {
	now := time.Now()
	sec := now.Unix()
	if d := currentDate.Load(); d != nil && d.unix == sec {
		return d.s
	}
	d := &cachedDate{unix: sec, s: FormatHTTPTime(now)}
	currentDate.Store(d)
	return d.s
}

// fnv64a hashes b with FNV-1a (64-bit).
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

const hexDigits = "0123456789abcdef"

// StrongETag derives a strong entity tag from the content bytes: a quoted
// 16-hex-digit FNV-1a digest prefixed with the body length, so two bodies
// differing in length or bytes get different tags. Both the back ends and
// the distributor's cache derive tags with this function, which is what
// makes front-end revalidation against any replica work.
func StrongETag(body []byte) string {
	h := fnv64a(body)
	var buf [28]byte
	buf[0] = '"'
	n := 1
	// length prefix in hex
	l := uint64(len(body))
	var lh [16]byte
	li := len(lh)
	for {
		li--
		lh[li] = hexDigits[l&0xf]
		l >>= 4
		if l == 0 {
			break
		}
	}
	n += copy(buf[n:], lh[li:])
	buf[n] = '-'
	n++
	for shift := 60; shift >= 0; shift -= 4 {
		buf[n] = hexDigits[(h>>uint(shift))&0xf]
		n++
	}
	buf[n] = '"'
	n++
	return string(buf[:n])
}

// ETagMatch evaluates an If-None-Match header value against etag using the
// weak comparison (a W/ prefix on either side is ignored): "*" matches any
// current representation, otherwise the comma-separated list is scanned
// for a tag equal to etag.
func ETagMatch(headerValue, etag string) bool {
	if headerValue == "" || etag == "" {
		return false
	}
	if headerValue == "*" {
		return true
	}
	etag = strings.TrimPrefix(etag, "W/")
	for headerValue != "" {
		var candidate string
		if i := strings.IndexByte(headerValue, ','); i >= 0 {
			candidate, headerValue = headerValue[:i], headerValue[i+1:]
		} else {
			candidate, headerValue = headerValue, ""
		}
		candidate = strings.TrimSpace(candidate)
		if strings.TrimPrefix(candidate, "W/") == etag {
			return true
		}
	}
	return false
}

// NotModified reports whether a conditional request carrying h should be
// answered 304 for a representation with the given validators. Per RFC
// 7232 §6, If-None-Match takes precedence over If-Modified-Since; a zero
// lastModified disables the date check.
func NotModified(h Header, etag string, lastModified time.Time) bool {
	if inm := h.Get("If-None-Match"); inm != "" {
		return ETagMatch(inm, etag)
	}
	ims := h.Get("If-Modified-Since")
	if ims == "" || lastModified.IsZero() {
		return false
	}
	t, err := ParseHTTPTime(ims)
	if err != nil {
		return false
	}
	// HTTP dates have one-second resolution: not modified when the
	// representation's change time is no later than the client's copy.
	return !lastModified.Truncate(time.Second).After(t)
}

// Stored is a response retained for later replay: the immutable pieces of
// a 200 the front end cached, with its validators pre-rendered so serving
// allocates nothing. Construct the validator strings with StrongETag and
// FormatHTTPTime.
type Stored struct {
	StatusCode  int
	ContentType string
	// ETag is the strong validator (quoted, as it appears on the wire).
	ETag string
	// LastModified is the pre-rendered HTTP-date of the representation's
	// change time ("" omits the header).
	LastModified string
	// Date is the pre-rendered origination date of the stored response.
	Date string
	Body []byte
}

// ServeOptions shapes one replay of a Stored response.
type ServeOptions struct {
	// Proto is the client's protocol version (the status line's).
	Proto string
	// Head omits the body while keeping the Content-Length of the full
	// representation (a HEAD reply).
	Head bool
	// NotModified replays the response as a bodyless 304 carrying only
	// the validators (the client's conditional matched).
	NotModified bool
	// AgeSeconds emits an Age header when >= 0 (RFC 7234 §5.1: the time
	// the response has spent in caches).
	AgeSeconds int64
	// CacheStatus emits an X-Dist-Cache header when non-empty (HIT,
	// MISS, STALE, REVALIDATED — the front-end cache's verdict).
	CacheStatus string
	// ForceClose appends Connection: close (last response on the
	// connection).
	ForceClose bool
}

// ServeStored writes one replay of s to w. Every byte comes from s's
// pre-rendered strings or stack scratch, so the steady-state hit path of a
// response cache performs zero allocations here.
func ServeStored(w io.Writer, s *Stored, o ServeOptions) error {
	bw := acquireWriter(w)
	defer releaseWriter(bw)
	code := s.StatusCode
	if o.NotModified {
		code = 304
	}
	writeStatusLine(bw, o.Proto, code, "")
	if !o.NotModified && s.ContentType != "" {
		writeField(bw, "Content-Type", s.ContentType)
	}
	if s.ETag != "" {
		writeField(bw, "Etag", s.ETag)
	}
	if s.LastModified != "" {
		writeField(bw, "Last-Modified", s.LastModified)
	}
	if s.Date != "" {
		writeField(bw, "Date", s.Date)
	}
	if o.AgeSeconds >= 0 {
		_, _ = bw.WriteString("Age: ")
		writeInt(bw, o.AgeSeconds)
		_, _ = bw.WriteString("\r\n")
	}
	if o.CacheStatus != "" {
		writeField(bw, "X-Dist-Cache", o.CacheStatus)
	}
	if o.ForceClose {
		_, _ = bw.WriteString("Connection: close\r\n")
	}
	cl := int64(len(s.Body))
	if o.NotModified {
		cl = 0
	}
	_, _ = bw.WriteString("Content-Length: ")
	writeInt(bw, cl)
	_, _ = bw.WriteString("\r\n\r\n")
	if !o.Head && !o.NotModified {
		_, _ = bw.Write(s.Body)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("serving stored response: %w", err)
	}
	return nil
}
