// Package monitor provides node status reporting and failure detection:
// the broker-side status snapshot the status agent returns, and the
// controller-side watcher that periodically probes brokers and reports
// nodes that stop answering (§3.1: the broker "monitors the status — load
// situation, failure — of the managed node").
package monitor

import (
	"sync"
	"time"

	"webcluster/internal/faults"
	"webcluster/internal/journal"
)

// NodeStatus is one node's health/load snapshot.
type NodeStatus struct {
	Node           string  `json:"node"`
	ActiveRequests int64   `json:"activeRequests"`
	StoreObjects   int     `json:"storeObjects"`
	StoreBytes     int64   `json:"storeBytes"`
	CacheHits      int64   `json:"cacheHits"`
	CacheMisses    int64   `json:"cacheMisses"`
	CacheHitRate   float64 `json:"cacheHitRate"`
	RequestsServed int64   `json:"requestsServed"`
	// Service-latency quantiles aggregated across every content class,
	// from the node's live telemetry histograms.
	LatencyP50Ns int64     `json:"latencyP50Ns,omitempty"`
	LatencyP99Ns int64     `json:"latencyP99Ns,omitempty"`
	CollectedAt  time.Time `json:"collectedAt"`
}

// Prober checks one node, returning its status or an error when the node
// is unreachable.
type Prober func(node string) (NodeStatus, error)

// Event is a liveness transition.
type Event struct {
	Node string
	// Up is true on recovery, false on failure.
	Up bool
	// Err is the probe failure on a down event.
	Err error
}

// Watcher periodically probes a set of nodes and emits liveness
// transitions. Construct with NewWatcher; Start launches the loop; Close
// joins it.
type Watcher struct {
	probe    Prober
	interval time.Duration
	onEvent  func(Event)
	faults   *faults.Injector
	jnl      *journal.Journal

	mu     sync.Mutex
	nodes  []string
	alive  map[string]bool
	status map[string]NodeStatus

	closed   chan struct{}
	closeOne sync.Once
	wg       sync.WaitGroup
}

// NewWatcher builds a watcher probing nodes at interval (default 500ms),
// invoking onEvent on each up/down transition (may be nil).
func NewWatcher(nodes []string, probe Prober, interval time.Duration, onEvent func(Event)) *Watcher {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	alive := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		alive[n] = true // optimistic start; first failed probe flips it
	}
	return &Watcher{
		probe:    probe,
		interval: interval,
		onEvent:  onEvent,
		nodes:    append([]string(nil), nodes...),
		alive:    alive,
		status:   make(map[string]NodeStatus, len(nodes)),
		closed:   make(chan struct{}),
	}
}

// SetFaults attaches a fault injector consulted before every probe
// (point "probe/<node>"): a firing rule black-holes the probe, making
// the watcher observe the node as unreachable. Call before Start.
func (w *Watcher) SetFaults(in *faults.Injector) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.faults = in
}

// SetJournal attaches a decision journal: each up↔down transition is
// recorded with the probe evidence (the failing probe's error on a down
// event), and down events open the node's incident trace so failovers,
// plans, and purges triggered by the outage link to it. Call before
// Start.
func (w *Watcher) SetJournal(j *journal.Journal) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.jnl = j
}

// Start launches the probe loop in the background.
func (w *Watcher) Start() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		ticker := time.NewTicker(w.interval)
		defer ticker.Stop()
		for {
			select {
			case <-w.closed:
				return
			case <-ticker.C:
				w.probeAll()
			}
		}
	}()
}

// probeAll probes every node once and records transitions.
func (w *Watcher) probeAll() {
	w.mu.Lock()
	nodes := append([]string(nil), w.nodes...)
	in := w.faults
	jnl := w.jnl
	w.mu.Unlock()
	for _, n := range nodes {
		var (
			st  NodeStatus
			err error
		)
		if err = in.Fail("probe/" + n); err == nil {
			st, err = w.probe(n)
		}
		w.mu.Lock()
		wasAlive := w.alive[n]
		if err == nil {
			w.alive[n] = true
			w.status[n] = st
		} else {
			w.alive[n] = false
		}
		nowAlive := w.alive[n]
		cb := w.onEvent
		w.mu.Unlock()
		if wasAlive != nowAlive {
			if jnl != nil {
				if nowAlive {
					tr := jnl.EndIncident(n)
					jnl.Record(journal.Event{
						Actor: journal.ActorMonitor,
						Kind:  journal.KindNodeUp,
						Trace: tr,
						Node:  n,
					})
				} else {
					detail := err.Error()
					tr := jnl.Incident(n)
					jnl.Record(journal.Event{
						Actor:  journal.ActorMonitor,
						Kind:   journal.KindNodeDown,
						Trace:  tr,
						Node:   n,
						Detail: detail,
					})
				}
			}
			if cb != nil {
				cb(Event{Node: n, Up: nowAlive, Err: err})
			}
		}
	}
}

// ProbeNow runs one synchronous probe round (tests and the console's
// refresh button).
func (w *Watcher) ProbeNow() { w.probeAll() }

// Alive reports the last known liveness of node.
func (w *Watcher) Alive(node string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.alive[node]
}

// Status returns the last collected status for node.
func (w *Watcher) Status(node string) (NodeStatus, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, ok := w.status[node]
	return st, ok
}

// AliveNodes returns all nodes currently believed alive.
func (w *Watcher) AliveNodes() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.nodes))
	for _, n := range w.nodes {
		if w.alive[n] {
			out = append(out, n)
		}
	}
	return out
}

// Close stops the loop and joins it.
func (w *Watcher) Close() {
	w.closeOne.Do(func() { close(w.closed) })
	w.wg.Wait()
}
