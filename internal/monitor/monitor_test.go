package monitor

import (
	"errors"
	"sync"
	"testing"
	"time"

	"webcluster/internal/faults"
	"webcluster/internal/testutil"
)

// fakeProber flips nodes up/down under test control.
type fakeProber struct {
	mu   sync.Mutex
	down map[string]bool
	seen map[string]int
}

func (p *fakeProber) probe(node string) (NodeStatus, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.seen == nil {
		p.seen = make(map[string]int)
	}
	p.seen[node]++
	if p.down[node] {
		return NodeStatus{}, errors.New("unreachable")
	}
	return NodeStatus{Node: node, ActiveRequests: 7}, nil
}

func (p *fakeProber) setDown(node string, down bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down == nil {
		p.down = make(map[string]bool)
	}
	p.down[node] = down
}

func TestProbeCollectsStatus(t *testing.T) {
	p := &fakeProber{}
	w := NewWatcher([]string{"a", "b"}, p.probe, time.Hour, nil)
	w.ProbeNow()
	st, ok := w.Status("a")
	if !ok || st.ActiveRequests != 7 {
		t.Fatalf("status = %+v %v", st, ok)
	}
	if !w.Alive("a") || !w.Alive("b") {
		t.Fatal("healthy nodes not alive")
	}
	if got := w.AliveNodes(); len(got) != 2 {
		t.Fatalf("alive = %v", got)
	}
}

func TestFailureAndRecoveryEvents(t *testing.T) {
	p := &fakeProber{}
	var mu sync.Mutex
	var events []Event
	w := NewWatcher([]string{"a"}, p.probe, time.Hour, func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, e)
	})
	w.ProbeNow() // up: no transition (starts optimistic)
	p.setDown("a", true)
	w.ProbeNow() // down event
	w.ProbeNow() // still down: no extra event
	p.setDown("a", false)
	w.ProbeNow() // up event

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Up || events[0].Node != "a" || events[0].Err == nil {
		t.Fatalf("down event = %+v", events[0])
	}
	if !events[1].Up {
		t.Fatalf("up event = %+v", events[1])
	}
}

func TestAliveNodesExcludesDown(t *testing.T) {
	p := &fakeProber{}
	p.setDown("b", true)
	w := NewWatcher([]string{"a", "b"}, p.probe, time.Hour, nil)
	w.ProbeNow()
	got := w.AliveNodes()
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("alive = %v", got)
	}
	if w.Alive("b") {
		t.Fatal("down node reported alive")
	}
}

func TestBackgroundLoop(t *testing.T) {
	testutil.NoLeaks(t)
	p := &fakeProber{}
	w := NewWatcher([]string{"a"}, p.probe, 5*time.Millisecond, nil)
	w.Start()
	defer w.Close()
	testutil.Eventually(t, time.Second, func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.seen["a"] >= 3
	}, "background loop did not probe repeatedly")
}

func TestProbeBlackholeMarksNodeDown(t *testing.T) {
	testutil.NoLeaks(t)
	p := &fakeProber{}
	in := faults.New(1)
	w := NewWatcher([]string{"a", "b"}, p.probe, time.Hour, nil)
	w.SetFaults(in)
	w.ProbeNow()
	if !w.Alive("a") || !w.Alive("b") {
		t.Fatal("healthy nodes not alive before blackhole")
	}
	// Black-hole node a's probes: the watcher must see it as down
	// without the prober ever being consulted for it.
	in.Set("probe/a", faults.Rule{Refuse: true})
	p.mu.Lock()
	seenBefore := p.seen["a"]
	p.mu.Unlock()
	w.ProbeNow()
	if w.Alive("a") {
		t.Fatal("black-holed node still alive")
	}
	if !w.Alive("b") {
		t.Fatal("unaffected node went down")
	}
	p.mu.Lock()
	seenAfter := p.seen["a"]
	p.mu.Unlock()
	if seenAfter != seenBefore {
		t.Fatal("blackhole leaked a probe through")
	}
	// Lifting the blackhole restores liveness on the next round.
	in.Clear("probe/a")
	w.ProbeNow()
	if !w.Alive("a") {
		t.Fatal("node did not recover after blackhole cleared")
	}
}

func TestCloseStopsLoop(t *testing.T) {
	p := &fakeProber{}
	w := NewWatcher([]string{"a"}, p.probe, time.Millisecond, nil)
	w.Start()
	w.Close()
	p.mu.Lock()
	n1 := p.seen["a"]
	p.mu.Unlock()
	time.Sleep(20 * time.Millisecond)
	p.mu.Lock()
	n2 := p.seen["a"]
	p.mu.Unlock()
	if n2 != n1 {
		t.Fatalf("probes continued after Close: %d → %d", n1, n2)
	}
}

func TestStatusUnknownNode(t *testing.T) {
	w := NewWatcher(nil, (&fakeProber{}).probe, time.Hour, nil)
	if _, ok := w.Status("ghost"); ok {
		t.Fatal("status for unknown node")
	}
}
