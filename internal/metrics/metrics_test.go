package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("counter = %d, want 16000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %g", g.Value())
	}
	g.Set(3.25)
	if g.Value() != 3.25 {
		t.Fatalf("gauge = %g, want 3.25", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Fatalf("gauge = %g, want -1", g.Value())
	}
}

func TestHistogramMean(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 {
		t.Fatal("empty histogram mean not 0")
	}
	h.Observe(10 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	if h.Mean() != 20*time.Millisecond {
		t.Fatalf("mean = %v, want 20ms", h.Mean())
	}
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, time.Millisecond},
		{0.5, 50 * time.Millisecond},
		{0.9, 90 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("q%.2f = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestHistogramQuantileAfterMoreObservations(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Millisecond)
	_ = h.Quantile(0.5) // forces a sort
	h.Observe(time.Millisecond)
	if got := h.Quantile(0); got != time.Millisecond {
		t.Fatalf("min after re-observe = %v, want 1ms", got)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("Reset left samples")
	}
}

// TestPropertyQuantileMonotone: quantiles never decrease in q.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(samples []int16) bool {
		var h Histogram
		for _, s := range samples {
			d := time.Duration(int(s)+40000) * time.Microsecond
			h.Observe(d)
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeterRate(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	m := NewMeterAt(clock)
	m.Mark(10)
	now = now.Add(2 * time.Second)
	if got := m.Rate(); got != 5 {
		t.Fatalf("rate = %g, want 5", got)
	}
	if m.Count() != 10 {
		t.Fatalf("count = %d", m.Count())
	}
}

func TestMeterReset(t *testing.T) {
	now := time.Unix(100, 0)
	m := NewMeterAt(func() time.Time { return now })
	m.Mark(5)
	now = now.Add(time.Second)
	m.Reset()
	if m.Count() != 0 {
		t.Fatal("Reset kept events")
	}
	now = now.Add(time.Second)
	m.Mark(3)
	if got := m.Rate(); got != 3 {
		t.Fatalf("rate after reset = %g, want 3", got)
	}
}

func TestMeterZeroElapsed(t *testing.T) {
	now := time.Unix(0, 0)
	m := NewMeterAt(func() time.Time { return now })
	m.Mark(100)
	if m.Rate() != 0 {
		t.Fatal("rate with zero elapsed should be 0")
	}
}

func TestRegistryClasses(t *testing.T) {
	var r Registry
	r.Class("html").Requests.Inc()
	r.Class("cgi").Requests.Add(2)
	r.Class("html").Errors.Inc()
	got := r.Classes()
	if len(got) != 2 || got[0] != "cgi" || got[1] != "html" {
		t.Fatalf("classes = %v", got)
	}
	if r.Class("html").Requests.Value() != 1 {
		t.Fatal("class bucket not shared")
	}
}

func TestRegistrySummary(t *testing.T) {
	var r Registry
	r.Class("video").Requests.Add(7)
	s := r.Summary()
	if !strings.Contains(s, "video: 7 reqs") {
		t.Fatalf("summary = %q", s)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	var r Registry
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Class("x").Requests.Inc()
			}
		}()
	}
	wg.Wait()
	if r.Class("x").Requests.Value() != 4000 {
		t.Fatalf("requests = %d", r.Class("x").Requests.Value())
	}
}
