// Package metrics provides the measurement primitives used across the
// system: counters, latency histograms, sliding-window throughput meters and
// per-request-class aggregation. The benchmark harness uses these to report
// the same quantities the paper's figures plot (requests served per second,
// broken down by content class).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter safe for concurrent use.
// The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta, which must be non-negative.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value safe for concurrent use.
// The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// reservoirCap bounds how many samples a Histogram retains. Beyond the
// cap, Vitter's algorithm R keeps a uniform random subset, so quantiles
// stay representative while memory stays O(1) no matter how long the
// histogram lives.
const reservoirCap = 4096

// Histogram collects duration observations and reports summary statistics
// from a bounded reservoir. Count and Mean are exact (running tallies);
// quantiles are computed over at most reservoirCap retained samples.
// The zero value is ready to use.
//
// Deprecated for live request paths: this type takes a mutex per observe
// and sorts on every quantile read. Hot paths should use the lock-free
// telemetry.Histogram instead; this one remains for offline summarization
// (benchmark harnesses, replay reports) where exact small-sample
// quantiles and time.Duration ergonomics matter more than contention.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
	count   int64
	sum     time.Duration
	rng     uint64
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if len(h.samples) < reservoirCap {
		h.samples = append(h.samples, d)
		h.sorted = false
		return
	}
	// Algorithm R: replace a random slot with probability cap/count.
	if j := h.nextRand() % uint64(h.count); j < reservoirCap {
		h.samples[j] = d
		h.sorted = false
	}
}

// nextRand steps a splitmix64 sequence; called under h.mu.
func (h *Histogram) nextRand() uint64 {
	h.rng += 0x9e3779b97f4a7c15
	z := h.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Count returns the number of recorded samples (exact, not the retained
// reservoir size).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.count)
}

// Mean returns the arithmetic mean of all observed samples (exact), or 0
// with no samples.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank over
// the retained reservoir, or 0 with no samples. Exact until the
// observation count exceeds the reservoir capacity, estimated after.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Reset discards all samples and tallies.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.sorted = false
	h.count = 0
	h.sum = 0
}

// Meter measures event throughput over a measurement interval, mirroring
// WebBench's requests-per-second metric. Mark is a single atomic add, so
// many workers can share one meter without contending on a lock. The zero
// value is not usable; construct with NewMeter.
type Meter struct {
	startNs atomic.Int64
	events  atomic.Int64
	now     func() time.Time
}

// NewMeter returns a meter using the wall clock.
func NewMeter() *Meter { return NewMeterAt(time.Now) }

// NewMeterAt returns a meter reading time from now, letting simulations
// drive throughput measurement off a virtual clock.
func NewMeterAt(now func() time.Time) *Meter {
	m := &Meter{now: now}
	m.startNs.Store(now().UnixNano())
	return m
}

// Mark records n events.
func (m *Meter) Mark(n int64) { m.events.Add(n) }

// Rate returns events per second since the meter started (or was reset).
func (m *Meter) Rate() float64 {
	elapsed := time.Duration(m.now().UnixNano() - m.startNs.Load()).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.events.Load()) / elapsed
}

// Count returns the number of marked events.
func (m *Meter) Count() int64 { return m.events.Load() }

// Reset zeroes the meter and restarts its measurement interval. Marks
// racing a Reset land on one side or the other of the new interval.
func (m *Meter) Reset() {
	m.events.Store(0)
	m.startNs.Store(m.now().UnixNano())
}

// ClassStats aggregates request outcomes for one content class (static,
// CGI, ASP, video, ...). The zero value is ready to use.
type ClassStats struct {
	Requests Counter
	Bytes    Counter
	Errors   Counter
	Latency  Histogram
}

// Registry groups per-class statistics. The zero value is ready to use.
type Registry struct {
	mu      sync.Mutex
	classes map[string]*ClassStats
}

// Class returns the stats bucket for name, creating it on first use.
func (r *Registry) Class(name string) *ClassStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.classes == nil {
		r.classes = make(map[string]*ClassStats)
	}
	cs, ok := r.classes[name]
	if !ok {
		cs = &ClassStats{}
		r.classes[name] = cs
	}
	return cs
}

// Classes returns the registered class names in sorted order.
func (r *Registry) Classes() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.classes))
	for name := range r.classes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Summary formats one line per class: "class: N reqs, mean latency".
func (r *Registry) Summary() string {
	var out string
	for _, name := range r.Classes() {
		cs := r.Class(name)
		out += fmt.Sprintf("%s: %d reqs, %d errors, mean %v\n",
			name, cs.Requests.Value(), cs.Errors.Value(), cs.Latency.Mean())
	}
	return out
}
