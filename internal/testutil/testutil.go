// Package testutil holds shared test helpers: condition polling
// (Eventually) to replace sleep-based waits, and a goroutine-leak check
// (NoLeaks) enforcing the "no fire-and-forget goroutines" convention of
// DESIGN.md §7.
package testutil

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// Eventually polls cond every few milliseconds until it returns true or
// timeout elapses, then fails the test with the formatted message. It
// replaces sleep-loops: the test proceeds the moment the condition holds,
// and under -race load the deadline stretches instead of flaking.
func Eventually(t testing.TB, timeout time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	if EventuallyTrue(timeout, cond) {
		return
	}
	t.Fatalf("condition not met within "+timeout.String()+": "+format, args...)
}

// EventuallyTrue is Eventually without the test dependency: it reports
// whether cond became true within timeout.
func EventuallyTrue(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return cond()
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// NoLeaks registers a cleanup that fails the test if goroutines running
// this module's code outlive the test. Call it first in a test so the
// check runs after every other cleanup (t.Cleanup is LIFO). Lingering
// goroutines get a grace period to drain — shutdown is asynchronous —
// before the check dumps their stacks and fails.
func NoLeaks(t testing.TB) {
	t.Helper()
	t.Cleanup(func() {
		var stacks string
		ok := EventuallyTrue(5*time.Second, func() bool {
			stacks = moduleStacks()
			return stacks == ""
		})
		if !ok {
			t.Errorf("goroutines leaked past test end:\n%s", stacks)
		}
	})
}

// moduleStacks returns the stacks of goroutines currently executing this
// module's packages ("" when none). The current goroutine and pure
// stdlib/testing goroutines are excluded.
func moduleStacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var leaked []string
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if !strings.Contains(g, "webcluster/internal/") {
			continue
		}
		// The leak check itself and test-function frames are not leaks:
		// skip the first goroutine (the caller) and anything parked in
		// testing harness code.
		if strings.Contains(g, "webcluster/internal/testutil.moduleStacks") {
			continue
		}
		leaked = append(leaked, g)
	}
	return strings.Join(leaked, "\n\n")
}
