// Package doctree provides the single-system-image view of the distributed
// document tree (§3.2) and turns administrator file-manager operations
// (insert, delete, rename, replicate, offload, assign) into executable
// plans: per-node file steps for the agents to carry out plus the URL-table
// update that makes the distributor see the change.
package doctree

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/urltable"
)

// StepKind is one node-level file operation.
type StepKind int

// Step kinds.
const (
	// StepStore places object bytes on a node.
	StepStore StepKind = iota + 1
	// StepDelete removes an object from a node.
	StepDelete
	// StepCopy copies an object from one node to another.
	StepCopy
)

// String names the kind.
func (k StepKind) String() string {
	switch k {
	case StepStore:
		return "store"
	case StepDelete:
		return "delete"
	case StepCopy:
		return "copy"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Step is one file operation for one node.
type Step struct {
	Kind StepKind
	// Node is the node the operation applies to (the copy target for
	// StepCopy).
	Node config.NodeID
	// Source is the node copied from (StepCopy only).
	Source config.NodeID
	Path   string
	// DestPath is the destination path for StepCopy when it differs
	// from Path (rename); empty means copy under the same path.
	DestPath string
	// Data is the object bytes for StepStore; nil means synthesize
	// SyntheticSize bytes (placement without transfer).
	Data          []byte
	SyntheticSize int64
}

// String formats the step for logs.
func (s Step) String() string {
	switch s.Kind {
	case StepCopy:
		return fmt.Sprintf("copy %s %s→%s", s.Path, s.Source, s.Node)
	default:
		return fmt.Sprintf("%s %s on %s", s.Kind, s.Path, s.Node)
	}
}

// Plan is an executable management operation: the file steps, then the
// URL-table update that publishes the change to the distributor. The steps
// must succeed before Apply runs, so a failed agent never leaves the table
// pointing at content that is not there.
type Plan struct {
	// Describe summarizes the operation for the console/audit log.
	Describe string
	Steps    []Step
	// Apply publishes the change in the URL table.
	Apply func(t *urltable.Table) error
}

// Errors.
var (
	// ErrNoNodes reports an insert with no target nodes.
	ErrNoNodes = errors.New("doctree: no target nodes")
)

// InsertPlan places a new object (with its bytes, or synthetic if data is
// nil) on nodes and registers it in the table.
func InsertPlan(obj content.Object, data []byte, nodes ...config.NodeID) (Plan, error) {
	if len(nodes) == 0 {
		return Plan{}, ErrNoNodes
	}
	steps := make([]Step, 0, len(nodes))
	for _, n := range nodes {
		steps = append(steps, Step{
			Kind:          StepStore,
			Node:          n,
			Path:          obj.Path,
			Data:          data,
			SyntheticSize: obj.Size,
		})
	}
	targets := append([]config.NodeID(nil), nodes...)
	return Plan{
		Describe: fmt.Sprintf("insert %s on %v", obj.Path, nodes),
		Steps:    steps,
		Apply: func(t *urltable.Table) error {
			return t.Insert(obj, targets...)
		},
	}, nil
}

// DeletePlan removes an object from every node holding it and from the
// table.
func DeletePlan(t *urltable.Table, p string) (Plan, error) {
	rec, err := t.Lookup(p)
	if err != nil {
		return Plan{}, fmt.Errorf("doctree: %w", err)
	}
	steps := make([]Step, 0, len(rec.Locations))
	for _, n := range rec.Locations {
		steps = append(steps, Step{Kind: StepDelete, Node: n, Path: p})
	}
	return Plan{
		Describe: fmt.Sprintf("delete %s from %v", p, rec.Locations),
		Steps:    steps,
		Apply: func(t *urltable.Table) error {
			return t.Remove(p)
		},
	}, nil
}

// RenamePlan renames an object on every holder and in the table. On the
// nodes this is copy-then-delete through the broker.
func RenamePlan(t *urltable.Table, oldPath, newPath string) (Plan, error) {
	rec, err := t.Lookup(oldPath)
	if err != nil {
		return Plan{}, fmt.Errorf("doctree: %w", err)
	}
	steps := make([]Step, 0, 2*len(rec.Locations))
	for _, n := range rec.Locations {
		// Copy node→itself under the new name, then delete the old.
		steps = append(steps, Step{
			Kind:          StepCopy,
			Node:          n,
			Source:        n,
			Path:          oldPath,
			DestPath:      newPath,
			SyntheticSize: rec.Size,
		})
		steps = append(steps, Step{Kind: StepDelete, Node: n, Path: oldPath})
	}
	return Plan{
		Describe: fmt.Sprintf("rename %s → %s on %v", oldPath, newPath, rec.Locations),
		Steps:    steps,
		Apply: func(t *urltable.Table) error {
			return t.Rename(oldPath, newPath)
		},
	}, nil
}

// ReplicatePlan copies an object from source (auto-chosen first holder when
// empty) to target and adds the location.
func ReplicatePlan(t *urltable.Table, p string, source, target config.NodeID) (Plan, error) {
	rec, err := t.Lookup(p)
	if err != nil {
		return Plan{}, fmt.Errorf("doctree: %w", err)
	}
	if len(rec.Locations) == 0 {
		return Plan{}, fmt.Errorf("doctree: %s has no holders", p)
	}
	if source == "" {
		source = rec.Locations[0]
	} else if !rec.HasLocation(source) {
		return Plan{}, fmt.Errorf("doctree: source %s does not hold %s", source, p)
	}
	if rec.HasLocation(target) {
		return Plan{}, fmt.Errorf("doctree: %s already holds %s", target, p)
	}
	return Plan{
		Describe: fmt.Sprintf("replicate %s %s→%s", p, source, target),
		Steps: []Step{{
			Kind:          StepCopy,
			Node:          target,
			Source:        source,
			Path:          p,
			SyntheticSize: rec.Size,
		}},
		Apply: func(t *urltable.Table) error {
			return t.AddLocation(p, target)
		},
	}, nil
}

// OffloadPlan removes node's copy of an object, keeping at least one other
// replica.
func OffloadPlan(t *urltable.Table, p string, node config.NodeID) (Plan, error) {
	rec, err := t.Lookup(p)
	if err != nil {
		return Plan{}, fmt.Errorf("doctree: %w", err)
	}
	if !rec.HasLocation(node) {
		return Plan{}, fmt.Errorf("doctree: %s does not hold %s", node, p)
	}
	if len(rec.Locations) < 2 {
		return Plan{}, fmt.Errorf("doctree: refusing to remove the last copy of %s", p)
	}
	return Plan{
		Describe: fmt.Sprintf("offload %s from %s", p, node),
		Steps:    []Step{{Kind: StepDelete, Node: node, Path: p}},
		Apply: func(t *urltable.Table) error {
			return t.RemoveLocation(p, node)
		},
	}, nil
}

// AssignPlan moves an object so it is held exactly by nodes: missing
// replicas are copied in, surplus copies deleted. The administrator uses
// this to dedicate content to specific servers (§4: mutable content on one
// node, CGI on fast-CPU nodes).
func AssignPlan(t *urltable.Table, p string, nodes ...config.NodeID) (Plan, error) {
	if len(nodes) == 0 {
		return Plan{}, ErrNoNodes
	}
	rec, err := t.Lookup(p)
	if err != nil {
		return Plan{}, fmt.Errorf("doctree: %w", err)
	}
	want := make(map[config.NodeID]bool, len(nodes))
	for _, n := range nodes {
		want[n] = true
	}
	have := make(map[config.NodeID]bool, len(rec.Locations))
	for _, n := range rec.Locations {
		have[n] = true
	}
	if len(rec.Locations) == 0 {
		return Plan{}, fmt.Errorf("doctree: %s has no holders", p)
	}
	source := rec.Locations[0]

	var steps []Step
	var adds, removes []config.NodeID
	for _, n := range nodes {
		if !have[n] {
			steps = append(steps, Step{
				Kind:          StepCopy,
				Node:          n,
				Source:        source,
				Path:          p,
				SyntheticSize: rec.Size,
			})
			adds = append(adds, n)
		}
	}
	for _, n := range rec.Locations {
		if !want[n] {
			steps = append(steps, Step{Kind: StepDelete, Node: n, Path: p})
			removes = append(removes, n)
		}
	}
	return Plan{
		Describe: fmt.Sprintf("assign %s to %v", p, nodes),
		Steps:    steps,
		Apply: func(t *urltable.Table) error {
			for _, n := range adds {
				if err := t.AddLocation(p, n); err != nil {
					return err
				}
			}
			for _, n := range removes {
				if err := t.RemoveLocation(p, n); err != nil {
					return err
				}
			}
			return nil
		},
	}, nil
}

// FileInfo is one file in the merged tree view.
type FileInfo struct {
	Path      string
	Size      int64
	Class     content.Class
	Priority  int
	Pinned    bool
	Hits      int64
	Locations []config.NodeID
}

// Dir is one directory in the merged tree view.
type Dir struct {
	Path  string
	Dirs  []*Dir
	Files []FileInfo
}

// View builds the single, coherent view of the document tree "comprised of
// portions that actually reside on several different server nodes" (§3.2).
func View(t *urltable.Table) *Dir {
	root := &Dir{Path: "/"}
	index := map[string]*Dir{"/": root}
	var ensure func(p string) *Dir
	ensure = func(p string) *Dir {
		if d, ok := index[p]; ok {
			return d
		}
		parent := ensure(path.Dir(p))
		d := &Dir{Path: p}
		parent.Dirs = append(parent.Dirs, d)
		index[p] = d
		return d
	}
	t.Walk(func(r urltable.Record) {
		d := ensure(path.Dir(r.Path))
		d.Files = append(d.Files, FileInfo{
			Path:      r.Path,
			Size:      r.Size,
			Class:     r.Class,
			Priority:  r.Priority,
			Pinned:    r.Pinned,
			Hits:      r.Hits,
			Locations: r.Locations,
		})
	})
	sortDir(root)
	return root
}

// sortDir orders the view deterministically.
func sortDir(d *Dir) {
	sort.Slice(d.Dirs, func(i, j int) bool { return d.Dirs[i].Path < d.Dirs[j].Path })
	sort.Slice(d.Files, func(i, j int) bool { return d.Files[i].Path < d.Files[j].Path })
	for _, sub := range d.Dirs {
		sortDir(sub)
	}
}

// Render formats the view as an indented listing (the text analogue of the
// remote console's file-manager pane).
func Render(d *Dir) string {
	var b strings.Builder
	var walk func(d *Dir, depth int)
	walk = func(d *Dir, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&b, "%s%s/\n", indent, strings.TrimSuffix(d.Path, "/"))
		for _, f := range d.Files {
			pin := ""
			if f.Pinned {
				pin = ", pinned"
			}
			fmt.Fprintf(&b, "%s  %s  [%s, %dB, prio %d%s] @ %v\n",
				indent, path.Base(f.Path), f.Class, f.Size, f.Priority, pin, f.Locations)
		}
		for _, sub := range d.Dirs {
			walk(sub, depth+1)
		}
	}
	walk(d, 0)
	return b.String()
}
