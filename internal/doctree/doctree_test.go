package doctree

import (
	"errors"
	"strings"
	"testing"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/urltable"
)

func newTable(t *testing.T) *urltable.Table {
	t.Helper()
	return urltable.New(urltable.Options{})
}

func obj(path string, size int64) content.Object {
	return content.Object{Path: path, Size: size, Class: content.Classify(path)}
}

func apply(t *testing.T, tbl *urltable.Table, plan Plan) {
	t.Helper()
	if plan.Apply == nil {
		t.Fatal("plan has no Apply")
	}
	if err := plan.Apply(tbl); err != nil {
		t.Fatalf("apply %q: %v", plan.Describe, err)
	}
}

func TestInsertPlan(t *testing.T) {
	tbl := newTable(t)
	plan, err := InsertPlan(obj("/a.html", 10), []byte("x"), "n1", "n2")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("steps = %d", len(plan.Steps))
	}
	for _, s := range plan.Steps {
		if s.Kind != StepStore || s.Path != "/a.html" {
			t.Fatalf("step = %+v", s)
		}
	}
	apply(t, tbl, plan)
	rec, err := tbl.Lookup("/a.html")
	if err != nil || len(rec.Locations) != 2 {
		t.Fatalf("after apply: %+v, %v", rec, err)
	}
}

func TestInsertPlanNoNodes(t *testing.T) {
	if _, err := InsertPlan(obj("/a", 1), nil); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("err = %v", err)
	}
}

func TestDeletePlan(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/a.html", 1), "n1", "n3")
	plan, err := DeletePlan(tbl, "/a.html")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("steps = %v", plan.Steps)
	}
	nodes := map[config.NodeID]bool{}
	for _, s := range plan.Steps {
		if s.Kind != StepDelete {
			t.Fatalf("step kind = %v", s.Kind)
		}
		nodes[s.Node] = true
	}
	if !nodes["n1"] || !nodes["n3"] {
		t.Fatalf("delete targets = %v", nodes)
	}
	apply(t, tbl, plan)
	if _, err := tbl.Lookup("/a.html"); err == nil {
		t.Fatal("entry survived delete plan")
	}
}

func TestDeletePlanMissing(t *testing.T) {
	if _, err := DeletePlan(newTable(t), "/nope"); err == nil {
		t.Fatal("missing path accepted")
	}
}

func TestRenamePlan(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/old.html", 5), "n1", "n2")
	plan, err := RenamePlan(tbl, "/old.html", "/new.html")
	if err != nil {
		t.Fatal(err)
	}
	// Per node: one copy (to the new name) + one delete (old name).
	if len(plan.Steps) != 4 {
		t.Fatalf("steps = %v", plan.Steps)
	}
	copies, deletes := 0, 0
	for _, s := range plan.Steps {
		switch s.Kind {
		case StepCopy:
			copies++
			if s.DestPath != "/new.html" || s.Source != s.Node {
				t.Fatalf("copy step = %+v", s)
			}
		case StepDelete:
			deletes++
		}
	}
	if copies != 2 || deletes != 2 {
		t.Fatalf("copies=%d deletes=%d", copies, deletes)
	}
	apply(t, tbl, plan)
	if _, err := tbl.Lookup("/new.html"); err != nil {
		t.Fatal("new path missing after rename")
	}
}

func TestReplicatePlan(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/a.html", 1), "n1")
	plan, err := ReplicatePlan(tbl, "/a.html", "", "n2")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Kind != StepCopy ||
		plan.Steps[0].Source != "n1" || plan.Steps[0].Node != "n2" {
		t.Fatalf("steps = %v", plan.Steps)
	}
	apply(t, tbl, plan)
	rec, _ := tbl.Lookup("/a.html")
	if !rec.HasLocation("n2") {
		t.Fatal("location not added")
	}
}

func TestReplicatePlanValidation(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/a.html", 1), "n1")
	if _, err := ReplicatePlan(tbl, "/a.html", "n9", "n2"); err == nil {
		t.Fatal("bogus source accepted")
	}
	if _, err := ReplicatePlan(tbl, "/a.html", "", "n1"); err == nil {
		t.Fatal("replication onto existing holder accepted")
	}
	if _, err := ReplicatePlan(tbl, "/missing", "", "n2"); err == nil {
		t.Fatal("missing path accepted")
	}
}

func TestOffloadPlan(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/a.html", 1), "n1", "n2")
	plan, err := OffloadPlan(tbl, "/a.html", "n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].Kind != StepDelete || plan.Steps[0].Node != "n1" {
		t.Fatalf("steps = %v", plan.Steps)
	}
	apply(t, tbl, plan)
	rec, _ := tbl.Lookup("/a.html")
	if rec.HasLocation("n1") || !rec.HasLocation("n2") {
		t.Fatalf("locations = %v", rec.Locations)
	}
}

func TestOffloadPlanLastCopyRefused(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/a.html", 1), "n1")
	if _, err := OffloadPlan(tbl, "/a.html", "n1"); err == nil {
		t.Fatal("last-copy offload accepted")
	}
}

func TestOffloadPlanNotHolder(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/a.html", 1), "n1", "n2")
	if _, err := OffloadPlan(tbl, "/a.html", "n5"); err == nil {
		t.Fatal("offload from non-holder accepted")
	}
}

func TestAssignPlan(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/a.html", 1), "n1", "n2")
	// Move to exactly {n2, n3}: copy to n3, delete from n1.
	plan, err := AssignPlan(tbl, "/a.html", "n2", "n3")
	if err != nil {
		t.Fatal(err)
	}
	var sawCopy, sawDelete bool
	for _, s := range plan.Steps {
		switch {
		case s.Kind == StepCopy && s.Node == "n3":
			sawCopy = true
		case s.Kind == StepDelete && s.Node == "n1":
			sawDelete = true
		default:
			t.Fatalf("unexpected step %+v", s)
		}
	}
	if !sawCopy || !sawDelete {
		t.Fatalf("steps = %v", plan.Steps)
	}
	apply(t, tbl, plan)
	rec, _ := tbl.Lookup("/a.html")
	if rec.HasLocation("n1") || !rec.HasLocation("n2") || !rec.HasLocation("n3") {
		t.Fatalf("locations = %v", rec.Locations)
	}
}

func TestAssignPlanNoop(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/a.html", 1), "n1")
	plan, err := AssignPlan(tbl, "/a.html", "n1")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 0 {
		t.Fatalf("no-op assign produced steps %v", plan.Steps)
	}
}

func TestAssignPlanNoNodes(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/a.html", 1), "n1")
	if _, err := AssignPlan(tbl, "/a.html"); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("err = %v", err)
	}
}

func TestView(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/docs/a.html", 10), "n1")
	_ = tbl.Insert(obj("/docs/sub/b.html", 20), "n2")
	_ = tbl.Insert(obj("/top.html", 5), "n1", "n2")
	root := View(tbl)
	if root.Path != "/" {
		t.Fatalf("root = %q", root.Path)
	}
	if len(root.Files) != 1 || root.Files[0].Path != "/top.html" {
		t.Fatalf("root files = %v", root.Files)
	}
	if len(root.Dirs) != 1 || root.Dirs[0].Path != "/docs" {
		t.Fatalf("root dirs = %v", root.Dirs)
	}
	docs := root.Dirs[0]
	if len(docs.Files) != 1 || len(docs.Dirs) != 1 {
		t.Fatalf("docs = %+v", docs)
	}
	if docs.Dirs[0].Path != "/docs/sub" || docs.Dirs[0].Files[0].Path != "/docs/sub/b.html" {
		t.Fatalf("sub = %+v", docs.Dirs[0])
	}
}

func TestRender(t *testing.T) {
	tbl := newTable(t)
	_ = tbl.Insert(obj("/docs/a.html", 10), "n1")
	out := Render(View(tbl))
	if !strings.Contains(out, "a.html") || !strings.Contains(out, "n1") {
		t.Fatalf("render = %q", out)
	}
	if !strings.Contains(out, "/docs/") {
		t.Fatalf("render lacks directory line: %q", out)
	}
}

func TestStepString(t *testing.T) {
	s := Step{Kind: StepCopy, Node: "b", Source: "a", Path: "/p"}
	if s.String() != "copy /p a→b" {
		t.Fatalf("String = %q", s.String())
	}
	d := Step{Kind: StepDelete, Node: "n", Path: "/p"}
	if d.String() != "delete /p on n" {
		t.Fatalf("String = %q", d.String())
	}
}
