package loadbal

import (
	"sort"
	"sync"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/content"
)

// The §3.3 cost constants: "for a request to the static content, loadCPU is
// set to one and loadDisk to nine, since disk activity is the dominant
// factor; for the request to a dynamic content, loadCPU is set to ten and
// loadDisk to five."
const (
	StaticCPUWeight   = 1
	StaticDiskWeight  = 9
	DynamicCPUWeight  = 10
	DynamicDiskWeight = 5
)

// CostWeights parameterizes the per-request cost constants so the
// ablation benchmark can compare the paper's heuristic against uniform
// weighting.
type CostWeights struct {
	StaticCPU   float64
	StaticDisk  float64
	DynamicCPU  float64
	DynamicDisk float64
}

// PaperWeights returns the constants the paper uses.
func PaperWeights() CostWeights {
	return CostWeights{
		StaticCPU:   StaticCPUWeight,
		StaticDisk:  StaticDiskWeight,
		DynamicCPU:  DynamicCPUWeight,
		DynamicDisk: DynamicDiskWeight,
	}
}

// UniformWeights returns class-blind constants (the ablation baseline).
func UniformWeights() CostWeights {
	return CostWeights{StaticCPU: 5, StaticDisk: 5, DynamicCPU: 5, DynamicDisk: 5}
}

// RequestLoad computes l_i = (loadCPU + loadDisk) × processing_time for
// one request of the given class, in load-seconds.
func (w CostWeights) RequestLoad(class content.Class, processing time.Duration) float64 {
	var cpu, disk float64
	if class.Dynamic() {
		cpu, disk = w.DynamicCPU, w.DynamicDisk
	} else {
		cpu, disk = w.StaticCPU, w.StaticDisk
	}
	return (cpu + disk) * processing.Seconds()
}

// Tracker accumulates per-node load over the current measurement interval.
// The distributor records every completed request into it (§3.3:
// "processing time ... is calculated by distributor"). Construct with
// NewTracker.
type Tracker struct {
	weights CostWeights

	mu       sync.Mutex
	nodeLoad map[config.NodeID]float64
	nodeReqs map[config.NodeID]int64
}

// NewTracker returns a tracker using the given cost weights.
func NewTracker(weights CostWeights) *Tracker {
	return &Tracker{
		weights:  weights,
		nodeLoad: make(map[config.NodeID]float64),
		nodeReqs: make(map[config.NodeID]int64),
	}
}

// Record accumulates one completed request against node.
func (t *Tracker) Record(node config.NodeID, class content.Class, processing time.Duration) {
	l := t.weights.RequestLoad(class, processing)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodeLoad[node] += l
	t.nodeReqs[node]++
}

// IntervalLoads closes the current interval: it returns each node's
// L_j = accumulated load / weight and resets the accumulators. Nodes in
// weights with no recorded requests report 0 (an idle node is maximally
// underutilized, which is what draws replicas to it).
func (t *Tracker) IntervalLoads(specs []config.NodeSpec) map[config.NodeID]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[config.NodeID]float64, len(specs))
	for _, spec := range specs {
		w := spec.EffectiveWeight()
		out[spec.ID] = t.nodeLoad[spec.ID] / w
	}
	t.nodeLoad = make(map[config.NodeID]float64)
	t.nodeReqs = make(map[config.NodeID]int64)
	return out
}

// Requests returns the per-node request counts for the current interval
// without resetting.
func (t *Tracker) Requests() map[config.NodeID]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[config.NodeID]int64, len(t.nodeReqs))
	for k, v := range t.nodeReqs {
		out[k] = v
	}
	return out
}

// Classification of nodes relative to the interval average.
type Level int

// Levels.
const (
	LevelBalanced Level = iota + 1
	LevelOverloaded
	LevelUnderutilized
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelBalanced:
		return "balanced"
	case LevelOverloaded:
		return "overloaded"
	case LevelUnderutilized:
		return "underutilized"
	default:
		return "unknown"
	}
}

// Classify labels each node against the cluster average: above
// avg×(1+threshold) is overloaded, below avg×(1−threshold) is
// underutilized (§3.3). A zero average (idle interval) yields all-balanced.
// The average is summed in sorted node order so identical inputs always
// classify identically (map-order float summation could flip a node
// sitting exactly on a threshold between runs).
func Classify(loads map[config.NodeID]float64, threshold float64) map[config.NodeID]Level {
	out := make(map[config.NodeID]Level, len(loads))
	var sum float64
	for _, id := range SortedNodes(loads) {
		sum += loads[id]
	}
	avg := sum / float64(len(loads))
	for id, l := range loads {
		switch {
		case avg == 0:
			out[id] = LevelBalanced
		case l > avg*(1+threshold):
			out[id] = LevelOverloaded
		case l < avg*(1-threshold):
			out[id] = LevelUnderutilized
		default:
			out[id] = LevelBalanced
		}
	}
	return out
}

// SortedNodes returns node IDs ordered by ascending load (ties by ID), the
// order in which the planner assigns replicas.
func SortedNodes(loads map[config.NodeID]float64) []config.NodeID {
	ids := make([]config.NodeID, 0, len(loads))
	for id := range loads {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if loads[ids[i]] != loads[ids[j]] {
			return loads[ids[i]] < loads[ids[j]]
		}
		return ids[i] < ids[j]
	})
	return ids
}
