package loadbal

import (
	"fmt"
	"math"
	"sort"

	"webcluster/internal/config"
	"webcluster/internal/urltable"
)

// ActionKind distinguishes planner decisions.
type ActionKind int

// Action kinds.
const (
	// ActionReplicate copies content to an underutilized node.
	ActionReplicate ActionKind = iota + 1
	// ActionOffload removes a copy from an overloaded node.
	ActionOffload
)

// String names the kind.
func (k ActionKind) String() string {
	switch k {
	case ActionReplicate:
		return "replicate"
	case ActionOffload:
		return "offload"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one placement change the controller should apply: copy Path
// from Source to Target (replicate) or drop Path's copy on Target
// (offload).
type Action struct {
	Kind   ActionKind
	Path   string
	Source config.NodeID // replicate only: a node currently holding Path
	Target config.NodeID
}

// String formats the action for logs.
func (a Action) String() string {
	switch a.Kind {
	case ActionReplicate:
		return fmt.Sprintf("replicate %s %s→%s", a.Path, a.Source, a.Target)
	case ActionOffload:
		return fmt.Sprintf("offload %s from %s", a.Path, a.Target)
	default:
		return fmt.Sprintf("unknown action on %s", a.Path)
	}
}

// PlannerOptions tunes the auto-replication planner.
type PlannerOptions struct {
	// Threshold is the §3.3 deviation fraction from the average load
	// that marks a node over/under-utilized.
	Threshold float64
	// MaxActionsPerNode caps placement changes per node per interval so
	// the system converges instead of thrashing.
	MaxActionsPerNode int
	// MinHits is the popularity floor: content with fewer interval hits
	// is never replicated (it cannot be a hot spot).
	MinHits int64
	// PriorityMinCopies is the availability floor for critical content
	// (Priority > 0): the planner replicates it up to this copy count
	// regardless of load (§1.2: "replicate some critical content to
	// multiple nodes for achieving high availability"). 0 disables.
	PriorityMinCopies int
}

// DefaultPlannerOptions returns conservative defaults.
func DefaultPlannerOptions() PlannerOptions {
	return PlannerOptions{
		Threshold:         0.25,
		MaxActionsPerNode: 3,
		MinHits:           10,
		PriorityMinCopies: 2,
	}
}

// Decision is one planner action together with the inputs that
// produced it — what the journal records so `console explain` can
// answer "what did the planner see when it placed this".
type Decision struct {
	Action
	// LoadCV is the coefficient of variation of the interval loads the
	// planner ran against.
	LoadCV float64
	// Hits is the document's interval hit count (its demand reading).
	Hits int64
	// SourceLoad and TargetLoad are the load readings of the chosen
	// nodes (offloads have no source).
	SourceLoad float64
	TargetLoad float64
	// Reason names the planner branch: "availability-floor",
	// "replicate-hot-to-cold", "offload-hot", or "stage-sole-copy".
	Reason string
	// Rejected lists alternatives considered and passed over —
	// candidate source replicas with their loads for replications,
	// sole-copy paths that could not be shed for offloads.
	Rejected []string
}

// Plan computes the interval's placement actions from per-node loads and
// the URL table (§3.3): underutilized nodes receive replicas of the most
// popular content they lack; overloaded nodes shed copies of their hottest
// content that is also held elsewhere. When an overloaded node holds sole
// copies only, the planner first replicates its hottest object to the
// least-loaded node so a later interval can complete the offload.
func Plan(loads map[config.NodeID]float64, table *urltable.Table, opts PlannerOptions) []Action {
	decs := PlanDecisions(loads, table, opts)
	actions := make([]Action, len(decs))
	for i, d := range decs {
		actions[i] = d.Action
	}
	return actions
}

// PlanDecisions is Plan with its working shown: the same actions in
// the same order, each carrying the load CV, demand reading, chosen
// node loads, branch reason, and rejected alternatives.
func PlanDecisions(loads map[config.NodeID]float64, table *urltable.Table, opts PlannerOptions) []Decision {
	if opts.MaxActionsPerNode <= 0 {
		opts.MaxActionsPerNode = 3
	}
	levels := Classify(loads, opts.Threshold)
	order := SortedNodes(loads) // coldest first
	cv := LoadCV(loads)

	var actions []Decision
	// pairSeen dedups (path → target) decisions across branches;
	// perTarget enforces MaxActionsPerNode on receiving nodes too.
	pairSeen := make(map[string]bool)
	perTarget := make(map[config.NodeID]int)
	add := func(d Decision) bool {
		a := d.Action
		key := a.Path + "→" + string(a.Target) + "/" + a.Kind.String()
		if pairSeen[key] {
			return false
		}
		if a.Kind == ActionReplicate && perTarget[a.Target] >= opts.MaxActionsPerNode {
			return false
		}
		pairSeen[key] = true
		if a.Kind == ActionReplicate {
			perTarget[a.Target]++
		}
		d.LoadCV = cv
		d.SourceLoad = loads[a.Source]
		d.TargetLoad = loads[a.Target]
		actions = append(actions, d)
		return true
	}

	// Global popularity ranking for replication to cold nodes. Pinned
	// content never moves: its placement encodes an administrative
	// decision (mutable content with centralized consistency, §4).
	var all []urltable.Record
	var underReplicated []urltable.Record
	table.Walk(func(r urltable.Record) {
		if r.Pinned {
			return
		}
		if r.Hits >= opts.MinHits {
			all = append(all, r)
		}
		if opts.PriorityMinCopies > 0 && r.Priority > 0 &&
			len(r.Locations) < opts.PriorityMinCopies {
			underReplicated = append(underReplicated, r)
		}
	})
	sortByHits(all)

	// Availability floor first: critical content below its copy floor is
	// replicated to the coldest nodes regardless of load levels.
	sort.Slice(underReplicated, func(i, j int) bool {
		if underReplicated[i].Priority != underReplicated[j].Priority {
			return underReplicated[i].Priority > underReplicated[j].Priority
		}
		return underReplicated[i].Path < underReplicated[j].Path
	})
	for _, r := range underReplicated {
		need := opts.PriorityMinCopies - len(r.Locations)
		for _, target := range order {
			if need <= 0 {
				break
			}
			if r.HasLocation(target) {
				continue
			}
			source := leastLoadedOf(r.Locations, loads)
			if add(Decision{
				Action: Action{
					Kind:   ActionReplicate,
					Path:   r.Path,
					Source: source,
					Target: target,
				},
				Hits:     r.Hits,
				Reason:   "availability-floor",
				Rejected: rejectedSources(r.Locations, source, loads),
			}) {
				need--
			}
		}
	}

	// Replicate hot content to each underutilized node, hottest first,
	// skipping content it already holds.
	for _, id := range order {
		if levels[id] != LevelUnderutilized {
			continue
		}
		n := 0
		for _, r := range all {
			if n >= opts.MaxActionsPerNode {
				break
			}
			if r.HasLocation(id) || len(r.Locations) == 0 {
				continue
			}
			source := leastLoadedOf(r.Locations, loads)
			if add(Decision{
				Action: Action{
					Kind:   ActionReplicate,
					Path:   r.Path,
					Source: source,
					Target: id,
				},
				Hits:     r.Hits,
				Reason:   "replicate-hot-to-cold",
				Rejected: rejectedSources(r.Locations, source, loads),
			}) {
				n++
			}
		}
	}

	// Offload the hottest multi-copy content from each overloaded node.
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		if levels[id] != LevelOverloaded {
			continue
		}
		entries := table.EntriesAt(id) // already hottest-first
		n := 0
		soleHot := ""
		var soleHits int64
		var soleSkipped []string
		for _, r := range entries {
			if n >= opts.MaxActionsPerNode {
				break
			}
			if r.Hits < opts.MinHits {
				break
			}
			if r.Pinned {
				continue
			}
			if len(r.Locations) < 2 {
				if soleHot == "" {
					soleHot = r.Path
					soleHits = r.Hits
				}
				if len(soleSkipped) < 3 {
					soleSkipped = append(soleSkipped, r.Path+":sole-copy")
				}
				continue
			}
			if add(Decision{
				Action:   Action{Kind: ActionOffload, Path: r.Path, Target: id},
				Hits:     r.Hits,
				Reason:   "offload-hot",
				Rejected: soleSkipped,
			}) {
				n++
			}
		}
		if n == 0 && soleHot != "" && len(order) > 1 {
			// Sole copies only: stage a replica on the coldest other node.
			target := order[0]
			if target == id {
				target = order[1]
			}
			add(Decision{
				Action: Action{
					Kind:   ActionReplicate,
					Path:   soleHot,
					Source: id,
					Target: target,
				},
				Hits:   soleHits,
				Reason: "stage-sole-copy",
			})
		}
	}
	return actions
}

// rejectedSources formats the replica locations that were NOT picked as
// the replication source, with the loads that ruled them out.
func rejectedSources(locs []config.NodeID, chosen config.NodeID, loads map[config.NodeID]float64) []string {
	if len(locs) < 2 {
		return nil
	}
	out := make([]string, 0, len(locs)-1)
	for _, id := range locs {
		if id == chosen {
			continue
		}
		out = append(out, fmt.Sprintf("%s(%.3f)", id, loads[id]))
	}
	return out
}

// LoadCV is the coefficient of variation (stddev/mean) of the load
// readings — the §3.3 imbalance measure the planner's decisions are
// judged against. Nodes are summed in sorted order so the float result
// is deterministic for a given map.
func LoadCV(loads map[config.NodeID]float64) float64 {
	if len(loads) == 0 {
		return 0
	}
	order := SortedNodes(loads)
	var sum float64
	for _, id := range order {
		sum += loads[id]
	}
	mean := sum / float64(len(order))
	if mean == 0 {
		return 0
	}
	var varsum float64
	for _, id := range order {
		d := loads[id] - mean
		varsum += d * d
	}
	return math.Sqrt(varsum/float64(len(order))) / mean
}

// sortByHits orders records hottest-first with path tiebreak for
// determinism.
func sortByHits(recs []urltable.Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Hits != recs[j].Hits {
			return recs[i].Hits > recs[j].Hits
		}
		return recs[i].Path < recs[j].Path
	})
}

// leastLoadedOf returns the location with the smallest load (replication
// source that disturbs the cluster least).
func leastLoadedOf(locs []config.NodeID, loads map[config.NodeID]float64) config.NodeID {
	best := locs[0]
	for _, id := range locs[1:] {
		if loads[id] < loads[best] {
			best = id
		}
	}
	return best
}
