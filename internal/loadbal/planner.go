package loadbal

import (
	"fmt"
	"sort"

	"webcluster/internal/config"
	"webcluster/internal/urltable"
)

// ActionKind distinguishes planner decisions.
type ActionKind int

// Action kinds.
const (
	// ActionReplicate copies content to an underutilized node.
	ActionReplicate ActionKind = iota + 1
	// ActionOffload removes a copy from an overloaded node.
	ActionOffload
)

// String names the kind.
func (k ActionKind) String() string {
	switch k {
	case ActionReplicate:
		return "replicate"
	case ActionOffload:
		return "offload"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one placement change the controller should apply: copy Path
// from Source to Target (replicate) or drop Path's copy on Target
// (offload).
type Action struct {
	Kind   ActionKind
	Path   string
	Source config.NodeID // replicate only: a node currently holding Path
	Target config.NodeID
}

// String formats the action for logs.
func (a Action) String() string {
	switch a.Kind {
	case ActionReplicate:
		return fmt.Sprintf("replicate %s %s→%s", a.Path, a.Source, a.Target)
	case ActionOffload:
		return fmt.Sprintf("offload %s from %s", a.Path, a.Target)
	default:
		return fmt.Sprintf("unknown action on %s", a.Path)
	}
}

// PlannerOptions tunes the auto-replication planner.
type PlannerOptions struct {
	// Threshold is the §3.3 deviation fraction from the average load
	// that marks a node over/under-utilized.
	Threshold float64
	// MaxActionsPerNode caps placement changes per node per interval so
	// the system converges instead of thrashing.
	MaxActionsPerNode int
	// MinHits is the popularity floor: content with fewer interval hits
	// is never replicated (it cannot be a hot spot).
	MinHits int64
	// PriorityMinCopies is the availability floor for critical content
	// (Priority > 0): the planner replicates it up to this copy count
	// regardless of load (§1.2: "replicate some critical content to
	// multiple nodes for achieving high availability"). 0 disables.
	PriorityMinCopies int
}

// DefaultPlannerOptions returns conservative defaults.
func DefaultPlannerOptions() PlannerOptions {
	return PlannerOptions{
		Threshold:         0.25,
		MaxActionsPerNode: 3,
		MinHits:           10,
		PriorityMinCopies: 2,
	}
}

// Plan computes the interval's placement actions from per-node loads and
// the URL table (§3.3): underutilized nodes receive replicas of the most
// popular content they lack; overloaded nodes shed copies of their hottest
// content that is also held elsewhere. When an overloaded node holds sole
// copies only, the planner first replicates its hottest object to the
// least-loaded node so a later interval can complete the offload.
func Plan(loads map[config.NodeID]float64, table *urltable.Table, opts PlannerOptions) []Action {
	if opts.MaxActionsPerNode <= 0 {
		opts.MaxActionsPerNode = 3
	}
	levels := Classify(loads, opts.Threshold)
	order := SortedNodes(loads) // coldest first

	var actions []Action
	// pairSeen dedups (path → target) decisions across branches;
	// perTarget enforces MaxActionsPerNode on receiving nodes too.
	pairSeen := make(map[string]bool)
	perTarget := make(map[config.NodeID]int)
	add := func(a Action) bool {
		key := a.Path + "→" + string(a.Target) + "/" + a.Kind.String()
		if pairSeen[key] {
			return false
		}
		if a.Kind == ActionReplicate && perTarget[a.Target] >= opts.MaxActionsPerNode {
			return false
		}
		pairSeen[key] = true
		if a.Kind == ActionReplicate {
			perTarget[a.Target]++
		}
		actions = append(actions, a)
		return true
	}

	// Global popularity ranking for replication to cold nodes. Pinned
	// content never moves: its placement encodes an administrative
	// decision (mutable content with centralized consistency, §4).
	var all []urltable.Record
	var underReplicated []urltable.Record
	table.Walk(func(r urltable.Record) {
		if r.Pinned {
			return
		}
		if r.Hits >= opts.MinHits {
			all = append(all, r)
		}
		if opts.PriorityMinCopies > 0 && r.Priority > 0 &&
			len(r.Locations) < opts.PriorityMinCopies {
			underReplicated = append(underReplicated, r)
		}
	})
	sortByHits(all)

	// Availability floor first: critical content below its copy floor is
	// replicated to the coldest nodes regardless of load levels.
	sort.Slice(underReplicated, func(i, j int) bool {
		if underReplicated[i].Priority != underReplicated[j].Priority {
			return underReplicated[i].Priority > underReplicated[j].Priority
		}
		return underReplicated[i].Path < underReplicated[j].Path
	})
	for _, r := range underReplicated {
		need := opts.PriorityMinCopies - len(r.Locations)
		for _, target := range order {
			if need <= 0 {
				break
			}
			if r.HasLocation(target) {
				continue
			}
			if add(Action{
				Kind:   ActionReplicate,
				Path:   r.Path,
				Source: leastLoadedOf(r.Locations, loads),
				Target: target,
			}) {
				need--
			}
		}
	}

	// Replicate hot content to each underutilized node, hottest first,
	// skipping content it already holds.
	for _, id := range order {
		if levels[id] != LevelUnderutilized {
			continue
		}
		n := 0
		for _, r := range all {
			if n >= opts.MaxActionsPerNode {
				break
			}
			if r.HasLocation(id) || len(r.Locations) == 0 {
				continue
			}
			if add(Action{
				Kind:   ActionReplicate,
				Path:   r.Path,
				Source: leastLoadedOf(r.Locations, loads),
				Target: id,
			}) {
				n++
			}
		}
	}

	// Offload the hottest multi-copy content from each overloaded node.
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		if levels[id] != LevelOverloaded {
			continue
		}
		entries := table.EntriesAt(id) // already hottest-first
		n := 0
		soleHot := ""
		for _, r := range entries {
			if n >= opts.MaxActionsPerNode {
				break
			}
			if r.Hits < opts.MinHits {
				break
			}
			if r.Pinned {
				continue
			}
			if len(r.Locations) < 2 {
				if soleHot == "" {
					soleHot = r.Path
				}
				continue
			}
			if add(Action{Kind: ActionOffload, Path: r.Path, Target: id}) {
				n++
			}
		}
		if n == 0 && soleHot != "" && len(order) > 1 {
			// Sole copies only: stage a replica on the coldest other node.
			target := order[0]
			if target == id {
				target = order[1]
			}
			add(Action{
				Kind:   ActionReplicate,
				Path:   soleHot,
				Source: id,
				Target: target,
			})
		}
	}
	return actions
}

// sortByHits orders records hottest-first with path tiebreak for
// determinism.
func sortByHits(recs []urltable.Record) {
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Hits != recs[j].Hits {
			return recs[i].Hits > recs[j].Hits
		}
		return recs[i].Path < recs[j].Path
	})
}

// leastLoadedOf returns the location with the smallest load (replication
// source that disturbs the cluster least).
func leastLoadedOf(locs []config.NodeID, loads map[config.NodeID]float64) config.NodeID {
	best := locs[0]
	for _, id := range locs[1:] {
		if loads[id] < loads[best] {
			best = id
		}
	}
	return best
}
