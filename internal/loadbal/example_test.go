package loadbal_test

import (
	"fmt"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/loadbal"
	"webcluster/internal/urltable"
)

// Example walks the full §3.3 loop: the distributor records per-request
// loads, the interval closes into L_j values, nodes are classified against
// the cluster average, and the planner emits placement actions.
func Example() {
	specs := []config.NodeSpec{
		{ID: "hot", CPUMHz: 350, MemoryMB: 128},
		{ID: "idle", CPUMHz: 350, MemoryMB: 128},
	}
	table := urltable.New(urltable.Options{})
	obj := content.Object{Path: "/popular.html", Size: 4096, Class: content.ClassHTML}
	_ = table.Insert(obj, "hot")

	tracker := loadbal.NewTracker(loadbal.PaperWeights())
	for i := 0; i < 100; i++ {
		// Every request lands on "hot" (it has the only copy) and is
		// counted in the URL table and the tracker.
		_, _ = table.Route("/popular.html")
		tracker.Record("hot", content.ClassHTML, 10*time.Millisecond)
	}

	loads := tracker.IntervalLoads(specs)
	fmt.Printf("L(hot)=%.1f L(idle)=%.1f\n", loads["hot"], loads["idle"])

	levels := loadbal.Classify(loads, 0.25)
	fmt.Printf("hot=%s idle=%s\n", levels["hot"], levels["idle"])

	actions := loadbal.Plan(loads, table, loadbal.PlannerOptions{
		Threshold:         0.25,
		MaxActionsPerNode: 1,
		MinHits:           10,
	})
	for _, a := range actions {
		fmt.Println(a)
	}

	// Output:
	// L(hot)=10.0 L(idle)=0.0
	// hot=overloaded idle=underutilized
	// replicate /popular.html hot→idle
}
