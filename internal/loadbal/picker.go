// Package loadbal implements the paper's load-distribution machinery: the
// server-selection policies used by the front ends (Weighted Least
// Connection for the baseline L4 router, replica selection for the
// content-aware distributor) and the §3.3 load metric
// (l_i = (loadCPU + loadDisk) × processing_time,
// L_j = Σ(l_i × access_frequency) / Weight) together with the
// auto-replication/offload planner driven by it.
package loadbal

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"webcluster/internal/config"
)

// ErrNoCandidates reports a pick over an empty candidate set.
var ErrNoCandidates = errors.New("loadbal: no candidate nodes")

// NodeState is the per-node signal a Picker reads: static capacity weight,
// instantaneous active connections, and the last computed §3.3 load index.
type NodeState struct {
	ID     config.NodeID
	Weight float64
	// Active is the number of in-flight requests/connections.
	Active int64
	// Load is the most recent L_j value; 0 until first computed.
	Load float64
}

// Picker chooses a node from a candidate set. Implementations must be safe
// for concurrent use.
type Picker interface {
	// Pick selects one of candidates, which is non-empty.
	Pick(candidates []NodeState) (config.NodeID, error)
	// Name identifies the policy in reports.
	Name() string
}

// WeightedLeastConn picks the node minimizing Active/Weight — the policy
// the paper's prior-work L4 router implements ("Weight Least Connection").
// The zero value is ready to use.
type WeightedLeastConn struct{}

var _ Picker = (*WeightedLeastConn)(nil)

// Pick implements Picker.
func (WeightedLeastConn) Pick(candidates []NodeState) (config.NodeID, error) {
	if len(candidates) == 0 {
		return "", ErrNoCandidates
	}
	best := 0
	bestScore := score(candidates[0])
	for i := 1; i < len(candidates); i++ {
		if s := score(candidates[i]); s < bestScore {
			best, bestScore = i, s
		}
	}
	return candidates[best].ID, nil
}

// score is active connections normalized by capacity weight.
func score(n NodeState) float64 {
	w := n.Weight
	if w <= 0 {
		w = 1
	}
	return float64(n.Active) / w
}

// Name implements Picker.
func (WeightedLeastConn) Name() string { return "wlc" }

// LeastConn picks the node with the fewest active connections, ignoring
// weights (the unweighted baseline ablation). The zero value is ready.
type LeastConn struct{}

var _ Picker = (*LeastConn)(nil)

// Pick implements Picker.
func (LeastConn) Pick(candidates []NodeState) (config.NodeID, error) {
	if len(candidates) == 0 {
		return "", ErrNoCandidates
	}
	best := 0
	for i := 1; i < len(candidates); i++ {
		if candidates[i].Active < candidates[best].Active {
			best = i
		}
	}
	return candidates[best].ID, nil
}

// Name implements Picker.
func (LeastConn) Name() string { return "lc" }

// RoundRobin cycles through candidates in order. Construct with
// NewRoundRobin.
type RoundRobin struct {
	mu   sync.Mutex
	next uint64
}

var _ Picker = (*RoundRobin)(nil)

// NewRoundRobin returns a round-robin picker.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Pick implements Picker. Rotation is positional over the candidate slice,
// which distributes uniformly when the candidate set is stable.
func (r *RoundRobin) Pick(candidates []NodeState) (config.NodeID, error) {
	if len(candidates) == 0 {
		return "", ErrNoCandidates
	}
	r.mu.Lock()
	idx := r.next % uint64(len(candidates))
	r.next++
	r.mu.Unlock()
	return candidates[idx].ID, nil
}

// Name implements Picker.
func (r *RoundRobin) Name() string { return "rr" }

// Random picks uniformly at random. Construct with NewRandom.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
}

var _ Picker = (*Random)(nil)

// NewRandom returns a random picker seeded with seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Picker.
func (r *Random) Pick(candidates []NodeState) (config.NodeID, error) {
	if len(candidates) == 0 {
		return "", ErrNoCandidates
	}
	r.mu.Lock()
	idx := r.rng.Intn(len(candidates))
	r.mu.Unlock()
	return candidates[idx].ID, nil
}

// Name implements Picker.
func (r *Random) Name() string { return "random" }

// LeastLoad picks the node with the smallest §3.3 load index L_j,
// breaking ties by weighted active connections. This is the
// "more sophisticated load-balancing algorithm" the paper's conclusion
// names as future work: routing reads the same interval load metric the
// auto-replicator uses, so a node busy with expensive dynamic work is
// avoided even when its connection count looks moderate. The zero value
// is ready to use.
type LeastLoad struct{}

var _ Picker = (*LeastLoad)(nil)

// Pick implements Picker.
func (LeastLoad) Pick(candidates []NodeState) (config.NodeID, error) {
	if len(candidates) == 0 {
		return "", ErrNoCandidates
	}
	best := 0
	for i := 1; i < len(candidates); i++ {
		a, b := candidates[i], candidates[best]
		if a.Load < b.Load || (a.Load == b.Load && score(a) < score(b)) {
			best = i
		}
	}
	return candidates[best].ID, nil
}

// Name implements Picker.
func (LeastLoad) Name() string { return "leastload" }

// ByName returns the picker registered under name.
func ByName(name string, seed int64) (Picker, error) {
	switch name {
	case "wlc":
		return WeightedLeastConn{}, nil
	case "lc":
		return LeastConn{}, nil
	case "rr":
		return NewRoundRobin(), nil
	case "random":
		return NewRandom(seed), nil
	case "leastload":
		return LeastLoad{}, nil
	default:
		return nil, fmt.Errorf("loadbal: unknown picker %q", name)
	}
}
