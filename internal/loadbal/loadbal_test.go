package loadbal

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"webcluster/internal/config"
	"webcluster/internal/content"
	"webcluster/internal/urltable"
)

func states(actives ...int64) []NodeState {
	out := make([]NodeState, len(actives))
	for i, a := range actives {
		out[i] = NodeState{ID: config.NodeID(rune('a' + i)), Weight: 1, Active: a}
	}
	return out
}

func TestWLCPicksLeastLoaded(t *testing.T) {
	var p WeightedLeastConn
	id, err := p.Pick(states(5, 2, 9))
	if err != nil || id != "b" {
		t.Fatalf("pick = %v, %v", id, err)
	}
}

func TestWLCRespectsWeights(t *testing.T) {
	var p WeightedLeastConn
	cands := []NodeState{
		{ID: "slow", Weight: 0.5, Active: 2}, // score 4
		{ID: "fast", Weight: 2.0, Active: 6}, // score 3
	}
	id, err := p.Pick(cands)
	if err != nil || id != "fast" {
		t.Fatalf("pick = %v, %v", id, err)
	}
}

func TestWLCZeroWeightTreatedAsOne(t *testing.T) {
	var p WeightedLeastConn
	cands := []NodeState{
		{ID: "w0", Weight: 0, Active: 1},
		{ID: "w1", Weight: 1, Active: 2},
	}
	id, err := p.Pick(cands)
	if err != nil || id != "w0" {
		t.Fatalf("pick = %v, %v", id, err)
	}
}

func TestPickersRejectEmpty(t *testing.T) {
	pickers := []Picker{WeightedLeastConn{}, LeastConn{}, NewRoundRobin(), NewRandom(1)}
	for _, p := range pickers {
		if _, err := p.Pick(nil); !errors.Is(err, ErrNoCandidates) {
			t.Errorf("%s: err = %v", p.Name(), err)
		}
	}
}

func TestLeastConnIgnoresWeights(t *testing.T) {
	var p LeastConn
	cands := []NodeState{
		{ID: "a", Weight: 100, Active: 3},
		{ID: "b", Weight: 0.1, Active: 2},
	}
	id, _ := p.Pick(cands)
	if id != "b" {
		t.Fatalf("pick = %v", id)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p := NewRoundRobin()
	cands := states(0, 0, 0)
	var got []config.NodeID
	for i := 0; i < 6; i++ {
		id, err := p.Pick(cands)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, id)
	}
	want := []config.NodeID{"a", "b", "c", "a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v", got)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := NewRandom(42)
	b := NewRandom(42)
	cands := states(0, 0, 0, 0)
	for i := 0; i < 20; i++ {
		ia, _ := a.Pick(cands)
		ib, _ := b.Pick(cands)
		if ia != ib {
			t.Fatal("same seed diverged")
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"wlc", "lc", "rr", "random"} {
		p, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("unknown picker accepted")
	}
}

// TestPropertyPickReturnsCandidate: every picker always returns one of
// the candidates.
func TestPropertyPickReturnsCandidate(t *testing.T) {
	pickers := []Picker{WeightedLeastConn{}, LeastConn{}, NewRoundRobin(), NewRandom(3)}
	f := func(actives []uint8) bool {
		if len(actives) == 0 {
			return true
		}
		cands := make([]NodeState, len(actives))
		valid := make(map[config.NodeID]bool, len(actives))
		for i, a := range actives {
			id := config.NodeID(string(rune('a' + i%26)))
			cands[i] = NodeState{ID: id, Weight: float64(i%3) + 0.5, Active: int64(a)}
			valid[id] = true
		}
		for _, p := range pickers {
			id, err := p.Pick(cands)
			if err != nil || !valid[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRequestLoadConstants(t *testing.T) {
	w := PaperWeights()
	// Static: (1+9)×t, dynamic: (10+5)×t (§3.3).
	tProc := 100 * time.Millisecond
	if got := w.RequestLoad(content.ClassHTML, tProc); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("static load = %g, want 1.0", got)
	}
	if got := w.RequestLoad(content.ClassCGI, tProc); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("dynamic load = %g, want 1.5", got)
	}
	if got := w.RequestLoad(content.ClassASP, tProc); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("ASP load = %g, want 1.5", got)
	}
	if got := w.RequestLoad(content.ClassVideo, tProc); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("video treated as static, got %g", got)
	}
}

func TestTrackerIntervalLoads(t *testing.T) {
	tr := NewTracker(PaperWeights())
	specs := []config.NodeSpec{
		{ID: "heavy", CPUMHz: 350, MemoryMB: 128}, // weight 1
		{ID: "light", CPUMHz: 175, MemoryMB: 128}, // weight 0.5
		{ID: "idle", CPUMHz: 350, MemoryMB: 128},
	}
	tr.Record("heavy", content.ClassHTML, 100*time.Millisecond) // l=1.0
	tr.Record("heavy", content.ClassCGI, 100*time.Millisecond)  // l=1.5
	tr.Record("light", content.ClassHTML, 100*time.Millisecond) // l=1.0 /0.5
	loads := tr.IntervalLoads(specs)
	if math.Abs(loads["heavy"]-2.5) > 1e-9 {
		t.Fatalf("heavy = %g", loads["heavy"])
	}
	if math.Abs(loads["light"]-2.0) > 1e-9 {
		t.Fatalf("light = %g (weight division)", loads["light"])
	}
	if loads["idle"] != 0 {
		t.Fatalf("idle = %g", loads["idle"])
	}
	// Interval reset: second call sees zero.
	loads2 := tr.IntervalLoads(specs)
	for id, l := range loads2 {
		if l != 0 {
			t.Fatalf("%s load after reset = %g", id, l)
		}
	}
}

func TestTrackerRequests(t *testing.T) {
	tr := NewTracker(PaperWeights())
	tr.Record("a", content.ClassHTML, time.Millisecond)
	tr.Record("a", content.ClassHTML, time.Millisecond)
	reqs := tr.Requests()
	if reqs["a"] != 2 {
		t.Fatalf("requests = %v", reqs)
	}
}

func TestClassify(t *testing.T) {
	loads := map[config.NodeID]float64{"a": 10, "b": 5, "c": 0.5}
	// avg ≈ 5.17; threshold 0.25 → over >6.46, under <3.88.
	levels := Classify(loads, 0.25)
	if levels["a"] != LevelOverloaded {
		t.Fatalf("a = %v", levels["a"])
	}
	if levels["b"] != LevelBalanced {
		t.Fatalf("b = %v", levels["b"])
	}
	if levels["c"] != LevelUnderutilized {
		t.Fatalf("c = %v", levels["c"])
	}
}

func TestClassifyIdleCluster(t *testing.T) {
	levels := Classify(map[config.NodeID]float64{"a": 0, "b": 0}, 0.25)
	for id, l := range levels {
		if l != LevelBalanced {
			t.Fatalf("%s = %v on idle cluster", id, l)
		}
	}
}

func TestSortedNodes(t *testing.T) {
	loads := map[config.NodeID]float64{"x": 3, "y": 1, "z": 2, "a": 1}
	order := SortedNodes(loads)
	want := []config.NodeID{"a", "y", "z", "x"} // ties by ID
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func newTableWith(t *testing.T, entries map[string][]config.NodeID, hits map[string]int64) *urltable.Table {
	t.Helper()
	tbl := urltable.New(urltable.Options{})
	for path, locs := range entries {
		obj := content.Object{Path: path, Size: 100, Class: content.Classify(path)}
		if err := tbl.Insert(obj, locs...); err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < hits[path]; i++ {
			if _, err := tbl.Route(path); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tbl
}

func TestPlanReplicatesToUnderutilized(t *testing.T) {
	tbl := newTableWith(t,
		map[string][]config.NodeID{
			"/hot.html":  {"busy"},
			"/warm.html": {"busy"},
			"/cold.html": {"busy"},
		},
		map[string]int64{"/hot.html": 100, "/warm.html": 50, "/cold.html": 1},
	)
	loads := map[config.NodeID]float64{"busy": 10, "idle": 0}
	actions := Plan(loads, tbl, PlannerOptions{Threshold: 0.25, MaxActionsPerNode: 2, MinHits: 10})
	if len(actions) == 0 {
		t.Fatal("no actions planned")
	}
	var hotToIdle bool
	for _, a := range actions {
		if a.Kind == ActionReplicate && a.Target == "idle" {
			if a.Path == "/cold.html" {
				t.Fatal("cold content replicated despite MinHits")
			}
			if a.Path == "/hot.html" {
				hotToIdle = true
			}
			if a.Source != "busy" {
				t.Fatalf("source = %s", a.Source)
			}
		}
	}
	if !hotToIdle {
		t.Fatalf("hottest object not replicated: %v", actions)
	}
}

func TestPlanOffloadsMultiCopyContent(t *testing.T) {
	tbl := newTableWith(t,
		map[string][]config.NodeID{
			"/hot.html": {"over", "other"},
		},
		map[string]int64{"/hot.html": 100},
	)
	loads := map[config.NodeID]float64{"over": 10, "other": 4, "third": 4}
	actions := Plan(loads, tbl, PlannerOptions{Threshold: 0.25, MaxActionsPerNode: 2, MinHits: 10})
	found := false
	for _, a := range actions {
		if a.Kind == ActionOffload && a.Path == "/hot.html" && a.Target == "over" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no offload planned: %v", actions)
	}
}

func TestPlanStagesSoleCopyReplication(t *testing.T) {
	tbl := newTableWith(t,
		map[string][]config.NodeID{"/hot.html": {"over"}},
		map[string]int64{"/hot.html": 100},
	)
	loads := map[config.NodeID]float64{"over": 10, "cold": 3.99} // cold is balanced-ish
	actions := Plan(loads, tbl, PlannerOptions{Threshold: 0.5, MaxActionsPerNode: 2, MinHits: 10})
	// "over" is overloaded (10 > 7×1.5=10.49? avg=6.995, over>10.49 — no).
	// Use a clearer spread:
	loads = map[config.NodeID]float64{"over": 20, "cold": 1}
	actions = Plan(loads, tbl, PlannerOptions{Threshold: 0.5, MaxActionsPerNode: 2, MinHits: 10})
	var staged bool
	for _, a := range actions {
		if a.Kind == ActionReplicate && a.Path == "/hot.html" && a.Source == "over" {
			staged = true
		}
	}
	if !staged {
		t.Fatalf("sole-copy hot content not staged for offload: %v", actions)
	}
}

func TestPlanIdleClusterNoActions(t *testing.T) {
	tbl := newTableWith(t, map[string][]config.NodeID{"/a.html": {"n1"}}, nil)
	loads := map[config.NodeID]float64{"n1": 0, "n2": 0}
	if actions := Plan(loads, tbl, DefaultPlannerOptions()); len(actions) != 0 {
		t.Fatalf("idle cluster planned %v", actions)
	}
}

func TestPlanRespectsMaxActions(t *testing.T) {
	entries := map[string][]config.NodeID{}
	hits := map[string]int64{}
	for i := 0; i < 20; i++ {
		p := "/p" + string(rune('a'+i)) + ".html"
		entries[p] = []config.NodeID{"busy"}
		hits[p] = 100
	}
	tbl := newTableWith(t, entries, hits)
	loads := map[config.NodeID]float64{"busy": 10, "idle": 0}
	actions := Plan(loads, tbl, PlannerOptions{Threshold: 0.25, MaxActionsPerNode: 3, MinHits: 10})
	replicas := 0
	for _, a := range actions {
		if a.Kind == ActionReplicate && a.Target == "idle" {
			replicas++
		}
	}
	if replicas > 3 {
		t.Fatalf("planned %d replicas to one node, cap is 3", replicas)
	}
}

func TestActionString(t *testing.T) {
	a := Action{Kind: ActionReplicate, Path: "/p", Source: "s", Target: "t"}
	if a.String() != "replicate /p s→t" {
		t.Fatalf("String = %q", a.String())
	}
	b := Action{Kind: ActionOffload, Path: "/p", Target: "t"}
	if b.String() != "offload /p from t" {
		t.Fatalf("String = %q", b.String())
	}
}

func TestLevelString(t *testing.T) {
	if LevelBalanced.String() != "balanced" ||
		LevelOverloaded.String() != "overloaded" ||
		LevelUnderutilized.String() != "underutilized" {
		t.Fatal("level names wrong")
	}
}

func TestLeastLoadPicksLowestLoad(t *testing.T) {
	var p LeastLoad
	cands := []NodeState{
		{ID: "busy", Weight: 1, Active: 1, Load: 9.5},
		{ID: "calm", Weight: 1, Active: 8, Load: 1.5},
	}
	id, err := p.Pick(cands)
	if err != nil || id != "calm" {
		t.Fatalf("pick = %v, %v", id, err)
	}
}

func TestLeastLoadTieBreaksByActive(t *testing.T) {
	var p LeastLoad
	cands := []NodeState{
		{ID: "a", Weight: 1, Active: 5, Load: 2},
		{ID: "b", Weight: 1, Active: 1, Load: 2},
	}
	id, err := p.Pick(cands)
	if err != nil || id != "b" {
		t.Fatalf("pick = %v, %v", id, err)
	}
}

func TestLeastLoadEmpty(t *testing.T) {
	var p LeastLoad
	if _, err := p.Pick(nil); !errors.Is(err, ErrNoCandidates) {
		t.Fatalf("err = %v", err)
	}
}

func TestByNameLeastLoad(t *testing.T) {
	p, err := ByName("leastload", 1)
	if err != nil || p.Name() != "leastload" {
		t.Fatalf("ByName = %v, %v", p, err)
	}
}

func TestPlanSkipsPinnedContent(t *testing.T) {
	tbl := urltable.New(urltable.Options{})
	obj := content.Object{Path: "/mutable.html", Size: 100, Class: content.ClassHTML}
	if err := tbl.Insert(obj, "busy"); err != nil {
		t.Fatal(err)
	}
	if err := tbl.SetPinned("/mutable.html", true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_, _ = tbl.Route("/mutable.html")
	}
	loads := map[config.NodeID]float64{"busy": 10, "idle": 0}
	actions := Plan(loads, tbl, PlannerOptions{Threshold: 0.25, MaxActionsPerNode: 3, MinHits: 10})
	for _, a := range actions {
		if a.Path == "/mutable.html" {
			t.Fatalf("planner moved pinned content: %v", a)
		}
	}
}

func TestPlanPriorityFloorReplicates(t *testing.T) {
	tbl := urltable.New(urltable.Options{})
	crit := content.Object{Path: "/shop/cart.html", Size: 100, Class: content.ClassHTML, Priority: 2}
	if err := tbl.Insert(crit, "n1"); err != nil {
		t.Fatal(err)
	}
	// No load at all: the availability floor still applies.
	loads := map[config.NodeID]float64{"n1": 0, "n2": 0, "n3": 0}
	actions := Plan(loads, tbl, PlannerOptions{
		Threshold: 0.25, MaxActionsPerNode: 3, MinHits: 10, PriorityMinCopies: 3,
	})
	targets := map[config.NodeID]bool{}
	for _, a := range actions {
		if a.Kind != ActionReplicate || a.Path != "/shop/cart.html" {
			t.Fatalf("unexpected action %v", a)
		}
		targets[a.Target] = true
	}
	if len(targets) != 2 || !targets["n2"] || !targets["n3"] {
		t.Fatalf("priority floor targets = %v, want n2+n3", targets)
	}
}

func TestPlanPriorityFloorSkipsPinned(t *testing.T) {
	tbl := urltable.New(urltable.Options{})
	crit := content.Object{Path: "/shop/cart.html", Size: 100, Class: content.ClassHTML, Priority: 2}
	_ = tbl.Insert(crit, "n1")
	_ = tbl.SetPinned("/shop/cart.html", true)
	loads := map[config.NodeID]float64{"n1": 0, "n2": 0}
	actions := Plan(loads, tbl, PlannerOptions{
		Threshold: 0.25, MaxActionsPerNode: 3, MinHits: 10, PriorityMinCopies: 2,
	})
	if len(actions) != 0 {
		t.Fatalf("pinned priority content moved: %v", actions)
	}
}

func TestPlanPriorityFloorSatisfiedNoop(t *testing.T) {
	tbl := urltable.New(urltable.Options{})
	crit := content.Object{Path: "/shop/cart.html", Size: 100, Class: content.ClassHTML, Priority: 1}
	_ = tbl.Insert(crit, "n1", "n2")
	loads := map[config.NodeID]float64{"n1": 0, "n2": 0, "n3": 0}
	actions := Plan(loads, tbl, DefaultPlannerOptions())
	if len(actions) != 0 {
		t.Fatalf("satisfied floor still planned %v", actions)
	}
}
