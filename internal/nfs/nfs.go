// Package nfs provides the shared-file-server substrate for the paper's
// configuration 2 (§1.1, §5.3): all content lives on one central server and
// web nodes fetch it over the network per request miss. The protocol is a
// minimal framed RPC over TCP — enough to reproduce the two effects the
// paper measures: per-access remote-file-I/O latency and the shared
// server's bottleneck under load.
//
// Wire format (request):  VERB SP path LF [length LF bytes]
// Wire format (response): "OK" SP length LF bytes | "ERR" SP message LF
package nfs

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"webcluster/internal/backend"
	"webcluster/internal/faults"
	"webcluster/internal/metrics"
)

// Verbs of the file-access protocol.
const (
	verbFetch  = "FETCH"
	verbPut    = "PUT"
	verbDelete = "DELETE"
	verbHas    = "HAS"
	verbList   = "LIST"
)

// maxObjectBytes bounds one transferred object (64 MB covers the largest
// video file the workloads generate).
const maxObjectBytes = 64 << 20

// ErrRemote wraps a server-side failure reported over the wire.
var ErrRemote = errors.New("nfs: remote error")

// Server exports a Store over the network. Construct with NewServer.
type Server struct {
	store  backend.Store
	faults *faults.Injector

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   chan struct{}
	closeOne sync.Once

	// Requests counts protocol operations served (bottleneck telemetry).
	Requests metrics.Counter
	// BytesOut counts payload bytes served.
	BytesOut metrics.Counter
}

// NewServer returns a file server exporting store.
func NewServer(store backend.Store) *Server {
	return &Server{
		store:  store,
		conns:  make(map[net.Conn]struct{}),
		closed: make(chan struct{}),
	}
}

// SetFaults attaches a fault injector to served connections (point
// "nfs.conn"). Call before Start.
func (s *Server) SetFaults(in *faults.Injector) { s.faults = in }

// Start listens on addr (":0" for ephemeral) and serves in the background.
func (s *Server) Start(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("nfs: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(l)
	}()
	return l.Addr().String(), nil
}

// acceptLoop accepts and serves connections until Close.
func (s *Server) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		conn = s.faults.Conn("nfs.conn", conn)
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				_ = conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles a sequence of operations on one connection.
func (s *Server) serveConn(conn net.Conn) {
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		verb, arg, _ := strings.Cut(line, " ")
		s.Requests.Inc()
		if err := s.dispatch(br, bw, verb, arg); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// dispatch executes one operation, writing the response to bw.
func (s *Server) dispatch(br *bufio.Reader, bw *bufio.Writer, verb, arg string) error {
	writeErr := func(msg string) error {
		_, err := fmt.Fprintf(bw, "ERR %s\n", strings.ReplaceAll(msg, "\n", " "))
		return err
	}
	switch verb {
	case verbFetch:
		data, err := s.store.Fetch(arg)
		if err != nil {
			return writeErr(err.Error())
		}
		if _, err := fmt.Fprintf(bw, "OK %d\n", len(data)); err != nil {
			return err
		}
		s.BytesOut.Add(int64(len(data)))
		_, err = bw.Write(data)
		return err
	case verbHas:
		has := "0"
		if s.store.Has(arg) {
			has = "1"
		}
		_, err := fmt.Fprintf(bw, "OK 1\n%s", has)
		return err
	case verbPut:
		lenLine, err := br.ReadString('\n')
		if err != nil {
			return err
		}
		n, err := strconv.ParseInt(strings.TrimRight(lenLine, "\r\n"), 10, 64)
		if err != nil || n < 0 || n > maxObjectBytes {
			return writeErr("bad length")
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(br, data); err != nil {
			return err
		}
		if err := s.store.Put(arg, data); err != nil {
			return writeErr(err.Error())
		}
		_, err = fmt.Fprintf(bw, "OK 0\n")
		return err
	case verbDelete:
		if err := s.store.Delete(arg); err != nil {
			return writeErr(err.Error())
		}
		_, err := fmt.Fprintf(bw, "OK 0\n")
		return err
	case verbList:
		payload := strings.Join(s.store.List(), "\n")
		if _, err := fmt.Fprintf(bw, "OK %d\n", len(payload)); err != nil {
			return err
		}
		_, err := bw.WriteString(payload)
		return err
	default:
		return writeErr("unknown verb " + verb)
	}
}

// Close shuts the server down and joins all goroutines.
func (s *Server) Close() error {
	var err error
	s.closeOne.Do(func() {
		close(s.closed)
		s.mu.Lock()
		if s.listener != nil {
			err = s.listener.Close()
		}
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	return err
}

// Client accesses a remote file server. It holds one connection per
// concurrent caller via a small free list. Construct with Dial.
type Client struct {
	addr string
	// timeout bounds each operation's network round trip (dial, send,
	// response) so a hung file server degrades a web node instead of
	// wedging it; DefaultClientTimeout unless SetTimeout overrides.
	timeout time.Duration
	faults  *faults.Injector

	mu    sync.Mutex
	free  []*clientConn
	close bool
}

type clientConn struct {
	conn net.Conn
	br   *bufio.Reader
}

// DefaultClientTimeout bounds client operations unless overridden.
const DefaultClientTimeout = 10 * time.Second

// Dial returns a client for the file server at addr. The connection is
// opened lazily per operation.
func Dial(addr string) *Client {
	return &Client{addr: addr, timeout: DefaultClientTimeout}
}

// SetTimeout overrides the per-operation deadline (0 disables).
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// SetFaults attaches a fault injector at the dial path (point
// "nfs.dial").
func (c *Client) SetFaults(in *faults.Injector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faults = in
}

// getConn pops a pooled connection or dials a new one.
func (c *Client) getConn() (*clientConn, error) {
	c.mu.Lock()
	if c.close {
		c.mu.Unlock()
		return nil, errors.New("nfs: client closed")
	}
	timeout, in := c.timeout, c.faults
	if n := len(c.free); n > 0 {
		cc := c.free[n-1]
		c.free = c.free[:n-1]
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()
	if err := in.Fail("nfs.dial"); err != nil {
		return nil, fmt.Errorf("nfs: dial %s: %w", c.addr, err)
	}
	dialTimeout := timeout
	if dialTimeout <= 0 {
		dialTimeout = DefaultClientTimeout
	}
	conn, err := net.DialTimeout("tcp", c.addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("nfs: dial %s: %w", c.addr, err)
	}
	return &clientConn{conn: conn, br: bufio.NewReader(conn)}, nil
}

// putConn returns a healthy connection to the free list.
func (c *Client) putConn(cc *clientConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.close {
		_ = cc.conn.Close()
		return
	}
	c.free = append(c.free, cc)
}

// roundTrip performs one operation. body is the optional PUT payload.
func (c *Client) roundTrip(verb, path string, body []byte) ([]byte, error) {
	cc, err := c.getConn()
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if ok {
			c.putConn(cc)
		} else {
			_ = cc.conn.Close()
		}
	}()

	// Arm the operation deadline: a stalled or black-holed file server
	// turns into an error here rather than a wedged request goroutine.
	c.mu.Lock()
	timeout := c.timeout
	c.mu.Unlock()
	if timeout > 0 {
		if err := cc.conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, fmt.Errorf("nfs: arming deadline: %w", err)
		}
		defer func() {
			if ok {
				// Clear before pooling so the next caller starts fresh.
				if err := cc.conn.SetDeadline(time.Time{}); err != nil {
					ok = false
					_ = cc.conn.Close()
				}
			}
		}()
	}

	var req strings.Builder
	fmt.Fprintf(&req, "%s %s\n", verb, path)
	if verb == verbPut {
		fmt.Fprintf(&req, "%d\n", len(body))
	}
	if _, err := cc.conn.Write([]byte(req.String())); err != nil {
		return nil, fmt.Errorf("nfs: send %s: %w", verb, err)
	}
	if verb == verbPut && len(body) > 0 {
		if _, err := cc.conn.Write(body); err != nil {
			return nil, fmt.Errorf("nfs: send body: %w", err)
		}
	}
	line, err := cc.br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("nfs: read response: %w", err)
	}
	line = strings.TrimRight(line, "\r\n")
	status, rest, _ := strings.Cut(line, " ")
	if status == "ERR" {
		ok = true
		return nil, fmt.Errorf("%w: %s", ErrRemote, rest)
	}
	if status != "OK" {
		return nil, fmt.Errorf("nfs: malformed response %q", line)
	}
	n, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || n < 0 || n > maxObjectBytes {
		return nil, fmt.Errorf("nfs: bad response length %q", rest)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(cc.br, data); err != nil {
		return nil, fmt.Errorf("nfs: read payload: %w", err)
	}
	ok = true
	return data, nil
}

// Fetch retrieves path's bytes from the file server.
func (c *Client) Fetch(path string) ([]byte, error) {
	return c.roundTrip(verbFetch, path, nil)
}

// Has reports whether the server stores path.
func (c *Client) Has(path string) (bool, error) {
	data, err := c.roundTrip(verbHas, path, nil)
	if err != nil {
		return false, err
	}
	return len(data) == 1 && data[0] == '1', nil
}

// Put stores data at path on the server.
func (c *Client) Put(path string, data []byte) error {
	_, err := c.roundTrip(verbPut, path, data)
	return err
}

// Delete removes path on the server.
func (c *Client) Delete(path string) error {
	_, err := c.roundTrip(verbDelete, path, nil)
	return err
}

// List returns all paths stored on the server.
func (c *Client) List() ([]string, error) {
	data, err := c.roundTrip(verbList, "/", nil)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, nil
	}
	return strings.Split(string(data), "\n"), nil
}

// Close closes pooled connections; in-flight operations fail afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.close = true
	var errs []error
	for _, cc := range c.free {
		if err := cc.conn.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	c.free = nil
	return errors.Join(errs...)
}

// RemoteStore adapts a Client to backend.Store, making a web node serve
// straight off the shared file server — the paper's configuration 2.
type RemoteStore struct {
	client *Client
}

var _ backend.Store = (*RemoteStore)(nil)

// NewRemoteStore wraps client as a Store.
func NewRemoteStore(client *Client) *RemoteStore {
	return &RemoteStore{client: client}
}

// Fetch implements backend.Store.
func (r *RemoteStore) Fetch(path string) ([]byte, error) {
	data, err := r.client.Fetch(path)
	if err != nil {
		if errors.Is(err, ErrRemote) {
			return nil, fmt.Errorf("%w: %q", backend.ErrNotStored, path)
		}
		return nil, err
	}
	return data, nil
}

// Has implements backend.Store.
func (r *RemoteStore) Has(path string) bool {
	has, err := r.client.Has(path)
	return err == nil && has
}

// Put implements backend.Store.
func (r *RemoteStore) Put(path string, data []byte) error {
	return r.client.Put(path, data)
}

// Delete implements backend.Store.
func (r *RemoteStore) Delete(path string) error {
	return r.client.Delete(path)
}

// List implements backend.Store.
func (r *RemoteStore) List() []string {
	paths, err := r.client.List()
	if err != nil {
		return nil
	}
	return paths
}

// UsedBytes implements backend.Store; remote usage is not tracked.
func (r *RemoteStore) UsedBytes() int64 { return 0 }
