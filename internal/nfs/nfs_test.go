package nfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"webcluster/internal/backend"
	"webcluster/internal/config"
	"webcluster/internal/httpx"
)

func startNFS(t *testing.T) (*Server, *Client) {
	t.Helper()
	store := &backend.MemStore{}
	srv := NewServer(store)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := Dial(addr)
	t.Cleanup(func() {
		_ = client.Close()
		_ = srv.Close()
	})
	return srv, client
}

func TestPutFetchRoundTrip(t *testing.T) {
	_, client := startNFS(t)
	if err := client.Put("/docs/a.html", []byte("hello nfs")); err != nil {
		t.Fatal(err)
	}
	data, err := client.Fetch("/docs/a.html")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello nfs" {
		t.Fatalf("data = %q", data)
	}
}

func TestFetchMissing(t *testing.T) {
	_, client := startNFS(t)
	_, err := client.Fetch("/absent")
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
}

func TestHas(t *testing.T) {
	_, client := startNFS(t)
	has, err := client.Has("/x")
	if err != nil || has {
		t.Fatalf("Has(absent) = %v, %v", has, err)
	}
	_ = client.Put("/x", []byte("1"))
	has, err = client.Has("/x")
	if err != nil || !has {
		t.Fatalf("Has(present) = %v, %v", has, err)
	}
}

func TestDelete(t *testing.T) {
	_, client := startNFS(t)
	_ = client.Put("/x", []byte("1"))
	if err := client.Delete("/x"); err != nil {
		t.Fatal(err)
	}
	if err := client.Delete("/x"); !errors.Is(err, ErrRemote) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestList(t *testing.T) {
	_, client := startNFS(t)
	paths, err := client.List()
	if err != nil || len(paths) != 0 {
		t.Fatalf("empty list = %v, %v", paths, err)
	}
	_ = client.Put("/b", []byte("1"))
	_ = client.Put("/a", []byte("1"))
	paths, err = client.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || paths[0] != "/a" || paths[1] != "/b" {
		t.Fatalf("list = %v", paths)
	}
}

func TestEmptyBody(t *testing.T) {
	_, client := startNFS(t)
	if err := client.Put("/empty", nil); err != nil {
		t.Fatal(err)
	}
	data, err := client.Fetch("/empty")
	if err != nil || len(data) != 0 {
		t.Fatalf("fetch empty = %d bytes, %v", len(data), err)
	}
}

func TestLargeObject(t *testing.T) {
	_, client := startNFS(t)
	big := bytes.Repeat([]byte("v"), 2<<20)
	if err := client.Put("/video.mpg", big); err != nil {
		t.Fatal(err)
	}
	data, err := client.Fetch("/video.mpg")
	if err != nil || !bytes.Equal(data, big) {
		t.Fatalf("large round trip failed: %d bytes, %v", len(data), err)
	}
}

func TestServerCounters(t *testing.T) {
	srv, client := startNFS(t)
	_ = client.Put("/a", []byte("12345"))
	_, _ = client.Fetch("/a")
	_, _ = client.Fetch("/a")
	if srv.Requests.Value() != 3 {
		t.Fatalf("requests = %d", srv.Requests.Value())
	}
	if srv.BytesOut.Value() != 10 {
		t.Fatalf("bytes out = %d", srv.BytesOut.Value())
	}
}

func TestConnectionReuse(t *testing.T) {
	_, client := startNFS(t)
	_ = client.Put("/a", []byte("x"))
	for i := 0; i < 20; i++ {
		if _, err := client.Fetch("/a"); err != nil {
			t.Fatal(err)
		}
	}
	client.mu.Lock()
	free := len(client.free)
	client.mu.Unlock()
	if free != 1 {
		t.Fatalf("free connections = %d, want 1 (reused)", free)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, client := startNFS(t)
	_ = client.Put("/shared", []byte("data"))
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := client.Fetch("/shared"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientAfterClose(t *testing.T) {
	_, client := startNFS(t)
	_ = client.Close()
	if _, err := client.Fetch("/x"); err == nil {
		t.Fatal("fetch after close succeeded")
	}
}

func TestRemoteStoreImplementsStore(t *testing.T) {
	_, client := startNFS(t)
	rs := NewRemoteStore(client)
	if err := rs.Put("/a.html", []byte("page")); err != nil {
		t.Fatal(err)
	}
	if !rs.Has("/a.html") || rs.Has("/b.html") {
		t.Fatal("Has wrong")
	}
	data, err := rs.Fetch("/a.html")
	if err != nil || string(data) != "page" {
		t.Fatalf("fetch = %q, %v", data, err)
	}
	// Misses map to backend.ErrNotStored so the web server 404s.
	if _, err := rs.Fetch("/missing"); !errors.Is(err, backend.ErrNotStored) {
		t.Fatalf("miss error = %v", err)
	}
	if got := rs.List(); len(got) != 1 || got[0] != "/a.html" {
		t.Fatalf("list = %v", got)
	}
	if err := rs.Delete("/a.html"); err != nil {
		t.Fatal(err)
	}
	if rs.Has("/a.html") {
		t.Fatal("survived delete")
	}
}

func TestBackendServesFromNFS(t *testing.T) {
	// Configuration 2 wiring: a web node whose store is the shared file
	// server.
	_, client := startNFS(t)
	_ = client.Put("/pages/a.html", []byte("<html>remote</html>"))
	rs := NewRemoteStore(client)
	srv, err := backend.NewServer(backend.ServerOptions{
		Spec: config.NodeSpec{
			ID: "web1", CPUMHz: 350, MemoryMB: 64,
			Disk: config.DiskSCSI, Platform: config.LinuxApache,
		},
		Store: rs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	req := &httpx.Request{
		Method: "GET", Target: "/pages/a.html", Path: "/pages/a.html",
		Proto: httpx.Proto11, Header: httpx.Header{},
	}
	resp := srv.Handle(req)
	if resp.StatusCode != 200 || string(resp.Body) != "<html>remote</html>" {
		t.Fatalf("resp = %d %q", resp.StatusCode, resp.Body)
	}
	// A second request hits the web node's page cache, not NFS.
	resp = srv.Handle(req)
	if resp.Header.Get("X-Cache") != "HIT" {
		t.Fatal("NFS-backed content not page-cached locally")
	}
	// A miss 404s.
	req404 := &httpx.Request{
		Method: "GET", Target: "/no", Path: "/no",
		Proto: httpx.Proto11, Header: httpx.Header{},
	}
	if resp := srv.Handle(req404); resp.StatusCode != 404 {
		t.Fatalf("miss status = %d", resp.StatusCode)
	}
}

// TestPropertyRoundTripAnyBytes: arbitrary payloads survive the protocol.
func TestPropertyRoundTripAnyBytes(t *testing.T) {
	_, client := startNFS(t)
	i := 0
	f := func(data []byte) bool {
		i++
		path := fmt.Sprintf("/obj/%d", i)
		if err := client.Put(path, data); err != nil {
			return false
		}
		got, err := client.Fetch(path)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPathWithSpacesRejectedGracefully(t *testing.T) {
	// The line protocol cuts on the first space: a path with a space is
	// treated as path+garbage and must not wedge the connection.
	_, client := startNFS(t)
	err := client.Put("/a b", []byte("x"))
	// Either an error or a mangled path is acceptable; the connection
	// must remain usable afterwards.
	_ = err
	if err := client.Put("/ok", []byte("y")); err != nil {
		t.Fatalf("connection wedged after odd path: %v", err)
	}
}
