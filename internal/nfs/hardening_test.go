package nfs

import (
	"errors"
	"net"
	"testing"
	"time"

	"webcluster/internal/backend"
	"webcluster/internal/faults"
	"webcluster/internal/testutil"
)

// TestClientTimeoutOnStalledServer: a file server whose connections stall
// (slow-loris) must fail the client's operation at its deadline instead
// of wedging the web node's request goroutine. Reverting the deadline in
// roundTrip turns this test into a 30s hang.
func TestClientTimeoutOnStalledServer(t *testing.T) {
	testutil.NoLeaks(t)
	store := &backend.MemStore{}
	if err := store.Put("/a.html", []byte("x")); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	in := faults.New(1)
	srv.SetFaults(in)
	in.Set("nfs.conn", faults.Rule{ReadStall: 30 * time.Second})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()

	client := Dial(addr)
	client.SetTimeout(200 * time.Millisecond)
	defer func() { _ = client.Close() }()

	start := time.Now()
	_, err = client.Fetch("/a.html")
	if err == nil {
		t.Fatal("fetch from stalled server succeeded")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("want timeout error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fetch took %v — deadline not bounding the stall", elapsed)
	}
	if in.Fired("nfs.conn") == 0 {
		t.Fatal("stall rule never fired")
	}
}

// TestClientDialFaultInjection: a refused dial surfaces as ErrInjected
// through the client error chain.
func TestClientDialFaultInjection(t *testing.T) {
	srv := NewServer(&backend.MemStore{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	client := Dial(addr)
	defer func() { _ = client.Close() }()
	in := faults.New(2)
	client.SetFaults(in)
	in.Set("nfs.dial", faults.Rule{Refuse: true})
	if _, err := client.Fetch("/a"); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want injected dial failure, got %v", err)
	}
	in.Clear("nfs.dial")
	if _, err := client.Fetch("/a"); errors.Is(err, faults.ErrInjected) {
		t.Fatalf("injection persisted after clear: %v", err)
	}
}
