// Package backend implements a back-end web-server node: a content store
// (the node's local file system), an LRU memory page cache, simulated
// CGI/ASP dynamic handlers, and an HTTP server speaking the keep-alive
// subset in internal/httpx. A node serves only the slice of the document
// tree placed on it; requests for anything else return 404, which is
// exactly what makes content-blind routing break under partitioning.
package backend

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by stores.
var (
	// ErrNotStored reports a path absent from the store.
	ErrNotStored = errors.New("backend: object not stored")
	// ErrAlreadyStored reports a duplicate Put.
	ErrAlreadyStored = errors.New("backend: object already stored")
)

// Store is a node's local content repository. Implementations must be safe
// for concurrent use.
type Store interface {
	// Fetch returns the full object bytes.
	Fetch(path string) ([]byte, error)
	// Has reports whether path is stored without fetching it.
	Has(path string) bool
	// Put stores data at path, failing if already present.
	Put(path string, data []byte) error
	// Delete removes path.
	Delete(path string) error
	// List returns all stored paths, sorted.
	List() []string
	// UsedBytes returns the summed stored size.
	UsedBytes() int64
}

// MemStore is an in-memory Store (models the node's local disk contents).
// The zero value is ready to use.
type MemStore struct {
	mu   sync.RWMutex
	data map[string][]byte
	used int64
}

var _ Store = (*MemStore)(nil)

// Fetch implements Store.
func (s *MemStore) Fetch(path string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.data[path]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotStored, path)
	}
	return data, nil
}

// Has implements Store.
func (s *MemStore) Has(path string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.data[path]
	return ok
}

// Put implements Store.
func (s *MemStore) Put(path string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.data == nil {
		s.data = make(map[string][]byte)
	}
	if _, ok := s.data[path]; ok {
		return fmt.Errorf("%w: %q", ErrAlreadyStored, path)
	}
	s.data[path] = append([]byte(nil), data...)
	s.used += int64(len(data))
	return nil
}

// Delete implements Store.
func (s *MemStore) Delete(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.data[path]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotStored, path)
	}
	s.used -= int64(len(data))
	delete(s.data, path)
	return nil
}

// List implements Store.
func (s *MemStore) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.data))
	for p := range s.data {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// UsedBytes implements Store.
func (s *MemStore) UsedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used
}

// SyntheticStore is a Store whose object bytes are generated
// deterministically from the path on every Fetch, so a node can "hold"
// gigabytes of placed content (video files, large sites) without resident
// memory. It records only the placement set and per-object sizes — exactly
// what the placement experiments need.
type SyntheticStore struct {
	mu    sync.RWMutex
	sizes map[string]int64
	used  int64
}

var _ Store = (*SyntheticStore)(nil)

// PlaceSized registers path with a synthetic size (Put with explicit
// length and no data transfer).
func (s *SyntheticStore) PlaceSized(path string, size int64) error {
	if size < 0 {
		return fmt.Errorf("backend: negative size %d for %q", size, path)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sizes == nil {
		s.sizes = make(map[string]int64)
	}
	if _, ok := s.sizes[path]; ok {
		return fmt.Errorf("%w: %q", ErrAlreadyStored, path)
	}
	s.sizes[path] = size
	s.used += size
	return nil
}

// Fetch implements Store, synthesizing size bytes derived from the path.
func (s *SyntheticStore) Fetch(path string) ([]byte, error) {
	s.mu.RLock()
	size, ok := s.sizes[path]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotStored, path)
	}
	return SynthesizeBody(path, size), nil
}

// SynthesizeBody produces the deterministic body for path at the given
// size: the path repeated, so responses are verifiable end to end.
func SynthesizeBody(path string, size int64) []byte {
	if size == 0 {
		return []byte{}
	}
	pattern := []byte(path + "\n")
	body := make([]byte, size)
	for off := 0; off < len(body); off += len(pattern) {
		copy(body[off:], pattern)
	}
	return body
}

// Has implements Store.
func (s *SyntheticStore) Has(path string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.sizes[path]
	return ok
}

// Put implements Store by registering the path with the data's length.
func (s *SyntheticStore) Put(path string, data []byte) error {
	return s.PlaceSized(path, int64(len(data)))
}

// Delete implements Store.
func (s *SyntheticStore) Delete(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	size, ok := s.sizes[path]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotStored, path)
	}
	s.used -= size
	delete(s.sizes, path)
	return nil
}

// List implements Store.
func (s *SyntheticStore) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.sizes))
	for p := range s.sizes {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// UsedBytes implements Store.
func (s *SyntheticStore) UsedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used
}
