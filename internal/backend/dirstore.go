package backend

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// DirStore is a Store backed by a real directory tree (the node's actual
// local file system, as in the paper's deployment where agents manipulate
// files on disk). URL paths map to files under the root; path traversal
// outside the root is rejected. Construct with NewDirStore.
type DirStore struct {
	root string
	// mu serializes mutations so Put's exists-check and write are
	// atomic with respect to other DirStore calls (not other
	// processes).
	mu sync.Mutex
}

var _ Store = (*DirStore)(nil)

// NewDirStore returns a store rooted at dir, creating it if needed.
func NewDirStore(dir string) (*DirStore, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("backend: resolving %s: %w", dir, err)
	}
	if err := os.MkdirAll(abs, 0o755); err != nil {
		return nil, fmt.Errorf("backend: creating docroot: %w", err)
	}
	return &DirStore{root: abs}, nil
}

// Root returns the absolute docroot.
func (s *DirStore) Root() string { return s.root }

// resolve maps a URL path to a filesystem path inside the root.
func (s *DirStore) resolve(urlPath string) (string, error) {
	if !strings.HasPrefix(urlPath, "/") {
		return "", fmt.Errorf("backend: non-absolute path %q", urlPath)
	}
	// Reject ".." before cleaning: management paths are canonical URL
	// paths, and anything with dot-dot segments is suspect even when
	// Clean would collapse it back inside the root.
	for _, seg := range strings.Split(urlPath, "/") {
		if seg == ".." {
			return "", fmt.Errorf("backend: unsafe path %q", urlPath)
		}
	}
	clean := path.Clean(urlPath)
	if clean == "/" {
		return "", fmt.Errorf("backend: unsafe path %q", urlPath)
	}
	return filepath.Join(s.root, filepath.FromSlash(clean)), nil
}

// Fetch implements Store.
func (s *DirStore) Fetch(urlPath string) ([]byte, error) {
	fsPath, err := s.resolve(urlPath)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(fsPath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %q", ErrNotStored, urlPath)
		}
		return nil, fmt.Errorf("backend: reading %q: %w", urlPath, err)
	}
	return data, nil
}

// Has implements Store.
func (s *DirStore) Has(urlPath string) bool {
	fsPath, err := s.resolve(urlPath)
	if err != nil {
		return false
	}
	info, err := os.Stat(fsPath)
	return err == nil && info.Mode().IsRegular()
}

// Put implements Store.
func (s *DirStore) Put(urlPath string, data []byte) error {
	fsPath, err := s.resolve(urlPath)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(fsPath); err == nil {
		return fmt.Errorf("%w: %q", ErrAlreadyStored, urlPath)
	}
	if err := os.MkdirAll(filepath.Dir(fsPath), 0o755); err != nil {
		return fmt.Errorf("backend: creating parent of %q: %w", urlPath, err)
	}
	if err := os.WriteFile(fsPath, data, 0o644); err != nil {
		return fmt.Errorf("backend: writing %q: %w", urlPath, err)
	}
	return nil
}

// Delete implements Store, pruning directories left empty.
func (s *DirStore) Delete(urlPath string) error {
	fsPath, err := s.resolve(urlPath)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(fsPath); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("%w: %q", ErrNotStored, urlPath)
		}
		return fmt.Errorf("backend: removing %q: %w", urlPath, err)
	}
	// Prune now-empty parents up to (not including) the root.
	dir := filepath.Dir(fsPath)
	for dir != s.root {
		if err := os.Remove(dir); err != nil {
			break // non-empty or permission issue: stop pruning
		}
		dir = filepath.Dir(dir)
	}
	return nil
}

// List implements Store.
func (s *DirStore) List() []string {
	var out []string
	_ = filepath.WalkDir(s.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return nil
		}
		out = append(out, "/"+filepath.ToSlash(rel))
		return nil
	})
	sort.Strings(out)
	return out
}

// UsedBytes implements Store.
func (s *DirStore) UsedBytes() int64 {
	var total int64
	_ = filepath.WalkDir(s.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}
